// Fleet throughput — the engine-layer scenario family: sessions/sec of a
// multi-device server multiplexing Schnorr identification sessions over a
// worker pool, and the amortization win of batched verification.
//
// No paper table: the paper stops at one tag <-> one mini-server. This
// bench opens the scaling axis the ROADMAP asks for. Two claims are
// measured and printed up front:
//   1. verifying a batch of 64 transcripts by random linear combination
//      (one interleaved multi-scalar multiplication + one shared
//      batch-inversion decode) beats 64 independent schnorr_verify calls;
//   2. sessions/sec scales with worker threads (near-linear to 4 on a
//      4-core host — on fewer cores the curve flattens at nproc).
//
// Emits BENCH_fleet.json (google-benchmark JSON schema) for the perf
// trajectory unless --benchmark_out is given.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "bench_util.h"
#include "ecc/curve.h"
#include "engine/batch_verifier.h"
#include "engine/fleet_server.h"
#include "gf2m/backend.h"
#include "protocol/schnorr.h"
#include "protocol/wire.h"

namespace {

using namespace medsec;
namespace proto = protocol;

struct HonestBatch {
  std::vector<proto::SchnorrTranscript> transcripts;
  std::vector<ecc::Point> keys;
  std::vector<std::vector<std::uint8_t>> wires;  ///< encoded commitments
};

/// Deterministic pool of honest transcripts (and their wire encodings).
const HonestBatch& honest_batch(std::size_t n) {
  static std::map<std::size_t, HonestBatch> cache;
  auto& slot = cache[n];
  if (!slot.transcripts.empty()) return slot;
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(77);
  for (std::size_t i = 0; i < n; ++i) {
    const auto kp = proto::schnorr_keygen(c, rng);
    const auto session = proto::run_schnorr_session(c, kp, rng);
    slot.transcripts.push_back(session.view);
    slot.keys.push_back(kp.X);
    slot.wires.push_back(proto::encode_point(c, session.view.commitment));
  }
  return slot;
}

// --- the headline numbers, printed before the timers -------------------------

void print_table() {
  bench::banner("Fleet throughput: batched verification + session engine",
                "engine-layer scaling scenario (beyond the paper's 1:1 link)");

  const ecc::Curve& c = ecc::Curve::k163();
  const auto& pool = honest_batch(64);
  rng::Xoshiro256 rng(78);
  using clock = std::chrono::steady_clock;
  constexpr int kReps = 20;

  // Independent: N x (decode commitment from the wire + double-scalar
  // verifier equation) — what a batch-size-1 server does per session.
  const auto t0 = clock::now();
  for (int r = 0; r < kReps; ++r)
    for (std::size_t i = 0; i < pool.transcripts.size(); ++i) {
      const auto p = proto::decode_point(c, pool.wires[i]);
      auto t = pool.transcripts[i];
      t.commitment = *p;
      benchmark::DoNotOptimize(proto::schnorr_verify(c, pool.keys[i], t));
    }
  const double independent_s =
      std::chrono::duration<double>(clock::now() - t0).count() / kReps;

  // Batched: decode all commitments with one shared inversion, then one
  // RLC multi-scalar multiplication.
  const auto t1 = clock::now();
  for (int r = 0; r < kReps; ++r) {
    const auto pts = engine::decode_points_batch(c, pool.wires);
    std::vector<proto::SchnorrTranscript> ts = pool.transcripts;
    for (std::size_t i = 0; i < ts.size(); ++i) ts[i].commitment = *pts[i];
    const auto out = engine::schnorr_verify_batch(c, ts, pool.keys, rng);
    benchmark::DoNotOptimize(&out.ok);
  }
  const double batched_s =
      std::chrono::duration<double>(clock::now() - t1).count() / kReps;

  std::printf("verification of 64 Schnorr transcripts (backend: %s):\n",
              gf2m::backend_name(gf2m::active_backend()));
  std::printf("  64 x schnorr_verify        : %8.2f us  (%.2f us/item)\n",
              independent_s * 1e6, independent_s * 1e6 / 64);
  std::printf("  1 x batch (decode + RLC)   : %8.2f us  (%.2f us/item)\n",
              batched_s * 1e6, batched_s * 1e6 / 64);
  std::printf("  speedup                    : %8.2fx  (acceptance: >= 2x)\n",
              independent_s / batched_s);
}

// --- microbenchmarks ---------------------------------------------------------

void BM_SchnorrVerifySingle(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  const auto& pool = honest_batch(64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        proto::schnorr_verify(c, pool.keys[i], pool.transcripts[i]));
    i = (i + 1) % pool.transcripts.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchnorrVerifySingle);

void BM_SchnorrVerifyBatchRlc(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& pool = honest_batch(n);
  rng::Xoshiro256 rng(79);
  for (auto _ : state) {
    const auto out =
        engine::schnorr_verify_batch(c, pool.transcripts, pool.keys, rng);
    benchmark::DoNotOptimize(&out.ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchnorrVerifyBatchRlc)->Arg(8)->Arg(64)->ArgName("batch");

void BM_DecodePointSingle(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  const auto& pool = honest_batch(64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::decode_point(c, pool.wires[i]));
    i = (i + 1) % pool.wires.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecodePointSingle);

void BM_DecodePointsBatch(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  const auto& pool = honest_batch(64);
  for (auto _ : state) {
    const auto pts = engine::decode_points_batch(c, pool.wires);
    benchmark::DoNotOptimize(pts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_DecodePointsBatch);

// --- full-engine throughput --------------------------------------------------

/// Pre-scripted device traffic: in deterministic mode the server derives
/// per-session randomness from (seed, session id), so the challenges —
/// and therefore the whole honest transcript — can be computed once
/// outside the timed region. The timed region measures pure server work:
/// challenge generation, registry, decode, batched verification, thread
/// handoff. (FleetConfig::deterministic is replay-only; a production
/// server keeps the default entropy-mixed seed.)
struct FleetScript {
  std::vector<std::uint32_t> device;
  std::vector<proto::Message> commitment;
  std::vector<proto::Message> response;
  std::vector<proto::SchnorrKeyPair> keys;
};

const FleetScript& fleet_script(std::size_t sessions, std::uint64_t seed) {
  static std::map<std::pair<std::size_t, std::uint64_t>, FleetScript> cache;
  auto& slot = cache[{sessions, seed}];
  if (!slot.device.empty()) return slot;
  const ecc::Curve& c = ecc::Curve::k163();
  constexpr std::size_t kDevices = 32;
  rng::Xoshiro256 keyrng(80);
  for (std::size_t d = 0; d < kDevices; ++d)
    slot.keys.push_back(proto::schnorr_keygen(c, keyrng));
  // Session ids are handed out 1..N in open order; replay the server's
  // per-session rng to learn the challenge each session will see.
  engine::FleetConfig cfg;
  cfg.seed = seed;
  for (std::size_t i = 0; i < sessions; ++i) {
    const std::uint32_t dev = static_cast<std::uint32_t>(i % kDevices);
    const std::uint64_t sid = i + 1;
    rng::Xoshiro256 tag_rng(9000 + sid);
    proto::SchnorrProver prover(c, slot.keys[dev], tag_rng);
    // Mirror of FleetServer's per-session rng derivation (mix_seed).
    std::uint64_t s = cfg.seed ^ (0x9E3779B97F4A7C15ULL * (sid + 1));
    rng::Xoshiro256 srv_rng(rng::splitmix64(s));
    proto::SchnorrVerifier verifier(c, slot.keys[dev].X, srv_rng,
                                    proto::SchnorrVerifier::Mode::kDeferred);
    const auto commit = prover.start();
    const auto challenge = verifier.on_message(commit.out[0]);
    const auto response = prover.on_message(challenge.out[0]);
    slot.device.push_back(dev);
    slot.commitment.push_back(commit.out[0]);
    slot.response.push_back(response.out[0]);
  }
  return slot;
}

void BM_FleetSessions(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  constexpr std::size_t kSessions = 256;
  constexpr std::uint64_t kSeed = 0xF1EE7;
  const auto& script = fleet_script(kSessions, kSeed);

  engine::FleetConfig cfg;
  cfg.worker_threads = static_cast<std::size_t>(state.range(0));
  cfg.verify_batch = static_cast<std::size_t>(state.range(1));
  cfg.seed = kSeed;
  cfg.deterministic = true;  // replay needs reproducible challenges

  std::size_t completed = 0;
  for (auto _ : state) {
    engine::FleetServer server(
        c, cfg, [&](std::uint64_t sid, const proto::Message&) {
          // The challenge is known in advance (scripted): answer with the
          // prerecorded response. sid is 1-based in open order.
          server.deliver(sid, script.response[sid - 1]);
        });
    for (const auto& kp : script.keys) server.enroll(kp.X);
    std::vector<std::uint64_t> sids;
    sids.reserve(kSessions);
    for (std::size_t i = 0; i < kSessions; ++i) {
      const auto sid = server.open_schnorr_session(script.device[i]);
      server.deliver(sid, script.commitment[i]);
      sids.push_back(sid);
    }
    server.drain();
    for (const auto sid : sids)
      if (server.record(sid).accepted) ++completed;
  }
  if (completed !=
      kSessions * static_cast<std::size_t>(state.iterations()))
    state.SkipWithError("fleet rejected scripted honest sessions");
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FleetSessions)
    ->ArgsProduct({{1, 2, 4}, {1, 64}})
    ->ArgNames({"threads", "batch"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return medsec::bench::run_benchmarks_with_json(argc, argv,
                                                 "BENCH_fleet.json");
}
