// Gateway chaos campaign — the resilience-layer scenario family: completion
// rate, retransmit cost and completion-latency percentiles of the sharded
// device↔gateway fleet as the channel degrades (loss × corruption sweep),
// plus the PR acceptance drill printed up front:
//
//   * >= 1k sessions at 20% loss / 5% corruption with reordering and
//     duplication on reach 100% completion with ZERO corrupted frames
//     accepted and zero stuck sessions;
//   * the campaign digest is bit-identical across reruns and thread
//     counts (the determinism contract extended over the failure model);
//   * a mid-protocol full-fleet failover (snapshot every session, kill the
//     node, restore onto a fresh one) changes none of that.
//
// No paper table: the paper's channel is an idealized 1:1 link. This bench
// opens the deployment axis — what serving the protocols over a real
// (lossy) channel costs. Emits BENCH_gateway.json (google-benchmark JSON
// schema) for the perf trajectory unless --benchmark_out is given.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "engine/gateway.h"
#include "engine/transport.h"

namespace {

using namespace medsec;

engine::ChaosCampaignConfig campaign_config(std::size_t sessions,
                                            double loss, double corrupt) {
  engine::ChaosCampaignConfig cfg;
  cfg.sessions = sessions;
  cfg.sessions_per_shard = 64;
  cfg.seed = 0xC4A05CA7;
  cfg.uplink.drop = loss;
  cfg.uplink.corrupt = corrupt;
  cfg.uplink.reorder = 0.10;
  cfg.uplink.duplicate = 0.05;
  cfg.downlink = cfg.uplink;
  return cfg;
}

// --- the headline numbers, printed before the timers -------------------------

bool print_table() {
  bench::banner(
      "Gateway resilience: chaos campaign over the framed transport",
      "deployment-layer scenario (the paper's link, made lossy)");

  // Degradation sweep: completion and latency as the channel worsens.
  std::printf(
      "\n  %-28s %10s %12s %10s %10s %10s\n", "channel (fleet=256)",
      "complete", "retx/sess", "p50", "p99", "max");
  for (const double corrupt : {0.0, 0.05}) {
    for (const double loss : {0.0, 0.05, 0.10, 0.20, 0.30}) {
      const auto r = engine::run_chaos_campaign(
          campaign_config(256, loss, corrupt));
      char label[64];
      std::snprintf(label, sizeof(label), "%2.0f%% loss / %2.0f%% corrupt",
                    loss * 100, corrupt * 100);
      std::printf("  %-28s %9.1f%% %12.2f %10llu %10llu %10llu\n", label,
                  100.0 * static_cast<double>(r.completed) /
                      static_cast<double>(r.sessions),
                  static_cast<double>(r.retransmits) /
                      static_cast<double>(r.sessions),
                  static_cast<unsigned long long>(r.latency_p50),
                  static_cast<unsigned long long>(r.latency_p99),
                  static_cast<unsigned long long>(r.latency_max));
    }
  }

  // The acceptance drill: 1k+ sessions under the headline fault mix,
  // twice (serial and wide), plus a mid-protocol full-fleet failover.
  auto cfg = campaign_config(1024, 0.20, 0.05);
  cfg.threads = 1;
  const auto serial = engine::run_chaos_campaign(cfg);
  cfg.threads = 0;
  const auto wide = engine::run_chaos_campaign(cfg);
  cfg.failover_at = 200;
  const auto failover = engine::run_chaos_campaign(cfg);

  std::printf("\n  acceptance drill (%zu sessions, 20%% loss, 5%% corrupt,"
              " reorder+dup on):\n", serial.sessions);
  std::printf("    completed %zu/%zu   stuck %zu   corrupt frames accepted"
              " %llu\n", serial.completed, serial.sessions, serial.stuck,
              static_cast<unsigned long long>(serial.corrupt_accepted));
  std::printf("    frames: %llu sent, %llu dropped, %llu corrupted, %llu"
              " retransmits\n",
              static_cast<unsigned long long>(serial.frames_sent),
              static_cast<unsigned long long>(serial.frames_dropped),
              static_cast<unsigned long long>(serial.frames_corrupted),
              static_cast<unsigned long long>(serial.retransmits));
  std::printf("    digest serial=%016llx wide=%016llx  (%s)\n",
              static_cast<unsigned long long>(serial.digest),
              static_cast<unsigned long long>(wide.digest),
              serial.digest == wide.digest ? "bit-identical"
                                           : "MISMATCH");
  std::printf("    failover@200: completed %zu/%zu, restored %llu,"
              " corrupt accepted %llu\n", failover.completed,
              failover.sessions,
              static_cast<unsigned long long>(failover.gateway.restored),
              static_cast<unsigned long long>(failover.corrupt_accepted));

  const bool ok = serial.completed == serial.sessions &&
                  serial.stuck == 0 && serial.corrupt_accepted == 0 &&
                  serial.digest == wide.digest &&
                  failover.completed == failover.sessions &&
                  failover.corrupt_accepted == 0;
  std::printf("    verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

// --- timers ------------------------------------------------------------------

/// Wall time of a full chaos campaign at a given fleet size and loss rate
/// (corruption pinned at a quarter of the loss rate, reorder/dup on).
void BM_ChaosCampaign(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  const double loss = static_cast<double>(state.range(1)) / 100.0;
  auto cfg = campaign_config(sessions, loss, loss / 4.0);
  std::size_t completed = 0;
  for (auto _ : state) {
    const auto r = engine::run_chaos_campaign(cfg);
    completed += r.completed;
    benchmark::DoNotOptimize(r.digest);
  }
  if (completed !=
      sessions * static_cast<std::size_t>(state.iterations()))
    state.SkipWithError("chaos campaign left sessions incomplete");
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ChaosCampaign)
    ->ArgsProduct({{64, 256}, {0, 20}})
    ->ArgNames({"sessions", "loss_pct"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

/// The transport hot path: encode + strict decode of one protocol-sized
/// frame (48-byte payload — the telemetry blob).
void BM_FrameCodec(benchmark::State& state) {
  engine::Frame f;
  f.session = 7;
  f.seq = 3;
  f.label = "telemetry";
  f.payload.assign(48, 0xA5);
  for (auto _ : state) {
    const auto bytes = engine::encode_frame(f);
    auto back = engine::decode_frame(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameCodec);

}  // namespace

int main(int argc, char** argv) {
  // The drill is a hard gate, not a report: CI runs this binary and a
  // FAIL verdict must fail the job.
  if (!print_table()) return 1;
  return medsec::bench::run_benchmarks_with_json(argc, argv,
                                                 "BENCH_gateway.json");
}
