// E3 — the §7 DPA evaluation, the paper's headline security result, plus
// the campaign-engine throughput comparison.
//
// Paper: "When the countermeasure is disabled, a DPA attack succeeds with
// as low as 200 traces. When the countermeasure is enabled, but the
// randomness is known, the attack also succeeds. ... When the
// countermeasure is enabled, and the randomness is unknown, the attack
// does not succeed. Even 20000 traces are not enough to reveal a single
// key bit, using the same DPA attack."
//
// Engine comparison: the 20 000-trace known-input campaign (generation +
// 16-bit CPA attack) through three paths —
//   * the PR 2 serial path (ladder-generated base points, one scalar
//     montgomery_ladder + recovery per trace, per-trace attack loop),
//   * the wide-lane engine pinned to 1 thread / 1 lane, and
//   * the wide-lane engine at full fan-out (all threads, auto lanes) —
// asserting the recovered bits agree, and emitting every figure to
// BENCH_dpa_campaign.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "core/thread_pool.h"
#include "gf2m/backend.h"
#include "sidechannel/dpa.h"

namespace {

using namespace medsec;
namespace sc = sidechannel;
using gf2m::LaneBackend;

constexpr std::size_t kCampaignTraces = 20000;
constexpr std::uint64_t kCampaignSeed = 9;

ecc::Scalar campaign_secret() {
  rng::Xoshiro256 rng(2013);
  return rng.uniform_nonzero(ecc::Curve::k163().order());
}

sc::DpaConfig campaign_attack_config(std::size_t threads, std::size_t lanes) {
  sc::DpaConfig cfg;
  cfg.bits_to_attack = 16;
  cfg.threads = threads;
  cfg.lanes = lanes;
  return cfg;
}

void print_table() {
  bench::banner("E3: DPA vs randomized projective coordinates",
                "Section 7 (200 traces vs 20000 traces)");

  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();

  sc::DpaConfig cfg;
  cfg.bits_to_attack = 16;
  sc::AlgorithmicSimConfig sim;
  sim.seed = 2;  // fixed campaign seed (benches are deterministic)

  struct Plan {
    sc::RpcScenario scenario;
    std::vector<std::size_t> counts;
  };
  const Plan plans[] = {
      {sc::RpcScenario::kDisabled, {25, 50, 100, 200, 500}},
      {sc::RpcScenario::kEnabledKnownRandomness, {200, 1000, 5000}},
      {sc::RpcScenario::kEnabledSecretRandomness, {200, 1000, 5000, 20000}},
  };

  std::printf("%-46s %8s %10s %9s\n", "scenario", "traces", "bits ok",
              "verdict");
  for (const auto& plan : plans) {
    for (const std::size_t n : plan.counts) {
      const auto rows = sc::dpa_trace_count_sweep(curve, secret,
                                                  plan.scenario, {n}, cfg,
                                                  sim);
      std::printf("%-46s %8zu %6.1f/16 %9s\n",
                  sc::rpc_scenario_name(plan.scenario), n,
                  rows[0].accuracy * 16, rows[0].success ? "BROKEN" : "safe");
    }
    std::printf("\n");
  }
  std::printf("paper shape check:\n"
              "  * no countermeasure  -> broken by ~200 traces\n"
              "  * white-box          -> broken (attack itself is sound)\n"
              "  * normal operation   -> safe at 20000 traces (~8/16 bits =\n"
              "    coin flipping; \"not a single key bit\" in the paper's\n"
              "    stronger per-bit-confidence sense)\n");
}

/// One-shot wall-clock comparison printed before the google-benchmark
/// timers (which re-measure the same three paths for the JSON artifact).
void print_campaign_comparison() {
  bench::banner("E3b: 20k-trace campaign — PR 2 serial path vs wide engine",
                "acceptance: >= 4x at 4 cores, bit-identical outcomes");
  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();
  sc::AlgorithmicSimConfig sim;
  sim.seed = kCampaignSeed;

  using clock = std::chrono::steady_clock;
  const auto secs = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };

  const auto t0 = clock::now();
  const auto exp_serial = sc::generate_dpa_traces_serial(
      curve, secret, kCampaignTraces, sc::RpcScenario::kDisabled, sim);
  const auto r_serial = sc::ladder_dpa_attack_reference(
      curve, exp_serial, campaign_attack_config(1, 1));
  const auto t1 = clock::now();

  sc::AlgorithmicSimConfig sim1 = sim;
  sim1.threads = 1;
  sim1.lanes = 1;
  const auto exp1 = sc::generate_dpa_traces(
      curve, secret, kCampaignTraces, sc::RpcScenario::kDisabled, sim1);
  const auto r1 =
      sc::ladder_dpa_attack(curve, exp1, campaign_attack_config(1, 1));
  const auto t2 = clock::now();

  const auto expw = sc::generate_dpa_traces(
      curve, secret, kCampaignTraces, sc::RpcScenario::kDisabled, sim);
  const auto rw =
      sc::ladder_dpa_attack(curve, expw, campaign_attack_config(0, 0));
  const auto t3 = clock::now();

  const double s_serial = secs(t0, t1);
  const double s_one = secs(t1, t2);
  const double s_wide = secs(t2, t3);
  std::printf("workers available: %zu hardware thread(s)\n",
              core::ThreadPool::shared().size());
  std::printf("PR 2 serial path          : %6.2f s\n", s_serial);
  std::printf("engine, 1 thread / 1 lane : %6.2f s (%.2fx)\n", s_one,
              s_serial / s_one);
  std::printf("engine, full fan-out      : %6.2f s (%.2fx)\n", s_wide,
              s_serial / s_wide);
  const bool same_1 = r1.recovered_bits == rw.recovered_bits &&
                      r1.stat_correct_hyp == rw.stat_correct_hyp;
  const bool same_serial = r_serial.recovered_bits == rw.recovered_bits;
  std::printf("engine 1-lane vs wide outcomes bit-identical: %s\n",
              same_1 ? "yes" : "NO (BUG)");
  std::printf("serial vs engine recovered bits identical:    %s (%zu/16 vs "
              "%zu/16)\n",
              same_serial ? "yes" : "NO", r_serial.bits_correct,
              rw.bits_correct);
  if (!same_1 || !same_serial) std::exit(1);
}

void BM_Campaign20k_SerialPR2(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();
  sc::AlgorithmicSimConfig sim;
  sim.seed = kCampaignSeed;
  for (auto _ : state) {
    auto exp = sc::generate_dpa_traces_serial(
        curve, secret, kCampaignTraces, sc::RpcScenario::kDisabled, sim);
    auto r = sc::ladder_dpa_attack_reference(curve, exp,
                                             campaign_attack_config(1, 1));
    benchmark::DoNotOptimize(r.bits_correct);
  }
  state.SetItemsProcessed(state.iterations() * kCampaignTraces);
  state.SetLabel("PR 2 path: serial gen + per-trace CPA, 20k traces");
}
BENCHMARK(BM_Campaign20k_SerialPR2)->Unit(benchmark::kMillisecond);

void BM_Campaign20k_Engine1T1L(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();
  sc::AlgorithmicSimConfig sim;
  sim.seed = kCampaignSeed;
  sim.threads = 1;
  sim.lanes = 1;
  for (auto _ : state) {
    auto exp = sc::generate_dpa_traces(curve, secret, kCampaignTraces,
                                       sc::RpcScenario::kDisabled, sim);
    auto r = sc::ladder_dpa_attack(curve, exp, campaign_attack_config(1, 1));
    benchmark::DoNotOptimize(r.bits_correct);
  }
  state.SetItemsProcessed(state.iterations() * kCampaignTraces);
  state.SetLabel("wide engine pinned to 1 thread / 1 lane");
}
BENCHMARK(BM_Campaign20k_Engine1T1L)->Unit(benchmark::kMillisecond);

void BM_Campaign20k_EngineWide(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();
  sc::AlgorithmicSimConfig sim;
  sim.seed = kCampaignSeed;
  for (auto _ : state) {
    auto exp = sc::generate_dpa_traces(curve, secret, kCampaignTraces,
                                       sc::RpcScenario::kDisabled, sim);
    auto r = sc::ladder_dpa_attack(curve, exp, campaign_attack_config(0, 0));
    benchmark::DoNotOptimize(r.bits_correct);
  }
  state.SetItemsProcessed(state.iterations() * kCampaignTraces);
  state.SetLabel("wide engine, all threads / auto lanes");
}
BENCHMARK(BM_Campaign20k_EngineWide)->Unit(benchmark::kMillisecond);

/// Lane-backend-pinned variants of the 20k campaign, both single-threaded
/// with auto lane count (4x the backend's preferred width), so the pair
/// isolates the field-kernel change: interleaved hardware clmul (the
/// PR 3 widest path) vs the VPCLMULQDQ ZMM backend. The perf gate in
/// check_perf_regression.py asserts the in-run ratio — never absolute
/// times — so it is machine-independent.
void campaign_pinned(benchmark::State& state, LaneBackend backend) {
  if (!gf2m::lane_backend_available(backend)) {
    state.SkipWithError("lane backend unavailable on this CPU");
    return;
  }
  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();
  sc::AlgorithmicSimConfig sim;
  sim.seed = kCampaignSeed;
  sim.threads = 1;
  sim.lanes = 0;  // auto: follows the pinned backend's preferred width
  gf2m::set_lane_backend(backend);
  for (auto _ : state) {
    auto exp = sc::generate_dpa_traces(curve, secret, kCampaignTraces,
                                       sc::RpcScenario::kDisabled, sim);
    auto r = sc::ladder_dpa_attack(curve, exp, campaign_attack_config(1, 0));
    benchmark::DoNotOptimize(r.bits_correct);
  }
  gf2m::reset_lane_backend();
  state.SetItemsProcessed(state.iterations() * kCampaignTraces);
  state.SetLabel(std::string("1 thread, auto lanes, lane backend pinned: ") +
                 gf2m::lane_backend_name(backend));
}

void BM_Campaign20k_LanesClmulWide(benchmark::State& state) {
  campaign_pinned(state, LaneBackend::kLaneClmulWide);
}
BENCHMARK(BM_Campaign20k_LanesClmulWide)->Unit(benchmark::kMillisecond);

void BM_Campaign20k_LanesVpclmul512(benchmark::State& state) {
  campaign_pinned(state, LaneBackend::kLaneVpclmul512);
}
BENCHMARK(BM_Campaign20k_LanesVpclmul512)->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(5);
  const ecc::Scalar secret = rng.uniform_nonzero(curve.order());
  for (auto _ : state) {
    auto exp = sc::generate_dpa_traces(
        curve, secret, 10, sc::RpcScenario::kEnabledSecretRandomness);
    benchmark::DoNotOptimize(exp.traces.traces.size());
  }
  state.SetLabel("10 ladder executions + leakage per iteration");
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void BM_DpaAttack200(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(6);
  const ecc::Scalar secret = rng.uniform_nonzero(curve.order());
  const auto exp =
      sc::generate_dpa_traces(curve, secret, 200, sc::RpcScenario::kDisabled);
  sc::DpaConfig cfg;
  cfg.bits_to_attack = 16;
  for (auto _ : state) {
    auto r = sc::ladder_dpa_attack(curve, exp, cfg);
    benchmark::DoNotOptimize(r.bits_correct);
  }
  state.SetLabel("16-bit CPA attack on 200 traces");
}
BENCHMARK(BM_DpaAttack200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  print_campaign_comparison();
  return medsec::bench::run_benchmarks_with_json(argc, argv,
                                                 "BENCH_dpa_campaign.json");
}
