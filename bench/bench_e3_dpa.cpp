// E3 — the §7 DPA evaluation, the paper's headline security result.
//
// Paper: "When the countermeasure is disabled, a DPA attack succeeds with
// as low as 200 traces. When the countermeasure is enabled, but the
// randomness is known, the attack also succeeds. ... When the
// countermeasure is enabled, and the randomness is unknown, the attack
// does not succeed. Even 20000 traces are not enough to reveal a single
// key bit, using the same DPA attack."
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sidechannel/dpa.h"

namespace {

using namespace medsec;
namespace sc = sidechannel;

void print_table() {
  bench::banner("E3: DPA vs randomized projective coordinates",
                "Section 7 (200 traces vs 20000 traces)");

  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(2013);
  const ecc::Scalar secret = rng.uniform_nonzero(curve.order());

  sc::DpaConfig cfg;
  cfg.bits_to_attack = 16;

  struct Plan {
    sc::RpcScenario scenario;
    std::vector<std::size_t> counts;
  };
  const Plan plans[] = {
      {sc::RpcScenario::kDisabled, {25, 50, 100, 200, 500}},
      {sc::RpcScenario::kEnabledKnownRandomness, {200, 1000, 5000}},
      {sc::RpcScenario::kEnabledSecretRandomness, {200, 1000, 5000, 20000}},
  };

  std::printf("%-46s %8s %10s %9s\n", "scenario", "traces", "bits ok",
              "verdict");
  for (const auto& plan : plans) {
    for (const std::size_t n : plan.counts) {
      const auto rows = sc::dpa_trace_count_sweep(curve, secret,
                                                  plan.scenario, {n}, cfg);
      std::printf("%-46s %8zu %6.1f/16 %9s\n",
                  sc::rpc_scenario_name(plan.scenario), n,
                  rows[0].accuracy * 16, rows[0].success ? "BROKEN" : "safe");
    }
    std::printf("\n");
  }
  std::printf("paper shape check:\n"
              "  * no countermeasure  -> broken by ~200 traces\n"
              "  * white-box          -> broken (attack itself is sound)\n"
              "  * normal operation   -> safe at 20000 traces (~8/16 bits =\n"
              "    coin flipping; \"not a single key bit\" in the paper's\n"
              "    stronger per-bit-confidence sense)\n");
}

void BM_TraceGeneration(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(5);
  const ecc::Scalar secret = rng.uniform_nonzero(curve.order());
  for (auto _ : state) {
    auto exp = sc::generate_dpa_traces(
        curve, secret, 10, sc::RpcScenario::kEnabledSecretRandomness);
    benchmark::DoNotOptimize(exp.traces.traces.size());
  }
  state.SetLabel("10 ladder executions + leakage per iteration");
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void BM_DpaAttack200(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(6);
  const ecc::Scalar secret = rng.uniform_nonzero(curve.order());
  const auto exp =
      sc::generate_dpa_traces(curve, secret, 200, sc::RpcScenario::kDisabled);
  sc::DpaConfig cfg;
  cfg.bits_to_attack = 16;
  for (auto _ : state) {
    auto r = sc::ladder_dpa_attack(curve, exp, cfg);
    benchmark::DoNotOptimize(r.bits_correct);
  }
  state.SetLabel("16-bit CPA attack on 200 traces");
}
BENCHMARK(BM_DpaAttack200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
