// E9 — per-countermeasure ablation at circuit level (§6).
//
// Paper §6 lists four circuit practices (balance critical signals, avoid
// data-dependent clock gating, isolate datapath inputs, avoid glitches)
// plus the dual-rail logic styles (SABL, WDDL). This bench switches each
// one off in isolation and reports a leakage metric:
//   * TVLA max |t| on fixed-vs-random-input cycle traces (input isolation,
//     logic styles),
//   * SPA key-bit recovery (mux encoding, clock gating),
//   * DPA bit accuracy (projective randomization, for reference),
// together with the area/power price of each fix — the "extra design
// dimension" in one table.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sidechannel/dpa.h"
#include "sidechannel/spa.h"
#include "sidechannel/tvla.h"

namespace {

using namespace medsec;
namespace sc = sidechannel;

/// TVLA on cycle traces: fixed base point vs random base points, RPC off
/// so the input actually drives the intermediates. Truncated to the first
/// `window` cycles (the ladder's head) for runtime.
sc::TvlaReport tvla_run(const ecc::Curve& curve,
                        const hw::SecureConfig& secure, sc::LogicStyle style,
                        std::size_t window) {
  rng::Xoshiro256 rng(17);
  const ecc::Scalar k = rng.uniform_nonzero(curve.order());

  auto capture = [&](const ecc::Point& p, std::uint64_t seed) {
    sc::CycleSimConfig cfg;
    cfg.coproc.secure = secure;
    cfg.rpc = false;
    cfg.leakage.style = style;
    cfg.leakage.noise_sigma = 200.0;
    cfg.seed = seed;
    cfg.keep_records = false;  // TVLA consumes samples only
    auto t = sc::capture_cycle_trace(curve, k, p, cfg);
    t.samples.resize(window);
    return t.samples;
  };

  sc::TraceSet fixed, random;
  constexpr int kPerGroup = 16;
  for (int i = 0; i < kPerGroup; ++i)
    fixed.traces.push_back(capture(curve.base_point(), 100 + i));
  for (int i = 0; i < kPerGroup; ++i) {
    const auto r = rng.uniform_nonzero(curve.order());
    const auto p = ecc::montgomery_ladder(curve, r, curve.base_point());
    random.traces.push_back(capture(p, 200 + i));
  }
  return sc::tvla_fixed_vs_random(fixed, random);
}

void print_tvla_row(const char* label, const sc::TvlaReport& rep,
                    const char* extra = "") {
  std::printf("  %-44s max|t| %6.1f, leaking points %5.1f%%%s\n", label,
              rep.max_abs_t,
              100.0 * static_cast<double>(rep.points_over_threshold) /
                  static_cast<double>(rep.t_values.size()),
              extra);
}

/// Input-isolation metric: the data-dependent signal variance an attacker
/// can harvest at the operand-handling cycles (bus fetches, writebacks).
/// Isolation does not hide the active unit's own bus — it stops the data
/// from rippling into every *idle* unit, which multiplies the exploitable
/// amplitude. Measured noise-free over random inputs: a DPA SNR proxy.
double bus_cycle_signal_variance(const ecc::Curve& curve,
                                 const hw::SecureConfig& secure,
                                 std::size_t traces) {
  rng::Xoshiro256 rng(19);
  const ecc::Scalar k = rng.uniform_nonzero(curve.order());
  std::vector<sc::Trace> set;
  std::vector<hw::CycleRecord> klass;
  for (std::size_t i = 0; i < traces; ++i) {
    const auto r = rng.uniform_nonzero(curve.order());
    const auto p = ecc::montgomery_ladder(curve, r, curve.base_point());
    sc::CycleSimConfig cfg;
    cfg.coproc.secure = secure;
    cfg.rpc = false;
    cfg.leakage.noise_sigma = 0.0;
    cfg.seed = 300 + i;
    cfg.keep_records = klass.empty();  // one record capture keys the scan
    auto t = sc::capture_cycle_trace(curve, k, p, cfg);
    if (klass.empty()) klass = t.records;
    set.push_back(std::move(t.samples));
  }
  double var_sum = 0;
  std::size_t cycles_counted = 0;
  for (std::size_t cyc = 0; cyc < klass.size(); ++cyc) {
    if (klass[cyc].bus_toggles == 0)
      continue;  // only operand-bus cycles; MALU-internal cycles (which
                 // also write the accumulator) are isolation-independent
    sc::RunningStats s;
    for (const auto& tr : set) s.add(tr[cyc]);
    var_sum += s.variance();
    ++cycles_counted;
  }
  return cycles_counted ? var_sum / static_cast<double>(cycles_counted) : 0;
}

void print_table() {
  bench::banner("E9: circuit-level countermeasure ablation",
                "Section 6 guidelines, each switched off in isolation");

  const ecc::Curve& curve = ecc::Curve::k163();
  constexpr std::size_t kWindow = 4000;

  hw::SecureConfig all_on;
  hw::SecureConfig no_isolation = all_on;
  no_isolation.isolate_datapath_inputs = false;

  std::printf("input isolation (exploitable signal variance at operand-\n"
              "handling cycles, noise-free, 16 random-input traces):\n");
  const double v_on = bus_cycle_signal_variance(curve, all_on, 16);
  const double v_off = bus_cycle_signal_variance(curve, no_isolation, 16);
  std::printf("  %-44s %10.0f GE^2\n", "isolation ON  (paper practice)",
              v_on);
  std::printf("  %-44s %10.0f GE^2  (%.1fx more signal for DPA)\n",
              "isolation OFF (spurious propagation)", v_off, v_off / v_on);

  std::printf("\nfixed-vs-random TVLA over first %zu cycles (RPC off, "
              "threshold 4.5):\n", kWindow);
  print_tvla_row("CMOS baseline (countermeasures on, RPC off)",
                 tvla_run(curve, all_on, sc::LogicStyle::kCmos, kWindow));

  std::printf("\nlogic style (same TVLA, isolation on):\n");
  for (const auto style : {sc::LogicStyle::kCmos, sc::LogicStyle::kWddl,
                           sc::LogicStyle::kSabl}) {
    char extra[48];
    std::snprintf(extra, sizeof extra, "   (area x%.1f)",
                  style == sc::LogicStyle::kCmos
                      ? 1.0
                      : (style == sc::LogicStyle::kWddl
                             ? hw::LogicStyleOverhead::kWddl
                             : hw::LogicStyleOverhead::kSabl));
    print_tvla_row(sc::logic_style_name(style),
                   tvla_run(curve, all_on, style, kWindow), extra);
  }
  std::printf("  (CMOS leaks across the trace; WDDL/SABL suppress the data\n"
              "   component down to layout imbalance — the paper's residual\n"
              "   SPA leak. A true dual-rail chip would also rebalance the\n"
              "   register-file writes this model keeps visible.)\n");

  // Mux / gating ablation: SPA bits recovered (from bench_e4's machinery).
  rng::Xoshiro256 rng(18);
  const ecc::Scalar secret = rng.uniform_nonzero(curve.order());
  sc::CycleSimConfig prof;
  prof.coproc.secure.uniform_clock_gating = false;
  prof.leakage.noise_sigma = 100.0;
  const auto schedule = sc::profile_schedule(sc::capture_cycle_trace(
      curve, rng.uniform_nonzero(curve.order()), curve.base_point(), prof));

  auto spa_bits = [&](bool balanced, bool uniform) {
    sc::CycleSimConfig cfg;
    cfg.coproc.secure.balanced_mux_encoding = balanced;
    cfg.coproc.secure.uniform_clock_gating = uniform;
    cfg.leakage.noise_sigma = 100.0;
    // Averaged victim through the SPA feature-extractor sink (POI
    // amplitudes only — no materialized cycle traces).
    const auto victim = sc::capture_averaged_spa_features(
        curve, secret, curve.base_point(), cfg, schedule, 48);
    return std::make_pair(sc::mux_control_spa(victim).accuracy,
                          sc::clock_gating_spa(victim).accuracy);
  };
  std::printf("\nmux encoding / clock gating (SPA key bits, 163 total):\n");
  const auto [m_off, g_off] = spa_bits(false, false);
  const auto [m_on, g_on] = spa_bits(true, true);
  std::printf("  %-44s mux %5.1f, gating %5.1f\n",
              "both OFF (naive circuit)", m_off * 163, g_off * 163);
  std::printf("  %-44s mux %5.1f, gating %5.1f\n",
              "both ON  (Fig. 3 + uniform gating)", m_on * 163, g_on * 163);

  // RPC ablation (algorithm level, for completeness of the matrix).
  sc::DpaConfig dc;
  dc.bits_to_attack = 12;
  const auto off = sc::dpa_trace_count_sweep(
      curve, secret, sc::RpcScenario::kDisabled, {300}, dc);
  const auto on = sc::dpa_trace_count_sweep(
      curve, secret, sc::RpcScenario::kEnabledSecretRandomness, {300}, dc);
  std::printf("\nprojective randomization (DPA, 300 traces, 12 bits):\n");
  std::printf("  %-44s %4.1f/12 bits\n", "RPC OFF", off[0].accuracy * 12);
  std::printf("  %-44s %4.1f/12 bits\n", "RPC ON", on[0].accuracy * 12);
}

void BM_TvlaWindow(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  for (auto _ : state) {
    const auto rep =
        tvla_run(curve, hw::SecureConfig{}, sc::LogicStyle::kCmos, 1000);
    benchmark::DoNotOptimize(rep.max_abs_t);
  }
  state.SetLabel("32-trace TVLA over 1000 cycles");
}
BENCHMARK(BM_TvlaWindow)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
