// bench_util.h — shared helpers for the experiment benches.
//
// Every bench binary regenerates one table/figure/number of the paper
// (see DESIGN.md's experiment index): it prints the reproduction table to
// stdout first (paper value vs model value), then runs its
// google-benchmark timers. Benches are deterministic (fixed seeds).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "rng/xoshiro.h"

namespace medsec::bench {

inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  reproduces: %s\n", experiment, paper_artifact);
  std::printf("================================================================\n");
}

inline std::vector<int> padded_bits(const ecc::Curve& c,
                                    const ecc::Scalar& k) {
  const ecc::Scalar padded = ecc::constant_length_scalar(c, k);
  std::vector<int> bits;
  bits.reserve(padded.bit_length());
  for (std::size_t i = padded.bit_length(); i-- > 0;)
    bits.push_back(padded.bit(i) ? 1 : 0);
  return bits;
}

/// Run google-benchmark with --benchmark_out defaulted to `default_json`
/// (google-benchmark's JSON schema) unless the caller already steers the
/// output somewhere: every bench binary leaves a machine-readable perf
/// artifact next to itself, which CI archives as the perf trajectory.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const char* default_json) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0)
      has_out = true;
  std::string out_flag = std::string("--benchmark_out=") + default_json;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace medsec::bench
