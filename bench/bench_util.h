// bench_util.h — shared helpers for the experiment benches.
//
// Every bench binary regenerates one table/figure/number of the paper
// (see DESIGN.md's experiment index): it prints the reproduction table to
// stdout first (paper value vs model value), then runs its
// google-benchmark timers. Benches are deterministic (fixed seeds).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "rng/xoshiro.h"

namespace medsec::bench {

inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  reproduces: %s\n", experiment, paper_artifact);
  std::printf("================================================================\n");
}

inline std::vector<int> padded_bits(const ecc::Curve& c,
                                    const ecc::Scalar& k) {
  const ecc::Scalar padded = ecc::constant_length_scalar(c, k);
  std::vector<int> bits;
  bits.reserve(padded.bit_length());
  for (std::size_t i = padded.bit_length(); i-- > 0;)
    bits.push_back(padded.bit(i) ? 1 : 0);
  return bits;
}

/// Log-bucketed latency recorder for the load generators: fixed 4-bit
/// sub-precision over power-of-two ranges (first bucket 1 unit wide, the
/// relative error ceiling is 1/16 ≈ 6%), so 100k+ samples cost a constant
/// ~1.4 KiB and recording is two shifts and an increment — cheap enough
/// for a per-response hot path. Histograms from different shard threads
/// merge by bucket-wise addition; percentiles come from a single scan.
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBits = 4;
  static constexpr std::size_t kBuckets = 64 << kSubBits;

  void record(std::uint64_t v) {
    ++counts_[bucket_of(v)];
    ++total_;
    if (v > max_) max_ = v;
  }

  /// Bucket-wise merge — the cross-shard reduction.
  void merge(const LatencyHistogram& o) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    total_ += o.total_;
    if (o.max_ > max_) max_ = o.max_;
  }

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }

  /// Value at quantile q in [0,1] (bucket lower bound — the reported
  /// percentile never exceeds any sample in its bucket). 0 when empty.
  std::uint64_t percentile(double q) const {
    if (total_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    std::uint64_t rank = static_cast<std::uint64_t>(q * (total_ - 1));
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (rank < counts_[i]) return lower_bound_of(i);
      rank -= counts_[i];
    }
    return max_;
  }

 private:
  static std::size_t bucket_of(std::uint64_t v) {
    if (v < (1u << kSubBits)) return static_cast<std::size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    const std::size_t exp = static_cast<std::size_t>(msb) - kSubBits;
    const std::size_t sub =
        static_cast<std::size_t>(v >> exp) & ((1u << kSubBits) - 1);
    const std::size_t b = ((exp + 1) << kSubBits) + sub;
    return b < kBuckets ? b : kBuckets - 1;
  }

  static std::uint64_t lower_bound_of(std::size_t b) {
    if (b < (1u << kSubBits)) return b;
    const std::size_t exp = (b >> kSubBits) - 1;
    const std::size_t sub = b & ((1u << kSubBits) - 1);
    return ((1ull << kSubBits) + sub) << exp;
  }

  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

/// Run google-benchmark with --benchmark_out defaulted to `default_json`
/// (google-benchmark's JSON schema) unless the caller already steers the
/// output somewhere: every bench binary leaves a machine-readable perf
/// artifact next to itself, which CI archives as the perf trajectory.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const char* default_json) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0)
      has_out = true;
  std::string out_flag = std::string("--benchmark_out=") + default_json;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace medsec::bench
