// bench_util.h — shared helpers for the experiment benches.
//
// Every bench binary regenerates one table/figure/number of the paper
// (see DESIGN.md's experiment index): it prints the reproduction table to
// stdout first (paper value vs model value), then runs its
// google-benchmark timers. Benches are deterministic (fixed seeds).
#pragma once

#include <cstdio>
#include <vector>

#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "rng/xoshiro.h"

namespace medsec::bench {

inline void banner(const char* experiment, const char* paper_artifact) {
  std::printf("\n================================================================\n");
  std::printf("%s\n  reproduces: %s\n", experiment, paper_artifact);
  std::printf("================================================================\n");
}

inline std::vector<int> padded_bits(const ecc::Curve& c,
                                    const ecc::Scalar& k) {
  const ecc::Scalar padded = ecc::constant_length_scalar(c, k);
  std::vector<int> bits;
  bits.reserve(padded.bit_length());
  for (std::size_t i = padded.bit_length(); i-- > 0;)
    bits.push_back(padded.bit(i) ? 1 : 0);
  return bits;
}

}  // namespace medsec::bench
