// E5 — the §4 implementation-size argument.
//
// Paper: "protocol designers tend to believe that hash functions are very
// cheap in hardware, thus should be used in light-weight protocols. For
// the most recent generation of hash functions, this is no longer true.
// The smallest SHA-1 implementation [12] uses 5527 gates, while an ECC
// core uses about 12k gates [10]."
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hash/sha1.h"
#include "hash/sha256.h"
#include "hw/gates.h"
#include "hw/technology.h"

namespace {

using namespace medsec;

void print_table() {
  bench::banner("E5: gate-count inventory",
                "Section 4 (SHA-1 = 5527 GE vs ECC ~ 12 kGE)");

  std::printf("%-26s %12s %10s   %s\n", "primitive", "GE", "vs ECC",
              "source");
  const double ecc = hw::inventory("ECC-163 core").gate_equivalents;
  for (const auto& e : hw::standard_inventory())
    std::printf("%-26s %12.0f %9.2fx   %s\n", e.name.c_str(),
                e.gate_equivalents, e.gate_equivalents / ecc,
                e.source.c_str());

  std::printf("\nstructural model cross-check:\n");
  std::printf("  ecc_coprocessor_ge(163, d=4) = %.0f GE (paper: ~12 kGE)\n",
              hw::ecc_coprocessor_ge(163, 4));
  std::printf("  SHA-1 / ECC ratio            = %.2f -> a hash is nearly\n"
              "  half an ECC core: hashes are NOT cheap in this class.\n",
              hw::inventory("SHA-1").gate_equivalents / ecc);

  std::printf("\narea in silicon (UMC 0.13um, %.2f um2/GE):\n",
              hw::Technology::umc130().um2_per_ge);
  for (const char* n : {"SHA-1", "ECC-163 core", "AES-128", "PRESENT-80"})
    std::printf("  %-14s %8.3f mm2\n", n,
                hw::inventory(n).gate_equivalents *
                    hw::Technology::umc130().um2_per_ge * 1e-6);
}

void BM_Sha1Block(benchmark::State& state) {
  std::vector<std::uint8_t> msg(64, 0xAB);
  for (auto _ : state) {
    auto d = hash::Sha1::digest(msg);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Sha1Block);

void BM_Sha256Block(benchmark::State& state) {
  std::vector<std::uint8_t> msg(64, 0xAB);
  for (auto _ : state) {
    auto d = hash::Sha256::digest(msg);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Sha256Block);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
