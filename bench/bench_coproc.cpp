// bench_coproc — the streaming co-processor engine's perf surface (PR 5).
//
// Measures the layers the E1/E4/E8/E9 experiments and the eval matrix's
// cycle-accurate cells actually ride:
//
//   * capture_cycle_trace: PR 4 reference (materialize records, second
//     pass with Box–Muller noise) vs the fused sink path — the
//     acceptance axis (fused must be >= 3x the reference; gated
//     machine-independently by check_perf_regression.py's ratio gate).
//   * point_mult: record path vs the energy-only sink (E1's path).
//   * capture_averaged_cycle_trace at 1 thread vs the shared pool — the
//     thread-scaling axis (flat on 1-core hosts; scales in CI).
//   * the SPA feature-extractor sink vs averaging full traces.
//
// Emits BENCH_coproc.json (google-benchmark schema) next to the binary.
#include <benchmark/benchmark.h>

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "sidechannel/spa.h"
#include "sidechannel/trace_sim.h"

namespace {

using namespace medsec;
namespace sc = sidechannel;

// --- the PR 4 baseline, vendored verbatim ----------------------------------
//
// The acceptance axis is "capture_cycle_trace >= 3x faster than the PR 4
// implementation". The shared core has since been rebuilt, so the honest
// baseline is this frozen fossil of the PR 4 cost structure: the old
// digit-serial multiply (one row vector + one activity vector allocated
// per MUL/SQR, std::popcount libcalls), microcode vectors regenerated per
// ladder iteration, records grown by push_back with no reserve, and a
// second pass folding records into samples with the Box–Muller sampler.
// print_table() asserts the fossil still emits the current engine's exact
// record stream, so the comparison is apples to apples.
namespace pr4 {

using gf2m::Gf163;

int popcount(const Gf163& v) {
  return std::popcount(v.limb(0)) + std::popcount(v.limb(1)) +
         std::popcount(v.limb(2));
}
int hamming_distance(const Gf163& a, const Gf163& b) { return popcount(a + b); }

Gf163 mulx(const Gf163& v) {
  constexpr std::uint64_t kTop35 = (std::uint64_t{1} << 35) - 1;
  const std::uint64_t carry = (v.limb(2) >> 34) & 1;
  Gf163 out{(v.limb(0) << 1), (v.limb(1) << 1) | (v.limb(0) >> 63),
            ((v.limb(2) << 1) | (v.limb(1) >> 63)) & kTop35};
  if (carry) out += Gf163{(1u << 7) | (1u << 6) | (1u << 3) | 1u};
  return out;
}

Gf163 shl_mod(const Gf163& v, std::size_t d) {
  constexpr std::uint64_t kTop35 = (std::uint64_t{1} << 35) - 1;
  const std::uint64_t t = v.limb(2) >> (35 - d);
  std::uint64_t l0 = v.limb(0) << d;
  const std::uint64_t l1 = (v.limb(1) << d) | (v.limb(0) >> (64 - d));
  const std::uint64_t l2 =
      ((v.limb(2) << d) | (v.limb(1) >> (64 - d))) & kTop35;
  l0 ^= t ^ (t << 3) ^ (t << 6) ^ (t << 7);
  return Gf163{l0, l1, l2};
}

std::uint32_t digit_at(const Gf163& b, std::size_t pos, std::size_t d) {
  const std::size_t limb = pos / 64;
  const std::size_t off = pos % 64;
  std::uint64_t v = b.limb(limb) >> off;
  if (off + d > 64 && limb + 1 < Gf163::kLimbs)
    v |= b.limb(limb + 1) << (64 - off);
  return static_cast<std::uint32_t>(v & ((std::uint64_t{1} << d) - 1));
}

hw::MaluResult malu_multiply(std::size_t d, std::size_t cycles,
                             const Gf163& a, const Gf163& b) {
  hw::MaluResult r;
  r.activity.reserve(cycles);
  std::vector<Gf163> row(d);
  row[0] = a;
  int row_weight = popcount(a);
  for (std::size_t j = 1; j < d; ++j) {
    row[j] = mulx(row[j - 1]);
    row_weight += popcount(row[j]);
  }
  const double glitch = hw::ActivityWeights::glitch_factor(d);
  Gf163 acc;
  for (std::size_t c = 0; c < cycles; ++c) {
    const std::size_t pos = (cycles - 1 - c) * d;
    const std::uint32_t digit = digit_at(b, pos, d);
    const Gf163 shifted = shl_mod(acc, d);
    Gf163 partial;
    for (std::size_t j = 0; j < d; ++j)
      if (digit & (1u << j)) partial += row[j];
    const Gf163 next = shifted + partial;
    hw::MaluCycle cyc;
    cyc.acc_toggles = static_cast<std::uint32_t>(hamming_distance(acc, next));
    cyc.logic_toggles = static_cast<std::uint32_t>(
        glitch * (row_weight + popcount(partial) / 2 +
                  popcount(shifted) / 2 + 8.0 * static_cast<double>(d)));
    r.activity.push_back(cyc);
    acc = next;
  }
  r.product = acc;
  r.cycles = cycles;
  return r;
}

/// The PR 4 co-processor execution loop: per-cycle record emission with
/// per-cycle ge recomputation, records grown by push_back.
struct Model {
  static constexpr std::size_t kDigit = 4;
  static constexpr std::size_t kMaluCycles = (163 + kDigit - 1) / kDigit;
  static constexpr int kMuxFanout = 164;
  static constexpr int kIssueToggles = 24;

  std::array<Gf163, hw::kNumRegs> regs{};
  Gf163 bus_a, bus_b;
  int select = 0;
  std::int8_t key_bit = -1;
  std::uint16_t iteration = 0xffff;
  double area_ge = hw::ecc_coprocessor_ge(163, kDigit);

  std::size_t cycles = 0;
  double ge_toggles = 0;
  std::vector<hw::CycleRecord> records;

  const Gf163& reg(hw::Reg r) const {
    return regs[static_cast<std::size_t>(r)];
  }

  void emit(hw::CycleRecord rec) {
    cycles += 1;
    rec.key_bit = key_bit;
    rec.iteration = iteration;
    rec.clocked_reg_mask = 0x3F;  // uniform gating (default config)
    const double ge =
        hw::ActivityWeights::kRegisterBit * rec.reg_write_toggles +
        hw::ActivityWeights::kLogicNode *
            (rec.logic_toggles + rec.bus_toggles + rec.mux_control_toggles) +
        hw::ActivityWeights::clock_tree_per_cycle(area_ge) *
            (std::popcount(rec.clocked_reg_mask) / 6.0);
    ge_toggles += ge;
    records.push_back(rec);
  }

  void run(const hw::Instruction& ins) {
    auto fetch = [&](const Gf163& operand, Gf163& bus) {
      hw::CycleRecord rec;
      rec.op = ins.op;
      rec.bus_toggles =
          static_cast<std::uint16_t>(hamming_distance(bus, operand));
      bus = operand;
      emit(rec);
    };
    auto writeback = [&](hw::Reg rd, const Gf163& value,
                         std::uint16_t extra_logic = 0) {
      hw::CycleRecord rec;
      rec.op = ins.op;
      Gf163& dst = regs[static_cast<std::size_t>(rd)];
      rec.reg_write_toggles =
          static_cast<std::uint16_t>(hamming_distance(dst, value));
      rec.logic_toggles = extra_logic;
      dst = value;
      emit(rec);
    };
    auto issue = [&] {
      hw::CycleRecord rec;
      rec.op = ins.op;
      rec.mux_control_toggles = kIssueToggles;
      emit(rec);
    };
    switch (ins.op) {
      case hw::Op::kMul:
      case hw::Op::kSqr: {
        const Gf163 a = reg(ins.ra);
        const Gf163 b = ins.op == hw::Op::kSqr ? a : reg(ins.rb);
        issue();
        fetch(a, bus_a);
        fetch(b, bus_b);
        const hw::MaluResult mr = malu_multiply(kDigit, kMaluCycles, a, b);
        for (const hw::MaluCycle& mc : mr.activity) {
          hw::CycleRecord rec;
          rec.op = ins.op;
          rec.reg_write_toggles = static_cast<std::uint16_t>(mc.acc_toggles);
          rec.logic_toggles = static_cast<std::uint16_t>(mc.logic_toggles);
          emit(rec);
        }
        for (int i = 0; i < 2; ++i) emit(hw::CycleRecord{.op = ins.op});
        writeback(ins.rd, mr.product);
        break;
      }
      case hw::Op::kAdd: {
        const Gf163 a = reg(ins.ra);
        const Gf163 b = reg(ins.rb);
        issue();
        fetch(a, bus_a);
        const Gf163 r = a + b;
        writeback(ins.rd, r, static_cast<std::uint16_t>(popcount(r)));
        break;
      }
      case hw::Op::kMov:
        issue();
        writeback(ins.rd, reg(ins.ra));
        break;
      case hw::Op::kLdi:
        issue();
        writeback(ins.rd, ins.imm);
        break;
      case hw::Op::kSelSet: {
        hw::CycleRecord rec;
        rec.op = ins.op;
        rec.mux_control_toggles = kMuxFanout;  // balanced encoding
        select = ins.select;
        emit(rec);
        break;
      }
    }
  }

  /// PR 4 point_mult shape: microcode vectors regenerated per iteration.
  void point_mult(const std::vector<int>& bits, const Gf163& x,
                  const hw::PointMultOptions& options) {
    regs = {};
    bus_a = Gf163{};
    bus_b = Gf163{};
    select = 0;
    regs[static_cast<std::size_t>(hw::Reg::kXP)] = x;
    for (const auto& ins : hw::microcode::ladder_init(options.z_randomizers))
      run(ins);
    for (std::size_t i = 1; i < bits.size(); ++i) {
      key_bit = static_cast<std::int8_t>(bits[i]);
      iteration = static_cast<std::uint16_t>(i - 1);
      for (const auto& ins : hw::microcode::ladder_step(bits[i])) run(ins);
      key_bit = -1;
      iteration = 0xffff;
    }
    for (const auto& ins : hw::microcode::affine_conversion()) run(ins);
  }
};

/// The PR 4 capture_cycle_trace: records first, two-pass Box–Muller fold.
sc::CycleTrace capture(const ecc::Curve& c, const ecc::Scalar& k,
                       const ecc::Point& p, const sc::CycleSimConfig& cfg) {
  const sc::CycleVictimPlan victim = sc::plan_cycle_victim(c, k, p, cfg);
  rng::Xoshiro256 noise_rng(victim.noise_seed);
  Model m;
  m.point_mult(victim.plan.key_bits, victim.plan.base.x,
               victim.plan.options);
  sc::CycleTrace out;
  out.true_bits = victim.true_bits;
  out.area_ge = m.area_ge;
  out.records = std::move(m.records);
  out.samples.reserve(out.records.size());
  for (const auto& rec : out.records)
    out.samples.push_back(
        sc::cycle_sample_noiseless(cfg.leakage, rec, out.area_ge) +
        sc::gaussian(noise_rng, cfg.leakage.noise_sigma));
  return out;
}

}  // namespace pr4

const ecc::Curve& curve() { return ecc::Curve::k163(); }

ecc::Scalar bench_key() {
  rng::Xoshiro256 rng(29);
  return rng.uniform_nonzero(curve().order());
}

/// Returns false when the fossil baseline stopped modeling the same
/// hardware — main() then fails the run, so the CI ratio gate can never
/// pass against an invalidated baseline.
bool print_table() {
  bench::banner("coproc: streaming engine vs the PR 4 baseline",
                "the cycle-accurate model behind E1/E4/E8/E9 + eval matrix");
  const ecc::Scalar k = bench_key();

  hw::Coprocessor cop{};
  const auto bits = bench::padded_bits(curve(), k);
  const std::size_t closed = cop.point_mult_cycles(bits.size(), {});
  const auto r = cop.point_mult(bits, curve().base_point().x, {}, nullptr);
  std::printf("cycles per ECPM: closed-form %zu, executed %zu (%s)\n",
              closed, r.exec.cycles,
              closed == r.exec.cycles ? "agree" : "MISMATCH");
  std::printf("compiled schedule: ladder step %zu cycles, affine "
              "conversion %zu cycles\n",
              cop.point_mult_cycles(2, {}) - cop.point_mult_cycles(1, {}),
              cop.compile(hw::microcode::affine_conversion()).cycles);

  // The fossil baseline must model the same hardware: identical record
  // stream, cycle for cycle and field for field.
  sc::CycleSimConfig cfg;
  cfg.seed = 1234;
  const auto now = sc::capture_cycle_trace(curve(), k, curve().base_point(),
                                           cfg);
  const auto old = pr4::capture(curve(), k, curve().base_point(), cfg);
  bool same = old.records.size() == now.records.size();
  for (std::size_t i = 0; same && i < now.records.size(); ++i) {
    const auto& a = old.records[i];
    const auto& b = now.records[i];
    same = a.reg_write_toggles == b.reg_write_toggles &&
           a.logic_toggles == b.logic_toggles &&
           a.bus_toggles == b.bus_toggles &&
           a.mux_control_toggles == b.mux_control_toggles &&
           a.clocked_reg_mask == b.clocked_reg_mask &&
           a.key_bit == b.key_bit && a.iteration == b.iteration &&
           a.op == b.op;
  }
  std::printf("PR 4 fossil emits the current record stream: %s "
              "(%zu cycles)\n", same ? "yes" : "NO — baseline invalid",
              now.records.size());

  std::printf("\nsink map: E1 -> energy sink; E4/E9 SPA -> feature sink;\n"
              "capture_cycle_trace -> fused leakage sink (+ records on\n"
              "demand); eval matrix SPA cells -> pooled feature captures.\n");
  return same && closed == r.exec.cycles;
}

void BM_CaptureCycleTracePr4Baseline(benchmark::State& state) {
  const ecc::Scalar k = bench_key();
  sc::CycleSimConfig cfg;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    auto t = pr4::capture(curve(), k, curve().base_point(), cfg);
    benchmark::DoNotOptimize(t.samples.data());
  }
  state.SetLabel("frozen PR 4 fossil: per-iteration microcode + per-mul "
                 "allocs + two-pass fold");
}
BENCHMARK(BM_CaptureCycleTracePr4Baseline)->Unit(benchmark::kMillisecond);

void BM_CaptureCycleTraceReference(benchmark::State& state) {
  const ecc::Scalar k = bench_key();
  sc::CycleSimConfig cfg;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    auto t = sc::capture_cycle_trace_reference(curve(), k,
                                               curve().base_point(), cfg);
    benchmark::DoNotOptimize(t.samples.data());
  }
  state.SetLabel("PR 4 path: record vector + two-pass Box-Muller fold");
}
BENCHMARK(BM_CaptureCycleTraceReference)->Unit(benchmark::kMillisecond);

void BM_CaptureCycleTraceFused(benchmark::State& state) {
  const ecc::Scalar k = bench_key();
  sc::CycleSimConfig cfg;
  cfg.keep_records = false;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    auto t = sc::capture_cycle_trace(curve(), k, curve().base_point(), cfg);
    benchmark::DoNotOptimize(t.samples.data());
  }
  state.SetLabel("fused leakage sink, no records");
}
BENCHMARK(BM_CaptureCycleTraceFused)->Unit(benchmark::kMillisecond);

void BM_CaptureCycleTraceWithRecords(benchmark::State& state) {
  const ecc::Scalar k = bench_key();
  sc::CycleSimConfig cfg;  // keep_records defaults on
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    auto t = sc::capture_cycle_trace(curve(), k, curve().base_point(), cfg);
    benchmark::DoNotOptimize(t.records.data());
  }
  state.SetLabel("fused sink + materialized records (profiling path)");
}
BENCHMARK(BM_CaptureCycleTraceWithRecords)->Unit(benchmark::kMillisecond);

void BM_PointMultEnergyOnly(benchmark::State& state) {
  const ecc::Scalar k = bench_key();
  hw::CoprocessorConfig hc;
  hc.record_cycles = false;
  hw::Coprocessor cop(hc);
  const auto bits = bench::padded_bits(curve(), k);
  for (auto _ : state) {
    auto r = cop.point_mult(bits, curve().base_point().x);
    benchmark::DoNotOptimize(r.energy_j);
  }
  state.SetLabel("E1's path: cycles + weighted toggles, no sink");
}
BENCHMARK(BM_PointMultEnergyOnly)->Unit(benchmark::kMillisecond);

void BM_PointMultRecorded(benchmark::State& state) {
  const ecc::Scalar k = bench_key();
  hw::Coprocessor cop{};
  const auto bits = bench::padded_bits(curve(), k);
  for (auto _ : state) {
    auto r = cop.point_mult(bits, curve().base_point().x);
    benchmark::DoNotOptimize(r.exec.records.data());
  }
  state.SetLabel("record sink, reserved from the compiled cycle total");
}
BENCHMARK(BM_PointMultRecorded)->Unit(benchmark::kMillisecond);

void BM_AveragedCaptureThreads(benchmark::State& state) {
  const ecc::Scalar k = bench_key();
  sc::CycleSimConfig cfg;
  cfg.keep_records = false;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto t = sc::capture_averaged_cycle_trace(curve(), k,
                                              curve().base_point(), cfg, 8);
    benchmark::DoNotOptimize(t.samples.data());
  }
  state.SetLabel(state.range(0) == 1 ? "8 captures, calling thread only"
                                     : "8 captures, shared pool");
}
BENCHMARK(BM_AveragedCaptureThreads)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_SpaFeatureCaptureAveraged(benchmark::State& state) {
  const ecc::Scalar k = bench_key();
  sc::CycleSimConfig prof;
  prof.coproc.secure.uniform_clock_gating = false;
  prof.coproc.secure.balanced_mux_encoding = false;
  prof.leakage.noise_sigma = 100.0;
  rng::Xoshiro256 rng(31);
  const auto schedule = sc::profile_schedule(sc::capture_cycle_trace(
      curve(), rng.uniform_nonzero(curve().order()), curve().base_point(),
      prof));
  for (auto _ : state) {
    auto f = sc::capture_averaged_spa_features(
        curve(), k, curve().base_point(), prof, schedule, 8);
    benchmark::DoNotOptimize(f.selset_amplitudes.data());
  }
  state.SetLabel("8 averaged captures -> 163 POI amplitudes, no traces");
}
BENCHMARK(BM_SpaFeatureCaptureAveraged)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (!print_table()) {
    std::fprintf(stderr,
                 "bench_coproc: baseline conformance failed — the fossil "
                 "or the closed-form cycle count no longer matches the "
                 "engine; the speedup ratio would be meaningless\n");
    return 1;
  }
  return medsec::bench::run_benchmarks_with_json(argc, argv,
                                                 "BENCH_coproc.json");
}
