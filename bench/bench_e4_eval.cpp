// E4b — the attack × countermeasure × lane-backend evaluation matrix.
//
// The paper's §7 table is one attack against one countermeasure. This
// bench runs the generalized grid through sidechannel/eval.h: every
// key-recovery attack (known-input CPA, white-box CPA, DoM) plus TVLA
// against every countermeasure configuration (none, RPC, scalar
// blinding, base-point blinding, shuffled schedule, everything), prints
// the verdict table, and writes the machine-readable verdict matrix to
// BENCH_eval_matrix.json (schema medsec-eval-matrix-v1). The
// google-benchmark timers then measure the per-cell campaign cost for
// the perf-trajectory artifact (BENCH_e4_eval.json).
//
// Exit status enforces the acceptance shape: the bare ladder must fall
// to the white-box CPA, and scalar blinding must hold against it at the
// same trace budget with TVLA t-max under 4.5.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "sidechannel/eval.h"
#include "sidechannel/trace_sim.h"

namespace {

using namespace medsec;
namespace sc = sidechannel;

ecc::Scalar campaign_secret() {
  rng::Xoshiro256 rng(2013);
  return rng.uniform_nonzero(ecc::Curve::k163().order());
}

void print_matrix_and_check() {
  bench::banner("E4b: attack x countermeasure x lane-backend matrix",
                "Section 7 generalized: defense evaluation at campaign "
                "scale");

  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();

  sc::EvalConfig cfg = sc::EvalConfig::standard();
  cfg.break_sweep = {100, 200, 400};
  const sc::EvalMatrix matrix = sc::run_eval_matrix(curve, secret, cfg);

  std::printf("%-14s %-22s %-10s %7s %9s %7s %9s %8s %8s\n", "attack",
              "countermeasure", "lanes", "traces", "accuracy", "t-max",
              "to-break", "verdict", "seconds");
  for (const sc::EvalCell& c : matrix.cells) {
    char to_break[16];
    if (c.attack == "tvla") std::snprintf(to_break, sizeof(to_break), "-");
    else if (c.traces_to_break == 0)
      std::snprintf(to_break, sizeof(to_break), "held");
    else
      std::snprintf(to_break, sizeof(to_break), "%zu", c.traces_to_break);
    std::printf("%-14s %-22s %-10s %7zu %9.3f %7.2f %9s %8s %8.2f\n",
                c.attack.c_str(), c.countermeasure.c_str(),
                c.lane_backend.c_str(), c.traces, c.accuracy, c.tvla_max_t,
                to_break, c.defense_holds ? "HOLDS" : "BROKEN", c.seconds);
  }

  if (!matrix.write_json("BENCH_eval_matrix.json")) {
    std::fprintf(stderr, "failed to write BENCH_eval_matrix.json\n");
    std::exit(1);
  }
  std::printf("\nverdict table written to BENCH_eval_matrix.json (%zu "
              "cells)\n",
              matrix.cells.size());

  // Acceptance shape: bare ladder falls to white-box CPA; scalar
  // blinding holds against it at the same budget and passes TVLA.
  const auto find = [&](const char* attack, const char* cm) {
    for (const sc::EvalCell& c : matrix.cells)
      if (c.attack == attack && c.countermeasure == cm) return c;
    std::fprintf(stderr, "matrix missing cell %s x %s\n", attack, cm);
    std::exit(1);
  };
  const auto bare = find("cpa-whitebox", "none");
  const auto blinded = find("cpa-whitebox", "blind");
  const auto blinded_tvla = find("tvla", "blind");
  const bool ok = bare.key_recovered && !blinded.key_recovered &&
                  blinded.accuracy < 0.9 && blinded_tvla.tvla_max_t < 4.5;
  std::printf("acceptance shape (bare broken, blind holds + TVLA < 4.5): "
              "%s\n",
              ok ? "yes" : "NO (BUG)");
  if (!ok) std::exit(1);

  // Fault-adversary acceptance shape. The matrix must carry both fault
  // attacks against at least three fault-countermeasure columns, the
  // bare and rpc-only (paper's shipped) chips must FALL to both, and the
  // detector rows must HOLD with a dead oracle.
  bool fault_ok = true;
  const auto expect = [&](const sc::EvalCell& c, bool holds) {
    const bool cell_ok =
        c.defense_holds == holds &&
        (holds ? c.informative_shots == 0 : c.key_recovered);
    if (!cell_ok) {
      std::fprintf(stderr, "fault cell %s x %s: expected %s, got %s "
                           "(informative=%zu, recovered=%d)\n",
                   c.attack.c_str(), c.countermeasure.c_str(),
                   holds ? "HOLDS" : "BROKEN",
                   c.defense_holds ? "HOLDS" : "BROKEN",
                   c.informative_shots, int(c.key_recovered));
      fault_ok = false;
    }
  };
  std::size_t fault_cm_columns = 0;
  for (const sc::EvalCell& c : matrix.cells)
    if (c.attack == "fault-safe-error" &&
        (c.countermeasure.find("validate") != std::string::npos ||
         c.countermeasure.find("infect") != std::string::npos))
      ++fault_cm_columns;
  if (fault_cm_columns < 3) {
    std::fprintf(stderr, "only %zu fault-countermeasure columns (need 3)\n",
                 fault_cm_columns);
    fault_ok = false;
  }
  const std::string validated = sc::CountermeasureConfig::validated().name();
  const std::string infective = sc::CountermeasureConfig::infective().name();
  for (const char* atk : {"fault-safe-error", "fault-invalid-point"}) {
    expect(find(atk, "none"), false);
    expect(find(atk, "rpc"), false);
    expect(find(atk, validated.c_str()), true);
    expect(find(atk, infective.c_str()), true);
  }
  std::printf("fault acceptance shape (bare/rpc broken, validated & "
              "infective hold, %zu fault-cm columns): %s\n",
              fault_cm_columns, fault_ok ? "yes" : "NO (BUG)");
  if (!fault_ok) std::exit(1);
}

void BM_EvalCell_CpaWhiteBox_Blind(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();
  sc::EvalConfig cfg;
  cfg.countermeasures = {sc::CountermeasureConfig::scalar_blinded()};
  cfg.attacks = {sc::EvalAttack::kCpaWhiteBox};
  cfg.seed = 2024;
  for (auto _ : state) {
    auto m = sc::run_eval_matrix(curve, secret, cfg);
    benchmark::DoNotOptimize(m.cells.size());
  }
  state.SetLabel("one matrix cell: 400-trace blinded campaign + CPA");
}
BENCHMARK(BM_EvalCell_CpaWhiteBox_Blind)->Unit(benchmark::kMillisecond);

void BM_EvalCell_Tvla_Full(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();
  sc::EvalConfig cfg;
  cfg.countermeasures = {sc::CountermeasureConfig::full()};
  cfg.attacks = {sc::EvalAttack::kTvla};
  cfg.seed = 2024;
  for (auto _ : state) {
    auto m = sc::run_eval_matrix(curve, secret, cfg);
    benchmark::DoNotOptimize(m.cells.size());
  }
  state.SetLabel("one matrix cell: 2x120-trace TVLA under full config");
}
BENCHMARK(BM_EvalCell_Tvla_Full)->Unit(benchmark::kMillisecond);

void BM_BlindedCampaignGeneration(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  const ecc::Scalar secret = campaign_secret();
  sc::AlgorithmicSimConfig sim;
  sim.seed = 7;
  sim.countermeasures = sc::CountermeasureConfig::scalar_blinded();
  for (auto _ : state) {
    auto exp = sc::generate_dpa_traces(curve, secret, 400,
                                       sc::RpcScenario::kDisabled, sim);
    benchmark::DoNotOptimize(exp.traces.traces.size());
  }
  state.SetItemsProcessed(state.iterations() * 400);
  state.SetLabel("400 blinded (196-iteration) wide-lane ladder traces");
}
BENCHMARK(BM_BlindedCampaignGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_matrix_and_check();
  return medsec::bench::run_benchmarks_with_json(argc, argv,
                                                 "BENCH_e4_eval.json");
}
