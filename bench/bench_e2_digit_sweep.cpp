// E2 — the §5 architecture-level trade-off.
//
// Paper: "The choice of the digit-size determines the power needed for
// the computation, as well as the latency and area. By using a digit
// serial multiplication with a 163x4 modular multiplier we achieve the
// optimal area-energy product within the given latency constraints.
// Moreover, the execution time is independent of the key length."
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hw/coprocessor.h"
#include "hw/digit_serial.h"

namespace {

using namespace medsec;

void print_table() {
  bench::banner("E2: digit-serial multiplier size sweep",
                "Section 5 area-power-latency trade-off (d = 4 optimum)");

  const auto tech = hw::Technology::umc130();
  const auto sweep = hw::digit_size_sweep(tech);

  std::printf("%3s %8s %10s %12s %12s %16s %8s\n", "d", "cycles",
              "area[GE]", "power[uW]", "E/mult[nJ]", "area*energy", "");
  double best = 1e300;
  std::size_t best_d = 0;
  for (const auto& p : sweep) {
    if (p.area_energy_product < best) {
      best = p.area_energy_product;
      best_d = p.digit_size;
    }
  }
  for (const auto& p : sweep)
    std::printf("%3zu %8zu %10.0f %12.2f %12.3f %16.3e %8s\n", p.digit_size,
                p.cycles_per_mult, p.area_ge, p.avg_power_w * 1e6,
                p.energy_per_mult_j * 1e9, p.area_energy_product,
                p.digit_size == best_d ? "<- best" : "");
  std::printf("\nmodel optimum: d = %zu; paper picks d = 4. Latency falls\n"
              "as 1/d, area rises with d, glitch depth grows with d — the\n"
              "interior optimum is the paper's design point.\n", best_d);

  // Second claim: execution time independent of the key (value).
  const ecc::Curve& curve = ecc::Curve::k163();
  hw::CoprocessorConfig cfg;
  cfg.record_cycles = false;
  hw::Coprocessor cop(cfg);
  rng::Xoshiro256 rng(7);
  std::size_t cyc = 0;
  bool constant = true;
  for (int i = 0; i < 5; ++i) {
    const auto bits =
        bench::padded_bits(curve, rng.uniform_nonzero(curve.order()));
    const auto r = cop.point_mult(bits, curve.base_point().x);
    if (cyc == 0) cyc = r.exec.cycles;
    constant = constant && (r.exec.cycles == cyc);
  }
  std::printf("execution time across 5 random keys: %zu cycles each -> %s\n",
              cyc, constant ? "constant (as claimed)" : "VARIES (bug!)");
}

void BM_MaluMultiply(benchmark::State& state) {
  const hw::DigitSerialMultiplier malu(
      static_cast<std::size_t>(state.range(0)));
  rng::Xoshiro256 rng(4);
  bigint::U192 va, vb;
  for (std::size_t i = 0; i < 3; ++i) {
    va.set_limb(i, rng.next_u64());
    vb.set_limb(i, rng.next_u64());
  }
  const auto a = gf2m::Gf163::from_bits(va);
  const auto b = gf2m::Gf163::from_bits(vb);
  for (auto _ : state) {
    auto r = malu.multiply(a, b);
    benchmark::DoNotOptimize(r.product);
  }
}
BENCHMARK(BM_MaluMultiply)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
