// E1 — the §6 chip measurements.
//
// Paper: "At the operating frequency of 847.5 kHz and core voltage
// Vdd = 1 V, the processor consumes 50.4 uW and uses only 5.1 uJ for one
// point multiplication. At this frequency, the throughput is 9.8 point
// multiplications per second."
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/secure_processor.h"

namespace {

using namespace medsec;

void print_table() {
  bench::banner("E1: chip energy / power / throughput",
                "Section 6 measured numbers (50.4 uW, 5.1 uJ, 9.8 PM/s)");

  const ecc::Curve& curve = ecc::Curve::k163();
  // Energy-only caller: telemetry off, so every multiplication streams
  // through the energy sink and stores no cycle records.
  core::CountermeasureConfig cm = core::CountermeasureConfig::protected_default();
  cm.record_cycles = false;
  core::SecureEccProcessor proc(curve, cm);
  rng::Xoshiro256 rng(1);

  // Average a few runs (RPC randomizers vary the switching activity).
  double energy = 0, power = 0, seconds = 0;
  std::size_t cycles = 0;
  constexpr int kRuns = 5;
  for (int i = 0; i < kRuns; ++i) {
    const auto out =
        proc.point_mult(rng.uniform_nonzero(curve.order()), curve.base_point());
    energy += out.energy_j;
    power += out.avg_power_w;
    seconds += out.seconds;
    cycles = out.cycles;
  }
  energy /= kRuns;
  power /= kRuns;
  seconds /= kRuns;

  std::printf("%-34s %14s %14s %9s\n", "quantity", "paper", "model",
              "ratio");
  auto row = [](const char* q, double paper, double model, const char* u) {
    std::printf("%-34s %11.2f %s %11.2f %s %8.3f\n", q, paper, u, model, u,
                model / paper);
  };
  row("average power", 50.4, power * 1e6, "uW");
  row("energy per point mult", 5.1, energy * 1e6, "uJ");
  row("throughput", 9.8, 1.0 / seconds, "/s");
  row("clock frequency", 847.5, hw::Technology::umc130().clock_hz / 1e3,
      "kHz");
  row("core area (ECC core, [10])", 12.0, proc.area_ge() / 1e3, "kGE");
  std::printf("(model cycle count per ECPM: %zu)\n", cycles);
  std::printf("\nCalibration note: one constant pair (toggle energy, activity\n"
              "weights) is fitted once against the 5.1 uJ point; power and\n"
              "throughput then FOLLOW from the cycle-accurate model. See\n"
              "hw/technology.h and EXPERIMENTS.md.\n");
}

// --- timers ---------------------------------------------------------------------

void BM_CoprocessorPointMult(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  hw::CoprocessorConfig cfg;
  cfg.record_cycles = false;
  hw::Coprocessor cop(cfg);
  rng::Xoshiro256 rng(2);
  const auto bits =
      bench::padded_bits(curve, rng.uniform_nonzero(curve.order()));
  for (auto _ : state) {
    auto r = cop.point_mult(bits, curve.base_point().x);
    benchmark::DoNotOptimize(r.x_affine);
  }
  state.SetLabel("cycle-accurate model of one 86.9k-cycle ECPM");
}
BENCHMARK(BM_CoprocessorPointMult)->Unit(benchmark::kMillisecond);

void BM_SoftwareLadderPointMult(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(3);
  const auto k = rng.uniform_nonzero(curve.order());
  for (auto _ : state) {
    auto p = ecc::montgomery_ladder(curve, k, curve.base_point());
    benchmark::DoNotOptimize(p);
  }
  state.SetLabel("plain software ladder (no hardware model)");
}
BENCHMARK(BM_SoftwareLadderPointMult)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
