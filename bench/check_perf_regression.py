#!/usr/bin/env python3
"""CI perf-regression gate.

Compares freshly generated google-benchmark JSON files against the
curated baselines in bench/baselines/ and fails (exit 1) when any
benchmark regresses beyond the tolerance band, or when a baselined
benchmark is missing from the fresh run (coverage loss counts as a
regression).

Baselines are matched by file name: bench/baselines/<name>.json is
compared against <fresh-dir>/<name>.json, benchmark entry by benchmark
entry (the "name" field of the google-benchmark schema).

CI machines are noisy and heterogeneous, so the default tolerance is a
wide band meant to catch *large* regressions (an accidental fallback to
the portable backend, a serialized hot loop), not nanosecond drift.
Refresh baselines with --update after an intentional perf change.

Usage:
  python3 bench/check_perf_regression.py [--fresh build]
      [--baselines bench/baselines] [--tolerance 3.0] [--update]
"""

import argparse
import json
import os
import shutil
import sys

# Machine-independent speedup gates: within ONE fresh run of <file>, the
# <baseline_bench> entry must be at least <min_ratio> x slower than the
# <optimized_bench> entry. Both sides run on the same machine in the same
# process, so unlike the absolute tolerance band this asserts the
# optimization itself (e.g. the PR 5 acceptance criterion: the fused
# cycle-capture path is >= 3x the frozen PR 4 baseline fossil).
#
# ISA-gated benches (a lane backend the host CPU lacks) call
# SkipWithError, which google-benchmark records as error_occurred; those
# rows are collected as "skipped" and any gate touching one is skipped,
# not failed — a machine without VPCLMULQDQ must still pass the gate.
# Exact verdict-cell gates on the machine-readable eval matrix
# (BENCH_eval_matrix.json, schema medsec-eval-matrix-v1, written by
# bench_e4_eval). Unlike timings these are bit-deterministic — the
# campaigns are counter-seeded — so the gate is exact equality: the PR 8
# fault-adversary acceptance shape (bare and the paper's shipped rpc-only
# chip FALL to both fault attacks; the detector columns HOLD with a dead
# oracle) must never drift silently. Each row is
#   (attack, countermeasure, expected) with expected keys matched exactly
# against the cell's JSON fields.
FAULT_VERDICT_GATES = [
    ("fault-safe-error", "none",
     {"defense_holds": False, "key_recovered": True, "accuracy": 1.0}),
    ("fault-safe-error", "rpc",
     {"defense_holds": False, "key_recovered": True}),
    # Validation alone cannot see a select glitch (points stay on-curve).
    ("fault-safe-error", "validate",
     {"defense_holds": False, "key_recovered": True}),
    ("fault-safe-error", "validate+cohere",
     {"defense_holds": True, "key_recovered": False,
      "informative_shots": 0}),
    ("fault-safe-error", "rpc+blind+validate+cohere+infect",
     {"defense_holds": True, "key_recovered": False,
      "informative_shots": 0}),
    ("fault-invalid-point", "none",
     {"defense_holds": False, "key_recovered": True}),
    ("fault-invalid-point", "rpc",
     {"defense_holds": False, "key_recovered": True}),
    # ...but validation is exactly the right answer to off-curve points.
    ("fault-invalid-point", "validate",
     {"defense_holds": True, "informative_shots": 0}),
    ("fault-invalid-point", "validate+cohere",
     {"defense_holds": True, "informative_shots": 0}),
    ("fault-invalid-point", "rpc+blind+validate+cohere+infect",
     {"defense_holds": True, "informative_shots": 0}),
]

# Exact verdict gates on the constant-time audit grid
# (BENCH_ct_audit.json, schema medsec-ct-audit-v1, written by ./ct_audit).
# Like the fault matrix, the grid is counter-seeded and measured with the
# deterministic op-count source, so the gate is exact: every shipped
# backend x lane combo and both modeled ladders must PASS the dudect
# test, both leaky negative controls must FAIL it (a harness that stops
# seeing the planted leaks is broken, not clean), the taint interpreter
# must agree, and the whole grid must be bit-identical across the
# in-process rerun. ISA-gated combos may be skipped, never failed; the
# four combos with no ISA requirement must actually have run.
CT_AUDIT_SCHEMA = "medsec-ct-audit-v1"
# (backend, lanes) combos that every CPU can run: a skip here is a bug.
CT_ALWAYS_AVAILABLE = {
    ("portable", "scalar"), ("portable", "bitsliced"),
    ("karatsuba", "scalar"), ("karatsuba", "bitsliced"),
}
# The 3 x 3 core grid the issue requires, plus the mega-lane extras.
CT_REQUIRED_COMBOS = {
    (b, l)
    for b in ("portable", "karatsuba", "clmul")
    for l in ("scalar", "bitsliced", "clmulwide")
} | {("clmul", "vpclmul512"), ("clmul", "vpclmul256"),
     ("portable", "bitsliced256")}
CT_REQUIRED_TARGETS = ("ladder-unblinded", "ladder-blinded")
CT_NEGATIVE_CONTROLS = ("toy-branch", "toy-table")
CT_TAINT_EXPECT = {
    "ladder-classic": None,            # None = must be clean
    "ladder-blinded": None,
    "fe-arithmetic": None,
    "toy-branch": "secret-branch",     # must contain this violation kind
    "toy-table": "secret-table-index",
}

RATIO_GATES = [
    ("BENCH_coproc.json", "BM_CaptureCycleTracePr4Baseline",
     "BM_CaptureCycleTraceFused", 3.0),
    # PR 7 acceptance: lane mul on the VPCLMULQDQ ZMM backend (arg 3) is
    # >= 2x the interleaved-clmul backend (arg 2), per batch of 1024.
    ("BENCH_field_ops.json", "BM_LaneMul/lane_backend:2",
     "BM_LaneMul/lane_backend:3", 2.0),
    # PR 7 acceptance: the 20k-trace DPA campaign retargeted onto the
    # ZMM backend is >= 1.5x the PR 3 interleaved-clmul path (both
    # pinned to 1 thread, auto lane count).
    ("BENCH_dpa_campaign.json", "BM_Campaign20k_LanesClmulWide",
     "BM_Campaign20k_LanesVpclmul512", 1.5),
    # PR 10 acceptance: the sharded UDP gateway at 4 shards clears >= 2x
    # the single-shard throughput on the same machine in the same process
    # (bench_loadgen skips the 4-shard row on hosts with < 4 hardware
    # threads, which skips this gate rather than failing it).
    ("BENCH_loadgen.json", "BM_Loadgen/shards:1/real_time",
     "BM_Loadgen/shards:4/real_time", 2.0),
]


def load_benchmarks(path):
    """(name -> real_time ns, skipped-name set).

    Aggregate rows other than the mean are dropped; rows flagged
    error_occurred (SkipWithError, used for ISA-gated lane backends)
    land in the skipped set instead of the timing map.
    """
    with open(path) as f:
        doc = json.load(f)
    out = {}
    skipped = set()
    for b in doc.get("benchmarks", []):
        if b.get("error_occurred"):
            skipped.add(b["name"])
            continue
        # Skip non-mean aggregate rows (median/stddev/cv) if present.
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "mean":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        out[b["name"]] = float(b["real_time"]) * scale
    return out, skipped


def check_ct_audit(path):
    """Exact verdict checks on the constant-time audit grid."""
    failures = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (json.JSONDecodeError, OSError) as e:
        return [f"BENCH_ct_audit.json: unreadable ({e})"]

    if doc.get("schema") != CT_AUDIT_SCHEMA:
        return [f"BENCH_ct_audit.json: schema {doc.get('schema')!r} "
                f"(want {CT_AUDIT_SCHEMA!r})"]
    if doc.get("source") != "opcount":
        # Wall-clock grids are advisory-only and must not be gated.
        return [f"BENCH_ct_audit.json: source {doc.get('source')!r} is not "
                "the deterministic op-count source; CI must run ./ct_audit "
                "with the default --source opcount"]
    if not doc.get("deterministic_rerun_identical", False):
        failures.append("ct audit: verdict grid not bit-identical across "
                        "same-seed reruns")

    rows = {}
    for r in doc.get("dudect", []):
        rows[(r["target"], r["backend"], r["lanes"])] = r

    combos_seen = set()
    for (target, backend, lanes), r in sorted(rows.items()):
        label = f"{target}/{backend}/{lanes}"
        if target == "lane-ladder-step":
            combos_seen.add((backend, lanes))
        if r.get("skipped"):
            if (backend, lanes) in CT_ALWAYS_AVAILABLE:
                failures.append(f"ct audit: {label} skipped but requires "
                                "no ISA (must run everywhere)")
            else:
                print(f"skip ct:{label}: ISA unavailable on this CPU")
            continue
        want_pass = r.get("expected", "pass") == "pass"
        ok = r.get("pass") == want_pass
        verdict = "ok" if ok else "FAIL"
        print(f"{verdict:4s} ct:{label}: max|t|={r.get('max_abs_t', 0):.2f} "
              f"pass={r.get('pass')} (expected "
              f"{'pass' if want_pass else 'fail'})")
        if not ok:
            reason = ("leaks" if want_pass
                      else "was not detected by the harness")
            failures.append(f"ct audit: {label} {reason} "
                            f"(max|t|={r.get('max_abs_t', 0):.2f})")

    missing = CT_REQUIRED_COMBOS - combos_seen
    if missing:
        failures.append("ct audit: backend x lane combos missing from grid: "
                        + ", ".join(f"{b}/{l}" for b, l in sorted(missing)))
    for target in CT_REQUIRED_TARGETS + CT_NEGATIVE_CONTROLS:
        if not any(t == target for (t, _, _) in rows):
            failures.append(f"ct audit: required target missing: {target}")

    taint = {r["target"]: r for r in doc.get("taint", [])}
    for target, want_kind in CT_TAINT_EXPECT.items():
        r = taint.get(target)
        if r is None:
            failures.append(f"ct audit: taint row missing: {target}")
            continue
        if want_kind is None:
            ok = r.get("clean") is True
            detail = "clean" if ok else "VIOLATIONS " + str(r.get("violations"))
        else:
            kinds = {v.get("kind") for v in r.get("violations", [])}
            ok = want_kind in kinds
            detail = f"kinds={sorted(kinds)} (want {want_kind})"
        print(f"{'ok' if ok else 'FAIL':4s} ct-taint:{target}: {detail}")
        if not ok:
            failures.append(f"ct audit: taint {target}: {detail}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", default="build",
                    help="directory containing fresh BENCH_*.json files")
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory of curated baseline JSON files")
    ap.add_argument("--tolerance", type=float, default=3.0,
                    help="fail when fresh_time > tolerance * baseline_time")
    ap.add_argument("--update", action="store_true",
                    help="copy fresh files over the baselines instead of "
                         "checking")
    args = ap.parse_args()

    baseline_files = sorted(
        f for f in os.listdir(args.baselines) if f.endswith(".json"))
    if not baseline_files:
        print(f"no baselines in {args.baselines}; nothing to check")
        return 0

    if args.update:
        for name in baseline_files:
            src = os.path.join(args.fresh, name)
            if not os.path.exists(src):
                print(f"UPDATE SKIP {name}: no fresh file in {args.fresh}")
                continue
            shutil.copyfile(src, os.path.join(args.baselines, name))
            print(f"updated baseline {name}")
        return 0

    failures = []
    for name in baseline_files:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: fresh run missing (bench not executed?)")
            continue
        try:
            base, _ = load_benchmarks(os.path.join(args.baselines, name))
            fresh, fresh_skipped = load_benchmarks(fresh_path)
        except (json.JSONDecodeError, OSError, KeyError, ValueError) as e:
            failures.append(f"{name}: unreadable benchmark JSON ({e})")
            continue
        for bench, base_ns in sorted(base.items()):
            if bench in fresh_skipped:
                # Baselined on a machine with the ISA, skipped on this
                # one — acceptable, not a coverage loss.
                print(f"skip {name}:{bench}: unavailable on this CPU")
                continue
            if bench not in fresh:
                failures.append(f"{name}:{bench}: missing from fresh run")
                continue
            ratio = fresh[bench] / base_ns if base_ns > 0 else float("inf")
            verdict = "FAIL" if ratio > args.tolerance else "ok"
            print(f"{verdict:4s} {name}:{bench}: "
                  f"{base_ns:12.0f} ns -> {fresh[bench]:12.0f} ns "
                  f"({ratio:.2f}x, tolerance {args.tolerance:.1f}x)")
            if ratio > args.tolerance:
                failures.append(
                    f"{name}:{bench}: {ratio:.2f}x slower than baseline")

    for name, slow, fast, min_ratio in RATIO_GATES:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: fresh run missing (ratio gate)")
            continue
        try:
            fresh, fresh_skipped = load_benchmarks(fresh_path)
        except (json.JSONDecodeError, OSError, KeyError, ValueError) as e:
            failures.append(f"{name}: unreadable benchmark JSON ({e})")
            continue
        if slow in fresh_skipped or fast in fresh_skipped:
            print(f"skip {name}: ratio gate {slow} / {fast} "
                  f"(backend unavailable on this CPU)")
            continue
        if slow not in fresh or fast not in fresh:
            failures.append(f"{name}: ratio gate benches missing "
                            f"({slow} / {fast})")
            continue
        ratio = fresh[slow] / fresh[fast] if fresh[fast] > 0 else 0.0
        verdict = "FAIL" if ratio < min_ratio else "ok"
        print(f"{verdict:4s} {name}: {slow} / {fast} = {ratio:.2f}x "
              f"(required >= {min_ratio:.1f}x)")
        if ratio < min_ratio:
            failures.append(
                f"{name}: speedup {ratio:.2f}x below required "
                f"{min_ratio:.1f}x ({slow} vs {fast})")

    matrix_path = os.path.join(args.fresh, "BENCH_eval_matrix.json")
    if not os.path.exists(matrix_path):
        failures.append("BENCH_eval_matrix.json: fresh run missing "
                        "(fault verdict gate)")
    else:
        try:
            with open(matrix_path) as f:
                matrix = json.load(f)
            cells = {(c["attack"], c["countermeasure"]): c
                     for c in matrix.get("cells", [])}
        except (json.JSONDecodeError, OSError, KeyError, TypeError) as e:
            cells = None
            failures.append(f"BENCH_eval_matrix.json: unreadable ({e})")
        if cells is not None:
            for attack, cm, expected in FAULT_VERDICT_GATES:
                cell = cells.get((attack, cm))
                if cell is None:
                    failures.append(
                        f"eval matrix: missing fault cell {attack} x {cm}")
                    continue
                bad = [f"{k}={cell.get(k)!r} (want {v!r})"
                       for k, v in expected.items() if cell.get(k) != v]
                verdict = "FAIL" if bad else "ok"
                print(f"{verdict:4s} eval:{attack} x {cm}: " +
                      ("; ".join(bad) if bad else "verdict exact"))
                if bad:
                    failures.append(
                        f"eval matrix {attack} x {cm}: " + "; ".join(bad))

    ct_path = os.path.join(args.fresh, "BENCH_ct_audit.json")
    if not os.path.exists(ct_path):
        failures.append("BENCH_ct_audit.json: fresh run missing "
                        "(constant-time audit gate)")
    else:
        failures.extend(check_ct_audit(ct_path))

    if failures:
        print("\nPERF REGRESSION GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf gate: all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
