#!/usr/bin/env python3
"""CI perf-regression gate.

Compares freshly generated google-benchmark JSON files against the
curated baselines in bench/baselines/ and fails (exit 1) when any
benchmark regresses beyond the tolerance band, or when a baselined
benchmark is missing from the fresh run (coverage loss counts as a
regression).

Baselines are matched by file name: bench/baselines/<name>.json is
compared against <fresh-dir>/<name>.json, benchmark entry by benchmark
entry (the "name" field of the google-benchmark schema).

CI machines are noisy and heterogeneous, so the default tolerance is a
wide band meant to catch *large* regressions (an accidental fallback to
the portable backend, a serialized hot loop), not nanosecond drift.
Refresh baselines with --update after an intentional perf change.

Usage:
  python3 bench/check_perf_regression.py [--fresh build]
      [--baselines bench/baselines] [--tolerance 3.0] [--update]
"""

import argparse
import json
import os
import shutil
import sys

# Machine-independent speedup gates: within ONE fresh run of <file>, the
# <baseline_bench> entry must be at least <min_ratio> x slower than the
# <optimized_bench> entry. Both sides run on the same machine in the same
# process, so unlike the absolute tolerance band this asserts the
# optimization itself (e.g. the PR 5 acceptance criterion: the fused
# cycle-capture path is >= 3x the frozen PR 4 baseline fossil).
RATIO_GATES = [
    ("BENCH_coproc.json", "BM_CaptureCycleTracePr4Baseline",
     "BM_CaptureCycleTraceFused", 3.0),
]


def load_benchmarks(path):
    """name -> real_time in ns (aggregates skipped, means kept)."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip non-mean aggregate rows (median/stddev/cv) if present.
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "mean":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        out[b["name"]] = float(b["real_time"]) * scale
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", default="build",
                    help="directory containing fresh BENCH_*.json files")
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory of curated baseline JSON files")
    ap.add_argument("--tolerance", type=float, default=3.0,
                    help="fail when fresh_time > tolerance * baseline_time")
    ap.add_argument("--update", action="store_true",
                    help="copy fresh files over the baselines instead of "
                         "checking")
    args = ap.parse_args()

    baseline_files = sorted(
        f for f in os.listdir(args.baselines) if f.endswith(".json"))
    if not baseline_files:
        print(f"no baselines in {args.baselines}; nothing to check")
        return 0

    if args.update:
        for name in baseline_files:
            src = os.path.join(args.fresh, name)
            if not os.path.exists(src):
                print(f"UPDATE SKIP {name}: no fresh file in {args.fresh}")
                continue
            shutil.copyfile(src, os.path.join(args.baselines, name))
            print(f"updated baseline {name}")
        return 0

    failures = []
    for name in baseline_files:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: fresh run missing (bench not executed?)")
            continue
        try:
            base = load_benchmarks(os.path.join(args.baselines, name))
            fresh = load_benchmarks(fresh_path)
        except (json.JSONDecodeError, OSError, KeyError, ValueError) as e:
            failures.append(f"{name}: unreadable benchmark JSON ({e})")
            continue
        for bench, base_ns in sorted(base.items()):
            if bench not in fresh:
                failures.append(f"{name}:{bench}: missing from fresh run")
                continue
            ratio = fresh[bench] / base_ns if base_ns > 0 else float("inf")
            verdict = "FAIL" if ratio > args.tolerance else "ok"
            print(f"{verdict:4s} {name}:{bench}: "
                  f"{base_ns:12.0f} ns -> {fresh[bench]:12.0f} ns "
                  f"({ratio:.2f}x, tolerance {args.tolerance:.1f}x)")
            if ratio > args.tolerance:
                failures.append(
                    f"{name}:{bench}: {ratio:.2f}x slower than baseline")

    for name, slow, fast, min_ratio in RATIO_GATES:
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: fresh run missing (ratio gate)")
            continue
        try:
            fresh = load_benchmarks(fresh_path)
        except (json.JSONDecodeError, OSError, KeyError, ValueError) as e:
            failures.append(f"{name}: unreadable benchmark JSON ({e})")
            continue
        if slow not in fresh or fast not in fresh:
            failures.append(f"{name}: ratio gate benches missing "
                            f"({slow} / {fast})")
            continue
        ratio = fresh[slow] / fresh[fast] if fresh[fast] > 0 else 0.0
        verdict = "FAIL" if ratio < min_ratio else "ok"
        print(f"{verdict:4s} {name}: {slow} / {fast} = {ratio:.2f}x "
              f"(required >= {min_ratio:.1f}x)")
        if ratio < min_ratio:
            failures.append(
                f"{name}: speedup {ratio:.2f}x below required "
                f"{min_ratio:.1f}x ({slow} vs {fast})")

    if failures:
        print("\nPERF REGRESSION GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf gate: all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
