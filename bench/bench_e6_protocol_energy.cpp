// E6 — computation vs communication energy (§4, refs [4, 5]).
//
// Paper: "Several exercises to evaluate the computation versus
// communication cost of secret-key versus public-key based security
// protocols have been made: the conclusions depend on the cryptographic
// algorithm, the digital platform and the wireless distance over which
// the communication occurs." Also: server-auth-first ordering saves the
// energy of failed sessions.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ciphers/aes128.h"
#include "ciphers/present.h"
#include "protocol/ecies.h"
#include "protocol/mutual_auth.h"
#include "protocol/peeters_hermans.h"
#include "protocol/schnorr.h"

namespace {

using namespace medsec;
namespace proto = protocol;

proto::CipherFactory aes_factory() {
  return [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<ciphers::BlockCipher>(new ciphers::Aes128(key));
  };
}
proto::CipherFactory present_factory() {
  return [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<ciphers::BlockCipher>(new ciphers::Present(key));
  };
}

void print_table() {
  bench::banner("E6: protocol energy, computation vs communication",
                "Section 4 energy levers + refs [4, 5] crossover study");

  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(6);
  const proto::TagCostModel cost;

  // Build one session of each protocol family and take its ledger.
  proto::PhReader reader = proto::ph_setup_reader(curve, rng);
  const auto tag = proto::ph_register_tag(curve, reader, rng);
  const auto ph = proto::run_ph_session(curve, tag, reader, rng);

  const auto schnorr_kp = proto::schnorr_keygen(curve, rng);
  const auto schnorr = proto::run_schnorr_session(curve, schnorr_kp, rng);

  const auto keys =
      proto::derive_session_keys(std::vector<std::uint8_t>(16, 1), 16);
  const std::vector<std::uint8_t> telemetry(32, 0x42);
  const auto sk_aes =
      proto::run_mutual_auth(aes_factory(), keys, telemetry, rng);
  const auto keys10 =
      proto::derive_session_keys(std::vector<std::uint8_t>(16, 2), 10);
  const auto sk_present =
      proto::run_mutual_auth(present_factory(), keys10, telemetry, rng);

  // Store-and-forward upload (no live round-trip): ECIES to the clinic.
  const auto clinic = proto::ecies_keygen(curve, rng);
  proto::EnergyLedger ecies_ledger;
  proto::ecies_encrypt(curve, clinic.Y, telemetry, aes_factory(), 16, rng,
                       &ecies_ledger);

  struct Row {
    const char* name;
    const proto::EnergyLedger* ledger;
  };
  const Row rows[] = {
      {"PKC ident (Peeters-Hermans)", &ph.tag_ledger},
      {"PKC ident (Schnorr)", &schnorr.tag_ledger},
      {"SK mutual auth (AES-128)", &sk_aes.tag_ledger},
      {"SK mutual auth (PRESENT-80)", &sk_present.tag_ledger},
      {"PKC upload (ECIES, AES-128)", &ecies_ledger},
  };

  std::printf("tag-side ledger per session:\n");
  std::printf("%-30s %6s %7s %8s %8s %8s\n", "protocol", "ECPM", "modmul",
              "ciphblk", "TX bits", "RX bits");
  for (const auto& r : rows)
    std::printf("%-30s %6zu %7zu %8zu %8zu %8zu\n", r.name, r.ledger->ecpm,
                r.ledger->modmul, r.ledger->cipher_blocks, r.ledger->tx_bits,
                r.ledger->rx_bits);

  for (const bool implant : {false, true}) {
    const auto radio =
        implant ? hw::RadioModel::implant() : hw::RadioModel::ban();
    std::printf("\ntotal tag energy [uJ] vs distance, %s radio "
                "(path-loss n = %.0f):\n",
                implant ? "implant" : "BAN", radio.path_loss_exponent);
    std::printf("%-30s", "protocol \\ distance [m]");
    const double dists[] = {0.1, 0.5, 2.0, 10.0, 50.0};
    for (const double d : dists) std::printf(" %8.1f", d);
    std::printf("\n");
    for (const auto& r : rows) {
      std::printf("%-30s", r.name);
      for (const double d : dists)
        std::printf(" %8.2f", cost.session_energy_j(*r.ledger, radio, d) * 1e6);
      std::printf("\n");
    }
  }

  // The third §4 lever: failed sessions under each ordering.
  proto::MutualAuthFaults fake_server;
  fake_server.wrong_server_key = true;
  proto::MutualAuthConfig first, naive;
  naive.server_first = false;
  const auto f1 = proto::run_mutual_auth(aes_factory(), keys, telemetry, rng,
                                         first, fake_server);
  const auto f2 = proto::run_mutual_auth(aes_factory(), keys, telemetry, rng,
                                         naive, fake_server);
  std::printf("\nfailed-session compute energy (impersonated server):\n"
              "  server-auth-first : %.3f uJ\n"
              "  naive ordering    : %.3f uJ   (%.1fx more wasted)\n",
              cost.compute_energy_j(f1.tag_ledger) * 1e6,
              cost.compute_energy_j(f2.tag_ledger) * 1e6,
              cost.compute_energy_j(f2.tag_ledger) /
                  cost.compute_energy_j(f1.tag_ledger));
  std::printf("\nconclusion (matches refs [4,5]): which design wins depends\n"
              "on algorithm (AES vs PRESENT vs ECC), platform (co-processor\n"
              "energy), and distance (radio exponent) — no universal answer.\n");
}

void BM_PhSession(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(10);
  proto::PhReader reader = proto::ph_setup_reader(curve, rng);
  const auto tag = proto::ph_register_tag(curve, reader, rng);
  for (auto _ : state) {
    auto s = proto::run_ph_session(curve, tag, reader, rng);
    benchmark::DoNotOptimize(s.identified);
  }
}
BENCHMARK(BM_PhSession)->Unit(benchmark::kMillisecond);

void BM_MutualAuthSession(benchmark::State& state) {
  rng::Xoshiro256 rng(11);
  const auto keys =
      proto::derive_session_keys(std::vector<std::uint8_t>(16, 1), 16);
  const std::vector<std::uint8_t> telemetry(32, 0x42);
  const auto factory = aes_factory();
  for (auto _ : state) {
    auto s = proto::run_mutual_auth(factory, keys, telemetry, rng);
    benchmark::DoNotOptimize(s.telemetry_delivered);
  }
}
BENCHMARK(BM_MutualAuthSession)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return medsec::bench::run_benchmarks_with_json(argc, argv,
                                                 "BENCH_e6_protocol.json");
}
