// E8 — the §4 memory argument.
//
// Paper: "Note that MPL also allows us to use only the x coordinate to
// represent a point. One coordinate requires 163 bits of memory. Our ECC
// chip uses six 163-bit registers for the whole point multiplication. On
// the contrary, the best known algorithm for ECPM over a prime field uses
// 8 registers excluding a and b [6]."
#include <benchmark/benchmark.h>

#include <set>

#include "bench_util.h"
#include "hw/coprocessor.h"
#include "hw/gates.h"

namespace {

using namespace medsec;

/// Count the distinct architectural registers a microcode stream touches —
/// the mechanical version of the paper's register-budget claim.
std::size_t registers_touched(const std::vector<hw::Instruction>& prog,
                              std::set<hw::Reg>& seen) {
  for (const auto& ins : prog) {
    seen.insert(ins.rd);
    seen.insert(ins.ra);
    if (ins.op == hw::Op::kMul || ins.op == hw::Op::kAdd)
      seen.insert(ins.rb);
  }
  return seen.size();
}

void print_table() {
  bench::banner("E8: register budget of the point multiplication",
                "Section 4 (6 registers for x-only MPL vs 8 for co-Z [6])");

  // Measure our own microcode, don't just assert it.
  std::set<hw::Reg> seen;
  registers_touched(hw::microcode::ladder_init(
                        std::make_pair(gf2m::Gf163{2}, gf2m::Gf163{3})),
                    seen);
  registers_touched(hw::microcode::ladder_step(0), seen);
  registers_touched(hw::microcode::ladder_step(1), seen);
  registers_touched(hw::microcode::affine_conversion(), seen);
  const std::size_t ours = seen.size();

  struct Row {
    const char* algorithm;
    std::size_t regs;
    std::size_t bits;
    const char* source;
  };
  const Row rows[] = {
      {"x-only MPL, F_2^163 (this chip)", ours, ours * 163,
       "measured from our microcode"},
      {"co-Z Jacobian ladder, F_p (163b)", 8, 8 * 163,
       "Hutter-Joye-Sierra [6], excl. a,b"},
      {"affine double-and-add, F_2^163", 4, 4 * 163,
       "x,y accumulator + x,y base (leaky baseline)"},
  };
  std::printf("%-36s %6s %10s   %s\n", "algorithm", "regs", "bits",
              "source");
  for (const auto& r : rows)
    std::printf("%-36s %6zu %10zu   %s\n", r.algorithm, r.regs, r.bits,
                r.source);

  const double reg_area = 6 * hw::register_ge(163);
  std::printf("\nour register file: %zu x 163 bits = %.0f GE of the\n"
              "%.0f GE core (%.0f%%) — 2 fewer registers than the prime-\n"
              "field alternative saves %.0f GE (~%.1f%% of the core).\n",
              ours, reg_area, hw::ecc_coprocessor_ge(163, 4),
              100.0 * reg_area / hw::ecc_coprocessor_ge(163, 4),
              2 * hw::register_ge(163),
              100.0 * 2 * hw::register_ge(163) /
                  hw::ecc_coprocessor_ge(163, 4));
}

void BM_LadderStepMicrocodeBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto p = hw::microcode::ladder_step(1);
    benchmark::DoNotOptimize(p.size());
  }
}
BENCHMARK(BM_LadderStepMicrocodeBuild);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
