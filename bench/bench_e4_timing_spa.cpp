// E4 — timing (§7) and SPA (§6/§7) resistance.
//
// Paper (timing): "The prototype co-processor is intrinsically resistant
// to timing attacks ... the Montgomery powering ladder requires the same
// number of iterations, while at architecture level, each iteration uses
// a constant number of clock cycles."
//
// Paper (SPA): "the device is mostly secure against ... Simple Power
// Analysis (SPA) attacks. We identified a complex attack that could
// extract the key since a small source of SPA leakage was detected in our
// white-box evaluation" — the attacker "has to perform a complex
// profiling phase with an identical device".
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sidechannel/spa.h"
#include "sidechannel/timing.h"

namespace {

using namespace medsec;
namespace sc = sidechannel;

void print_timing_table() {
  bench::banner("E4a: timing-attack surface",
                "Section 7 constant-time claim vs leaky baseline");
  const ecc::Curve& curve = ecc::Curve::k163();
  std::printf("%-22s %12s %12s %18s %12s\n", "algorithm", "mean slots",
              "variance", "corr(time,HW(k))", "verdict");
  struct Row {
    const char* name;
    ecc::MultAlgorithm alg;
  };
  for (const Row& r : {Row{"double-and-add", ecc::MultAlgorithm::kDoubleAndAdd},
                       Row{"width-4 NAF", ecc::MultAlgorithm::kWnaf},
                       Row{"tau-NAF (Koblitz)", ecc::MultAlgorithm::kTauNaf},
                       Row{"Montgomery ladder", ecc::MultAlgorithm::kMontgomeryLadder},
                       Row{"ladder + RPC", ecc::MultAlgorithm::kLadderRpc}}) {
    const auto rep = sc::timing_analysis(curve, r.alg, 400);
    std::printf("%-22s %12.1f %12.2f %18.3f %12s\n", r.name, rep.mean,
                rep.variance, rep.correlation_with_weight,
                rep.constant_time ? "constant" : "LEAKS");
  }
}

void print_spa_table() {
  bench::banner("E4b: SPA via mux-control and clock-gating leaks",
                "Section 6 circuit guidelines / Figure 3");
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(8);
  const ecc::Scalar secret = rng.uniform_nonzero(curve.order());

  // Profiling phase on an identical attacker-controlled device (§7).
  sc::CycleSimConfig prof;
  prof.coproc.secure.uniform_clock_gating = false;
  prof.leakage.noise_sigma = 100.0;
  const auto profiling = sc::capture_cycle_trace(
      curve, rng.uniform_nonzero(curve.order()), curve.base_point(), prof);
  const auto schedule = sc::profile_schedule(profiling);

  std::printf("%-18s %-16s %14s %14s\n", "mux encoding", "clock gating",
              "mux-SPA bits", "gating-SPA bits");
  for (const bool balanced : {false, true}) {
    for (const bool uniform : {false, true}) {
      sc::CycleSimConfig cfg;
      cfg.coproc.secure.balanced_mux_encoding = balanced;
      cfg.coproc.secure.uniform_clock_gating = uniform;
      cfg.leakage.noise_sigma = 100.0;
      // Averaged victim through the SPA feature-extractor sink: the 64
      // captures stream ~163 POI amplitudes each instead of 86.9k-sample
      // traces (same amplitudes, bit for bit).
      const auto victim = sc::capture_averaged_spa_features(
          curve, secret, curve.base_point(), cfg, schedule, 64);
      const auto mux = sc::mux_control_spa(victim);
      const auto gate = sc::clock_gating_spa(victim);
      std::printf("%-18s %-16s %8.1f/163 %10.1f/163\n",
                  balanced ? "balanced (Fig.3)" : "naive",
                  uniform ? "uniform" : "data-dependent",
                  mux.accuracy * 163, gate.accuracy * 163);
    }
  }
  std::printf("\n163/163 = whole key from one averaged trace; ~81/163 = "
              "coin flip.\nBoth countermeasures together reproduce the "
              "paper's shipped configuration.\n");
}

void BM_TimingAnalysis(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  for (auto _ : state) {
    auto rep = sc::timing_analysis(curve,
                                   ecc::MultAlgorithm::kMontgomeryLadder, 50);
    benchmark::DoNotOptimize(rep.variance);
  }
}
BENCHMARK(BM_TimingAnalysis)->Unit(benchmark::kMillisecond);

void BM_CycleTraceCapture(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(9);
  const ecc::Scalar k = rng.uniform_nonzero(curve.order());
  sc::CycleSimConfig cfg;
  for (auto _ : state) {
    auto t = sc::capture_cycle_trace(curve, k, curve.base_point(), cfg);
    benchmark::DoNotOptimize(t.samples.size());
  }
  state.SetLabel("one 86.9k-sample cycle-accurate trace");
}
BENCHMARK(BM_CycleTraceCapture)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_timing_table();
  print_spa_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
