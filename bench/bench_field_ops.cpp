// Microbenchmarks of the arithmetic substrates — the performance baseline
// for everything above them (no paper table; supporting data for
// EXPERIMENTS.md's runtime notes).
//
// The Gf163 benchmarks run once per arithmetic backend (portable /
// karatsuba / clmul when the CPU has a hardware carry-less multiply);
// unavailable backends report "unavailable" and are skipped. Unless the
// caller passes its own --benchmark_out, the run also emits
// BENCH_field_ops.json (google-benchmark's JSON schema) next to the
// binary, which the CI job archives as the perf trajectory artifact.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "bigint/modring.h"
#include "ecc/curve.h"
#include "ecc/fixed_base.h"
#include "ecc/koblitz.h"
#include "ecc/ladder.h"
#include "gf2m/backend.h"
#include "gf2m/gf2_163.h"
#include "rng/xoshiro.h"

namespace {

using namespace medsec;
using gf2m::Backend;
using gf2m::Gf163;

Gf163 rand_fe(rng::Xoshiro256& rng) {
  bigint::U192 v;
  for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
  return Gf163::from_bits(v);
}

/// Switch the global dispatch to the backend named by the benchmark arg;
/// returns false (after flagging the run) when it is unavailable.
bool use_backend(benchmark::State& state) {
  const auto b = static_cast<Backend>(state.range(0));
  if (!gf2m::set_backend(b)) {
    state.SkipWithError("backend unavailable on this CPU");
    return false;
  }
  state.SetLabel(gf2m::backend_name(b));
  return true;
}

#define MEDSEC_BENCH_BACKENDS(fn) \
  BENCHMARK(fn)->Arg(0)->Arg(1)->Arg(2)->ArgName("backend")

void BM_Gf163Mul(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(1);
  const Gf163 a = rand_fe(rng), b = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::mul(a, b));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163Mul);

void BM_Gf163MulAddMul(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(11);
  const Gf163 a = rand_fe(rng), b = rand_fe(rng);
  const Gf163 c = rand_fe(rng), d = rand_fe(rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(Gf163::mul_add_mul(a, b, c, d));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163MulAddMul);

void BM_Gf163Sqr(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(2);
  const Gf163 a = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::sqr(a));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163Sqr);

void BM_Gf163Inv(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(3);
  const Gf163 a = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::inv(a));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163Inv);

void BM_Gf163BatchInv(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(13);
  constexpr std::size_t kBatch = 64;
  std::vector<Gf163> pool(kBatch);
  for (auto& e : pool) {
    e = rand_fe(rng);
    if (e.is_zero()) e = Gf163::one();
  }
  std::vector<Gf163> work(kBatch);
  for (auto _ : state) {
    work = pool;
    Gf163::batch_inv(work.data(), work.size());
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
MEDSEC_BENCH_BACKENDS(BM_Gf163BatchInv);

void BM_Gf163Sqrt(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(4);
  const Gf163 a = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::sqrt(a));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163Sqrt);

void BM_LadderIteration(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  ecc::LadderState s =
      ecc::ladder_initial_state(c.b(), c.base_point().x);
  std::uint64_t bit = 0;
  for (auto _ : state) {
    ecc::ladder_iteration(c.b(), c.base_point().x, s, bit ^= 1);
    benchmark::DoNotOptimize(s.x1);
  }
}
MEDSEC_BENCH_BACKENDS(BM_LadderIteration);

void BM_LadderScalarMult(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(7);
  const auto k = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(ecc::montgomery_ladder(c, k, c.base_point()));
}
MEDSEC_BENCH_BACKENDS(BM_LadderScalarMult);

void BM_FixedBaseCombMult(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  const auto& comb = ecc::generator_comb(c);
  rng::Xoshiro256 rng(8);
  const auto k = rng.uniform_nonzero(c.order());
  for (auto _ : state) benchmark::DoNotOptimize(comb.mult(k));
}
MEDSEC_BENCH_BACKENDS(BM_FixedBaseCombMult);

void BM_FixedBaseCombMultCt(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  const auto& comb = ecc::generator_comb(c);
  rng::Xoshiro256 rng(9);
  const auto k = rng.uniform_nonzero(c.order());
  for (auto _ : state) benchmark::DoNotOptimize(comb.mult_ct(k));
}
MEDSEC_BENCH_BACKENDS(BM_FixedBaseCombMultCt);

void BM_TauNafMultPrecomp(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  const auto& pre = ecc::generator_tau_precomp(c);
  rng::Xoshiro256 rng(10);
  const auto k = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(ecc::tau_naf_mult(c, k, pre));
}
MEDSEC_BENCH_BACKENDS(BM_TauNafMultPrecomp);

void BM_AffinePointAdd(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  const ecc::Point g = c.base_point();
  ecc::Point p = c.dbl(g);
  for (auto _ : state) {
    p = c.add(p, g);
    benchmark::DoNotOptimize(p);
  }
}
MEDSEC_BENCH_BACKENDS(BM_AffinePointAdd);

void BM_ValidateSubgroupPoint(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(12);
  const ecc::Point p =
      ecc::montgomery_ladder(c, rng.uniform_nonzero(c.order()),
                             c.base_point());
  for (auto _ : state)
    benchmark::DoNotOptimize(c.validate_subgroup_point(p));
}
MEDSEC_BENCH_BACKENDS(BM_ValidateSubgroupPoint);

// --- backend-independent substrates (integer scalar ring) -------------------

void BM_ScalarRingMul(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(5);
  const auto a = rng.uniform_nonzero(c.order());
  const auto b = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(c.scalar_ring().mul(a, b));
}
BENCHMARK(BM_ScalarRingMul);

void BM_ScalarRingInv(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(6);
  const auto a = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(c.scalar_ring().inv(a));
}
BENCHMARK(BM_ScalarRingInv);

}  // namespace

int main(int argc, char** argv) {
  return medsec::bench::run_benchmarks_with_json(argc, argv,
                                                 "BENCH_field_ops.json");
}
