// Microbenchmarks of the arithmetic substrates — the performance baseline
// for everything above them (no paper table; supporting data for
// EXPERIMENTS.md's runtime notes).
#include <benchmark/benchmark.h>

#include "bigint/modring.h"
#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "gf2m/gf2_163.h"
#include "rng/xoshiro.h"

namespace {

using namespace medsec;
using gf2m::Gf163;

Gf163 rand_fe(rng::Xoshiro256& rng) {
  bigint::U192 v;
  for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
  return Gf163::from_bits(v);
}

void BM_Gf163Mul(benchmark::State& state) {
  rng::Xoshiro256 rng(1);
  const Gf163 a = rand_fe(rng), b = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::mul(a, b));
}
BENCHMARK(BM_Gf163Mul);

void BM_Gf163Sqr(benchmark::State& state) {
  rng::Xoshiro256 rng(2);
  const Gf163 a = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::sqr(a));
}
BENCHMARK(BM_Gf163Sqr);

void BM_Gf163Inv(benchmark::State& state) {
  rng::Xoshiro256 rng(3);
  const Gf163 a = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::inv(a));
}
BENCHMARK(BM_Gf163Inv);

void BM_Gf163Sqrt(benchmark::State& state) {
  rng::Xoshiro256 rng(4);
  const Gf163 a = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::sqrt(a));
}
BENCHMARK(BM_Gf163Sqrt);

void BM_LadderIteration(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  ecc::LadderState s =
      ecc::ladder_initial_state(c.b(), c.base_point().x);
  std::uint64_t bit = 0;
  for (auto _ : state) {
    ecc::ladder_iteration(c.b(), c.base_point().x, s, bit ^= 1);
    benchmark::DoNotOptimize(s.x1);
  }
}
BENCHMARK(BM_LadderIteration);

void BM_AffinePointAdd(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  const ecc::Point g = c.base_point();
  ecc::Point p = c.dbl(g);
  for (auto _ : state) {
    p = c.add(p, g);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_AffinePointAdd);

void BM_ScalarRingMul(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(5);
  const auto a = rng.uniform_nonzero(c.order());
  const auto b = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(c.scalar_ring().mul(a, b));
}
BENCHMARK(BM_ScalarRingMul);

void BM_ScalarRingInv(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(6);
  const auto a = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(c.scalar_ring().inv(a));
}
BENCHMARK(BM_ScalarRingInv);

}  // namespace

BENCHMARK_MAIN();
