// Microbenchmarks of the arithmetic substrates — the performance baseline
// for everything above them (no paper table; supporting data for
// EXPERIMENTS.md's runtime notes).
//
// The Gf163 benchmarks run once per arithmetic backend (portable /
// karatsuba / clmul when the CPU has a hardware carry-less multiply);
// unavailable backends report "unavailable" and are skipped. Unless the
// caller passes its own --benchmark_out, the run also emits
// BENCH_field_ops.json (google-benchmark's JSON schema) next to the
// binary, which the CI job archives as the perf trajectory artifact.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench_util.h"
#include "bigint/modring.h"
#include "ctaudit/audit.h"
#include "ecc/curve.h"
#include "ecc/fixed_base.h"
#include "ecc/koblitz.h"
#include "ecc/ladder.h"
#include "gf2m/backend.h"
#include "gf2m/gf163_lanes.h"
#include "gf2m/gf2_163.h"
#include "rng/xoshiro.h"

namespace {

using namespace medsec;
using gf2m::Backend;
using gf2m::Gf163;
using gf2m::Gf163xN;
using gf2m::LaneBackend;

Gf163 rand_fe(rng::Xoshiro256& rng) {
  bigint::U192 v;
  for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
  return Gf163::from_bits(v);
}

/// Switch the global dispatch to the backend named by the benchmark arg;
/// returns false (after flagging the run) when it is unavailable.
bool use_backend(benchmark::State& state) {
  const auto b = static_cast<Backend>(state.range(0));
  if (!gf2m::set_backend(b)) {
    state.SkipWithError("backend unavailable on this CPU");
    return false;
  }
  state.SetLabel(gf2m::backend_name(b));
  return true;
}

#define MEDSEC_BENCH_BACKENDS(fn) \
  BENCHMARK(fn)->Arg(0)->Arg(1)->Arg(2)->ArgName("backend")

void BM_Gf163Mul(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(1);
  const Gf163 a = rand_fe(rng), b = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::mul(a, b));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163Mul);

void BM_Gf163MulAddMul(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(11);
  const Gf163 a = rand_fe(rng), b = rand_fe(rng);
  const Gf163 c = rand_fe(rng), d = rand_fe(rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(Gf163::mul_add_mul(a, b, c, d));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163MulAddMul);

void BM_Gf163Sqr(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(2);
  const Gf163 a = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::sqr(a));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163Sqr);

void BM_Gf163Inv(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(3);
  const Gf163 a = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::inv(a));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163Inv);

void BM_Gf163BatchInv(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(13);
  constexpr std::size_t kBatch = 64;
  std::vector<Gf163> pool(kBatch);
  for (auto& e : pool) {
    e = rand_fe(rng);
    if (e.is_zero()) e = Gf163::one();
  }
  std::vector<Gf163> work(kBatch);
  for (auto _ : state) {
    work = pool;
    Gf163::batch_inv(work.data(), work.size());
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
MEDSEC_BENCH_BACKENDS(BM_Gf163BatchInv);

void BM_Gf163Sqrt(benchmark::State& state) {
  if (!use_backend(state)) return;
  rng::Xoshiro256 rng(4);
  const Gf163 a = rand_fe(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Gf163::sqrt(a));
}
MEDSEC_BENCH_BACKENDS(BM_Gf163Sqrt);

void BM_LadderIteration(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  ecc::LadderState s =
      ecc::ladder_initial_state(c.b(), c.base_point().x);
  std::uint64_t bit = 0;
  for (auto _ : state) {
    ecc::ladder_iteration(c.b(), c.base_point().x, s, bit ^= 1);
    benchmark::DoNotOptimize(s.x1);
  }
}
MEDSEC_BENCH_BACKENDS(BM_LadderIteration);

void BM_LadderScalarMult(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(7);
  const auto k = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(ecc::montgomery_ladder(c, k, c.base_point()));
}
MEDSEC_BENCH_BACKENDS(BM_LadderScalarMult);

void BM_FixedBaseCombMult(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  const auto& comb = ecc::generator_comb(c);
  rng::Xoshiro256 rng(8);
  const auto k = rng.uniform_nonzero(c.order());
  for (auto _ : state) benchmark::DoNotOptimize(comb.mult(k));
}
MEDSEC_BENCH_BACKENDS(BM_FixedBaseCombMult);

void BM_FixedBaseCombMultCt(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  const auto& comb = ecc::generator_comb(c);
  rng::Xoshiro256 rng(9);
  const auto k = rng.uniform_nonzero(c.order());
  for (auto _ : state) benchmark::DoNotOptimize(comb.mult_ct(k));
}
MEDSEC_BENCH_BACKENDS(BM_FixedBaseCombMultCt);

void BM_TauNafMultPrecomp(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  const auto& pre = ecc::generator_tau_precomp(c);
  rng::Xoshiro256 rng(10);
  const auto k = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(ecc::tau_naf_mult(c, k, pre));
}
MEDSEC_BENCH_BACKENDS(BM_TauNafMultPrecomp);

void BM_AffinePointAdd(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  const ecc::Point g = c.base_point();
  ecc::Point p = c.dbl(g);
  for (auto _ : state) {
    p = c.add(p, g);
    benchmark::DoNotOptimize(p);
  }
}
MEDSEC_BENCH_BACKENDS(BM_AffinePointAdd);

void BM_ValidateSubgroupPoint(benchmark::State& state) {
  if (!use_backend(state)) return;
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(12);
  const ecc::Point p =
      ecc::montgomery_ladder(c, rng.uniform_nonzero(c.order()),
                             c.base_point());
  for (auto _ : state)
    benchmark::DoNotOptimize(c.validate_subgroup_point(p));
}
MEDSEC_BENCH_BACKENDS(BM_ValidateSubgroupPoint);

// --- wide-lane backends -----------------------------------------------------
//
// Per-lane throughput of the batch field layer, one cell per compiled-in
// lane backend (skipped with an error note when the host lacks the ISA —
// check_perf_regression.py treats those entries as optional). 1024 lanes
// amortizes every backend's block width; items_processed = lanes, so
// google-benchmark's per-item rate is ns/lane. The vpclmul512 vs
// clmulwide cells back the in-bench mega-lane speedup gate.

constexpr std::size_t kLaneBatch = 1024;

/// Pin the lane dispatch to the backend named by the benchmark arg;
/// returns false (after flagging the run) when it is unavailable.
bool use_lane_backend(benchmark::State& state) {
  const auto b = static_cast<LaneBackend>(state.range(0));
  if (!gf2m::set_lane_backend(b)) {
    state.SkipWithError("lane backend unavailable on this CPU");
    return false;
  }
  state.SetLabel(gf2m::lane_backend_name(b));
  return true;
}

Gf163xN rand_lanes(rng::Xoshiro256& rng, std::size_t n) {
  Gf163xN v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rand_fe(rng));
  return v;
}

#define MEDSEC_BENCH_LANE_BACKENDS(fn)                         \
  BENCHMARK(fn)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)\
      ->ArgName("lane_backend")

void BM_LaneMul(benchmark::State& state) {
  if (!use_lane_backend(state)) return;
  rng::Xoshiro256 rng(21);
  const Gf163xN a = rand_lanes(rng, kLaneBatch);
  const Gf163xN b = rand_lanes(rng, kLaneBatch);
  Gf163xN out(kLaneBatch);
  for (auto _ : state) {
    Gf163xN::mul(a, b, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLaneBatch);
  gf2m::reset_lane_backend();
}
MEDSEC_BENCH_LANE_BACKENDS(BM_LaneMul);

void BM_LaneSqr(benchmark::State& state) {
  if (!use_lane_backend(state)) return;
  rng::Xoshiro256 rng(22);
  const Gf163xN a = rand_lanes(rng, kLaneBatch);
  Gf163xN out(kLaneBatch);
  for (auto _ : state) {
    Gf163xN::sqr(a, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLaneBatch);
  gf2m::reset_lane_backend();
}
MEDSEC_BENCH_LANE_BACKENDS(BM_LaneSqr);

void BM_LaneMulAddMul(benchmark::State& state) {
  if (!use_lane_backend(state)) return;
  rng::Xoshiro256 rng(23);
  const Gf163xN a = rand_lanes(rng, kLaneBatch);
  const Gf163xN b = rand_lanes(rng, kLaneBatch);
  const Gf163xN c = rand_lanes(rng, kLaneBatch);
  const Gf163xN d = rand_lanes(rng, kLaneBatch);
  Gf163xN out(kLaneBatch);
  for (auto _ : state) {
    Gf163xN::mul_add_mul(a, b, c, d, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLaneBatch);
  gf2m::reset_lane_backend();
}
MEDSEC_BENCH_LANE_BACKENDS(BM_LaneMulAddMul);

void BM_LaneSqrAddMul(benchmark::State& state) {
  if (!use_lane_backend(state)) return;
  rng::Xoshiro256 rng(24);
  const Gf163xN a = rand_lanes(rng, kLaneBatch);
  const Gf163xN b = rand_lanes(rng, kLaneBatch);
  const Gf163xN c = rand_lanes(rng, kLaneBatch);
  Gf163xN out(kLaneBatch);
  for (auto _ : state) {
    Gf163xN::sqr_add_mul(a, b, c, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLaneBatch);
  gf2m::reset_lane_backend();
}
MEDSEC_BENCH_LANE_BACKENDS(BM_LaneSqrAddMul);

// --- backend-independent substrates (integer scalar ring) -------------------

void BM_ScalarRingMul(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(5);
  const auto a = rng.uniform_nonzero(c.order());
  const auto b = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(c.scalar_ring().mul(a, b));
}
BENCHMARK(BM_ScalarRingMul);

void BM_ScalarRingInv(benchmark::State& state) {
  const ecc::Curve& c = ecc::Curve::k163();
  rng::Xoshiro256 rng(6);
  const auto a = rng.uniform_nonzero(c.order());
  for (auto _ : state)
    benchmark::DoNotOptimize(c.scalar_ring().inv(a));
}
BENCHMARK(BM_ScalarRingInv);

/// `--list-backends`: print every compiled-in scalar and lane backend
/// with its ISA requirement and whether this CPU can run it, then exit.
/// CI uses the exit status of `--backend-available <name>` to gate
/// matrix cells (0 = runnable here, 1 = not, 2 = unknown name).
int list_backends() {
  std::printf("scalar backends (MEDSEC_GF2M_BACKEND):\n");
  for (const Backend b : medsec::gf2m::known_backends())
    std::printf("  %-14s requires %-40s %s\n", gf2m::backend_name(b),
                gf2m::backend_requirement(b),
                gf2m::backend_available(b) ? "[available]" : "[unavailable]");
  std::printf("lane backends (MEDSEC_GF2M_LANES):\n");
  for (const LaneBackend b : medsec::gf2m::known_lane_backends()) {
    const auto* vt = gf2m::lane_vtable(b);
    std::printf("  %-14s requires %-40s %s", gf2m::lane_backend_name(b),
                gf2m::lane_backend_requirement(b),
                vt ? "[available]" : "[unavailable]");
    if (vt) std::printf("  width=%zu", vt->preferred_width);
    std::printf("\n");
  }
  std::printf("active: backend=%s lanes=%s\n",
              gf2m::backend_name(gf2m::active_backend()),
              gf2m::lane_backend_name(gf2m::active_lane_backend()));
  return 0;
}

/// `--list-ct-targets`: the constant-time audit grid's registered
/// targets (see ./ct_audit), listed next to the backends they exercise.
int list_ct_targets() {
  std::printf("constant-time audit targets (./ct_audit):\n");
  for (const medsec::ctaudit::CtTarget& t : medsec::ctaudit::ct_audit_targets())
    std::printf("  %-18s backend=%-10s lanes=%-13s %-8s %s\n",
                t.name.c_str(), t.backend.c_str(), t.lanes.c_str(),
                t.modeled ? "modeled" : "kernel",
                t.available ? "[available]" : "[unavailable]");
  return 0;
}

int backend_available(const char* name) {
  Backend sb;
  if (gf2m::backend_from_name(name, sb))
    return gf2m::backend_available(sb) ? 0 : 1;
  LaneBackend lb;
  if (gf2m::lane_backend_from_name(name, lb))
    return gf2m::lane_backend_available(lb) ? 0 : 1;
  std::fprintf(stderr, "unknown backend name: %s (see --list-backends)\n",
               name);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-backends") == 0) return list_backends();
    if (std::strcmp(argv[i], "--list-ct-targets") == 0)
      return list_ct_targets();
    if (std::strcmp(argv[i], "--backend-available") == 0 && i + 1 < argc)
      return backend_available(argv[i + 1]);
  }
  return medsec::bench::run_benchmarks_with_json(argc, argv,
                                                 "BENCH_field_ops.json");
}
