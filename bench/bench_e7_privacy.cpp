// E7 — Figure 2 + the §4 privacy argument.
//
// Paper: "Vaudenay showed that public key algorithms are needed in order
// to provide strong privacy. However, not all PKC-based protocols achieve
// strong privacy. For example, tags using the Schnorr identification
// protocol can be easily traced. We use the identification protocol by
// Peeters and Hermans as an example ... the main operation on the tag is
// two point multiplications and one modular multiplication."
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "protocol/peeters_hermans.h"
#include "protocol/privacy_game.h"
#include "protocol/schnorr.h"

namespace {

using namespace medsec;
namespace proto = protocol;

void print_table() {
  bench::banner("E7: private identification (Figure 2)",
                "Peeters-Hermans correctness, tag cost, privacy game");

  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(7);

  // Correctness over a populated DB.
  proto::PhReader reader = proto::ph_setup_reader(curve, rng);
  std::vector<proto::PhTag> tags;
  for (int i = 0; i < 8; ++i)
    tags.push_back(proto::ph_register_tag(curve, reader, rng));
  int resolved = 0;
  proto::EnergyLedger total;
  for (const auto& t : tags) {
    const auto s = proto::run_ph_session(curve, t, reader, rng);
    resolved += s.identified && *s.identity == t.registered_index;
    total += s.tag_ledger;
  }
  std::printf("completeness: %d/8 tags resolved to the right DB slot\n",
              resolved);
  std::printf("tag cost per session: %.1f ECPM + %.1f modmul "
              "(paper: 2 ECPM + 1 modmul)\n\n",
              total.ecpm / 8.0, total.modmul / 8.0);

  // The privacy game.
  std::printf("%-20s %8s %10s %14s %11s\n", "protocol", "trials",
              "correct", "test fired", "advantage");
  for (const auto p : {proto::GameProtocol::kSchnorr,
                       proto::GameProtocol::kPeetersHermans}) {
    const auto g = proto::run_privacy_game(curve, p, 60);
    std::printf("%-20s %8zu %10zu %14zu %11.3f\n",
                proto::game_protocol_name(p), g.trials, g.correct_guesses,
                g.tracing_test_fired, g.advantage);
  }
  std::printf("\nSchnorr: the verification equation doubles as a tracing\n"
              "test -> advantage ~1 (traceable). Peeters-Hermans: the\n"
              "response is blinded by xcoord(r*Y) -> the test never fires,\n"
              "advantage ~0 (wide-forward-insider private).\n");
}

void BM_PrivacyGameRound(benchmark::State& state) {
  const ecc::Curve& curve = ecc::Curve::k163();
  const auto p = static_cast<proto::GameProtocol>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto g = proto::run_privacy_game(curve, p, 2, seed++);
    benchmark::DoNotOptimize(g.correct_guesses);
  }
  state.SetLabel(proto::game_protocol_name(p));
}
BENCHMARK(BM_PrivacyGameRound)
    ->Arg(static_cast<int>(proto::GameProtocol::kSchnorr))
    ->Arg(static_cast<int>(proto::GameProtocol::kPeetersHermans))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
