// bench_loadgen.cpp — 100k-session load generator for the sharded gateway.
//
// Exercises the full socket path: UDP datagrams -> epoll front end ->
// lock-free shard mailboxes -> per-shard gateways -> deferred Schnorr
// transcripts -> per-shard batch verifiers, with downlinks flowing back
// over the same socket.
//
// The client is deliberately lightweight so the SERVER is the measured
// bottleneck: every session reuses one precomputed commitment (k, R), so
// a session costs the client one modular multiply-add while the server
// pays the full decode + batch-verify price. (Commitment reuse is a
// load-test liberty — a real prover draws fresh k per session; the
// verifier-side work is identical either way.)
//
// Two modes:
//   * acceptance drill (stdout table, pass/fail): N sessions ALL held
//     mid-protocol simultaneously (commitments sent, responses withheld),
//     then completed — proving the fleet really holds N concurrent
//     sessions. Forged responses and corrupted datagrams ride along and
//     must all be rejected: corrupt-accepted == 0.
//   * google-benchmark rows (BENCH_loadgen.json): windowed streaming —
//     a fixed live window over N sessions, reporting sessions/s and
//     p50/p95/p99 completion latency, at 1 shard and 4 shards. The 4-vs-1
//     ratio is the machine-independent perf gate.
#include "bench_util.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "ecc/curve.h"
#include "ecc/fixed_base.h"
#include "engine/campaign_fixtures.h"
#include "engine/delivery.h"
#include "engine/net.h"
#include "engine/shard.h"
#include "protocol/schnorr.h"
#include "protocol/wire.h"
#include "rng/xoshiro.h"

namespace {

using namespace medsec;
using bench::LatencyHistogram;
using engine::campaign::mix_seed;

constexpr std::uint64_t kSeed = 0x10AD6E4F;
/// 1 virtual cycle = 100µs: DeliveryConfig's default rto_initial of 64
/// cycles becomes a 6.4ms first retransmit — sane for loopback RTTs.
constexpr double kCyclesPerUs = 0.01;

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Server side: an N-shard fleet + UDP front end where every session is a
/// deferred-mode SchnorrVerifier against one fleet-wide public key.
struct ServerHarness {
  engine::ShardFleet fleet;
  engine::UdpFrontEnd front;

  ServerHarness(const ecc::Curve& curve, const ecc::Point& X,
                std::size_t shards)
      : fleet(curve, fleet_config(shards), factory(curve, X),
              /*producers=*/1),
        front(fleet, /*port=*/0) {
    front.start();
    fleet.start(front);
  }

  ~ServerHarness() {
    front.stop();
    fleet.stop(/*force=*/true);
  }

  static engine::ShardFleetConfig fleet_config(std::size_t shards) {
    engine::ShardFleetConfig cfg;
    cfg.shards = shards;
    cfg.verify_batch = 64;
    cfg.mailbox_capacity = 1 << 15;
    cfg.seed = kSeed;
    cfg.cycles_per_us = kCyclesPerUs;
    return cfg;
  }

  static engine::SessionFactory factory(const ecc::Curve& curve,
                                        const ecc::Point& X) {
    return [&curve, X](std::uint64_t id) {
      engine::SessionSetup s;
      auto rng = std::make_unique<rng::Xoshiro256>(mix_seed(kSeed, id));
      s.machine = std::make_unique<protocol::SchnorrVerifier>(
          curve, X, *rng, protocol::SchnorrVerifier::Mode::kDeferred);
      s.deferred_schnorr = true;
      s.rng = std::move(rng);
      return s;
    };
  }

  /// Poll fleet totals until `n` verdicts landed (or timeout). The shard
  /// ticks flush the batch verifiers, so this converges on its own.
  bool wait_for_verdicts(std::size_t n, std::chrono::seconds timeout) {
    const auto t0 = std::chrono::steady_clock::now();
    while (fleet.totals().completed < n) {
      if (std::chrono::steady_clock::now() - t0 > timeout) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }
};

struct LoadResult {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t peak_live = 0;
  double wall_s = 0;
  LatencyHistogram latency_us;
};

/// The lightweight client: one UDP socket, one virtual-clock world, one
/// ReliableEndpoint per session, one shared precomputed commitment.
class LoadClient {
 public:
  LoadClient(const ecc::Curve& curve, std::uint16_t server_port,
             std::uint64_t id_base)
      : curve_(curve), id_base_(id_base), t0_(std::chrono::steady_clock::now()) {
    rng::Xoshiro256 rng(mix_seed(kSeed, 0xC11E7));
    key_ = protocol::schnorr_keygen(curve, rng);
    k_ = rng.uniform_nonzero(curve.order());
    commitment_wire_ =
        protocol::encode_point(curve, ecc::generator_comb(curve).mult_ct(k_));
    server_ = engine::Peer{/*ip=*/0x7F000001, server_port};
    // Under full load the server's queueing delay is seconds, not the
    // loopback RTT: a 6.4ms first retransmit would amplify every message
    // several-fold into an already-full mailbox. Patience is cheap.
    delivery_.rto_initial = 5'000;   // 500ms at kCyclesPerUs
    delivery_.rto_max = 20'000;      // 2s ceiling
  }

  const ecc::Point& public_key() const { return key_.X; }

  /// Streaming mode: keep `window` sessions live until `total` complete.
  LoadResult run_windowed(std::size_t total, std::size_t window) {
    prepare(total, /*forged=*/0);
    streaming_ = true;
    const auto start = std::chrono::steady_clock::now();
    std::size_t opened = 0;
    while (completed_ + failed_ < total &&
           std::chrono::steady_clock::now() - start <
               std::chrono::seconds(120)) {
      while (opened < total && live() < window) open(opened++);
      if (pump() == 0) std::this_thread::sleep_for(
          std::chrono::microseconds(50));
      reap();
    }
    return finish(start);
  }

  /// Staged mode: every session mid-protocol at once. `forged` extra
  /// sessions answer with a wrong response; `corrupt` mangled datagrams
  /// and `garbage` non-frames are injected during the response phase.
  LoadResult run_staged(std::size_t total, std::size_t forged,
                        std::size_t corrupt, std::size_t garbage) {
    prepare(total + forged, forged);
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = [&] {
      return std::chrono::steady_clock::now() - start >
             std::chrono::seconds(600);
    };
    // Pacing budget: never more than this many messages queued at the
    // server side without an answer. Well under the mailbox lane capacity
    // so backpressure shedding never fires on honest traffic; the open
    // rate self-clocks to the server's actual service rate.
    constexpr std::size_t kInflight = 4096;
    // Phase 1: commit everywhere, withhold every response. At the end of
    // this phase all `total+forged` sessions are simultaneously open and
    // mid-protocol on the server.
    std::size_t next = 0;
    while (challenges_ < sessions_.size() && !deadline()) {
      std::size_t burst = 0;
      while (next < sessions_.size() &&
             opened_ - challenges_ < kInflight && burst < 256) {
        open(next++);
        ++burst;
      }
      if (pump() == 0 && burst == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    // Phase 2: inject the adversarial traffic, then answer everything —
    // again paced by completions, so responses queue shallowly.
    inject(corrupt, garbage);
    next = 0;
    while (completed_ + failed_ < sessions_.size() && !deadline()) {
      std::size_t burst = 0;
      while (next < sessions_.size() &&
             responded_ - completed_ - failed_ < kInflight &&
             burst < 256) {
        respond(next++);
        ++burst;
      }
      if (pump() == 0 && burst == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      reap();
    }
    return finish(start);
  }

 private:
  struct Sess {
    std::unique_ptr<engine::ReliableEndpoint> ep;
    std::uint64_t start_us = 0;
    ecc::Scalar challenge;
    bool have_challenge = false;
    bool responded = false;
    bool completed = false;
    bool failed = false;
    bool forged = false;
  };

  std::size_t live() const { return opened_ - completed_ - failed_; }

  void prepare(std::size_t n, std::size_t forged) {
    sessions_.clear();
    sessions_.resize(n);
    for (std::size_t i = n - forged; i < n; ++i) sessions_[i].forged = true;
    opened_ = completed_ = failed_ = challenges_ = 0;
    peak_live_ = 0;
  }

  void open(std::size_t i) {
    Sess& s = sessions_[i];
    const std::uint64_t id = id_base_ + i;
    s.ep = std::make_unique<engine::ReliableEndpoint>(
        q_, id, mix_seed(kSeed, id ^ 0xC11E7), delivery_);
    s.ep->set_frame_sink([this](std::vector<std::uint8_t> bytes) {
      sock_.send_to(server_, bytes);
      engine::FramePool::release(std::move(bytes));
    });
    s.ep->set_message_sink([this, i](const engine::Frame& f) {
      Sess& s = sessions_[i];
      if (std::strcmp(f.label, "challenge e") != 0 || s.have_challenge)
        return;
      s.challenge = protocol::decode_scalar(f.payload);
      s.have_challenge = true;
      ++challenges_;
      if (streaming_) respond(i);
    });
    s.ep->set_failure_sink([this, i] {
      Sess& s = sessions_[i];
      if (!s.completed && !s.failed) {
        s.failed = true;
        ++failed_;
      }
    });
    s.start_us = elapsed_us(t0_);
    s.ep->send_message("commitment R", commitment_wire_);
    ++opened_;
    if (live() > peak_live_) peak_live_ = live();
  }

  void respond(std::size_t i) {
    Sess& s = sessions_[i];
    if (!s.have_challenge || s.responded || s.failed) return;
    const auto& ring = curve_.scalar_ring();
    ecc::Scalar resp = ring.add(k_, ring.mul(s.challenge, key_.x));
    if (s.forged) resp = ring.add(resp, resp);  // wrong, but a valid scalar
    s.ep->send_message("response s", protocol::encode_scalar(resp));
    s.responded = true;
    ++responded_;
    reap_list_.push_back(i);
  }

  /// Drain the socket into the endpoints and run the virtual clock up to
  /// wall time (retransmit timers for anything the kernel dropped).
  /// Returns datagrams received — 0 lets callers sleep instead of
  /// spinning the server's cores away.
  std::size_t pump() {
    engine::Peer from;
    std::size_t received = 0;
    for (;;) {
      std::vector<std::uint8_t> bytes = engine::FramePool::acquire();
      if (!sock_.recv_from(bytes, from)) {
        engine::FramePool::release(std::move(bytes));
        break;
      }
      ++received;
      const auto sid = engine::peek_frame_session(bytes);
      if (sid && *sid >= id_base_) {
        const std::size_t i = static_cast<std::size_t>(*sid - id_base_);
        if (i < sessions_.size() && sessions_[i].ep)
          sessions_[i].ep->on_bytes(std::move(bytes));
      }
    }
    const auto vnow =
        static_cast<core::Cycle>(elapsed_us(t0_) * kCyclesPerUs);
    if (vnow > q_.now()) q_.run_until(vnow);
    return received;
  }

  /// A session is complete once its response is acked: the server has
  /// the full transcript (its verdict lands in the batch verifier).
  void reap() {
    std::size_t w = 0;
    for (const std::size_t i : reap_list_) {
      Sess& s = sessions_[i];
      if (s.completed || s.failed) continue;
      if (s.ep->idle()) {
        s.completed = true;
        ++completed_;
        latency_us_.record(elapsed_us(t0_) - s.start_us);
      } else {
        reap_list_[w++] = i;
      }
    }
    reap_list_.resize(w);
  }

  void inject(std::size_t corrupt, std::size_t garbage) {
    engine::Frame f;
    f.type = engine::FrameType::kData;
    f.session = id_base_;  // a real, open session
    f.label = "commitment R";
    f.payload = commitment_wire_;
    for (std::size_t i = 0; i < corrupt; ++i) {
      std::vector<std::uint8_t> bytes = engine::encode_frame(f);
      bytes[bytes.size() - 6] ^= 0xFF;  // payload bit-flip; CRC now wrong
      sock_.send_to(server_, bytes);
      engine::FramePool::release(std::move(bytes));
    }
    const std::vector<std::uint8_t> junk = {0xDE, 0xAD, 0xBE, 0xEF};
    for (std::size_t i = 0; i < garbage; ++i) sock_.send_to(server_, junk);
  }

  LoadResult finish(std::chrono::steady_clock::time_point start) {
    LoadResult r;
    r.completed = completed_;
    r.failed = failed_;
    r.peak_live = peak_live_;
    r.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    r.latency_us = latency_us_;
    return r;
  }

  bool streaming_ = false;
  const ecc::Curve& curve_;
  protocol::SchnorrKeyPair key_;
  ecc::Scalar k_;
  std::vector<std::uint8_t> commitment_wire_;
  engine::UdpSocket sock_;
  engine::Peer server_;
  std::uint64_t id_base_;
  std::chrono::steady_clock::time_point t0_;
  core::EventQueue q_;
  engine::DeliveryConfig delivery_;
  std::vector<Sess> sessions_;
  std::vector<std::size_t> reap_list_;
  LatencyHistogram latency_us_;
  std::size_t opened_ = 0, completed_ = 0, failed_ = 0, challenges_ = 0;
  std::size_t responded_ = 0;
  std::size_t peak_live_ = 0;
};

// --- acceptance drill --------------------------------------------------------

bool acceptance_drill() {
  medsec::bench::banner(
      "loadgen acceptance drill",
      "sharded gateway holds 100k concurrent UDP sessions, 0 corrupt "
      "accepted");
  std::size_t n = 100'000;
  if (const char* env = std::getenv("MEDSEC_LOADGEN_DRILL"))
    n = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  constexpr std::size_t kForged = 64;
  constexpr std::size_t kCorrupt = 256;
  constexpr std::size_t kGarbage = 64;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t shards = hw >= 4 ? 4 : (hw >= 2 ? 2 : 1);

  const ecc::Curve& curve = ecc::Curve::k163();
  LoadClient client(curve, 0, 1);  // key material first; port set below
  // (Re-create with the real port: the harness needs the client's X.)
  ServerHarness server(curve, client.public_key(), shards);
  LoadClient wired(curve, server.front.local_port(), 1);
  const LoadResult r = wired.run_staged(n, kForged, kCorrupt, kGarbage);
  const bool verdicts_in =
      server.wait_for_verdicts(n + kForged, std::chrono::seconds(60));
  const engine::ShardStats t = server.fleet.totals();
  const engine::UdpFrontEndStats fs = server.front.stats();

  const bool all_completed = r.completed == n + kForged && r.failed == 0;
  const bool concurrent = r.peak_live >= n;
  const bool honest_accepted = t.accepted == n;
  const bool forged_rejected = t.rejected == kForged;
  // Every honest session accepted, every forged one rejected, nothing
  // else: no corrupted or garbage datagram ever produced a verdict.
  const bool corrupt_accepted_zero =
      honest_accepted && forged_rejected && t.completed == n + kForged;
  const double sps = r.wall_s > 0 ? static_cast<double>(r.completed) / r.wall_s
                                  : 0.0;

  std::printf("  sessions            : %zu (+%zu forged)\n", n, kForged);
  std::printf("  shards              : %zu   (hw threads: %u)\n", shards, hw);
  std::printf("  peak concurrent     : %zu   [%s]\n", r.peak_live,
              concurrent ? "ok" : "FAIL");
  std::printf("  completed / failed  : %zu / %zu   [%s]\n", r.completed,
              r.failed, all_completed ? "ok" : "FAIL");
  std::printf("  verdicts (acc/rej)  : %llu / %llu   [%s]\n",
              static_cast<unsigned long long>(t.accepted),
              static_cast<unsigned long long>(t.rejected),
              honest_accepted && forged_rejected && verdicts_in ? "ok"
                                                                : "FAIL");
  std::printf("  corrupt accepted    : %s\n",
              corrupt_accepted_zero ? "0   [ok]" : "NONZERO   [FAIL]");
  std::printf("  injected corrupt/junk: %zu / %zu (front end dropped %llu "
              "non-frames)\n",
              kCorrupt, kGarbage,
              static_cast<unsigned long long>(fs.not_a_frame));
  std::printf("  mailbox shed        : %llu\n",
              static_cast<unsigned long long>(t.mailbox_shed));
  std::printf("  throughput          : %.0f sessions/s (%.2fs wall)\n", sps,
              r.wall_s);
  std::printf("  datagrams in/out    : %llu / %llu\n",
              static_cast<unsigned long long>(fs.datagrams_in),
              static_cast<unsigned long long>(fs.datagrams_out));
  const bool pass = all_completed && concurrent && verdicts_in &&
                    honest_accepted && forged_rejected &&
                    corrupt_accepted_zero;
  std::printf("  drill               : %s\n", pass ? "PASS" : "FAIL");
  return pass;
}

// --- benchmark rows ----------------------------------------------------------

void BM_Loadgen(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  if (shards > 1 && std::thread::hardware_concurrency() < shards) {
    state.SkipWithError("needs >= `shards` hardware threads");
    return;
  }
  constexpr std::size_t kSessions = 2048;
  constexpr std::size_t kWindow = 256;
  const ecc::Curve& curve = ecc::Curve::k163();
  LatencyHistogram merged;
  std::size_t total = 0;
  for (auto _ : state) {
    LoadClient keys(curve, 0, 1);
    ServerHarness server(curve, keys.public_key(), shards);
    LoadClient client(curve, server.front.local_port(), 1);
    const LoadResult r = client.run_windowed(kSessions, kWindow);
    server.wait_for_verdicts(r.completed, std::chrono::seconds(30));
    if (r.completed != kSessions) {
      state.SkipWithError("load run did not complete");
      return;
    }
    total += r.completed;
    merged.merge(r.latency_us);
  }
  state.counters["sessions_per_s"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kIsRate);
  state.counters["p50_us"] =
      static_cast<double>(merged.percentile(0.50));
  state.counters["p95_us"] =
      static_cast<double>(merged.percentile(0.95));
  state.counters["p99_us"] =
      static_cast<double>(merged.percentile(0.99));
}
BENCHMARK(BM_Loadgen)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  if (!acceptance_drill()) return 1;
  return medsec::bench::run_benchmarks_with_json(argc, argv,
                                                 "BENCH_loadgen.json");
}
