#!/usr/bin/env python3
"""Lint for unseeded randomness in the source tree.

Every experiment in this repo must be reproducible from a counter-derived
seed (the hw::FaultInjector / ctaudit::derive_word idiom).  Ambient entropy
sources -- std::random_device, C rand()/srand() -- silently break rerun
identity, so this script fails CI when one appears outside an explicitly
annotated site.

A use that is genuinely meant to be non-deterministic (e.g. the fleet
server folding process entropy into live challenge seeds) is suppressed by
placing the marker comment on the offending line or the line above it:

    // seed-audit: allow(<reason>)

Exit status: 0 when clean, 1 when violations are found.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples")
SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

# std::random_device, or C rand()/srand() as a whole token.  Identifiers
# merely ending in "rand" (operand, brand, ...) must not match.
PATTERNS = (
    ("std::random_device", re.compile(r"\bstd\s*::\s*random_device\b")),
    ("rand()/srand()", re.compile(r"(?<![\w:])s?rand\s*\(")),
)

ALLOW = re.compile(r"//\s*seed-audit:\s*allow\b")


def scan_file(path: pathlib.Path) -> list[tuple[int, str, str]]:
    violations = []
    lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    for idx, line in enumerate(lines):
        for label, pattern in PATTERNS:
            if not pattern.search(line):
                continue
            prev = lines[idx - 1] if idx > 0 else ""
            if ALLOW.search(line) or ALLOW.search(prev):
                continue
            violations.append((idx + 1, label, line.strip()))
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "root",
        nargs="?",
        default=pathlib.Path(__file__).resolve().parent.parent,
        type=pathlib.Path,
        help="repository root to scan (default: this script's repo)",
    )
    args = parser.parse_args()

    failed = False
    scanned = 0
    for sub in SCAN_DIRS:
        base = args.root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES or not path.is_file():
                continue
            scanned += 1
            for lineno, label, text in scan_file(path):
                failed = True
                rel = path.relative_to(args.root)
                print(f"{rel}:{lineno}: unseeded randomness ({label}): {text}")

    if failed:
        print(
            "\nseed-audit: FAILED -- derive randomness from an explicit seed"
            " (see ctaudit::derive_word), or annotate intentional entropy"
            " with '// seed-audit: allow(<reason>)'.",
            file=sys.stderr,
        )
        return 1
    print(f"seed-audit: OK ({scanned} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
