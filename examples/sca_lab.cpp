// sca_lab — the Figure 4 measurement bench as a program.
//
// Plays both sides of the paper's §7 security evaluation:
//   * DPA: attack the ladder with the RPC countermeasure off / white-box /
//     on, at increasing trace counts (the 200-vs-20000 result),
//   * SPA: read the key out of a single averaged trace when the mux
//     control encoding or clock gating is naive, and fail when balanced,
//   * timing: the double-and-add baseline vs the constant ladder.
//
//   $ ./examples/sca_lab           # quick lab (a few seconds)
#include <cstdio>

#include "ecc/curve.h"
#include "rng/xoshiro.h"
#include "sidechannel/dpa.h"
#include "sidechannel/spa.h"
#include "sidechannel/timing.h"

int main() {
  using namespace medsec;
  namespace sc = sidechannel;
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(42);
  const ecc::Scalar secret = rng.uniform_nonzero(curve.order());

  // --- DPA ---------------------------------------------------------------------
  std::printf("=== DPA on the Montgomery ladder (16 leading bits) ===\n");
  sc::DpaConfig dpa;
  dpa.bits_to_attack = 16;
  struct ScenarioPlan {
    sc::RpcScenario scenario;
    std::vector<std::size_t> counts;
  };
  const ScenarioPlan plans[] = {
      // Paper: "succeeds with as low as 200 traces".
      {sc::RpcScenario::kDisabled, {50, 200, 1000}},
      // Paper: the white-box attack "also succeeds" (sanity of the setup).
      {sc::RpcScenario::kEnabledKnownRandomness, {200, 1000, 5000}},
      // Paper: "even 20000 traces are not enough" — 20000 lives in
      // bench_dpa; the shape is already flat here.
      {sc::RpcScenario::kEnabledSecretRandomness, {200, 1000, 5000}},
  };
  for (const auto& plan : plans) {
    std::printf("%-46s:", sc::rpc_scenario_name(plan.scenario));
    for (const std::size_t n : plan.counts) {
      const auto rows = sc::dpa_trace_count_sweep(curve, secret,
                                                  plan.scenario, {n}, dpa);
      std::printf("  N=%-5zu %s(%.0f%%)", n,
                  rows[0].success ? "BROKEN" : "safe  ",
                  rows[0].accuracy * 100);
    }
    std::printf("\n");
  }

  // --- SPA ----------------------------------------------------------------------
  std::printf("\n=== SPA via the circuit-level leaks of Section 6 ===\n");
  // Profiling on the attacker's own device (known key, gating visible).
  sc::CycleSimConfig prof;
  prof.coproc.secure.uniform_clock_gating = false;
  prof.leakage.noise_sigma = 100.0;
  const auto profiling = sc::capture_cycle_trace(
      curve, rng.uniform_nonzero(curve.order()), curve.base_point(), prof);
  const auto schedule = sc::profile_schedule(profiling);

  auto spa_run = [&](bool balanced_mux, bool uniform_gating) {
    sc::CycleSimConfig cfg;
    cfg.coproc.secure.balanced_mux_encoding = balanced_mux;
    cfg.coproc.secure.uniform_clock_gating = uniform_gating;
    cfg.leakage.noise_sigma = 100.0;
    const auto victim = sc::capture_averaged_cycle_trace(
        curve, secret, curve.base_point(), cfg, 64);
    const auto mux = sc::mux_control_spa(victim, schedule);
    const auto gate = sc::clock_gating_spa(victim, schedule);
    std::printf("  mux %-10s gating %-8s ->  mux-SPA %5.1f%%   "
                "gating-SPA %5.1f%%\n",
                balanced_mux ? "balanced," : "naive,   ",
                uniform_gating ? "uniform" : "gated",
                mux.accuracy * 100, gate.accuracy * 100);
  };
  std::printf("(100%% = whole key read from one averaged trace, ~50%% = "
              "nothing)\n");
  spa_run(false, false);  // both circuit tricks missing
  spa_run(false, true);   // only gating fixed
  spa_run(true, false);   // only mux encoding fixed
  spa_run(true, true);    // the paper's shipped configuration

  // --- timing -------------------------------------------------------------------
  std::printf("\n=== timing attack surface ===\n");
  const auto da =
      sc::timing_analysis(curve, ecc::MultAlgorithm::kDoubleAndAdd, 300);
  const auto ml =
      sc::timing_analysis(curve, ecc::MultAlgorithm::kMontgomeryLadder, 300);
  std::printf("double-and-add: runtime variance %8.1f, corr(time, HW(k)) = "
              "%.3f  -> leaks\n",
              da.variance, da.correlation_with_weight);
  std::printf("MPL ladder    : runtime variance %8.1f, corr(time, HW(k)) = "
              "%.3f  -> constant time\n",
              ml.variance, ml.correlation_with_weight);
  return 0;
}
