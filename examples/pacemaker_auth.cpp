// pacemaker_auth — the paper's §2/§4 use case end to end.
//
// A pacemaker ("tag") talks to the patient's phone ("mini-server") over a
// BAN radio. The session shows the paper's protocol requirements working:
//   1. private identification (Peeters–Hermans, Fig. 2) so the phone knows
//      *which* device it is talking to without letting an eavesdropper
//      track the patient,
//   2. symmetric mutual authentication + encrypted, authenticated
//      telemetry (AES-CTR + CMAC, server-authenticates-first),
//   3. the failure drills: an impersonated server is dropped *before* the
//      device spends energy; tampered telemetry is not delivered.
//
//   $ ./examples/pacemaker_auth
#include <cstdio>

#include "ciphers/aes128.h"
#include "ecc/curve.h"
#include "protocol/mutual_auth.h"
#include "protocol/peeters_hermans.h"
#include "rng/xoshiro.h"

int main() {
  using namespace medsec;
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(7);

  // --- provisioning (in the clinic) -------------------------------------------
  protocol::PhReader phone = protocol::ph_setup_reader(curve, rng);
  const protocol::PhTag pacemaker =
      protocol::ph_register_tag(curve, phone, rng);
  // A second device on the same patient, to show the DB actually resolves.
  const protocol::PhTag insulin_pump =
      protocol::ph_register_tag(curve, phone, rng);

  std::printf("provisioned %zu devices with the phone\n\n",
              phone.db.size());

  // --- step 1: private identification -----------------------------------------
  const auto id_session =
      protocol::run_ph_session(curve, pacemaker, phone, rng);
  std::printf("identification: %s (DB slot %zu)\n",
              id_session.identified ? "accepted" : "REJECTED",
              id_session.identity.value_or(999));
  std::printf("  tag cost: %zu ECPM + %zu modmul, %zu bits TX, %zu bits RX\n",
              id_session.tag_ledger.ecpm, id_session.tag_ledger.modmul,
              id_session.tag_ledger.tx_bits, id_session.tag_ledger.rx_bits);

  const protocol::TagCostModel cost;
  const auto radio = hw::RadioModel::ban();
  std::printf("  session energy at 1 m: %.1f uJ (%.1f uJ compute, %.1f uJ radio)\n\n",
              cost.session_energy_j(id_session.tag_ledger, radio, 1.0) * 1e6,
              cost.compute_energy_j(id_session.tag_ledger) * 1e6,
              cost.radio_energy_j(id_session.tag_ledger, radio, 1.0) * 1e6);

  const auto pump_session =
      protocol::run_ph_session(curve, insulin_pump, phone, rng);
  std::printf("second device resolves to DB slot %zu (distinct identity)\n\n",
              pump_session.identity.value_or(999));

  // --- step 2: mutual auth + telemetry -----------------------------------------
  const std::vector<std::uint8_t> master(16, 0x5A);  // provisioned secret
  const auto keys = protocol::derive_session_keys(master, 16);
  protocol::CipherFactory aes = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<ciphers::BlockCipher>(new ciphers::Aes128(key));
  };
  const std::string telemetry_str = "HR=072;PACE=1.2ms@60bpm;BATT=83%";
  const std::vector<std::uint8_t> telemetry(telemetry_str.begin(),
                                            telemetry_str.end());

  const auto ok = protocol::run_mutual_auth(aes, keys, telemetry, rng);
  std::printf("honest session: server auth %s, tag auth %s, telemetry %s\n",
              ok.tag_accepted_server ? "ok" : "FAIL",
              ok.server_accepted_tag ? "ok" : "FAIL",
              ok.telemetry_delivered ? "delivered" : "LOST");

  // --- step 3: failure drills ---------------------------------------------------
  protocol::MutualAuthFaults impersonator;
  impersonator.wrong_server_key = true;
  const auto drill1 =
      protocol::run_mutual_auth(aes, keys, telemetry, rng, {}, impersonator);
  std::printf("\nimpersonated server: rejected=%s, aborted early=%s\n",
              drill1.tag_accepted_server ? "NO (bug!)" : "yes",
              drill1.tag_ledger.aborted_early ? "yes" : "no");
  protocol::MutualAuthConfig naive;
  naive.server_first = false;
  const auto drill1b = protocol::run_mutual_auth(aes, keys, telemetry, rng,
                                                 naive, impersonator);
  std::printf("  energy wasted on the failed session: %.3f uJ (server-first) "
              "vs %.3f uJ (naive ordering)\n",
              cost.compute_energy_j(drill1.tag_ledger) * 1e6,
              cost.compute_energy_j(drill1b.tag_ledger) * 1e6);

  protocol::MutualAuthFaults mitm;
  mitm.tamper_ciphertext = true;
  const auto drill2 =
      protocol::run_mutual_auth(aes, keys, telemetry, rng, {}, mitm);
  std::printf("tampered telemetry: delivered=%s (must be no — \"a "
              "modification on the ciphertext may lead to a corrupted "
              "therapy\")\n",
              drill2.telemetry_delivered ? "YES (bug!)" : "no");

  return ok.telemetry_delivered && !drill2.telemetry_delivered ? 0 : 1;
}
