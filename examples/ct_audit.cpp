// ct_audit — the constant-time audit grid as a program.
//
// Runs every backend × lane combination, the modeled co-processor
// ladders (classic and blinded) and the leaky negative controls through
// the dudect-style timing tester AND the secret-taint interpreter, then
// writes the verdict grid to BENCH_ct_audit.json for the CI perf gate.
//
//   $ ./ct_audit                           # deterministic op-count audit
//   $ ./ct_audit --samples 200000 --model-samples 2000   # nightly depth
//   $ ./ct_audit --source rdtsc --no-rerun # advisory wall-clock run
//   $ ./ct_audit --list-targets
//
// Exit status: nonzero iff a deterministic-source run fails the audit
// acceptance contract (leak in a shipped target, a blind harness, a
// missing row, or a non-reproducible verdict). Wall-clock sources are
// advisory — noisy hosts throw false positives — and always exit 0.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ctaudit/audit.h"

int main(int argc, char** argv) {
  using namespace medsec;

  ctaudit::GridConfig config;
  std::string json_path = "BENCH_ct_audit.json";
  bool list_targets = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ct_audit: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json_path = need_value("--json");
    } else if (arg == "--samples") {
      config.samples = std::strtoull(need_value("--samples"), nullptr, 10);
    } else if (arg == "--model-samples") {
      config.model_samples =
          std::strtoull(need_value("--model-samples"), nullptr, 10);
    } else if (arg == "--calibration") {
      config.calibration =
          std::strtoull(need_value("--calibration"), nullptr, 10);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(need_value("--seed"), nullptr, 0);
    } else if (arg == "--threshold") {
      config.threshold = std::strtod(need_value("--threshold"), nullptr);
    } else if (arg == "--source") {
      const char* name = need_value("--source");
      if (!ctaudit::time_source_from_name(name, config.source)) {
        std::fprintf(stderr,
                     "ct_audit: unknown source '%s' "
                     "(opcount | steady_clock | rdtsc)\n",
                     name);
        return 2;
      }
    } else if (arg == "--target") {
      config.target_filter = need_value("--target");
    } else if (arg == "--no-rerun") {
      config.rerun_check = false;
    } else if (arg == "--list-targets") {
      list_targets = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ct_audit [--json PATH] [--samples N] [--model-samples N]\n"
          "                [--calibration N] [--seed S] [--threshold T]\n"
          "                [--source opcount|steady_clock|rdtsc]\n"
          "                [--target SUBSTR] [--no-rerun] [--list-targets]\n");
      return 0;
    } else {
      std::fprintf(stderr, "ct_audit: unknown flag '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  if (list_targets) {
    std::printf("%-18s %-10s %-13s %-8s %s\n", "target", "backend", "lanes",
                "kind", "available");
    for (const ctaudit::CtTarget& t : ctaudit::ct_audit_targets())
      std::printf("%-18s %-10s %-13s %-8s %s\n", t.name.c_str(),
                  t.backend.c_str(), t.lanes.c_str(),
                  t.modeled ? "modeled" : "kernel",
                  t.available ? "yes" : "no (ISA)");
    return 0;
  }

  const bool deterministic =
      ctaudit::make_time_source(config.source)->deterministic();
  std::printf("ct_audit: source=%s seed=0x%llx samples=%zu model=%zu%s\n",
              ctaudit::time_source_name(config.source),
              static_cast<unsigned long long>(config.seed), config.samples,
              config.model_samples,
              deterministic ? "" : "  [wall clock: advisory only]");

  const ctaudit::CtAuditGrid grid = ctaudit::run_ct_audit_grid(config);

  for (const ctaudit::DudectGridRow& row : grid.dudect) {
    const ctaudit::CtTestReport& r = row.report;
    const char* verdict = r.skipped ? "SKIP (ISA)"
                          : r.pass  ? "pass"
                                    : "LEAK";
    std::printf("  dudect %-18s %-10s %-13s max|t|=%7.2f  %s%s\n",
                r.target.c_str(), r.backend.c_str(), r.lanes.c_str(),
                r.max_abs_t, verdict,
                row.expected_pass ? "" : "  (negative control)");
  }
  for (const ctaudit::TaintGridRow& row : grid.taint) {
    const ctaudit::TaintAuditReport& r = row.report;
    std::printf("  taint  %-18s ops=%-8llu %s%s\n", r.target.c_str(),
                static_cast<unsigned long long>(r.ops),
                r.clean() ? "clean" : "VIOLATIONS",
                row.expected_clean ? "" : "  (negative control)");
    for (const ctaudit::TaintViolation& v : r.violations)
      std::printf("           %s at %s x%llu\n",
                  ctaudit::taint_violation_name(v.kind), v.site.c_str(),
                  static_cast<unsigned long long>(v.count));
  }
  if (grid.rerun_checked)
    std::printf("  rerun: %s (digest %.16s…)\n",
                grid.rerun_identical ? "bit-identical" : "DIVERGED",
                grid.digest_hex.c_str());

  if (!ctaudit::write_ct_audit_json(grid, config, json_path)) {
    std::fprintf(stderr, "ct_audit: cannot write %s\n", json_path.c_str());
    return 2;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (grid.acceptance_ok()) {
    std::printf("ct_audit: ACCEPTED\n");
    return 0;
  }
  std::printf("ct_audit: %zu acceptance failure(s)%s\n",
              grid.acceptance_failures.size(),
              deterministic ? "" : "  [advisory: wall clock, exit 0]");
  for (const std::string& f : grid.acceptance_failures)
    std::printf("  - %s\n", f.c_str());
  return deterministic ? 1 : 0;
}
