// telemetry_upload — store-and-forward delivery to an offline recipient.
//
// The live mutual-auth channel (pacemaker_auth) needs the phone in range.
// This example covers the other §2 flow: a body sensor batches readings
// and uploads them for the *clinic*, whose private key is not on the
// patient's phone at all. Each record is
//
//   1. signed by the device (EC-Schnorr — third-party-verifiable data
//      authentication, stronger than a MAC),
//   2. encrypted to the clinic's public key (ECIES: ECDH + HKDF +
//      AES-CTR + CMAC),
//
// and the energy ledger prices the whole pipeline in the paper's
// currency (1 ECPM = 5.1 uJ).
//
//   $ ./examples/telemetry_upload
#include <cstdio>
#include <string>

#include "ciphers/aes128.h"
#include "ecc/curve.h"
#include "protocol/ecies.h"
#include "protocol/signature.h"
#include "rng/xoshiro.h"

int main() {
  using namespace medsec;
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(2024);

  // Provisioning: the device holds its signing key and the clinic's
  // public key; the clinic holds its decryption key and the device's
  // public key.
  const auto device_key = protocol::signature_keygen(curve, rng);
  const auto clinic_key = protocol::ecies_keygen(curve, rng);
  protocol::CipherFactory aes = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<ciphers::BlockCipher>(new ciphers::Aes128(key));
  };

  const std::string records[] = {
      "2026-06-12T08:00 HR=061 HRV=48ms",
      "2026-06-12T12:00 HR=083 HRV=39ms episode=none",
      "2026-06-12T20:00 HR=058 HRV=51ms batt=82%",
  };

  protocol::EnergyLedger total;
  std::printf("device: signing and encrypting %zu records for the clinic\n\n",
              std::size(records));

  int delivered = 0;
  for (const auto& rec : records) {
    const std::vector<std::uint8_t> msg(rec.begin(), rec.end());

    // Sign, then encrypt signature+record together (sign-then-encrypt).
    protocol::EnergyLedger ledger;
    const auto sig = protocol::ec_schnorr_sign(curve, device_key, msg, rng,
                                               &ledger);
    std::vector<std::uint8_t> bundle = protocol::encode_scalar(sig.e);
    const auto s_bytes = protocol::encode_scalar(sig.s);
    bundle.insert(bundle.end(), s_bytes.begin(), s_bytes.end());
    bundle.insert(bundle.end(), msg.begin(), msg.end());

    const auto ct = protocol::ecies_encrypt(curve, clinic_key.Y, bundle, aes,
                                            16, rng, &ledger);
    total += ledger;

    // ... the radio, the internet, weeks later: the clinic decrypts.
    const auto opened =
        protocol::ecies_decrypt(curve, clinic_key.y, ct, aes, 16);
    if (!opened) {
      std::printf("  record LOST (decrypt failed)\n");
      continue;
    }
    const auto e = protocol::decode_scalar(
        {opened->begin(), opened->begin() + 21});
    const auto s = protocol::decode_scalar(
        {opened->begin() + 21, opened->begin() + 42});
    const std::vector<std::uint8_t> body(opened->begin() + 42, opened->end());
    const bool authentic = protocol::ec_schnorr_verify(
        curve, device_key.X, body, {e, s});
    std::printf("  [%s] %.*s\n", authentic ? "verified" : "FORGED",
                static_cast<int>(body.size()),
                reinterpret_cast<const char*>(body.data()));
    delivered += authentic;
  }

  const protocol::TagCostModel cost;
  const auto radio = hw::RadioModel::ban();
  std::printf("\nledger for the whole batch:\n");
  std::printf("  point multiplications : %zu (sign: 1, ECIES: 2 per record)\n",
              total.ecpm);
  std::printf("  compute energy        : %.1f uJ\n",
              cost.compute_energy_j(total) * 1e6);
  std::printf("  radio energy at 2 m   : %.1f uJ (%zu bits)\n",
              cost.radio_energy_j(total, radio, 2.0) * 1e6, total.tx_bits);
  std::printf("  total                 : %.1f uJ for %d signed+encrypted "
              "records\n",
              cost.session_energy_j(total, radio, 2.0) * 1e6, delivered);

  // Tamper drill: a flipped ciphertext bit must kill the whole record.
  auto ct = protocol::ecies_encrypt(
      curve, clinic_key.Y, std::vector<std::uint8_t>{1, 2, 3}, aes, 16, rng);
  ct.body[0] ^= 0x01;
  const bool rejected =
      !protocol::ecies_decrypt(curve, clinic_key.y, ct, aes, 16).has_value();
  std::printf("\ntampered upload rejected: %s\n", rejected ? "yes" : "NO (bug!)");
  return delivered == 3 && rejected ? 0 : 1;
}
