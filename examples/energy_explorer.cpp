// energy_explorer — walk the paper's design space interactively.
//
// Three views of the area–power–energy–security trade-off:
//   1. the §5 digit-size sweep of the 163xd MALU (why the chip uses d = 4),
//   2. protocol energy vs link distance: where the secret-key design beats
//      the public-key design and where communication dominates (§4, refs
//      [4, 5]),
//   3. what each side-channel countermeasure costs in area and power
//      (the "security adds an extra design dimension" headline).
//
//   $ ./examples/energy_explorer
#include <cstdio>

#include "ciphers/aes128.h"
#include "core/secure_processor.h"
#include "ecc/curve.h"
#include "hw/digit_serial.h"
#include "hw/gates.h"
#include "protocol/mutual_auth.h"
#include "protocol/peeters_hermans.h"
#include "rng/xoshiro.h"
#include "sidechannel/leakage.h"

int main() {
  using namespace medsec;
  const auto tech = hw::Technology::umc130();

  // --- view 1: digit-size sweep ------------------------------------------------
  std::printf("=== 163 x d digit-serial multiplier sweep (Section 5) ===\n");
  std::printf("%3s %8s %10s %12s %12s %16s\n", "d", "cycles", "area[GE]",
              "power[uW]", "E/mult[nJ]", "area*energy");
  const auto sweep = hw::digit_size_sweep(tech);
  double best_aep = 1e300;
  std::size_t best_d = 0;
  for (const auto& p : sweep) {
    std::printf("%3zu %8zu %10.0f %12.2f %12.3f %16.3e%s\n", p.digit_size,
                p.cycles_per_mult, p.area_ge, p.avg_power_w * 1e6,
                p.energy_per_mult_j * 1e9, p.area_energy_product,
                p.area_energy_product < best_aep ? "  <-" : "");
    if (p.area_energy_product < best_aep) {
      best_aep = p.area_energy_product;
      best_d = p.digit_size;
    }
  }
  std::printf("optimal area-energy product at d = %zu (paper: d = 4)\n\n",
              best_d);

  // --- view 2: protocol energy vs distance ---------------------------------------
  std::printf("=== session energy vs link distance (Section 4, refs [4,5]) "
              "===\n");
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(11);
  protocol::PhReader reader = protocol::ph_setup_reader(curve, rng);
  const auto tag = protocol::ph_register_tag(curve, reader, rng);
  const auto pkc = protocol::run_ph_session(curve, tag, reader, rng);

  const auto keys = protocol::derive_session_keys(
      std::vector<std::uint8_t>(16, 1), 16);
  protocol::CipherFactory aes = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<ciphers::BlockCipher>(new ciphers::Aes128(key));
  };
  const std::vector<std::uint8_t> telemetry(32, 0x42);
  const auto sk = protocol::run_mutual_auth(aes, keys, telemetry, rng);

  const protocol::TagCostModel cost;
  std::printf("%10s %22s %22s\n", "dist[m]", "PKC ident (PH) [uJ]",
              "SK mutual auth [uJ]");
  for (const double d : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    const auto radio = hw::RadioModel::ban();
    std::printf("%10.1f %22.2f %22.2f\n", d,
                cost.session_energy_j(pkc.tag_ledger, radio, d) * 1e6,
                cost.session_energy_j(sk.tag_ledger, radio, d) * 1e6);
  }
  std::printf("(PKC buys strong privacy for ~10 uJ of compute; at BAN "
              "distances the radio term is secondary — \"the conclusions "
              "depend on the algorithm, the platform and the distance\")\n\n");

  // --- view 3: what each countermeasure costs -------------------------------------
  std::printf("=== the price of security (area / power overhead) ===\n");
  const double base_area = hw::ecc_coprocessor_ge(163, 4);
  struct Row {
    const char* what;
    double area_factor;
    double power_factor;
    const char* beats;
  };
  const Row rows[] = {
      {"plain CMOS, no countermeasures", 1.00, 1.00, "-"},
      {"+ constant-time ladder (MPL)", 1.00, 1.00, "timing, SPA schedule"},
      {"+ randomized projective coords", 1.01, 1.01, "DPA"},
      {"+ balanced mux encoding", 1.02, 1.03, "mux-control SPA"},
      {"+ uniform clock gating", 1.02, 1.12, "clock-gating SPA"},
      {"+ WDDL logic (synthesizable)",
       hw::LogicStyleOverhead::kWddl, 3.2, "residual DPA/SPA"},
      {"+ SABL logic (full custom)",
       hw::LogicStyleOverhead::kSabl, 2.1, "residual DPA/SPA"},
  };
  std::printf("%-36s %10s %10s   %s\n", "configuration", "area[GE]",
              "rel.power", "defeats");
  for (const auto& r : rows)
    std::printf("%-36s %10.0f %9.2fx   %s\n", r.what,
                base_area * r.area_factor, r.power_factor, r.beats);
  std::printf("\n\"skipping a countermeasure means opening the door for a "
              "possible attack\" — each row above is a decision, not an "
              "optimization.\n");
  return 0;
}
