// fleet_server — the engine layer end to end: a mini-server multiplexing a
// fleet of implanted tags over a worker pool, with batched transcript
// verification and per-session energy telemetry.
//
//   usage: fleet_server [devices] [sessions] [threads] [batch]
//          (defaults: 32 devices, 512 sessions, 4 threads, batch 64)
//
// Every session is a full message-driven Schnorr identification run: the
// tag side (SchnorrProver machines, driven here as the "radio front-end")
// talks to the server exclusively through FleetServer::deliver and the
// downlink callback. Two sessions are impersonators; the batch verifier's
// fallback isolates exactly those.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <chrono>

#include "ecc/curve.h"
#include "engine/fleet_server.h"
#include "gf2m/backend.h"
#include "hw/radio.h"
#include "protocol/schnorr.h"
#include "rng/xoshiro.h"

using namespace medsec;
namespace proto = protocol;

namespace {

struct Radio {
  const ecc::Curve& c;
  engine::FleetServer& server;
  std::mutex mu;
  std::map<std::uint64_t, std::unique_ptr<proto::SchnorrProver>> provers;
  std::map<std::uint64_t, std::unique_ptr<rng::Xoshiro256>> rngs;

  void downlink(std::uint64_t sid, const proto::Message& m) {
    proto::SchnorrProver* prover;
    {
      const std::lock_guard<std::mutex> lock(mu);
      prover = provers.at(sid).get();
    }
    const auto r = prover->on_message(m);
    for (const auto& out : r.out) server.deliver(sid, out);
    if (prover->state() == proto::SessionState::kDone)
      server.report_tag_energy(sid, prover->ledger());
  }

  std::uint64_t launch(std::uint32_t device, const proto::SchnorrKeyPair& key,
                       std::uint64_t seed) {
    const auto sid = server.open_schnorr_session(device);
    auto rng = std::make_unique<rng::Xoshiro256>(seed);
    auto prover = std::make_unique<proto::SchnorrProver>(c, key, *rng);
    const auto r = prover->start();
    {
      const std::lock_guard<std::mutex> lock(mu);
      rngs.emplace(sid, std::move(rng));
      provers.emplace(sid, std::move(prover));
    }
    for (const auto& out : r.out) server.deliver(sid, out);
    return sid;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_devices = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  const std::size_t n_sessions = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 512;
  const std::size_t n_threads = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;
  const std::size_t batch = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 64;

  const ecc::Curve& c = ecc::Curve::k163();
  std::printf("fleet_server: %zu devices, %zu sessions, %zu workers, "
              "verify batch %zu, gf2m backend %s\n",
              n_devices, n_sessions, n_threads, batch,
              gf2m::backend_name(gf2m::active_backend()));

  rng::Xoshiro256 rng(1);
  std::vector<proto::SchnorrKeyPair> keys;
  for (std::size_t d = 0; d < n_devices; ++d)
    keys.push_back(proto::schnorr_keygen(c, rng));

  engine::FleetConfig cfg;
  cfg.worker_threads = n_threads;
  cfg.verify_batch = batch;

  std::unique_ptr<Radio> radio;
  engine::FleetServer server(
      c, cfg,
      [&radio](std::uint64_t sid, const proto::Message& m) {
        radio->downlink(sid, m);
      });
  radio = std::unique_ptr<Radio>(new Radio{c, server, {}, {}, {}});
  for (const auto& kp : keys) server.enroll(kp.X);

  // Launch the fleet; sessions 7 and n-3 are impersonators holding keys
  // the server never enrolled.
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> sids;
  std::vector<std::uint64_t> forged_sids;
  for (std::size_t i = 0; i < n_sessions; ++i) {
    const auto dev = static_cast<std::uint32_t>(i % n_devices);
    if (n_sessions > 8 && (i == 7 || i == n_sessions - 3)) {
      forged_sids.push_back(
          radio->launch(dev, proto::schnorr_keygen(c, rng), 500 + i));
      sids.push_back(forged_sids.back());
    } else {
      sids.push_back(radio->launch(dev, keys[dev], 500 + i));
    }
  }
  server.drain();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto st = server.stats();
  std::printf("\ncompleted %zu sessions in %.3f s  ->  %.0f sessions/s\n",
              st.sessions_completed, secs,
              static_cast<double>(st.sessions_completed) / secs);
  std::printf("accepted %zu, rejected %zu (expected rejects: %zu)\n",
              st.accepted, st.rejected, forged_sids.size());
  std::printf("verifier: %zu batches over %zu items "
              "(%.1f items/batch), %zu decode failures, "
              "%zu RLC fallbacks re-checking %zu transcripts\n",
              st.verifier.batches, st.verifier.items,
              st.verifier.batches
                  ? static_cast<double>(st.verifier.items) /
                        static_cast<double>(st.verifier.batches)
                  : 0.0,
              st.verifier.decode_failures, st.verifier.rlc_failures,
              st.verifier.single_fallbacks);

  // Per-session energy telemetry, aggregated from the registry (§4's
  // accounting, now at fleet scale).
  const proto::TagCostModel cost;
  const auto radio_model = hw::RadioModel::ban();
  const double fleet_j =
      cost.session_energy_j(st.fleet_tag_energy, radio_model, 0.5);
  std::printf("fleet tag-side energy: %zu ECPM, %zu modmul, %zu TX bits "
              "->  %.1f uJ total (%.2f uJ/session at 0.5 m BAN)\n",
              st.fleet_tag_energy.ecpm, st.fleet_tag_energy.modmul,
              st.fleet_tag_energy.tx_bits, fleet_j * 1e6,
              fleet_j * 1e6 / static_cast<double>(n_sessions));

  // Spot-check one record.
  const auto rec = server.record(sids.front());
  std::printf("session %llu: device %u, completed %d, accepted %d, "
              "%zu msgs in, rx %zu bits, tx %zu bits\n",
              static_cast<unsigned long long>(rec.id), rec.device,
              rec.completed ? 1 : 0, rec.accepted ? 1 : 0, rec.messages_in,
              rec.rx_bits, rec.tx_bits);

  const bool ok = st.rejected == forged_sids.size() &&
                  st.sessions_completed == n_sessions;
  std::printf("%s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
