// quickstart — the 60-second tour of the library.
//
// Builds the paper's protected ECC processor, runs a validated point
// multiplication on NIST K-163, prints the energy/latency telemetry that
// reproduces the §6 chip numbers, and finishes with a Diffie–Hellman-style
// key agreement between an implanted device and its mini-server.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/secure_processor.h"
#include "ecc/curve.h"
#include "rng/xoshiro.h"

int main() {
  using namespace medsec;

  const ecc::Curve& curve = ecc::Curve::k163();
  std::printf("curve: %s (order has %zu bits)\n\n", curve.name().c_str(),
              curve.order().bit_length());

  // The paper's artifact: co-processor with every countermeasure enabled.
  core::SecureEccProcessor device(
      curve, core::CountermeasureConfig::protected_default());
  std::printf("device area: %.0f GE (paper quotes ~12 kGE for an ECC core)\n",
              device.area_ge());

  // --- one point multiplication, with telemetry -----------------------------
  rng::Xoshiro256 rng(2013);
  const ecc::Scalar k = rng.uniform_nonzero(curve.order());
  const auto outcome = device.point_mult(k, curve.base_point());
  std::printf("\none point multiplication k*G:\n");
  std::printf("  cycles      : %zu\n", outcome.cycles);
  std::printf("  time        : %.1f ms   (paper: 1/9.8 s = 102 ms)\n",
              outcome.seconds * 1e3);
  std::printf("  energy      : %.2f uJ  (paper: 5.1 uJ)\n",
              outcome.energy_j * 1e6);
  std::printf("  avg power   : %.1f uW  (paper: 50.4 uW)\n",
              outcome.avg_power_w * 1e6);

  // --- ECDH-style key agreement ----------------------------------------------
  // Device and server each hold a secret; both arrive at the same shared
  // point. The device side runs on the modeled hardware; the server (the
  // "energy-rich" side of §4) uses plain software arithmetic.
  core::SecureEccProcessor server_side(
      curve, core::CountermeasureConfig::protected_default(), /*seed=*/99);
  const ecc::Scalar a = rng.uniform_nonzero(curve.order());  // device
  const ecc::Scalar b = rng.uniform_nonzero(curve.order());  // server

  const ecc::Point A = device.point_mult(a, curve.base_point()).result;
  const ecc::Point B =
      curve.scalar_mult_reference(b, curve.base_point());  // server: software

  const auto device_shared = device.point_mult(a, B);
  const ecc::Point server_shared = curve.scalar_mult_reference(b, A);

  std::printf("\nECDH-style agreement:\n");
  std::printf("  device computed  x(abG) = %s...\n",
              device_shared.result.x.to_hex().substr(0, 16).c_str());
  std::printf("  server computed  x(abG) = %s...\n",
              server_shared.x.to_hex().substr(0, 16).c_str());
  std::printf("  shared secrets match: %s\n",
              device_shared.result == server_shared ? "yes" : "NO (bug!)");

  // --- what validation buys you ------------------------------------------------
  ecc::Point bogus = curve.base_point();
  bogus.y += ecc::Fe::one();  // off-curve point, e.g. an injected fault
  try {
    device.point_mult(a, bogus);
    std::printf("\ninvalid point accepted: THIS IS A BUG\n");
    return 1;
  } catch (const std::invalid_argument&) {
    std::printf("\noff-curve input point rejected before the key touched it "
                "(invalid-curve gate)\n");
  }
  return 0;
}
