// Golden-vector conformance suite: fixed-seed protocol transcripts and
// campaign digests as checked-in constants.
//
// Every flow below runs from a fixed deterministic RNG seed and must
// produce *bit-identical* output on every field-arithmetic backend
// (portable / karatsuba / clmul) and every wide-lane backend (scalar /
// bitsliced / clmul) — CI runs this suite once per backend cell. A
// failing vector means cross-backend drift: some path produced different
// bytes than the recorded reference, which previously could only be
// caught indirectly (a verifier rejecting, a statistic shifting).
//
// Regenerating after an *intentional* protocol/wire change:
//   MEDSEC_PRINT_GOLDEN=1 ./test_golden_vectors
// prints the new constants in paste-ready form (and fails, so a
// regeneration can never silently land as a green run).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ciphers/aes128.h"
#include "ecc/curve.h"
#include "hash/sha256.h"
#include "protocol/ecies.h"
#include "protocol/mutual_auth.h"
#include "protocol/peeters_hermans.h"
#include "protocol/schnorr.h"
#include "rng/xoshiro.h"
#include "sidechannel/countermeasures.h"
#include "sidechannel/trace_sim.h"

namespace {

using medsec::ecc::Curve;
using medsec::rng::Xoshiro256;
namespace proto = medsec::protocol;
namespace sc = medsec::sidechannel;

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  s.reserve(2 * bytes.size());
  for (const std::uint8_t b : bytes) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xF]);
  }
  return s;
}

/// Canonical transcript serialization: every tag->reader message, then
/// every reader->tag message, direction-prefixed, '|'-joined.
std::string transcript_hex(const proto::Transcript& t) {
  std::string s;
  for (const auto& m : t.tag_to_reader) {
    s += "T:";
    s += to_hex(m.payload);
    s += '|';
  }
  for (const auto& m : t.reader_to_tag) {
    s += "R:";
    s += to_hex(m.payload);
    s += '|';
  }
  return s;
}

/// SHA-256 digest (hex) of a trace set's raw sample bytes — the compact
/// conformance form for campaign-scale outputs.
std::string traces_digest(const sc::TraceSet& set) {
  medsec::hash::Sha256 h;
  for (const auto& trace : set.traces) {
    static_assert(sizeof(double) == 8);
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(trace.data()),
        trace.size() * sizeof(double)));
  }
  const auto d = h.finish();
  return to_hex(d);
}

/// Assert against the checked-in constant — or, under
/// MEDSEC_PRINT_GOLDEN=1, print the actual value in paste-ready form and
/// fail (regeneration must never look like a green run).
void golden_check(const char* name, const std::string& actual,
                  const std::string& expected) {
  if (std::getenv("MEDSEC_PRINT_GOLDEN") != nullptr) {
    std::printf("constexpr const char %s[] =\n    \"%s\";\n", name,
                actual.c_str());
    ADD_FAILURE() << "MEDSEC_PRINT_GOLDEN set: printing, not checking";
    return;
  }
  EXPECT_EQ(actual, expected) << name;
}

proto::CipherFactory aes_factory() {
  return [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Aes128(key));
  };
}

// --- checked-in vectors (regenerate with MEDSEC_PRINT_GOLDEN=1) -------------

constexpr const char kSchnorrTranscript[] =
    "T:0203677f48aaf52ca3a5f8596548dbaac0926d28d52a|T:0029889cf206696ad653"
    "bd25044bdef6f567bb0bda|R:00f4396052740912af01e36646e441de9b01dfbd04|";
constexpr const char kSchnorrHardenedTranscript[] =
    "T:0207fa82a57c49e5a38c4fa600adeb1bfd5533509ae2|T:00040d82f0617e181489"
    "37d356e716205803036550|R:033b4d852a0ba7ddcd1f4613048116c379f35b550a|";
constexpr const char kEciesTranscript[] =
    "T:0203e1814abcaddc0a4f8b22f28e23cc1ef6597316d6c5f277029afe8e9cc3355d"
    "bc40746f72e7e94f54736dc5f4f8b20b9e6e0327ed72b6b7f16250da|";
constexpr const char kPhTranscript[] =
    "T:020292ecc4a143f42095dd98e64758d8836581143d5d|T:03e432d5f3e4cab0b6df"
    "f31c7347d50ca665f7a0f8|R:006f117a9c47a4d04adce468c5ee135d357512bc67|";
constexpr const char kMutualAuthTranscript[] =
    "T:778c33fde38e8f60|T:258fe59a878e91587b0475235c5c0b352ed9e2f7b350e796"
    "c46e3dc9a94d256fb745fe4b0ca678fa0df4a75790613faa|R:6170d78c50f834549d"
    "8e1191182922465355cf2eed0fd51e|";
constexpr const char kCampaignDigest[] =
    "ca59be8bb21881a75f4d8b31d0eeeec9501046f63bc0d8e3be41047c65ebe143";
constexpr const char kBlindedCampaignDigest[] =
    "76193ce38e72d11ceeac7307c50a6e830cf5219a57d0f00e753c6acb334d532c";

// --- the flows ---------------------------------------------------------------

TEST(GoldenVectors, SchnorrSignVerify) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(101);
  const auto kp = proto::schnorr_keygen(c, rng);
  const auto session = proto::run_schnorr_session(c, kp, rng);
  ASSERT_TRUE(session.accepted);
  golden_check("kSchnorrTranscript", transcript_hex(session.transcript),
               kSchnorrTranscript);
}

TEST(GoldenVectors, SchnorrUnderFullCountermeasures) {
  // The hardened ladder (blinded + masked + shuffled) is deterministic
  // for a fixed RNG too — and must stay bit-identical across backends.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(102);
  const auto kp = proto::schnorr_keygen(c, rng);
  sc::HardenedLadder hl(c, sc::CountermeasureConfig::full());
  proto::SchnorrProver prover(c, kp, rng, &hl);
  proto::SchnorrVerifier verifier(c, kp.X, rng);
  proto::Transcript transcript;
  ASSERT_TRUE(proto::drive_session(prover, verifier, transcript));
  ASSERT_TRUE(verifier.accepted());
  golden_check("kSchnorrHardenedTranscript", transcript_hex(transcript),
               kSchnorrHardenedTranscript);
}

TEST(GoldenVectors, EciesRoundTrip) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(201);
  const auto kp = proto::ecies_keygen(c, rng);
  const std::vector<std::uint8_t> telemetry{'g', 'o', 'l', 'd', 'e', 'n',
                                            '-', 'h', 'r', '6', '2'};
  const auto r =
      proto::run_ecies_upload(c, kp, telemetry, aes_factory(), 16, rng);
  ASSERT_TRUE(r.delivered);
  ASSERT_EQ(r.plaintext, telemetry);
  golden_check("kEciesTranscript", transcript_hex(r.transcript),
               kEciesTranscript);
}

TEST(GoldenVectors, PeetersHermansIdentify) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(301);
  auto reader = proto::ph_setup_reader(c, rng);
  proto::ph_register_tag(c, reader, rng);
  const auto tag = proto::ph_register_tag(c, reader, rng);
  proto::ph_register_tag(c, reader, rng);
  const auto r = proto::run_ph_session(c, tag, reader, rng);
  ASSERT_TRUE(r.identified);
  ASSERT_EQ(*r.identity, tag.registered_index);
  golden_check("kPhTranscript", transcript_hex(r.transcript), kPhTranscript);
}

TEST(GoldenVectors, MutualAuth) {
  Xoshiro256 rng(401);
  std::vector<std::uint8_t> master(16);
  for (std::size_t i = 0; i < master.size(); ++i)
    master[i] = static_cast<std::uint8_t>(0xA0 + i);
  const auto keys = proto::derive_session_keys(master, 16);
  const std::vector<std::uint8_t> telemetry{'m', 'v', '-', '7'};
  const auto r =
      proto::run_mutual_auth(aes_factory(), keys, telemetry, rng);
  ASSERT_TRUE(r.tag_accepted_server);
  ASSERT_TRUE(r.server_accepted_tag);
  ASSERT_TRUE(r.telemetry_delivered);
  golden_check("kMutualAuthTranscript", transcript_hex(r.transcript),
               kMutualAuthTranscript);
}

TEST(GoldenVectors, CampaignTraceDigest) {
  // Exercises the wide-lane ladder + leakage model end to end: the
  // counter-seeded campaign must produce identical sample bytes on every
  // scalar and lane backend, at any thread/lane geometry.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(501);
  const auto k = rng.uniform_nonzero(c.order());
  sc::AlgorithmicSimConfig simc;
  simc.seed = 515;
  const auto exp = sc::generate_dpa_traces(
      c, k, 32, sc::RpcScenario::kEnabledSecretRandomness, simc);
  golden_check("kCampaignDigest", traces_digest(exp.traces),
               kCampaignDigest);
}

TEST(GoldenVectors, BlindedCampaignTraceDigest) {
  // Same, through the widened (blinded + masked) lane entry.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(502);
  const auto k = rng.uniform_nonzero(c.order());
  sc::AlgorithmicSimConfig simc;
  simc.seed = 525;
  sc::CountermeasureConfig cm;
  cm.scalar_blinding = true;
  cm.base_point_blinding = true;
  cm.randomize_projective = true;
  simc.countermeasures = cm;
  const auto exp = sc::generate_dpa_traces(
      c, k, 32, sc::RpcScenario::kDisabled, simc);
  golden_check("kBlindedCampaignDigest", traces_digest(exp.traces),
               kBlindedCampaignDigest);
}

}  // namespace
