// Cross-module property tests: invariants that tie the layers together,
// swept over seeds with TEST_P. These are the "does the whole tower
// agree with itself" checks — four scalar-multiplication implementations
// (affine reference, software ladder, w-NAF, cycle-accurate co-processor)
// must agree bit for bit on the same inputs, serialization must round-trip
// through the protocol boundary validators, and the instrumented paths
// must be deterministic under fixed seeds.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/secure_processor.h"
#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"
#include "gf2m/arch.h"
#include "gf2m/reduce_163.h"
#include "protocol/wire.h"
#include "rng/xoshiro.h"
#include "sidechannel/trace_sim.h"

namespace {

using medsec::core::CountermeasureConfig;
using medsec::core::SecureEccProcessor;
using medsec::ecc::Curve;
using medsec::ecc::MultAlgorithm;
using medsec::ecc::MultOptions;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;
namespace proto = medsec::protocol;
namespace sc = medsec::sidechannel;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 127, 3301, 77777, 900001),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(SeedSweep, FourScalarMultImplementationsAgree) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam());
  const Scalar k = rng.uniform_nonzero(c.order());
  const Point p = medsec::ecc::montgomery_ladder(
      c, rng.uniform_nonzero(c.order()), c.base_point());

  const Point reference = c.scalar_mult_reference(k, p);
  const Point ladder = medsec::ecc::montgomery_ladder(c, k, p);
  MultOptions wnaf;
  wnaf.algorithm = MultAlgorithm::kWnaf;
  const Point naf = medsec::ecc::scalar_mult(c, k, p, wnaf);
  SecureEccProcessor proc(c, CountermeasureConfig::protected_default(),
                          GetParam());
  const Point coproc = proc.point_mult(k, p).result;

  EXPECT_EQ(reference, ladder);
  EXPECT_EQ(reference, naf);
  EXPECT_EQ(reference, coproc);
}

TEST_P(SeedSweep, ScalarMultIsGroupHomomorphism) {
  // (k1 + k2)P == k1 P + k2 P and (k1 * k2)P == k1 (k2 P).
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam() ^ 0xABCD);
  const Scalar k1 = rng.uniform_nonzero(c.order());
  const Scalar k2 = rng.uniform_nonzero(c.order());
  const auto& ring = c.scalar_ring();
  const Point g = c.base_point();

  const Point sum_mult =
      medsec::ecc::montgomery_ladder(c, ring.add(k1, k2), g);
  const Point mult_sum = c.add(medsec::ecc::montgomery_ladder(c, k1, g),
                               medsec::ecc::montgomery_ladder(c, k2, g));
  EXPECT_EQ(sum_mult, mult_sum);

  const Point prod_mult =
      medsec::ecc::montgomery_ladder(c, ring.mul(k1, k2), g);
  const Point nested = medsec::ecc::montgomery_ladder(
      c, k1, medsec::ecc::montgomery_ladder(c, k2, g));
  EXPECT_EQ(prod_mult, nested);
}

TEST_P(SeedSweep, WirePointRoundTripOnRandomPoints) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam() ^ 0x1234);
  const Point p = medsec::ecc::montgomery_ladder(
      c, rng.uniform_nonzero(c.order()), c.base_point());
  const auto dec = proto::decode_point(c, proto::encode_point(c, p));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, p);
  // Negated point encodes to a different y-bit but same x.
  const auto neg = proto::encode_point(c, c.negate(p));
  EXPECT_NE(proto::encode_point(c, p), neg);
}

TEST_P(SeedSweep, PaddedScalarActsLikeOriginal) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam() ^ 0x5678);
  const Scalar k = rng.uniform_nonzero(c.order());
  const Scalar padded = medsec::ecc::constant_length_scalar(c, k);
  EXPECT_EQ(padded.bit_length(), c.order().bit_length() + 1);
  EXPECT_EQ(padded.mod(c.order()), k.mod(c.order()));
  EXPECT_EQ(c.scalar_mult_reference(padded, c.base_point()),
            c.scalar_mult_reference(k, c.base_point()));
}

TEST_P(SeedSweep, TraceSimulationIsDeterministicPerSeed) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam());
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::AlgorithmicSimConfig cfg;
  cfg.seed = GetParam();
  const auto a =
      sc::generate_dpa_traces(c, k, 3, sc::RpcScenario::kDisabled, cfg);
  const auto b =
      sc::generate_dpa_traces(c, k, 3, sc::RpcScenario::kDisabled, cfg);
  ASSERT_EQ(a.traces.traces.size(), b.traces.traces.size());
  for (std::size_t i = 0; i < a.traces.traces.size(); ++i)
    EXPECT_EQ(a.traces.traces[i], b.traces.traces[i]);
}

TEST_P(SeedSweep, CoprocessorEnergyIsReproducible) {
  // Same key, same randomizer seed -> identical cycle count and energy;
  // different RPC randomness -> same cycles (constant time!) but
  // different switching energy.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam());
  const Scalar k = rng.uniform_nonzero(c.order());
  SecureEccProcessor p1(c, CountermeasureConfig::protected_default(), 42);
  SecureEccProcessor p2(c, CountermeasureConfig::protected_default(), 42);
  SecureEccProcessor p3(c, CountermeasureConfig::protected_default(), 43);
  const auto r1 = p1.point_mult(k, c.base_point());
  const auto r2 = p2.point_mult(k, c.base_point());
  const auto r3 = p3.point_mult(k, c.base_point());
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_DOUBLE_EQ(r1.energy_j, r2.energy_j);
  EXPECT_EQ(r1.cycles, r3.cycles);          // timing countermeasure
  EXPECT_NE(r1.energy_j, r3.energy_j);      // data-dependent power remains
  EXPECT_EQ(r1.result, r3.result);
}

TEST_P(SeedSweep, LadderObserverSeesConsistentProjectiveRatios) {
  // Every observation's X1/Z1 must equal the true intermediate multiple
  // of P: the observer hook cannot drift from the arithmetic.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam() ^ 0x9999);
  const Scalar k = rng.uniform_nonzero(c.order());
  const Scalar padded = medsec::ecc::constant_length_scalar(c, k);

  // Track the expected accumulator value alongside the ladder.
  Scalar acc{1};  // after consuming the leading 1
  std::size_t checked = 0;
  medsec::ecc::LadderOptions opt;
  opt.observer = [&](const medsec::ecc::LadderObservation& ob) {
    acc = c.scalar_ring().add(acc, acc);
    if (ob.key_bit) acc = c.scalar_ring().add(acc, Scalar{1});
    if (checked++ % 40 != 0) return;  // spot-check (inversions are slow)
    if (ob.z1.is_zero()) return;
    const auto x_affine =
        medsec::ecc::Fe::mul(ob.x1, medsec::ecc::Fe::inv(ob.z1));
    const Point expect = c.scalar_mult_reference(acc, c.base_point());
    ASSERT_FALSE(expect.infinity);
    EXPECT_EQ(x_affine, expect.x) << "iteration " << ob.bit_index;
  };
  medsec::ecc::montgomery_ladder(c, k, c.base_point(), opt);
  EXPECT_EQ(checked, 163u);
  EXPECT_EQ(acc, padded.mod(c.order()));
}

TEST_P(SeedSweep, B163LadderAgreesWithReference) {
  // The algorithmic layer is not specialized to the Koblitz curve.
  const Curve& c = Curve::b163();
  Xoshiro256 rng(GetParam() ^ 0xB163);
  const Scalar k = rng.uniform_nonzero(c.order());
  EXPECT_EQ(medsec::ecc::montgomery_ladder(c, k, c.base_point()),
            c.scalar_mult_reference(k, c.base_point()));
}

// --- reduce_163 fold equivalence --------------------------------------------
//
// THE one fold definition (gf2m/reduce_163.h) has four transcriptions:
// the scalar word fold, the bit-plane fold, and the YMM/ZMM word-vector
// folds. These properties pin all of them to a naive bit-at-a-time
// reference generated from kPentanomialExps alone, on the reduction's
// worst boundary patterns and a 10k seeded random sweep.

namespace gf = medsec::gf2m;

/// Bit-at-a-time reference: clear each coefficient >= 163 from the top
/// down, XORing its pentanomial image in. Slow and obviously correct.
std::array<std::uint64_t, 3> naive_reduce384(
    const std::array<std::uint64_t, 6>& p_in) {
  std::array<std::uint64_t, 6> w = p_in;
  for (std::size_t i = 384; i-- > gf::kFieldBits;) {
    if (((w[i / 64] >> (i % 64)) & 1) == 0) continue;
    w[i / 64] ^= 1ull << (i % 64);
    for (const unsigned e : gf::kPentanomialExps) {
      const std::size_t j = i - gf::kFieldBits + e;
      w[j / 64] ^= 1ull << (j % 64);
    }
  }
  return {w[0], w[1], w[2] & gf::kTopLimbMask};
}

/// The reduction's boundary patterns: all-ones (every fold path active at
/// once), lone top bit (the longest cascade: 383 -> 220 -> 57+e), limb
/// boundaries, alternating words.
std::vector<std::array<std::uint64_t, 6>> fold_boundary_inputs() {
  constexpr std::uint64_t kAlt = 0xAAAAAAAAAAAAAAAAull;
  return {
      {~0ull, ~0ull, ~0ull, ~0ull, ~0ull, ~0ull},
      {0, 0, 0, 0, 0, 1ull << 63},
      {0, 0, 0, 1ull, 0, 0},          // bit 192: first word-folded bit
      {0, 0, 1ull << 35, 0, 0, 0},    // bit 163: first residual-folded bit
      {0, 0, 1ull << 34, 0, 0, 0},    // bit 162: must NOT fold
      {kAlt, ~kAlt, kAlt, ~kAlt, kAlt, ~kAlt},
      {~0ull, 0, ~0ull, 0, ~0ull, 0},
  };
}

TEST(ReduceFold, ScalarMatchesNaiveReferenceOnBoundaries) {
  for (const auto& p : fold_boundary_inputs()) {
    const auto want = naive_reduce384(p);
    std::uint64_t got[3];
    gf::reduce326(p.data(), got);
    EXPECT_EQ(got[0], want[0]);
    EXPECT_EQ(got[1], want[1]);
    EXPECT_EQ(got[2], want[2]);
  }
}

/// Run one 326-bit (<= 325-coefficient) input through the bit-plane fold
/// with the value in a single lane, transposing by hand: plane j's word
/// holds coefficient j of lanes 0..63.
std::array<std::uint64_t, 3> via_plane_fold(
    const std::array<std::uint64_t, 6>& p, unsigned lane) {
  std::vector<std::uint64_t> planes(325, 0);
  for (std::size_t j = 0; j < 325; ++j)
    if ((p[j / 64] >> (j % 64)) & 1) planes[j] |= 1ull << lane;
  gf::reduce_planes<std::uint64_t>(planes.data(), 325);
  std::array<std::uint64_t, 3> out{};
  for (std::size_t j = 0; j < gf::kFieldBits; ++j)
    if ((planes[j] >> lane) & 1) out[j / 64] |= 1ull << (j % 64);
  return out;
}

TEST(ReduceFold, PlaneFoldMatchesScalarOnBoundaries) {
  for (const auto& p_full : fold_boundary_inputs()) {
    // Plane domain carries 325 coefficients (a genuine clmul product of
    // two degree-162 polynomials); truncate the 384-bit pattern to match.
    std::array<std::uint64_t, 6> p = p_full;
    p[5] &= (1ull << 5) - 1;  // keep bits 320..324
    const auto want = naive_reduce384(p);
    const auto got = via_plane_fold(p, /*lane=*/7);
    EXPECT_EQ(got[0], want[0]);
    EXPECT_EQ(got[1], want[1]);
    EXPECT_EQ(got[2], want[2]);
  }
}

#if MEDSEC_ARCH_X86_64
__attribute__((target("avx2"))) std::array<std::uint64_t, 3> via_x4_fold(
    const std::array<std::uint64_t, 6>& p, int lane) {
  __m256i vp[6], vout[3];
  for (std::size_t w = 0; w < 6; ++w) {
    alignas(32) std::uint64_t lanes[4] = {};
    lanes[lane] = p[w];
    vp[w] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
  }
  gf::reduce326_x4(vp, vout);
  std::array<std::uint64_t, 3> out;
  for (std::size_t w = 0; w < 3; ++w) {
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vout[w]);
    out[w] = lanes[lane];
  }
  return out;
}

__attribute__((target("avx512f"))) std::array<std::uint64_t, 3> via_x8_fold(
    const std::array<std::uint64_t, 6>& p, int lane) {
  __m512i vp[6], vout[3];
  for (std::size_t w = 0; w < 6; ++w) {
    alignas(64) std::uint64_t lanes[8] = {};
    lanes[lane] = p[w];
    vp[w] = _mm512_load_si512(lanes);
  }
  gf::reduce326_x8(vp, vout);
  std::array<std::uint64_t, 3> out;
  for (std::size_t w = 0; w < 3; ++w) {
    alignas(64) std::uint64_t lanes[8];
    _mm512_store_si512(lanes, vout[w]);
    out[w] = lanes[lane];
  }
  return out;
}

TEST(ReduceFold, VectorFoldsMatchScalarOnBoundaries) {
  if (!gf::cpu::has_avx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  for (const auto& p : fold_boundary_inputs()) {
    const auto want = naive_reduce384(p);
    for (const int lane : {0, 3}) {
      const auto got4 = via_x4_fold(p, lane);
      EXPECT_EQ(got4, want);
    }
    if (gf::cpu::has_avx512()) {
      for (const int lane : {0, 7}) {
        const auto got8 = via_x8_fold(p, lane);
        EXPECT_EQ(got8, want);
      }
    }
  }
}
#endif  // MEDSEC_ARCH_X86_64

TEST(ReduceFold, AllVariantsAgreeOn10kSeededInputs) {
  Xoshiro256 rng(0xF01Dull);
  for (int iter = 0; iter < 10000; ++iter) {
    std::array<std::uint64_t, 6> p;
    for (auto& w : p) w = rng.next_u64();
    // The plane fold carries 325 coefficients; test every variant on the
    // same in-range product so one naive reference serves all.
    p[5] &= (1ull << 5) - 1;

    const auto want = naive_reduce384(p);
    std::uint64_t scalar[3];
    gf::reduce326(p.data(), scalar);
    ASSERT_EQ(scalar[0], want[0]) << "iter " << iter;
    ASSERT_EQ(scalar[1], want[1]) << "iter " << iter;
    ASSERT_EQ(scalar[2], want[2]) << "iter " << iter;

    // The plane transpose is the slow part; sample it every 16th input
    // (625 full plane folds) while the word folds run all 10k.
    if (iter % 16 == 0) {
      const auto planes = via_plane_fold(p, iter % 64);
      ASSERT_EQ(planes, want) << "iter " << iter;
    }
#if MEDSEC_ARCH_X86_64
    if (gf::cpu::has_avx2()) {
      ASSERT_EQ(via_x4_fold(p, iter % 4), want) << "iter " << iter;
      if (gf::cpu::has_avx512())
        ASSERT_EQ(via_x8_fold(p, iter % 8), want) << "iter " << iter;
    }
#endif
  }
}

}  // namespace
