// Cross-module property tests: invariants that tie the layers together,
// swept over seeds with TEST_P. These are the "does the whole tower
// agree with itself" checks — four scalar-multiplication implementations
// (affine reference, software ladder, w-NAF, cycle-accurate co-processor)
// must agree bit for bit on the same inputs, serialization must round-trip
// through the protocol boundary validators, and the instrumented paths
// must be deterministic under fixed seeds.
#include <gtest/gtest.h>

#include "core/secure_processor.h"
#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"
#include "protocol/wire.h"
#include "rng/xoshiro.h"
#include "sidechannel/trace_sim.h"

namespace {

using medsec::core::CountermeasureConfig;
using medsec::core::SecureEccProcessor;
using medsec::ecc::Curve;
using medsec::ecc::MultAlgorithm;
using medsec::ecc::MultOptions;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;
namespace proto = medsec::protocol;
namespace sc = medsec::sidechannel;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 127, 3301, 77777, 900001),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(SeedSweep, FourScalarMultImplementationsAgree) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam());
  const Scalar k = rng.uniform_nonzero(c.order());
  const Point p = medsec::ecc::montgomery_ladder(
      c, rng.uniform_nonzero(c.order()), c.base_point());

  const Point reference = c.scalar_mult_reference(k, p);
  const Point ladder = medsec::ecc::montgomery_ladder(c, k, p);
  MultOptions wnaf;
  wnaf.algorithm = MultAlgorithm::kWnaf;
  const Point naf = medsec::ecc::scalar_mult(c, k, p, wnaf);
  SecureEccProcessor proc(c, CountermeasureConfig::protected_default(),
                          GetParam());
  const Point coproc = proc.point_mult(k, p).result;

  EXPECT_EQ(reference, ladder);
  EXPECT_EQ(reference, naf);
  EXPECT_EQ(reference, coproc);
}

TEST_P(SeedSweep, ScalarMultIsGroupHomomorphism) {
  // (k1 + k2)P == k1 P + k2 P and (k1 * k2)P == k1 (k2 P).
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam() ^ 0xABCD);
  const Scalar k1 = rng.uniform_nonzero(c.order());
  const Scalar k2 = rng.uniform_nonzero(c.order());
  const auto& ring = c.scalar_ring();
  const Point g = c.base_point();

  const Point sum_mult =
      medsec::ecc::montgomery_ladder(c, ring.add(k1, k2), g);
  const Point mult_sum = c.add(medsec::ecc::montgomery_ladder(c, k1, g),
                               medsec::ecc::montgomery_ladder(c, k2, g));
  EXPECT_EQ(sum_mult, mult_sum);

  const Point prod_mult =
      medsec::ecc::montgomery_ladder(c, ring.mul(k1, k2), g);
  const Point nested = medsec::ecc::montgomery_ladder(
      c, k1, medsec::ecc::montgomery_ladder(c, k2, g));
  EXPECT_EQ(prod_mult, nested);
}

TEST_P(SeedSweep, WirePointRoundTripOnRandomPoints) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam() ^ 0x1234);
  const Point p = medsec::ecc::montgomery_ladder(
      c, rng.uniform_nonzero(c.order()), c.base_point());
  const auto dec = proto::decode_point(c, proto::encode_point(c, p));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, p);
  // Negated point encodes to a different y-bit but same x.
  const auto neg = proto::encode_point(c, c.negate(p));
  EXPECT_NE(proto::encode_point(c, p), neg);
}

TEST_P(SeedSweep, PaddedScalarActsLikeOriginal) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam() ^ 0x5678);
  const Scalar k = rng.uniform_nonzero(c.order());
  const Scalar padded = medsec::ecc::constant_length_scalar(c, k);
  EXPECT_EQ(padded.bit_length(), c.order().bit_length() + 1);
  EXPECT_EQ(padded.mod(c.order()), k.mod(c.order()));
  EXPECT_EQ(c.scalar_mult_reference(padded, c.base_point()),
            c.scalar_mult_reference(k, c.base_point()));
}

TEST_P(SeedSweep, TraceSimulationIsDeterministicPerSeed) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam());
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::AlgorithmicSimConfig cfg;
  cfg.seed = GetParam();
  const auto a =
      sc::generate_dpa_traces(c, k, 3, sc::RpcScenario::kDisabled, cfg);
  const auto b =
      sc::generate_dpa_traces(c, k, 3, sc::RpcScenario::kDisabled, cfg);
  ASSERT_EQ(a.traces.traces.size(), b.traces.traces.size());
  for (std::size_t i = 0; i < a.traces.traces.size(); ++i)
    EXPECT_EQ(a.traces.traces[i], b.traces.traces[i]);
}

TEST_P(SeedSweep, CoprocessorEnergyIsReproducible) {
  // Same key, same randomizer seed -> identical cycle count and energy;
  // different RPC randomness -> same cycles (constant time!) but
  // different switching energy.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam());
  const Scalar k = rng.uniform_nonzero(c.order());
  SecureEccProcessor p1(c, CountermeasureConfig::protected_default(), 42);
  SecureEccProcessor p2(c, CountermeasureConfig::protected_default(), 42);
  SecureEccProcessor p3(c, CountermeasureConfig::protected_default(), 43);
  const auto r1 = p1.point_mult(k, c.base_point());
  const auto r2 = p2.point_mult(k, c.base_point());
  const auto r3 = p3.point_mult(k, c.base_point());
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_DOUBLE_EQ(r1.energy_j, r2.energy_j);
  EXPECT_EQ(r1.cycles, r3.cycles);          // timing countermeasure
  EXPECT_NE(r1.energy_j, r3.energy_j);      // data-dependent power remains
  EXPECT_EQ(r1.result, r3.result);
}

TEST_P(SeedSweep, LadderObserverSeesConsistentProjectiveRatios) {
  // Every observation's X1/Z1 must equal the true intermediate multiple
  // of P: the observer hook cannot drift from the arithmetic.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(GetParam() ^ 0x9999);
  const Scalar k = rng.uniform_nonzero(c.order());
  const Scalar padded = medsec::ecc::constant_length_scalar(c, k);

  // Track the expected accumulator value alongside the ladder.
  Scalar acc{1};  // after consuming the leading 1
  std::size_t checked = 0;
  medsec::ecc::LadderOptions opt;
  opt.observer = [&](const medsec::ecc::LadderObservation& ob) {
    acc = c.scalar_ring().add(acc, acc);
    if (ob.key_bit) acc = c.scalar_ring().add(acc, Scalar{1});
    if (checked++ % 40 != 0) return;  // spot-check (inversions are slow)
    if (ob.z1.is_zero()) return;
    const auto x_affine =
        medsec::ecc::Fe::mul(ob.x1, medsec::ecc::Fe::inv(ob.z1));
    const Point expect = c.scalar_mult_reference(acc, c.base_point());
    ASSERT_FALSE(expect.infinity);
    EXPECT_EQ(x_affine, expect.x) << "iteration " << ob.bit_index;
  };
  medsec::ecc::montgomery_ladder(c, k, c.base_point(), opt);
  EXPECT_EQ(checked, 163u);
  EXPECT_EQ(acc, padded.mod(c.order()));
}

TEST_P(SeedSweep, B163LadderAgreesWithReference) {
  // The algorithmic layer is not specialized to the Koblitz curve.
  const Curve& c = Curve::b163();
  Xoshiro256 rng(GetParam() ^ 0xB163);
  const Scalar k = rng.uniform_nonzero(c.order());
  EXPECT_EQ(medsec::ecc::montgomery_ladder(c, k, c.base_point()),
            c.scalar_mult_reference(k, c.base_point()));
}

}  // namespace
