// Unit and property tests for the fixed-width big-integer substrate.
#include <gtest/gtest.h>

#include "bigint/biguint.h"
#include "bigint/modring.h"
#include "rng/xoshiro.h"

namespace {

using medsec::bigint::BigUInt;
using medsec::bigint::ModRing;
using medsec::bigint::U192;
using medsec::bigint::U384;
using medsec::rng::Xoshiro256;

// The K-163 group order, used as a realistic 163-bit odd (prime) modulus.
const char* kOrderHex = "4000000000000000000020108A2E0CC0D99F8A5EF";

U192 random_u192(Xoshiro256& rng) {
  U192 v;
  for (std::size_t i = 0; i < U192::kLimbs; ++i) v.set_limb(i, rng.next_u64());
  return v;
}

TEST(BigUInt, HexRoundTrip) {
  const auto v = U192::from_hex(kOrderHex);
  EXPECT_EQ(v.to_hex(), "4000000000000000000020108a2e0cc0d99f8a5ef");
  EXPECT_EQ(U192::from_hex("0").to_hex(), "0");
  EXPECT_EQ(U192::from_hex("0x1f").to_hex(), "1f");
  EXPECT_EQ(U192::from_hex("00000001").to_hex(), "1");
}

TEST(BigUInt, FromHexRejectsBadInput) {
  EXPECT_THROW(U192::from_hex(""), std::invalid_argument);
  EXPECT_THROW(U192::from_hex("xyz"), std::invalid_argument);
  // 49 hex digits = 196 bits > 192.
  EXPECT_THROW(U192::from_hex("1000000000000000000000000000000000000000000000000"),
               std::invalid_argument);
}

TEST(BigUInt, BitLength) {
  EXPECT_EQ(U192{}.bit_length(), 0u);
  EXPECT_EQ(U192{1}.bit_length(), 1u);
  EXPECT_EQ(U192{0xFF}.bit_length(), 8u);
  EXPECT_EQ(U192::from_hex(kOrderHex).bit_length(), 163u);
}

TEST(BigUInt, BitAccess) {
  U192 v;
  v.set_bit(100, true);
  EXPECT_TRUE(v.bit(100));
  EXPECT_FALSE(v.bit(99));
  v.set_bit(100, false);
  EXPECT_TRUE(v.is_zero());
}

TEST(BigUInt, AddSubRoundTrip) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 200; ++i) {
    const U192 a = random_u192(rng);
    const U192 b = random_u192(rng);
    U192 s = a;
    const auto carry = s.add_in_place(b);
    U192 back = s;
    const auto borrow = back.sub_in_place(b);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // overflow iff the subtraction re-borrows
  }
}

TEST(BigUInt, CompareIsConsistentWithSub) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i) {
    const U192 a = random_u192(rng);
    const U192 b = random_u192(rng);
    U192 d = a;
    const auto borrow = d.sub_in_place(b);
    EXPECT_EQ(borrow == 1, a < b);
  }
}

TEST(BigUInt, ShiftInverse) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const U192 a = random_u192(rng);
    for (std::size_t s : {1u, 7u, 63u, 64u, 65u, 130u}) {
      // (a >> s) << s clears the low s bits only.
      const U192 r = (a >> s) << s;
      for (std::size_t bit = s; bit < 192; ++bit)
        EXPECT_EQ(r.bit(bit), a.bit(bit));
      for (std::size_t bit = 0; bit < s; ++bit) EXPECT_FALSE(r.bit(bit));
    }
  }
}

TEST(BigUInt, WideningMulMatchesShiftAdd) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 50; ++i) {
    const U192 a = random_u192(rng);
    const U192 b = random_u192(rng);
    const U384 prod = widening_mul(a, b);
    // Reference: schoolbook via shift-and-add on 384-bit values.
    U384 ref;
    const U384 wide_a = a.resize<384>();
    for (std::size_t bit = 0; bit < 192; ++bit) {
      if (b.bit(bit)) ref.add_in_place(wide_a.shl(bit));
    }
    EXPECT_EQ(prod, ref);
  }
}

TEST(BigUInt, ModBasics) {
  const U192 m{100};
  EXPECT_EQ(U192{1234}.mod(m), U192{34});
  EXPECT_EQ(U192{99}.mod(m), U192{99});
  EXPECT_EQ(U192{100}.mod(m), U192{0});
  EXPECT_THROW(U192{5}.mod(U192{}), std::invalid_argument);
}

TEST(BigUInt, ModAgainstU64) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t m = rng.next_u64() | 1;
    EXPECT_EQ(U192{a}.mod(U192{m}), U192{a % m});
  }
}

TEST(BigUInt, SelectIsBranchFreeSemantics) {
  const U192 a{123}, b{456};
  EXPECT_EQ(U192::select(0, a, b), a);
  EXPECT_EQ(U192::select(1, a, b), b);
}

class ModRingTest : public ::testing::Test {
 protected:
  ModRing<192> ring_{U192::from_hex(kOrderHex)};
  Xoshiro256 rng_{99};

  U192 random_residue() { return random_u192(rng_).mod(ring_.modulus()); }
};

TEST_F(ModRingTest, RejectsEvenOrZeroModulus) {
  EXPECT_THROW(ModRing<192>(U192{}), std::invalid_argument);
  EXPECT_THROW(ModRing<192>(U192{10}), std::invalid_argument);
}

TEST_F(ModRingTest, AddSubInverse) {
  for (int i = 0; i < 200; ++i) {
    const U192 a = random_residue();
    const U192 b = random_residue();
    EXPECT_EQ(ring_.sub(ring_.add(a, b), b), a);
    EXPECT_EQ(ring_.add(ring_.sub(a, b), b), a);
  }
}

TEST_F(ModRingTest, NegAddsToZero) {
  for (int i = 0; i < 100; ++i) {
    const U192 a = random_residue();
    EXPECT_TRUE(ring_.add(a, ring_.neg(a)).is_zero());
  }
}

TEST_F(ModRingTest, MulCommutativeAssociativeDistributive) {
  for (int i = 0; i < 50; ++i) {
    const U192 a = random_residue();
    const U192 b = random_residue();
    const U192 c = random_residue();
    EXPECT_EQ(ring_.mul(a, b), ring_.mul(b, a));
    EXPECT_EQ(ring_.mul(ring_.mul(a, b), c), ring_.mul(a, ring_.mul(b, c)));
    EXPECT_EQ(ring_.mul(a, ring_.add(b, c)),
              ring_.add(ring_.mul(a, b), ring_.mul(a, c)));
  }
}

TEST_F(ModRingTest, InverseTimesSelfIsOne) {
  for (int i = 0; i < 100; ++i) {
    U192 a = random_residue();
    if (a.is_zero()) a = U192{1};
    const auto inv = ring_.inv(a);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(ring_.mul(a, *inv), U192{1});
  }
}

TEST_F(ModRingTest, InverseOfZeroFails) {
  EXPECT_FALSE(ring_.inv(U192{}).has_value());
}

TEST_F(ModRingTest, FermatLittleTheorem) {
  // a^(p-1) == 1 mod p for the prime group order.
  U192 exp = ring_.modulus();
  exp.sub_in_place(U192{1});
  for (int i = 0; i < 10; ++i) {
    U192 a = random_residue();
    if (a.is_zero()) a = U192{2};
    EXPECT_EQ(ring_.pow(a, exp), U192{1});
  }
}

TEST_F(ModRingTest, PowMatchesRepeatedMul) {
  const U192 a = random_residue();
  U192 acc{1};
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(ring_.pow(a, U192{e}), acc);
    acc = ring_.mul(acc, a);
  }
}

}  // namespace
