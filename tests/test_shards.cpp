// Tests for the sharded async gateway (PR 10): the lock-free SPSC/MPSC
// mailbox rings under concurrent producers (the TSan target), explicit
// shedding under mailbox overflow, the shard-count invariance contract
// (run_sharded_campaign digest == run_chaos_campaign digest at ANY shard
// count, failover and faults included), per-shard batch verification with
// forgery isolation, the FleetServer drain_for verdict_pending report,
// frame-buffer pooling, and the UDP front end end-to-end over loopback.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/event_queue.h"
#include "core/mpsc_ring.h"
#include "ecc/curve.h"
#include "ecc/fixed_base.h"
#include "engine/delivery.h"
#include "engine/fleet_server.h"
#include "engine/gateway.h"
#include "engine/net.h"
#include "engine/shard.h"
#include "engine/transport.h"
#include "protocol/schnorr.h"
#include "protocol/wire.h"
#include "rng/xoshiro.h"

namespace {

using medsec::ecc::Curve;
using medsec::rng::Xoshiro256;
namespace core = medsec::core;
namespace proto = medsec::protocol;
namespace engine = medsec::engine;

// --- SPSC / MPSC rings -------------------------------------------------------

TEST(SpscRing, FifoAndExplicitBackpressure) {
  core::SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);  // power of two, as requested
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(ring.try_push(std::make_unique<int>(i)));
  // Full ring: push fails WITHOUT consuming — the shed item must stay
  // intact so the front end can still build its kReject reply from it.
  auto extra = std::make_unique<int>(99);
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 99);
  std::unique_ptr<int> out;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(*out, i);  // strict FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(SpscRing, ConcurrentProducerConsumerStress) {
  // The TSan target: one producer thread, one consumer thread, a ring
  // small enough that both full and empty transitions happen constantly.
  constexpr std::uint64_t kItems = 100'000;
  core::SpscRing<std::uint64_t> ring(64);
  std::uint64_t received = 0, sum = 0;
  std::thread consumer([&] {
    std::uint64_t expect = 0, v = 0;
    while (received < kItems) {
      if (ring.try_pop(v)) {
        EXPECT_EQ(v, expect++);  // order survives the thread boundary
        sum += v;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kItems;) {
    if (ring.try_push(std::uint64_t(i)))
      ++i;
    else
      std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

TEST(MpscRing, PerLaneFifoUnderConcurrentProducers) {
  constexpr std::size_t kProducers = 3;
  constexpr std::uint64_t kPerLane = 20'000;
  // Items carry (lane, seq) so the consumer can check each lane's order.
  core::MpscRing<std::pair<std::size_t, std::uint64_t>> ring(kProducers, 32);
  std::atomic<std::uint64_t> received{0};
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::thread consumer([&] {
    std::pair<std::size_t, std::uint64_t> item;
    while (received.load(std::memory_order_relaxed) <
           kProducers * kPerLane) {
      if (ring.try_pop(item)) {
        // Round-robin drain interleaves lanes, but WITHIN a lane order
        // is the producer's push order.
        EXPECT_EQ(item.second, next_seq[item.first]++);
        received.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t lane = 0; lane < kProducers; ++lane)
    producers.emplace_back([&, lane] {
      for (std::uint64_t i = 0; i < kPerLane;) {
        if (ring.try_push(lane, {lane, std::uint64_t(i)}))
          ++i;
        else
          std::this_thread::yield();
      }
    });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(received.load(), kProducers * kPerLane);
  for (std::size_t lane = 0; lane < kProducers; ++lane)
    EXPECT_EQ(next_seq[lane], kPerLane);
}

// --- shard partition ---------------------------------------------------------

TEST(ShardOf, DeterministicAndCoversEveryShard) {
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    std::vector<std::size_t> hits(shards, 0);
    for (std::uint64_t id = 1; id <= 4096; ++id) {
      const std::size_t s = engine::shard_of(id, shards);
      ASSERT_LT(s, shards);
      EXPECT_EQ(s, engine::shard_of(id, shards));  // pure function
      ++hits[s];
    }
    // splitmix64 finalizer: no shard starves (a contiguous-id workload
    // must not land on one shard).
    for (const std::size_t h : hits) EXPECT_GT(h, 4096u / shards / 4);
  }
}

// --- ShardEngine: mailbox overflow sheds -------------------------------------

TEST(ShardEngine, MailboxOverflowShedsExplicitly) {
  const Curve& c = Curve::k163();
  engine::ShardFleetConfig cfg;
  cfg.mailbox_capacity = 2;
  engine::ShardEngine eng(0, cfg, c, /*factory=*/{}, /*producers=*/1);
  const auto item = [](std::uint64_t id) {
    engine::IngressItem it;
    it.session = id;
    it.bytes = {0xAA, 0xBB};
    return it;
  };
  EXPECT_TRUE(eng.offer(0, item(1)));
  EXPECT_TRUE(eng.offer(0, item(2)));
  // Lane full: offer refuses (never blocks) and the shed counter moves —
  // the caller's cue to reply kReject.
  engine::IngressItem shed = item(3);
  EXPECT_FALSE(eng.offer(0, std::move(shed)));
  EXPECT_FALSE(eng.offer(0, item(4)));
  EXPECT_EQ(eng.stats().mailbox_shed, 2u);
  EXPECT_EQ(shed.session, 3u);  // intact for the reject reply
  EXPECT_FALSE(shed.bytes.empty());
}

// --- ShardEngine: in-process sessions, batch verify, forgery isolation -------

/// Transport that loops shard downlinks straight into client endpoints.
struct LoopTransport final : engine::Transport {
  std::map<std::uint64_t, engine::ReliableEndpoint*> clients;
  void send_downlink(std::uint64_t session, const engine::Peer&,
                     std::vector<std::uint8_t> bytes) override {
    const auto it = clients.find(session);
    if (it != clients.end()) it->second->on_bytes(std::move(bytes));
  }
};

TEST(ShardEngine, DeferredSchnorrBatchIsolatesForgedSession) {
  const Curve& c = Curve::k163();
  Xoshiro256 keyrng(42);
  const auto kp = proto::schnorr_keygen(c, keyrng);

  engine::ShardFleetConfig cfg;
  cfg.verify_batch = 16;  // > session count: ONE batch holds them all
  engine::SessionFactory factory = [&c, &kp](std::uint64_t id) {
    engine::SessionSetup s;
    auto rng = std::make_unique<Xoshiro256>(1000 + id);
    s.machine = std::make_unique<proto::SchnorrVerifier>(
        c, kp.X, *rng, proto::SchnorrVerifier::Mode::kDeferred);
    s.deferred_schnorr = true;
    s.rng = std::move(rng);
    return s;
  };
  engine::ShardEngine eng(0, cfg, c, factory, /*producers=*/1);
  LoopTransport loop;
  eng.set_transport(&loop);

  constexpr std::size_t kSessions = 9;
  constexpr std::size_t kForged = kSessions - 1;  // last one lies
  core::EventQueue cq;  // client-side virtual world (never advances: no loss)
  std::vector<std::unique_ptr<engine::ReliableEndpoint>> eps;
  std::vector<medsec::ecc::Scalar> challenges(kSessions);
  std::vector<bool> have(kSessions, false);
  Xoshiro256 krng(7);
  const medsec::ecc::Scalar k = krng.uniform_nonzero(c.order());
  const std::vector<std::uint8_t> commitment =
      proto::encode_point(c, medsec::ecc::generator_comb(c).mult_ct(k));

  for (std::size_t i = 0; i < kSessions; ++i) {
    const std::uint64_t id = 100 + i;
    auto ep = std::make_unique<engine::ReliableEndpoint>(cq, id, 9 + id);
    ep->set_frame_sink([&eng, id](std::vector<std::uint8_t> bytes) {
      engine::IngressItem it;
      it.session = id;
      it.peer = engine::Peer{1, 1};
      it.bytes = std::move(bytes);
      ASSERT_TRUE(eng.offer(0, std::move(it)));
    });
    ep->set_message_sink([&, i](const engine::Frame& f) {
      if (std::strcmp(f.label, "challenge e") == 0) {
        challenges[i] = proto::decode_scalar(f.payload);
        have[i] = true;
      }
    });
    eps.push_back(std::move(ep));
    loop.clients[id] = eps.back().get();
    eps.back()->send_message("commitment R", commitment);
  }
  // Drain commitments: the factory opens each session, the verifier
  // machine answers with its challenge synchronously through the loop.
  eng.drain_mailbox(1024);
  eng.drain_mailbox(1024);  // the challenge acks
  for (std::size_t i = 0; i < kSessions; ++i) ASSERT_TRUE(have[i]);

  const auto& ring = c.scalar_ring();
  for (std::size_t i = 0; i < kSessions; ++i) {
    medsec::ecc::Scalar s = ring.add(k, ring.mul(challenges[i], kp.x));
    if (i == kForged) s = ring.add(s, s);  // valid scalar, wrong response
    eps[i]->send_message("response s", proto::encode_scalar(s));
  }
  eng.drain_mailbox(1024);
  eng.drain_mailbox(1024);
  // Every exchange settled; every verdict is still parked in the batch.
  EXPECT_EQ(eng.verifier().pending(), kSessions);
  EXPECT_EQ(eng.stats().completed, 0u);

  eng.flush_verifier();  // ONE multi-scalar multiplication...
  const engine::ShardStats st = eng.stats();
  EXPECT_EQ(st.verifier_flushes, 1u);
  EXPECT_EQ(st.completed, kSessions);
  EXPECT_EQ(st.accepted, kSessions - 1);  // ...and the forgery is isolated
  EXPECT_EQ(st.rejected, 1u);
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto rec = eng.records().find(100 + i);
    ASSERT_NE(rec, eng.records().end());
    EXPECT_TRUE(rec->second.completed);
    EXPECT_EQ(rec->second.accepted, i != kForged);
  }
  const auto vs = eng.verifier().stats();
  EXPECT_EQ(vs.items, kSessions);
  EXPECT_GE(vs.single_fallbacks, 1u);  // the RLC batch fell back to singles
  EXPECT_TRUE(eng.quiescent());
}

// --- shard-count invariance --------------------------------------------------

TEST(ShardedCampaign, DigestBitIdenticalToUnshardedAtAnyShardCount) {
  engine::ChaosCampaignConfig cfg;
  cfg.sessions = 96;
  cfg.uplink.drop = 0.05;
  cfg.uplink.corrupt = 0.03;
  cfg.downlink.drop = 0.05;
  cfg.downlink.duplicate = 0.02;
  cfg.failover_at = 3000;  // node death mid-protocol rides along
  const auto base = engine::run_chaos_campaign(cfg);
  ASSERT_GT(base.completed, 0u);
  ASSERT_EQ(base.corrupt_accepted, 0u);

  for (const std::size_t shards : {1u, 2u, 4u}) {
    engine::ShardedCampaignConfig sc;
    sc.chaos = cfg;
    sc.shards = shards;
    sc.verify_batch = 8;
    const auto r = engine::run_sharded_campaign(sc);
    // THE tentpole contract: hash-partitioned shard worlds with deferred
    // batched Schnorr verification reproduce the PR 6 campaign bit for
    // bit — same digest, same aggregate outcome counts — at any width.
    EXPECT_EQ(r.chaos.digest, base.digest) << "shards=" << shards;
    EXPECT_EQ(r.chaos.completed, base.completed);
    EXPECT_EQ(r.chaos.accepted, base.accepted);
    EXPECT_EQ(r.chaos.failed, base.failed);
    EXPECT_EQ(r.chaos.corrupt_accepted, 0u);
    EXPECT_EQ(r.chaos.gateway.accepted, base.gateway.accepted);
    // The gid%4==0 Schnorr quarter really went through the batch path.
    EXPECT_GT(r.verifier.items, 0u);
    EXPECT_GT(r.verifier.batches, 0u);
  }
  // Serial and parallel shard execution are the same campaign.
  engine::ShardedCampaignConfig serial;
  serial.chaos = cfg;
  serial.shards = 4;
  serial.verify_batch = 8;
  serial.parallel = false;
  EXPECT_EQ(engine::run_sharded_campaign(serial).chaos.digest, base.digest);
}

// --- FleetServer: drain_for names verifier-queued sessions -------------------

TEST(FleetDrain, VerdictPendingNamesBatchQueuedSession) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(31);
  const auto kp = proto::schnorr_keygen(c, rng);
  engine::FleetConfig fcfg;
  fcfg.worker_threads = 2;
  fcfg.verify_batch = 64;  // the exchange alone never fills a batch
  fcfg.deterministic = true;

  std::mutex mu;
  std::map<std::uint64_t, std::unique_ptr<proto::SchnorrProver>> provers;
  engine::FleetServer* srv = nullptr;
  engine::FleetServer fleet(
      c, fcfg, [&](std::uint64_t sid, const proto::Message& m) {
        proto::SchnorrProver* p = nullptr;
        {
          const std::lock_guard<std::mutex> lock(mu);
          const auto it = provers.find(sid);
          if (it == provers.end()) return;
          p = it->second.get();
        }
        for (const auto& out : p->on_message(m).out) srv->deliver(sid, out);
      });
  srv = &fleet;
  fleet.enroll(kp.X);
  const std::uint64_t sid = fleet.open_schnorr_session(0);
  ASSERT_NE(sid, 0u);
  {
    auto prover = std::make_unique<proto::SchnorrProver>(c, kp, rng);
    const auto r = prover->start();
    {
      const std::lock_guard<std::mutex> lock(mu);
      provers.emplace(sid, std::move(prover));
    }
    for (const auto& out : r.out) fleet.deliver(sid, out);
  }
  // A zero-budget drain never flushes the verifier; poll until the
  // workers have landed the transcript in the batch queue.
  engine::DrainReport report;
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    report = fleet.drain_for(std::chrono::milliseconds(0));
    if (!report.verdict_pending.empty()) break;
    ASSERT_LT(std::chrono::steady_clock::now() - t0,
              std::chrono::seconds(10))
        << "transcript never reached the batch queue";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The session's protocol exchange is DONE but its verdict is not: it
  // must show up both as a straggler and, specifically, verdict_pending —
  // the "needs a flush, not an eviction" distinction.
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.verdict_pending, std::vector<std::uint64_t>{sid});
  EXPECT_EQ(report.stragglers, std::vector<std::uint64_t>{sid});
  EXPECT_FALSE(fleet.record(sid).completed);

  fleet.drain();  // unbounded drain flushes the batch
  const auto after = fleet.drain_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(after.completed);
  EXPECT_TRUE(after.verdict_pending.empty());
  EXPECT_TRUE(fleet.record(sid).completed);
  EXPECT_TRUE(fleet.record(sid).accepted);
}

// --- frame pool --------------------------------------------------------------

TEST(FramePool, EncodeReusesReleasedBuffers) {
  engine::Frame f;
  f.type = engine::FrameType::kData;
  f.session = 7;
  f.label = "x";
  f.payload = {1, 2, 3};
  std::vector<std::uint8_t> a = engine::encode_frame(f);
  const std::uint8_t* ptr = a.data();
  const std::size_t cap = a.capacity();
  engine::FramePool::release(std::move(a));
  // Same thread, immediately after release: the pooled allocation comes
  // back instead of a fresh one (the transport/delivery hot-path reuse).
  std::vector<std::uint8_t> b = engine::encode_frame(f);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_GE(b.capacity(), cap);
  const auto decoded = engine::decode_frame(b);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->session, 7u);
  engine::FramePool::release(std::move(b));
}

// --- UDP front end over loopback ---------------------------------------------

TEST(UdpFrontEnd, PeekSocketSmokeAndEndToEndSession) {
  const Curve& c = Curve::k163();
  Xoshiro256 keyrng(5);
  const auto kp = proto::schnorr_keygen(c, keyrng);

  // Header peek: a real frame yields its session id, junk yields nothing.
  engine::Frame f;
  f.type = engine::FrameType::kData;
  f.session = 0xAB54A98CEB1F0AD2ULL;
  f.label = "probe";
  f.payload = {9, 9};
  std::vector<std::uint8_t> enc = engine::encode_frame(f);
  const auto peeked = engine::peek_frame_session(enc);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(*peeked, f.session);
  engine::FramePool::release(std::move(enc));
  const std::vector<std::uint8_t> junk = {0xDE, 0xAD};
  EXPECT_FALSE(engine::peek_frame_session(junk).has_value());

  // Fleet + front end on an ephemeral port; a raw-socket client runs two
  // full Schnorr exchanges (one honest, one forged) over real datagrams.
  engine::ShardFleetConfig cfg;
  cfg.shards = 1;
  cfg.verify_batch = 4;
  cfg.cycles_per_us = 0.01;
  engine::SessionFactory factory = [&c, &kp](std::uint64_t id) {
    engine::SessionSetup s;
    auto rng = std::make_unique<Xoshiro256>(500 + id);
    s.machine = std::make_unique<proto::SchnorrVerifier>(
        c, kp.X, *rng, proto::SchnorrVerifier::Mode::kDeferred);
    s.deferred_schnorr = true;
    s.rng = std::move(rng);
    return s;
  };
  engine::ShardFleet fleet(c, cfg, factory, /*producers=*/1);
  engine::UdpFrontEnd front(fleet, /*port=*/0);
  ASSERT_NE(front.local_port(), 0u);
  front.start();
  fleet.start(front);

  const engine::Peer server{0x7F000001, front.local_port()};
  engine::UdpSocket sock;
  core::EventQueue cq;
  Xoshiro256 krng(11);
  const medsec::ecc::Scalar k = krng.uniform_nonzero(c.order());
  const std::vector<std::uint8_t> commitment =
      proto::encode_point(c, medsec::ecc::generator_comb(c).mult_ct(k));

  constexpr std::size_t kSessions = 2;  // id 1 honest, id 2 forged
  std::vector<std::unique_ptr<engine::ReliableEndpoint>> eps;
  std::vector<medsec::ecc::Scalar> challenges(kSessions);
  std::vector<bool> have(kSessions, false), done(kSessions, false);
  const auto& ring = c.scalar_ring();
  for (std::size_t i = 0; i < kSessions; ++i) {
    const std::uint64_t id = i + 1;
    auto ep = std::make_unique<engine::ReliableEndpoint>(cq, id, 77 + id);
    ep->set_frame_sink([&sock, server](std::vector<std::uint8_t> bytes) {
      sock.send_to(server, bytes);
      engine::FramePool::release(std::move(bytes));
    });
    ep->set_message_sink([&, i](const engine::Frame& fr) {
      if (std::strcmp(fr.label, "challenge e") == 0 && !have[i]) {
        challenges[i] = proto::decode_scalar(fr.payload);
        have[i] = true;
      }
    });
    eps.push_back(std::move(ep));
    eps.back()->send_message("commitment R", commitment);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto pump = [&] {
    engine::Peer from;
    for (;;) {
      std::vector<std::uint8_t> bytes = engine::FramePool::acquire();
      if (!sock.recv_from(bytes, from)) {
        engine::FramePool::release(std::move(bytes));
        break;
      }
      const auto sid = engine::peek_frame_session(bytes);
      if (sid && *sid >= 1 && *sid <= kSessions)
        eps[*sid - 1]->on_bytes(std::move(bytes));
    }
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    cq.run_until(static_cast<core::Cycle>(
        static_cast<double>(us) * cfg.cycles_per_us));
  };
  const auto spin_until = [&](const std::function<bool()>& cond) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!cond()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      pump();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  };
  spin_until([&] { return have[0] && have[1]; });
  for (std::size_t i = 0; i < kSessions; ++i) {
    medsec::ecc::Scalar s = ring.add(k, ring.mul(challenges[i], kp.x));
    if (i == 1) s = ring.add(s, s);  // the forged response
    eps[i]->send_message("response s", proto::encode_scalar(s));
  }
  spin_until([&] { return eps[0]->idle() && eps[1]->idle(); });
  spin_until([&] { return fleet.totals().completed >= kSessions; });

  fleet.stop();
  front.stop();
  const engine::ShardStats st = fleet.totals();
  EXPECT_EQ(st.opened, kSessions);
  EXPECT_EQ(st.completed, kSessions);
  EXPECT_EQ(st.accepted, 1u);  // honest in, forgery out — over real UDP
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.mailbox_shed, 0u);
  const engine::UdpFrontEndStats fs = front.stats();
  EXPECT_GT(fs.datagrams_in, 0u);
  EXPECT_GT(fs.datagrams_out, 0u);
}

}  // namespace
