// Published-test-vector and property tests for the symmetric substrates:
// AES-128 (FIPS 197), PRESENT (CHES 2007 paper vectors), SIMON/SPECK
// (Beaulieu et al. reference vectors), CTR/CMAC modes (NIST SP 800-38A/B),
// and the encrypt-then-MAC composition the mutual-auth protocol uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "ciphers/aes128.h"
#include "ciphers/modes.h"
#include "ciphers/present.h"
#include "ciphers/simon_speck.h"
#include "rng/xoshiro.h"

namespace {

namespace ci = medsec::ciphers;

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(
        static_cast<std::uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  return out;
}

std::string to_hex(std::span<const std::uint8_t> v) {
  static const char* d = "0123456789abcdef";
  std::string s;
  for (const auto b : v) {
    s += d[b >> 4];
    s += d[b & 0xf];
  }
  return s;
}

std::vector<std::uint8_t> encrypt(const ci::BlockCipher& c,
                                  const std::vector<std::uint8_t>& pt) {
  std::vector<std::uint8_t> ct(pt.size());
  c.encrypt_block(pt, ct);
  return ct;
}

std::vector<std::uint8_t> decrypt(const ci::BlockCipher& c,
                                  const std::vector<std::uint8_t>& ct) {
  std::vector<std::uint8_t> pt(ct.size());
  c.decrypt_block(ct, pt);
  return pt;
}

// --- AES-128 (FIPS 197 Appendix C.1) -----------------------------------------

TEST(Aes128, Fips197Vector) {
  const ci::Aes128 aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  const auto ct = encrypt(aes, pt);
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(decrypt(aes, ct), pt);
}

TEST(Aes128, Sp80038aEcbVectors) {
  const ci::Aes128 aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const auto ct = encrypt(aes, from_hex("6bc1bee22e409f96e93d7e117393172a"));
  EXPECT_EQ(to_hex(ct), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, Metadata) {
  const ci::Aes128 aes(std::vector<std::uint8_t>(16, 0));
  EXPECT_EQ(aes.block_bytes(), 16u);
  EXPECT_EQ(aes.key_bytes(), 16u);
  EXPECT_EQ(aes.name(), "AES-128");
}

// --- PRESENT (Bogdanov et al., CHES 2007, Table 2) ----------------------------

struct PresentVector {
  const char* key;
  const char* pt;
  const char* ct;
};

class Present80Vectors : public ::testing::TestWithParam<PresentVector> {};

TEST_P(Present80Vectors, Matches) {
  const auto& v = GetParam();
  const ci::Present c(from_hex(v.key));
  const auto ct = encrypt(c, from_hex(v.pt));
  EXPECT_EQ(to_hex(ct), v.ct);
  EXPECT_EQ(decrypt(c, ct), from_hex(v.pt));
}

INSTANTIATE_TEST_SUITE_P(
    Ches2007, Present80Vectors,
    ::testing::Values(
        PresentVector{"00000000000000000000", "0000000000000000",
                      "5579c1387b228445"},
        PresentVector{"ffffffffffffffffffff", "0000000000000000",
                      "e72c46c0f5945049"},
        PresentVector{"00000000000000000000", "ffffffffffffffff",
                      "a112ffc72f68417b"},
        PresentVector{"ffffffffffffffffffff", "ffffffffffffffff",
                      "3333dcd3213210d2"}));

TEST(Present, KeySizeInferredFromKeyLength) {
  const ci::Present p80(std::vector<std::uint8_t>(10, 0));
  const ci::Present p128(std::vector<std::uint8_t>(16, 0));
  EXPECT_EQ(p80.key_bytes(), 10u);
  EXPECT_EQ(p128.key_bytes(), 16u);
  EXPECT_EQ(p80.block_bytes(), 8u);
  // Different key schedules must encrypt differently.
  const std::vector<std::uint8_t> pt(8, 0);
  EXPECT_NE(encrypt(p80, pt), encrypt(p128, pt));
}

// --- SIMON / SPECK 64/96 (reference implementation vectors) -------------------

TEST(Simon6496, ReferenceVector) {
  // Key (k2, k1, k0) = (13121110, 0b0a0908, 03020100), big-endian words.
  const ci::Simon6496 c(from_hex("131211100b0a090803020100"));
  const auto pt = from_hex("6f7220676e696c63");
  const auto ct = encrypt(c, pt);
  EXPECT_EQ(to_hex(ct), "5ca2e27f111a8fc8");
  EXPECT_EQ(decrypt(c, ct), pt);
}

TEST(Speck6496, ReferenceVector) {
  const ci::Speck6496 c(from_hex("131211100b0a090803020100"));
  const auto pt = from_hex("74614620736e6165");
  const auto ct = encrypt(c, pt);
  EXPECT_EQ(to_hex(ct), "9f7952ec4175946c");
  EXPECT_EQ(decrypt(c, ct), pt);
}

// --- round-trip property across all ciphers -----------------------------------

class AllCiphers
    : public ::testing::TestWithParam<std::shared_ptr<ci::BlockCipher>> {};

TEST_P(AllCiphers, EncryptDecryptRoundTripRandomBlocks) {
  const auto& c = *GetParam();
  medsec::rng::Xoshiro256 rng(77);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> pt(c.block_bytes());
    rng.fill(pt);
    const auto ct = encrypt(c, pt);
    EXPECT_NE(ct, pt);  // 2^-64 fluke at worst
    EXPECT_EQ(decrypt(c, ct), pt);
  }
}

TEST_P(AllCiphers, EncryptionIsAPermutationOnDistinctBlocks) {
  const auto& c = *GetParam();
  std::vector<std::uint8_t> a(c.block_bytes(), 0x00);
  std::vector<std::uint8_t> b(c.block_bytes(), 0x00);
  b[0] = 1;
  EXPECT_NE(encrypt(c, a), encrypt(c, b));
}

INSTANTIATE_TEST_SUITE_P(
    Fleet, AllCiphers,
    ::testing::Values(
        std::make_shared<ci::Aes128>(std::vector<std::uint8_t>(16, 0x42)),
        std::make_shared<ci::Present>(std::vector<std::uint8_t>(10, 0x42)),
        std::make_shared<ci::Present>(std::vector<std::uint8_t>(16, 0x42)),
        std::make_shared<ci::Simon6496>(std::vector<std::uint8_t>(12, 0x42)),
        std::make_shared<ci::Speck6496>(std::vector<std::uint8_t>(12, 0x42))),
    [](const auto& info) {
      std::string n = info.param->name();
      std::replace_if(n.begin(), n.end(),
                      [](char ch) { return !std::isalnum(ch); }, '_');
      return n + std::to_string(info.index);
    });

// --- modes ----------------------------------------------------------------------

TEST(Modes, CtrRoundTripAndKeystreamProperty) {
  const ci::Aes128 aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const std::vector<std::uint8_t> nonce(12, 0xAB);
  std::vector<std::uint8_t> msg(45);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i);
  const auto ct = ci::ctr_crypt(aes, nonce, msg);
  EXPECT_EQ(ct.size(), msg.size());
  EXPECT_EQ(ci::ctr_crypt(aes, nonce, ct), msg);  // involution
}

TEST(Modes, CmacNistVectors) {
  // NIST SP 800-38B, AES-128 examples.
  const ci::Aes128 aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_EQ(to_hex(ci::cmac(aes, {})),
            "bb1d6929e95937287fa37d129b756746");
  EXPECT_EQ(to_hex(ci::cmac(aes, from_hex("6bc1bee22e409f96e93d7e117393172a"))),
            "070a16b46b4d4144f79bdd9dd04a287c");
  EXPECT_EQ(
      to_hex(ci::cmac(
          aes, from_hex("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c"
                        "9eb76fac45af8e5130c81c46a35ce411"))),
      "dfa66747de9ae63030ca32611497c827");
}

TEST(Modes, CmacWorksOn8ByteBlocks) {
  const ci::Present p(std::vector<std::uint8_t>(10, 1));
  const auto m1 = ci::cmac(p, from_hex("00"));
  const auto m2 = ci::cmac(p, from_hex("01"));
  EXPECT_EQ(m1.size(), 8u);
  EXPECT_NE(m1, m2);
}

TEST(Modes, EncryptThenMacRoundTripAndTamperDetection) {
  const ci::Aes128 enc(std::vector<std::uint8_t>(16, 3));
  const ci::Aes128 mac(std::vector<std::uint8_t>(16, 4));
  const std::vector<std::uint8_t> nonce(12, 9);
  const auto pt = from_hex("000102030405060708090a0b0c0d0e0f1011");
  const auto sealed = ci::encrypt_then_mac(enc, mac, nonce, pt);

  std::vector<std::uint8_t> out;
  EXPECT_TRUE(ci::decrypt_then_verify(enc, mac, nonce, sealed.ciphertext,
                                      sealed.tag, out));
  EXPECT_EQ(out, pt);

  auto bad_ct = sealed.ciphertext;
  bad_ct[0] ^= 1;
  EXPECT_FALSE(
      ci::decrypt_then_verify(enc, mac, nonce, bad_ct, sealed.tag, out));
  auto bad_tag = sealed.tag;
  bad_tag[0] ^= 1;
  EXPECT_FALSE(ci::decrypt_then_verify(enc, mac, nonce, sealed.ciphertext,
                                       bad_tag, out));
}

TEST(Modes, CbcMacDiffersFromCmac) {
  const ci::Aes128 aes(std::vector<std::uint8_t>(16, 5));
  const auto msg = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_NE(ci::cbc_mac(aes, msg), ci::cmac(aes, msg));
}

}  // namespace
