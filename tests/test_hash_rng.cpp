// Vector and property tests for the hash substrate (SHA-1/SHA-256 FIPS
// vectors, HMAC RFC 4231, HKDF RFC 5869) and the randomness substrate
// (Xoshiro, HMAC-DRBG, TRNG model + SP 800-90B health tests).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "hash/hmac.h"
#include "hash/sha1.h"
#include "hash/sha256.h"
#include "rng/hmac_drbg.h"
#include "rng/trng_model.h"
#include "rng/xoshiro.h"

namespace {

using medsec::hash::Sha1;
using medsec::hash::Sha256;

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string to_hex(std::span<const std::uint8_t> v) {
  static const char* d = "0123456789abcdef";
  std::string s;
  for (const auto b : v) {
    s += d[b >> 4];
    s += d[b & 0xf];
  }
  return s;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(
        static_cast<std::uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  return out;
}

// --- SHA-1 ---------------------------------------------------------------------

TEST(Sha1, FipsVectors) {
  EXPECT_EQ(to_hex(Sha1::digest(bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(to_hex(Sha1::digest({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(to_hex(Sha1::digest(bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Sha1 h;
  h.update(bytes("ab"));
  h.update(bytes("c"));
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha1::digest(bytes("abc"))));
}

// --- SHA-256 -------------------------------------------------------------------

TEST(Sha256, FipsVectors) {
  EXPECT_EQ(to_hex(Sha256::digest(bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::digest(bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, BoundaryLengths) {
  // 55/56/64-byte messages straddle the padding boundary.
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
    const std::vector<std::uint8_t> msg(len, 'x');
    Sha256 h;
    for (const auto b : msg) h.update({&b, 1});
    EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::digest(msg))) << len;
  }
}

// --- HMAC / HKDF ----------------------------------------------------------------

TEST(Hmac, Rfc4231TestCase1And2) {
  const auto k1 = std::vector<std::uint8_t>(20, 0x0b);
  EXPECT_EQ(to_hex(medsec::hash::Hmac<Sha256>::mac(k1, bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  EXPECT_EQ(to_hex(medsec::hash::Hmac<Sha256>::mac(
                bytes("Jefe"), bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231LongKey) {
  const auto key = std::vector<std::uint8_t>(131, 0xaa);
  EXPECT_EQ(
      to_hex(medsec::hash::Hmac<Sha256>::mac(
          key, bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869TestCase1) {
  const auto ikm = std::vector<std::uint8_t>(22, 0x0b);
  const auto salt = from_hex("000102030405060708090a0b0c");
  const auto info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const auto okm = medsec::hash::hkdf<Sha256>(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hash, ConstantTimeEqual) {
  const auto a = bytes("same");
  const auto b = bytes("same");
  const auto c = bytes("diff");
  EXPECT_TRUE(medsec::hash::constant_time_equal(a, b));
  EXPECT_FALSE(medsec::hash::constant_time_equal(a, c));
  EXPECT_FALSE(medsec::hash::constant_time_equal(a, bytes("longer")));
}

// --- Xoshiro --------------------------------------------------------------------

TEST(Xoshiro, DeterministicPerSeedDistinctAcrossSeeds) {
  medsec::rng::Xoshiro256 a(1), b(1), c(2);
  for (int i = 0; i < 10; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    EXPECT_NE(va, c.next_u64());
  }
}

TEST(Xoshiro, UniformBoundAndNonzeroScalar) {
  medsec::rng::Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(17), 17u);
  medsec::bigint::U192 modulus{1000};
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.uniform_nonzero(modulus);
    EXPECT_FALSE(v.is_zero());
    EXPECT_LT(v, modulus);
  }
}

TEST(Xoshiro, FillCoversAllBytePositions) {
  medsec::rng::Xoshiro256 rng(4);
  std::vector<std::uint8_t> buf(37, 0);
  rng.fill(buf);
  int nonzero = 0;
  for (const auto b : buf) nonzero += b != 0;
  EXPECT_GT(nonzero, 25);  // all-zero bytes would be a fill bug
}

// --- HMAC-DRBG ------------------------------------------------------------------

TEST(HmacDrbg, DeterministicAndReseedChangesStream) {
  const std::vector<std::uint8_t> seed{1, 2, 3, 4};
  medsec::rng::HmacDrbg a(seed), b(seed);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  const std::vector<std::uint8_t> extra{9};
  a.reseed(extra);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(HmacDrbg, OutputLooksBalanced) {
  medsec::rng::HmacDrbg d(std::vector<std::uint8_t>{5, 5, 5});
  int ones = 0;
  constexpr int kWords = 1000;
  for (int i = 0; i < kWords; ++i)
    ones += std::popcount(d.next_u64());
  const double frac = static_cast<double>(ones) / (64.0 * kWords);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

// --- TRNG model + health tests ----------------------------------------------------

TEST(Trng, UnbiasedSourcePassesHealthTests) {
  medsec::rng::TrngModel::Params p;  // defaults: unbiased, uncorrelated
  p.seed = 11;
  medsec::rng::TrngModel trng(p);
  medsec::rng::RepetitionCountTest rct(1.0);
  medsec::rng::AdaptiveProportionTest apt(1.0);
  for (int i = 0; i < 4096; ++i) {
    const int bit = trng.next_bit();
    EXPECT_TRUE(rct.feed(bit));
    EXPECT_TRUE(apt.feed(bit));
  }
}

TEST(Trng, StuckSourceTripsRepetitionCount) {
  // Failure injection: the oscillator died and the source sticks at 1.
  medsec::rng::TrngModel::Params p;
  p.bias = 1.0;
  p.seed = 12;
  medsec::rng::TrngModel trng(p);
  medsec::rng::RepetitionCountTest rct(1.0);
  bool tripped = false;
  for (int i = 0; i < 256 && !tripped; ++i)
    tripped = !rct.feed(trng.next_bit());
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(rct.failed());
}

TEST(Trng, BiasedSourceTripsAdaptiveProportion) {
  medsec::rng::TrngModel::Params p;
  p.bias = 0.9;  // 90% ones, claimed full entropy
  p.seed = 13;
  medsec::rng::TrngModel trng(p);
  medsec::rng::AdaptiveProportionTest apt(1.0);
  bool tripped = false;
  for (int i = 0; i < 8192 && !tripped; ++i)
    tripped = !apt.feed(trng.next_bit());
  EXPECT_TRUE(tripped);
}

TEST(Trng, EntropyEstimateTracksBias) {
  auto collect = [](double bias, std::uint64_t seed) {
    medsec::rng::TrngModel::Params p;
    p.bias = bias;
    p.seed = seed;
    medsec::rng::TrngModel trng(p);
    std::vector<int> bits;
    for (int i = 0; i < 8192; ++i) bits.push_back(trng.next_bit());
    return medsec::rng::estimate_entropy(bits);
  };
  const auto fair = collect(0.5, 14);
  const auto skew = collect(0.8, 15);
  EXPECT_GT(fair.shannon_per_bit, 0.99);
  EXPECT_LT(skew.shannon_per_bit, 0.85);
  EXPECT_LT(skew.min_entropy_per_bit, skew.shannon_per_bit);
  EXPECT_NEAR(skew.ones_fraction, 0.8, 0.03);
}

TEST(Trng, VonNeumannDebiaserRemovesBias) {
  medsec::rng::TrngModel::Params p;
  p.bias = 0.8;
  p.seed = 16;
  medsec::rng::TrngModel trng(p);
  medsec::rng::VonNeumannDebiaser vn;
  int ones = 0, total = 0;
  for (int i = 0; i < 60000; ++i) {
    const auto out = vn.feed(trng.next_bit());
    if (out) {
      ones += *out;
      ++total;
    }
  }
  ASSERT_GT(total, 1000);
  EXPECT_NEAR(static_cast<double>(ones) / total, 0.5, 0.03);
}

}  // namespace
