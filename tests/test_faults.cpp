// test_faults.cpp — the fault-attack adversary subsystem, bottom to top:
// the seeded injector, the co-processor's fault physics, the guarded
// victim's detectors, the session recovery loop, the eval-matrix fault
// verdicts, the TRNG health gate, fleet quarantine under concurrency, and
// the end-to-end fault drill with its golden digest.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/secure_processor.h"
#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"
#include "engine/fault_drill.h"
#include "engine/fleet_server.h"
#include "hw/coprocessor.h"
#include "hw/fault_injector.h"
#include "protocol/schnorr.h"
#include "rng/trng_model.h"
#include "rng/xoshiro.h"
#include "sidechannel/countermeasures.h"
#include "sidechannel/eval.h"
#include "sidechannel/fault_attacks.h"

namespace {

using medsec::ecc::Curve;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;
namespace core = medsec::core;
namespace engine = medsec::engine;
namespace hw = medsec::hw;
namespace proto = medsec::protocol;
namespace rng = medsec::rng;
namespace sc = medsec::sidechannel;

/// Golden digest of the 256-session / 16-device / 5% drill below. Pins the
/// complete per-session outcome stream; re-measure deliberately if the
/// drill engine changes.
constexpr std::uint64_t kGoldenDrillDigest = 0x437e18693ad483a9ull;

/// MSB-first padded scalar bits (the ladder's ground truth).
std::vector<int> padded_bits(const Curve& c, const Scalar& k) {
  const Scalar padded = medsec::ecc::constant_length_scalar(c, k);
  std::vector<int> bits;
  sc::unpack_bits_msb(padded, padded.bit_length(), bits);
  return bits;
}

/// A key whose padded top bits are dense. Fault-attack verdicts are only
/// meaningful against such a key: a tiny k makes the padded scalar's top
/// bits all zero and every chain reconstruction trivially "correct".
Scalar dense_key(const Curve& c) {
  Xoshiro256 r(2013);
  return r.uniform_nonzero(c.order());
}

// --- the injector ------------------------------------------------------------

TEST(FaultInjector, CounterDerivedAndRateIndependent) {
  const hw::FaultInjector a(0xFA01, 0.05);
  const hw::FaultInjector b(0xFA01, 0.05);
  const hw::FaultInjector hot(0xFA01, 0.95);
  const hw::FaultShape shape{2000, 300000, 170};

  std::size_t hits = 0;
  for (std::uint64_t n = 0; n < 2000; ++n) {
    EXPECT_EQ(a.should_fault(n), b.should_fault(n));
    if (a.should_fault(n)) ++hits;
    const hw::FaultSpec fa = a.draw(n, shape);
    const hw::FaultSpec fb = b.draw(n, shape);
    const hw::FaultSpec fh = hot.draw(n, shape);
    EXPECT_EQ(fa.kind, fb.kind);
    EXPECT_EQ(fa.slot, fb.slot);
    EXPECT_EQ(fa.cycle, fb.cycle);
    EXPECT_EQ(fa.reg, fb.reg);
    EXPECT_EQ(fa.bit, fb.bit);
    EXPECT_EQ(fa.stuck_value, fb.stuck_value);
    // The rate lane is independent of the draw lanes: cranking the rate
    // never reshuffles which fault operation n would receive.
    EXPECT_EQ(fa.kind, fh.kind);
    EXPECT_EQ(fa.slot, fh.slot);
    // Coordinates land inside the shape.
    EXPECT_LT(fa.slot, shape.instructions);
    EXPECT_LT(fa.bit, 163u);
  }
  // 5% of 2000 with generous binomial slack.
  EXPECT_GT(hits, 50u);
  EXPECT_LT(hits, 160u);
  const hw::FaultInjector cold(0xFA01, 0.0);
  for (std::uint64_t n = 0; n < 100; ++n)
    EXPECT_FALSE(cold.should_fault(n));
}

// --- co-processor fault physics ----------------------------------------------

struct CoprocFixture {
  const Curve& c = Curve::k163();
  Scalar k = dense_key(c);
  std::vector<int> bits = padded_bits(c, k);
  hw::Coprocessor coproc;

  CoprocFixture() : coproc(energy_only()) {}
  static hw::CoprocessorConfig energy_only() {
    hw::CoprocessorConfig hc;
    hc.record_cycles = false;
    return hc;
  }
  hw::PointMultResult run() {
    return coproc.point_mult(bits, c.base_point().x, {}, nullptr);
  }
};

TEST(CoprocFaults, SelectGlitchDropsExactlyOneCycle) {
  CoprocFixture f;
  const auto clean = f.run();
  ASSERT_EQ(clean.exec.cycles, f.coproc.point_mult_cycles(f.bits.size(), {}));

  for (const std::size_t slot : {std::size_t{0}, std::size_t{5}}) {
    hw::FaultSpec g;
    g.kind = hw::FaultKind::kSelectGlitch;
    g.slot = slot;
    f.coproc.arm_fault(g);
    const auto glitched = f.run();
    EXPECT_TRUE(f.coproc.fault_fired());
    // The suppressed SELSET is one missing cycle — even when the step is
    // computationally absorbed. This is the coherence check's signal.
    EXPECT_EQ(glitched.exec.cycles, clean.exec.cycles - 1) << slot;
    f.coproc.disarm_fault();
  }
}

TEST(CoprocFaults, SelectGlitchAbsorptionTracksKeyBitTransition) {
  CoprocFixture f;
  const auto clean = f.run();
  // Slot s processes padded bit s+1 under stale select = bit s's value
  // (the leading 1 set select before slot 0... slot 0's stale select is
  // the INIT state, select 0). Absorbed iff no transition.
  for (std::size_t s = 0; s + 2 < 14; ++s) {
    hw::FaultSpec g;
    g.kind = hw::FaultKind::kSelectGlitch;
    g.slot = s;
    f.coproc.arm_fault(g);
    const auto glitched = f.run();
    f.coproc.disarm_fault();
    const int stale = s == 0 ? 0 : f.bits[s];
    const bool absorbed = glitched.x_affine == clean.x_affine;
    EXPECT_EQ(absorbed, f.bits[s + 1] == stale) << "slot " << s;
  }
}

TEST(CoprocFaults, SkipInstructionShortensTheRun) {
  CoprocFixture f;
  const auto clean = f.run();
  hw::FaultSpec g;
  g.kind = hw::FaultKind::kSkipInstruction;
  g.slot = 400;
  f.coproc.arm_fault(g);
  const auto skipped = f.run();
  EXPECT_TRUE(f.coproc.fault_fired());
  EXPECT_LT(skipped.exec.cycles, clean.exec.cycles);
  f.coproc.disarm_fault();
  // One-shot physics: a glitch is a single event — re-running without
  // re-arming executes clean.
  const auto after = f.run();
  EXPECT_EQ(after.exec.cycles, clean.exec.cycles);
  EXPECT_EQ(after.x_affine, clean.x_affine);
}

TEST(CoprocFaults, StuckAtPressesEveryRunUntilDisarm) {
  CoprocFixture f;
  const auto clean = f.run();
  hw::FaultSpec g;
  g.kind = hw::FaultKind::kStuckAt;
  g.reg = hw::Reg::kXP;
  g.bit = 3;
  g.stuck_value = !f.c.base_point().x.bit(3);  // guaranteed corruption
  f.coproc.arm_fault(g);
  const auto r1 = f.run();
  EXPECT_TRUE(f.coproc.fault_fired());
  EXPECT_FALSE(r1.x_affine == clean.x_affine);
  // Unlike the glitches, damage persists run after run.
  const auto r2 = f.run();
  EXPECT_FALSE(r2.x_affine == clean.x_affine);
  f.coproc.disarm_fault();
  const auto r3 = f.run();
  EXPECT_EQ(r3.x_affine, clean.x_affine);
}

TEST(CoprocFaults, BitFlipKeepsCycleCountButCorruptsState) {
  CoprocFixture f;
  const auto clean = f.run();
  hw::FaultSpec g;
  g.kind = hw::FaultKind::kBitFlip;
  g.cycle = clean.exec.cycles / 2;
  g.reg = hw::Reg::kX1;
  g.bit = 42;
  f.coproc.arm_fault(g);
  const auto flipped = f.run();
  EXPECT_TRUE(f.coproc.fault_fired());
  // An SEU never changes the schedule — only the data. The coherence
  // check's cycle half is blind to it; the ladder-invariant canary is the
  // detector that catches it.
  EXPECT_EQ(flipped.exec.cycles, clean.exec.cycles);
  EXPECT_FALSE(flipped.x_affine == clean.x_affine);
  f.coproc.disarm_fault();
}

// --- the guarded victim ------------------------------------------------------

struct VictimFixture {
  const Curve& c = Curve::k163();
  Scalar k = dense_key(c);
  hw::Coprocessor coproc{CoprocFixture::energy_only()};
  std::optional<sc::BaseBlindingPair> pair;
  Scalar pair_key{};
  Xoshiro256 rng{77};

  sc::VictimRelease run(const sc::CountermeasureConfig& cm) {
    return sc::guarded_coproc_mult(c, cm, coproc, k, c.base_point(), rng,
                                   pair, pair_key);
  }
};

TEST(GuardedVictim, CleanRunReleasesTheTrueProduct) {
  VictimFixture f;
  const Point ref =
      medsec::ecc::montgomery_ladder(f.c, f.k.mod(f.c.order()),
                                     f.c.base_point());
  for (const auto& cm :
       {sc::CountermeasureConfig::none(), sc::CountermeasureConfig::validated(),
        sc::CountermeasureConfig::infective()}) {
    const auto rel = f.run(cm);
    EXPECT_TRUE(rel.released);
    EXPECT_FALSE(rel.detected);
    EXPECT_FALSE(rel.infected);
    EXPECT_EQ(rel.x, ref.x);
  }
}

TEST(GuardedVictim, CoherenceCheckSuppressesGlitchedRelease) {
  VictimFixture f;
  hw::FaultSpec g;
  g.kind = hw::FaultKind::kSelectGlitch;
  g.slot = 4;
  // Undefended: the glitched run releases SOMETHING (correct or garbage —
  // the safe-error oracle).
  f.coproc.arm_fault(g);
  const auto bare = f.run(sc::CountermeasureConfig::none());
  EXPECT_TRUE(bare.released);
  EXPECT_FALSE(bare.detected);
  // Detection-only hardening: the missing SELSET cycle trips the
  // coherence check and nothing leaves the device.
  f.coproc.arm_fault(g);
  const auto guarded = f.run(sc::CountermeasureConfig::validated());
  EXPECT_TRUE(guarded.detected);
  EXPECT_FALSE(guarded.released);
}

TEST(GuardedVictim, InfectiveResponseReleasesKeyIndependentGarbage) {
  VictimFixture f;
  const Point ref =
      medsec::ecc::montgomery_ladder(f.c, f.k.mod(f.c.order()),
                                     f.c.base_point());
  hw::FaultSpec g;
  g.kind = hw::FaultKind::kSelectGlitch;
  g.slot = 4;
  f.coproc.arm_fault(g);
  const auto rel = f.run(sc::CountermeasureConfig::infective());
  EXPECT_TRUE(rel.detected);
  EXPECT_TRUE(rel.released);  // the suppress/release oracle is gone...
  EXPECT_TRUE(rel.infected);
  EXPECT_FALSE(rel.x == ref.x);  // ...and the value says nothing about k
}

// --- the attack engines ------------------------------------------------------

TEST(FaultAttacks, SafeErrorRecoversKeyFromUndefendedVictim) {
  const Curve& c = Curve::k163();
  const Scalar k = dense_key(c);
  const auto r =
      sc::safe_error_attack(c, sc::CountermeasureConfig::none(), k, 12, 2024);
  EXPECT_TRUE(r.key_recovered);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_EQ(r.shots, 12u);
  // RPC (the paper's shipped config) does not touch the select schedule.
  const auto rpc = sc::safe_error_attack(
      c, sc::CountermeasureConfig::rpc_only(), k, 12, 2024);
  EXPECT_TRUE(rpc.key_recovered);
}

TEST(FaultAttacks, SafeErrorDiesAgainstDetectors) {
  const Curve& c = Curve::k163();
  const Scalar k = dense_key(c);
  for (const auto& cm : {sc::CountermeasureConfig::validated(),
                         sc::CountermeasureConfig::infective()}) {
    const auto r = sc::safe_error_attack(c, cm, k, 12, 2024);
    EXPECT_FALSE(r.key_recovered) << cm.name();
    // The oracle is dead: no shot ever reads as absorbed, the attacker
    // is guessing coins.
    EXPECT_EQ(r.informative_shots, 0u) << cm.name();
    EXPECT_LT(r.accuracy, 1.0) << cm.name();
  }
}

TEST(FaultAttacks, InvalidPointRecoversKeyWithoutValidation) {
  const Curve& c = Curve::k163();
  const Scalar k = dense_key(c);
  const auto r = sc::invalid_point_attack(c, sc::CountermeasureConfig::none(),
                                          k, 12, 2024);
  EXPECT_TRUE(r.key_recovered);
  EXPECT_GT(r.informative_shots, 0u);
}

TEST(FaultAttacks, InvalidPointDiesAgainstValidationAndInfective) {
  const Curve& c = Curve::k163();
  const Scalar k = dense_key(c);
  for (const auto& cm : {sc::CountermeasureConfig::validated(),
                         sc::CountermeasureConfig::infective()}) {
    const auto r = sc::invalid_point_attack(c, cm, k, 12, 2024);
    EXPECT_FALSE(r.key_recovered) << cm.name();
    EXPECT_EQ(r.informative_shots, 0u) << cm.name();
  }
}

// --- the eval matrix's fault rows --------------------------------------------

TEST(EvalFaults, VerdictTableBareBreaksHardenedHolds) {
  const Curve& c = Curve::k163();
  const Scalar k = dense_key(c);
  sc::EvalConfig cfg;
  cfg.countermeasures = {
      sc::CountermeasureConfig::none(), sc::CountermeasureConfig::rpc_only(),
      sc::CountermeasureConfig::validated(),
      sc::CountermeasureConfig::infective()};
  cfg.attacks = {sc::EvalAttack::kFaultSafeError,
                 sc::EvalAttack::kFaultInvalidPoint};
  cfg.bits_to_attack = 12;
  cfg.seed = 2024;
  const auto m = sc::run_eval_matrix(c, k, cfg);
  ASSERT_EQ(m.cells.size(), 8u);

  const auto cell = [&](const std::string& attack,
                        const std::string& cm) -> const sc::EvalCell& {
    for (const auto& e : m.cells)
      if (e.attack == attack && e.countermeasure == cm) return e;
    ADD_FAILURE() << "missing cell " << attack << " x " << cm;
    return m.cells.front();
  };
  const std::string validated = sc::CountermeasureConfig::validated().name();
  const std::string infective = sc::CountermeasureConfig::infective().name();

  for (const char* atk : {"fault-safe-error", "fault-invalid-point"}) {
    // Bare and the paper's shipped rpc-only chip: the key falls.
    EXPECT_FALSE(cell(atk, "none").defense_holds) << atk;
    EXPECT_TRUE(cell(atk, "none").key_recovered) << atk;
    EXPECT_FALSE(cell(atk, "rpc").defense_holds) << atk;
    // The fault-hardened rows hold with a dead oracle.
    EXPECT_TRUE(cell(atk, validated).defense_holds) << atk;
    EXPECT_EQ(cell(atk, validated).informative_shots, 0u) << atk;
    EXPECT_TRUE(cell(atk, infective).defense_holds) << atk;
    EXPECT_EQ(cell(atk, infective).informative_shots, 0u) << atk;
  }
  EXPECT_DOUBLE_EQ(cell("fault-safe-error", "none").accuracy, 1.0);
}

TEST(EvalConfig, ValidateFailsLoudlyOnIncoherentGrids) {
  const sc::EvalConfig empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  sc::EvalConfig ok;
  ok.countermeasures = {sc::CountermeasureConfig::rpc_only()};
  ok.attacks = {sc::EvalAttack::kFaultSafeError};
  EXPECT_NO_THROW(ok.validate());

  auto bad_lane = ok;
  bad_lane.lane_backends = {"scalar", "not-a-backend"};
  EXPECT_THROW(bad_lane.validate(), std::invalid_argument);
  try {
    bad_lane.validate();
  } catch (const std::invalid_argument& e) {
    // The compiled-in list rides the message (the PR 7 backend contract).
    EXPECT_NE(std::string(e.what()).find("scalar, bitsliced, clmul"),
              std::string::npos);
  }

  auto headless = ok;
  sc::CountermeasureConfig infective_blind;
  infective_blind.infective_computation = true;  // no detector armed
  headless.countermeasures = {infective_blind};
  EXPECT_THROW(headless.validate(), std::invalid_argument);

  auto wide_blind = ok;
  wide_blind.countermeasures[0].scalar_blinding = true;
  wide_blind.countermeasures[0].scalar_blind_bits = 65;
  EXPECT_THROW(wide_blind.validate(), std::invalid_argument);

  auto no_dummies = ok;
  no_dummies.countermeasures[0].shuffle_schedule = true;
  no_dummies.countermeasures[0].dummy_iterations = 0;
  EXPECT_THROW(no_dummies.validate(), std::invalid_argument);

  auto no_traces = ok;
  no_traces.traces = 0;
  EXPECT_THROW(no_traces.validate(), std::invalid_argument);

  // run_eval_matrix validates before any campaign runs.
  EXPECT_THROW(
      sc::run_eval_matrix(Curve::k163(), Scalar{3}, sc::EvalConfig{}),
      std::invalid_argument);
}

// --- session recovery --------------------------------------------------------

core::CountermeasureConfig detecting_config() {
  core::CountermeasureConfig c;
  c.ladder.validate_points = true;
  c.ladder.coherence_check = true;
  c.record_cycles = false;
  return c;
}

TEST(SessionRecovery, TransientGlitchRetriesAndRecovers) {
  const Curve& c = Curve::k163();
  const Scalar k = dense_key(c);
  const Point ref = medsec::ecc::scalar_mult(c, k, c.base_point());
  const core::SecureEccProcessor proc(c, detecting_config(), 0x5E55);
  auto sess = proc.open_session(1);

  const auto clean = sess.point_mult(k, c.base_point());
  EXPECT_EQ(clean.result, ref);
  EXPECT_EQ(clean.faults_detected, 0u);
  EXPECT_EQ(clean.retries, 0u);

  hw::FaultSpec g;
  g.kind = hw::FaultKind::kSelectGlitch;
  g.slot = 9;
  sess.arm_fault(g);
  const auto out = sess.point_mult(k, c.base_point());
  // One detection, one recovery re-execution, correct release — and the
  // backoff shows up in the cycle/time ledger.
  EXPECT_EQ(out.result, ref);
  EXPECT_EQ(out.faults_detected, 1u);
  EXPECT_EQ(out.retries, 1u);
  EXPECT_GT(out.cycles, 2 * clean.cycles);
  sess.disarm_fault();
}

TEST(SessionRecovery, PersistentStuckAtExhaustsBudgetAndThrows) {
  const Curve& c = Curve::k163();
  const Scalar k = dense_key(c);
  auto cfg = detecting_config();
  cfg.fault_retry_budget = 2;
  const core::SecureEccProcessor proc(c, cfg, 0x5E55);
  auto sess = proc.open_session(2);

  hw::FaultSpec g;
  g.kind = hw::FaultKind::kStuckAt;
  g.reg = hw::Reg::kXP;
  g.bit = 7;
  g.stuck_value = !c.base_point().x.bit(7);
  sess.arm_fault(g);
  EXPECT_THROW(sess.point_mult(k, c.base_point()), std::logic_error);
  // Service (disarm) restores the session — registers were zeroized, the
  // blinds re-randomized, and the next run is clean.
  sess.disarm_fault();
  const auto out = sess.point_mult(k, c.base_point());
  EXPECT_EQ(out.result, medsec::ecc::scalar_mult(c, k, c.base_point()));
  EXPECT_EQ(out.faults_detected, 0u);
}

// --- TRNG health gate --------------------------------------------------------

TEST(TrngHealth, HealthySourcePassesAndSeedsTheDrbg) {
  rng::TrngModel::Params p;
  p.seed = 11;
  rng::HealthGatedTrng trng(p);
  std::vector<std::uint8_t> buf(64);
  EXPECT_TRUE(trng.harvest(buf));
  EXPECT_TRUE(trng.healthy());
  rng::HealthGatedTrng fresh(p);
  EXPECT_TRUE(rng::seed_drbg_from_trng(fresh).has_value());
}

TEST(TrngHealth, StuckAtTripsRepetitionCountAndDrbgRefuses) {
  for (const int stuck : {0, 1}) {
    rng::TrngModel::Params p;
    p.fault = rng::TrngFault::kStuckAt;
    p.stuck_value = stuck;
    rng::HealthGatedTrng trng(p);
    std::vector<std::uint8_t> buf(64);
    EXPECT_FALSE(trng.harvest(buf)) << stuck;
    EXPECT_FALSE(trng.healthy());
    rng::HealthGatedTrng fresh(p);
    EXPECT_FALSE(rng::seed_drbg_from_trng(fresh).has_value()) << stuck;
  }
}

TEST(TrngHealth, EntropyStarvationTripsTheGate) {
  rng::TrngModel::Params p;
  p.seed = 11;
  p.fault = rng::TrngFault::kStarved;
  rng::HealthGatedTrng trng(p);
  // Starvation = near-total serial correlation: runs longer than the
  // repetition-count cutoff appear almost immediately.
  std::vector<std::uint8_t> buf(256);
  EXPECT_FALSE(trng.harvest(buf));
}

TEST(TrngHealth, HardenedLadderRefusesBlindsFromFailedSource) {
  const Curve& c = Curve::k163();
  // Healthy pipeline: blinds flow and the hardened plan builds.
  rng::TrngModel::Params good;
  good.seed = 5;
  rng::GatedTrngSource healthy(good);
  ASSERT_TRUE(healthy.healthy());
  std::optional<sc::BaseBlindingPair> pair;
  Scalar pair_key{};
  const auto plan = sc::plan_hardened_coproc_mult(
      c, sc::CountermeasureConfig::full(), Scalar{12345}, c.base_point(),
      healthy, pair, pair_key);
  EXPECT_FALSE(plan.key_bits.empty());

  // Stuck source: the gate latches at seeding and every blind draw —
  // hence any hardened plan — is refused, not degraded.
  rng::TrngModel::Params bad = good;
  bad.fault = rng::TrngFault::kStuckAt;
  rng::GatedTrngSource gated(bad);
  EXPECT_FALSE(gated.healthy());
  std::optional<sc::BaseBlindingPair> pair2;
  Scalar pair_key2{};
  EXPECT_THROW(sc::plan_hardened_coproc_mult(
                   c, sc::CountermeasureConfig::full(), Scalar{12345},
                   c.base_point(), gated, pair2, pair_key2),
               std::runtime_error);
}

// --- fleet quarantine under concurrency --------------------------------------

TEST(FleetQuarantine, ConcurrentTelemetryQuarantinesFaultingDevice) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(9);
  engine::FleetConfig cfg;
  cfg.worker_threads = 4;
  cfg.verify_batch = 1;
  cfg.device_fault_threshold = 3;

  const auto kp_bad = proto::schnorr_keygen(c, rng);
  const auto kp_good = proto::schnorr_keygen(c, rng);
  engine::FleetServer server(c, cfg, [](std::uint64_t, const proto::Message&) {});
  const std::uint32_t bad = server.enroll(kp_bad.X);
  const std::uint32_t good = server.enroll(kp_good.X);

  // Device `bad` reports unrecovered faults from many front-end threads
  // at once (each one also opens a fresh session, TSan's favorite
  // interleaving); device `good` reports recoveries only.
  std::vector<std::thread> threads;
  std::atomic<int> opened_after_quarantine{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t sid =
            server.open_schnorr_session(t % 2 == 0 ? bad : good);
        if (sid != 0)
          server.report_fault_telemetry(sid, /*detected=*/1, /*retries=*/1,
                                        /*unrecovered=*/t % 2 == 0);
        else
          ++opened_after_quarantine;
      }
    });
  }
  for (auto& th : threads) th.join();
  server.drain();

  EXPECT_TRUE(server.device_quarantined(bad));
  EXPECT_FALSE(server.device_quarantined(good));
  EXPECT_EQ(server.open_schnorr_session(bad), 0u);
  EXPECT_NE(server.open_schnorr_session(good), 0u);
  const auto st = server.stats();
  EXPECT_EQ(st.devices_quarantined, 1u);
  EXPECT_GE(st.faults_unrecovered, cfg.device_fault_threshold);
  // Refusals only start once the threshold is crossed.
  EXPECT_EQ(st.sessions_refused_quarantine,
            static_cast<std::size_t>(opened_after_quarantine) + 1);
}

// --- the end-to-end fault drill ----------------------------------------------

engine::FaultDrillConfig drill_config() {
  engine::FaultDrillConfig cfg;
  cfg.sessions = 256;
  cfg.devices = 16;
  cfg.fault_rate = 0.05;
  cfg.seed = 0xFA017D21;
  return cfg;
}

TEST(FaultDrill, NothingFaultyEverLeavesADevice) {
  const auto r = engine::run_fault_drill(Curve::k163(), drill_config());
  EXPECT_EQ(r.sessions, 256u);
  // The headline: zero faulty releases, under real injected faults.
  EXPECT_EQ(r.faulty_released, 0u);
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.recovered, 0u);            // transient glitches recover
  EXPECT_GT(r.unrecovered, 0u);          // stuck-ats exhaust the budget
  EXPECT_GT(r.devices_quarantined, 0u);  // ...and quarantine their device
  EXPECT_GT(r.refused, 0u);              // which then refuses sessions
  EXPECT_EQ(r.clean + r.recovered + r.unrecovered + r.refused, r.sessions);
  // Every released result passed the referee, so every handshake ran on a
  // correct point product and accepted.
  EXPECT_EQ(r.protocol_accepted, r.clean + r.recovered);
  EXPECT_EQ(r.protocol_failed, 0u);
}

TEST(FaultDrill, ThousandSessionCampaignReleasesNothingFaulty) {
  // The acceptance campaign: >=1k sessions across the full fleet at the
  // deployment fault rate, default config all the way down.
  const engine::FaultDrillConfig cfg;
  const auto r = engine::run_fault_drill(Curve::k163(), cfg);
  EXPECT_GE(r.sessions, 1024u);
  EXPECT_EQ(r.faulty_released, 0u);
  EXPECT_EQ(r.protocol_failed, 0u);
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.recovered, 0u);
  EXPECT_GT(r.devices_quarantined, 0u);
  EXPECT_EQ(r.clean + r.recovered + r.unrecovered + r.refused, r.sessions);
  EXPECT_EQ(r.digest, 0x599960488dbd75d0ull)
      << std::hex << "digest 0x" << r.digest;
}

TEST(FaultDrill, DigestIsThreadCountInvariantAndGolden) {
  auto cfg = drill_config();
  const auto base = engine::run_fault_drill(Curve::k163(), cfg);
  cfg.threads = 1;
  const auto serial = engine::run_fault_drill(Curve::k163(), cfg);
  cfg.threads = 7;
  const auto wide = engine::run_fault_drill(Curve::k163(), cfg);
  EXPECT_EQ(base.digest, serial.digest);
  EXPECT_EQ(base.digest, wide.digest);
  EXPECT_EQ(base.faulty_released, 0u);
  // Golden pin: the full outcome stream (fault verdicts, released points,
  // protocol verdicts) is a format commitment — an engine change that
  // shifts any session's outcome must deliberately re-pin this.
  EXPECT_EQ(base.digest, kGoldenDrillDigest)
      << std::hex << "digest 0x" << base.digest;
}

}  // namespace
