// Tests for the extension features: w-NAF scalar multiplication, the
// Frobenius endomorphism (Koblitz structure), EC-Schnorr signatures,
// ECIES hybrid encryption, and fault-injection on the ladder outputs.
#include <gtest/gtest.h>

#include "ciphers/aes128.h"
#include "ciphers/present.h"
#include "ecc/curve.h"
#include "ecc/koblitz.h"
#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"
#include "protocol/ecies.h"
#include "protocol/signature.h"
#include "rng/xoshiro.h"

namespace {

using medsec::ecc::Curve;
using medsec::ecc::Fe;
using medsec::ecc::MultAlgorithm;
using medsec::ecc::MultOptions;
using medsec::ecc::MultStats;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;
namespace proto = medsec::protocol;

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

// --- w-NAF ---------------------------------------------------------------------

TEST(Wnaf, DigitsReconstructTheScalar) {
  Xoshiro256 rng(1);
  const Curve& c = Curve::k163();
  for (unsigned width = 2; width <= 6; ++width) {
    const Scalar k = rng.uniform_nonzero(c.order());
    const auto digits = medsec::ecc::wnaf_digits(k, width);
    // Reconstruct sum(d_i * 2^i) in the scalar ring.
    const auto& ring = c.scalar_ring();
    Scalar acc;
    Scalar pow2{1};
    for (const int d : digits) {
      if (d > 0)
        acc = ring.add(acc, ring.mul(pow2, Scalar{static_cast<std::uint64_t>(d)}));
      else if (d < 0)
        acc = ring.sub(acc, ring.mul(pow2, Scalar{static_cast<std::uint64_t>(-d)}));
      pow2 = ring.add(pow2, pow2);
    }
    EXPECT_EQ(acc, k.mod(c.order())) << "width " << width;
  }
}

TEST(Wnaf, NonAdjacencyAndDigitRange) {
  Xoshiro256 rng(2);
  const Curve& c = Curve::k163();
  for (int trial = 0; trial < 5; ++trial) {
    const auto digits =
        medsec::ecc::wnaf_digits(rng.uniform_nonzero(c.order()), 4);
    int last_nonzero = -100;
    for (int i = 0; i < static_cast<int>(digits.size()); ++i) {
      const int d = digits[static_cast<std::size_t>(i)];
      if (d == 0) continue;
      EXPECT_EQ(d % 2 != 0, true) << "digit must be odd";
      EXPECT_LT(std::abs(d), 8);  // < 2^(w-1)
      EXPECT_GE(i - last_nonzero, 4) << "w consecutive positions";
      last_nonzero = i;
    }
  }
}

TEST(Wnaf, MultiplicationAgreesWithLadder) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(3);
  for (int i = 0; i < 8; ++i) {
    const Scalar k = rng.uniform_nonzero(c.order());
    MultOptions w;
    w.algorithm = MultAlgorithm::kWnaf;
    EXPECT_EQ(medsec::ecc::scalar_mult(c, k, c.base_point(), w),
              medsec::ecc::montgomery_ladder(c, k, c.base_point()));
  }
}

TEST(Wnaf, FewerAddsThanDoubleAndAdd) {
  // The classic ~m/5 vs ~m/2 addition count — and the reason neither is
  // used on the device: the *positions* of the adds remain key-dependent.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(4);
  const Scalar k = rng.uniform_nonzero(c.order());
  MultStats da_stats, w_stats;
  MultOptions da, w;
  da.algorithm = MultAlgorithm::kDoubleAndAdd;
  da.stats = &da_stats;
  w.algorithm = MultAlgorithm::kWnaf;
  w.stats = &w_stats;
  medsec::ecc::scalar_mult(c, k, c.base_point(), da);
  medsec::ecc::scalar_mult(c, k, c.base_point(), w);
  EXPECT_LT(w_stats.point_adds, da_stats.point_adds / 2 + 10);
  // Still SPA-leaky: the op pattern is not uniform.
  bool has_zero = false, has_one = false;
  for (const auto b : w_stats.op_pattern) {
    has_zero = has_zero || b == 0;
    has_one = has_one || b == 1;
  }
  EXPECT_TRUE(has_zero && has_one);
}

TEST(Wnaf, RejectsBadWidth) {
  EXPECT_THROW(medsec::ecc::wnaf_digits(Scalar{5}, 1),
               std::invalid_argument);
  EXPECT_THROW(medsec::ecc::wnaf_digits(Scalar{5}, 9),
               std::invalid_argument);
  EXPECT_TRUE(medsec::ecc::wnaf_digits(Scalar{}, 4).empty());
}

// --- tau-adic NAF (Koblitz) -----------------------------------------------------

TEST(TauNaf, DigitsAreSignedBitsAndNonAdjacent) {
  Xoshiro256 rng(20);
  const Curve& c = Curve::k163();
  for (int trial = 0; trial < 5; ++trial) {
    const auto digits =
        medsec::ecc::tau_naf_digits(rng.uniform_nonzero(c.order()), 1);
    EXPECT_LE(digits.size(), 340u);  // ~2m + small slack, unreduced
    for (std::size_t i = 0; i + 1 < digits.size(); ++i) {
      EXPECT_LE(std::abs(digits[i]), 1);
      EXPECT_FALSE(digits[i] != 0 && digits[i + 1] != 0)
          << "adjacent nonzero digits at " << i;
    }
  }
  EXPECT_THROW(medsec::ecc::tau_naf_digits(Scalar{5}, 0),
               std::invalid_argument);
  EXPECT_TRUE(medsec::ecc::tau_naf_digits(Scalar{}, 1).empty());
}

TEST(TauNaf, MultiplicationAgreesWithLadder) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(21);
  for (int i = 0; i < 8; ++i) {
    const Scalar k = rng.uniform_nonzero(c.order());
    EXPECT_EQ(medsec::ecc::tau_naf_mult(c, k, c.base_point()),
              medsec::ecc::montgomery_ladder(c, k, c.base_point()));
  }
  for (std::uint64_t k = 0; k <= 16; ++k)
    EXPECT_EQ(medsec::ecc::tau_naf_mult(c, Scalar{k}, c.base_point()),
              c.scalar_mult_reference(Scalar{k}, c.base_point()))
        << "k=" << k;
}

TEST(TauNaf, UsesNoPointDoublings) {
  // The whole point of the Koblitz structure: doublings are replaced by
  // (nearly free) Frobenius maps.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(22);
  MultStats st;
  medsec::ecc::tau_naf_mult(c, rng.uniform_nonzero(c.order()),
                            c.base_point(), &st);
  EXPECT_EQ(st.point_doubles, 0u);
  // Width-4 windowed TNAF: nonzero digit density ~1/(w+1) = 1/5 of the
  // ~2*163-digit expansion (the classic w=2 TNAF would sit near digits/3).
  EXPECT_GT(st.point_adds, 45u);
  EXPECT_LT(st.point_adds, 90u);
}

TEST(TauNaf, DispatchThroughScalarMult) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(23);
  const Scalar k = rng.uniform_nonzero(c.order());
  MultOptions opt;
  opt.algorithm = MultAlgorithm::kTauNaf;
  EXPECT_EQ(medsec::ecc::scalar_mult(c, k, c.base_point(), opt),
            medsec::ecc::montgomery_ladder(c, k, c.base_point()));
}

// --- Frobenius -------------------------------------------------------------------

TEST(Frobenius, MapsCurvePointsToCurvePoints) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(5);
  Point p = c.base_point();
  for (int i = 0; i < 5; ++i) {
    const Point fp = c.frobenius(p);
    EXPECT_TRUE(c.is_on_curve(fp));
    EXPECT_FALSE(fp == p);
    p = c.dbl(p);
  }
  EXPECT_TRUE(c.frobenius(Point::at_infinity()).infinity);
}

TEST(Frobenius, SatisfiesCharacteristicEquation) {
  // phi^2(P) + 2P == mu * phi(P) with mu = +1 on K-163 (a = 1).
  const Curve& c = Curve::k163();
  ASSERT_EQ(c.frobenius_trace_mu(), 1);
  Xoshiro256 rng(6);
  for (int i = 0; i < 5; ++i) {
    const Scalar k = rng.uniform_nonzero(c.order());
    const Point p = c.scalar_mult_reference(k, c.base_point());
    const Point lhs = c.add(c.frobenius(c.frobenius(p)), c.dbl(p));
    const Point rhs = c.frobenius(p);  // mu = 1
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Frobenius, CommutesWithScalarMultiplication) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(7);
  const Scalar k = rng.uniform_nonzero(c.order());
  const Point p = c.base_point();
  EXPECT_EQ(c.frobenius(c.scalar_mult_reference(k, p)),
            c.scalar_mult_reference(k, c.frobenius(p)));
}

// --- EC-Schnorr signatures ----------------------------------------------------------

struct SignatureFixture : public ::testing::Test {
  const Curve& c = Curve::k163();
  Xoshiro256 rng{8};
  proto::SignatureKeyPair kp = proto::signature_keygen(c, rng);
};

TEST_F(SignatureFixture, SignVerifyRoundTrip) {
  for (const char* msg : {"", "HR=072", "a longer telemetry record with "
                              "several blocks of content in it........"}) {
    proto::EnergyLedger ledger;
    const auto sig = proto::ec_schnorr_sign(c, kp, bytes(msg), rng, &ledger);
    EXPECT_TRUE(proto::ec_schnorr_verify(c, kp.X, bytes(msg), sig)) << msg;
    EXPECT_EQ(ledger.ecpm, 1u);
    EXPECT_EQ(ledger.modmul, 1u);
  }
}

TEST_F(SignatureFixture, RejectsTampering) {
  const auto msg = bytes("dose=1.5u");
  const auto sig = proto::ec_schnorr_sign(c, kp, msg, rng);
  // Different message.
  EXPECT_FALSE(proto::ec_schnorr_verify(c, kp.X, bytes("dose=9.5u"), sig));
  // Corrupted components.
  auto bad = sig;
  bad.s = c.scalar_ring().add(bad.s, Scalar{1});
  EXPECT_FALSE(proto::ec_schnorr_verify(c, kp.X, msg, bad));
  bad = sig;
  bad.e = c.scalar_ring().add(bad.e, Scalar{1});
  EXPECT_FALSE(proto::ec_schnorr_verify(c, kp.X, msg, bad));
  // Wrong key.
  const auto other = proto::signature_keygen(c, rng);
  EXPECT_FALSE(proto::ec_schnorr_verify(c, other.X, msg, sig));
  // Degenerate values.
  EXPECT_FALSE(proto::ec_schnorr_verify(c, kp.X, msg, {Scalar{}, sig.s}));
  EXPECT_FALSE(proto::ec_schnorr_verify(c, kp.X, msg, {sig.e, c.order()}));
}

TEST_F(SignatureFixture, SignaturesAreRandomized) {
  const auto msg = bytes("same message");
  const auto s1 = proto::ec_schnorr_sign(c, kp, msg, rng);
  const auto s2 = proto::ec_schnorr_sign(c, kp, msg, rng);
  EXPECT_FALSE(s1.s == s2.s);  // fresh r each time
  EXPECT_TRUE(proto::ec_schnorr_verify(c, kp.X, msg, s1));
  EXPECT_TRUE(proto::ec_schnorr_verify(c, kp.X, msg, s2));
}

// --- ECIES ---------------------------------------------------------------------------

struct EciesFixture : public ::testing::Test {
  const Curve& c = Curve::k163();
  Xoshiro256 rng{9};
  proto::EciesKeyPair kp = proto::ecies_keygen(c, rng);
  proto::CipherFactory aes = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Aes128(key));
  };
};

TEST_F(EciesFixture, EncryptDecryptRoundTrip) {
  for (std::size_t len : {0u, 1u, 16u, 33u, 200u}) {
    std::vector<std::uint8_t> pt(len);
    rng.fill(pt);
    proto::EnergyLedger ledger;
    const auto ct = proto::ecies_encrypt(c, kp.Y, pt, aes, 16, rng, &ledger);
    EXPECT_EQ(ledger.ecpm, 2u) << "ephemeral + shared point mult";
    const auto back = proto::ecies_decrypt(c, kp.y, ct, aes, 16);
    ASSERT_TRUE(back.has_value()) << len;
    EXPECT_EQ(*back, pt);
  }
}

TEST_F(EciesFixture, RejectsTamperingAndWrongKey) {
  const auto pt = bytes("glucose=5.4mmol/L");
  auto ct = proto::ecies_encrypt(c, kp.Y, pt, aes, 16, rng);
  auto bad = ct;
  bad.body[0] ^= 1;
  EXPECT_FALSE(proto::ecies_decrypt(c, kp.y, bad, aes, 16));
  bad = ct;
  bad.tag[0] ^= 1;
  EXPECT_FALSE(proto::ecies_decrypt(c, kp.y, bad, aes, 16));
  bad = ct;
  bad.ephemeral = c.dbl(bad.ephemeral);  // different valid point
  EXPECT_FALSE(proto::ecies_decrypt(c, kp.y, bad, aes, 16));
  const auto other = proto::ecies_keygen(c, rng);
  EXPECT_FALSE(proto::ecies_decrypt(c, other.y, ct, aes, 16));
}

TEST_F(EciesFixture, RejectsInvalidEphemeralPoint) {
  const auto pt = bytes("x");
  auto ct = proto::ecies_encrypt(c, kp.Y, pt, aes, 16, rng);
  // Small-subgroup / off-curve injection at the trust boundary.
  ct.ephemeral = Point::affine(Fe::zero(), Fe::sqrt(c.b()));
  EXPECT_FALSE(proto::ecies_decrypt(c, kp.y, ct, aes, 16));
  ct.ephemeral = Point::at_infinity();
  EXPECT_FALSE(proto::ecies_decrypt(c, kp.y, ct, aes, 16));
}

TEST_F(EciesFixture, WorksWithLightweightCipher) {
  proto::CipherFactory present = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Present(key));
  };
  const auto pt = bytes("spo2=97%");
  const auto ct = proto::ecies_encrypt(c, kp.Y, pt, present, 10, rng);
  const auto back = proto::ecies_decrypt(c, kp.y, ct, present, 10);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pt);
}

TEST_F(EciesFixture, EncryptToInvalidKeyThrows) {
  EXPECT_THROW(
      proto::ecies_encrypt(c, Point::at_infinity(), bytes("x"), aes, 16, rng),
      std::invalid_argument);
}

// --- fault injection on the ladder outputs -----------------------------------------

TEST(FaultInjection, CorruptedProjectiveOutputTripsTheCanary) {
  // The paper's fault-attack practice: validate before releasing a
  // result. recover_from_ladder re-checks the curve equation, so a fault
  // anywhere in the ladder state is caught instead of leaking a point on
  // a weaker curve (Biehl-Meyer-Mueller style).
  const Curve& c = Curve::k163();
  Xoshiro256 rng(10);
  const Scalar k = rng.uniform_nonzero(c.order());
  medsec::ecc::LadderState s =
      medsec::ecc::ladder_initial_state(c.b(), c.base_point().x);
  const Scalar padded = medsec::ecc::constant_length_scalar(c, k);
  for (std::size_t i = padded.bit_length() - 1; i-- > 0;)
    medsec::ecc::ladder_iteration(c.b(), c.base_point().x, s,
                                  padded.bit(i) ? 1 : 0);

  // Unfaulted state recovers fine.
  EXPECT_NO_THROW(medsec::ecc::recover_from_ladder(c, c.base_point(), s.x1,
                                                   s.z1, s.x2, s.z2));
  // Single-bit faults in each register must be detected.
  for (int reg = 0; reg < 4; ++reg) {
    Fe x1 = s.x1, z1 = s.z1, x2 = s.x2, z2 = s.z2;
    const Fe flip{1ull << 17};
    (reg == 0 ? x1 : reg == 1 ? z1 : reg == 2 ? x2 : z2) += flip;
    EXPECT_THROW(
        medsec::ecc::recover_from_ladder(c, c.base_point(), x1, z1, x2, z2),
        std::logic_error)
        << "fault in register " << reg << " escaped the canary";
  }
}

}  // namespace
