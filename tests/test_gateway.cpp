// Tests for the resilience layer: framed transport + CRC, the seeded
// LossyLink fault schedule, ARQ delivery, the GatewayServer's degradation
// policies (shedding, eviction, quarantine), session snapshot/restore
// failover, the seeded chaos campaign's determinism contract, and the
// FleetServer's bounded drain.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "ciphers/aes128.h"
#include "core/event_queue.h"
#include "ecc/curve.h"
#include "engine/delivery.h"
#include "engine/fleet_server.h"
#include "engine/gateway.h"
#include "engine/transport.h"
#include "protocol/ecies.h"
#include "protocol/mutual_auth.h"
#include "protocol/peeters_hermans.h"
#include "protocol/schnorr.h"
#include "protocol/session.h"
#include "protocol/snapshot.h"
#include "protocol/wire.h"
#include "rng/xoshiro.h"

namespace {

using medsec::ecc::Curve;
using medsec::rng::Xoshiro256;
namespace core = medsec::core;
namespace proto = medsec::protocol;
namespace engine = medsec::engine;

using engine::decode_frame;
using engine::encode_frame;
using engine::Frame;
using engine::FrameType;

// --- shared fixtures ---------------------------------------------------------

proto::CipherFactory aes_factory() {
  return [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Aes128(key));
  };
}

std::uint64_t fnv1a_bytes(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// A machine that throws out of on_message — the poison the quarantine
/// policies exist for.
class ThrowingMachine final : public proto::SessionMachine {
 public:
  proto::StepResult on_message(const proto::Message&) override {
    throw std::runtime_error("poison");
  }
};

/// A machine that stalls its worker — drives the bounded-drain straggler
/// report.
class SlowMachine final : public proto::SessionMachine {
 public:
  proto::StepResult on_message(const proto::Message&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return step(proto::StepResult::wait());
  }
};

// --- event queue -------------------------------------------------------------

TEST(EventQueue, SameCycleFiresInScheduleOrder) {
  core::EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(10, [&] { order.push_back(2); });
  q.schedule(5, [&] { order.push_back(0); });
  q.schedule(10, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, CancelledEventNeverFires) {
  core::EventQueue q;
  bool fired = false;
  const core::EventId id = q.schedule(7, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel is a safe no-op
  q.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.pending(), 0u);
}

// --- framed transport --------------------------------------------------------

TEST(Transport, Crc32KnownVector) {
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(engine::crc32(msg), 0xCBF43926u);
}

TEST(Transport, FrameRoundtripAllTypes) {
  for (const FrameType type :
       {FrameType::kData, FrameType::kAck, FrameType::kReject}) {
    Frame f;
    f.type = type;
    f.session = 0x0123456789ABCDEFULL;
    f.seq = 42;
    f.label = engine::intern_label("challenge");
    f.payload = {0xDE, 0xAD, 0xBE, 0xEF};
    const auto bytes = encode_frame(f);
    const auto back = decode_frame(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, type);
    EXPECT_EQ(back->session, f.session);
    EXPECT_EQ(back->seq, f.seq);
    EXPECT_STREQ(back->label, "challenge");
    EXPECT_EQ(back->payload, f.payload);
  }
}

TEST(Transport, DecodeRejectsEveryTruncation) {
  Frame f;
  f.session = 7;
  f.seq = 3;
  f.label = "m";
  f.payload = std::vector<std::uint8_t>(37, 0xA5);
  const auto bytes = encode_frame(f);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        decode_frame(std::span(bytes.data(), len)).has_value())
        << "truncation to " << len << " bytes decoded";
  }
}

TEST(Transport, DecodeRejectsEveryBitFlip) {
  Frame f;
  f.session = 9;
  f.label = "resp";
  f.payload = {1, 2, 3};
  const auto bytes = encode_frame(f);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto mangled = bytes;
      mangled[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(decode_frame(mangled).has_value())
          << "flip of byte " << i << " bit " << bit << " decoded";
    }
  }
}

TEST(Transport, DecodeRejectsTrailingBytes) {
  Frame f;
  f.payload = {5};
  auto bytes = encode_frame(f);
  bytes.push_back(0x00);
  EXPECT_FALSE(decode_frame(bytes).has_value());
}

TEST(Transport, InternLabelIsStable) {
  const char* a = engine::intern_label("gateway-test-label");
  const char* b = engine::intern_label(std::string("gateway-test-") +
                                       std::string("label"));
  EXPECT_EQ(a, b);  // one process-lifetime address per distinct label
  EXPECT_STREQ(a, "gateway-test-label");
}

TEST(Transport, LossyLinkFaultScheduleIsSeedReproducible) {
  engine::FaultProfile faults;
  faults.drop = 0.2;
  faults.corrupt = 0.1;
  faults.duplicate = 0.1;
  faults.reorder = 0.15;

  const auto run = [&](std::uint64_t seed) {
    core::EventQueue q;
    engine::LossyLink link(q, seed, faults, faults);
    std::vector<std::vector<std::uint8_t>> received;
    link.set_receiver(engine::LossyLink::kUp,
                      [&](std::vector<std::uint8_t> b) {
                        received.push_back(std::move(b));
                      });
    for (std::uint8_t n = 0; n < 50; ++n)
      link.send(engine::LossyLink::kUp, {n, 0x55, n});
    q.run_all();
    return std::pair(received, link.stats(engine::LossyLink::kUp));
  };

  const auto [recv_a, stats_a] = run(0xFEED);
  const auto [recv_b, stats_b] = run(0xFEED);
  const auto [recv_c, stats_c] = run(0xFEED + 1);
  EXPECT_EQ(recv_a, recv_b);  // same seed: identical delivery schedule
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  EXPECT_EQ(stats_a.corrupted, stats_b.corrupted);
  EXPECT_EQ(stats_a.duplicated, stats_b.duplicated);
  EXPECT_EQ(stats_a.reordered, stats_b.reordered);
  EXPECT_GT(stats_a.dropped, 0u);
  EXPECT_NE(recv_a, recv_c);  // and a different seed genuinely differs
}

// --- reliable delivery -------------------------------------------------------

/// Wire two endpoints through one LossyLink; collect what each surfaces.
struct EndpointPair {
  core::EventQueue q;
  engine::LossyLink link;
  engine::ReliableEndpoint a;  // sends kUp
  engine::ReliableEndpoint b;  // sends kDown
  std::vector<Frame> a_got, b_got;
  bool a_failed = false, b_failed = false;

  EndpointPair(std::uint64_t seed, const engine::FaultProfile& faults,
               const engine::DeliveryConfig& cfg = {})
      : link(q, seed, faults, faults),
        a(q, 1, seed ^ 1, cfg),
        b(q, 1, seed ^ 2, cfg) {
    a.set_frame_sink([this](std::vector<std::uint8_t> raw) {
      link.send(engine::LossyLink::kUp, std::move(raw));
    });
    b.set_frame_sink([this](std::vector<std::uint8_t> raw) {
      link.send(engine::LossyLink::kDown, std::move(raw));
    });
    link.set_receiver(engine::LossyLink::kUp,
                      [this](std::vector<std::uint8_t> raw) {
                        b.on_bytes(std::move(raw));
                      });
    link.set_receiver(engine::LossyLink::kDown,
                      [this](std::vector<std::uint8_t> raw) {
                        a.on_bytes(std::move(raw));
                      });
    a.set_message_sink([this](const Frame& f) { a_got.push_back(f); });
    b.set_message_sink([this](const Frame& f) { b_got.push_back(f); });
    a.set_failure_sink([this] { a_failed = true; });
    b.set_failure_sink([this] { b_failed = true; });
  }
};

TEST(Delivery, ExactlyOnceInOrderOverFaultlessLink) {
  EndpointPair p(0x11, {});
  for (std::uint8_t n = 0; n < 10; ++n)
    p.a.send_message("msg", {n});
  p.q.run_all();
  ASSERT_EQ(p.b_got.size(), 10u);
  for (std::uint8_t n = 0; n < 10; ++n)
    EXPECT_EQ(p.b_got[n].payload, std::vector<std::uint8_t>{n});
  EXPECT_TRUE(p.a.idle());
  EXPECT_EQ(p.b.stats().delivered, 10u);
  EXPECT_EQ(p.b.stats().decode_failures, 0u);
}

TEST(Delivery, LossAndCorruptionRepairedByRetransmission) {
  engine::FaultProfile faults;
  faults.drop = 0.25;
  faults.corrupt = 0.1;
  faults.duplicate = 0.05;
  faults.reorder = 0.1;
  EndpointPair p(0x22, faults);
  for (std::uint8_t n = 0; n < 16; ++n) {
    p.a.send_message("up", {n, 0xAA});
    p.b.send_message("down", {n, 0xBB});
  }
  p.q.run_all();
  ASSERT_EQ(p.b_got.size(), 16u);
  ASSERT_EQ(p.a_got.size(), 16u);
  for (std::uint8_t n = 0; n < 16; ++n) {
    EXPECT_EQ(p.b_got[n].payload, (std::vector<std::uint8_t>{n, 0xAA}));
    EXPECT_EQ(p.a_got[n].payload, (std::vector<std::uint8_t>{n, 0xBB}));
  }
  EXPECT_FALSE(p.a_failed);
  EXPECT_FALSE(p.b_failed);
  EXPECT_GT(p.a.stats().retransmits + p.b.stats().retransmits, 0u);
  // Every corrupted delivery died at the CRC, none reached a message sink.
  const auto& up = p.link.stats(engine::LossyLink::kUp);
  const auto& down = p.link.stats(engine::LossyLink::kDown);
  EXPECT_EQ(up.corrupted_delivered + down.corrupted_delivered,
            p.a.stats().decode_failures + p.b.stats().decode_failures);
}

TEST(Delivery, RetryExhaustionDeclaresFailure) {
  core::EventQueue q;
  engine::DeliveryConfig cfg;
  cfg.max_retries = 3;
  engine::ReliableEndpoint ep(q, 1, 0x33, cfg);
  ep.set_frame_sink([](std::vector<std::uint8_t>) {});  // black hole
  bool failed = false;
  ep.set_failure_sink([&] { failed = true; });
  ep.send_message("void", {1});
  q.run_all();
  EXPECT_TRUE(failed);
  EXPECT_TRUE(ep.failed());
  EXPECT_EQ(ep.stats().retransmits, 3u);
}

TEST(Delivery, RejectFrameFailsThePeer) {
  EndpointPair p(0x44, {});
  p.a.send_reject();
  p.q.run_all();
  EXPECT_TRUE(p.b_failed);
  EXPECT_FALSE(p.a_failed);
}

// --- gateway: one session, by hand -------------------------------------------

/// One device ↔ gateway session with a recording device half: the raw
/// ReliableEndpoint wiring run_shard uses, but with every delivered
/// downlink message captured for transcript comparison.
struct SessionHarness {
  core::EventQueue q;
  engine::LossyLink link;
  engine::GatewayServer gw;
  engine::ReliableEndpoint dev;
  proto::SessionMachine* dev_machine = nullptr;
  std::vector<proto::Message> dev_got;  ///< downlink messages, in order
  bool dev_failed = false;

  SessionHarness(std::uint64_t seed, const engine::FaultProfile& faults,
                 const engine::GatewayConfig& gcfg = {})
      : link(q, seed, faults, faults),
        gw(q, seed ^ 0x6A7E, gcfg),
        dev(q, 1, seed ^ 0xDE71CE) {
    dev.set_frame_sink([this](std::vector<std::uint8_t> raw) {
      link.send(engine::LossyLink::kUp, std::move(raw));
    });
    link.set_receiver(engine::LossyLink::kUp,
                      [this](std::vector<std::uint8_t> raw) {
                        gw.on_uplink(1, std::move(raw));
                      });
    link.set_receiver(engine::LossyLink::kDown,
                      [this](std::vector<std::uint8_t> raw) {
                        dev.on_bytes(std::move(raw));
                      });
    dev.set_message_sink([this](const Frame& f) {
      dev_got.push_back(proto::Message{f.label, f.payload});
      if (dev_machine &&
          dev_machine->state() == proto::SessionState::kAwait) {
        auto r = dev_machine->on_message(dev_got.back());
        for (auto& out : r.out)
          dev.send_message(out.label, std::move(out.payload));
      }
    });
    dev.set_failure_sink([this] { dev_failed = true; });
  }

  engine::GatewayServer::Downlink downlink() {
    return [this](std::vector<std::uint8_t> raw) {
      link.send(engine::LossyLink::kDown, std::move(raw));
    };
  }

  void start(proto::SessionMachine& m) {
    dev_machine = &m;
    auto r = m.start();
    for (auto& out : r.out)
      dev.send_message(out.label, std::move(out.payload));
  }
};

TEST(Gateway, FaultlessSessionMatchesDriveSession) {
  const Curve& c = Curve::k163();
  // Reference: the same seeded machines pumped directly.
  Xoshiro256 kr(0x51);
  const auto kp = proto::schnorr_keygen(c, kr);
  Xoshiro256 dev_rng_ref(0x52), srv_rng_ref(0x53);
  proto::SchnorrProver prover_ref(c, kp, dev_rng_ref);
  proto::SchnorrVerifier verifier_ref(c, kp.X, srv_rng_ref);
  proto::Transcript ref;
  ASSERT_TRUE(proto::drive_session(prover_ref, verifier_ref, ref));
  ASSERT_TRUE(verifier_ref.accepted());

  // Same machines, same seeds, but over the framed transport through the
  // gateway. The delivery layer steps each machine exactly once per unique
  // message, so the transcript must be identical.
  Xoshiro256 dev_rng(0x52), srv_rng(0x54);
  auto srv_rng_owned = std::make_unique<Xoshiro256>(0x53);
  proto::SchnorrProver prover(c, kp, dev_rng);
  SessionHarness h(0x60, {});
  auto verifier =
      std::make_unique<proto::SchnorrVerifier>(c, kp.X, *srv_rng_owned);
  auto* verifier_raw = verifier.get();
  ASSERT_TRUE(h.gw.open_session(
      1, std::move(verifier), h.downlink(),
      [](const proto::SessionMachine& m) {
        return static_cast<const proto::SchnorrVerifier&>(m).accepted();
      },
      std::move(srv_rng_owned)));
  h.start(prover);
  h.q.run_all();

  EXPECT_EQ(h.gw.status(1), engine::GatewaySessionStatus::kCompleted);
  EXPECT_TRUE(h.gw.accepted(1));
  EXPECT_TRUE(verifier_raw->accepted());
  EXPECT_EQ(prover.state(), proto::SessionState::kDone);
  // Downlink messages ≡ the reference reader→tag transcript, bit for bit.
  ASSERT_EQ(h.dev_got.size(), ref.reader_to_tag.size());
  for (std::size_t i = 0; i < h.dev_got.size(); ++i) {
    EXPECT_STREQ(h.dev_got[i].label, ref.reader_to_tag[i].label);
    EXPECT_EQ(h.dev_got[i].payload, ref.reader_to_tag[i].payload);
  }
  // Same protocol work, message for message: the ledgers agree.
  EXPECT_EQ(prover.ledger().ecpm, prover_ref.ledger().ecpm);
  EXPECT_EQ(prover.ledger().rng_bits, prover_ref.ledger().rng_bits);
}

TEST(Gateway, DeadlineEvictsStalledSession) {
  engine::GatewayConfig gcfg;
  gcfg.session_deadline = 500;
  SessionHarness h(0x70, {}, gcfg);
  Xoshiro256 rng(1);
  const Curve& c = Curve::k163();
  const auto kp = proto::schnorr_keygen(c, rng);
  ASSERT_TRUE(h.gw.open_session(
      1, std::make_unique<proto::SchnorrVerifier>(c, kp.X, rng),
      h.downlink()));
  h.q.run_all();  // no device ever speaks
  EXPECT_EQ(h.gw.status(1),
            engine::GatewaySessionStatus::kDeadlineEvicted);
  EXPECT_EQ(h.gw.stats().deadline_evicted, 1u);
  EXPECT_EQ(h.gw.settled_at(1), 500u);
  EXPECT_EQ(h.gw.live_sessions(), 0u);
}

TEST(Gateway, IdleTimeoutEvictsQuietSession) {
  engine::GatewayConfig gcfg;
  gcfg.idle_timeout = 300;
  SessionHarness h(0x71, {}, gcfg);
  Xoshiro256 rng(2);
  const Curve& c = Curve::k163();
  const auto kp = proto::schnorr_keygen(c, rng);
  ASSERT_TRUE(h.gw.open_session(
      1, std::make_unique<proto::SchnorrVerifier>(c, kp.X, rng),
      h.downlink()));
  h.q.run_all();
  EXPECT_EQ(h.gw.status(1), engine::GatewaySessionStatus::kIdleEvicted);
  EXPECT_EQ(h.gw.stats().idle_evicted, 1u);
}

TEST(Gateway, AdmissionControlShedsWithExplicitReject) {
  engine::GatewayConfig gcfg;
  gcfg.max_live_sessions = 1;
  core::EventQueue q;
  engine::GatewayServer gw(q, 0x72, gcfg);
  Xoshiro256 rng(3);
  const Curve& c = Curve::k163();
  const auto kp = proto::schnorr_keygen(c, rng);
  ASSERT_TRUE(gw.open_session(
      1, std::make_unique<proto::SchnorrVerifier>(c, kp.X, rng),
      [](std::vector<std::uint8_t>) {}));
  std::vector<std::uint8_t> refusal;
  EXPECT_FALSE(gw.open_session(
      2, std::make_unique<proto::SchnorrVerifier>(c, kp.X, rng),
      [&](std::vector<std::uint8_t> raw) { refusal = std::move(raw); }));
  EXPECT_EQ(gw.stats().shed, 1u);
  EXPECT_FALSE(gw.has_session(2));
  // The refusal is a well-formed kReject frame, not silence.
  const auto f = decode_frame(refusal);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kReject);
  EXPECT_EQ(f->session, 2u);
}

TEST(Gateway, PoisonMachineIsQuarantined) {
  SessionHarness h(0x73, {});
  ASSERT_TRUE(h.gw.open_session(1, std::make_unique<ThrowingMachine>(),
                                h.downlink()));
  h.dev.send_message("poison", {0xFF});
  h.q.run_all();
  EXPECT_EQ(h.gw.status(1), engine::GatewaySessionStatus::kQuarantined);
  EXPECT_EQ(h.gw.stats().quarantined, 1u);
  EXPECT_TRUE(h.dev_failed);  // the kReject told the device to stop
}

// --- snapshot / restore ------------------------------------------------------

/// Fleet credentials shared by the per-protocol snapshot tests; mirrors
/// the chaos campaign's fixture set.
struct ProtoFixtures {
  const Curve& c = Curve::k163();
  Xoshiro256 setup{0x90};
  proto::SchnorrKeyPair kp = proto::schnorr_keygen(c, setup);
  proto::PhReader reader = proto::ph_setup_reader(c, setup);
  proto::PhTag tag = proto::ph_register_tag(c, reader, setup);
  proto::CipherFactory aes = aes_factory();
  proto::SharedKeys keys =
      proto::derive_session_keys(std::vector<std::uint8_t>(16, 7), 16);
  proto::EciesKeyPair ek = proto::ecies_keygen(c, setup);
  std::vector<std::uint8_t> telemetry = std::vector<std::uint8_t>(48, 0xC3);

  std::unique_ptr<proto::SessionMachine> device(std::size_t kind,
                                                Xoshiro256& rng) const {
    switch (kind) {
      case 0:
        return std::make_unique<proto::SchnorrProver>(c, kp, rng);
      case 1:
        return std::make_unique<proto::PhTagMachine>(c, tag, rng);
      case 2:
        return std::make_unique<proto::MutualAuthTag>(aes, keys, telemetry,
                                                      rng);
      default:
        return std::make_unique<proto::EciesUploader>(c, ek.Y, telemetry,
                                                      aes, 16, rng);
    }
  }
  std::unique_ptr<proto::SessionMachine> server(std::size_t kind,
                                                Xoshiro256& rng) const {
    switch (kind) {
      case 0:
        return std::make_unique<proto::SchnorrVerifier>(c, kp.X, rng);
      case 1:
        return std::make_unique<proto::PhReaderMachine>(c, reader, rng);
      case 2:
        return std::make_unique<proto::MutualAuthServer>(aes, keys, rng);
      default:
        return std::make_unique<proto::EciesReceiver>(c, ek.y, aes, 16);
    }
  }
};

/// Golden digests of each server machine's snapshot after absorbing the
/// device's opening message. Everything underneath is seeded, so these
/// bytes are a stable format commitment: a serialization change must come
/// with a deliberate re-pin here.
constexpr std::uint64_t kGoldenServerSnapshotDigest[4] = {
    0xd592195d99d8809bULL,  // Schnorr verifier
    0x63be237074abb908ULL,  // Peeters–Hermans reader
    0x69c4ddbf6ff8ca57ULL,  // mutual-auth server
    0x41492cdf9824f039ULL,  // ECIES receiver
};

TEST(Snapshot, ServerMachineDigestsMatchGolden) {
  const ProtoFixtures fx;
  for (std::size_t kind = 0; kind < 4; ++kind) {
    Xoshiro256 dev_rng(100 + kind), srv_rng(200 + kind);
    auto dev = fx.device(kind, dev_rng);
    auto srv = fx.server(kind, srv_rng);
    auto opening = dev->start();
    ASSERT_FALSE(opening.out.empty()) << "kind " << kind;
    srv->on_message(opening.out[0]);  // mid-protocol state
    proto::SnapshotWriter w;
    srv->snapshot(w);
    const auto bytes = w.take();
    EXPECT_EQ(fnv1a_bytes(bytes), kGoldenServerSnapshotDigest[kind])
        << "kind " << kind << " digest 0x" << std::hex
        << fnv1a_bytes(bytes);
  }
}

TEST(Snapshot, RestoredMachineContinuesBitIdentically) {
  const ProtoFixtures fx;
  for (std::size_t kind = 0; kind < 4; ++kind) {
    Xoshiro256 dev_rng(300 + kind), srv_rng(400 + kind);
    auto dev = fx.device(kind, dev_rng);
    auto srv = fx.server(kind, srv_rng);
    auto opening = dev->start();
    ASSERT_FALSE(opening.out.empty());
    auto first = srv->on_message(opening.out[0]);

    // Freeze the server mid-protocol: machine state + its rng's state.
    proto::SnapshotWriter w;
    srv->snapshot(w);
    const auto bytes = w.take();
    const Xoshiro256::State rng_state = srv_rng.save_state();

    // The device answers (if the protocol has a next move)...
    if (first.out.empty()) continue;  // single-shot protocol (ECIES)
    auto reply = dev->on_message(first.out[0]);
    if (reply.out.empty()) continue;

    // ...and both the original and a restored clone absorb that answer.
    Xoshiro256 clone_rng(0);
    clone_rng.load_state(rng_state);
    auto clone = fx.server(kind, clone_rng);
    proto::SnapshotReader r(bytes);
    clone->restore(r);
    EXPECT_TRUE(r.exhausted());

    const auto a = srv->on_message(reply.out[0]);
    const auto b = clone->on_message(reply.out[0]);
    EXPECT_EQ(a.state, b.state) << "kind " << kind;
    ASSERT_EQ(a.out.size(), b.out.size()) << "kind " << kind;
    for (std::size_t i = 0; i < a.out.size(); ++i) {
      EXPECT_STREQ(a.out[i].label, b.out[i].label);
      EXPECT_EQ(a.out[i].payload, b.out[i].payload) << "kind " << kind;
    }
  }
}

TEST(Snapshot, GatewayFailoverPreservesTranscriptsAcrossAllProtocols) {
  const ProtoFixtures fx;
  engine::FaultProfile faults;
  faults.drop = 0.1;
  faults.reorder = 0.1;

  for (std::size_t kind = 0; kind < 4; ++kind) {
    // Scenario A: one session runs to completion, no failover.
    const auto run = [&](bool failover) {
      Xoshiro256 dev_rng(500 + kind);
      auto dev_machine = fx.device(kind, dev_rng);
      auto h = std::make_unique<SessionHarness>(0x1000 + kind, faults);
      auto srv_rng = std::make_unique<Xoshiro256>(600 + kind);
      auto srv = fx.server(kind, *srv_rng);
      EXPECT_TRUE(h->gw.open_session(1, std::move(srv), h->downlink(), {},
                                     std::move(srv_rng)));
      h->start(*dev_machine);
      if (failover) {
        h->q.run_until(150);  // mid-protocol for every kind
        const auto snap = h->gw.snapshot_session(1);
        // Node death: a FRESH GatewayServer takes over the same queue and
        // link. (SessionHarness owns the gateway, so emulate by restoring
        // onto a second harness-less server.)
        auto gw2 = std::make_unique<engine::GatewayServer>(
            h->q, (0x1000 + kind) ^ 0x6A7E);
        auto rng2 = std::make_unique<Xoshiro256>(0);
        auto srv2 = fx.server(kind, *rng2);
        engine::GatewayServer* gw2_raw = gw2.get();
        h->link.set_receiver(
            engine::LossyLink::kUp,
            [gw2_raw](std::vector<std::uint8_t> raw) {
              gw2_raw->on_uplink(1, std::move(raw));
            });
        gw2_raw->restore_session(1, std::move(srv2), h->downlink(), snap,
                                 {}, std::move(rng2));
        EXPECT_EQ(gw2_raw->stats().restored, 1u);
        h->q.run_all();
        const bool dev_done =
            dev_machine->state() == proto::SessionState::kDone;
        auto got = std::move(h->dev_got);
        // Keep gw2 alive until the queue drained; drop it before h.
        gw2.reset();
        return std::pair(dev_done, std::move(got));
      }
      h->q.run_all();
      return std::pair(dev_machine->state() == proto::SessionState::kDone,
                       std::move(h->dev_got));
    };

    const auto [done_a, msgs_a] = run(false);
    const auto [done_b, msgs_b] = run(true);
    EXPECT_TRUE(done_a) << "kind " << kind;
    EXPECT_TRUE(done_b) << "kind " << kind;
    // The device saw the SAME protocol conversation, bit for bit —
    // failover cost it nothing but a retransmit.
    ASSERT_EQ(msgs_a.size(), msgs_b.size()) << "kind " << kind;
    for (std::size_t i = 0; i < msgs_a.size(); ++i) {
      EXPECT_STREQ(msgs_a[i].label, msgs_b[i].label);
      EXPECT_EQ(msgs_a[i].payload, msgs_b[i].payload) << "kind " << kind;
    }
  }
}

TEST(Snapshot, RestoreRejectsMalformedSnapshots) {
  const ProtoFixtures fx;
  SessionHarness h(0x74, {});
  Xoshiro256 rng(5);
  auto srv_rng = std::make_unique<Xoshiro256>(6);
  auto srv = fx.server(0, *srv_rng);
  ASSERT_TRUE(h.gw.open_session(1, std::move(srv), h.downlink(), {},
                                std::move(srv_rng)));
  auto snap = h.gw.snapshot_session(1);

  core::EventQueue q2;
  engine::GatewayServer gw2(q2, 0x75);
  // Truncation at any point must throw, never crash or half-restore.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{3}, snap.size() / 2,
        snap.size() - 1}) {
    auto rng2 = std::make_unique<Xoshiro256>(0);
    // Build the machine BEFORE the call: evaluation order of the
    // arguments is unspecified, so `*rng2` inside the call could read
    // the unique_ptr after the move-parameter already gutted it.
    auto machine2 = fx.server(0, *rng2);
    EXPECT_THROW(
        gw2.restore_session(9, std::move(machine2),
                            [](std::vector<std::uint8_t>) {},
                            std::span(snap.data(), len), {},
                            std::move(rng2)),
        proto::SnapshotError);
    EXPECT_FALSE(gw2.has_session(9));
  }
  // Bad magic.
  auto mangled = snap;
  mangled[0] ^= 0xFF;
  auto rng3 = std::make_unique<Xoshiro256>(0);
  auto machine3 = fx.server(0, *rng3);
  EXPECT_THROW(gw2.restore_session(9, std::move(machine3),
                                   [](std::vector<std::uint8_t>) {},
                                   mangled, {}, std::move(rng3)),
               proto::SnapshotError);
  // Missing rng when the snapshot recorded one.
  EXPECT_THROW(gw2.restore_session(9, fx.server(0, rng),
                                   [](std::vector<std::uint8_t>) {}, snap,
                                   {}, nullptr),
               proto::SnapshotError);
}

TEST(Snapshot, RejectCorpusEveryTruncationAndHeaderFlip) {
  const ProtoFixtures fx;
  SessionHarness h(0x74, {});
  auto srv_rng = std::make_unique<Xoshiro256>(6);
  auto srv = fx.server(0, *srv_rng);
  ASSERT_TRUE(h.gw.open_session(1, std::move(srv), h.downlink(), {},
                                std::move(srv_rng)));
  const auto snap = h.gw.snapshot_session(1);

  core::EventQueue q2;
  engine::GatewayServer gw2(q2, 0x75);
  std::uint64_t next_id = 100;
  // Attempt a restore; returns true when it threw the TYPED error. A
  // clean restore is the only other acceptable outcome (a mutated counter
  // byte is indistinguishable from valid data); any other exception type
  // escapes and fails the test, and memory bugs are the ASan/UBSan
  // tier's kill. Either way there must be no half-restored session.
  const auto attempt = [&](std::span<const std::uint8_t> bytes) -> bool {
    const std::uint64_t id = next_id++;
    auto rng = std::make_unique<Xoshiro256>(0);
    // Machine first, then the call: *rng and the unique_ptr move must
    // not race inside one argument list (unspecified evaluation order).
    auto machine = fx.server(0, *rng);
    try {
      gw2.restore_session(id, std::move(machine),
                          [](std::vector<std::uint8_t>) {}, bytes, {},
                          std::move(rng));
    } catch (const proto::SnapshotError&) {
      EXPECT_FALSE(gw2.has_session(id));
      return true;
    }
    EXPECT_TRUE(gw2.has_session(id));
    return false;
  };

  // Truncation at EVERY byte offset — every field boundary included —
  // must throw: the byte stream up to the cut is unchanged, so some read
  // must eventually run off the end before the exhausted() check passes.
  for (std::size_t len = 0; len < snap.size(); ++len)
    EXPECT_TRUE(attempt(std::span(snap.data(), len)))
        << "truncation to " << len << " bytes restored";

  // Flip every byte of the fixed-layout header: magic(4) status(1)
  // accepted(1) faults.detected(8) faults.retries(8) unrecovered(1)
  // settled_at(8) rng-presence(1).
  constexpr std::size_t kHeaderBytes = 4 + 1 + 1 + 8 + 8 + 1 + 8 + 1;
  ASSERT_GE(snap.size(), kHeaderBytes);
  std::size_t typed_rejections = 0;
  for (std::size_t i = 0; i < kHeaderBytes; ++i) {
    auto mangled = snap;
    mangled[i] ^= 0xFF;
    if (attempt(mangled)) ++typed_rejections;
  }
  // The structurally-validated bytes — magic(4), status(1), the three
  // booleans — can never survive a flip.
  EXPECT_GE(typed_rejections, 8u);
  // And a single-bit nudge of each magic byte must be caught, not just
  // the full complement.
  for (std::size_t i = 0; i < 4; ++i) {
    auto mangled = snap;
    mangled[i] ^= 0x01;
    EXPECT_TRUE(attempt(mangled)) << "magic byte " << i;
  }
}

// --- the chaos campaign ------------------------------------------------------

engine::ChaosCampaignConfig chaos_config() {
  engine::ChaosCampaignConfig cfg;
  cfg.sessions = 64;
  cfg.sessions_per_shard = 16;
  cfg.seed = 0xC4A05;
  cfg.uplink.drop = 0.20;
  cfg.uplink.corrupt = 0.05;
  cfg.uplink.reorder = 0.10;
  cfg.uplink.duplicate = 0.05;
  cfg.downlink = cfg.uplink;
  return cfg;
}

TEST(ChaosCampaign, AllSessionsCompleteUnderHeavyFaults) {
  const auto r = engine::run_chaos_campaign(chaos_config());
  EXPECT_EQ(r.sessions, 64u);
  EXPECT_EQ(r.completed, 64u);  // 100% completion at 20% loss
  EXPECT_EQ(r.accepted, 64u);   // every verdict accepts honest devices
  EXPECT_EQ(r.stuck, 0u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.corrupt_accepted, 0u);  // the CRC held the line
  EXPECT_GT(r.frames_dropped, 0u);
  EXPECT_GT(r.frames_corrupted, 0u);
  EXPECT_GT(r.retransmits, 0u);
  EXPECT_GT(r.decode_failures, 0u);
  EXPECT_GT(r.latency_p99, r.latency_p50);
  EXPECT_GE(r.latency_max, r.latency_p99);
}

TEST(ChaosCampaign, FaultlessRunIsCleanAndCheaper) {
  auto cfg = chaos_config();
  cfg.uplink = {};
  cfg.downlink = {};
  const auto r = engine::run_chaos_campaign(cfg);
  EXPECT_EQ(r.completed, 64u);
  EXPECT_EQ(r.decode_failures, 0u);
  EXPECT_EQ(r.frames_dropped, 0u);
  EXPECT_EQ(r.corrupt_accepted, 0u);

  const auto faulty = engine::run_chaos_campaign(chaos_config());
  EXPECT_LT(r.latency_p99, faulty.latency_p99);
  EXPECT_LT(r.frames_sent, faulty.frames_sent);
}

TEST(ChaosCampaign, DigestIsIdenticalAcrossRerunsAndThreadCounts) {
  auto cfg = chaos_config();
  cfg.threads = 1;
  const auto serial = engine::run_chaos_campaign(cfg);
  cfg.threads = 4;
  const auto wide = engine::run_chaos_campaign(cfg);
  cfg.threads = 0;
  const auto pooled = engine::run_chaos_campaign(cfg);
  EXPECT_EQ(serial.digest, wide.digest);
  EXPECT_EQ(serial.digest, pooled.digest);
  EXPECT_EQ(serial.completed, wide.completed);
  EXPECT_EQ(serial.retransmits, wide.retransmits);
  EXPECT_EQ(serial.latency_p99, wide.latency_p99);

  // And a different seed is a genuinely different campaign.
  cfg.seed ^= 1;
  const auto other = engine::run_chaos_campaign(cfg);
  EXPECT_NE(serial.digest, other.digest);
}

TEST(ChaosCampaign, MidProtocolFailoverStillCompletesEverySession) {
  auto cfg = chaos_config();
  cfg.sessions = 32;
  cfg.sessions_per_shard = 8;
  cfg.failover_at = 200;  // mid-protocol under these delay bands
  const auto r = engine::run_chaos_campaign(cfg);
  EXPECT_EQ(r.completed, 32u);
  EXPECT_EQ(r.stuck, 0u);
  EXPECT_EQ(r.corrupt_accepted, 0u);
  EXPECT_EQ(r.gateway.restored, 32u);  // every session crossed the failover
  const auto again = engine::run_chaos_campaign(cfg);
  EXPECT_EQ(r.digest, again.digest);  // failover is inside the contract
}

// --- session-tap fault corpus (drive_session robustness) ---------------------

TEST(SessionTapFaults, TruncationDropAndDuplicationNeverCrash) {
  const ProtoFixtures fx;
  // Mutators: truncate to nothing / one byte / half / all-but-one, and a
  // tamper that extends. Fates: drop the second message, duplicate all.
  const std::vector<std::function<void(proto::Message&)>> mutators = {
      [](proto::Message& m) { m.payload.clear(); },
      [](proto::Message& m) { m.payload.resize(std::min<std::size_t>(
                                  1, m.payload.size())); },
      [](proto::Message& m) { m.payload.resize(m.payload.size() / 2); },
      [](proto::Message& m) {
        if (!m.payload.empty()) m.payload.pop_back();
      },
      [](proto::Message& m) { m.payload.push_back(0xEE); },
  };
  for (std::size_t kind = 0; kind < 4; ++kind) {
    for (std::size_t mi = 0; mi < mutators.size(); ++mi) {
      for (const bool uplink : {true, false}) {
        Xoshiro256 dev_rng(700 + kind), srv_rng(800 + kind);
        auto dev = fx.device(kind, dev_rng);
        auto srv = fx.server(kind, srv_rng);
        proto::Transcript t;
        proto::SessionTap tap;
        if (uplink)
          tap.tag_to_reader = mutators[mi];
        else
          tap.reader_to_tag = mutators[mi];
        // A mangled message may sink the session — it must never crash.
        EXPECT_NO_THROW(proto::drive_session(*dev, *srv, t, tap))
            << "kind " << kind << " mutator " << mi << " up " << uplink;
      }
    }
    for (const proto::TapFate fate :
         {proto::TapFate::kDrop, proto::TapFate::kDuplicate}) {
      Xoshiro256 dev_rng(900 + kind), srv_rng(1000 + kind);
      auto dev = fx.device(kind, dev_rng);
      auto srv = fx.server(kind, srv_rng);
      proto::Transcript t;
      proto::SessionTap tap;
      std::size_t n = 0;
      tap.tag_to_reader_fate = [&n, fate](const proto::Message&) {
        return ++n == 2 ? fate : proto::TapFate::kDeliver;
      };
      EXPECT_NO_THROW(proto::drive_session(*dev, *srv, t, tap))
          << "kind " << kind;
    }
  }
}

// --- fleet server degradation ------------------------------------------------

TEST(FleetDegradation, BoundedDrainReportsStragglers) {
  const Curve& c = Curve::k163();
  engine::FleetConfig fcfg;
  fcfg.worker_threads = 2;
  fcfg.deterministic = true;
  engine::FleetServer fleet(c, fcfg, {});
  const std::uint64_t slow = fleet.open_session(
      std::make_unique<SlowMachine>());
  ASSERT_NE(slow, 0u);
  fleet.deliver(slow, proto::Message{"stall", {1}});
  // The worker is parked in SlowMachine::on_message for ~200ms; a 5ms
  // budget must expire and name the session instead of hanging.
  const auto report = fleet.drain_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.stragglers, std::vector<std::uint64_t>{slow});
  fleet.drain();  // full quiescence for teardown
  const auto after = fleet.drain_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(after.completed);
  EXPECT_TRUE(after.stragglers.empty());
}

TEST(FleetDegradation, AdmissionControlShedsNewSessions) {
  const Curve& c = Curve::k163();
  engine::FleetConfig fcfg;
  fcfg.worker_threads = 1;
  fcfg.deterministic = true;
  fcfg.max_live_sessions = 2;
  engine::FleetServer fleet(c, fcfg, {});
  EXPECT_NE(fleet.open_session(std::make_unique<SlowMachine>()), 0u);
  EXPECT_NE(fleet.open_session(std::make_unique<SlowMachine>()), 0u);
  EXPECT_EQ(fleet.open_session(std::make_unique<SlowMachine>()), 0u);
  Xoshiro256 rng(8);
  const auto kp = proto::schnorr_keygen(c, rng);
  fleet.enroll(kp.X);
  EXPECT_EQ(fleet.open_schnorr_session(0), 0u);  // both open_* paths shed
  EXPECT_EQ(fleet.stats().sessions_shed, 2u);
  EXPECT_EQ(fleet.stats().sessions_opened, 2u);
}

TEST(FleetDegradation, ThrowingMachineIsQuarantinedNotFatal) {
  const Curve& c = Curve::k163();
  engine::FleetConfig fcfg;
  fcfg.worker_threads = 2;
  fcfg.deterministic = true;
  engine::FleetServer fleet(c, fcfg, {});
  const std::uint64_t poison =
      fleet.open_session(std::make_unique<ThrowingMachine>());
  ASSERT_NE(poison, 0u);
  fleet.deliver(poison, proto::Message{"boom", {1}});
  fleet.drain();
  const auto rec = fleet.record(poison);
  EXPECT_TRUE(rec.completed);
  EXPECT_FALSE(rec.accepted);
  EXPECT_EQ(fleet.stats().sessions_quarantined, 1u);
  EXPECT_EQ(fleet.stats().sessions_completed, 1u);
}

}  // namespace
