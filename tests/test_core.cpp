// Tests for the core SecureEccProcessor facade and the ISA audit.
#include <gtest/gtest.h>

#include "core/isa_audit.h"
#include "core/secure_processor.h"
#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"
#include "rng/xoshiro.h"

namespace {

using medsec::core::CountermeasureConfig;
using medsec::core::SecureEccProcessor;
using medsec::ecc::Curve;
using medsec::ecc::Fe;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;

TEST(SecureProcessor, MatchesAlgorithmicLadder) {
  const Curve& c = Curve::k163();
  SecureEccProcessor proc(c, CountermeasureConfig::protected_default());
  Xoshiro256 rng(1);
  for (int i = 0; i < 3; ++i) {
    const Scalar k = rng.uniform_nonzero(c.order());
    const auto out = proc.point_mult(k, c.base_point());
    EXPECT_EQ(out.result, medsec::ecc::montgomery_ladder(c, k, c.base_point()));
    EXPECT_GT(out.energy_j, 0.0);
    EXPECT_GT(out.cycles, 80000u);
  }
}

TEST(SecureProcessor, RejectsInvalidInputPoints) {
  const Curve& c = Curve::k163();
  SecureEccProcessor proc(c, CountermeasureConfig::protected_default());
  EXPECT_THROW(proc.point_mult(Scalar{3}, Point::at_infinity()),
               std::invalid_argument);
  Point off = c.base_point();
  off.y += Fe::one();
  EXPECT_THROW(proc.point_mult(Scalar{3}, off), std::invalid_argument);
  const Point two_torsion = Point::affine(Fe::zero(), Fe::sqrt(c.b()));
  EXPECT_THROW(proc.point_mult(Scalar{3}, two_torsion),
               std::invalid_argument);
}

TEST(SecureProcessor, EnergyNearPaperFigure) {
  const Curve& c = Curve::k163();
  SecureEccProcessor proc(c, CountermeasureConfig::protected_default());
  Xoshiro256 rng(2);
  const auto out = proc.point_mult(rng.uniform_nonzero(c.order()),
                                   c.base_point());
  EXPECT_NEAR(out.energy_j * 1e6, 5.1, 0.55);
  EXPECT_NEAR(out.avg_power_w * 1e6, 50.4, 5.1);
}

TEST(SecureProcessor, ZeroizationClearsWorkingRegisters) {
  const Curve& c = Curve::k163();
  SecureEccProcessor proc(c, CountermeasureConfig::protected_default());
  Xoshiro256 rng(3);
  proc.point_mult(rng.uniform_nonzero(c.order()), c.base_point());
  using medsec::hw::Reg;
  for (const Reg r : {Reg::kZ1, Reg::kX2, Reg::kZ2, Reg::kT, Reg::kXP})
    EXPECT_TRUE(proc.coprocessor().reg(r).is_zero())
        << medsec::hw::reg_name(r);
  EXPECT_FALSE(proc.coprocessor().reg(Reg::kX1).is_zero());  // the result
}

TEST(SecureProcessor, UnprotectedConfigSkipsZeroization) {
  const Curve& c = Curve::k163();
  SecureEccProcessor proc(c, CountermeasureConfig::unprotected());
  Xoshiro256 rng(4);
  proc.point_mult(rng.uniform_nonzero(c.order()), c.base_point());
  // At least one working register retains state: the ablation baseline.
  using medsec::hw::Reg;
  bool residue = false;
  for (const Reg r : {Reg::kZ1, Reg::kX2, Reg::kZ2, Reg::kT, Reg::kXP})
    residue = residue || !proc.coprocessor().reg(r).is_zero();
  EXPECT_TRUE(residue);
}

TEST(SecureProcessor, RecordsAreAvailableForInstrumentation) {
  const Curve& c = Curve::k163();
  SecureEccProcessor proc(c, CountermeasureConfig::protected_default());
  Xoshiro256 rng(5);
  proc.point_mult(rng.uniform_nonzero(c.order()), c.base_point());
  EXPECT_GT(proc.last_records().size(), 80000u);
}

TEST(SecureProcessor, RpcChangesNothingFunctionally) {
  const Curve& c = Curve::k163();
  CountermeasureConfig with = CountermeasureConfig::protected_default();
  CountermeasureConfig without = with;
  without.ladder.randomize_projective = false;
  SecureEccProcessor p1(c, with), p2(c, without);
  Xoshiro256 rng(6);
  const Scalar k = rng.uniform_nonzero(c.order());
  EXPECT_EQ(p1.point_mult(k, c.base_point()).result,
            p2.point_mult(k, c.base_point()).result);
}

TEST(SecureProcessor, SessionsAreIndependentAndReentrant) {
  const Curve& c = Curve::k163();
  const SecureEccProcessor proc(c, CountermeasureConfig::protected_default());
  Xoshiro256 rng(7);
  const Scalar k1 = rng.uniform_nonzero(c.order());
  const Scalar k2 = rng.uniform_nonzero(c.order());

  // Two sessions interleaved: each owns its register file and telemetry,
  // so neither perturbs the other (the old facade had one shared
  // last_records_ buffer and register file).
  auto s1 = proc.open_session(1);
  auto s2 = proc.open_session(2);
  const auto r1 = s1.point_mult(k1, c.base_point());
  const auto r2 = s2.point_mult(k2, c.base_point());
  const auto r1b = s1.point_mult(k1, c.base_point());
  EXPECT_EQ(r1.result, medsec::ecc::montgomery_ladder(c, k1, c.base_point()));
  EXPECT_EQ(r2.result, medsec::ecc::montgomery_ladder(c, k2, c.base_point()));
  EXPECT_EQ(r1b.result, r1.result);
  EXPECT_GT(s1.last_records().size(), 80000u);
  EXPECT_GT(s2.last_records().size(), 80000u);

  // Distinct session seeds draw distinct Z-randomizer streams, but the
  // randomization never changes the functional result.
  auto s3 = proc.open_session(3);
  EXPECT_EQ(s3.point_mult(k1, c.base_point()).result, r1.result);
}

TEST(IsaAudit, ProtectedConfigurationPasses) {
  const auto rep = medsec::core::audit_isa(Curve::k163());
  EXPECT_TRUE(rep.all_pass());
  EXPECT_EQ(rep.findings.size(), 4u);
  for (const auto& f : rep.findings)
    EXPECT_TRUE(f.pass) << f.check << ": " << f.detail;
}

TEST(IsaAudit, EmptyReportIsNotAPass) {
  medsec::core::IsaAuditReport rep;
  EXPECT_FALSE(rep.all_pass());
}

}  // namespace
