// Tests for the campaign engine: the thread pool substrate, the
// streaming statistics (single-pass Pearson / TVLA accumulators and
// their merges), and the end-to-end determinism contract — a DPA
// campaign is bit-identical at 1 thread / 1 lane and at max threads /
// max lanes, and the streaming attack recovers exactly the same bits as
// the PR 2 reference loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.h"
#include "rng/xoshiro.h"
#include "sidechannel/dpa.h"
#include "sidechannel/trace_sim.h"
#include "sidechannel/tvla.h"

namespace {

using medsec::core::ThreadPool;
using medsec::ecc::Curve;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;
namespace sc = medsec::sidechannel;

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(pool.submit([&] { done.fetch_add(1); }));
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      // A worker task issuing its own parallel_for must make progress
      // even with every worker busy (the caller participates).
      pool.parallel_for(8, 1, [&](std::size_t b2, std::size_t e2) {
        total.fetch_add(static_cast<int>(e2 - b2));
      });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(16, 1,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 5)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

// --- streaming statistics ---------------------------------------------------

TEST(Streaming, PearsonAccMatchesTwoPassPearson) {
  Xoshiro256 rng(3);
  std::vector<double> x(500), y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = sc::gaussian(rng, 2.0);
    y[i] = 0.4 * x[i] + sc::gaussian(rng, 1.0);
  }
  sc::PearsonAcc one;
  for (std::size_t i = 0; i < x.size(); ++i) one.add(x[i], y[i]);
  EXPECT_NEAR(one.correlation(), sc::pearson(x, y), 1e-12);

  // Blocked accumulation + in-order merge agrees with the single pass.
  sc::PearsonAcc merged;
  for (std::size_t b = 0; b < x.size(); b += 64) {
    sc::PearsonAcc blk;
    for (std::size_t i = b; i < std::min(x.size(), b + 64); ++i)
      blk.add(x[i], y[i]);
    merged.merge(blk);
  }
  EXPECT_NEAR(merged.correlation(), sc::pearson(x, y), 1e-12);
  EXPECT_EQ(merged.count(), x.size());

  sc::PearsonAcc degenerate;
  degenerate.add(1.0, 2.0);
  EXPECT_DOUBLE_EQ(degenerate.correlation(), 0.0);
}

TEST(Streaming, RunningStatsMergeMatchesSinglePass) {
  Xoshiro256 rng(4);
  std::vector<double> xs(300);
  for (double& v : xs) v = sc::gaussian(rng, 5.0) + 1.0;
  sc::RunningStats ref;
  for (const double v : xs) ref.add(v);
  sc::RunningStats merged, a, b;
  for (std::size_t i = 0; i < xs.size(); ++i) (i < 100 ? a : b).add(xs[i]);
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), ref.count());
  EXPECT_NEAR(merged.mean(), ref.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), ref.variance(), 1e-10);
  sc::RunningStats empty;
  merged.merge(empty);  // no-op
  EXPECT_EQ(merged.count(), ref.count());
}

TEST(Streaming, TvlaParallelBitIdenticalToSerial) {
  Xoshiro256 rng(5);
  sc::TraceSet fixed, random;
  for (int t = 0; t < 150; ++t) {
    sc::Trace f(40), r(40);
    for (int i = 0; i < 40; ++i) {
      f[i] = sc::gaussian(rng, 1.0) + (i == 7 ? 0.8 : 0.0);
      r[i] = sc::gaussian(rng, 1.0);
    }
    fixed.traces.push_back(std::move(f));
    random.traces.push_back(std::move(r));
  }
  const auto serial = sc::tvla_fixed_vs_random(fixed, random, 4.5);
  ThreadPool pool(4);
  const auto parallel = sc::tvla_fixed_vs_random(fixed, random, 4.5, &pool);
  ASSERT_EQ(serial.t_values.size(), parallel.t_values.size());
  for (std::size_t i = 0; i < serial.t_values.size(); ++i)
    ASSERT_EQ(serial.t_values[i], parallel.t_values[i]) << "point " << i;
  EXPECT_EQ(serial.points_over_threshold, parallel.points_over_threshold);
  EXPECT_TRUE(serial.leaks());  // the planted difference at point 7
}

// --- campaign determinism ---------------------------------------------------

TEST(CampaignDeterminism, TracesBitIdenticalAcrossThreadsAndLanes) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(6);
  const Scalar k = rng.uniform_nonzero(c.order());

  // White-box scenario: exercises base points, randomizers and noise.
  sc::AlgorithmicSimConfig serial_cfg;
  serial_cfg.seed = 77;
  serial_cfg.threads = 1;
  serial_cfg.lanes = 1;
  sc::AlgorithmicSimConfig wide_cfg = serial_cfg;
  wide_cfg.threads = 0;  // every hardware thread
  wide_cfg.lanes = 64;   // max lane width

  const auto a = sc::generate_dpa_traces(
      c, k, 600, sc::RpcScenario::kEnabledKnownRandomness, serial_cfg);
  const auto b = sc::generate_dpa_traces(
      c, k, 600, sc::RpcScenario::kEnabledKnownRandomness, wide_cfg);

  ASSERT_EQ(a.traces.traces.size(), b.traces.traces.size());
  for (std::size_t j = 0; j < a.traces.traces.size(); ++j) {
    ASSERT_EQ(a.base_points[j], b.base_points[j]) << "trace " << j;
    ASSERT_EQ(a.known_randomizers[j], b.known_randomizers[j]) << j;
    ASSERT_EQ(a.traces.traces[j], b.traces.traces[j])
        << "trace " << j << " not bit-identical";
  }

  // The attack agrees too — bits AND statistic values.
  sc::DpaConfig cfg_serial;
  cfg_serial.bits_to_attack = 12;
  cfg_serial.threads = 1;
  cfg_serial.lanes = 1;
  sc::DpaConfig cfg_wide = cfg_serial;
  cfg_wide.threads = 0;
  cfg_wide.lanes = 64;
  const auto ra = sc::ladder_dpa_attack(c, a, cfg_serial);
  const auto rb = sc::ladder_dpa_attack(c, b, cfg_wide);
  EXPECT_EQ(ra.recovered_bits, rb.recovered_bits);
  EXPECT_EQ(ra.stat_correct_hyp, rb.stat_correct_hyp);
  EXPECT_EQ(ra.stat_rejected_hyp, rb.stat_rejected_hyp);
}

TEST(CampaignDeterminism, FixedBasePointCampaignIsDeterministic) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(8);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::AlgorithmicSimConfig one;
  one.seed = 5;
  one.fixed_base_point = c.base_point();
  one.threads = 1;
  one.lanes = 1;
  sc::AlgorithmicSimConfig wide = one;
  wide.threads = 0;
  wide.lanes = 32;
  const auto a = sc::generate_dpa_traces(
      c, k, 100, sc::RpcScenario::kEnabledSecretRandomness, one);
  const auto b = sc::generate_dpa_traces(
      c, k, 100, sc::RpcScenario::kEnabledSecretRandomness, wide);
  for (std::size_t j = 0; j < 100; ++j)
    ASSERT_EQ(a.traces.traces[j], b.traces.traces[j]) << "trace " << j;
  EXPECT_TRUE(a.known_randomizers.empty());  // secret scenario: not leaked
}

TEST(CampaignDeterminism, StreamingAttackMatchesReferenceAttack) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(10);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::AlgorithmicSimConfig sim;
  sim.seed = 4242;
  const auto exp =
      sc::generate_dpa_traces(c, k, 400, sc::RpcScenario::kDisabled, sim);
  sc::DpaConfig cfg;
  cfg.bits_to_attack = 16;
  const auto engine = sc::ladder_dpa_attack(c, exp, cfg);
  const auto reference = sc::ladder_dpa_attack_reference(c, exp, cfg);
  EXPECT_EQ(engine.recovered_bits, reference.recovered_bits);
  EXPECT_EQ(engine.bits_correct, reference.bits_correct);
  // Statistic values agree to merge-order rounding.
  for (std::size_t i = 0; i < engine.stat_correct_hyp.size(); ++i)
    EXPECT_NEAR(engine.stat_correct_hyp[i], reference.stat_correct_hyp[i],
                1e-9);
  // And the engine run actually breaks the unprotected ladder.
  EXPECT_TRUE(engine.full_success);
}

TEST(CampaignDeterminism, SerialBaselineKeepsPr2Shape) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(12);
  const Scalar k = rng.uniform_nonzero(c.order());
  const auto exp = sc::generate_dpa_traces_serial(
      c, k, 8, sc::RpcScenario::kEnabledKnownRandomness);
  EXPECT_EQ(exp.traces.traces.size(), 8u);
  EXPECT_EQ(exp.traces.length(), 163u);
  EXPECT_EQ(exp.known_randomizers.size(), 8u);
  EXPECT_EQ(exp.true_bits.size(), 164u);
}

TEST(CampaignDeterminism, AveragedCycleCaptureStableAcrossRuns) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(13);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::CycleSimConfig cfg;
  cfg.leakage.noise_sigma = 100.0;
  // The pool fan-out must not change the averaged trace: compare with a
  // manual serial fold of the same derived capture seeds.
  const auto avg = sc::capture_averaged_cycle_trace(c, k, c.base_point(),
                                                    cfg, 4);
  sc::CycleTrace expect = sc::capture_cycle_trace(c, k, c.base_point(), cfg);
  for (std::size_t j = 1; j < 4; ++j) {
    sc::CycleSimConfig c2 = cfg;
    c2.seed = cfg.seed + 0x1000 * j;
    const auto t = sc::capture_cycle_trace(c, k, c.base_point(), c2);
    for (std::size_t i = 0; i < expect.samples.size(); ++i)
      expect.samples[i] += t.samples[i];
  }
  for (double& s : expect.samples) s /= 4.0;
  ASSERT_EQ(avg.samples.size(), expect.samples.size());
  for (std::size_t i = 0; i < avg.samples.size(); ++i)
    ASSERT_EQ(avg.samples[i], expect.samples[i]) << "cycle " << i;
}

}  // namespace
