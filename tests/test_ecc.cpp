// Unit, property and cross-check tests for the elliptic-curve layer.
#include <gtest/gtest.h>

#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"
#include "rng/xoshiro.h"

namespace {

using medsec::bigint::U192;
using medsec::ecc::Curve;
using medsec::ecc::Fe;
using medsec::ecc::LadderOptions;
using medsec::ecc::montgomery_ladder;
using medsec::ecc::MultAlgorithm;
using medsec::ecc::MultOptions;
using medsec::ecc::MultStats;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::ecc::scalar_mult;
using medsec::rng::Xoshiro256;

Scalar random_scalar(Xoshiro256& rng, const Curve& c) {
  return rng.uniform_nonzero(c.order());
}

// --- curve structure ---------------------------------------------------------

TEST(Curve, BasePointsAreOnCurve) {
  EXPECT_TRUE(Curve::k163().is_on_curve(Curve::k163().base_point()));
  EXPECT_TRUE(Curve::b163().is_on_curve(Curve::b163().base_point()));
}

TEST(Curve, BasePointHasStatedOrder) {
  for (const Curve* c : {&Curve::k163(), &Curve::b163()}) {
    const Point ng = c->scalar_mult_reference(c->order(), c->base_point());
    EXPECT_TRUE(ng.infinity) << c->name();
    // ... and not any smaller power of two of it (order is prime, so it is
    // enough to check (n-1)G != infinity).
    Scalar n1 = c->order();
    n1.sub_in_place(Scalar{1});
    EXPECT_FALSE(c->scalar_mult_reference(n1, c->base_point()).infinity);
  }
}

TEST(Curve, AdditionGroupLaws) {
  const Curve& c = Curve::k163();
  const Point g = c.base_point();
  const Point g2 = c.dbl(g);
  const Point g3 = c.add(g2, g);

  // Identity.
  EXPECT_EQ(c.add(g, Point::at_infinity()), g);
  EXPECT_EQ(c.add(Point::at_infinity(), g), g);
  // Inverse.
  EXPECT_TRUE(c.add(g, c.negate(g)).infinity);
  // Commutativity.
  EXPECT_EQ(c.add(g, g2), c.add(g2, g));
  // Associativity: (G + G) + G == G + (G + G).
  EXPECT_EQ(c.add(c.add(g, g), g), c.add(g, c.add(g, g)));
  EXPECT_EQ(g3, c.add(g, g2));
  // Doubling consistency.
  EXPECT_EQ(c.dbl(g), c.add(g, g));
}

TEST(Curve, NegationIsInvolution) {
  const Curve& c = Curve::k163();
  const Point g = c.base_point();
  EXPECT_EQ(c.negate(c.negate(g)), g);
  EXPECT_TRUE(c.is_on_curve(c.negate(g)));
}

TEST(Curve, ScalarMultHomomorphism) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(100);
  for (int i = 0; i < 5; ++i) {
    const Scalar k1 = random_scalar(rng, c);
    const Scalar k2 = random_scalar(rng, c);
    const Point p1 = c.scalar_mult_reference(k1, c.base_point());
    const Point p2 = c.scalar_mult_reference(k2, c.base_point());
    const Scalar ksum = c.scalar_ring().add(k1, k2);
    const Point psum = c.scalar_mult_reference(ksum, c.base_point());
    EXPECT_EQ(c.add(p1, p2), psum);
  }
}

TEST(Curve, SmallMultiplesAgree) {
  const Curve& c = Curve::k163();
  const Point g = c.base_point();
  Point acc = Point::at_infinity();
  for (std::uint64_t k = 1; k <= 20; ++k) {
    acc = c.add(acc, g);
    EXPECT_EQ(c.scalar_mult_reference(Scalar{k}, g), acc) << "k=" << k;
    EXPECT_TRUE(c.is_on_curve(acc));
  }
}

TEST(Curve, ValidateSubgroupPoint) {
  const Curve& c = Curve::k163();
  EXPECT_TRUE(c.validate_subgroup_point(c.base_point()));
  EXPECT_FALSE(c.validate_subgroup_point(Point::at_infinity()));
  // A random (x, y) not on the curve must fail.
  Point bogus = c.base_point();
  bogus.y += Fe::one();
  EXPECT_FALSE(c.validate_subgroup_point(bogus));
  // The order-2 point (0, sqrt(b)) is on the curve but not in the subgroup.
  const Point two_torsion = Point::affine(Fe::zero(), Fe::sqrt(c.b()));
  EXPECT_TRUE(c.is_on_curve(two_torsion));
  EXPECT_FALSE(c.validate_subgroup_point(two_torsion));
}

TEST(Curve, CompressDecompressRoundTrip) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(101);
  Point p = c.base_point();
  for (int i = 0; i < 10; ++i) {
    const auto comp = c.compress(p);
    const auto back = c.decompress(comp);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
    p = c.dbl(p);
  }
}

TEST(Curve, DecompressRejectsNonResidue) {
  const Curve& c = Curve::k163();
  // Find an x with no curve point: z^2 + z = x + a + b/x^2 unsolvable.
  int rejected = 0;
  for (std::uint64_t x0 = 2; x0 < 40 && rejected == 0; ++x0) {
    const auto r = c.decompress({Fe{x0}, 0});
    if (!r.has_value()) ++rejected;
  }
  EXPECT_EQ(rejected, 1);
}

// --- Montgomery ladder vs reference ------------------------------------------

class LadderTest : public ::testing::TestWithParam<const Curve*> {};

TEST_P(LadderTest, MatchesReferenceOnRandomScalars) {
  const Curve& c = *GetParam();
  Xoshiro256 rng(200);
  for (int i = 0; i < 10; ++i) {
    const Scalar k = random_scalar(rng, c);
    const Point ref = c.scalar_mult_reference(k, c.base_point());
    const Point lad = montgomery_ladder(c, k, c.base_point());
    EXPECT_EQ(lad, ref) << c.name() << " k=" << k.to_hex();
  }
}

TEST_P(LadderTest, SmallScalars) {
  const Curve& c = *GetParam();
  for (std::uint64_t k = 1; k <= 16; ++k) {
    EXPECT_EQ(montgomery_ladder(c, Scalar{k}, c.base_point()),
              c.scalar_mult_reference(Scalar{k}, c.base_point()))
        << "k=" << k;
  }
}

TEST_P(LadderTest, EdgeScalars) {
  const Curve& c = *GetParam();
  const Point g = c.base_point();
  // k = 0 (mod n) -> infinity.
  EXPECT_TRUE(montgomery_ladder(c, Scalar{}, g).infinity);
  EXPECT_TRUE(montgomery_ladder(c, c.order(), g).infinity);
  // k = n - 1 -> -G (exercises the Z2 == 0 recovery branch).
  Scalar n1 = c.order();
  n1.sub_in_place(Scalar{1});
  EXPECT_EQ(montgomery_ladder(c, n1, g), c.negate(g));
  // k = n + 1 reduces to 1 -> G.
  Scalar np1 = c.order();
  np1.add_in_place(Scalar{1});
  EXPECT_EQ(montgomery_ladder(c, np1, g), g);
}

INSTANTIATE_TEST_SUITE_P(Curves, LadderTest,
                         ::testing::Values(&Curve::k163(), &Curve::b163()),
                         [](const auto& info) { return info.param->name() == "K-163" ? "K163" : "B163"; });

TEST(Ladder, RandomizedProjectiveCoordinatesGiveSameResult) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(300);
  Xoshiro256 rpc_rng(301);
  for (int i = 0; i < 10; ++i) {
    const Scalar k = random_scalar(rng, c);
    LadderOptions opt;
    opt.randomize_z = true;
    opt.rng = &rpc_rng;
    EXPECT_EQ(montgomery_ladder(c, k, c.base_point(), opt),
              montgomery_ladder(c, k, c.base_point()));
  }
}

TEST(Ladder, RpcRandomizesIntermediates) {
  // Same key, two executions: with RPC the internal (X, Z) pairs must
  // differ (this is exactly why DPA's intermediate predictions fail),
  // while the projective ratio X/Z stays equal.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(302);
  const Scalar k = random_scalar(rng, c);

  std::vector<Fe> run1_x, run2_x;
  std::vector<Fe> run1_ratio, run2_ratio;
  auto run = [&](std::vector<Fe>& xs, std::vector<Fe>& ratios) {
    LadderOptions opt;
    opt.randomize_z = true;
    opt.rng = &rng;
    opt.observer = [&](const medsec::ecc::LadderObservation& ob) {
      xs.push_back(ob.x1);
      ratios.push_back(Fe::mul(ob.x1, Fe::inv(ob.z1)));
    };
    montgomery_ladder(c, k, c.base_point(), opt);
  };
  run(run1_x, run1_ratio);
  run(run2_x, run2_ratio);
  ASSERT_EQ(run1_x.size(), run2_x.size());
  ASSERT_FALSE(run1_x.empty());
  std::size_t equal_x = 0;
  for (std::size_t i = 0; i < run1_x.size(); ++i) {
    if (run1_x[i] == run2_x[i]) ++equal_x;
    EXPECT_EQ(run1_ratio[i], run2_ratio[i]);  // same underlying point
  }
  EXPECT_EQ(equal_x, 0u);  // representations never coincide
}

TEST(Ladder, KnownRandomizersReproduceWhiteBoxScenario) {
  // §7: "the countermeasure is enabled, but the randomness is known" —
  // fixing the randomizers makes intermediates deterministic again.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(303);
  const Scalar k = random_scalar(rng, c);
  LadderOptions opt;
  opt.known_randomizers = std::make_pair(Fe{0x1234}, Fe{0x5678});
  std::vector<Fe> xs1, xs2;
  opt.observer = [&](const medsec::ecc::LadderObservation& ob) {
    xs1.push_back(ob.x1);
  };
  montgomery_ladder(c, k, c.base_point(), opt);
  opt.observer = [&](const medsec::ecc::LadderObservation& ob) {
    xs2.push_back(ob.x1);
  };
  montgomery_ladder(c, k, c.base_point(), opt);
  EXPECT_EQ(xs1.size(), xs2.size());
  for (std::size_t i = 0; i < xs1.size(); ++i) EXPECT_EQ(xs1[i], xs2[i]);
}

TEST(Ladder, RejectsOrderTwoBasePoint) {
  const Curve& c = Curve::k163();
  const Point two_torsion = Point::affine(Fe::zero(), Fe::sqrt(c.b()));
  EXPECT_THROW(montgomery_ladder(c, Scalar{3}, two_torsion),
               std::invalid_argument);
}

TEST(Ladder, RpcWithoutRngThrows) {
  const Curve& c = Curve::k163();
  LadderOptions opt;
  opt.randomize_z = true;
  EXPECT_THROW(montgomery_ladder(c, Scalar{3}, c.base_point(), opt),
               std::invalid_argument);
}

// --- scalar_mult dispatch and instrumentation --------------------------------

TEST(ScalarMult, AllAlgorithmsAgree) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(400);
  Xoshiro256 rpc_rng(401);
  for (int i = 0; i < 5; ++i) {
    const Scalar k = random_scalar(rng, c);
    MultOptions da, ml, rpc;
    da.algorithm = MultAlgorithm::kDoubleAndAdd;
    ml.algorithm = MultAlgorithm::kMontgomeryLadder;
    rpc.algorithm = MultAlgorithm::kLadderRpc;
    rpc.rng = &rpc_rng;
    const Point r1 = scalar_mult(c, k, c.base_point(), da);
    const Point r2 = scalar_mult(c, k, c.base_point(), ml);
    const Point r3 = scalar_mult(c, k, c.base_point(), rpc);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(r2, r3);
  }
}

TEST(ScalarMult, DoubleAndAddLeaksHammingWeightInOpCount) {
  const Curve& c = Curve::k163();
  // Two same-length keys with very different Hamming weight.
  Scalar light;  // 1000...01 — few ones
  light.set_bit(162, true);
  light.set_bit(0, true);
  Scalar heavy;  // 163 ones
  for (std::size_t i = 0; i < 163; ++i) heavy.set_bit(i, true);
  heavy = heavy.mod(c.order());

  MultStats s_light, s_heavy;
  MultOptions o1, o2;
  o1.algorithm = o2.algorithm = MultAlgorithm::kDoubleAndAdd;
  o1.stats = &s_light;
  o2.stats = &s_heavy;
  scalar_mult(c, light, c.base_point(), o1);
  scalar_mult(c, heavy, c.base_point(), o2);
  // The op-slot count (runtime proxy) differs: the timing side channel.
  EXPECT_LT(s_light.op_slots, s_heavy.op_slots);
  EXPECT_EQ(s_light.point_adds, 2u);
}

TEST(ScalarMult, LadderOpCountIndependentOfKeyValue) {
  // The ladder pads every scalar to a fixed order.bit_length()+1 bits, so
  // the slot count is a curve constant even for tiny keys — the property
  // the paper's chip gets from a fixed iteration schedule (§7, timing).
  const Curve& c = Curve::k163();
  Xoshiro256 rng(500);
  std::vector<Scalar> keys = {Scalar{1}, Scalar{2}, Scalar{0xffff}};
  for (int i = 0; i < 10; ++i) keys.push_back(random_scalar(rng, c));
  for (const Scalar& k : keys) {
    MultStats st;
    MultOptions o;
    o.algorithm = MultAlgorithm::kMontgomeryLadder;
    o.stats = &st;
    scalar_mult(c, k, c.base_point(), o);
    EXPECT_EQ(st.op_slots, 163u);          // == order.bit_length(), always
    EXPECT_EQ(st.ladder_iterations, 163u);
  }
}

}  // namespace
