// Cross-checks of the pluggable GF(2^163) backends, the batch inversion,
// the multi-squaring tables, the fixed-base comb, and the windowed TNAF —
// every accelerated path against its reference.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "ecc/fixed_base.h"
#include "ecc/koblitz.h"
#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"
#include "gf2m/backend.h"
#include "gf2m/gf2_163.h"
#include "gf2m/gf2_poly.h"
#include "hw/digit_serial.h"
#include "rng/xoshiro.h"

namespace {

using medsec::ecc::Curve;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::gf2m::Backend;
using medsec::gf2m::Gf163;
using medsec::gf2m::Gf2Poly;
using medsec::rng::Xoshiro256;

Gf163 random_fe(Xoshiro256& rng) {
  medsec::bigint::U192 v;
  for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
  return Gf163::from_bits(v);
}

Gf2Poly to_poly(const Gf163& a) {
  Gf2Poly p;
  for (std::size_t i = 0; i < 163; ++i)
    if (a.bit(i)) p.set_bit(i);
  return p;
}

const Gf2Poly kFieldPoly = Gf2Poly::from_exponents({163, 7, 6, 3, 0});

/// RAII: restore whatever backend was active when the test started.
struct BackendGuard {
  Backend saved = medsec::gf2m::active_backend();
  ~BackendGuard() { medsec::gf2m::set_backend(saved); }
};

// --- backend registry --------------------------------------------------------

TEST(Backend, PortableAndKaratsubaAlwaysAvailable) {
  EXPECT_TRUE(medsec::gf2m::backend_available(Backend::kPortable));
  EXPECT_TRUE(medsec::gf2m::backend_available(Backend::kKaratsuba));
  EXPECT_NE(medsec::gf2m::backend_vtable(Backend::kPortable), nullptr);
  EXPECT_NE(medsec::gf2m::backend_vtable(Backend::kKaratsuba), nullptr);
}

TEST(Backend, SetBackendRoundTrips) {
  BackendGuard guard;
  ASSERT_TRUE(medsec::gf2m::set_backend(Backend::kPortable));
  EXPECT_EQ(medsec::gf2m::active_backend(), Backend::kPortable);
  ASSERT_TRUE(medsec::gf2m::set_backend(Backend::kKaratsuba));
  EXPECT_EQ(medsec::gf2m::active_backend(), Backend::kKaratsuba);
  if (!medsec::gf2m::backend_available(Backend::kClmul)) {
    EXPECT_FALSE(medsec::gf2m::set_backend(Backend::kClmul));
    EXPECT_EQ(medsec::gf2m::active_backend(), Backend::kKaratsuba);
  }
}

// --- unreduced product: every backend vs the portable reference -------------

TEST(Backend, UnreducedProductCrossCheck10k) {
  const auto* ref = medsec::gf2m::backend_vtable(Backend::kPortable);
  ASSERT_NE(ref, nullptr);
  Xoshiro256 rng(101);
  for (const Backend b : medsec::gf2m::known_backends()) {
    const auto* vt = medsec::gf2m::backend_vtable(b);
    if (vt == nullptr) continue;  // clmul on hardware without it
    Xoshiro256 case_rng(202);  // same stream for every backend
    for (int iter = 0; iter < 10000; ++iter) {
      std::uint64_t a[3], c[3];
      for (auto& w : a) w = case_rng.next_u64();
      for (auto& w : c) w = case_rng.next_u64();
      a[2] &= 0x7FFFFFFFFULL;
      c[2] &= 0x7FFFFFFFFULL;
      std::uint64_t want[6], got[6];
      ref->mul(a, c, want);
      vt->mul(a, c, got);
      for (int i = 0; i < 6; ++i)
        ASSERT_EQ(got[i], want[i])
            << vt->name << " mul word " << i << " iter " << iter;
      std::uint64_t sq_want[6], sq_got[6];
      ref->mul(a, a, sq_want);
      vt->sqr(a, sq_got);
      for (int i = 0; i < 6; ++i)
        ASSERT_EQ(sq_got[i], sq_want[i])
            << vt->name << " sqr word " << i << " iter " << iter;
    }
    (void)rng;
  }
}

TEST(Backend, ReducedMulAgreesAcrossBackendsAndOracle) {
  BackendGuard guard;
  Xoshiro256 rng(303);
  for (int iter = 0; iter < 200; ++iter) {
    const Gf163 a = random_fe(rng);
    const Gf163 b = random_fe(rng);
    const Gf2Poly want = Gf2Poly::mulmod(to_poly(a), to_poly(b), kFieldPoly);
    for (const Backend bk : medsec::gf2m::known_backends()) {
      if (!medsec::gf2m::set_backend(bk)) continue;
      EXPECT_EQ(to_poly(Gf163::mul(a, b)), want)
          << medsec::gf2m::backend_name(bk);
      EXPECT_EQ(Gf163::sqr(a), Gf163::mul(a, a))
          << medsec::gf2m::backend_name(bk);
    }
  }
}

TEST(Backend, NistCurveVectorsOnEveryBackend) {
  BackendGuard guard;
  for (const Backend bk : medsec::gf2m::known_backends()) {
    if (!medsec::gf2m::set_backend(bk)) continue;
    for (const Curve* c : {&Curve::k163(), &Curve::b163()}) {
      // The NIST base point satisfies the curve equation and has the
      // published prime order — exercises mul, sqr, inv, and the ladder
      // end-to-end on the standard vectors.
      EXPECT_TRUE(c->is_on_curve(c->base_point()))
          << c->name() << " / " << medsec::gf2m::backend_name(bk);
      EXPECT_TRUE(medsec::ecc::montgomery_ladder(*c, c->order(),
                                                 c->base_point())
                      .infinity)
          << c->name() << " / " << medsec::gf2m::backend_name(bk);
      // Field-level fixed vector: gx * gy, checked against the bitwise
      // polynomial oracle (backend-independent).
      const Gf163 prod = Gf163::mul(c->base_point().x, c->base_point().y);
      EXPECT_EQ(to_poly(prod),
                Gf2Poly::mulmod(to_poly(c->base_point().x),
                                to_poly(c->base_point().y), kFieldPoly))
          << c->name() << " / " << medsec::gf2m::backend_name(bk);
    }
  }
}

// --- fused operations --------------------------------------------------------

TEST(Backend, FusedMulAddMulMatchesSeparateOps) {
  BackendGuard guard;
  Xoshiro256 rng(404);
  for (int iter = 0; iter < 200; ++iter) {
    const Gf163 a = random_fe(rng), b = random_fe(rng);
    const Gf163 c = random_fe(rng), d = random_fe(rng);
    for (const Backend bk : medsec::gf2m::known_backends()) {
      if (!medsec::gf2m::set_backend(bk)) continue;
      EXPECT_EQ(Gf163::mul_add_mul(a, b, c, d),
                Gf163::mul(a, b) + Gf163::mul(c, d))
          << medsec::gf2m::backend_name(bk);
      EXPECT_EQ(Gf163::sqr_add_mul(a, c, d),
                Gf163::sqr(a) + Gf163::mul(c, d))
          << medsec::gf2m::backend_name(bk);
    }
  }
}

// --- multi-squaring tables ---------------------------------------------------

TEST(MultiSqr, SqrNMatchesNaiveSquaringChain) {
  Xoshiro256 rng(505);
  for (const unsigned n :
       {1u, 2u, 4u, 5u, 7u, 10u, 20u, 40u, 45u, 81u, 86u, 162u, 163u}) {
    for (int iter = 0; iter < 10; ++iter) {
      const Gf163 a = random_fe(rng);
      Gf163 want = a;
      for (unsigned i = 0; i < n; ++i) want = Gf163::sqr(want);
      EXPECT_EQ(Gf163::sqr_n(a, n), want) << "n=" << n;
    }
  }
}

TEST(MultiSqr, InverseAndSqrtStillCorrect) {
  BackendGuard guard;
  Xoshiro256 rng(606);
  for (const Backend bk : medsec::gf2m::known_backends()) {
    if (!medsec::gf2m::set_backend(bk)) continue;
    for (int iter = 0; iter < 50; ++iter) {
      Gf163 a = random_fe(rng);
      if (a.is_zero()) a = Gf163::one();
      EXPECT_EQ(Gf163::mul(a, Gf163::inv(a)), Gf163::one())
          << medsec::gf2m::backend_name(bk);
      EXPECT_EQ(Gf163::sqrt(Gf163::sqr(a)), a)
          << medsec::gf2m::backend_name(bk);
    }
  }
}

// --- batch inversion ---------------------------------------------------------

TEST(BatchInv, MatchesElementwiseInversion) {
  Xoshiro256 rng(707);
  std::vector<Gf163> batch(100);
  for (auto& e : batch) {
    e = random_fe(rng);
    if (e.is_zero()) e = Gf163::one();
  }
  std::vector<Gf163> expected;
  expected.reserve(batch.size());
  for (const auto& e : batch) expected.push_back(Gf163::inv(e));
  Gf163::batch_inv(batch.data(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(batch[i], expected[i]) << "index " << i;
}

TEST(BatchInv, ZeroElementsAreSkippedNotPoisoning) {
  Xoshiro256 rng(808);
  // Zeros at the front, middle, and back of the batch.
  for (const std::size_t zero_at : {std::size_t{0}, std::size_t{7},
                                    std::size_t{15}}) {
    std::vector<Gf163> batch(16);
    for (auto& e : batch) {
      e = random_fe(rng);
      if (e.is_zero()) e = Gf163::one();
    }
    batch[zero_at] = Gf163::zero();
    std::vector<Gf163> originals = batch;
    Gf163::batch_inv(batch.data(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i == zero_at) {
        EXPECT_TRUE(batch[i].is_zero());
      } else {
        EXPECT_EQ(Gf163::mul(batch[i], originals[i]), Gf163::one())
            << "index " << i << " zero_at " << zero_at;
      }
    }
  }
}

TEST(BatchInv, DegenerateSizes) {
  Gf163::batch_inv(nullptr, 0);  // must not crash
  Gf163 one_elem[1] = {Gf163{5}};
  Gf163::batch_inv(one_elem, 1);
  EXPECT_EQ(Gf163::mul(one_elem[0], Gf163{5}), Gf163::one());
  Gf163 all_zero[3] = {};
  Gf163::batch_inv(all_zero, 3);
  for (const auto& e : all_zero) EXPECT_TRUE(e.is_zero());
}

TEST(BatchInv, LadderBatchRecoveryMatchesSingle) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(909);
  std::vector<Point> bases;
  std::vector<medsec::ecc::LadderState> states;
  std::vector<Point> expected;
  for (int i = 0; i < 8; ++i) {
    const Scalar k = rng.uniform_nonzero(c.order());
    bases.push_back(c.base_point());
    states.push_back(
        medsec::ecc::montgomery_ladder_raw(c, k, c.base_point()));
    expected.push_back(medsec::ecc::montgomery_ladder(c, k, c.base_point()));
  }
  // Include the degenerate k == 0 (mod n) state: z1 == 0 -> infinity.
  bases.push_back(c.base_point());
  states.push_back(
      medsec::ecc::montgomery_ladder_raw(c, c.order(), c.base_point()));
  expected.push_back(Point::at_infinity());

  const std::vector<Point> got =
      medsec::ecc::recover_from_ladder_batch(c, bases, states);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "index " << i;
}

// --- fixed-base comb ---------------------------------------------------------

TEST(FixedBaseComb, MatchesGenericScalarMult) {
  for (const Curve* c : {&Curve::k163(), &Curve::b163()}) {
    const auto& comb = medsec::ecc::generator_comb(*c);
    Xoshiro256 rng(1010);
    for (int i = 0; i < 25; ++i) {
      const Scalar k = rng.uniform_nonzero(c->order());
      medsec::ecc::MultOptions opt;
      opt.algorithm = medsec::ecc::MultAlgorithm::kMontgomeryLadder;
      const Point want =
          medsec::ecc::scalar_mult(*c, k, c->base_point(), opt);
      EXPECT_EQ(comb.mult(k), want) << c->name();
      EXPECT_EQ(comb.mult_ct(k), want) << c->name();
    }
  }
}

TEST(FixedBaseComb, EdgeScalars) {
  const Curve& c = Curve::k163();
  const auto& comb = medsec::ecc::generator_comb(c);
  EXPECT_TRUE(comb.mult(Scalar{}).infinity);
  EXPECT_TRUE(comb.mult_ct(Scalar{}).infinity);
  EXPECT_EQ(comb.mult(Scalar{1}), c.base_point());
  EXPECT_EQ(comb.mult_ct(Scalar{1}), c.base_point());
  EXPECT_TRUE(comb.mult(c.order()).infinity);
  Scalar nm1 = c.order();
  nm1.sub_in_place(Scalar{1});
  EXPECT_EQ(comb.mult(nm1), c.negate(c.base_point()));
  EXPECT_EQ(comb.mult_ct(nm1), c.negate(c.base_point()));
  Scalar np1 = c.order();
  np1.add_in_place(Scalar{1});
  EXPECT_EQ(comb.mult(np1), c.base_point());
}

TEST(FixedBaseComb, LdScalarMultMatchesReference) {
  const Curve& c = Curve::b163();
  Xoshiro256 rng(1111);
  for (int i = 0; i < 10; ++i) {
    const Scalar k = rng.uniform_nonzero(c.order());
    const Point p = medsec::ecc::montgomery_ladder(
        c, rng.uniform_nonzero(c.order()), c.base_point());
    EXPECT_EQ(medsec::ecc::scalar_mult_ld(c, k, p),
              c.scalar_mult_reference(k, p));
  }
}

// --- windowed TNAF -----------------------------------------------------------

TEST(WindowTnaf, DigitPropertiesWidth4) {
  Xoshiro256 rng(1212);
  const Curve& c = Curve::k163();
  for (int i = 0; i < 20; ++i) {
    const Scalar k = rng.uniform_nonzero(c.order());
    const auto digits = medsec::ecc::tau_naf_window_digits(k, 1, 4);
    for (std::size_t j = 0; j < digits.size(); ++j) {
      const int d = digits[j];
      EXPECT_LT(d, 8);
      EXPECT_GT(d, -8);
      if (d != 0) {
        EXPECT_EQ((d % 2 + 2) % 2, 1) << "digit must be odd";
        // Next w-1 = 3 digits are zero.
        for (std::size_t z = 1; z <= 3 && j + z < digits.size(); ++z)
          EXPECT_EQ(digits[j + z], 0) << "at " << j << "+" << z;
      }
    }
  }
}

TEST(WindowTnaf, MultAgreesWithLadderAllWidths) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(1313);
  for (int i = 0; i < 10; ++i) {
    const Scalar k = rng.uniform_nonzero(c.order());
    const Point want = medsec::ecc::montgomery_ladder(c, k, c.base_point());
    EXPECT_EQ(medsec::ecc::tau_naf_mult(c, k, c.base_point()), want);
    for (unsigned w = 2; w <= 5; ++w) {
      const medsec::ecc::TauNafPrecomp pre(c, c.base_point(), w);
      EXPECT_EQ(medsec::ecc::tau_naf_mult(c, k, pre), want) << "width " << w;
    }
  }
  // Cached generator table.
  const Scalar k = rng.uniform_nonzero(c.order());
  EXPECT_EQ(medsec::ecc::tau_naf_mult(
                c, k, medsec::ecc::generator_tau_precomp(c)),
            medsec::ecc::montgomery_ladder(c, k, c.base_point()));
}

// --- digit-serial model fast path -------------------------------------------

TEST(DigitSerial, ProductOnlyMatchesCycleModel) {
  Xoshiro256 rng(1414);
  for (const std::size_t d : {1u, 3u, 4u, 8u, 32u}) {
    const medsec::hw::DigitSerialMultiplier malu(d);
    for (int i = 0; i < 20; ++i) {
      const Gf163 a = random_fe(rng);
      const Gf163 b = random_fe(rng);
      EXPECT_EQ(malu.product_only(a, b), malu.multiply(a, b).product)
          << "digit size " << d;
    }
  }
}

}  // namespace
