// Tests for the engine layer: interleaved multi-scalar multiplication, the
// cofactor-2 fast subgroup gate, batch point decoding, random-linear-
// combination batch verification, and the FleetServer end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

#include "ciphers/aes128.h"
#include "ecc/curve.h"
#include "ecc/scalar_mult.h"
#include "engine/batch_verifier.h"
#include "engine/fleet_server.h"
#include "protocol/mutual_auth.h"
#include "protocol/schnorr.h"
#include "protocol/wire.h"
#include "rng/xoshiro.h"

namespace {

using medsec::ecc::Curve;
using medsec::ecc::Fe;
using medsec::ecc::MsmTerm;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;
namespace proto = medsec::protocol;
namespace engine = medsec::engine;

Point random_subgroup_point(const Curve& c, Xoshiro256& rng) {
  return c.scalar_mult_reference(rng.uniform_nonzero(c.order()),
                                 c.base_point());
}

// --- multi-scalar multiplication ---------------------------------------------

TEST(Msm, MatchesReferenceAcrossSizes) {
  for (const Curve* c : {&Curve::k163(), &Curve::b163()}) {
    Xoshiro256 rng(1);
    for (std::size_t n = 0; n <= 6; ++n) {
      std::vector<MsmTerm> terms(n);
      Point expect = Point::at_infinity();
      for (auto& t : terms) {
        t.k = rng.uniform_nonzero(c->order());
        t.p = random_subgroup_point(*c, rng);
        expect = c->add(expect, c->scalar_mult_reference(t.k, t.p));
      }
      EXPECT_EQ(medsec::ecc::multi_scalar_mult(*c, terms), expect)
          << c->name() << " n=" << n;
    }
  }
}

TEST(Msm, HandlesDegenerateTerms) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(2);
  const Point p = random_subgroup_point(c, rng);
  const Scalar k = rng.uniform_nonzero(c.order());
  // Zero scalars and infinity points contribute nothing.
  const std::vector<MsmTerm> terms{
      {Scalar{}, p}, {k, Point::at_infinity()}, {k, p}};
  EXPECT_EQ(medsec::ecc::multi_scalar_mult(c, terms),
            c.scalar_mult_reference(k, p));
  EXPECT_TRUE(
      medsec::ecc::multi_scalar_mult(c, std::vector<MsmTerm>{}).infinity);
  // Scalars >= order reduce.
  const std::vector<MsmTerm> big{{c.order() + k, p}};
  EXPECT_EQ(medsec::ecc::multi_scalar_mult(c, big),
            c.scalar_mult_reference(k, p));
}

TEST(Msm, DoubleScalarShamir) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(3);
  for (int i = 0; i < 5; ++i) {
    const Point p = random_subgroup_point(c, rng);
    const Point q = random_subgroup_point(c, rng);
    const Scalar a = rng.uniform_nonzero(c.order());
    const Scalar b = rng.uniform_nonzero(c.order());
    EXPECT_EQ(medsec::ecc::double_scalar_mult(c, a, p, b, q),
              c.add(c.scalar_mult_reference(a, p),
                    c.scalar_mult_reference(b, q)));
  }
}

// --- fast subgroup gate ------------------------------------------------------

TEST(SubgroupGate, FastPathAgreesWithExactCheck) {
  for (const Curve* c : {&Curve::k163(), &Curve::b163()}) {
    Xoshiro256 rng(4);
    // Subgroup points: both accept.
    for (int i = 0; i < 8; ++i) {
      const Point p = random_subgroup_point(*c, rng);
      EXPECT_TRUE(c->validate_subgroup_point(p));
      EXPECT_TRUE(c->validate_subgroup_point_exact(p));
    }
    // Arbitrary decompressible x values: the two gates must agree, and
    // both cosets must actually occur (on-curve points in and out of the
    // prime-order subgroup).
    int in_subgroup = 0, out_of_subgroup = 0;
    for (int i = 0; in_subgroup + out_of_subgroup < 24 && i < 400; ++i) {
      medsec::bigint::U192 v;
      for (std::size_t l = 0; l < 3; ++l) v.set_limb(l, rng.next_u64());
      const Fe x = Fe::from_bits(v);
      if (x.is_zero()) continue;
      const auto p = c->decompress({x, static_cast<int>(i & 1)});
      if (!p) continue;
      const bool fast = c->validate_subgroup_point(*p);
      const bool exact = c->validate_subgroup_point_exact(*p);
      EXPECT_EQ(fast, exact) << c->name() << " x=" << x.to_hex();
      ++(fast ? in_subgroup : out_of_subgroup);
    }
    EXPECT_GT(in_subgroup, 0) << c->name();
    EXPECT_GT(out_of_subgroup, 0) << c->name();
  }
}

// --- batch point decoding ----------------------------------------------------

TEST(BatchDecode, AgreesWithSingleDecode) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(5);
  std::vector<std::vector<std::uint8_t>> wires;
  // Valid points.
  for (int i = 0; i < 6; ++i)
    wires.push_back(proto::encode_point(c, random_subgroup_point(c, rng)));
  // Infinity, bad prefix, truncation, garbage, order-2 point, random x.
  wires.push_back(std::vector<std::uint8_t>(1 + proto::kFeBytes, 0x00));
  auto bad_prefix = wires[0];
  bad_prefix[0] = 0x07;
  wires.push_back(bad_prefix);
  wires.push_back({0x02, 0xab});
  wires.push_back(std::vector<std::uint8_t>(1 + proto::kFeBytes, 0xff));
  wires.push_back(
      proto::encode_point(c, Point::affine(Fe::zero(), Fe::sqrt(c.b()))));
  for (int i = 0; i < 40; ++i) {
    std::vector<std::uint8_t> w(1 + proto::kFeBytes);
    rng.fill(w);
    w[0] = (i & 1) ? 0x02 : 0x03;
    w[1] &= 0x07;  // keep the top bits plausible
    wires.push_back(w);
  }

  const auto batch = engine::decode_points_batch(c, wires);
  ASSERT_EQ(batch.size(), wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const auto single = proto::decode_point(c, wires[i]);
    ASSERT_EQ(batch[i].has_value(), single.has_value()) << "entry " << i;
    if (single) EXPECT_EQ(*batch[i], *single) << "entry " << i;
  }
}

// --- batch verification ------------------------------------------------------

std::pair<proto::SchnorrTranscript, Point> honest_transcript(
    const Curve& c, Xoshiro256& rng) {
  const auto kp = proto::schnorr_keygen(c, rng);
  const auto session = proto::run_schnorr_session(c, kp, rng);
  return {session.view, kp.X};
}

TEST(BatchVerify, AcceptsHonestBatchWithOneMsm) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(6);
  std::vector<proto::SchnorrTranscript> ts;
  std::vector<Point> keys;
  for (int i = 0; i < 16; ++i) {
    auto [t, x] = honest_transcript(c, rng);
    ts.push_back(t);
    keys.push_back(x);
  }
  const auto out = engine::schnorr_verify_batch(c, ts, keys, rng);
  EXPECT_TRUE(out.rlc_passed);
  for (const bool ok : out.ok) EXPECT_TRUE(ok);
}

TEST(BatchVerify, FallbackIsolatesTheForgery) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(7);
  std::vector<proto::SchnorrTranscript> ts;
  std::vector<Point> keys;
  for (int i = 0; i < 8; ++i) {
    auto [t, x] = honest_transcript(c, rng);
    ts.push_back(t);
    keys.push_back(x);
  }
  // Forge item 3: response for a different key.
  ts[3].response = c.scalar_ring().add(ts[3].response, Scalar{1});
  const auto out = engine::schnorr_verify_batch(c, ts, keys, rng);
  EXPECT_FALSE(out.rlc_passed);
  for (std::size_t i = 0; i < out.ok.size(); ++i)
    EXPECT_EQ(out.ok[i], i != 3) << i;
}

TEST(BatchVerifierQueue, FlushesAtBatchSizeAndOnDemand) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(8);
  engine::SchnorrBatchVerifier q(c, 4);
  std::atomic<int> accepted{0}, rejected{0};
  const auto submit = [&](bool forge) {
    const auto kp = proto::schnorr_keygen(c, rng);
    proto::SchnorrProver prover(c, kp, rng);
    proto::SchnorrVerifier verifier(c, kp.X, rng,
                                    proto::SchnorrVerifier::Mode::kDeferred);
    proto::Transcript transcript;
    ASSERT_TRUE(proto::drive_session(prover, verifier, transcript));
    engine::PendingTranscript p;
    p.X = forge ? proto::schnorr_keygen(c, rng).X : kp.X;
    p.commitment_wire = verifier.commitment_wire();
    p.challenge = verifier.challenge();
    p.response = verifier.response();
    p.on_result = [&](bool ok) { ++(ok ? accepted : rejected); };
    q.enqueue(std::move(p));
  };
  for (int i = 0; i < 9; ++i) submit(/*forge=*/false);
  // 9 items, batch 4: two flushes fired, one item pending.
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(accepted.load(), 8);
  submit(/*forge=*/true);
  q.flush();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(accepted.load(), 9);
  EXPECT_EQ(rejected.load(), 1);
  const auto st = q.stats();
  EXPECT_EQ(st.items, 10u);
  EXPECT_EQ(st.batches, 3u);
  EXPECT_EQ(st.accepted, 9u);
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.rlc_failures, 1u);
}

// --- fleet server ------------------------------------------------------------

/// Drives N tag-side provers against a FleetServer over its message API.
struct FleetHarness {
  const Curve& c;
  engine::FleetServer server;
  std::mutex mu;
  std::map<std::uint64_t, std::unique_ptr<proto::SchnorrProver>> provers;
  std::map<std::uint64_t, std::unique_ptr<Xoshiro256>> rngs;

  explicit FleetHarness(const Curve& curve, engine::FleetConfig cfg)
      : c(curve),
        server(curve, cfg, [this](std::uint64_t sid, const proto::Message& m) {
          downlink(sid, m);
        }) {}

  void downlink(std::uint64_t sid, const proto::Message& m) {
    std::unique_ptr<proto::SchnorrProver>* prover = nullptr;
    {
      const std::lock_guard<std::mutex> lock(mu);
      const auto it = provers.find(sid);
      if (it == provers.end()) return;  // device went silent mid-protocol
      prover = &it->second;
    }
    const auto r = (*prover)->on_message(m);
    for (const auto& out : r.out) server.deliver(sid, out);
    if ((*prover)->state() == proto::SessionState::kDone)
      server.report_tag_energy(sid, (*prover)->ledger());
  }

  /// Open a session where the tag proves knowledge of `key` against the
  /// enrolled key of `device`.
  std::uint64_t run_tag(std::uint32_t device,
                        const proto::SchnorrKeyPair& key,
                        std::uint64_t seed) {
    const std::uint64_t sid = server.open_schnorr_session(device);
    auto rng = std::make_unique<Xoshiro256>(seed);
    auto prover = std::make_unique<proto::SchnorrProver>(c, key, *rng);
    const auto r = prover->start();
    {
      const std::lock_guard<std::mutex> lock(mu);
      rngs.emplace(sid, std::move(rng));
      provers.emplace(sid, std::move(prover));
    }
    for (const auto& out : r.out) server.deliver(sid, out);
    return sid;
  }
};

TEST(FleetServer, BatchedFleetAcceptsHonestAndIsolatesForged) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(9);
  engine::FleetConfig cfg;
  cfg.worker_threads = 4;
  cfg.verify_batch = 16;

  std::vector<proto::SchnorrKeyPair> keys;
  for (int i = 0; i < 8; ++i) keys.push_back(proto::schnorr_keygen(c, rng));

  FleetHarness h(c, cfg);
  for (const auto& kp : keys) h.server.enroll(kp.X);

  std::vector<std::uint64_t> honest, forged;
  for (int i = 0; i < 40; ++i) {
    const auto device = static_cast<std::uint32_t>(i % keys.size());
    if (i == 17 || i == 31) {
      // Impersonators: prove knowledge of a key that is not the enrolled
      // one for this device.
      forged.push_back(
          h.run_tag(device, proto::schnorr_keygen(c, rng), 1000u + i));
    } else {
      honest.push_back(h.run_tag(device, keys[device], 1000u + i));
    }
  }
  h.server.drain();

  for (const auto sid : honest) {
    const auto rec = h.server.record(sid);
    EXPECT_TRUE(rec.completed) << sid;
    EXPECT_TRUE(rec.accepted) << sid;
    EXPECT_EQ(rec.tag_ledger.ecpm, 1u);
    EXPECT_GT(rec.rx_bits, 0u);
    EXPECT_GT(rec.tx_bits, 0u);
  }
  for (const auto sid : forged) {
    const auto rec = h.server.record(sid);
    EXPECT_TRUE(rec.completed) << sid;
    EXPECT_FALSE(rec.accepted) << sid;
  }

  const auto st = h.server.stats();
  EXPECT_EQ(st.devices, keys.size());
  EXPECT_EQ(st.sessions_opened, 40u);
  EXPECT_EQ(st.sessions_completed, 40u);
  EXPECT_EQ(st.accepted, 38u);
  EXPECT_EQ(st.rejected, 2u);
  EXPECT_EQ(st.verifier.items, 40u);
  EXPECT_GE(st.verifier.rlc_failures, 1u);
  EXPECT_EQ(st.fleet_tag_energy.ecpm, 40u);

  // Records harvested; eviction reclaims every completed session and
  // keeps long-running servers bounded.
  EXPECT_EQ(h.server.evict_completed(), 40u);
  EXPECT_THROW(h.server.record(honest.front()), std::out_of_range);
  EXPECT_EQ(h.server.evict_completed(), 0u);
}

// --- negative paths ----------------------------------------------------------

TEST(BatchVerify, AllForgedBatchRejectsEveryItem) {
  // The RLC equation fails, the per-item fallback runs — and with *every*
  // item forged, nothing may slip through on the strength of the batch.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(20);
  std::vector<proto::SchnorrTranscript> ts;
  std::vector<Point> keys;
  for (int i = 0; i < 8; ++i) {
    auto [t, x] = honest_transcript(c, rng);
    // Forge every response.
    t.response = c.scalar_ring().add(t.response, Scalar{1u + (unsigned)i});
    ts.push_back(t);
    keys.push_back(x);
  }
  const auto out = engine::schnorr_verify_batch(c, ts, keys, rng);
  EXPECT_FALSE(out.rlc_passed);
  for (std::size_t i = 0; i < out.ok.size(); ++i)
    EXPECT_FALSE(out.ok[i]) << i;

  // Same through the queue: 8 forged items, 8 rejections, 1 RLC failure.
  engine::SchnorrBatchVerifier q(c, 8);
  std::atomic<int> accepted{0}, rejected{0};
  for (int i = 0; i < 8; ++i) {
    const auto kp = proto::schnorr_keygen(c, rng);
    proto::SchnorrProver prover(c, kp, rng);
    proto::SchnorrVerifier verifier(c, kp.X, rng,
                                    proto::SchnorrVerifier::Mode::kDeferred);
    proto::Transcript transcript;
    ASSERT_TRUE(proto::drive_session(prover, verifier, transcript));
    engine::PendingTranscript p;
    p.X = proto::schnorr_keygen(c, rng).X;  // wrong key: forged
    p.commitment_wire = verifier.commitment_wire();
    p.challenge = verifier.challenge();
    p.response = verifier.response();
    p.on_result = [&](bool ok) { ++(ok ? accepted : rejected); };
    q.enqueue(std::move(p));
  }
  q.flush();
  EXPECT_EQ(accepted.load(), 0);
  EXPECT_EQ(rejected.load(), 8);
  EXPECT_EQ(q.stats().rlc_failures, 1u);
}

TEST(FleetServer, DoubleEnrollIsRejected) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(21);
  engine::FleetConfig cfg;
  cfg.worker_threads = 1;
  FleetHarness h(c, cfg);
  const auto kp = proto::schnorr_keygen(c, rng);
  const auto idx = h.server.enroll(kp.X);
  EXPECT_EQ(h.server.device_key(idx), kp.X);
  EXPECT_THROW(h.server.enroll(kp.X), std::invalid_argument);
  // A different key still enrolls; the registry is untouched by the
  // rejected attempt.
  EXPECT_EQ(h.server.enroll(proto::schnorr_keygen(c, rng).X), idx + 1);
  EXPECT_EQ(h.server.stats().devices, 2u);
}

TEST(FleetServer, MessageToEvictedSessionIsDropped) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(22);
  engine::FleetConfig cfg;
  cfg.worker_threads = 2;
  cfg.verify_batch = 1;
  const auto kp = proto::schnorr_keygen(c, rng);
  FleetHarness h(c, cfg);
  h.server.enroll(kp.X);
  const auto sid = h.run_tag(0, kp, 7);
  h.server.drain();
  ASSERT_TRUE(h.server.record(sid).completed);
  ASSERT_EQ(h.server.evict_completed(), 1u);

  // A straggler radio frame addressed to the evicted session: dropped
  // without fault, and the engine keeps serving.
  h.server.deliver(sid, proto::Message{"late response", {0xAB, 0xCD}});
  h.server.drain();
  EXPECT_THROW(h.server.record(sid), std::out_of_range);
  const auto st = h.server.stats();
  EXPECT_EQ(st.sessions_completed, 1u);

  const auto sid2 = h.run_tag(0, kp, 8);
  h.server.drain();
  EXPECT_TRUE(h.server.record(sid2).accepted);
}

TEST(FleetServer, EvictCompletedUnderChurnLeavesLiveSessionsUntouched) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(23);
  engine::FleetConfig cfg;
  cfg.worker_threads = 2;
  cfg.verify_batch = 1;
  const auto kp = proto::schnorr_keygen(c, rng);
  FleetHarness h(c, cfg);
  h.server.enroll(kp.X);

  // Wave 1 completes; wave 2 is suspended mid-protocol (commitment
  // delivered, response withheld).
  std::vector<std::uint64_t> done, live;
  for (int i = 0; i < 6; ++i) done.push_back(h.run_tag(0, kp, 100 + i));
  h.server.drain();
  for (int i = 0; i < 4; ++i) {
    const auto sid = h.server.open_schnorr_session(0);
    live.push_back(sid);
    // Commitment only — no prover is registered with the harness, so the
    // server's challenge goes nowhere and the session stays suspended.
    proto::SchnorrProver prover(c, kp, rng);
    for (const auto& out : prover.start().out) h.server.deliver(sid, out);
  }
  h.server.drain();

  const std::size_t evicted = h.server.evict_completed();
  EXPECT_EQ(evicted, done.size());
  for (const auto sid : done)
    EXPECT_THROW(h.server.record(sid), std::out_of_range);
  // Live sessions remain addressable and incomplete.
  for (const auto sid : live) {
    const auto rec = h.server.record(sid);
    EXPECT_FALSE(rec.completed) << sid;
    EXPECT_EQ(rec.state, proto::SessionState::kAwait) << sid;
  }
  // And a fresh wave still completes after the purge.
  const auto sid3 = h.run_tag(0, kp, 200);
  h.server.drain();
  EXPECT_TRUE(h.server.record(sid3).completed);
  EXPECT_EQ(h.server.evict_completed(), 1u);
}

TEST(FleetServer, BatchSizeOneIsIndependentVerification) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(10);
  engine::FleetConfig cfg;
  cfg.worker_threads = 2;
  cfg.verify_batch = 1;
  const auto kp = proto::schnorr_keygen(c, rng);
  FleetHarness h(c, cfg);
  h.server.enroll(kp.X);
  const auto sid = h.run_tag(0, kp, 99);
  h.server.drain();
  const auto rec = h.server.record(sid);
  EXPECT_TRUE(rec.completed);
  EXPECT_TRUE(rec.accepted);
  EXPECT_EQ(h.server.stats().verifier.batches, 1u);
}

TEST(FleetServer, GenericSessionsMultiplexOtherProtocols) {
  // A symmetric mutual-auth session through the same engine: the server
  // machine rides the generic open_session path.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(11);
  proto::CipherFactory aes = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Aes128(key));
  };
  const auto keys = proto::derive_session_keys(
      std::vector<std::uint8_t>(16, 7), 16);
  const std::vector<std::uint8_t> telemetry{'o', 'k'};

  engine::FleetConfig cfg;
  cfg.worker_threads = 2;

  Xoshiro256 tag_rng(12), srv_rng(13);
  proto::MutualAuthTag tag(aes, keys, telemetry, tag_rng);

  std::mutex mu;
  std::uint64_t sid = 0;
  engine::FleetServer server(
      c, cfg,
      [&](std::uint64_t s, const proto::Message& m) {
        const std::lock_guard<std::mutex> lock(mu);
        const auto r = tag.on_message(m);
        for (const auto& out : r.out) server.deliver(s, out);
      });
  sid = server.open_session(
      std::make_unique<proto::MutualAuthServer>(aes, keys, srv_rng),
      [](const proto::SessionMachine& m) {
        const auto& srv = static_cast<const proto::MutualAuthServer&>(m);
        return srv.accepted_tag() && srv.telemetry_delivered();
      });
  for (const auto& out : tag.start().out) server.deliver(sid, out);
  server.drain();

  const auto rec = server.record(sid);
  EXPECT_TRUE(rec.completed);
  EXPECT_TRUE(rec.accepted);
  EXPECT_TRUE(tag.accepted_server());
}

}  // namespace
