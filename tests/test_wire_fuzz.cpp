// Property/fuzz tests for the wire layer: encode/decode round-trips over
// randomized inputs, and rejection of truncated, oversized, bad-prefix and
// invalid-point encodings. Protocol boundaries are exactly where
// invalid-point injection happens, so the decoders are fuzzed both with
// structured mutations of valid encodings and with raw random bytes.
#include <gtest/gtest.h>

#include "ciphers/aes128.h"
#include "ecc/curve.h"
#include "engine/batch_verifier.h"
#include "protocol/ecies.h"
#include "protocol/wire.h"
#include "rng/xoshiro.h"

namespace {

using medsec::bigint::U192;
using medsec::ecc::Curve;
using medsec::ecc::Fe;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;
namespace proto = medsec::protocol;

Fe random_fe(Xoshiro256& rng) {
  U192 v;
  for (std::size_t l = 0; l < 3; ++l) v.set_limb(l, rng.next_u64());
  return Fe::from_bits(v);
}

TEST(WireFuzz, FeRoundTripProperty) {
  Xoshiro256 rng(101);
  for (int i = 0; i < 2000; ++i) {
    const Fe fe = random_fe(rng);
    const auto enc = proto::encode_fe(fe);
    ASSERT_EQ(enc.size(), proto::kFeBytes);
    ASSERT_EQ(proto::decode_fe(enc), fe);
  }
}

TEST(WireFuzz, FeRejectsWrongLengthsAndStrayBits) {
  for (std::size_t len = 0; len <= 2 * proto::kFeBytes; ++len) {
    if (len == proto::kFeBytes) continue;
    EXPECT_THROW(proto::decode_fe(std::vector<std::uint8_t>(len)),
                 std::invalid_argument)
        << len;
  }
  // Every stray bit above position 162 must be rejected individually.
  // Bit 163 + k lives in byte 0, bit position 3 + k (big-endian).
  for (int k = 0; k < 5; ++k) {
    std::vector<std::uint8_t> bad(proto::kFeBytes, 0);
    bad[0] = static_cast<std::uint8_t>(1u << (3 + k));
    EXPECT_THROW(proto::decode_fe(bad), std::invalid_argument) << k;
  }
}

TEST(WireFuzz, ScalarRoundTripProperty) {
  Xoshiro256 rng(102);
  const Curve& c = Curve::k163();
  for (int i = 0; i < 2000; ++i) {
    const Scalar s = rng.uniform_nonzero(c.order());
    ASSERT_EQ(proto::decode_scalar(proto::encode_scalar(s)), s);
  }
  for (const std::size_t len : {0u, 1u, 20u, 22u, 42u})
    EXPECT_THROW(proto::decode_scalar(std::vector<std::uint8_t>(len)),
                 std::invalid_argument)
        << len;
}

TEST(WireFuzz, PointRoundTripProperty) {
  Xoshiro256 rng(103);
  for (const Curve* c : {&Curve::k163(), &Curve::b163()}) {
    for (int i = 0; i < 64; ++i) {
      const Point p = c->scalar_mult_reference(
          rng.uniform_nonzero(c->order()), c->base_point());
      const auto enc = proto::encode_point(*c, p);
      ASSERT_EQ(enc.size(), 1 + proto::kFeBytes);
      EXPECT_TRUE(enc[0] == 0x02 || enc[0] == 0x03);
      const auto dec = proto::decode_point(*c, enc);
      ASSERT_TRUE(dec.has_value());
      ASSERT_EQ(*dec, p);
    }
  }
}

TEST(WireFuzz, PointDecoderRejectionMatrix) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(104);
  const auto good = proto::encode_point(c, c.base_point());

  // Infinity never decodes (the all-zero encoding is reserved on the wire
  // but rejected as a protocol point).
  EXPECT_FALSE(
      proto::decode_point(c, std::vector<std::uint8_t>(1 + proto::kFeBytes)));
  // Every prefix byte except 0x02/0x03 is rejected.
  for (int prefix = 0; prefix < 256; ++prefix) {
    if (prefix == 0x02 || prefix == 0x03) continue;
    auto bad = good;
    bad[0] = static_cast<std::uint8_t>(prefix);
    EXPECT_FALSE(proto::decode_point(c, bad)) << prefix;
  }
  // Every truncation/extension of a valid encoding is rejected.
  for (std::size_t len = 0; len <= 2 * (1 + proto::kFeBytes); ++len) {
    if (len == 1 + proto::kFeBytes) continue;
    std::vector<std::uint8_t> bad(len, 0x02);
    EXPECT_FALSE(proto::decode_point(c, bad)) << len;
  }
  // A stray high bit in x is rejected (decode_fe layer).
  {
    auto bad = good;
    bad[1] |= 0x10;  // bit 164 of x
    EXPECT_FALSE(proto::decode_point(c, bad));
  }
  // The order-2 point (x = 0) is on-curve but outside the subgroup.
  EXPECT_FALSE(proto::decode_point(
      c, proto::encode_point(c, Point::affine(Fe::zero(), Fe::sqrt(c.b())))));
  // An on-curve point outside the prime-order subgroup is rejected even
  // with a well-formed encoding: flip until we find a decompressible x
  // whose point fails validation, then check the decoder agrees.
  int found = 0;
  for (int i = 0; i < 400 && found < 4; ++i) {
    const Fe x = random_fe(rng);
    if (x.is_zero()) continue;
    const auto p = c.decompress({x, i & 1});
    if (!p || c.validate_subgroup_point(*p)) continue;
    ++found;
    EXPECT_FALSE(proto::decode_point(c, proto::encode_point(c, *p)));
  }
  EXPECT_GT(found, 0);
}

TEST(WireFuzz, PointDecoderSurvivesRandomBytes) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(105);
  std::vector<std::vector<std::uint8_t>> wires;
  std::size_t decoded = 0;
  for (int i = 0; i < 3000; ++i) {
    std::vector<std::uint8_t> bytes(1 + proto::kFeBytes);
    rng.fill(bytes);
    if (i % 3 == 0) bytes[0] = 0x02 | (bytes[0] & 1);  // plausible prefix
    if (i % 6 == 0) bytes[1] &= 0x07;                  // plausible top bits
    const auto p = proto::decode_point(c, bytes);
    if (p) {
      ++decoded;
      // Anything the decoder admits must be a valid subgroup point.
      EXPECT_TRUE(c.validate_subgroup_point_exact(*p));
    }
    wires.push_back(std::move(bytes));
  }
  // The batch decoder must agree with the single decoder on every input.
  const auto batch = medsec::engine::decode_points_batch(c, wires);
  for (std::size_t i = 0; i < wires.size(); ++i) {
    const auto single = proto::decode_point(c, wires[i]);
    ASSERT_EQ(batch[i].has_value(), single.has_value()) << i;
    if (single) ASSERT_EQ(*batch[i], *single) << i;
  }
  (void)decoded;  // hit rate is curve-dependent; agreement is the property
}

TEST(WireFuzz, EciesBlobRoundTripAndTruncation) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(106);
  proto::CipherFactory aes = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Aes128(key));
  };
  const auto kp = proto::ecies_keygen(c, rng);
  const std::vector<std::uint8_t> msg{'e', 'c', 'g', ':', 'o', 'k'};
  const auto ct = proto::ecies_encrypt(c, kp.Y, msg, aes, 16, rng);
  const auto blob = proto::encode_ecies(c, ct);

  const std::size_t nonce_bytes = ct.nonce.size();
  const std::size_t tag_bytes = ct.tag.size();
  const auto dec = proto::decode_ecies(c, blob, nonce_bytes, tag_bytes);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->ephemeral, ct.ephemeral);
  EXPECT_EQ(dec->nonce, ct.nonce);
  EXPECT_EQ(dec->body, ct.body);
  EXPECT_EQ(dec->tag, ct.tag);
  const auto plain = proto::ecies_decrypt(c, kp.y, *dec, aes, 16);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, msg);

  // Too short to hold point + nonce + tag: rejected, never UB.
  for (std::size_t len = 0; len < 22 + nonce_bytes + tag_bytes; ++len) {
    const std::vector<std::uint8_t> trunc{blob.begin(),
                                          blob.begin() + len};
    EXPECT_FALSE(proto::decode_ecies(c, trunc, nonce_bytes, tag_bytes))
        << len;
  }
  // A corrupted ephemeral point is caught at decode time.
  auto bad = blob;
  bad[0] = 0x09;
  EXPECT_FALSE(proto::decode_ecies(c, bad, nonce_bytes, tag_bytes));
}

TEST(WireFuzz, RunEciesUploadDriver) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(107);
  proto::CipherFactory aes = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Aes128(key));
  };
  const auto kp = proto::ecies_keygen(c, rng);
  const std::vector<std::uint8_t> msg(48, 0x5A);
  const auto r = proto::run_ecies_upload(c, kp, msg, aes, 16, rng);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.plaintext, msg);
  EXPECT_EQ(r.tag_ledger.ecpm, 2u);  // comb + ladder
  EXPECT_EQ(r.transcript.tag_to_reader.size(), 1u);
  EXPECT_EQ(r.tag_ledger.tx_bits, r.transcript.tag_tx_bits());

  // Tampered blob: receiver rejects, nothing delivered.
  proto::EciesUploader device(c, kp.Y, msg, aes, 16, rng);
  proto::EciesReceiver clinic(c, kp.y, aes, 16);
  proto::Transcript transcript;
  proto::SessionTap tap;
  tap.tag_to_reader = [](proto::Message& m) { m.payload.back() ^= 0x01; };
  EXPECT_FALSE(proto::drive_session(device, clinic, transcript, tap));
  EXPECT_FALSE(clinic.delivered());
}

}  // namespace
