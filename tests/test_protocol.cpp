// Tests for the protocol layer: wire encoding, Schnorr, Peeters–Hermans
// (completeness, soundness, workload accounting), mutual authentication
// with failure injection, the privacy game, and energy accounting.
#include <gtest/gtest.h>

#include "ciphers/aes128.h"
#include "ciphers/present.h"
#include "ecc/curve.h"
#include "protocol/energy_ledger.h"
#include "protocol/mutual_auth.h"
#include "protocol/peeters_hermans.h"
#include "protocol/privacy_game.h"
#include "protocol/schnorr.h"
#include "protocol/wire.h"
#include "rng/xoshiro.h"

namespace {

using medsec::ecc::Curve;
using medsec::ecc::Fe;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;
namespace proto = medsec::protocol;

// --- wire encoding -----------------------------------------------------------

TEST(Wire, FeRoundTrip) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i) {
    medsec::bigint::U192 v;
    for (std::size_t l = 0; l < 3; ++l) v.set_limb(l, rng.next_u64());
    const Fe fe = Fe::from_bits(v);
    EXPECT_EQ(proto::decode_fe(proto::encode_fe(fe)), fe);
  }
  EXPECT_THROW(proto::decode_fe(std::vector<std::uint8_t>(5)),
               std::invalid_argument);
  // A stray bit above position 162 must be rejected.
  std::vector<std::uint8_t> bad(proto::kFeBytes, 0);
  bad[0] = 0x10;  // bit 164
  EXPECT_THROW(proto::decode_fe(bad), std::invalid_argument);
}

TEST(Wire, ScalarRoundTrip) {
  Xoshiro256 rng(2);
  const Curve& c = Curve::k163();
  for (int i = 0; i < 10; ++i) {
    const Scalar s = rng.uniform_nonzero(c.order());
    EXPECT_EQ(proto::decode_scalar(proto::encode_scalar(s)), s);
  }
}

TEST(Wire, PointRoundTripValidatesSubgroup) {
  const Curve& c = Curve::k163();
  const auto enc = proto::encode_point(c, c.base_point());
  EXPECT_EQ(enc.size(), 1 + proto::kFeBytes);
  const auto dec = proto::decode_point(c, enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, c.base_point());

  // Infinity and malformed prefixes are rejected.
  EXPECT_FALSE(proto::decode_point(
      c, std::vector<std::uint8_t>(1 + proto::kFeBytes, 0x00)));
  auto bad = enc;
  bad[0] = 0x07;
  EXPECT_FALSE(proto::decode_point(c, bad));
  EXPECT_FALSE(proto::decode_point(c, std::vector<std::uint8_t>(3, 1)));

  // The order-2 point (x = 0) is on-curve but outside the subgroup: the
  // invalid-point injection the decoder must catch.
  const Point two_torsion =
      Point::affine(Fe::zero(), Fe::sqrt(c.b()));
  const auto enc2 = proto::encode_point(c, two_torsion);
  EXPECT_FALSE(proto::decode_point(c, enc2));
}

TEST(Wire, FeToScalarReduces) {
  const Curve& c = Curve::k163();
  const Scalar s = proto::fe_to_scalar_mod_order(c, Fe{0xdeadbeef});
  EXPECT_EQ(s, Scalar{0xdeadbeef});
  // A large x-coordinate reduces below the order.
  const Fe big{~0ull, ~0ull, (1ull << 35) - 1};
  EXPECT_LT(proto::fe_to_scalar_mod_order(c, big), c.order());
}

// --- Schnorr ------------------------------------------------------------------

TEST(Schnorr, CompletenessOverRandomKeys) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(10);
  for (int i = 0; i < 5; ++i) {
    const auto kp = proto::schnorr_keygen(c, rng);
    const auto session = proto::run_schnorr_session(c, kp, rng);
    EXPECT_TRUE(session.accepted);
  }
}

TEST(Schnorr, SoundnessRejectsWrongKeyAndTamperedResponse) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(11);
  const auto kp = proto::schnorr_keygen(c, rng);
  const auto other = proto::schnorr_keygen(c, rng);
  auto session = proto::run_schnorr_session(c, kp, rng);
  EXPECT_FALSE(proto::schnorr_verify(c, other.X, session.view));
  auto tampered = session.view;
  tampered.response = c.scalar_ring().add(tampered.response, Scalar{1});
  EXPECT_FALSE(proto::schnorr_verify(c, kp.X, tampered));
  auto infinity = session.view;
  infinity.commitment = Point::at_infinity();
  EXPECT_FALSE(proto::schnorr_verify(c, kp.X, infinity));
}

TEST(Schnorr, TranscriptLinksToPublicKey) {
  // The traceability defect the paper calls out.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(12);
  const auto kp = proto::schnorr_keygen(c, rng);
  const auto other = proto::schnorr_keygen(c, rng);
  const auto session = proto::run_schnorr_session(c, kp, rng);
  EXPECT_TRUE(proto::schnorr_links(c, kp.X, session.view));
  EXPECT_FALSE(proto::schnorr_links(c, other.X, session.view));
}

TEST(Schnorr, TagWorkloadAccounting) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(13);
  const auto kp = proto::schnorr_keygen(c, rng);
  const auto session = proto::run_schnorr_session(c, kp, rng);
  EXPECT_EQ(session.tag_ledger.ecpm, 1u);  // R_c = r·P only
  EXPECT_EQ(session.tag_ledger.modmul, 1u);
  EXPECT_GT(session.tag_ledger.tx_bits, 0u);
  EXPECT_GT(session.tag_ledger.rx_bits, 0u);
}

// --- Peeters–Hermans ------------------------------------------------------------

class PhFixture : public ::testing::Test {
 protected:
  const Curve& c = Curve::k163();
  Xoshiro256 rng{20};
  proto::PhReader reader;
  std::vector<proto::PhTag> tags;

  void SetUp() override {
    reader = proto::ph_setup_reader(c, rng);
    for (int i = 0; i < 4; ++i)
      tags.push_back(proto::ph_register_tag(c, reader, rng));
  }
};

TEST_F(PhFixture, CompletenessIdentifiesTheRightTag) {
  for (const auto& tag : tags) {
    const auto session = proto::run_ph_session(c, tag, reader, rng);
    ASSERT_TRUE(session.identified);
    EXPECT_EQ(*session.identity, tag.registered_index);
  }
}

TEST_F(PhFixture, UnregisteredTagIsRejected) {
  proto::PhReader other = proto::ph_setup_reader(c, rng);
  proto::PhTag stranger = proto::ph_register_tag(c, other, rng);
  stranger.Y = reader.Y;  // provisioned for our reader, never registered
  const auto session = proto::run_ph_session(c, stranger, reader, rng);
  EXPECT_FALSE(session.identified);
}

TEST_F(PhFixture, TamperedResponseIsRejected) {
  const auto session = proto::run_ph_session(c, tags[0], reader, rng);
  auto view = session.view;
  view.response = c.scalar_ring().add(view.response, Scalar{1});
  EXPECT_FALSE(proto::ph_reader_identify(c, reader, view).has_value());
  auto bad = session.view;
  bad.commitment = Point::at_infinity();
  EXPECT_FALSE(proto::ph_reader_identify(c, reader, bad).has_value());
}

TEST_F(PhFixture, TagCostIsTwoEcpmOneModmul) {
  // §4: "the main operation on the tag is two point multiplications
  // (namely, r·P and r·Y), and one modular multiplication (namely, er)."
  const auto session = proto::run_ph_session(c, tags[0], reader, rng);
  EXPECT_EQ(session.tag_ledger.ecpm, 2u);
  EXPECT_EQ(session.tag_ledger.modmul, 1u);
}

TEST_F(PhFixture, WrongChallengeDoesNotIdentify) {
  proto::EnergyLedger ledger;
  const auto ts = proto::ph_tag_commit(c, tags[1], rng, ledger);
  const Scalar e1 = rng.uniform_nonzero(c.order());
  const Scalar e2 = rng.uniform_nonzero(c.order());
  const Scalar s = proto::ph_tag_respond(c, tags[1], ts, e1, rng, ledger);
  // Reader pairing the response with a different challenge must fail.
  const auto id = proto::ph_reader_identify(
      c, reader, proto::PhTranscript{ts.commitment, e2, s});
  EXPECT_FALSE(id.has_value());
}

// --- privacy game ----------------------------------------------------------------

TEST(PrivacyGame, SchnorrIsTraceable) {
  const auto r = proto::run_privacy_game(Curve::k163(),
                                         proto::GameProtocol::kSchnorr, 40);
  EXPECT_EQ(r.correct_guesses, r.trials);  // tracing test always resolves
  EXPECT_EQ(r.tracing_test_fired, r.trials);
  EXPECT_DOUBLE_EQ(r.advantage, 1.0);
}

TEST(PrivacyGame, PeetersHermansIsNot) {
  const auto r = proto::run_privacy_game(
      Curve::k163(), proto::GameProtocol::kPeetersHermans, 40);
  EXPECT_EQ(r.tracing_test_fired, 0u);  // the test never resolves
  EXPECT_LT(r.advantage, 0.35);         // statistical coin flipping
}

// --- mutual authentication --------------------------------------------------------

struct MutualAuthFixture : public ::testing::Test {
  proto::CipherFactory aes = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Aes128(key));
  };
  std::vector<std::uint8_t> master{1, 2, 3, 4, 5, 6, 7, 8,
                                   9, 10, 11, 12, 13, 14, 15, 16};
  proto::SharedKeys keys = proto::derive_session_keys(master, 16);
  std::vector<std::uint8_t> telemetry{'h', 'r', '=', '7', '2',
                                      'b', 'p', 'm', '!', '!'};
  Xoshiro256 rng{30};
};

TEST_F(MutualAuthFixture, HonestSessionDeliversTelemetry) {
  const auto r =
      proto::run_mutual_auth(aes, keys, telemetry, rng);
  EXPECT_TRUE(r.tag_accepted_server);
  EXPECT_TRUE(r.server_accepted_tag);
  EXPECT_TRUE(r.telemetry_delivered);
  EXPECT_EQ(r.delivered_telemetry, telemetry);
  EXPECT_FALSE(r.tag_ledger.aborted_early);
}

TEST_F(MutualAuthFixture, KeyDerivationSeparatesRoles) {
  EXPECT_NE(keys.enc_key, keys.mac_key);
  EXPECT_EQ(keys.enc_key.size(), 16u);
}

TEST_F(MutualAuthFixture, ImpersonatedServerAbortsEarlyAndCheaply) {
  proto::MutualAuthFaults faults;
  faults.wrong_server_key = true;
  const auto r = proto::run_mutual_auth(aes, keys, telemetry, rng, {}, faults);
  EXPECT_FALSE(r.tag_accepted_server);
  EXPECT_TRUE(r.tag_ledger.aborted_early);
  EXPECT_FALSE(r.telemetry_delivered);

  // §4's energy lever: with server-first ordering the failed session must
  // be much cheaper than with the naive ordering.
  proto::MutualAuthConfig naive;
  naive.server_first = false;
  const auto r2 =
      proto::run_mutual_auth(aes, keys, telemetry, rng, naive, faults);
  EXPECT_FALSE(r2.tag_accepted_server);
  EXPECT_GT(r2.tag_ledger.cipher_blocks, r.tag_ledger.cipher_blocks);
}

TEST_F(MutualAuthFixture, TamperedCiphertextIsNotDelivered) {
  // "a modification on the ciphertext may also lead to a corrupted
  // therapy" — the MAC must catch it.
  proto::MutualAuthFaults faults;
  faults.tamper_ciphertext = true;
  const auto r = proto::run_mutual_auth(aes, keys, telemetry, rng, {}, faults);
  EXPECT_TRUE(r.tag_accepted_server);
  EXPECT_TRUE(r.server_accepted_tag);
  EXPECT_FALSE(r.telemetry_delivered);
}

TEST_F(MutualAuthFixture, ImpersonatedTagIsRejected) {
  proto::MutualAuthFaults faults;
  faults.tamper_tag_mac = true;
  const auto r = proto::run_mutual_auth(aes, keys, telemetry, rng, {}, faults);
  EXPECT_FALSE(r.server_accepted_tag);
  EXPECT_FALSE(r.telemetry_delivered);
}

TEST_F(MutualAuthFixture, WorksWithLightweightCipherToo) {
  proto::CipherFactory present = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Present(key));  // 16-byte key -> PRESENT-128
  };
  const auto k2 = proto::derive_session_keys(master, 16);
  const auto r = proto::run_mutual_auth(present, k2, telemetry, rng);
  EXPECT_TRUE(r.telemetry_delivered);
  EXPECT_EQ(r.delivered_telemetry, telemetry);
}

// --- session state machines --------------------------------------------------------
//
// The run_* functions above already exercise the machines (they are thin
// drivers over them); these tests drive the message API directly:
// step-by-step resumption, deferred verification, and in-flight tampering.

TEST(SessionMachines, SchnorrStepByStep) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(40);
  const auto kp = proto::schnorr_keygen(c, rng);
  proto::SchnorrProver prover(c, kp, rng);
  proto::SchnorrVerifier verifier(c, kp.X, rng);

  // start() -> commitment; both sides suspended between every message.
  auto r1 = prover.start();
  ASSERT_EQ(r1.out.size(), 1u);
  EXPECT_EQ(prover.state(), proto::SessionState::kAwait);
  auto r2 = verifier.on_message(r1.out[0]);  // -> challenge
  ASSERT_EQ(r2.out.size(), 1u);
  EXPECT_EQ(verifier.state(), proto::SessionState::kAwait);
  auto r3 = prover.on_message(r2.out[0]);  // -> response, prover done
  ASSERT_EQ(r3.out.size(), 1u);
  EXPECT_EQ(prover.state(), proto::SessionState::kDone);
  auto r4 = verifier.on_message(r3.out[0]);
  EXPECT_TRUE(r4.out.empty());
  EXPECT_EQ(verifier.state(), proto::SessionState::kDone);
  EXPECT_TRUE(verifier.accepted());
  EXPECT_EQ(prover.ledger().ecpm, 1u);
}

TEST(SessionMachines, SchnorrTamperedResponseFailsVerifier) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(41);
  const auto kp = proto::schnorr_keygen(c, rng);
  proto::SchnorrProver prover(c, kp, rng);
  proto::SchnorrVerifier verifier(c, kp.X, rng);
  proto::Transcript transcript;
  proto::SessionTap tap;
  std::size_t n = 0;
  tap.tag_to_reader = [&n](proto::Message& m) {
    if (++n == 2) m.payload[0] ^= 0x01;  // flip a response bit in flight
  };
  EXPECT_FALSE(proto::drive_session(prover, verifier, transcript, tap));
  EXPECT_EQ(verifier.state(), proto::SessionState::kFailed);
  EXPECT_FALSE(verifier.accepted());
}

TEST(SessionMachines, SchnorrDeferredModeExposesWireTranscript) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(42);
  const auto kp = proto::schnorr_keygen(c, rng);
  proto::SchnorrProver prover(c, kp, rng);
  proto::SchnorrVerifier verifier(c, kp.X, rng,
                                  proto::SchnorrVerifier::Mode::kDeferred);
  proto::Transcript transcript;
  EXPECT_TRUE(proto::drive_session(prover, verifier, transcript));
  // Deferred mode finishes without verifying; the raw material checks out
  // when decoded later (what the engine's batch queue does).
  const auto rc = proto::decode_point(c, verifier.commitment_wire());
  ASSERT_TRUE(rc.has_value());
  EXPECT_TRUE(proto::schnorr_verify(
      c, kp.X,
      proto::SchnorrTranscript{*rc, verifier.challenge(),
                               verifier.response()}));
}

TEST(SessionMachines, PhMachinesMatchRunFunction) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(43);
  proto::PhReader reader = proto::ph_setup_reader(c, rng);
  const auto tag = proto::ph_register_tag(c, reader, rng);
  proto::PhTagMachine tag_sm(c, tag, rng);
  proto::PhReaderMachine reader_sm(c, reader, rng);
  proto::Transcript transcript;
  EXPECT_TRUE(proto::drive_session(tag_sm, reader_sm, transcript));
  ASSERT_TRUE(reader_sm.identity().has_value());
  EXPECT_EQ(*reader_sm.identity(), tag.registered_index);
  EXPECT_EQ(tag_sm.ledger().ecpm, 2u);
  EXPECT_EQ(tag_sm.ledger().modmul, 1u);
  EXPECT_EQ(transcript.tag_to_reader.size(), 2u);
  EXPECT_EQ(transcript.reader_to_tag.size(), 1u);
}

TEST(SessionMachines, MutualAuthMachinesStepAndAbort) {
  proto::CipherFactory aes = [](std::span<const std::uint8_t> key) {
    return std::unique_ptr<medsec::ciphers::BlockCipher>(
        new medsec::ciphers::Aes128(key));
  };
  const auto keys = proto::derive_session_keys(
      std::vector<std::uint8_t>(16, 3), 16);
  const std::vector<std::uint8_t> telemetry{'t'};
  Xoshiro256 rng(44);

  // Honest run through the machines.
  proto::MutualAuthTag tag(aes, keys, telemetry, rng);
  proto::MutualAuthServer server(aes, keys, rng);
  proto::Transcript transcript;
  EXPECT_TRUE(proto::drive_session(tag, server, transcript));
  EXPECT_TRUE(tag.accepted_server());
  EXPECT_TRUE(server.accepted_tag());
  EXPECT_EQ(server.telemetry(), telemetry);

  // An impersonator server machine: the tag aborts before the heavy work.
  auto bad_keys = keys;
  for (auto& b : bad_keys.mac_key) b ^= 0xFF;
  proto::MutualAuthTag tag2(aes, keys, telemetry, rng);
  proto::MutualAuthServer impostor(aes, bad_keys, rng);
  proto::Transcript t2;
  EXPECT_FALSE(proto::drive_session(tag2, impostor, t2));
  EXPECT_FALSE(tag2.accepted_server());
  EXPECT_TRUE(tag2.ledger().aborted_early);
  EXPECT_EQ(tag2.state(), proto::SessionState::kFailed);
}

// --- energy accounting -------------------------------------------------------------

TEST(EnergyLedger, SessionEnergyComposition) {
  proto::EnergyLedger l;
  l.ecpm = 2;
  l.modmul = 1;
  l.tx_bits = 400;
  l.rx_bits = 168;
  const proto::TagCostModel cost;
  const auto radio = medsec::hw::RadioModel::ban();
  const double compute = cost.compute_energy_j(l);
  EXPECT_NEAR(compute, 2 * 5.1e-6 + 0.12e-6, 1e-9);
  const double near = cost.session_energy_j(l, radio, 0.5);
  const double far = cost.session_energy_j(l, radio, 20.0);
  EXPECT_GT(far, near);  // distance only affects the radio part
  EXPECT_NEAR(far - near,
              radio.tx_energy_j(400, 20.0) - radio.tx_energy_j(400, 0.5),
              1e-12);
}

TEST(EnergyLedger, AccumulationOperator) {
  proto::EnergyLedger a, b;
  a.ecpm = 1;
  b.ecpm = 2;
  b.cipher_blocks = 7;
  a += b;
  EXPECT_EQ(a.ecpm, 3u);
  EXPECT_EQ(a.cipher_blocks, 7u);
}

}  // namespace
