// Tests for the batch field layer (Gf163xN + lane backends) and the
// lockstep batched ladder: every wide backend must be bit-identical to
// the scalar arithmetic, lane by lane, including the reduction edge
// patterns and the per-iteration leakage taps.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "ecc/ladder_many.h"
#include "gf2m/backend.h"
#include "gf2m/gf163_lanes.h"
#include "rng/xoshiro.h"

namespace {

using medsec::bigint::U192;
using medsec::gf2m::Gf163;
using medsec::gf2m::Gf163xN;
using medsec::gf2m::LaneBackend;
using medsec::rng::Xoshiro256;
namespace gf = medsec::gf2m;
namespace ecc = medsec::ecc;

Gf163 rand_fe(Xoshiro256& rng) {
  U192 v;
  for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
  return Gf163::from_bits(v);
}

Gf163 bit_fe(unsigned i) {
  std::uint64_t l[3] = {0, 0, 0};
  l[i / 64] = 1ull << (i % 64);
  return Gf163{l[0], l[1], l[2]};
}

/// Random operands plus the reduction edge patterns: top coefficients,
/// limb boundaries, the pentanomial bits, all-ones.
std::vector<Gf163> operand_set(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Gf163> out;
  out.reserve(n);
  const Gf163 edges[] = {
      Gf163::zero(),
      Gf163::one(),
      bit_fe(162),  // top coefficient: every product spills maximally
      bit_fe(161),
      bit_fe(63),
      bit_fe(64),
      bit_fe(127),
      bit_fe(128),
      bit_fe(7) + bit_fe(6) + bit_fe(3) + Gf163::one(),  // x^163 mod f
      Gf163{~0ull, ~0ull, 0x7FFFFFFFFull},               // all 163 ones
      bit_fe(162) + bit_fe(128) + bit_fe(64) + Gf163::one(),
  };
  for (const Gf163& e : edges) out.push_back(e);
  while (out.size() < n) out.push_back(rand_fe(rng));
  return out;
}

class LaneBackends : public ::testing::TestWithParam<LaneBackend> {
 protected:
  void SetUp() override {
    if (!gf::lane_backend_available(GetParam()))
      GTEST_SKIP() << "lane backend unavailable on this CPU";
    ASSERT_TRUE(gf::set_lane_backend(GetParam()));
  }
  void TearDown() override { gf::reset_lane_backend(); }
};

TEST_P(LaneBackends, TenThousandOperandSetsMatchScalar) {
  // >= 10k operand sets per op (issue acceptance), including the edge
  // patterns, in several differently-sized batches to cover the 64-lane
  // bitsliced block tails.
  const std::size_t kSizes[] = {1, 3, 63, 64, 65, 130, 1024, 8750};
  std::uint64_t seed = 1;
  std::size_t total = 0;
  for (const std::size_t n : kSizes) {
    const auto av = operand_set(n, seed += 11);
    const auto bv = operand_set(n, seed += 11);
    const auto cv = operand_set(n, seed += 11);
    const auto dv = operand_set(n, seed += 11);
    Gf163xN a(n), b(n), c(n), d(n), out(n);
    for (std::size_t i = 0; i < n; ++i) {
      a.set(i, av[i]);
      b.set(i, bv[i]);
      c.set(i, cv[i]);
      d.set(i, dv[i]);
    }

    Gf163xN::mul(a, b, out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out.get(i), Gf163::mul(av[i], bv[i])) << "mul lane " << i;
    Gf163xN::sqr(a, out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out.get(i), Gf163::sqr(av[i])) << "sqr lane " << i;
    Gf163xN::mul_add_mul(a, b, c, d, out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out.get(i), Gf163::mul_add_mul(av[i], bv[i], cv[i], dv[i]))
          << "mul_add_mul lane " << i;
    Gf163xN::sqr_add_mul(a, b, c, out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out.get(i), Gf163::sqr_add_mul(av[i], bv[i], cv[i]))
          << "sqr_add_mul lane " << i;
    total += n;
  }
  EXPECT_GE(total, 10000u);
}

TEST_P(LaneBackends, OutputMayAliasInput) {
  const std::size_t n = 100;
  const auto av = operand_set(n, 77);
  const auto bv = operand_set(n, 78);
  Gf163xN a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, av[i]);
    b.set(i, bv[i]);
  }
  Gf163xN::mul(a, b, a);  // in-place
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(a.get(i), Gf163::mul(av[i], bv[i]));
}

TEST_P(LaneBackends, BatchedLadderMatchesScalarLadder) {
  const ecc::Curve& curve = ecc::Curve::k163();
  Xoshiro256 rng(5);
  const std::size_t n = 37;  // odd: exercises lane-group tails
  std::vector<ecc::Scalar> ks(n);
  std::vector<ecc::Point> ps(n);
  std::vector<std::pair<ecc::Fe, ecc::Fe>> rands(n);
  for (std::size_t i = 0; i < n; ++i) {
    ks[i] = rng.uniform_nonzero(curve.order());
    ps[i] = curve.scalar_mult_reference(rng.uniform_nonzero(curve.order()),
                                        curve.base_point());
    ecc::Fe l1 = rand_fe(rng), l2 = rand_fe(rng);
    if (l1.is_zero()) l1 = ecc::Fe::one();
    if (l2.is_zero()) l2 = ecc::Fe::one();
    rands[i] = {l1, l2};
  }

  for (const bool randomized : {false, true}) {
    ecc::BatchLadderOptions bo;
    if (randomized) bo.randomizers = rands.data();
    std::vector<std::vector<int>> batch_hw(n);
    bo.observer = [&](std::size_t, const ecc::LadderLanes& s) {
      std::vector<int> hw(n);
      s.hamming_weights(hw.data());
      for (std::size_t i = 0; i < n; ++i) {
        batch_hw[i].push_back(hw[i]);
        // bulk form must agree with the per-lane form
        ASSERT_EQ(hw[i], s.hamming_weight(i));
      }
    };
    const auto batch = ecc::ladder_many(curve, ks.data(), ps.data(), n, bo);

    for (std::size_t i = 0; i < n; ++i) {
      ecc::LadderOptions lo;
      if (randomized) lo.known_randomizers = rands[i];
      std::vector<int> scalar_hw;
      lo.observer = [&](const ecc::LadderObservation& ob) {
        int hw = 0;
        for (const ecc::Fe* f : {&ob.x1, &ob.z1, &ob.x2, &ob.z2})
          for (std::size_t l = 0; l < 3; ++l)
            hw += std::popcount(f->limb(l));
        scalar_hw.push_back(hw);
      };
      const ecc::LadderState ref =
          ecc::montgomery_ladder_raw(curve, ks[i], ps[i], lo);
      EXPECT_EQ(ref.x1, batch[i].x1) << "lane " << i;
      EXPECT_EQ(ref.z1, batch[i].z1) << "lane " << i;
      EXPECT_EQ(ref.x2, batch[i].x2) << "lane " << i;
      EXPECT_EQ(ref.z2, batch[i].z2) << "lane " << i;
      EXPECT_EQ(scalar_hw, batch_hw[i]) << "leakage tap mismatch, lane " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLaneBackends, LaneBackends,
    ::testing::Values(LaneBackend::kLaneScalar, LaneBackend::kLaneBitsliced,
                      LaneBackend::kLaneClmulWide),
    [](const auto& info) {
      switch (info.param) {
        case LaneBackend::kLaneScalar:
          return "Scalar";
        case LaneBackend::kLaneBitsliced:
          return "Bitsliced";
        default:
          return "ClmulWide";
      }
    });

TEST(Gf163xN, SetGetRoundTripAndCswap) {
  Xoshiro256 rng(9);
  const std::size_t n = 130;
  const auto av = operand_set(n, 100);
  const auto bv = operand_set(n, 101);
  Gf163xN a(n), b(n);
  std::vector<std::uint8_t> choice(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, av[i]);
    b.set(i, bv[i]);
    choice[i] = static_cast<std::uint8_t>(rng.next_u64() & 1);
  }
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a.get(i), av[i]);

  Gf163xN::cswap(choice.data(), a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.get(i), choice[i] ? bv[i] : av[i]);
    EXPECT_EQ(b.get(i), choice[i] ? av[i] : bv[i]);
  }
}

TEST(Gf163xN, AddIsLaneWiseXor) {
  const std::size_t n = 17;
  const auto av = operand_set(n, 200);
  const auto bv = operand_set(n, 201);
  Gf163xN a(n), b(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, av[i]);
    b.set(i, bv[i]);
  }
  Gf163xN::add(a, b, out);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out.get(i), av[i] + bv[i]);
}

TEST(LaneRegistry, DispatchFollowsScalarBackendAndEnvOverride) {
  // Auto selection maps the scalar backend to its wide counterpart.
  const gf::Backend prev = gf::active_backend();
  gf::reset_lane_backend();
  if (gf::backend_available(gf::Backend::kClmul) &&
      gf::lane_backend_available(LaneBackend::kLaneClmulWide)) {
    gf::set_backend(gf::Backend::kClmul);
    EXPECT_EQ(gf::active_lane_backend(), LaneBackend::kLaneClmulWide);
  }
  gf::set_backend(gf::Backend::kPortable);
  EXPECT_EQ(gf::active_lane_backend(), LaneBackend::kLaneBitsliced);
  gf::set_backend(gf::Backend::kKaratsuba);
  EXPECT_EQ(gf::active_lane_backend(), LaneBackend::kLaneScalar);

  // Pinning wins over the scalar backend; reset restores auto.
  ASSERT_TRUE(gf::set_lane_backend(LaneBackend::kLaneBitsliced));
  gf::set_backend(gf::Backend::kKaratsuba);
  EXPECT_EQ(gf::active_lane_backend(), LaneBackend::kLaneBitsliced);
  gf::reset_lane_backend();
  EXPECT_EQ(gf::active_lane_backend(), LaneBackend::kLaneScalar);

  gf::set_backend(prev);
  gf::reset_lane_backend();

  // Every lane backend reports a name and a nonzero preferred width.
  for (const LaneBackend b : gf::known_lane_backends()) {
    EXPECT_STRNE(gf::lane_backend_name(b), "?");
    if (const auto* vt = gf::lane_vtable(b)) {
      EXPECT_GE(vt->preferred_width, 1u);
      EXPECT_EQ(vt->id, b);
    }
  }
}

TEST(LadderMany, RejectsBadInputsAndReusesWorkspace) {
  const ecc::Curve& curve = ecc::Curve::k163();
  Xoshiro256 rng(11);
  ecc::Scalar k = rng.uniform_nonzero(curve.order());
  ecc::Point inf = ecc::Point::at_infinity();
  EXPECT_THROW(ecc::ladder_many(curve, &k, &inf, 1), std::invalid_argument);

  // Workspace reuse across differently-sized batches stays correct.
  ecc::LadderManyWorkspace ws;
  for (const std::size_t n : {5u, 12u, 3u}) {
    std::vector<ecc::Scalar> ks(n);
    std::vector<ecc::Point> ps(n, curve.base_point());
    std::vector<ecc::LadderState> out(n);
    for (std::size_t i = 0; i < n; ++i)
      ks[i] = rng.uniform_nonzero(curve.order());
    ecc::ladder_many_into(curve, ks.data(), ps.data(), n, {}, ws, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      const ecc::LadderState ref =
          ecc::montgomery_ladder_raw(curve, ks[i], ps[i]);
      EXPECT_EQ(ref.x1, out[i].x1);
      EXPECT_EQ(ref.z2, out[i].z2);
    }
  }
}

}  // namespace
