// Tests for the batch field layer (Gf163xN + lane backends) and the
// lockstep batched ladder: every wide backend must be bit-identical to
// the scalar arithmetic, lane by lane, including the reduction edge
// patterns and the per-iteration leakage taps.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "ecc/ladder_many.h"
#include "gf2m/backend.h"
#include "gf2m/gf163_lanes.h"
#include "gf2m/transpose_bits.h"
#include "rng/xoshiro.h"

namespace {

using medsec::bigint::U192;
using medsec::gf2m::Gf163;
using medsec::gf2m::Gf163xN;
using medsec::gf2m::LaneBackend;
using medsec::rng::Xoshiro256;
namespace gf = medsec::gf2m;
namespace ecc = medsec::ecc;

Gf163 rand_fe(Xoshiro256& rng) {
  U192 v;
  for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
  return Gf163::from_bits(v);
}

Gf163 bit_fe(unsigned i) {
  std::uint64_t l[3] = {0, 0, 0};
  l[i / 64] = 1ull << (i % 64);
  return Gf163{l[0], l[1], l[2]};
}

/// Random operands plus the reduction edge patterns: top coefficients,
/// limb boundaries, the pentanomial bits, all-ones.
std::vector<Gf163> operand_set(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Gf163> out;
  out.reserve(n);
  const Gf163 edges[] = {
      Gf163::zero(),
      Gf163::one(),
      bit_fe(162),  // top coefficient: every product spills maximally
      bit_fe(161),
      bit_fe(63),
      bit_fe(64),
      bit_fe(127),
      bit_fe(128),
      bit_fe(7) + bit_fe(6) + bit_fe(3) + Gf163::one(),  // x^163 mod f
      Gf163{~0ull, ~0ull, 0x7FFFFFFFFull},               // all 163 ones
      bit_fe(162) + bit_fe(128) + bit_fe(64) + Gf163::one(),
  };
  for (const Gf163& e : edges) out.push_back(e);
  while (out.size() < n) out.push_back(rand_fe(rng));
  return out;
}

class LaneBackends : public ::testing::TestWithParam<LaneBackend> {
 protected:
  void SetUp() override {
    if (!gf::lane_backend_available(GetParam()))
      GTEST_SKIP() << "lane backend unavailable on this CPU";
    ASSERT_TRUE(gf::set_lane_backend(GetParam()));
  }
  void TearDown() override { gf::reset_lane_backend(); }
};

TEST_P(LaneBackends, TenThousandOperandSetsMatchScalar) {
  // >= 10k operand sets per op (issue acceptance), including the edge
  // patterns, in several differently-sized batches to cover the 64-lane
  // bitsliced block tails.
  const std::size_t kSizes[] = {1, 3, 63, 64, 65, 130, 1024, 8750};
  std::uint64_t seed = 1;
  std::size_t total = 0;
  for (const std::size_t n : kSizes) {
    const auto av = operand_set(n, seed += 11);
    const auto bv = operand_set(n, seed += 11);
    const auto cv = operand_set(n, seed += 11);
    const auto dv = operand_set(n, seed += 11);
    Gf163xN a(n), b(n), c(n), d(n), out(n);
    for (std::size_t i = 0; i < n; ++i) {
      a.set(i, av[i]);
      b.set(i, bv[i]);
      c.set(i, cv[i]);
      d.set(i, dv[i]);
    }

    Gf163xN::mul(a, b, out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out.get(i), Gf163::mul(av[i], bv[i])) << "mul lane " << i;
    Gf163xN::sqr(a, out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out.get(i), Gf163::sqr(av[i])) << "sqr lane " << i;
    Gf163xN::mul_add_mul(a, b, c, d, out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out.get(i), Gf163::mul_add_mul(av[i], bv[i], cv[i], dv[i]))
          << "mul_add_mul lane " << i;
    Gf163xN::sqr_add_mul(a, b, c, out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out.get(i), Gf163::sqr_add_mul(av[i], bv[i], cv[i]))
          << "sqr_add_mul lane " << i;
    total += n;
  }
  EXPECT_GE(total, 10000u);
}

TEST_P(LaneBackends, OutputMayAliasInput) {
  const std::size_t n = 100;
  const auto av = operand_set(n, 77);
  const auto bv = operand_set(n, 78);
  Gf163xN a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, av[i]);
    b.set(i, bv[i]);
  }
  Gf163xN::mul(a, b, a);  // in-place
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(a.get(i), Gf163::mul(av[i], bv[i]));
}

TEST_P(LaneBackends, BatchedLadderMatchesScalarLadder) {
  const ecc::Curve& curve = ecc::Curve::k163();
  Xoshiro256 rng(5);
  const std::size_t n = 37;  // odd: exercises lane-group tails
  std::vector<ecc::Scalar> ks(n);
  std::vector<ecc::Point> ps(n);
  std::vector<std::pair<ecc::Fe, ecc::Fe>> rands(n);
  for (std::size_t i = 0; i < n; ++i) {
    ks[i] = rng.uniform_nonzero(curve.order());
    ps[i] = curve.scalar_mult_reference(rng.uniform_nonzero(curve.order()),
                                        curve.base_point());
    ecc::Fe l1 = rand_fe(rng), l2 = rand_fe(rng);
    if (l1.is_zero()) l1 = ecc::Fe::one();
    if (l2.is_zero()) l2 = ecc::Fe::one();
    rands[i] = {l1, l2};
  }

  for (const bool randomized : {false, true}) {
    ecc::BatchLadderOptions bo;
    if (randomized) bo.randomizers = rands.data();
    std::vector<std::vector<int>> batch_hw(n);
    bo.observer = [&](std::size_t, const ecc::LadderLanes& s) {
      std::vector<int> hw(n);
      s.hamming_weights(hw.data());
      for (std::size_t i = 0; i < n; ++i) {
        batch_hw[i].push_back(hw[i]);
        // bulk form must agree with the per-lane form
        ASSERT_EQ(hw[i], s.hamming_weight(i));
      }
    };
    const auto batch = ecc::ladder_many(curve, ks.data(), ps.data(), n, bo);

    for (std::size_t i = 0; i < n; ++i) {
      ecc::LadderOptions lo;
      if (randomized) lo.known_randomizers = rands[i];
      std::vector<int> scalar_hw;
      lo.observer = [&](const ecc::LadderObservation& ob) {
        int hw = 0;
        for (const ecc::Fe* f : {&ob.x1, &ob.z1, &ob.x2, &ob.z2})
          for (std::size_t l = 0; l < 3; ++l)
            hw += std::popcount(f->limb(l));
        scalar_hw.push_back(hw);
      };
      const ecc::LadderState ref =
          ecc::montgomery_ladder_raw(curve, ks[i], ps[i], lo);
      EXPECT_EQ(ref.x1, batch[i].x1) << "lane " << i;
      EXPECT_EQ(ref.z1, batch[i].z1) << "lane " << i;
      EXPECT_EQ(ref.x2, batch[i].x2) << "lane " << i;
      EXPECT_EQ(ref.z2, batch[i].z2) << "lane " << i;
      EXPECT_EQ(scalar_hw, batch_hw[i]) << "leakage tap mismatch, lane " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLaneBackends, LaneBackends,
    ::testing::Values(LaneBackend::kLaneScalar, LaneBackend::kLaneBitsliced,
                      LaneBackend::kLaneClmulWide,
                      LaneBackend::kLaneVpclmul512,
                      LaneBackend::kLaneVpclmul256,
                      LaneBackend::kLaneBitsliced256),
    [](const auto& info) {
      switch (info.param) {
        case LaneBackend::kLaneScalar:
          return "Scalar";
        case LaneBackend::kLaneBitsliced:
          return "Bitsliced";
        case LaneBackend::kLaneClmulWide:
          return "ClmulWide";
        case LaneBackend::kLaneVpclmul512:
          return "Vpclmul512";
        case LaneBackend::kLaneVpclmul256:
          return "Vpclmul256";
        default:
          return "Bitsliced256";
      }
    });

TEST(Gf163xN, SetGetRoundTripAndCswap) {
  Xoshiro256 rng(9);
  const std::size_t n = 130;
  const auto av = operand_set(n, 100);
  const auto bv = operand_set(n, 101);
  Gf163xN a(n), b(n);
  std::vector<std::uint8_t> choice(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, av[i]);
    b.set(i, bv[i]);
    choice[i] = static_cast<std::uint8_t>(rng.next_u64() & 1);
  }
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a.get(i), av[i]);

  Gf163xN::cswap(choice.data(), a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.get(i), choice[i] ? bv[i] : av[i]);
    EXPECT_EQ(b.get(i), choice[i] ? av[i] : bv[i]);
  }
}

TEST(Gf163xN, AddIsLaneWiseXor) {
  const std::size_t n = 17;
  const auto av = operand_set(n, 200);
  const auto bv = operand_set(n, 201);
  Gf163xN a(n), b(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, av[i]);
    b.set(i, bv[i]);
  }
  Gf163xN::add(a, b, out);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out.get(i), av[i] + bv[i]);
}

TEST(LaneRegistry, DispatchFollowsScalarBackendAndEnvOverride) {
  // Auto selection maps the scalar backend to its wide counterpart: for
  // clmul, the widest vector backend the host supports.
  const gf::Backend prev = gf::active_backend();
  gf::reset_lane_backend();
  if (gf::backend_available(gf::Backend::kClmul) &&
      gf::lane_backend_available(LaneBackend::kLaneClmulWide)) {
    gf::set_backend(gf::Backend::kClmul);
    const LaneBackend expected =
        gf::lane_backend_available(LaneBackend::kLaneVpclmul512)
            ? LaneBackend::kLaneVpclmul512
        : gf::lane_backend_available(LaneBackend::kLaneVpclmul256)
            ? LaneBackend::kLaneVpclmul256
            : LaneBackend::kLaneClmulWide;
    EXPECT_EQ(gf::active_lane_backend(), expected);
  }
  gf::set_backend(gf::Backend::kPortable);
  EXPECT_EQ(gf::active_lane_backend(), LaneBackend::kLaneBitsliced);
  gf::set_backend(gf::Backend::kKaratsuba);
  EXPECT_EQ(gf::active_lane_backend(), LaneBackend::kLaneScalar);

  // Pinning wins over the scalar backend; reset restores auto.
  ASSERT_TRUE(gf::set_lane_backend(LaneBackend::kLaneBitsliced));
  gf::set_backend(gf::Backend::kKaratsuba);
  EXPECT_EQ(gf::active_lane_backend(), LaneBackend::kLaneBitsliced);
  gf::reset_lane_backend();
  EXPECT_EQ(gf::active_lane_backend(), LaneBackend::kLaneScalar);

  gf::set_backend(prev);
  gf::reset_lane_backend();

  // Every lane backend reports a name and a nonzero preferred width.
  for (const LaneBackend b : gf::known_lane_backends()) {
    EXPECT_STRNE(gf::lane_backend_name(b), "?");
    if (const auto* vt = gf::lane_vtable(b)) {
      EXPECT_GE(vt->preferred_width, 1u);
      EXPECT_EQ(vt->id, b);
    }
  }
}

TEST(LaneRegistry, NameParsingRoundTripsAndRejectsUnknown) {
  // Every compiled-in backend parses back from its canonical name and
  // reports a real requirement string.
  for (const gf::Backend b : gf::known_backends()) {
    gf::Backend parsed;
    ASSERT_TRUE(gf::backend_from_name(gf::backend_name(b), parsed));
    EXPECT_EQ(parsed, b);
    EXPECT_STRNE(gf::backend_requirement(b), "?");
  }
  for (const LaneBackend b : gf::known_lane_backends()) {
    LaneBackend parsed;
    ASSERT_TRUE(gf::lane_backend_from_name(gf::lane_backend_name(b), parsed));
    EXPECT_EQ(parsed, b);
    EXPECT_STRNE(gf::lane_backend_requirement(b), "?");
  }

  // Aliases accepted by the env overrides.
  LaneBackend lb;
  EXPECT_TRUE(gf::lane_backend_from_name("clmul", lb));
  EXPECT_EQ(lb, LaneBackend::kLaneClmulWide);
  EXPECT_TRUE(gf::lane_backend_from_name("vpclmul", lb));
  EXPECT_EQ(lb, LaneBackend::kLaneVpclmul512);
  gf::Backend sb;
  EXPECT_TRUE(gf::backend_from_name("hw", sb));
  EXPECT_EQ(sb, gf::Backend::kClmul);

  // Unknown names must be reported, not silently mapped (the env-var
  // startup path aborts on these — this is the parse primitive it uses).
  EXPECT_FALSE(gf::lane_backend_from_name("bitsilced", lb));
  EXPECT_FALSE(gf::lane_backend_from_name("", lb));
  EXPECT_FALSE(gf::lane_backend_from_name("auto", lb));  // not a backend
  EXPECT_FALSE(gf::backend_from_name("clmull", sb));
}

// Forward ∘ inverse ≡ identity for the 64x64 bit transpose, every
// compiled-in implementation, at block widths 64/128/256 (a W-lane block
// is W/64 independent 64x64 transposes) — plus bit-identity of each
// vector variant against the portable butterfly.
TEST(TransposeBits, RoundTripAndVariantsMatchPortableAtAllWidths) {
  namespace bits = medsec::gf2m::bits;
  Xoshiro256 rng(321);
  const bits::TransposeImpl impls[] = {
      bits::TransposeImpl::kPortable, bits::TransposeImpl::kAvx2,
      bits::TransposeImpl::kAvx512, bits::TransposeImpl::kGfni};
  for (const bits::TransposeImpl impl : impls) {
    if (!bits::transpose64_available(impl)) {
      GTEST_LOG_(INFO) << "transpose " << bits::transpose_impl_name(impl)
                       << " unavailable on this CPU; skipped";
      continue;
    }
    for (const std::size_t width : {64u, 128u, 256u}) {
      const std::size_t groups = width / 64;
      for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint64_t> block(width), ref(width), orig(width);
        for (auto& w : block) w = rng.next_u64();
        ref = block;
        orig = block;
        for (std::size_t g = 0; g < groups; ++g) {
          bits::transpose64_run(impl, block.data() + 64 * g);
          bits::transpose64_portable(ref.data() + 64 * g);
        }
        ASSERT_EQ(block, ref) << bits::transpose_impl_name(impl) << " width "
                              << width << " trial " << trial;
        for (std::size_t g = 0; g < groups; ++g)
          bits::transpose64_run(impl, block.data() + 64 * g);
        ASSERT_EQ(block, orig)
            << bits::transpose_impl_name(impl) << " not an involution, width "
            << width << " trial " << trial;
      }
    }
  }

  // The dispatched entry (what gather/scatter_planes actually call) is
  // also exercised through the multi-group block helper.
  std::vector<std::uint64_t> block(256), ref(256);
  for (auto& w : block) w = rng.next_u64();
  ref = block;
  bits::transpose64_blocks(block.data(), 4);
  for (std::size_t g = 0; g < 4; ++g)
    bits::transpose64_portable(ref.data() + 64 * g);
  EXPECT_EQ(block, ref);
}

TEST(LadderMany, RejectsBadInputsAndReusesWorkspace) {
  const ecc::Curve& curve = ecc::Curve::k163();
  Xoshiro256 rng(11);
  ecc::Scalar k = rng.uniform_nonzero(curve.order());
  ecc::Point inf = ecc::Point::at_infinity();
  EXPECT_THROW(ecc::ladder_many(curve, &k, &inf, 1), std::invalid_argument);

  // Workspace reuse across differently-sized batches stays correct.
  ecc::LadderManyWorkspace ws;
  for (const std::size_t n : {5u, 12u, 3u}) {
    std::vector<ecc::Scalar> ks(n);
    std::vector<ecc::Point> ps(n, curve.base_point());
    std::vector<ecc::LadderState> out(n);
    for (std::size_t i = 0; i < n; ++i)
      ks[i] = rng.uniform_nonzero(curve.order());
    ecc::ladder_many_into(curve, ks.data(), ps.data(), n, {}, ws, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      const ecc::LadderState ref =
          ecc::montgomery_ladder_raw(curve, ks[i], ps[i]);
      EXPECT_EQ(ref.x1, out[i].x1);
      EXPECT_EQ(ref.z2, out[i].z2);
    }
  }
}

}  // namespace
