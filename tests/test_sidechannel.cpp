// Tests for the side-channel layer: statistics, leakage model, trace
// simulation, and the paper's §7 attack/countermeasure matrix as
// executable assertions (seeded, deterministic).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ecc/curve.h"
#include "rng/xoshiro.h"
#include "sidechannel/dpa.h"
#include "sidechannel/leakage.h"
#include "sidechannel/spa.h"
#include "sidechannel/timing.h"
#include "sidechannel/trace_sim.h"
#include "sidechannel/tvla.h"

namespace {

using medsec::ecc::Curve;
using medsec::ecc::MultAlgorithm;
using medsec::ecc::Scalar;
using medsec::rng::Xoshiro256;
namespace sc = medsec::sidechannel;

// --- statistics ---------------------------------------------------------------

TEST(Stats, RunningStatsMatchesClosedForm) {
  sc::RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Stats, PearsonBasics) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> up{2, 4, 6, 8, 10};
  const std::vector<double> down{5, 4, 3, 2, 1};
  const std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_NEAR(sc::pearson(a, up), 1.0, 1e-12);
  EXPECT_NEAR(sc::pearson(a, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(sc::pearson(a, flat), 0.0);  // degenerate -> 0
  EXPECT_DOUBLE_EQ(sc::pearson({1.0}, {2.0}), 0.0);
}

TEST(Stats, WelchTSeparatesShiftedGroups) {
  Xoshiro256 rng(1);
  sc::RunningStats g0, g1;
  for (int i = 0; i < 2000; ++i) {
    g0.add(sc::gaussian(rng, 1.0));
    g1.add(sc::gaussian(rng, 1.0) + 0.5);
  }
  EXPECT_GT(std::abs(sc::welch_t(g0, g1)), 4.5);
  EXPECT_GT(sc::dom_z(g0, g1), 4.5);
}

TEST(Stats, GaussianMomentsRoughlyCorrect) {
  Xoshiro256 rng(2);
  sc::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(sc::gaussian(rng, 3.0));
  EXPECT_NEAR(s.mean(), 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(s.variance()), 3.0, 0.1);
  EXPECT_DOUBLE_EQ(sc::gaussian(rng, 0.0), 0.0);
}

// --- leakage model --------------------------------------------------------------

TEST(Leakage, CmosTracksDataWddlSablMostlyDoNot) {
  sc::LeakageParams p;
  const double area = 12000;
  const double lo = 100, hi = 600, base = 2000;

  p.style = sc::LogicStyle::kCmos;
  const double cmos_delta = sc::style_power(p, hi, base, area) -
                            sc::style_power(p, lo, base, area);
  EXPECT_DOUBLE_EQ(cmos_delta, hi - lo);

  p.style = sc::LogicStyle::kWddl;
  const double wddl_delta = sc::style_power(p, hi, base, area) -
                            sc::style_power(p, lo, base, area);
  EXPECT_NEAR(wddl_delta, p.wddl_imbalance * (hi - lo), 1e-9);

  p.style = sc::LogicStyle::kSabl;
  const double sabl_delta = sc::style_power(p, hi, base, area) -
                            sc::style_power(p, lo, base, area);
  EXPECT_LT(sabl_delta, wddl_delta);  // SABL better balanced than WDDL

  // ... but the dual-rail styles burn more total power (the §6 trade-off).
  EXPECT_GT(sc::style_power(p, lo, base, area),
            sc::style_power(sc::LeakageParams{}, lo, base, area));
}

TEST(Leakage, StyleNames) {
  EXPECT_STREQ(sc::logic_style_name(sc::LogicStyle::kCmos), "CMOS");
  EXPECT_STREQ(sc::logic_style_name(sc::LogicStyle::kWddl), "WDDL");
  EXPECT_STREQ(sc::logic_style_name(sc::LogicStyle::kSabl), "SABL");
}

// --- trace simulation ------------------------------------------------------------

TEST(TraceSim, DpaExperimentShape) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(3);
  const Scalar k = rng.uniform_nonzero(c.order());
  const auto exp = sc::generate_dpa_traces(
      c, k, 8, sc::RpcScenario::kEnabledKnownRandomness);
  EXPECT_EQ(exp.traces.traces.size(), 8u);
  EXPECT_EQ(exp.base_points.size(), 8u);
  EXPECT_EQ(exp.known_randomizers.size(), 8u);
  EXPECT_EQ(exp.traces.length(), 163u);  // one sample per iteration
  EXPECT_EQ(exp.true_bits.size(), 164u);
  EXPECT_EQ(exp.true_bits.front(), 1);
  // Secret-randomness scenario must not hand randomizers to the attacker.
  const auto exp2 = sc::generate_dpa_traces(
      c, k, 4, sc::RpcScenario::kEnabledSecretRandomness);
  EXPECT_TRUE(exp2.known_randomizers.empty());
}

TEST(TraceSim, CycleTraceAlignedWithRecords) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(4);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::CycleSimConfig cfg;
  const auto t = sc::capture_cycle_trace(c, k, c.base_point(), cfg);
  EXPECT_EQ(t.samples.size(), t.records.size());
  EXPECT_GT(t.samples.size(), 80000u);  // ~86k cycles at d = 4
  EXPECT_THROW(
      sc::capture_cycle_trace(c, k, medsec::ecc::Point::at_infinity(), cfg),
      std::invalid_argument);
  EXPECT_THROW(
      sc::capture_averaged_cycle_trace(c, k, c.base_point(), cfg, 0),
      std::invalid_argument);
}

// --- the paper's DPA matrix (§7) -------------------------------------------------

class DpaScenario : public ::testing::TestWithParam<sc::RpcScenario> {};

TEST_P(DpaScenario, MatchesPaperOutcome) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(5);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::DpaConfig dc;
  dc.bits_to_attack = 12;
  sc::AlgorithmicSimConfig simc;
  simc.seed = 55;
  const auto exp = sc::generate_dpa_traces(c, k, 300, GetParam(), simc);
  const auto r = sc::ladder_dpa_attack(c, exp, dc);
  switch (GetParam()) {
    case sc::RpcScenario::kDisabled:
    case sc::RpcScenario::kEnabledKnownRandomness:
      EXPECT_TRUE(r.full_success) << "accuracy " << r.accuracy;
      break;
    case sc::RpcScenario::kEnabledSecretRandomness:
      EXPECT_FALSE(r.full_success);
      EXPECT_LT(r.accuracy, 0.95);  // coin-flip territory
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, DpaScenario,
    ::testing::Values(sc::RpcScenario::kDisabled,
                      sc::RpcScenario::kEnabledKnownRandomness,
                      sc::RpcScenario::kEnabledSecretRandomness),
    [](const auto& info) {
      switch (info.param) {
        case sc::RpcScenario::kDisabled: return "RpcOff";
        case sc::RpcScenario::kEnabledKnownRandomness: return "WhiteBox";
        default: return "RpcOn";
      }
    });

TEST(Dpa, FailsBelowAndSucceedsAbovePaperThreshold) {
  // "a DPA attack succeeds with as low as 200 traces" — and struggles
  // well below that.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(6);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::DpaConfig dc;
  dc.bits_to_attack = 12;
  const auto rows = sc::dpa_trace_count_sweep(
      c, k, sc::RpcScenario::kDisabled, {30, 250}, dc);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[0].success) << "30 traces should not suffice";
  EXPECT_TRUE(rows[1].success) << "250 traces should suffice";
}

TEST(Dpa, DomStatisticRunsAndIsWeakerThanCpa) {
  // Kocher's original difference-of-means partitions on one predicted
  // state bit; it needs far more traces than CPA because the partition
  // bit carries 1/652 of the register activity. At a CPA-comfortable
  // trace count DoM should not yet recover the key — documenting the gap.
  //
  // The campaign seed is *pinned from an offline sweep* (seeds 1..14, PR
  // 4) and chosen for comfortable margins, not borderline luck: at seed
  // 8 CPA fully succeeds with min per-bit |r| margin 0.072 (assert
  // > 0.03) while DoM sits at 5/12 bits (assert a >= 0.25 accuracy gap).
  // If an RNG-discipline change shifts the draw sequences, re-run the
  // sweep and re-pin with margins at least this wide — do not just bump
  // the trace count until green.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(7);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::AlgorithmicSimConfig simc;
  simc.seed = 8;
  const auto exp = sc::generate_dpa_traces(c, k, 400,
                                           sc::RpcScenario::kDisabled, simc);
  sc::DpaConfig dom;
  dom.bits_to_attack = 12;
  dom.statistic = sc::DpaStatistic::kDom;
  const auto rd = sc::ladder_dpa_attack(c, exp, dom);
  sc::DpaConfig cpa = dom;
  cpa.statistic = sc::DpaStatistic::kCpa;
  const auto rc = sc::ladder_dpa_attack(c, exp, cpa);
  EXPECT_TRUE(rc.full_success);
  double cpa_margin = 1e9;
  for (std::size_t i = 0; i < rc.stat_correct_hyp.size(); ++i)
    cpa_margin = std::min(cpa_margin,
                          rc.stat_correct_hyp[i] - rc.stat_rejected_hyp[i]);
  EXPECT_GT(cpa_margin, 0.03) << "CPA margin eroded: re-run the seed sweep";
  EXPECT_LE(rd.accuracy, rc.accuracy - 0.25)
      << "DoM gap eroded: re-run the seed sweep";
}

TEST(Dpa, RejectsMalformedExperiments) {
  const Curve& c = Curve::k163();
  sc::DpaExperiment exp;
  EXPECT_THROW(sc::ladder_dpa_attack(c, exp), std::invalid_argument);
}

// --- SPA (§6 circuit tricks) ------------------------------------------------------

struct SpaFixture : public ::testing::Test {
  const Curve& c = Curve::k163();
  Scalar k;
  sc::LadderSchedule schedule;

  void SetUp() override {
    Xoshiro256 rng(8);
    k = rng.uniform_nonzero(c.order());
    // Profiling phase on the attacker's own device (§7): gating enabled
    // so the register write cycles are identifiable.
    sc::CycleSimConfig prof;
    prof.coproc.secure.uniform_clock_gating = false;
    prof.leakage.noise_sigma = 100.0;
    const auto ptrace = sc::capture_cycle_trace(
        c, rng.uniform_nonzero(c.order()), c.base_point(), prof);
    schedule = sc::profile_schedule(ptrace);
  }
};

TEST_F(SpaFixture, ScheduleCoversAllIterations) {
  EXPECT_EQ(schedule.selset_cycles.size(), 163u);
  EXPECT_EQ(schedule.gated_write_cycles.size(), 163u);
}

TEST_F(SpaFixture, UnbalancedMuxEncodingLeaksWholeKey) {
  sc::CycleSimConfig cfg;
  cfg.coproc.secure.balanced_mux_encoding = false;
  cfg.leakage.noise_sigma = 100.0;
  const auto victim =
      sc::capture_averaged_cycle_trace(c, k, c.base_point(), cfg, 16);
  const auto r = sc::mux_control_spa(victim, schedule);
  EXPECT_GT(r.accuracy, 0.98);
}

TEST_F(SpaFixture, BalancedMuxEncodingDefeatsSpa) {
  sc::CycleSimConfig cfg;  // balanced by default
  cfg.leakage.noise_sigma = 100.0;
  const auto victim =
      sc::capture_averaged_cycle_trace(c, k, c.base_point(), cfg, 16);
  const auto r = sc::mux_control_spa(victim, schedule);
  EXPECT_LT(r.accuracy, 0.75);
  EXPECT_GT(r.accuracy, 0.25);  // coin flip, not anti-knowledge
}

TEST_F(SpaFixture, DataDependentClockGatingLeaksKey) {
  sc::CycleSimConfig cfg;
  cfg.coproc.secure.uniform_clock_gating = false;
  cfg.leakage.noise_sigma = 100.0;
  const auto victim =
      sc::capture_averaged_cycle_trace(c, k, c.base_point(), cfg, 64);
  const auto r = sc::clock_gating_spa(victim, schedule);
  EXPECT_GT(r.accuracy, 0.95);
}

TEST_F(SpaFixture, UniformClockGatingDefeatsGatingSpa) {
  sc::CycleSimConfig cfg;
  cfg.leakage.noise_sigma = 100.0;
  const auto victim =
      sc::capture_averaged_cycle_trace(c, k, c.base_point(), cfg, 64);
  const auto r = sc::clock_gating_spa(victim, schedule);
  EXPECT_LT(r.accuracy, 0.75);
}

TEST_F(SpaFixture, AttacksRejectBadSchedules) {
  sc::CycleSimConfig cfg;
  const auto victim = sc::capture_cycle_trace(c, k, c.base_point(), cfg);
  EXPECT_THROW(sc::mux_control_spa(victim, sc::LadderSchedule{}),
               std::invalid_argument);
  sc::LadderSchedule bad;
  bad.selset_cycles = {victim.samples.size() + 10};
  bad.gated_write_cycles = {victim.samples.size() + 10};
  EXPECT_THROW(sc::mux_control_spa(victim, bad), std::invalid_argument);
  EXPECT_THROW(sc::clock_gating_spa(victim, bad), std::invalid_argument);
}

// --- timing (§7) -------------------------------------------------------------------

TEST(Timing, DoubleAndAddLeaksLadderDoesNot) {
  const Curve& c = Curve::k163();
  const auto leaky =
      sc::timing_analysis(c, MultAlgorithm::kDoubleAndAdd, 200);
  EXPECT_FALSE(leaky.constant_time);
  EXPECT_GT(leaky.correlation_with_weight, 0.9);

  const auto ladder =
      sc::timing_analysis(c, MultAlgorithm::kMontgomeryLadder, 200);
  EXPECT_TRUE(ladder.constant_time);
  EXPECT_DOUBLE_EQ(ladder.variance, 0.0);
  EXPECT_DOUBLE_EQ(ladder.correlation_with_weight, 0.0);
}

// --- TVLA ---------------------------------------------------------------------------

TEST(Tvla, FlagsUnprotectedRejectsProtected) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(9);
  const Scalar kfix = rng.uniform_nonzero(c.order());

  // TVLA groups: "fixed" pins both the scalar and the base point (the
  // classic fixed-input group); "random" varies both.
  auto make_group = [&](sc::RpcScenario scenario, bool fixed,
                        std::uint64_t seed) {
    sc::TraceSet set;
    for (int i = 0; i < 60; ++i) {
      Xoshiro256 krng(seed + 100 * i);
      const Scalar k = fixed ? kfix : krng.uniform_nonzero(c.order());
      sc::AlgorithmicSimConfig simc;
      simc.seed = seed + i;
      simc.leakage.noise_sigma = 50.0;
      if (fixed) simc.fixed_base_point = c.base_point();
      auto exp = sc::generate_dpa_traces(c, k, 1, scenario, simc);
      set.traces.push_back(std::move(exp.traces.traces.front()));
    }
    return set;
  };

  // Unprotected: fixed-key vs random-key traces differ detectably.
  const auto f0 = make_group(sc::RpcScenario::kDisabled, true, 1000);
  const auto r0 = make_group(sc::RpcScenario::kDisabled, false, 2000);
  EXPECT_TRUE(sc::tvla_fixed_vs_random(f0, r0).leaks());

  // RPC on: every execution re-randomizes; fixed and random groups are
  // statistically indistinguishable.
  const auto f1 =
      make_group(sc::RpcScenario::kEnabledSecretRandomness, true, 3000);
  const auto r1 =
      make_group(sc::RpcScenario::kEnabledSecretRandomness, false, 4000);
  const auto rep = sc::tvla_fixed_vs_random(f1, r1);
  EXPECT_LT(rep.points_over_threshold, 3u)
      << "max |t| = " << rep.max_abs_t;
}

}  // namespace
