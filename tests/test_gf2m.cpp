// Unit and property tests for F_2^163 and the generic GF(2)[x] oracle.
#include <gtest/gtest.h>

#include "gf2m/clmul.h"
#include "gf2m/gf2_163.h"
#include "gf2m/gf2_poly.h"
#include "rng/xoshiro.h"

namespace {

using medsec::gf2m::clmul64;
using medsec::gf2m::clsqr64;
using medsec::gf2m::Gf163;
using medsec::gf2m::Gf2Poly;
using medsec::rng::Xoshiro256;

Gf163 random_fe(Xoshiro256& rng) {
  medsec::bigint::U192 v;
  v.set_limb(0, rng.next_u64());
  v.set_limb(1, rng.next_u64());
  v.set_limb(2, rng.next_u64());
  return Gf163::from_bits(v);
}

Gf2Poly to_poly(const Gf163& a) {
  Gf2Poly p;
  for (std::size_t i = 0; i < 163; ++i)
    if (a.bit(i)) p.set_bit(i);
  return p;
}

const Gf2Poly kFieldPoly = Gf2Poly::from_exponents({163, 7, 6, 3, 0});

// --- carry-less multiply primitive -----------------------------------------

TEST(Clmul, MatchesBitwiseReference) {
  Xoshiro256 rng(1);
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    std::uint64_t lo, hi;
    clmul64(a, b, lo, hi);
    std::uint64_t rlo = 0, rhi = 0;
    for (int i = 0; i < 64; ++i) {
      if ((b >> i) & 1u) {
        rlo ^= a << i;
        if (i != 0) rhi ^= a >> (64 - i);
      }
    }
    EXPECT_EQ(lo, rlo) << "a=" << a << " b=" << b;
    EXPECT_EQ(hi, rhi) << "a=" << a << " b=" << b;
  }
}

TEST(Clmul, TopBitsExercised) {
  // Operands with all of the top window bits set (the correction path).
  std::uint64_t lo, hi;
  clmul64(0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL, lo, hi);
  // (sum x^i)^2-free check: known value of ones(64) (x) ones(64):
  // bit k of result = parity of number of (i,j), i+j=k, i,j<64 = (k<64? k+1 : 127-k) mod 2.
  std::uint64_t rlo = 0, rhi = 0;
  for (int k = 0; k < 128; ++k) {
    const int count = k < 64 ? k + 1 : 127 - k;
    if (count & 1) {
      if (k < 64) rlo |= std::uint64_t{1} << k;
      else rhi |= std::uint64_t{1} << (k - 64);
    }
  }
  EXPECT_EQ(lo, rlo);
  EXPECT_EQ(hi, rhi);
}

TEST(Clmul, SquareMatchesSelfMultiply) {
  Xoshiro256 rng(2);
  for (int iter = 0; iter < 200; ++iter) {
    const std::uint64_t a = rng.next_u64();
    std::uint64_t lo1, hi1, lo2, hi2;
    clmul64(a, a, lo1, hi1);
    clsqr64(a, lo2, hi2);
    EXPECT_EQ(lo1, lo2);
    EXPECT_EQ(hi1, hi2);
  }
}

// --- field element basics ---------------------------------------------------

TEST(Gf163, HexRoundTrip) {
  const auto a = Gf163::from_hex("2FE13C0537BBC11ACAA07D793DE4E6D5E5C94EEE8");
  EXPECT_EQ(a.to_hex(), "2fe13c0537bbc11acaa07d793de4e6d5e5c94eee8");
}

TEST(Gf163, AdditionIsXorAndInvolutive) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const Gf163 a = random_fe(rng);
    const Gf163 b = random_fe(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + b, a);  // char 2: x + x = 0
    EXPECT_TRUE((a + a).is_zero());
  }
}

TEST(Gf163, MulIdentityAndZero) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 50; ++i) {
    const Gf163 a = random_fe(rng);
    EXPECT_EQ(Gf163::mul(a, Gf163::one()), a);
    EXPECT_TRUE(Gf163::mul(a, Gf163::zero()).is_zero());
  }
}

TEST(Gf163, MulMatchesGenericPolyOracle) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 200; ++i) {
    const Gf163 a = random_fe(rng);
    const Gf163 b = random_fe(rng);
    const Gf163 fast = Gf163::mul(a, b);
    const Gf2Poly ref = Gf2Poly::mulmod(to_poly(a), to_poly(b), kFieldPoly);
    EXPECT_EQ(to_poly(fast), ref)
        << "a=" << a.to_hex() << " b=" << b.to_hex();
  }
}

TEST(Gf163, FieldAxioms) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 100; ++i) {
    const Gf163 a = random_fe(rng);
    const Gf163 b = random_fe(rng);
    const Gf163 c = random_fe(rng);
    EXPECT_EQ(Gf163::mul(a, b), Gf163::mul(b, a));
    EXPECT_EQ(Gf163::mul(Gf163::mul(a, b), c),
              Gf163::mul(a, Gf163::mul(b, c)));
    EXPECT_EQ(Gf163::mul(a, b + c),
              Gf163::mul(a, b) + Gf163::mul(a, c));
  }
}

TEST(Gf163, SqrMatchesMul) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i) {
    const Gf163 a = random_fe(rng);
    EXPECT_EQ(Gf163::sqr(a), Gf163::mul(a, a));
  }
}

TEST(Gf163, FrobeniusIsLinear) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 100; ++i) {
    const Gf163 a = random_fe(rng);
    const Gf163 b = random_fe(rng);
    EXPECT_EQ(Gf163::sqr(a + b), Gf163::sqr(a) + Gf163::sqr(b));
  }
}

TEST(Gf163, InverseTimesSelfIsOne) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    Gf163 a = random_fe(rng);
    if (a.is_zero()) a = Gf163::one();
    EXPECT_EQ(Gf163::mul(a, Gf163::inv(a)), Gf163::one());
  }
}

TEST(Gf163, InverseMatchesGenericOracle) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 20; ++i) {
    Gf163 a = random_fe(rng);
    if (a.is_zero()) a = Gf163::one();
    const Gf2Poly ref = Gf2Poly::invmod(to_poly(a), kFieldPoly);
    EXPECT_EQ(to_poly(Gf163::inv(a)), ref);
  }
}

TEST(Gf163, SqrtInvertsSquaring) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 50; ++i) {
    const Gf163 a = random_fe(rng);
    EXPECT_EQ(Gf163::sqrt(Gf163::sqr(a)), a);
    EXPECT_EQ(Gf163::sqr(Gf163::sqrt(a)), a);
  }
}

TEST(Gf163, FrobeniusOrder163) {
  // a^(2^163) == a for all a (the field has 2^163 elements).
  Xoshiro256 rng(12);
  const Gf163 a = random_fe(rng);
  EXPECT_EQ(Gf163::sqr_n(a, 163), a);
}

TEST(Gf163, TraceIsAdditive) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10; ++i) {
    const Gf163 a = random_fe(rng);
    const Gf163 b = random_fe(rng);
    EXPECT_EQ(Gf163::trace(a + b),
              Gf163::trace(a) ^ Gf163::trace(b));
  }
}

TEST(Gf163, TraceOfOneIsOneForOddM) {
  // For odd extension degree m, Tr(1) = m mod 2 = 1.
  EXPECT_EQ(Gf163::trace(Gf163::one()), 1);
}

TEST(Gf163, HalfTraceSolvesQuadratic) {
  Xoshiro256 rng(14);
  int solved = 0;
  for (int i = 0; i < 20; ++i) {
    const Gf163 c = random_fe(rng);
    if (Gf163::trace(c) != 0) continue;  // no solution exists
    const Gf163 z = Gf163::half_trace(c);
    EXPECT_EQ(Gf163::sqr(z) + z, c);
    ++solved;
  }
  EXPECT_GT(solved, 0);  // about half the samples should have Tr = 0
}

TEST(Gf163, CswapSwapsExactlyWhenAsked) {
  Xoshiro256 rng(15);
  const Gf163 a0 = random_fe(rng), b0 = random_fe(rng);
  Gf163 a = a0, b = b0;
  Gf163::cswap(0, a, b);
  EXPECT_EQ(a, a0);
  EXPECT_EQ(b, b0);
  Gf163::cswap(1, a, b);
  EXPECT_EQ(a, b0);
  EXPECT_EQ(b, a0);
}

// --- generic polynomial layer ----------------------------------------------

TEST(Gf2Poly, DegreeAndBits) {
  EXPECT_EQ(Gf2Poly{}.degree(), -1);
  EXPECT_EQ(Gf2Poly{1}.degree(), 0);
  EXPECT_EQ(kFieldPoly.degree(), 163);
  EXPECT_TRUE(kFieldPoly.bit(163));
  EXPECT_TRUE(kFieldPoly.bit(0));
  EXPECT_FALSE(kFieldPoly.bit(2));
}

TEST(Gf2Poly, MulDistributes) {
  Xoshiro256 rng(16);
  for (int i = 0; i < 50; ++i) {
    Gf2Poly a(rng.next_u64()), b(rng.next_u64()), c(rng.next_u64());
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST(Gf2Poly, ModReducesDegree) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 50; ++i) {
    Gf2Poly a(rng.next_u64());
    const Gf2Poly m = Gf2Poly::from_exponents({13, 4, 3, 1, 0});
    const Gf2Poly r = Gf2Poly::mod(a, m);
    EXPECT_LT(r.degree(), 13);
  }
}

TEST(Gf2Poly, KnownIrreduciblePolys) {
  // NIST reduction polynomials are irreducible.
  EXPECT_TRUE(Gf2Poly::is_irreducible(kFieldPoly));
  EXPECT_TRUE(Gf2Poly::is_irreducible(
      Gf2Poly::from_exponents({233, 74, 0})));  // B-233 trinomial
  EXPECT_TRUE(Gf2Poly::is_irreducible(Gf2Poly::from_exponents({8, 4, 3, 1, 0})));
}

TEST(Gf2Poly, KnownReduciblePolys) {
  // x^4 + x^2 = x^2 (x^2 + 1) is reducible; x^2+1 = (x+1)^2 too.
  EXPECT_FALSE(Gf2Poly::is_irreducible(Gf2Poly::from_exponents({4, 2})));
  EXPECT_FALSE(Gf2Poly::is_irreducible(Gf2Poly::from_exponents({2, 0})));
}

TEST(Gf2Poly, InvModRoundTrip) {
  Xoshiro256 rng(18);
  const Gf2Poly m = Gf2Poly::from_exponents({17, 3, 0});
  ASSERT_TRUE(Gf2Poly::is_irreducible(m));
  for (int i = 0; i < 50; ++i) {
    Gf2Poly a(rng.next_u64() & 0x1FFFF);
    if (a.is_zero()) continue;
    const Gf2Poly inv = Gf2Poly::invmod(a, m);
    EXPECT_EQ(Gf2Poly::mulmod(a, inv, m), Gf2Poly{1});
  }
}

}  // namespace
