// Tests for the countermeasure subsystem: scalar blinding over the
// widened fixed-length ladder, base-point blinding pairs, shuffled
// schedules, lane/scalar bit-identity — and the paper-style acceptance
// matrix: the white-box CPA campaign that recovers the key against the
// bare ladder must collapse to a coin flip under scalar blinding, with
// the ladder's TVLA t-max dropping below the 4.5 threshold.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include <memory>

#include "ciphers/aes128.h"
#include "core/secure_processor.h"
#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "ecc/ladder_many.h"
#include "protocol/ecies.h"
#include "protocol/peeters_hermans.h"
#include "protocol/schnorr.h"
#include "rng/xoshiro.h"
#include "sidechannel/countermeasures.h"
#include "sidechannel/dpa.h"
#include "sidechannel/eval.h"
#include "sidechannel/spa.h"
#include "sidechannel/trace_sim.h"
#include "sidechannel/tvla.h"

namespace {

using medsec::bigint::U192;
using medsec::ecc::Curve;
using medsec::ecc::Fe;
using medsec::ecc::LadderState;
using medsec::ecc::Point;
using medsec::ecc::Scalar;
using medsec::ecc::WideScalar;
using medsec::rng::Xoshiro256;
namespace sc = medsec::sidechannel;

Point random_subgroup_point(const Curve& c, Xoshiro256& rng) {
  return c.scalar_mult_reference(rng.uniform_nonzero(c.order()),
                                 c.base_point());
}

int fe_weight(const Fe& v) {
  return std::popcount(v.limb(0)) + std::popcount(v.limb(1)) +
         std::popcount(v.limb(2));
}

// --- scalar blinding over the widened ladder --------------------------------

TEST(ScalarBlinding, BlindScalarActsLikeK) {
  for (const Curve* c : {&Curve::k163(), &Curve::b163()}) {
    Xoshiro256 rng(1);
    for (int i = 0; i < 4; ++i) {
      const Scalar k = rng.uniform_nonzero(c->order());
      const Point p = random_subgroup_point(*c, rng);
      const Point expect = c->scalar_mult_reference(k, p);
      for (const std::uint64_t r :
           {std::uint64_t{0}, std::uint64_t{1}, rng.next_u64()}) {
        const WideScalar kp = sc::blind_scalar(*c, k, r);
        const std::size_t iters = sc::blinded_ladder_iterations(*c, 64);
        EXPECT_EQ(medsec::ecc::montgomery_ladder_fixed(*c, kp, iters, p),
                  expect)
            << c->name() << " r=" << r;
      }
    }
  }
}

TEST(ScalarBlinding, FixedLadderMatchesClassicOnPaddedScalar) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(2);
  const Scalar k = rng.uniform_nonzero(c.order());
  const Point p = random_subgroup_point(c, rng);
  const Scalar padded = medsec::ecc::constant_length_scalar(c, k);
  // The fixed ladder over the padded scalar at its exact bit length walks
  // the same orbit as the classic entry (one extra leading-zero-free
  // iteration replaces the consumed leading 1).
  EXPECT_EQ(medsec::ecc::montgomery_ladder_fixed(
                c, padded.resize<256>(), padded.bit_length(), p),
            medsec::ecc::montgomery_ladder(c, k, p));
  // Iteration counts that do not cover the scalar are rejected.
  EXPECT_THROW(medsec::ecc::montgomery_ladder_fixed(
                   c, padded.resize<256>(), padded.bit_length() - 1, p),
               std::invalid_argument);
}

TEST(ScalarBlinding, WideLanesMatchScalarFixedLadder) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(3);
  constexpr std::size_t kLanes = 5;
  const std::size_t iters = sc::blinded_ladder_iterations(c, 32);

  std::vector<WideScalar> ks(kLanes);
  std::vector<Point> ps(kLanes);
  std::vector<std::pair<Fe, Fe>> rands(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    ks[i] = sc::blind_scalar(c, rng.uniform_nonzero(c.order()),
                             sc::draw_blind(rng, 32));
    ps[i] = random_subgroup_point(c, rng);
    U192 v;
    for (std::size_t l = 0; l < 3; ++l) v.set_limb(l, rng.next_u64());
    rands[i].first = Fe::from_bits(v) + Fe::one();  // nonzero w.h.p.
    rands[i].second = Fe::sqr(rands[i].first);
    ASSERT_FALSE(rands[i].first.is_zero());
    ASSERT_FALSE(rands[i].second.is_zero());
  }

  // Scalar reference: per-lane montgomery_ladder_fixed_raw with the same
  // randomizers, observations recorded per iteration.
  std::vector<std::vector<int>> want_hw(kLanes);
  std::vector<LadderState> want(kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    medsec::ecc::LadderOptions lo;
    lo.known_randomizers = rands[i];
    lo.observer = [&](const medsec::ecc::LadderObservation& ob) {
      want_hw[i].push_back(fe_weight(ob.x1) + fe_weight(ob.z1) +
                           fe_weight(ob.x2) + fe_weight(ob.z2));
    };
    want[i] =
        medsec::ecc::montgomery_ladder_fixed_raw(c, ks[i], iters, ps[i], lo);
  }

  // Lane path with per-iteration taps.
  std::vector<std::vector<int>> got_hw(kLanes);
  medsec::ecc::BatchLadderOptions bo;
  bo.randomizers = rands.data();
  bo.observer = [&](std::size_t, const medsec::ecc::LadderLanes& s) {
    for (std::size_t i = 0; i < kLanes; ++i)
      got_hw[i].push_back(s.hamming_weight(i));
  };
  medsec::ecc::LadderManyWorkspace ws;
  std::vector<LadderState> got(kLanes);
  medsec::ecc::ladder_many_wide_into(c, ks.data(), iters, ps.data(), kLanes,
                                     bo, ws, got.data());

  for (std::size_t i = 0; i < kLanes; ++i) {
    EXPECT_EQ(got[i].x1, want[i].x1) << i;
    EXPECT_EQ(got[i].z1, want[i].z1) << i;
    EXPECT_EQ(got[i].x2, want[i].x2) << i;
    EXPECT_EQ(got[i].z2, want[i].z2) << i;
    EXPECT_EQ(got_hw[i], want_hw[i]) << i;
  }
}

// --- base-point blinding ----------------------------------------------------

TEST(BaseBlinding, PairCorrectsAndUpdates) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(4);
  const Scalar k = rng.uniform_nonzero(c.order());
  auto pair = sc::BaseBlindingPair::create(c, k, rng);
  for (int i = 0; i < 3; ++i) {
    // S = k·R must hold through updates.
    EXPECT_EQ(c.scalar_mult_reference(k, pair.mask()), pair.correction());
    const Point before = pair.mask();
    pair.update(c);
    EXPECT_EQ(pair.mask(), c.dbl(before));
  }
}

// --- the hardened engine ----------------------------------------------------

TEST(HardenedLadder, EveryConfigComputesKP) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(5);
  const Scalar k = rng.uniform_nonzero(c.order());
  const Point p = random_subgroup_point(c, rng);
  const Point expect = c.scalar_mult_reference(k, p);

  for (const sc::CountermeasureConfig& cfg :
       {sc::CountermeasureConfig::none(), sc::CountermeasureConfig::rpc_only(),
        sc::CountermeasureConfig::scalar_blinded(),
        sc::CountermeasureConfig::full()}) {
    sc::HardenedLadder hl(c, cfg);
    for (int rep = 0; rep < 3; ++rep) {
      std::size_t slots = 0;
      const Point got = hl.mult(
          k, p, rng, [&](const medsec::ecc::LadderObservation&) { ++slots; });
      EXPECT_EQ(got, expect) << cfg.name() << " rep " << rep;
      EXPECT_EQ(slots, hl.trace_length()) << cfg.name();
    }
  }
}

// --- protocol wiring --------------------------------------------------------

TEST(HardenedProtocols, SchnorrEciesAndPhRunUnderFullCountermeasures) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(30);
  namespace proto = medsec::protocol;
  const auto cm = sc::CountermeasureConfig::full();

  // Schnorr: hardened prover against a normal verifier.
  {
    const auto kp = proto::schnorr_keygen(c, rng);
    sc::HardenedLadder hl(c, cm);
    proto::SchnorrProver prover(c, kp, rng, &hl);
    proto::SchnorrVerifier verifier(c, kp.X, rng);
    proto::Transcript transcript;
    EXPECT_TRUE(proto::drive_session(prover, verifier, transcript));
    EXPECT_TRUE(verifier.accepted());
    // 1 commitment mult + 2 hidden base-blinding provisioning ladders
    // (the full config pays them per ephemeral scalar — and the ledger
    // must say so).
    EXPECT_EQ(prover.ledger().ecpm, 3u);
  }

  // ECIES: hardened uploader, normal receiver, payload round-trips.
  {
    proto::CipherFactory aes = [](std::span<const std::uint8_t> key) {
      return std::unique_ptr<medsec::ciphers::BlockCipher>(
          new medsec::ciphers::Aes128(key));
    };
    const auto kp = proto::ecies_keygen(c, rng);
    const std::vector<std::uint8_t> telemetry{'h', 'r', '=', '6', '2'};
    sc::HardenedLadder hl(c, cm);
    proto::EciesUploader up(c, kp.Y, telemetry, aes, 16, rng, &hl);
    proto::EciesReceiver rx(c, kp.y, aes, 16);
    proto::Transcript transcript;
    EXPECT_TRUE(proto::drive_session(up, rx, transcript));
    ASSERT_TRUE(rx.delivered());
    EXPECT_EQ(rx.plaintext(), telemetry);
  }

  // Peeters–Hermans: hardened tag still resolves to its DB slot.
  {
    auto reader = proto::ph_setup_reader(c, rng);
    const auto tag = proto::ph_register_tag(c, reader, rng);
    sc::HardenedLadder hl(c, cm);
    proto::PhTagMachine tag_sm(c, tag, rng, &hl);
    proto::PhReaderMachine reader_sm(c, reader, rng);
    proto::Transcript transcript;
    EXPECT_TRUE(proto::drive_session(tag_sm, reader_sm, transcript));
    ASSERT_TRUE(reader_sm.identity().has_value());
    EXPECT_EQ(*reader_sm.identity(), tag.registered_index);
    // 2 protocol mults + 2 provisioning ladders (the respond-side mult
    // reuses the pair: same session scalar r).
    EXPECT_EQ(tag_sm.ledger().ecpm, 4u);
  }
}

// --- the acceptance matrix (deterministic seeds) ----------------------------

TEST(CountermeasureMatrix, ScalarBlindingCollapsesWhiteBoxCpaToChance) {
  // The strongest §7 adversary — white-box, randomizers known — against
  // the same 300-trace budget: bare ladder falls, blinded ladder holds.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(11);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::DpaConfig dc;
  dc.bits_to_attack = 12;
  sc::AlgorithmicSimConfig simc;
  simc.seed = 77;

  simc.countermeasures = sc::CountermeasureConfig::none();
  const auto bare = sc::ladder_dpa_attack(
      c, sc::generate_dpa_traces(c, k, 300,
                                 sc::RpcScenario::kEnabledKnownRandomness,
                                 simc),
      dc);
  EXPECT_TRUE(bare.full_success) << "accuracy " << bare.accuracy;

  simc.countermeasures = sc::CountermeasureConfig::scalar_blinded();
  const auto blinded = sc::ladder_dpa_attack(
      c, sc::generate_dpa_traces(c, k, 300,
                                 sc::RpcScenario::kEnabledKnownRandomness,
                                 simc),
      dc);
  EXPECT_FALSE(blinded.full_success);
  // Chance level: 12 coin flips — well inside [0.1, 0.9], far from the
  // bare attack's 1.0.
  EXPECT_LT(blinded.accuracy, 0.9) << "accuracy " << blinded.accuracy;
}

TEST(CountermeasureMatrix, ScalarBlindingDropsLadderTvlaBelowThreshold) {
  // Fixed-vs-random TVLA on the ladder traces: fixed group pins (k, P),
  // random group draws a fresh scalar per trace. Unprotected, the fixed
  // group's statistics stick out far beyond |t| = 4.5; with scalar
  // blinding every execution walks a fresh bit pattern and the two
  // groups become indistinguishable.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(12);
  const Scalar k = rng.uniform_nonzero(c.order());

  const auto group = [&](const sc::CountermeasureConfig& cm, bool fixed,
                         std::uint64_t seed) {
    sc::AlgorithmicSimConfig simc;
    simc.seed = seed;
    simc.fixed_base_point = c.base_point();
    simc.countermeasures = cm;
    simc.randomize_scalar = !fixed;
    return sc::generate_dpa_traces(c, k, 120, sc::RpcScenario::kDisabled,
                                   simc)
        .traces;
  };

  const auto bare_cfg = sc::CountermeasureConfig::none();
  const auto bare = sc::tvla_fixed_vs_random(group(bare_cfg, true, 100),
                                             group(bare_cfg, false, 200));
  EXPECT_TRUE(bare.leaks());
  EXPECT_GT(bare.max_abs_t, 4.5);

  const auto blind_cfg = sc::CountermeasureConfig::scalar_blinded();
  const auto blinded = sc::tvla_fixed_vs_random(group(blind_cfg, true, 300),
                                                group(blind_cfg, false, 400));
  EXPECT_LT(blinded.max_abs_t, 4.5) << "max |t| " << blinded.max_abs_t;
}

TEST(CountermeasureMatrix, EveryConfigBeatsKnownInputCpa) {
  // Every non-trivial countermeasure on its own defeats the standard
  // known-input CPA at a budget where the bare ladder falls.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(13);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::DpaConfig dc;
  dc.bits_to_attack = 12;

  sc::AlgorithmicSimConfig simc;
  simc.seed = 2024;
  simc.countermeasures = sc::CountermeasureConfig::none();
  const auto bare = sc::ladder_dpa_attack(
      c, sc::generate_dpa_traces(c, k, 400, sc::RpcScenario::kDisabled, simc),
      dc);
  ASSERT_TRUE(bare.full_success);

  sc::CountermeasureConfig base_only;
  base_only.base_point_blinding = true;
  sc::CountermeasureConfig shuffle_only;
  shuffle_only.shuffle_schedule = true;
  for (const sc::CountermeasureConfig& cfg :
       {sc::CountermeasureConfig::rpc_only(),
        sc::CountermeasureConfig::scalar_blinded(), base_only, shuffle_only,
        sc::CountermeasureConfig::full()}) {
    simc.countermeasures = cfg;
    const auto r = sc::ladder_dpa_attack(
        c,
        sc::generate_dpa_traces(c, k, 400, sc::RpcScenario::kDisabled, simc),
        dc);
    EXPECT_FALSE(r.full_success) << cfg.name();
    EXPECT_LT(r.accuracy, 0.9) << cfg.name() << " " << r.accuracy;
  }
}

TEST(CountermeasureMatrix, CampaignIsGeometryInvariantUnderCountermeasures) {
  // The campaign determinism contract survives the countermeasure layer:
  // 1 thread / 1-lane blocks and max fan-out produce bit-identical
  // experiments for a blinded + masked config.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(14);
  const Scalar k = rng.uniform_nonzero(c.order());
  sc::CountermeasureConfig cm;
  cm.scalar_blinding = true;
  cm.base_point_blinding = true;
  cm.randomize_projective = true;

  sc::AlgorithmicSimConfig one;
  one.seed = 5;
  one.countermeasures = cm;
  one.threads = 1;
  one.lanes = 1;
  sc::AlgorithmicSimConfig wide = one;
  wide.threads = 0;
  wide.lanes = 0;

  const auto a = sc::generate_dpa_traces(
      c, k, 40, sc::RpcScenario::kEnabledSecretRandomness, one);
  const auto b = sc::generate_dpa_traces(
      c, k, 40, sc::RpcScenario::kEnabledSecretRandomness, wide);
  ASSERT_EQ(a.traces.traces.size(), b.traces.traces.size());
  for (std::size_t j = 0; j < a.traces.traces.size(); ++j)
    EXPECT_EQ(a.traces.traces[j], b.traces.traces[j]) << j;
  for (std::size_t j = 0; j < a.base_points.size(); ++j)
    EXPECT_EQ(a.base_points[j], b.base_points[j]) << j;
}

// --- the evaluation engine --------------------------------------------------

TEST(EvalMatrix, SmallGridRunsAndSerializes) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(40);
  const Scalar k = rng.uniform_nonzero(c.order());

  sc::EvalConfig cfg;
  cfg.countermeasures = {sc::CountermeasureConfig::none(),
                         sc::CountermeasureConfig::scalar_blinded()};
  cfg.attacks = {sc::EvalAttack::kCpaWhiteBox, sc::EvalAttack::kTvla};
  cfg.traces = 300;
  cfg.tvla_traces_per_group = 60;
  cfg.seed = 2024;
  const auto m = sc::run_eval_matrix(c, k, cfg);
  ASSERT_EQ(m.cells.size(), 4u);

  const auto cell = [&](const char* attack, const char* cm) {
    for (const auto& x : m.cells)
      if (x.attack == attack && x.countermeasure == cm) return x;
    ADD_FAILURE() << "missing " << attack << " x " << cm;
    return m.cells.front();
  };
  EXPECT_FALSE(cell("cpa-whitebox", "none").defense_holds);
  EXPECT_TRUE(cell("cpa-whitebox", "blind").defense_holds);
  EXPECT_TRUE(cell("tvla", "blind").defense_holds);
  EXPECT_LT(cell("tvla", "blind").tvla_max_t, 4.5);

  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"schema\":\"medsec-eval-matrix-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"countermeasure\":\"blind\""), std::string::npos);

  EXPECT_THROW(sc::run_eval_matrix(c, k, sc::EvalConfig{}),
               std::invalid_argument);
  sc::EvalConfig bad = cfg;
  bad.lane_backends = {"not-a-backend"};
  EXPECT_THROW(sc::run_eval_matrix(c, k, bad), std::invalid_argument);
}

TEST(HardenedLadder, ConfigNamesAreStable) {
  EXPECT_EQ(sc::CountermeasureConfig::none().name(), "none");
  EXPECT_EQ(sc::CountermeasureConfig::rpc_only().name(), "rpc");
  EXPECT_EQ(sc::CountermeasureConfig::scalar_blinded().name(), "blind");
  EXPECT_EQ(sc::CountermeasureConfig::full().name(),
            "rpc+blind+base+shuffle");
}

// --- the co-processor / secure-processor wiring -----------------------------

TEST(SecureProcessorCountermeasures, EveryLadderConfigComputesKP) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(20);
  const Scalar k = rng.uniform_nonzero(c.order());
  const Point p = random_subgroup_point(c, rng);
  const Point expect = c.scalar_mult_reference(k, p);

  namespace core = medsec::core;
  for (const core::CountermeasureConfig& cfg :
       {core::CountermeasureConfig::protected_default(),
        core::CountermeasureConfig::unprotected(),
        core::CountermeasureConfig::hardened()}) {
    core::SecureEccProcessor proc(c, cfg, /*seed=*/0xC0FFEE);
    for (int rep = 0; rep < 2; ++rep)
      EXPECT_EQ(proc.point_mult(k, p).result, expect)
          << cfg.ladder.name() << " rep " << rep;
  }
}

TEST(SecureProcessorCountermeasures, BlindedAndShuffledCostShowsInCycles) {
  // The countermeasures are design decisions with a measurable price:
  // blinding adds blind_bits+1 iterations, shuffling adds the jitter
  // units — both visible in the cycle telemetry, neither data-dependent.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(21);
  const Scalar k = rng.uniform_nonzero(c.order());
  namespace core = medsec::core;

  core::SecureEccProcessor plain(c,
                                 core::CountermeasureConfig::unprotected());
  core::CountermeasureConfig hardened_cfg =
      core::CountermeasureConfig::unprotected();
  hardened_cfg.ladder = sc::CountermeasureConfig::full();
  core::SecureEccProcessor hardened(c, hardened_cfg);

  const auto base = plain.point_mult(k, c.base_point());
  const auto hard = hardened.point_mult(k, c.base_point());
  EXPECT_EQ(base.result, hard.result);
  EXPECT_GT(hard.cycles, base.cycles);

  // Constant-time property survives: the same config costs the same
  // cycle count for a different key.
  const Scalar k2 = rng.uniform_nonzero(c.order());
  EXPECT_EQ(hardened.point_mult(k2, c.base_point()).cycles, hard.cycles);
}

// --- the SPA vectors under a shuffled schedule ------------------------------

TEST(SpaShuffle, ShuffledScheduleDefeatsBothSpaVectors) {
  // The §6 SPA attacks assume cycle positions learned by profiling stay
  // meaningful on the victim. With the shuffled schedule the victim's
  // real iterations shift by a fresh random jitter pattern every
  // execution, so both classifiers fall to coin-flip territory even with
  // the circuit-level countermeasures OFF.
  const Curve& c = Curve::k163();
  Xoshiro256 rng(22);
  const Scalar k = rng.uniform_nonzero(c.order());

  // Profiling phase on the attacker's own (unshuffled) device.
  sc::CycleSimConfig prof;
  prof.coproc.secure.balanced_mux_encoding = false;
  prof.coproc.secure.uniform_clock_gating = false;
  prof.leakage.noise_sigma = 100.0;
  const auto schedule = sc::profile_schedule(sc::capture_cycle_trace(
      c, rng.uniform_nonzero(c.order()), c.base_point(), prof));

  // Victim: same leaky circuit, but shuffled scheduling.
  sc::CycleSimConfig victim_cfg = prof;
  sc::CountermeasureConfig cm;
  cm.shuffle_schedule = true;
  cm.dummy_iterations = 24;
  victim_cfg.countermeasures = cm;
  const auto victim =
      sc::capture_averaged_cycle_trace(c, k, c.base_point(), victim_cfg, 16);

  const auto mux = sc::mux_control_spa(victim, schedule);
  EXPECT_LT(mux.accuracy, 0.75) << mux.accuracy;
  EXPECT_GT(mux.accuracy, 0.25) << mux.accuracy;
  const auto gating = sc::clock_gating_spa(victim, schedule);
  EXPECT_LT(gating.accuracy, 0.75) << gating.accuracy;
}

TEST(CycleSim, BlindedCycleTraceRunsTheWidenedMicrocode) {
  const Curve& c = Curve::k163();
  Xoshiro256 rng(23);
  const Scalar k = rng.uniform_nonzero(c.order());

  sc::CycleSimConfig plain_cfg;
  const auto plain = sc::capture_cycle_trace(c, k, c.base_point(), plain_cfg);

  sc::CycleSimConfig blind_cfg;
  sc::CountermeasureConfig cm;
  cm.scalar_blinding = true;
  cm.randomize_projective = true;
  blind_cfg.countermeasures = cm;
  const auto blinded =
      sc::capture_cycle_trace(c, k, c.base_point(), blind_cfg);

  // blind_bits + 1 extra iterations' worth of cycles.
  EXPECT_GT(blinded.samples.size(), plain.samples.size());
  EXPECT_EQ(blinded.samples.size(), blinded.records.size());
}

}  // namespace
