// Tests for the hardware model layer: digit-serial MALU bit-exactness,
// co-processor vs. algorithmic ladder cross-check, constant-time properties,
// area model sanity, and the energy calibration against the paper's chip.
#include <gtest/gtest.h>

#include <cmath>

#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "hw/coprocessor.h"
#include "hw/digit_serial.h"
#include "hw/gates.h"
#include "hw/radio.h"
#include "hw/technology.h"
#include "rng/xoshiro.h"

namespace {

using medsec::bigint::U192;
using medsec::ecc::constant_length_scalar;
using medsec::ecc::Curve;
using medsec::ecc::montgomery_ladder;
using medsec::ecc::Point;
using medsec::ecc::recover_from_ladder;
using medsec::ecc::Scalar;
using medsec::gf2m::Gf163;
using medsec::rng::Xoshiro256;
namespace hw = medsec::hw;

Gf163 random_fe(Xoshiro256& rng) {
  U192 v;
  for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
  return Gf163::from_bits(v);
}

std::vector<int> padded_bits(const Curve& c, const Scalar& k) {
  const Scalar padded = constant_length_scalar(c, k);
  std::vector<int> bits;
  for (std::size_t i = padded.bit_length(); i-- > 0;)
    bits.push_back(padded.bit(i) ? 1 : 0);
  return bits;
}

// --- digit-serial multiplier --------------------------------------------------

class MaluBitExact : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MaluBitExact, MatchesSoftwareFieldMultiplication) {
  const hw::DigitSerialMultiplier malu(GetParam());
  Xoshiro256 rng(42 + GetParam());
  for (int i = 0; i < 25; ++i) {
    const Gf163 a = random_fe(rng);
    const Gf163 b = random_fe(rng);
    const hw::MaluResult r = malu.multiply(a, b);
    EXPECT_EQ(r.product, Gf163::mul(a, b))
        << "d=" << GetParam() << " sample " << i;
    EXPECT_EQ(r.cycles, malu.cycles_per_mult());
    EXPECT_EQ(r.activity.size(), r.cycles);
  }
}

TEST_P(MaluBitExact, EdgeOperands) {
  const hw::DigitSerialMultiplier malu(GetParam());
  const Gf163 one = Gf163::one();
  const Gf163 top = Gf163{0, 0, 1ull << 34};  // x^162
  EXPECT_TRUE(malu.multiply(Gf163::zero(), top).product.is_zero());
  EXPECT_EQ(malu.multiply(one, top).product, top);
  EXPECT_EQ(malu.multiply(top, one).product, top);
  EXPECT_EQ(malu.multiply(top, top).product, Gf163::sqr(top));
}

INSTANTIATE_TEST_SUITE_P(DigitSizes, MaluBitExact,
                         ::testing::Values(1, 2, 3, 4, 8, 16),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(Malu, CycleCountIsCeilMOverD) {
  EXPECT_EQ(hw::DigitSerialMultiplier(1).cycles_per_mult(), 163u);
  EXPECT_EQ(hw::DigitSerialMultiplier(2).cycles_per_mult(), 82u);
  EXPECT_EQ(hw::DigitSerialMultiplier(4).cycles_per_mult(), 41u);
  EXPECT_EQ(hw::DigitSerialMultiplier(8).cycles_per_mult(), 21u);
  EXPECT_EQ(hw::DigitSerialMultiplier(16).cycles_per_mult(), 11u);
}

TEST(Malu, RejectsBadDigitSize) {
  EXPECT_THROW(hw::DigitSerialMultiplier(0), std::invalid_argument);
  EXPECT_THROW(hw::DigitSerialMultiplier(64), std::invalid_argument);
}

TEST(Malu, AreaGrowsWithDigitSize) {
  double prev = 0;
  for (std::size_t d : {1, 2, 4, 8, 16}) {
    const double a = hw::DigitSerialMultiplier(d).area_ge();
    EXPECT_GT(a, prev) << "d=" << d;
    prev = a;
  }
}

TEST(Malu, DigitSweepShapes) {
  // §5's trade-off: latency falls with d, area rises with d, and the
  // area-energy product has an interior optimum at the paper's d = 4.
  const auto sweep = hw::digit_size_sweep(hw::Technology::umc130());
  ASSERT_EQ(sweep.size(), 5u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].cycles_per_mult, sweep[i - 1].cycles_per_mult);
    EXPECT_GT(sweep[i].area_ge, sweep[i - 1].area_ge);
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < sweep.size(); ++i)
    if (sweep[i].area_energy_product < sweep[best].area_energy_product)
      best = i;
  EXPECT_EQ(sweep[best].digit_size, 4u)
      << "paper: 163x4 achieves the optimal area-energy product";
}

// --- gate inventory -----------------------------------------------------------

TEST(Gates, PaperNumbersArePresent) {
  EXPECT_DOUBLE_EQ(hw::inventory("SHA-1").gate_equivalents, 5527.0);
  EXPECT_DOUBLE_EQ(hw::inventory("ECC-163 core").gate_equivalents, 12000.0);
  EXPECT_THROW(hw::inventory("DES"), std::out_of_range);
}

TEST(Gates, EccCoreModelNearPublishedFigure) {
  // The structural model at the paper's d = 4 should land near the ~12 kGE
  // the paper quotes (within 15% — it is a first-order model).
  const double ge = hw::ecc_coprocessor_ge(163, 4);
  EXPECT_NEAR(ge, 12000.0, 0.15 * 12000.0) << "model GE = " << ge;
}

TEST(Gates, HashIsNotCheapComparedToEcc) {
  // §4's protocol-design point: SHA-1 is nearly half an ECC core.
  const double sha = hw::inventory("SHA-1").gate_equivalents;
  const double ecc = hw::inventory("ECC-163 core").gate_equivalents;
  EXPECT_GT(sha / ecc, 0.4);
}

// --- co-processor correctness -------------------------------------------------

class CoprocVsLadder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CoprocVsLadder, PointMultMatchesAlgorithmicLadder) {
  const Curve& c = Curve::k163();
  hw::CoprocessorConfig cfg;
  cfg.digit_size = GetParam();
  cfg.record_cycles = false;
  hw::Coprocessor cop(cfg);
  Xoshiro256 rng(7 + GetParam());
  for (int i = 0; i < 4; ++i) {
    const Scalar k = rng.uniform_nonzero(c.order());
    const auto r = cop.point_mult(padded_bits(c, k), c.base_point().x);
    const Point expect = montgomery_ladder(c, k, c.base_point());
    ASSERT_FALSE(r.result_is_infinity);
    ASSERT_FALSE(expect.infinity);
    EXPECT_EQ(r.x_affine, expect.x) << "k=" << k.to_hex();
    // The projective outputs feed software y-recovery (insecure zone).
    const Point rec = recover_from_ladder(c, c.base_point(), r.x1, r.z1,
                                          r.x2, r.z2);
    EXPECT_EQ(rec, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(DigitSizes, CoprocVsLadder, ::testing::Values(1, 4, 16),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(Coprocessor, RpcGivesSameResultDifferentIntermediates) {
  const Curve& c = Curve::k163();
  hw::Coprocessor cop;
  Xoshiro256 rng(11);
  const Scalar k = rng.uniform_nonzero(c.order());
  const auto bits = padded_bits(c, k);

  hw::PointMultOptions plain;
  hw::PointMultOptions rpc;
  rpc.z_randomizers = {random_fe(rng), random_fe(rng)};

  const auto r0 = cop.point_mult(bits, c.base_point().x, plain);
  const auto r1 = cop.point_mult(bits, c.base_point().x, rpc);
  EXPECT_EQ(r0.x_affine, r1.x_affine);
  // Projective representations must differ (the DPA story).
  EXPECT_FALSE(r0.z1 == r1.z1);
}

TEST(Coprocessor, SmallScalarsMatchReference) {
  const Curve& c = Curve::k163();
  hw::CoprocessorConfig cfg;
  cfg.record_cycles = false;
  hw::Coprocessor cop(cfg);
  for (std::uint64_t k = 1; k <= 8; ++k) {
    const auto r = cop.point_mult(padded_bits(c, Scalar{k}), c.base_point().x);
    const Point expect = c.scalar_mult_reference(Scalar{k}, c.base_point());
    EXPECT_EQ(r.x_affine, expect.x) << "k=" << k;
  }
}

TEST(Coprocessor, KZeroYieldsInfinity) {
  const Curve& c = Curve::k163();
  hw::CoprocessorConfig cfg;
  cfg.record_cycles = false;
  hw::Coprocessor cop(cfg);
  const auto r = cop.point_mult(padded_bits(c, Scalar{}), c.base_point().x);
  EXPECT_TRUE(r.result_is_infinity);
}

TEST(Coprocessor, RejectsBadInputs) {
  hw::Coprocessor cop;
  const Curve& c = Curve::k163();
  EXPECT_THROW(cop.point_mult({}, c.base_point().x), std::invalid_argument);
  EXPECT_THROW(cop.point_mult({0, 1, 1}, c.base_point().x),
               std::invalid_argument);
  EXPECT_THROW(cop.point_mult({1, 0, 1}, Gf163::zero()),
               std::invalid_argument);
  hw::PointMultOptions opt;
  opt.z_randomizers = {Gf163::zero(), Gf163::one()};
  EXPECT_THROW(cop.point_mult({1, 0}, c.base_point().x, opt),
               std::invalid_argument);
}

// --- constant-time properties ---------------------------------------------------

TEST(Coprocessor, CycleCountIsKeyIndependent) {
  // §7: "the computation time of a point multiplication is the same for
  // different key values" — the intrinsic timing countermeasure.
  const Curve& c = Curve::k163();
  hw::CoprocessorConfig cfg;
  cfg.record_cycles = false;
  hw::Coprocessor cop(cfg);
  Xoshiro256 rng(13);
  std::size_t cycles = 0;
  for (const Scalar& k :
       {Scalar{1}, Scalar{2}, rng.uniform_nonzero(c.order()),
        rng.uniform_nonzero(c.order())}) {
    const auto r = cop.point_mult(padded_bits(c, k), c.base_point().x);
    if (cycles == 0) cycles = r.exec.cycles;
    EXPECT_EQ(r.exec.cycles, cycles) << "k=" << k.to_hex();
  }
}

TEST(Coprocessor, LatencyTableMatchesExecution) {
  hw::Coprocessor cop;
  using hw::Op;
  using hw::Reg;
  const std::vector<std::pair<Op, hw::Instruction>> cases = {
      {Op::kMul, {Op::kMul, Reg::kT, Reg::kXP, Reg::kXP, {}, 0}},
      {Op::kSqr, {Op::kSqr, Reg::kT, Reg::kXP, Reg::kXP, {}, 0}},
      {Op::kAdd, {Op::kAdd, Reg::kT, Reg::kXP, Reg::kX1, {}, 0}},
      {Op::kMov, {Op::kMov, Reg::kT, Reg::kXP, Reg::kXP, {}, 0}},
      {Op::kLdi, {Op::kLdi, Reg::kT, Reg::kT, Reg::kT, Gf163::one(), 0}},
      {Op::kSelSet, {Op::kSelSet, Reg::kT, Reg::kT, Reg::kT, {}, 1}},
  };
  for (const auto& [op, ins] : cases) {
    const auto r = cop.execute({ins});
    EXPECT_EQ(r.cycles, cop.latency(op));
  }
}

TEST(Coprocessor, MicrocodeUsesOnlySixRegisters) {
  // The paper's §4 register budget. Every microcode stream must fit the
  // six-register file — this test enumerates the register fields.
  for (const auto& prog :
       {medsec::hw::microcode::ladder_step(0),
        medsec::hw::microcode::ladder_step(1),
        medsec::hw::microcode::ladder_init(std::nullopt),
        medsec::hw::microcode::ladder_init(
            std::make_pair(Gf163{3}, Gf163{5})),
        medsec::hw::microcode::affine_conversion()}) {
    for (const auto& ins : prog) {
      EXPECT_LT(static_cast<unsigned>(ins.rd), hw::kNumRegs);
      EXPECT_LT(static_cast<unsigned>(ins.ra), hw::kNumRegs);
      EXPECT_LT(static_cast<unsigned>(ins.rb), hw::kNumRegs);
    }
  }
}

TEST(Coprocessor, LadderStepOpBudgetMatchesHeader) {
  // 5 MUL + 5 SQR + 3 ADD + 1 MOV (+1 SELSET) per iteration on K-163.
  const auto prog = medsec::hw::microcode::ladder_step(0);
  int mul = 0, sqr = 0, add = 0, mov = 0, sel = 0;
  for (const auto& ins : prog) {
    switch (ins.op) {
      case hw::Op::kMul: ++mul; break;
      case hw::Op::kSqr: ++sqr; break;
      case hw::Op::kAdd: ++add; break;
      case hw::Op::kMov: ++mov; break;
      case hw::Op::kSelSet: ++sel; break;
      default: break;
    }
  }
  EXPECT_EQ(mul, 5);
  EXPECT_EQ(sqr, 5);
  EXPECT_EQ(add, 3);
  EXPECT_EQ(mov, 1);
  EXPECT_EQ(sel, 1);
}

// --- energy calibration ---------------------------------------------------------

TEST(Calibration, ReproducesPaperChipNumbers) {
  // §6: 50.4 uW at 847.5 kHz / 1 V; 5.1 uJ and 9.8 point multiplications
  // per second. One calibration (Technology::umc130 + ActivityWeights)
  // must reproduce all three within 10%.
  const Curve& c = Curve::k163();
  hw::CoprocessorConfig cfg;  // defaults: d = 4, protected, umc130
  cfg.record_cycles = false;
  hw::Coprocessor cop(cfg);
  Xoshiro256 rng(17);
  const Scalar k = rng.uniform_nonzero(c.order());
  hw::PointMultOptions opt;
  opt.z_randomizers = {random_fe(rng), random_fe(rng)};
  const auto r = cop.point_mult(padded_bits(c, k), c.base_point().x, opt);

  const double pm_per_s = 1.0 / r.seconds;
  RecordProperty("cycles", std::to_string(r.exec.cycles));
  RecordProperty("energy_uJ", std::to_string(r.energy_j * 1e6));
  RecordProperty("power_uW", std::to_string(r.avg_power_w * 1e6));
  RecordProperty("pm_per_s", std::to_string(pm_per_s));

  EXPECT_NEAR(r.energy_j * 1e6, 5.1, 0.51)
      << "modeled energy " << r.energy_j * 1e6 << " uJ vs paper 5.1 uJ";
  EXPECT_NEAR(r.avg_power_w * 1e6, 50.4, 5.04)
      << "modeled power " << r.avg_power_w * 1e6 << " uW vs paper 50.4 uW";
  EXPECT_NEAR(pm_per_s, 9.8, 0.98)
      << "modeled throughput " << pm_per_s << " PM/s vs paper 9.8";
}

// --- radio model ----------------------------------------------------------------

TEST(Radio, EnergyMonotoneInBitsAndDistance) {
  const hw::RadioModel r = hw::RadioModel::ban();
  EXPECT_LT(r.tx_energy_j(100, 1.0), r.tx_energy_j(200, 1.0));
  EXPECT_LT(r.tx_energy_j(100, 1.0), r.tx_energy_j(100, 10.0));
  EXPECT_DOUBLE_EQ(r.rx_energy_j(100), 100 * r.e_elec_j_per_bit);
  EXPECT_GT(r.airtime_s(250'000), 0.99);
}

TEST(Radio, ImplantPathLossDominatesAtDistance) {
  // With exponent 4, distance hurts much more for implants.
  const auto ban = hw::RadioModel::ban();
  const auto imp = hw::RadioModel::implant();
  const double ratio_ban = ban.tx_energy_j(100, 10) / ban.tx_energy_j(100, 1);
  const double ratio_imp = imp.tx_energy_j(100, 10) / imp.tx_energy_j(100, 1);
  EXPECT_GT(ratio_imp, ratio_ban);
}

}  // namespace
