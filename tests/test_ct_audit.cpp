// Tests for the constant-time audit harness (src/ctaudit): the dudect
// engine's accumulators and determinism, the positive controls (every
// shipped backend x lane combo and both modeled ladders pass), the
// negative controls (the planted leaky toys are flagged by BOTH
// engines), the taint interpreter's propagation rules, and the
// bit-exact equivalence of the audited TaintFe arithmetic with the
// production Gf163 field.
//
// Also part of the TSan CI matrix: the two-thread accumulate-then-merge
// test exercises the RunningStats merge contract under the race
// detector.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "ctaudit/audit.h"
#include "ctaudit/dudect.h"
#include "ctaudit/taint.h"
#include "ctaudit/taint_fe.h"
#include "ctaudit/time_source.h"
#include "ecc/curve.h"
#include "ecc/ladder.h"
#include "gf2m/backend.h"
#include "gf2m/gf2_163.h"
#include "hw/coprocessor.h"
#include "rng/xoshiro.h"
#include "sidechannel/countermeasures.h"

namespace {

using medsec::bigint::U192;
using medsec::ecc::Curve;
using medsec::gf2m::Gf163;
using medsec::rng::Xoshiro256;
namespace ct = medsec::ctaudit;

Gf163 rand_fe(Xoshiro256& rng) {
  U192 v;
  for (std::size_t i = 0; i < 3; ++i) v.set_limb(i, rng.next_u64());
  return Gf163::from_bits(v);
}

/// Small-but-real test grid config: enough samples for the toys' huge
/// effect sizes, few enough modeled point-mults to stay in the fast
/// tier.
ct::GridConfig small_grid() {
  ct::GridConfig cfg;
  cfg.samples = 300;
  cfg.model_samples = 24;
  cfg.calibration = 48;
  cfg.rerun_check = false;  // determinism asserted explicitly below
  return cfg;
}

// --- dudect machinery --------------------------------------------------------

TEST(CtAudit, DeriveWordIsPureAndLaneIndependent) {
  EXPECT_EQ(ct::derive_word(1, 2, 3), ct::derive_word(1, 2, 3));
  EXPECT_NE(ct::derive_word(1, 2, 3), ct::derive_word(1, 2, 4));
  EXPECT_NE(ct::derive_word(1, 2, 3), ct::derive_word(1, 3, 3));
  EXPECT_NE(ct::derive_word(1, 2, 3), ct::derive_word(2, 2, 3));
}

TEST(CtAudit, WelchAccumulatorMergeMatchesSerial) {
  Xoshiro256 rng(7);
  ct::WelchAccumulator serial, part_a, part_b;
  for (int i = 0; i < 500; ++i) {
    const int cls = static_cast<int>(rng.next_u64() & 1);
    const double x = static_cast<double>(rng.next_u64() >> 40);
    serial.add(cls, x);
    (i < 250 ? part_a : part_b).add(cls, x);
  }
  part_a.merge(part_b);
  EXPECT_EQ(serial.group(0).count(), part_a.group(0).count());
  EXPECT_EQ(serial.group(1).count(), part_a.group(1).count());
  EXPECT_NEAR(serial.t(), part_a.t(), 1e-9);
}

// Part of the TSan matrix: two threads fill disjoint accumulators, then
// merge on the main thread. The engine itself is serial; this pins down
// that the accumulator type stays mergeable from worker threads (the
// PR 3 campaign pattern) without data races.
TEST(CtAudit, WelchAccumulatorThreadedFillThenMerge) {
  ct::WelchAccumulator parts[2];
  std::thread workers[2];
  for (int w = 0; w < 2; ++w) {
    workers[w] = std::thread([w, &parts] {
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t v = ct::derive_word(99, i, w);
        parts[w].add(static_cast<int>(v & 1),
                     static_cast<double>(v >> 32));
      }
    });
  }
  for (auto& t : workers) t.join();
  parts[0].merge(parts[1]);
  EXPECT_EQ(parts[0].group(0).count() + parts[0].group(1).count(), 40000u);
  EXPECT_LT(std::fabs(parts[0].t()), 10.0);
}

TEST(CtAudit, TimeSourceNamesRoundTrip) {
  using K = ct::TimeSourceKind;
  for (const K k : {K::kOpCount, K::kSteadyClock, K::kRdtsc}) {
    K parsed;
    ASSERT_TRUE(ct::time_source_from_name(ct::time_source_name(k), parsed));
    EXPECT_EQ(parsed, k);
    EXPECT_EQ(ct::make_time_source(k)->kind(), k);
  }
  K parsed;
  EXPECT_FALSE(ct::time_source_from_name("sundial", parsed));
  EXPECT_TRUE(ct::make_time_source(K::kOpCount)->deterministic());
  EXPECT_FALSE(ct::make_time_source(K::kSteadyClock)->deterministic());
}

TEST(CtAudit, OpCountSourceAccumulatesTicks) {
  ct::OpCountSource src;
  src.start();
  src.tick(3);
  src.tick(4);
  EXPECT_EQ(src.stop(), 7u);
  src.start();  // start resets
  EXPECT_EQ(src.stop(), 0u);
}

// --- negative controls through the dudect engine ----------------------------

TEST(CtAudit, ToyBranchFailsDudect) {
  ct::OpCountSource src;
  ct::CtTestConfig cfg;
  cfg.samples = 300;
  cfg.calibration = 32;
  const ct::CtTestReport r =
      ct::run_ct_test(ct::make_toy_branch_target(), src, cfg);
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.max_abs_t, cfg.threshold);
}

TEST(CtAudit, ToyTableFailsDudect) {
  ct::OpCountSource src;
  ct::CtTestConfig cfg;
  cfg.samples = 300;
  cfg.calibration = 32;
  const ct::CtTestReport r =
      ct::run_ct_test(ct::make_toy_table_target(), src, cfg);
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.max_abs_t, cfg.threshold);
}

// --- positive controls -------------------------------------------------------

TEST(CtAudit, ModeledLadderCyclesAreSecretIndependent) {
  // The §5 claim at its sharpest: the modeled co-processor executes the
  // same cycle count for every (nonzero) key, both entry points.
  medsec::hw::Coprocessor cop(
      medsec::hw::CoprocessorConfig{.record_cycles = false});
  const Curve& curve = Curve::b163();
  Xoshiro256 rng(11);
  std::size_t classic = 0, blinded = 0;
  for (int i = 0; i < 3; ++i) {
    const auto k = rng.uniform_nonzero(curve.order());
    const auto padded = medsec::ecc::constant_length_scalar(curve, k);
    std::vector<int> bits;
    for (std::size_t b = padded.bit_length(); b-- > 0;)
      bits.push_back(padded.bit(b) ? 1 : 0);
    const auto r =
        cop.point_mult(bits, curve.base_point().x, {}, nullptr);
    if (i == 0) classic = r.exec.cycles;
    EXPECT_EQ(r.exec.cycles, classic);

    const auto kp = medsec::sidechannel::blind_scalar(
        curve, k, rng.next_u64() & 0xFFFFFFFFu);
    const std::size_t iters =
        medsec::sidechannel::blinded_ladder_iterations(curve, 32);
    std::vector<int> wbits;
    for (std::size_t b = iters; b-- > 0;) wbits.push_back(kp.bit(b) ? 1 : 0);
    medsec::hw::PointMultOptions opt;
    opt.neutral_init = true;
    const auto rb = cop.point_mult(wbits, curve.base_point().x, opt, nullptr);
    if (i == 0) blinded = rb.exec.cycles;
    EXPECT_EQ(rb.exec.cycles, blinded);
  }
  EXPECT_GT(blinded, classic);  // 196 iterations vs 163
}

// --- taint interpreter -------------------------------------------------------

TEST(CtAudit, TaintPropagationAndGuards) {
  ct::TaintContext ctx("unit");
  ct::Tainted<std::uint64_t> s(0xDEADBEEF);
  // Arithmetic propagates silently.
  const auto t = (s ^ ct::Tainted<std::uint64_t>(0xFF)) + s * s;
  (void)t;
  EXPECT_TRUE(ctx.report().clean());

  // Branching on a tainted comparison records.
  if (ct::ct::branch(s == ct::Tainted<std::uint64_t>(0), "unit:branch")) {
  }
  EXPECT_TRUE(
      ctx.report().has(ct::TaintViolationKind::kSecretBranch));

  // Indexing with a tainted value records.
  (void)ct::ct::index(s & ct::Tainted<std::uint64_t>(3), "unit:index");
  EXPECT_TRUE(
      ctx.report().has(ct::TaintViolationKind::kSecretTableIndex));

  // Division records a variable-latency op.
  (void)(s / ct::Tainted<std::uint64_t>(3));
  EXPECT_TRUE(
      ctx.report().has(ct::TaintViolationKind::kVariableLatencyOp));

  // Same (kind, site) aggregates into one entry with count.
  if (ct::ct::branch(s == ct::Tainted<std::uint64_t>(1), "unit:branch")) {
  }
  const auto report = ctx.report();
  std::uint64_t branch_count = 0;
  for (const auto& v : report.violations)
    if (v.kind == ct::TaintViolationKind::kSecretBranch) {
      EXPECT_EQ(v.site, "unit:branch");
      branch_count = v.count;
    }
  EXPECT_EQ(branch_count, 2u);
}

TEST(CtAudit, TaintGuardPassThroughForPlainTypes) {
  ct::TaintContext ctx("unit");
  // The production instantiation of audited templates: plain bool /
  // size_t flow through the guards without recording anything.
  EXPECT_TRUE(ct::ct::branch(true, "plain"));
  EXPECT_EQ(ct::ct::index(std::size_t{5}, "plain"), 5u);
  EXPECT_TRUE(ctx.report().clean());
}

TEST(CtAudit, TaintFeMatchesGf163) {
  Xoshiro256 rng(17);
  std::vector<Gf163> ops;
  ops.push_back(Gf163::zero());
  ops.push_back(Gf163::one());
  // Top-coefficient and all-ones patterns: maximal reduction spill.
  ops.push_back(Gf163{0, 0, 1ull << 34});
  ops.push_back(Gf163{~0ull, ~0ull, (1ull << 35) - 1});
  for (int i = 0; i < 12; ++i) ops.push_back(rand_fe(rng));

  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = 0; j < ops.size(); ++j) {
      const Gf163 &a = ops[i], &b = ops[j];
      const auto ta = ct::TaintFe::from(a), tb = ct::TaintFe::from(b);
      EXPECT_EQ(ct::TaintFe::mul(ta, tb).declassify(), Gf163::mul(a, b));
      EXPECT_EQ((ta + tb).declassify(), a + b);
      EXPECT_EQ(
          ct::TaintFe::mul_add_mul(ta, tb, tb, ta).declassify(),
          Gf163::mul_add_mul(a, b, b, a));
      EXPECT_EQ(ct::TaintFe::sqr_add_mul(ta, tb, ta).declassify(),
                Gf163::sqr_add_mul(a, b, a));
    }
    EXPECT_EQ(ct::TaintFe::sqr(ct::TaintFe::from(ops[i])).declassify(),
              Gf163::sqr(ops[i]));
  }

  // cswap parity with the production masking discipline.
  for (const std::uint64_t choice : {0ull, 1ull}) {
    Gf163 a = ops[4], b = ops[5];
    auto ta = ct::TaintFe::from(a), tb = ct::TaintFe::from(b);
    Gf163::cswap(choice, a, b);
    ct::TaintFe::cswap(ct::Tainted<std::uint64_t>(choice), ta, tb);
    EXPECT_EQ(ta.declassify(), a);
    EXPECT_EQ(tb.declassify(), b);
  }
}

TEST(CtAudit, TaintLadderCleanAndMatchesProduction) {
  const Curve& curve = Curve::b163();
  Xoshiro256 rng(23);
  const auto k = rng.uniform_nonzero(curve.order());

  // Classic constant-length ladder: audit must be violation-free AND
  // produce the exact production ladder state (same template, same
  // formulas — this is the no-drift guarantee).
  const auto classic =
      ct::taint_audit_ladder_classic(curve, k, curve.base_point());
  EXPECT_TRUE(classic.report.clean())
      << "violations: " << classic.report.violations.size();
  EXPECT_GT(classic.report.ops, 1000u);  // 163 iterations of field work
  const auto prod =
      medsec::ecc::montgomery_ladder_raw(curve, k, curve.base_point(), {});
  EXPECT_EQ(classic.state.x1, prod.x1);
  EXPECT_EQ(classic.state.z1, prod.z1);
  EXPECT_EQ(classic.state.x2, prod.x2);
  EXPECT_EQ(classic.state.z2, prod.z2);

  // Blinded fixed-length ladder, same contract.
  const auto kp = medsec::sidechannel::blind_scalar(curve, k, 0xABCD1234u);
  const std::size_t iters =
      medsec::sidechannel::blinded_ladder_iterations(curve, 32);
  const auto blinded =
      ct::taint_audit_ladder_blinded(curve, kp, iters, curve.base_point());
  EXPECT_TRUE(blinded.report.clean());
  const auto prod_b = medsec::ecc::montgomery_ladder_fixed_raw(
      curve, kp, iters, curve.base_point(), {});
  EXPECT_EQ(blinded.state.x1, prod_b.x1);
  EXPECT_EQ(blinded.state.z1, prod_b.z1);
  EXPECT_EQ(blinded.state.x2, prod_b.x2);
  EXPECT_EQ(blinded.state.z2, prod_b.z2);
}

TEST(CtAudit, TaintToysAreFlagged) {
  const auto branch = ct::taint_audit_toy_branch(42);
  EXPECT_FALSE(branch.clean());
  EXPECT_TRUE(branch.has(ct::TaintViolationKind::kSecretBranch));

  const auto table = ct::taint_audit_toy_table(42);
  EXPECT_FALSE(table.clean());
  EXPECT_TRUE(table.has(ct::TaintViolationKind::kSecretTableIndex));
}

// --- the grid ----------------------------------------------------------------

TEST(CtAudit, GridAcceptanceOnSmallConfig) {
  const auto grid = ct::run_ct_audit_grid(small_grid());
  EXPECT_TRUE(grid.acceptance_ok()) << [&grid] {
    std::string s;
    for (const auto& f : grid.acceptance_failures) s += f + "; ";
    return s;
  }();
  // All 12 combo rows present (9 core + 3 mega).
  std::size_t combos = 0;
  for (const auto& row : grid.dudect)
    if (row.report.target == "lane-ladder-step") ++combos;
  EXPECT_EQ(combos, 12u);
  EXPECT_EQ(grid.taint.size(), 5u);
}

TEST(CtAudit, GridIsDeterministicAcrossRuns) {
  const auto a = ct::run_ct_audit_grid(small_grid());
  const auto b = ct::run_ct_audit_grid(small_grid());
  EXPECT_EQ(a.digest_hex, b.digest_hex);
  ASSERT_EQ(a.dudect.size(), b.dudect.size());
  for (std::size_t i = 0; i < a.dudect.size(); ++i)
    EXPECT_EQ(a.dudect[i].report.max_abs_t, b.dudect[i].report.max_abs_t);

  // A different seed walks different inputs (the digest covers verdicts
  // and statistics, so it moves).
  ct::GridConfig other = small_grid();
  other.seed ^= 0x5A5A5A5A;
  const auto c = ct::run_ct_audit_grid(other);
  EXPECT_NE(a.digest_hex, c.digest_hex);
}

TEST(CtAudit, GridRestoresPinnedBackends) {
  namespace gf = medsec::gf2m;
  const gf::Backend be = gf::active_backend();
  const gf::LaneBackend lb = gf::active_lane_backend();
  ct::GridConfig cfg = small_grid();
  cfg.target_filter = "lane-ladder-step";  // kernel rows only, fast
  cfg.samples = 64;
  cfg.calibration = 16;
  (void)ct::run_ct_audit_grid(cfg);
  EXPECT_EQ(gf::active_backend(), be);
  EXPECT_EQ(gf::active_lane_backend(), lb);
}

}  // namespace
