// dudect.h — dudect-style statistical constant-time tester (Reparaz,
// Balasch & Verbauwhede, "dude, is my code constant time?").
//
// The §5 security argument claims every secret-dependent operation
// executes in data-independent time. This engine mechanizes that claim
// the dudect way: drive the target with two secret classes — a FIXED
// secret (all-zero bytes, the classic choice) and a fresh RANDOM secret
// per measurement — measure each execution through a TimeSource, and
// Welch-t-test the two timing distributions. Any |t| above the TVLA
// threshold means execution time depends on the secret.
//
// Differences from stock dudect, all in the direction of reproducible
// CI verdicts:
//   * Inputs are counter-derived (splitmix64 over seed × sample × lane,
//     the hw::FaultInjector idiom): sample i's class, secret bytes and
//     auxiliary randomness are pure functions of (seed, i), so a verdict
//     is bit-identical for any replay of the same seed.
//   * The accumulators are the PR 3 streaming kind
//     (sidechannel::RunningStats — Welford moments, mergeable in fixed
//     block order) and the t statistic is the shared
//     sidechannel::welch_t used by the TVLA engine, so there is exactly
//     one t-test implementation in the repo.
//   * Percentile cropping (dudect's answer to measurement tails) fixes
//     its thresholds from a seeded calibration prefix, then never
//     adapts again — adaptive thresholds would make verdicts depend on
//     scheduling noise.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ctaudit/time_source.h"
#include "rng/xoshiro.h"
#include "sidechannel/trace.h"

namespace medsec::ctaudit {

/// The n-th derivation word of a seeded campaign on an independent lane
/// (the hw::FaultInjector / engine::LossyLink counter-derivation idiom):
/// no hidden state, so any subset of samples can be regenerated exactly.
inline std::uint64_t derive_word(std::uint64_t seed, std::uint64_t n,
                                 std::uint64_t lane) {
  std::uint64_t s = seed ^ (0xD1B54A32D192ED03ULL * (n + 1)) ^
                    (0x9E3779B97F4A7C15ULL * lane);
  return rng::splitmix64(s);
}

/// Two-class Welch accumulator: one RunningStats per secret class,
/// mergeable in block order like every PR 3 streaming accumulator.
class WelchAccumulator {
 public:
  void add(int cls, double x) { group_[cls & 1].add(x); }
  void merge(const WelchAccumulator& o) {
    group_[0].merge(o.group_[0]);
    group_[1].merge(o.group_[1]);
  }
  const sidechannel::RunningStats& group(int cls) const {
    return group_[cls & 1];
  }
  /// Welch's t between the two classes (0 if either is degenerate).
  double t() const { return sidechannel::welch_t(group_[0], group_[1]); }

 private:
  sidechannel::RunningStats group_[2];
};

/// One measurable entry point — a field/lane kernel workload, a modeled
/// ladder, or a deliberately leaky negative control. The adapter owns
/// everything target-specific: how secret bytes become operands, and
/// what one measured execution is.
struct CtTarget {
  std::string name;
  /// Grid coordinates for the backend × lane matrix ("-" when the
  /// target is not a kernel combo).
  std::string backend = "-";
  std::string lanes = "-";
  /// False when the combo needs an ISA this CPU lacks: the row is
  /// reported as skipped, never failed (the CI lane-matrix discipline).
  bool available = true;
  /// Modeled targets (co-processor cycle counts) are orders of magnitude
  /// slower per measurement than kernel targets; the grid runner sizes
  /// their sample count separately.
  bool modeled = false;
  std::size_t secret_bytes = 21;  ///< 163 bits and then some
  /// One measured execution: consume `secret`, optionally draw public
  /// per-execution randomness from `aux_seed` (identically distributed
  /// in both classes — blinds, randomizers), and report instrumented
  /// work through ts.tick(). The engine brackets the call with
  /// ts.start()/ts.stop().
  std::function<void(const std::uint8_t* secret, std::size_t secret_len,
                     std::uint64_t aux_seed, TimeSource& ts)>
      run;
};

struct CtTestConfig {
  std::size_t samples = 4000;      ///< measurements fed to the accumulators
  std::size_t calibration = 128;   ///< pilot measurements fixing the crops
  std::size_t crops = 8;           ///< cropped accumulators (plus uncropped)
  std::uint64_t seed = 0x0C7A0D17ULL;
  double threshold = 4.5;          ///< TVLA convention
  /// An accumulator votes only when both classes hold at least this many
  /// measurements (high crops can starve).
  std::size_t min_group = 8;
};

struct CtTestReport {
  std::string target;
  std::string backend = "-";
  std::string lanes = "-";
  std::string source;              ///< TimeSource name
  std::size_t samples = 0;         ///< main-phase measurements taken
  std::size_t n_fixed = 0;         ///< uncropped fixed-class count
  std::size_t n_random = 0;        ///< uncropped random-class count
  double max_abs_t = 0.0;          ///< worst accumulator's |t|
  int worst_accumulator = -1;      ///< 0 = uncropped, k = crop k; -1 none voted
  double threshold = 4.5;
  bool pass = true;                ///< max_abs_t < threshold
  bool skipped = false;            ///< ISA-gated combo unavailable here
};

/// Run the fixed-vs-random test against one target. Deterministic for
/// deterministic time sources: the input schedule is counter-derived and
/// the accumulation order is fixed.
CtTestReport run_ct_test(const CtTarget& target, TimeSource& ts,
                         const CtTestConfig& config = {});

}  // namespace medsec::ctaudit
