#include "ctaudit/audit.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "ctaudit/taint_fe.h"
#include "ecc/curve.h"
#include "ecc/ladder_core.h"
#include "gf2m/backend.h"
#include "gf2m/gf163_lanes.h"
#include "hash/sha256.h"
#include "hw/coprocessor.h"
#include "sidechannel/countermeasures.h"

namespace medsec::ctaudit {

namespace {

using ecc::Curve;
using ecc::Scalar;
using ecc::WideScalar;
using gf2m::Gf163;
using gf2m::Gf163xN;

constexpr unsigned kBlindBits = 32;
/// Kernel-workload iterations per measurement (each iteration is one
/// fused mul_add_mul + one sqr + one cswap over the whole lane block).
constexpr std::size_t kKernelIters = 4;

/// Compiler-opaque sink for kernel results (the dispatch already goes
/// through function pointers, but keep the data flow visibly live).
volatile std::uint64_t g_sink = 0;

/// Map secret bytes to a nonzero scalar: k = (secret mod (n-1)) + 1.
/// Injective enough for the fixed-vs-random classes and never 0 mod n —
/// the all-zero fixed secret must not hit the result-at-infinity early
/// exit, whose modeled execution is genuinely (and legitimately) shorter.
Scalar scalar_from_secret(const Curve& curve, const std::uint8_t* secret,
                          std::size_t len) {
  Scalar s;
  for (std::size_t i = 0; i < len && i < 24; ++i) {
    const std::uint64_t byte = secret[i];
    s.set_limb(i / 8, s.limb(i / 8) | (byte << (8 * (i % 8))));
  }
  Scalar n_minus_1 = curve.order();
  n_minus_1.sub_in_place(Scalar{1});
  Scalar k = s.mod(n_minus_1) + Scalar{1};
  return k;
}

/// MSB-first padded key bits (constant_length_scalar discipline — the
/// classic ladder's fixed iteration count).
std::vector<int> padded_bits(const Curve& curve, const Scalar& k) {
  const Scalar padded = ecc::constant_length_scalar(curve, k);
  std::vector<int> bits;
  bits.reserve(padded.bit_length());
  for (std::size_t i = padded.bit_length(); i-- > 0;)
    bits.push_back(padded.bit(i) ? 1 : 0);
  return bits;
}

/// Small keyed PRF over the secret bytes for deriving kernel operands:
/// FNV-1a fold of the secret, then a splitmix64 stream. Pure function of
/// (secret, stream index) — same secret, same operands, every time.
std::uint64_t secret_fold(const std::uint8_t* secret, std::size_t len) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= secret[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

Gf163 fe_from_stream(std::uint64_t& state) {
  const std::uint64_t l0 = rng::splitmix64(state);
  const std::uint64_t l1 = rng::splitmix64(state);
  const std::uint64_t l2 = rng::splitmix64(state) & gf2m::kTopLimbMask;
  return Gf163{l0, l1, l2};
}

// --- kernel (backend × lane) targets ----------------------------------------

struct LaneCombo {
  gf2m::Backend backend;
  gf2m::LaneBackend lanes;
};

/// One measured kernel execution: pin the combo, derive a lane block of
/// operands from the secret, run kKernelIters of the fused ladder-step
/// kernels, tick once per dispatched kernel call. Under the op-count
/// source this measures the *modeled* cost (one unit per kernel — the
/// kernels have no data-dependent dispatch by construction); under a
/// wall-clock source it measures the real thing, advisory.
void run_lane_kernels(const LaneCombo& combo, const std::uint8_t* secret,
                      std::size_t len, TimeSource& ts) {
  gf2m::set_backend(combo.backend);
  gf2m::set_lane_backend(combo.lanes);

  const gf2m::LaneVTable* vt = gf2m::lane_vtable(combo.lanes);
  const std::size_t n =
      vt != nullptr ? std::min<std::size_t>(vt->preferred_width, 64) : 8;

  Gf163xN a(n), b(n), c(n), d(n), out(n);
  std::uint64_t state = secret_fold(secret, len);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, fe_from_stream(state));
    b.set(i, fe_from_stream(state));
    c.set(i, fe_from_stream(state));
    d.set(i, fe_from_stream(state));
  }
  std::vector<std::uint8_t> choice(n);
  for (std::size_t i = 0; i < n; ++i) choice[i] = secret[i % len] & 1;

  for (std::size_t it = 0; it < kKernelIters; ++it) {
    Gf163xN::mul_add_mul(a, b, c, d, out);
    ts.tick(1);
    Gf163xN::sqr_add_mul(out, a, b, d);
    ts.tick(1);
    Gf163xN::sqr(out, a);
    ts.tick(1);
    Gf163xN::cswap(choice.data(), a, c);
    ts.tick(1);
  }
  const Gf163 r = out.get(0) + a.get(n - 1);
  g_sink ^= r.limb(0) ^ r.limb(1) ^ r.limb(2);
}

CtTarget make_lane_target(gf2m::Backend be, gf2m::LaneBackend lb) {
  CtTarget t;
  t.name = "lane-ladder-step";
  t.backend = gf2m::backend_name(be);
  t.lanes = gf2m::lane_backend_name(lb);
  t.available =
      gf2m::backend_available(be) && gf2m::lane_backend_available(lb);
  t.modeled = false;
  const LaneCombo combo{be, lb};
  t.run = [combo](const std::uint8_t* secret, std::size_t len,
                  std::uint64_t /*aux*/, TimeSource& ts) {
    run_lane_kernels(combo, secret, len, ts);
  };
  return t;
}

// --- modeled co-processor ladder targets ------------------------------------

CtTarget make_ladder_unblinded_target() {
  CtTarget t;
  t.name = "ladder-unblinded";
  t.modeled = true;
  // One model instance per target, shared across measurements; the grid
  // is serial and point_mult fully resets per call. record_cycles off:
  // the cycle *count* is the measurement, the per-cycle records are
  // dead weight here.
  auto coproc = std::make_shared<hw::Coprocessor>(
      hw::CoprocessorConfig{.record_cycles = false});
  t.run = [coproc](const std::uint8_t* secret, std::size_t len,
                   std::uint64_t /*aux*/, TimeSource& ts) {
    const Curve& curve = Curve::b163();
    const Scalar k = scalar_from_secret(curve, secret, len);
    const auto r = coproc->point_mult(padded_bits(curve, k),
                                      curve.base_point().x, {}, nullptr);
    ts.tick(r.exec.cycles);
  };
  return t;
}

CtTarget make_ladder_blinded_target() {
  CtTarget t;
  t.name = "ladder-blinded";
  t.modeled = true;
  auto coproc = std::make_shared<hw::Coprocessor>(
      hw::CoprocessorConfig{.record_cycles = false});
  t.run = [coproc](const std::uint8_t* secret, std::size_t len,
                   std::uint64_t aux, TimeSource& ts) {
    const Curve& curve = Curve::b163();
    const Scalar k = scalar_from_secret(curve, secret, len);
    // The blind is *public* per-execution randomness: drawn from the aux
    // stream, identically distributed in both secret classes.
    const std::uint64_t r = aux & ((1ULL << kBlindBits) - 1);
    const WideScalar kp = sidechannel::blind_scalar(curve, k, r);
    const std::size_t iters =
        sidechannel::blinded_ladder_iterations(curve, kBlindBits);
    std::vector<int> bits;
    bits.reserve(iters);
    for (std::size_t i = iters; i-- > 0;) bits.push_back(kp.bit(i) ? 1 : 0);
    hw::PointMultOptions opt;
    opt.neutral_init = true;
    const auto res =
        coproc->point_mult(bits, curve.base_point().x, opt, nullptr);
    ts.tick(res.exec.cycles);
  };
  return t;
}

// --- leaky toys (negative controls) -----------------------------------------
//
// Templated over (FE, Bit) so the SAME toy runs under the dudect engine
// (FE = Gf163, Bit = uint64_t: the leak shows up as data-dependent
// ticks) and under the taint interpreter (FE = TaintFe,
// Bit = Tainted<uint64_t>: the leak shows up as a recorded violation
// through the ct:: guards). Tick is a no-op in the taint build.

template <class FE, class Bit, class Tick>
void toy_branch_core(const FE& x, const Bit* bits, std::size_t nbits,
                     Tick&& tick) {
  FE acc = x;
  for (std::size_t i = 0; i < nbits; ++i) {
    // THE classic SPA bug: square-and-multiply with the multiply guarded
    // by the key bit.
    if (ct::branch(bits[i] != Bit(0), "toy-branch:key-bit")) {
      acc = FE::mul(acc, x);
      tick(1);
    }
    acc = FE::sqr(acc);
    tick(1);
  }
}

template <class FE, class Bit, class Tick>
void toy_table_core(const FE& x, const Bit* bits, Tick&& tick) {
  // THE classic cache-timing bug: a window of key bits selects the
  // precomputed multiple to use.
  FE table[4] = {x, FE::sqr(x), FE::mul(x, FE::sqr(x)),
                 FE::sqr(FE::sqr(x))};
  const Bit window = (bits[0] & Bit(1)) | ((bits[1] & Bit(1)) << 1u);
  const std::size_t idx = ct::index(window, "toy-table:window");
  const FE acc = FE::mul(x, table[idx]);
  tick(1 + idx);
  (void)acc;
}

std::uint64_t toy_bits_from_secret(const std::uint8_t* secret,
                                   std::size_t len, std::uint64_t out[8]) {
  std::uint64_t fold = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = (i < len ? secret[i] : 0) & 1;
    fold = (fold << 1) | out[i];
  }
  return fold;
}

}  // namespace

CtTarget make_toy_branch_target() {
  CtTarget t;
  t.name = "toy-branch";
  t.run = [](const std::uint8_t* secret, std::size_t len,
             std::uint64_t /*aux*/, TimeSource& ts) {
    std::uint64_t bits[8];
    toy_bits_from_secret(secret, len, bits);
    toy_branch_core<Gf163, std::uint64_t>(
        Curve::b163().base_point().x, bits, 8,
        [&ts](std::uint64_t n) { ts.tick(n); });
  };
  return t;
}

CtTarget make_toy_table_target() {
  CtTarget t;
  t.name = "toy-table";
  t.run = [](const std::uint8_t* secret, std::size_t len,
             std::uint64_t /*aux*/, TimeSource& ts) {
    std::uint64_t bits[8];
    toy_bits_from_secret(secret, len, bits);
    toy_table_core<Gf163, std::uint64_t>(
        Curve::b163().base_point().x, bits,
        [&ts](std::uint64_t n) { ts.tick(n); });
  };
  return t;
}

std::vector<CtTarget> ct_audit_targets() {
  std::vector<CtTarget> targets;
  // The 3 × 3 core grid: every scalar backend against the three
  // always-defined lane backends (acceptance requires all nine rows).
  const gf2m::Backend backends[] = {gf2m::Backend::kPortable,
                                    gf2m::Backend::kKaratsuba,
                                    gf2m::Backend::kClmul};
  const gf2m::LaneBackend lanes[] = {gf2m::LaneBackend::kLaneScalar,
                                     gf2m::LaneBackend::kLaneBitsliced,
                                     gf2m::LaneBackend::kLaneClmulWide};
  for (const auto be : backends)
    for (const auto lb : lanes) targets.push_back(make_lane_target(be, lb));
  // ISA-gated mega-lane rows (extra coverage, skipped where unavailable).
  targets.push_back(make_lane_target(gf2m::Backend::kClmul,
                                     gf2m::LaneBackend::kLaneVpclmul512));
  targets.push_back(make_lane_target(gf2m::Backend::kClmul,
                                     gf2m::LaneBackend::kLaneVpclmul256));
  targets.push_back(make_lane_target(gf2m::Backend::kPortable,
                                     gf2m::LaneBackend::kLaneBitsliced256));
  // Modeled co-processor ladders: the paper's actual §5 timing claim.
  targets.push_back(make_ladder_unblinded_target());
  targets.push_back(make_ladder_blinded_target());
  // Negative controls.
  targets.push_back(make_toy_branch_target());
  targets.push_back(make_toy_table_target());
  return targets;
}

// --- secret-taint audits -----------------------------------------------------

namespace {

using TaintBit = Tainted<std::uint64_t>;

/// Tainted MSB-first bits of a scalar at a fixed length.
std::vector<TaintBit> taint_bits(const auto& k, std::size_t nbits) {
  std::vector<TaintBit> bits;
  bits.reserve(nbits);
  for (std::size_t i = nbits; i-- > 0;)
    bits.push_back(TaintBit(k.bit(i) ? 1 : 0));
  return bits;
}

ecc::LadderState declassify_state(const ecc::LadderStateT<TaintFe>& s) {
  return ecc::LadderState{s.x1.declassify(), s.z1.declassify(),
                          s.x2.declassify(), s.z2.declassify()};
}

}  // namespace

TaintLadderResult taint_audit_ladder_classic(const Curve& curve,
                                             const Scalar& k,
                                             const ecc::Point& p) {
  TaintContext ctx("ladder-classic");
  const TaintFe x = TaintFe::from(p.x);
  const TaintFe b = TaintFe::from(curve.b());
  const Scalar padded = ecc::constant_length_scalar(curve, k);
  const auto bits = taint_bits(padded, padded.bit_length());

  // Exactly montgomery_ladder_raw's schedule over the audited field: the
  // same ladder_*_t templates, skipping the processed leading 1.
  auto s = ecc::ladder_initial_state_t(b, x);
  for (std::size_t i = 1; i < bits.size(); ++i)
    ecc::ladder_iteration_t(b, x, s, bits[i]);

  return TaintLadderResult{ctx.report(), declassify_state(s)};
}

TaintLadderResult taint_audit_ladder_blinded(const Curve& curve,
                                             const WideScalar& k,
                                             std::size_t iterations,
                                             const ecc::Point& p) {
  TaintContext ctx("ladder-blinded");
  const TaintFe x = TaintFe::from(p.x);
  const TaintFe b = TaintFe::from(curve.b());
  const auto bits = taint_bits(k, iterations);

  // montgomery_ladder_fixed_raw's schedule: neutral start, every bit
  // processed, leading zeros included.
  auto s = ecc::ladder_zero_state_t(x);
  for (const TaintBit& bit : bits) ecc::ladder_iteration_t(b, x, s, bit);

  return TaintLadderResult{ctx.report(), declassify_state(s)};
}

TaintAuditReport taint_audit_fe_arithmetic(std::uint64_t seed) {
  TaintContext ctx("fe-arithmetic");
  std::uint64_t state = seed;
  TaintFe a = TaintFe::secret_from(fe_from_stream(state));
  TaintFe b = TaintFe::secret_from(fe_from_stream(state));
  TaintFe c = TaintFe::secret_from(fe_from_stream(state));
  TaintFe d = TaintFe::secret_from(fe_from_stream(state));
  for (int i = 0; i < 4; ++i) {
    const TaintFe e = TaintFe::mul_add_mul(a, b, c, d);
    const TaintFe f = TaintFe::sqr_add_mul(e, a, c);
    a = TaintFe::mul(e, f);
    b = TaintFe::sqr(a) + d;
    TaintFe::cswap(TaintBit(rng::splitmix64(state) & 1), c, d);
  }
  (void)a.declassify();
  return ctx.report();
}

TaintAuditReport taint_audit_toy_branch(std::uint64_t seed) {
  TaintContext ctx("toy-branch");
  TaintBit bits[8];
  for (std::size_t i = 0; i < 8; ++i)
    bits[i] = TaintBit(derive_word(seed, i, 0) & 1);
  toy_branch_core<TaintFe, TaintBit>(
      TaintFe::from(Curve::b163().base_point().x), bits, 8,
      [](std::uint64_t) {});
  return ctx.report();
}

TaintAuditReport taint_audit_toy_table(std::uint64_t seed) {
  TaintContext ctx("toy-table");
  TaintBit bits[8];
  for (std::size_t i = 0; i < 8; ++i)
    bits[i] = TaintBit(derive_word(seed, i, 0) & 1);
  toy_table_core<TaintFe, TaintBit>(
      TaintFe::from(Curve::b163().base_point().x), bits,
      [](std::uint64_t) {});
  return ctx.report();
}

// --- the grid ----------------------------------------------------------------

namespace {

void append_u64(std::string& s, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  s += buf;
}

void append_f(std::string& s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  s += buf;
}

/// Canonical row serialization: the digest input and the rerun-identity
/// fingerprint. Every field that reaches the JSON artifact is covered.
std::string canonical_rows(const CtAuditGrid& g) {
  std::string s;
  for (const DudectGridRow& row : g.dudect) {
    const CtTestReport& r = row.report;
    s += "d|" + r.target + "|" + r.backend + "|" + r.lanes + "|" + r.source +
         "|";
    append_u64(s, r.samples);
    s += "|";
    append_u64(s, r.n_fixed);
    s += "|";
    append_u64(s, r.n_random);
    s += "|";
    append_f(s, r.max_abs_t);
    s += "|";
    append_u64(s, static_cast<std::uint64_t>(r.worst_accumulator + 1));
    s += r.pass ? "|P" : "|F";
    s += r.skipped ? "|S" : "|-";
    s += row.expected_pass ? "|ep" : "|ef";
    s += "\n";
  }
  for (const TaintGridRow& row : g.taint) {
    const TaintAuditReport& r = row.report;
    s += "t|" + r.target + "|";
    append_u64(s, r.ops);
    for (const TaintViolation& v : r.violations) {
      s += "|";
      s += taint_violation_name(v.kind);
      s += ":" + v.site + ":";
      append_u64(s, v.count);
    }
    s += row.expected_clean ? "|ec" : "|ev";
    s += "\n";
  }
  return s;
}

std::string digest_of(const CtAuditGrid& g) {
  const std::string rows = canonical_rows(g);
  const auto d = hash::Sha256::digest(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(rows.data()), rows.size()));
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : d) {
    out += hex[b >> 4];
    out += hex[b & 0xF];
  }
  return out;
}

bool name_matches(const std::string& filter, const CtTarget& t) {
  if (filter.empty()) return true;
  const std::string full = t.name + "/" + t.backend + "/" + t.lanes;
  return full.find(filter) != std::string::npos;
}

/// One full pass over every target with both engines.
CtAuditGrid run_grid_once(const GridConfig& config) {
  CtAuditGrid grid;

  auto ts = make_time_source(config.source);
  for (const CtTarget& target : ct_audit_targets()) {
    if (!name_matches(config.target_filter, target)) continue;
    const bool toy = target.name.rfind("toy-", 0) == 0;
    CtTestConfig tc;
    tc.samples = target.modeled ? config.model_samples : config.samples;
    tc.calibration = target.modeled
                         ? std::min<std::size_t>(config.calibration, 16)
                         : config.calibration;
    tc.seed = config.seed;
    tc.threshold = config.threshold;
    grid.dudect.push_back(
        DudectGridRow{run_ct_test(target, *ts, tc), !toy});
  }

  if (config.target_filter.empty()) {
    const Curve& curve = Curve::b163();
    std::uint64_t state = config.seed;
    const Scalar k =
        Scalar{rng::splitmix64(state)}.mod(curve.order()) + Scalar{1};
    grid.taint.push_back(TaintGridRow{
        taint_audit_ladder_classic(curve, k, curve.base_point()).report,
        true});
    const WideScalar kp = sidechannel::blind_scalar(
        curve, k, rng::splitmix64(state) & ((1ULL << kBlindBits) - 1));
    grid.taint.push_back(TaintGridRow{
        taint_audit_ladder_blinded(
            curve, kp,
            sidechannel::blinded_ladder_iterations(curve, kBlindBits),
            curve.base_point())
            .report,
        true});
    grid.taint.push_back(
        TaintGridRow{taint_audit_fe_arithmetic(config.seed), true});
    grid.taint.push_back(
        TaintGridRow{taint_audit_toy_branch(config.seed), false});
    grid.taint.push_back(
        TaintGridRow{taint_audit_toy_table(config.seed), false});
  }

  grid.digest_hex = digest_of(grid);
  return grid;
}

void check_acceptance(CtAuditGrid& grid, const GridConfig& config) {
  auto fail = [&grid](std::string msg) {
    grid.acceptance_failures.push_back(std::move(msg));
  };

  // Every dudect row must match its expectation (skipped rows are
  // exempt: an ISA-gated combo that cannot run here is not a verdict).
  std::size_t combo_rows = 0, combo_unskipped = 0;
  for (const DudectGridRow& row : grid.dudect) {
    const CtTestReport& r = row.report;
    const std::string label = r.target + "/" + r.backend + "/" + r.lanes;
    if (r.skipped) continue;
    if (row.expected_pass && !r.pass)
      fail("leak detected in shipped target " + label);
    if (!row.expected_pass && r.pass)
      fail("negative control not detected: " + label +
           " (harness is blind)");
    if (r.target == "lane-ladder-step") ++combo_unskipped;
  }
  for (const DudectGridRow& row : grid.dudect)
    if (row.report.target == "lane-ladder-step") ++combo_rows;

  if (config.target_filter.empty()) {
    if (combo_rows < 12)
      fail("backend × lane grid incomplete: " + std::to_string(combo_rows) +
           " rows (want 9 core + 3 mega)");
    // The four no-ISA-required combos must actually have run.
    if (combo_unskipped < 4)
      fail("fewer than 4 backend × lane combos executed");
    for (const char* name : {"ladder-unblinded", "ladder-blinded"}) {
      const bool present = std::any_of(
          grid.dudect.begin(), grid.dudect.end(),
          [name](const DudectGridRow& row) {
            return row.report.target == name && !row.report.skipped;
          });
      if (!present) fail(std::string("modeled target missing: ") + name);
    }

    // Taint expectations: shipped rows clean, toys flagged with the
    // right violation kind.
    for (const TaintGridRow& row : grid.taint) {
      const TaintAuditReport& r = row.report;
      if (row.expected_clean && !r.clean())
        fail("taint violation in shipped target " + r.target);
    }
    auto taint_row = [&grid](const std::string& name) -> const
        TaintAuditReport* {
      for (const TaintGridRow& row : grid.taint)
        if (row.report.target == name) return &row.report;
      return nullptr;
    };
    const TaintAuditReport* tb = taint_row("toy-branch");
    if (tb == nullptr || !tb->has(TaintViolationKind::kSecretBranch))
      fail("taint engine missed the secret branch in toy-branch");
    const TaintAuditReport* tt = taint_row("toy-table");
    if (tt == nullptr || !tt->has(TaintViolationKind::kSecretTableIndex))
      fail("taint engine missed the secret table index in toy-table");
  }

  if (grid.rerun_checked && !grid.rerun_identical)
    fail("grid verdicts not bit-identical across reruns of seed " +
         std::to_string(config.seed));
}

}  // namespace

CtAuditGrid run_ct_audit_grid(const GridConfig& config) {
  // Kernel targets pin the global registries row by row; put the world
  // back the way we found it.
  const gf2m::Backend saved_backend = gf2m::active_backend();
  const gf2m::LaneBackend saved_lanes = gf2m::active_lane_backend();

  CtAuditGrid grid = run_grid_once(config);

  const bool deterministic = make_time_source(config.source)->deterministic();
  if (config.rerun_check && deterministic) {
    const CtAuditGrid second = run_grid_once(config);
    grid.rerun_checked = true;
    grid.rerun_identical = (second.digest_hex == grid.digest_hex);
  }

  gf2m::set_backend(saved_backend);
  gf2m::set_lane_backend(saved_lanes);

  check_acceptance(grid, config);
  return grid;
}

// --- JSON artifact -----------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool write_ct_audit_json(const CtAuditGrid& grid, const GridConfig& config,
                         const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"medsec-ct-audit-v1\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(config.seed));
  std::fprintf(f, "  \"source\": \"%s\",\n",
               time_source_name(config.source));
  std::fprintf(f, "  \"samples\": %zu,\n", config.samples);
  std::fprintf(f, "  \"model_samples\": %zu,\n", config.model_samples);
  std::fprintf(f, "  \"threshold\": %.17g,\n", config.threshold);
  std::fprintf(f, "  \"deterministic_rerun_checked\": %s,\n",
               grid.rerun_checked ? "true" : "false");
  std::fprintf(f, "  \"deterministic_rerun_identical\": %s,\n",
               grid.rerun_identical ? "true" : "false");
  std::fprintf(f, "  \"grid_digest\": \"%s\",\n", grid.digest_hex.c_str());
  std::fprintf(f, "  \"acceptance_ok\": %s,\n",
               grid.acceptance_ok() ? "true" : "false");
  std::fprintf(f, "  \"acceptance_failures\": [");
  for (std::size_t i = 0; i < grid.acceptance_failures.size(); ++i)
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 json_escape(grid.acceptance_failures[i]).c_str());
  std::fprintf(f, "],\n");

  std::fprintf(f, "  \"dudect\": [\n");
  for (std::size_t i = 0; i < grid.dudect.size(); ++i) {
    const CtTestReport& r = grid.dudect[i].report;
    std::fprintf(
        f,
        "    {\"target\": \"%s\", \"backend\": \"%s\", \"lanes\": \"%s\", "
        "\"source\": \"%s\", \"samples\": %zu, \"n_fixed\": %zu, "
        "\"n_random\": %zu, \"max_abs_t\": %.17g, "
        "\"worst_accumulator\": %d, \"threshold\": %.17g, "
        "\"pass\": %s, \"skipped\": %s, \"expected\": \"%s\"}%s\n",
        json_escape(r.target).c_str(), json_escape(r.backend).c_str(),
        json_escape(r.lanes).c_str(), r.source.c_str(), r.samples,
        r.n_fixed, r.n_random, r.max_abs_t, r.worst_accumulator,
        r.threshold, r.pass ? "true" : "false",
        r.skipped ? "true" : "false",
        grid.dudect[i].expected_pass ? "pass" : "fail",
        i + 1 == grid.dudect.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");

  std::fprintf(f, "  \"taint\": [\n");
  for (std::size_t i = 0; i < grid.taint.size(); ++i) {
    const TaintAuditReport& r = grid.taint[i].report;
    std::fprintf(f,
                 "    {\"target\": \"%s\", \"ops\": %llu, \"clean\": %s, "
                 "\"expected\": \"%s\", \"violations\": [",
                 json_escape(r.target).c_str(),
                 static_cast<unsigned long long>(r.ops),
                 r.clean() ? "true" : "false",
                 grid.taint[i].expected_clean ? "clean" : "violations");
    for (std::size_t v = 0; v < r.violations.size(); ++v) {
      const TaintViolation& viol = r.violations[v];
      std::fprintf(f,
                   "%s{\"kind\": \"%s\", \"site\": \"%s\", \"count\": %llu}",
                   v == 0 ? "" : ", ", taint_violation_name(viol.kind),
                   json_escape(viol.site).c_str(),
                   static_cast<unsigned long long>(viol.count));
    }
    std::fprintf(f, "]}%s\n", i + 1 == grid.taint.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

}  // namespace medsec::ctaudit
