// time_source.h — pluggable measurement clocks for the dudect engine.
//
// The constant-time tester (dudect.h) is generic over *what a
// measurement is*: modeled targets report exact co-processor cycles,
// host targets can be timed with the TSC or the portable steady clock,
// and instrumented targets tick an operation counter. Only deterministic
// sources are eligible for the exact CI verdict gate — a wall-clock
// measurement of the same seed is never bit-identical across runs, so
// those sources produce advisory reports (see the ct_audit CLI).
//
//   kOpCount     — deterministic instruction/op-count stub: the target
//                  itself reports executed work units via tick(); stop()
//                  returns their sum. Modeled co-processor targets tick
//                  their exact executed cycle count here, instrumented
//                  host drivers tick per dispatched kernel.
//   kSteadyClock — std::chrono::steady_clock nanoseconds. Portable wall
//                  time; noisy, advisory only.
//   kRdtsc       — x86 TSC with lfence serialization (falls back to the
//                  steady clock off x86). The classic dudect clock;
//                  noisy, advisory only.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>

#include "gf2m/arch.h"

#if MEDSEC_ARCH_X86_64
#include <x86intrin.h>
#endif

namespace medsec::ctaudit {

enum class TimeSourceKind {
  kOpCount,
  kSteadyClock,
  kRdtsc,
};

class TimeSource {
 public:
  virtual ~TimeSource() = default;
  virtual TimeSourceKind kind() const = 0;
  /// Deterministic sources return bit-identical measurements for the
  /// same seeded inputs; only those feed the exact CI verdict gate.
  virtual bool deterministic() const = 0;
  /// Op-count accumulation: instrumented targets report executed work
  /// units here. No-op on wall-clock sources (the clock is the
  /// measurement there).
  virtual void tick(std::uint64_t /*units*/) {}
  /// Begin one measurement window.
  virtual void start() = 0;
  /// End the window; returns the measurement in source units (ops,
  /// nanoseconds, or TSC cycles).
  virtual std::uint64_t stop() = 0;
};

class OpCountSource final : public TimeSource {
 public:
  TimeSourceKind kind() const override { return TimeSourceKind::kOpCount; }
  bool deterministic() const override { return true; }
  void tick(std::uint64_t units) override { count_ += units; }
  void start() override { count_ = 0; }
  std::uint64_t stop() override { return count_; }

 private:
  std::uint64_t count_ = 0;
};

class SteadyClockSource final : public TimeSource {
 public:
  TimeSourceKind kind() const override { return TimeSourceKind::kSteadyClock; }
  bool deterministic() const override { return false; }
  void start() override { t0_ = std::chrono::steady_clock::now(); }
  std::uint64_t stop() override {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  }

 private:
  std::chrono::steady_clock::time_point t0_{};
};

class RdtscSource final : public TimeSource {
 public:
  TimeSourceKind kind() const override { return TimeSourceKind::kRdtsc; }
  bool deterministic() const override { return false; }
#if MEDSEC_ARCH_X86_64
  void start() override {
    _mm_lfence();
    t0_ = __rdtsc();
    _mm_lfence();
  }
  std::uint64_t stop() override {
    _mm_lfence();
    const std::uint64_t t1 = __rdtsc();
    _mm_lfence();
    return t1 - t0_;
  }

 private:
  std::uint64_t t0_ = 0;
#else
  // No TSC off x86: degrade to the steady clock rather than refuse, so
  // `--source rdtsc` stays portable in scripts.
  void start() override { fallback_.start(); }
  std::uint64_t stop() override { return fallback_.stop(); }

 private:
  SteadyClockSource fallback_;
#endif
};

inline const char* time_source_name(TimeSourceKind k) {
  switch (k) {
    case TimeSourceKind::kOpCount:
      return "opcount";
    case TimeSourceKind::kSteadyClock:
      return "steady_clock";
    case TimeSourceKind::kRdtsc:
      return "rdtsc";
  }
  return "?";
}

/// Parse a source name (as accepted by `ct_audit --source`). Returns
/// false on unknown names — callers fail loudly, the backend-registry
/// discipline.
inline bool time_source_from_name(std::string_view name,
                                  TimeSourceKind& out) {
  if (name == "opcount" || name == "ops") {
    out = TimeSourceKind::kOpCount;
    return true;
  }
  if (name == "steady_clock" || name == "steady") {
    out = TimeSourceKind::kSteadyClock;
    return true;
  }
  if (name == "rdtsc" || name == "tsc") {
    out = TimeSourceKind::kRdtsc;
    return true;
  }
  return false;
}

inline std::unique_ptr<TimeSource> make_time_source(TimeSourceKind k) {
  switch (k) {
    case TimeSourceKind::kSteadyClock:
      return std::make_unique<SteadyClockSource>();
    case TimeSourceKind::kRdtsc:
      return std::make_unique<RdtscSource>();
    case TimeSourceKind::kOpCount:
      break;
  }
  return std::make_unique<OpCountSource>();
}

}  // namespace medsec::ctaudit
