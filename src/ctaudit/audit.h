// audit.h — the constant-time audit grid: every field backend × lane
// backend combination plus the modeled ladder entry points, pushed
// through both audit engines (the dudect-style statistical tester and
// the secret-taint interpreter), with the verdicts collected into one
// reproducible report (BENCH_ct_audit.json) that the CI perf gate
// checks exactly.
//
// The grid also carries its own negative controls: two deliberately
// leaky toy ladders (a secret-dependent branch, a secret-indexed table)
// that MUST be flagged by both engines. A run where the toys pass is a
// broken harness, not a clean codebase — the acceptance checks treat
// that as failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ctaudit/dudect.h"
#include "ctaudit/taint.h"
#include "ecc/ladder.h"

namespace medsec::ctaudit {

/// Every registered audit target: the 3 × 3 scalar-backend × lane-backend
/// kernel grid, the ISA-gated mega-lane rows, the modeled co-processor
/// ladders (unblinded classic and scalar-blinded fixed-length), and the
/// two leaky negative controls. Rows for combos this CPU cannot run are
/// returned with available == false (reported as skipped, never failed).
std::vector<CtTarget> ct_audit_targets();

/// The leaky toys, exposed individually for tests: a ladder with a
/// secret-dependent branch (one extra multiply per set key bit) and one
/// with a secret-indexed table (variable tick per window value). Both
/// must FAIL the dudect test and light up the taint report.
CtTarget make_toy_branch_target();
CtTarget make_toy_table_target();

// --- secret-taint audits -----------------------------------------------------

/// Result of interpreting a full ladder over TaintFe: the typed
/// violation report plus the declassified final state, so tests can
/// cross-check the audited arithmetic bit-for-bit against the production
/// ladder (same formulas in, same numbers out).
struct TaintLadderResult {
  TaintAuditReport report;
  ecc::LadderState state;
};

/// Classic constant-length ladder (montgomery_ladder_raw's schedule)
/// interpreted over TaintFe with tainted key bits.
TaintLadderResult taint_audit_ladder_classic(const ecc::Curve& curve,
                                             const ecc::Scalar& k,
                                             const ecc::Point& p);

/// Fixed-length blinded ladder (montgomery_ladder_fixed_raw's schedule,
/// neutral start, `iterations` bits of the wide scalar) over TaintFe.
TaintLadderResult taint_audit_ladder_blinded(const ecc::Curve& curve,
                                             const ecc::WideScalar& k,
                                             std::size_t iterations,
                                             const ecc::Point& p);

/// Straight-line field-arithmetic workload (mul / sqr / fused forms /
/// cswap chains on secret operands) over TaintFe — the kernel-level
/// discipline check.
TaintAuditReport taint_audit_fe_arithmetic(std::uint64_t seed);

/// The negative controls under the taint interpreter: must report
/// kSecretBranch / kSecretTableIndex respectively.
TaintAuditReport taint_audit_toy_branch(std::uint64_t seed);
TaintAuditReport taint_audit_toy_table(std::uint64_t seed);

// --- the grid ----------------------------------------------------------------

struct GridConfig {
  /// Main-phase measurements per kernel target (fast: hundreds; nightly:
  /// full dudect counts).
  std::size_t samples = 4000;
  /// Measurements per *modeled* target (each is a full co-processor
  /// point multiplication — milliseconds, not microseconds).
  std::size_t model_samples = 192;
  std::size_t calibration = 128;
  std::uint64_t seed = 0x0C7A0D17ULL;
  double threshold = 4.5;
  TimeSourceKind source = TimeSourceKind::kOpCount;
  /// Run the grid twice and require bit-identical verdicts (only
  /// meaningful for deterministic sources; skipped otherwise).
  bool rerun_check = true;
  /// Substring filter on target names; empty = everything.
  std::string target_filter;
};

struct TaintGridRow {
  TaintAuditReport report;
  bool expected_clean = true;  ///< negative controls expect violations
};

struct DudectGridRow {
  CtTestReport report;
  bool expected_pass = true;  ///< negative controls expect failure
};

struct CtAuditGrid {
  std::vector<DudectGridRow> dudect;
  std::vector<TaintGridRow> taint;
  /// SHA-256 over the canonical row serialization — the rerun-identity
  /// and artifact-comparison fingerprint.
  std::string digest_hex;
  /// True when the rerun check ran and both passes produced the same
  /// digest; also true (vacuously) when the check was skipped.
  bool rerun_identical = true;
  bool rerun_checked = false;
  /// Human-readable acceptance failures; empty = the grid satisfies the
  /// audit contract (shipped targets clean, toys flagged, required rows
  /// present and unskipped, deterministic rerun identical).
  std::vector<std::string> acceptance_failures;
  bool acceptance_ok() const { return acceptance_failures.empty(); }
};

/// Run both engines over the full target grid. Serial by design: kernel
/// targets pin the global backend registries per row; the active scalar
/// and lane backends are restored before returning.
CtAuditGrid run_ct_audit_grid(const GridConfig& config = {});

/// Serialize the grid verdicts to the BENCH_ct_audit.json schema
/// ("medsec-ct-audit-v1"), consumed by bench/check_perf_regression.py.
/// Returns false if the file cannot be written.
bool write_ct_audit_json(const CtAuditGrid& grid, const GridConfig& config,
                         const std::string& path);

}  // namespace medsec::ctaudit
