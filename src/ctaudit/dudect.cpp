#include "ctaudit/dudect.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace medsec::ctaudit {

namespace {

// Derivation lanes for one sample's worth of campaign randomness. Secret
// bytes use lanes kLaneSecret..kLaneSecret+secret_bytes-1, so keep the
// other lanes well below it.
constexpr std::uint64_t kLaneClass = 0;
constexpr std::uint64_t kLaneSecret = 1;
constexpr std::uint64_t kLaneAux = 500;

/// One measured execution of the target: derive the sample's class and
/// secret, run it under the time source, return (class, measurement).
struct Measurement {
  int cls;
  double value;
};

Measurement measure_one(const CtTarget& target, TimeSource& ts,
                        std::uint64_t seed, std::uint64_t n,
                        std::vector<std::uint8_t>& secret) {
  const int cls = static_cast<int>(derive_word(seed, n, kLaneClass) & 1);
  if (cls == 0) {
    // Fixed class: the classic dudect choice of the all-zero secret.
    // Targets whose secret must avoid a degenerate value (e.g. scalar 0)
    // remap inside their adapter — identically for both classes.
    std::fill(secret.begin(), secret.end(), std::uint8_t{0});
  } else {
    for (std::size_t j = 0; j < secret.size(); ++j)
      secret[j] =
          static_cast<std::uint8_t>(derive_word(seed, n, kLaneSecret + j));
  }
  const std::uint64_t aux = derive_word(seed, n, kLaneAux);

  ts.start();
  target.run(secret.data(), secret.size(), aux, ts);
  const std::uint64_t raw = ts.stop();
  return Measurement{cls, static_cast<double>(raw)};
}

}  // namespace

CtTestReport run_ct_test(const CtTarget& target, TimeSource& ts,
                         const CtTestConfig& config) {
  CtTestReport report;
  report.target = target.name;
  report.backend = target.backend;
  report.lanes = target.lanes;
  report.source = time_source_name(ts.kind());
  report.threshold = config.threshold;

  if (!target.available) {
    report.skipped = true;
    return report;
  }

  std::vector<std::uint8_t> secret(target.secret_bytes);

  // Calibration prefix: pilot measurements (both classes mixed) fix the
  // crop thresholds once. dudect's percentile schedule — crop k keeps
  // values up to the 1 - 0.5^(10(k+1)/crops) quantile, so low crops bite
  // hard into the tail and high crops barely trim. Thresholds never
  // adapt afterwards: frozen crops keep the verdict a pure function of
  // the seed under a deterministic source.
  std::vector<double> pilot;
  pilot.reserve(config.calibration);
  for (std::size_t i = 0; i < config.calibration; ++i)
    pilot.push_back(measure_one(target, ts, config.seed, i, secret).value);
  std::sort(pilot.begin(), pilot.end());

  std::vector<double> crop(config.crops, 0.0);
  for (std::size_t k = 0; k < config.crops; ++k) {
    const double q =
        1.0 - std::pow(0.5, 10.0 * static_cast<double>(k + 1) /
                                static_cast<double>(config.crops));
    std::size_t idx = 0;
    if (!pilot.empty())
      idx = std::min(pilot.size() - 1,
                     static_cast<std::size_t>(q * static_cast<double>(
                                                      pilot.size())));
    crop[k] = pilot.empty() ? 0.0 : pilot[idx];
  }

  // Main phase: accumulator 0 sees everything, accumulator 1+k sees only
  // measurements at or below crop threshold k. Sample indices continue
  // past the calibration prefix so no derived input is reused.
  std::vector<WelchAccumulator> acc(1 + config.crops);
  for (std::size_t i = 0; i < config.samples; ++i) {
    const Measurement m =
        measure_one(target, ts, config.seed, config.calibration + i, secret);
    acc[0].add(m.cls, m.value);
    for (std::size_t k = 0; k < config.crops; ++k)
      if (m.value <= crop[k]) acc[1 + k].add(m.cls, m.value);
  }

  report.samples = config.samples;
  report.n_fixed = acc[0].group(0).count();
  report.n_random = acc[0].group(1).count();

  // Verdict: worst |t| over every accumulator with both classes
  // populated. max_abs_t stays 0 with worst_accumulator == -1 when no
  // accumulator qualifies (degenerate config), which reads as pass —
  // the grid runner's sample floors prevent that for real rows.
  for (std::size_t a = 0; a < acc.size(); ++a) {
    if (acc[a].group(0).count() < config.min_group ||
        acc[a].group(1).count() < config.min_group)
      continue;
    const double t = std::fabs(acc[a].t());
    if (t > report.max_abs_t || report.worst_accumulator < 0) {
      report.max_abs_t = t;
      report.worst_accumulator = static_cast<int>(a);
    }
  }
  report.pass = report.max_abs_t < config.threshold;
  return report;
}

}  // namespace medsec::ctaudit
