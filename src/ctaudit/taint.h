// taint.h — secret-taint interpreter for the constant-time audit.
//
// The dudect engine (dudect.h) detects leakage statistically; this
// engine detects it structurally. `Tainted<T>` wraps a value whose
// provenance includes secret data. Taint propagates through every
// arithmetic/logical operator, and the three operations a constant-time
// discipline forbids on secrets are choke-pointed through audit guards:
//
//   * ct::branch(cond, site)  — branching on a secret-derived condition
//   * ct::index(idx, site)    — using a secret-derived value as a table
//                               index (cache-line address = leakage)
//   * variable-latency ops    — division/modulo and shifts BY a
//                               secret-derived amount record a violation
//                               directly in the operator
//
// An audit run instantiates the templated ladder core (ecc/ladder_core.h)
// with TaintFe (taint_fe.h) — three Tainted<uint64_t> limbs — under a
// TaintContext, then reads back the typed violation report. The shipped
// ladder formulas run unmodified through the same template, so what is
// audited is what ships; the toy negative controls route their leaks
// through the guards above and light up the report.
//
// The report mirrors core::IsaAuditReport: typed findings with a stable
// site string and an occurrence count, summarized by a clean() verdict.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace medsec::ctaudit {

enum class TaintViolationKind {
  kSecretBranch,       ///< control flow depends on secret data
  kSecretTableIndex,   ///< memory address depends on secret data
  kVariableLatencyOp,  ///< div/mod/shift-by-secret on secret data
};

inline const char* taint_violation_name(TaintViolationKind k) {
  switch (k) {
    case TaintViolationKind::kSecretBranch:
      return "secret-branch";
    case TaintViolationKind::kSecretTableIndex:
      return "secret-table-index";
    case TaintViolationKind::kVariableLatencyOp:
      return "variable-latency-op";
  }
  return "?";
}

struct TaintViolation {
  TaintViolationKind kind;
  std::string site;        ///< stable identifier of the offending use
  std::uint64_t count = 0; ///< occurrences at this (kind, site)
};

struct TaintAuditReport {
  std::string target;
  std::uint64_t ops = 0;  ///< tainted field-level operations interpreted
  std::vector<TaintViolation> violations;

  bool clean() const { return violations.empty(); }
  bool has(TaintViolationKind k) const {
    for (const TaintViolation& v : violations)
      if (v.kind == k) return true;
    return false;
  }
  std::uint64_t total_violations() const {
    std::uint64_t n = 0;
    for (const TaintViolation& v : violations) n += v.count;
    return n;
  }
};

/// Recording scope for one audited run. RAII: installs itself as the
/// thread's active context; Tainted operators and the ct:: guards report
/// into whichever context is active (none active = no recording, so
/// Tainted values are inert outside an audit).
class TaintContext {
 public:
  explicit TaintContext(std::string target_name);
  ~TaintContext();
  TaintContext(const TaintContext&) = delete;
  TaintContext& operator=(const TaintContext&) = delete;

  void record(TaintViolationKind kind, const char* site);
  void count_op(std::uint64_t n = 1) { ops_ += n; }

  /// Snapshot of the findings so far (violations aggregated by
  /// (kind, site) in first-seen order — deterministic).
  TaintAuditReport report() const;

  static TaintContext* current();

 private:
  std::string target_;
  std::uint64_t ops_ = 0;
  std::vector<TaintViolation> violations_;
  TaintContext* prev_ = nullptr;
};

namespace detail {
inline void taint_record(TaintViolationKind kind, const char* site) {
  if (TaintContext* ctx = TaintContext::current()) ctx->record(kind, site);
}
}  // namespace detail

/// A value carrying secret provenance. Arithmetic and bitwise operators
/// propagate taint silently (those are constant-time on every target the
/// model covers); comparisons yield Tainted<bool> so the result cannot
/// reach an `if` without passing ct::branch; division, modulo and
/// shift-by-tainted-amount record kVariableLatencyOp at use.
template <typename T>
class Tainted {
  static_assert(std::is_arithmetic_v<T>, "Tainted wraps arithmetic types");

 public:
  Tainted() = default;
  /// Public values lift implicitly: mixing a constant into a tainted
  /// expression should not need ceremony.
  constexpr Tainted(T v) : v_(v) {}  // NOLINT(google-explicit-constructor)

  /// Deliberate untaint: the caller asserts this value is safe to treat
  /// as public (e.g. the final ladder output, which the protocol
  /// publishes anyway). Not a violation — it is the audited equivalent
  /// of the secure/insecure zone boundary crossing.
  T declassify() const { return v_; }

  // -- taint-preserving arithmetic (constant-time op classes) --
  friend Tainted operator^(Tainted a, Tainted b) { return {T(a.v_ ^ b.v_)}; }
  friend Tainted operator&(Tainted a, Tainted b) { return {T(a.v_ & b.v_)}; }
  friend Tainted operator|(Tainted a, Tainted b) { return {T(a.v_ | b.v_)}; }
  friend Tainted operator+(Tainted a, Tainted b) { return {T(a.v_ + b.v_)}; }
  friend Tainted operator-(Tainted a, Tainted b) { return {T(a.v_ - b.v_)}; }
  friend Tainted operator*(Tainted a, Tainted b) { return {T(a.v_ * b.v_)}; }
  Tainted operator~() const { return {T(~v_)}; }
  Tainted operator-() const { return {T(-v_)}; }
  Tainted& operator^=(Tainted o) { v_ ^= o.v_; return *this; }
  Tainted& operator&=(Tainted o) { v_ &= o.v_; return *this; }
  Tainted& operator|=(Tainted o) { v_ |= o.v_; return *this; }
  Tainted& operator+=(Tainted o) { v_ += o.v_; return *this; }

  // -- shifts: by a PUBLIC amount they are constant-time (barrel
  // shifter); by a tainted amount the latency can depend on the secret
  // on small cores, so that form records a violation. --
  friend Tainted operator<<(Tainted a, unsigned s) { return {T(a.v_ << s)}; }
  friend Tainted operator>>(Tainted a, unsigned s) { return {T(a.v_ >> s)}; }
  friend Tainted operator<<(Tainted a, Tainted<unsigned> s);
  friend Tainted operator>>(Tainted a, Tainted<unsigned> s);

  // -- variable-latency op classes: recorded at use --
  friend Tainted operator/(Tainted a, Tainted b) {
    detail::taint_record(TaintViolationKind::kVariableLatencyOp,
                         "Tainted::operator/");
    return {T(a.v_ / b.v_)};
  }
  friend Tainted operator%(Tainted a, Tainted b) {
    detail::taint_record(TaintViolationKind::kVariableLatencyOp,
                         "Tainted::operator%");
    return {T(a.v_ % b.v_)};
  }

  // -- comparisons return tainted booleans: branching on them must go
  // through ct::branch, which records the violation. --
  friend Tainted<bool> operator==(Tainted a, Tainted b) {
    return Tainted<bool>(a.v_ == b.v_);
  }
  friend Tainted<bool> operator!=(Tainted a, Tainted b) {
    return Tainted<bool>(a.v_ != b.v_);
  }
  friend Tainted<bool> operator<(Tainted a, Tainted b) {
    return Tainted<bool>(a.v_ < b.v_);
  }

 private:
  T v_{};
};

template <typename T>
Tainted<T> operator<<(Tainted<T> a, Tainted<unsigned> s) {
  detail::taint_record(TaintViolationKind::kVariableLatencyOp,
                       "Tainted::operator<< (tainted amount)");
  return Tainted<T>(T(a.declassify() << s.declassify()));
}
template <typename T>
Tainted<T> operator>>(Tainted<T> a, Tainted<unsigned> s) {
  detail::taint_record(TaintViolationKind::kVariableLatencyOp,
                       "Tainted::operator>> (tainted amount)");
  return Tainted<T>(T(a.declassify() >> s.declassify()));
}

// ct:: guards — the only sanctioned exits from the tainted domain. Both
// have pass-through overloads for plain values so audited code can be
// templated over the field type and compile unchanged for the production
// build (where conditions are plain bools and never recorded).
namespace ct {

/// Branch on a tainted condition: records kSecretBranch and returns the
/// raw bool so execution can proceed (the audit observes, it does not
/// halt — one run collects every violation).
template <typename T>
inline bool branch(Tainted<T> cond, const char* site) {
  detail::taint_record(TaintViolationKind::kSecretBranch, site);
  return static_cast<bool>(cond.declassify());
}
inline bool branch(bool cond, const char* /*site*/) { return cond; }

/// Index a table with a tainted value: records kSecretTableIndex and
/// returns the raw index.
template <typename T>
inline std::size_t index(Tainted<T> idx, const char* site) {
  detail::taint_record(TaintViolationKind::kSecretTableIndex, site);
  return static_cast<std::size_t>(idx.declassify());
}
inline std::size_t index(std::size_t idx, const char* /*site*/) {
  return idx;
}

}  // namespace ct

}  // namespace medsec::ctaudit
