// taint_fe.h — GF(2^163) field element over tainted limbs, for the
// secret-taint audit of the ladder core.
//
// TaintFe satisfies the FE contract of ecc/ladder_core.h (mul / sqr /
// mul_add_mul / sqr_add_mul / cswap / zero / one / operator+) with three
// Tainted<uint64_t> limbs, so the audit build instantiates the *same*
// ladder formulas the production Gf163 runs. The arithmetic here is a
// deliberately branch-free reference implementation:
//
//   * carry-less 64×64 multiply — a fixed 64-round shift/mask/XOR loop
//     (no early exit on zero words, no data-dependent iteration count);
//   * 3×3-limb schoolbook product — nine emulated clmuls, always;
//   * reduction — the reduce326 word-fold schedule from
//     gf2m/reduce_163.h, transcribed over tainted words (same constants,
//     same unconditional fold).
//
// Correctness is cross-checked against Gf163 in tests (TaintFe::mul
// declassified must equal Gf163::mul on the same operands), and the
// taint audit verifies the *structure*: a full ladder over TaintFe must
// complete with zero recorded violations. Ops are counted per field
// operation (not per limb primitive) to keep the interpreter cheap.
#pragma once

#include <cstdint>

#include "ctaudit/taint.h"
#include "gf2m/gf2_163.h"
#include "gf2m/reduce_163.h"

namespace medsec::ctaudit {

class TaintFe {
 public:
  using Limb = Tainted<std::uint64_t>;

  TaintFe() = default;

  static TaintFe zero() { return TaintFe{}; }
  static TaintFe one() {
    TaintFe r;
    r.limb_[0] = Limb(1);
    return r;
  }

  /// Lift a public field element (curve constants, base-point x).
  static TaintFe from(const gf2m::Gf163& v) {
    TaintFe r;
    for (std::size_t i = 0; i < 3; ++i) r.limb_[i] = Limb(v.limb(i));
    return r;
  }
  /// Lift a secret field element. Identical representation — the taint
  /// model is binary (everything inside the audit is treated as
  /// secret-derived once it mixes with any input); the separate entry
  /// point documents intent at call sites.
  static TaintFe secret_from(const gf2m::Gf163& v) { return from(v); }

  /// Exit the tainted domain (ladder outputs, cross-check points).
  gf2m::Gf163 declassify() const {
    return gf2m::Gf163{limb_[0].declassify(), limb_[1].declassify(),
                       limb_[2].declassify()};
  }

  friend TaintFe operator+(const TaintFe& a, const TaintFe& b) {
    TaintFe r;
    for (std::size_t i = 0; i < 3; ++i) r.limb_[i] = a.limb_[i] ^ b.limb_[i];
    count_op();
    return r;
  }

  static TaintFe mul(const TaintFe& a, const TaintFe& b) {
    Limb p[6];
    mul_unreduced(a, b, p);
    count_op();
    return reduce(p);
  }

  static TaintFe sqr(const TaintFe& a) {
    Limb p[6];
    sqr_unreduced(a, p);
    count_op();
    return reduce(p);
  }

  /// a·b + c·d with a single reduction (XOR of the unreduced products —
  /// the same lazy-reduction shape the production backends use).
  static TaintFe mul_add_mul(const TaintFe& a, const TaintFe& b,
                             const TaintFe& c, const TaintFe& d) {
    Limb p[6], q[6];
    mul_unreduced(a, b, p);
    mul_unreduced(c, d, q);
    for (std::size_t i = 0; i < 6; ++i) p[i] ^= q[i];
    count_op();
    return reduce(p);
  }

  /// a^2 + b·c with a single reduction.
  static TaintFe sqr_add_mul(const TaintFe& a, const TaintFe& b,
                             const TaintFe& c) {
    Limb p[6], q[6];
    sqr_unreduced(a, p);
    mul_unreduced(b, c, q);
    for (std::size_t i = 0; i < 6; ++i) p[i] ^= q[i];
    count_op();
    return reduce(p);
  }

  /// Constant-time conditional swap, masking idiom — the tainted choice
  /// never reaches a branch or an index, so a clean audit of the ladder
  /// proves the cswap discipline held.
  static void cswap(const Limb& choice, TaintFe& a, TaintFe& b) {
    const Limb m = Limb(0) - (choice & Limb(1));
    for (std::size_t i = 0; i < 3; ++i) {
      const Limb t = (a.limb_[i] ^ b.limb_[i]) & m;
      a.limb_[i] ^= t;
      b.limb_[i] ^= t;
    }
    count_op();
  }

 private:
  static void count_op() {
    if (TaintContext* ctx = TaintContext::current()) ctx->count_op();
  }

  /// 64×64 carry-less multiply: fixed 64 rounds, each round folds bit i
  /// of b into the product under a mask. The only branch is on the
  /// public loop counter (guarding the i == 0 shift-by-64 UB), never on
  /// data — each secret bit is consumed through the mask.
  static void clmul64(const Limb& a, const Limb& b, Limb& lo, Limb& hi) {
    lo = Limb(0);
    hi = Limb(0);
    for (unsigned i = 0; i < 64; ++i) {
      const Limb mask = Limb(0) - ((b >> i) & Limb(1));
      lo ^= (a << i) & mask;
      if (i != 0) hi ^= (a >> (64u - i)) & mask;
    }
  }

  /// 3×3-limb schoolbook carry-less product into p[0..5]. Nine clmuls,
  /// unconditionally.
  static void mul_unreduced(const TaintFe& a, const TaintFe& b, Limb p[6]) {
    for (std::size_t i = 0; i < 6; ++i) p[i] = Limb(0);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        Limb lo, hi;
        clmul64(a.limb_[i], b.limb_[j], lo, hi);
        p[i + j] ^= lo;
        p[i + j + 1] ^= hi;
      }
    }
  }

  /// Squaring: cross terms vanish over GF(2), so the unreduced square is
  /// three self-clmuls at word offsets 0 / 2 / 4.
  static void sqr_unreduced(const TaintFe& a, Limb p[6]) {
    for (std::size_t i = 0; i < 3; ++i) {
      Limb lo, hi;
      clmul64(a.limb_[i], a.limb_[i], lo, hi);
      p[2 * i] = lo;
      p[2 * i + 1] = hi;
    }
  }

  /// reduce326 from gf2m/reduce_163.h over tainted words: same fold
  /// constants, same unconditional schedule.
  static TaintFe reduce(const Limb p_in[6]) {
    Limb p[6] = {p_in[0], p_in[1], p_in[2], p_in[3], p_in[4], p_in[5]};
    for (std::size_t i = 5; i >= 3; --i) {
      const Limb t = p[i];
      Limb lo(0), hi(0);
      for (const unsigned e : gf2m::kPentanomialExps) {
        lo ^= t << (gf2m::kWordFoldShift + e);
        hi ^= t >> (64u - gf2m::kWordFoldShift - e);
      }
      p[i - 3] ^= lo;
      p[i - 2] ^= hi;
    }
    const Limb t = p[2] >> gf2m::kTopLimbBits;
    Limb tail(0);
    for (const unsigned e : gf2m::kPentanomialExps) tail ^= t << e;
    TaintFe r;
    r.limb_[0] = p[0] ^ tail;
    r.limb_[1] = p[1];
    r.limb_[2] = p[2] & Limb(gf2m::kTopLimbMask);
    return r;
  }

  Limb limb_[3];
};

}  // namespace medsec::ctaudit
