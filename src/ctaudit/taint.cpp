#include "ctaudit/taint.h"

namespace medsec::ctaudit {

namespace {
thread_local TaintContext* g_current = nullptr;
}  // namespace

TaintContext::TaintContext(std::string target_name)
    : target_(std::move(target_name)), prev_(g_current) {
  g_current = this;
}

TaintContext::~TaintContext() { g_current = prev_; }

TaintContext* TaintContext::current() { return g_current; }

void TaintContext::record(TaintViolationKind kind, const char* site) {
  for (TaintViolation& v : violations_) {
    if (v.kind == kind && v.site == site) {
      ++v.count;
      return;
    }
  }
  violations_.push_back(TaintViolation{kind, site, 1});
}

TaintAuditReport TaintContext::report() const {
  TaintAuditReport r;
  r.target = target_;
  r.ops = ops_;
  r.violations = violations_;
  return r;
}

}  // namespace medsec::ctaudit
