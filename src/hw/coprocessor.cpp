#include "hw/coprocessor.h"

#include <bit>
#include <stdexcept>

#include "hw/activity.h"

namespace medsec::hw {

namespace {

using gf2m::Gf163;

int popcount(const Gf163& v) {
  return detail::popcount3(v.limb(0), v.limb(1), v.limb(2));
}

int hamming_distance(const Gf163& a, const Gf163& b) { return popcount(a + b); }

/// Fanout of the ladder routing select network: the paper counts 164
/// multiplexers driven by these control signals (§6).
constexpr int kMuxFanout = 164;

/// Decode/issue network toggles per instruction issue (opcode + register
/// addresses changing in the sequencer) — small, data-independent.
constexpr int kIssueToggles = 24;

/// Single-bit field-element mask for bit b (0..162).
Gf163 bit_mask(unsigned b) {
  std::uint64_t l[3] = {0, 0, 0};
  l[b / 64] = 1ULL << (b % 64);
  return Gf163{l[0], l[1], l[2]};
}

}  // namespace

const char* reg_name(Reg r) {
  switch (r) {
    case Reg::kX1: return "X1";
    case Reg::kZ1: return "Z1";
    case Reg::kX2: return "X2";
    case Reg::kZ2: return "Z2";
    case Reg::kT: return "T";
    case Reg::kXP: return "XP";
  }
  return "?";
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kSkipInstruction: return "skip-instruction";
    case FaultKind::kSelectGlitch: return "select-glitch";
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kStuckAt: return "stuck-at";
  }
  return "?";
}

Coprocessor::Coprocessor(const CoprocessorConfig& config)
    : config_(config),
      malu_(config.digit_size),
      area_ge_(ecc_coprocessor_ge(Gf163::kBits, config.digit_size)),
      clock_tree_ge_(ActivityWeights::clock_tree_per_cycle(area_ge_)) {
  // Compile the schedule fragments once: every point multiplication
  // replays these flat streams instead of regenerating microcode vectors
  // per ladder iteration.
  sched_.step[0] = compile(microcode::ladder_step(0));
  sched_.step[1] = compile(microcode::ladder_step(1));
  sched_.dummy[0] = compile(microcode::dummy_unit(0));
  sched_.dummy[1] = compile(microcode::dummy_unit(1));
  sched_.affine = compile(microcode::affine_conversion());
  sched_.zeroize[0] = compile(microcode::zeroize(false));
  sched_.zeroize[1] = compile(microcode::zeroize(true));
  // Init cost is shape-constant (immediates do not change latency):
  // cost both shapes of both variants with placeholder randomizers.
  const auto rand_pair = std::make_pair(Gf163::one(), Gf163::one());
  sched_.init_cycles[0][0] = program_cycles(microcode::ladder_init(std::nullopt));
  sched_.init_cycles[0][1] = program_cycles(microcode::ladder_init(rand_pair));
  sched_.init_cycles[1][0] =
      program_cycles(microcode::ladder_init_neutral(std::nullopt));
  sched_.init_cycles[1][1] =
      program_cycles(microcode::ladder_init_neutral(rand_pair));
}

std::size_t Coprocessor::latency(Op op) const {
  switch (op) {
    case Op::kMul:
    case Op::kSqr:
      // issue + 2 operand loads + pipeline fill/drain + writeback.
      return malu_.cycles_per_mult() + 6;
    case Op::kAdd:
      return 3;  // issue + XOR array + writeback
    case Op::kMov:
    case Op::kLdi:
      return 2;  // issue + writeback
    case Op::kSelSet:
      return 1;
  }
  return 1;
}

std::size_t Coprocessor::program_cycles(
    const std::vector<Instruction>& program) const {
  std::size_t cycles = 0;
  for (const Instruction& ins : program) cycles += latency(ins.op);
  return cycles;
}

CompiledProgram Coprocessor::compile(std::vector<Instruction> program) const {
  CompiledProgram p;
  p.code = std::move(program);
  p.cycles = program_cycles(p.code);
  return p;
}

const Gf163& Coprocessor::reg(Reg r) const {
  return regs_[static_cast<std::size_t>(r)];
}

void Coprocessor::set_reg(Reg r, const Gf163& v) {
  regs_[static_cast<std::size_t>(r)] = v;
}

void Coprocessor::arm_fault(const FaultSpec& fault) {
  if (fault.bit >= Gf163::kBits)
    throw std::invalid_argument("Coprocessor::arm_fault: bit out of range");
  fault_ = fault;
  fault_fired_ = false;
  reset_fault_counters();
}

void Coprocessor::disarm_fault() {
  fault_ = FaultSpec{};
  fault_fired_ = false;
  reset_fault_counters();
}

void Coprocessor::reset_fault_counters() {
  fault_instr_seen_ = 0;
  fault_cycles_seen_ = 0;
  fault_units_seen_ = 0;
}

Gf163 Coprocessor::apply_stuck(Reg r, Gf163 v) {
  if (fault_.kind != FaultKind::kStuckAt || r != fault_.reg) return v;
  if (v.bit(fault_.bit) != fault_.stuck_value) {
    v += bit_mask(fault_.bit);
    fault_fired_ = true;
  }
  return v;
}

Gf163 Coprocessor::operand(Reg r) {
  return apply_stuck(r, regs_[static_cast<std::size_t>(r)]);
}

void Coprocessor::emit(CycleRecord& rec, ExecResult& out, CycleSink* sink) {
  out.cycles += 1;
  rec.key_bit = current_key_bit_;
  rec.iteration = current_iteration_;
  double clock_ge;
  if (config_.secure.uniform_clock_gating) {
    // All six branches fire: popcount/6 is exactly 1.
    rec.clocked_reg_mask = 0x3F;
    clock_ge = clock_tree_ge_;
  } else {
    clock_ge = clock_tree_ge_ * (std::popcount(rec.clocked_reg_mask) / 6.0);
  }
  const double ge =
      ActivityWeights::kRegisterBit * rec.reg_write_toggles +
      ActivityWeights::kLogicNode * (rec.logic_toggles + rec.bus_toggles +
                                     rec.mux_control_toggles) +
      clock_ge;
  out.ge_toggles += ge;
  if (sink) sink->on_cycle(rec, ge);
  // Single-event upset: after the chosen executed cycle, one register bit
  // flips in place — the write port never sees it, so no toggle telemetry
  // betrays the fault (the attacker's ideal glitch).
  if (fault_.kind == FaultKind::kBitFlip && !fault_fired_ &&
      ++fault_cycles_seen_ == fault_.cycle) {
    regs_[static_cast<std::size_t>(fault_.reg)] += bit_mask(fault_.bit);
    fault_fired_ = true;
  }
}

void Coprocessor::run_instruction(const Instruction& ins, ExecResult& out,
                                  CycleSink* sink) {
  // Sequencer clock glitch: the slot-th instruction is fetched but never
  // issued — zero cycles, no writeback. The run's executed cycle count
  // drops below the compiled constant.
  if (fault_.kind == FaultKind::kSkipInstruction && !fault_fired_ &&
      fault_instr_seen_++ == fault_.slot) {
    fault_fired_ = true;
    return;
  }
  const bool isolated = config_.secure.isolate_datapath_inputs;

  auto fetch_cycle = [&](const Gf163& operand, Gf163& bus) {
    CycleRecord rec;
    rec.op = ins.op;
    rec.bus_toggles =
        static_cast<std::uint16_t>(hamming_distance(bus, operand));
    // Without input isolation the new bus value ripples into every unit
    // hanging off the bus, not just the active one: data-correlated
    // spurious switching (§6 "isolate the inputs to the data-paths").
    if (!isolated)
      rec.logic_toggles = static_cast<std::uint16_t>(2 * rec.bus_toggles);
    bus = operand;
    emit(rec, out, sink);
  };

  auto writeback_cycle = [&](Reg rd, const Gf163& value,
                             std::uint16_t extra_logic = 0) {
    CycleRecord rec;
    rec.op = ins.op;
    const Gf163 stored = apply_stuck(rd, value);
    Gf163& dst = regs_[static_cast<std::size_t>(rd)];
    rec.reg_write_toggles =
        static_cast<std::uint16_t>(hamming_distance(dst, stored));
    rec.logic_toggles = extra_logic;
    if (!isolated)
      rec.logic_toggles = static_cast<std::uint16_t>(
          rec.logic_toggles + 2 * rec.reg_write_toggles);
    if (!config_.secure.uniform_clock_gating)
      rec.clocked_reg_mask =
          static_cast<std::uint8_t>(1u << static_cast<unsigned>(rd));
    dst = stored;
    emit(rec, out, sink);
  };

  auto issue_cycle = [&] {
    CycleRecord rec;
    rec.op = ins.op;
    rec.mux_control_toggles = kIssueToggles;
    emit(rec, out, sink);
  };

  switch (ins.op) {
    case Op::kMul:
    case Op::kSqr: {
      const Gf163 a = operand(ins.ra);
      const Gf163 b = ins.op == Op::kSqr ? a : operand(ins.rb);
      issue_cycle();
      fetch_cycle(a, bus_a_);
      fetch_cycle(b, bus_b_);
      // The MALU pass streams its activity straight into the sink: the
      // per-cycle records appear in execution order with no intermediate
      // MaluResult materialization.
      const Gf163 product = malu_.multiply_stream(
          a, b, [&](std::uint32_t acc_toggles, std::uint32_t logic_toggles) {
            CycleRecord rec;
            rec.op = ins.op;
            rec.reg_write_toggles = static_cast<std::uint16_t>(acc_toggles);
            rec.logic_toggles = static_cast<std::uint16_t>(logic_toggles);
            emit(rec, out, sink);
          });
      // Pipeline fill/drain: two light cycles.
      for (int i = 0; i < 2; ++i) {
        CycleRecord rec;
        rec.op = ins.op;
        emit(rec, out, sink);
      }
      writeback_cycle(ins.rd, product);
      break;
    }
    case Op::kAdd: {
      const Gf163 a = operand(ins.ra);
      const Gf163 b = operand(ins.rb);
      issue_cycle();
      fetch_cycle(a, bus_a_);
      const Gf163 r = a + b;
      writeback_cycle(ins.rd, r,
                      static_cast<std::uint16_t>(popcount(r)));
      break;
    }
    case Op::kMov: {
      issue_cycle();
      writeback_cycle(ins.rd, operand(ins.ra));
      break;
    }
    case Op::kLdi: {
      issue_cycle();
      writeback_cycle(ins.rd, ins.imm);
      break;
    }
    case Op::kSelSet: {
      CycleRecord rec;
      rec.op = ins.op;
      if (config_.secure.balanced_mux_encoding) {
        // Dual-rail (s, s_bar) encoding: every update toggles exactly one
        // of the two rails across the whole 164-mux fanout — constant
        // Hamming difference (Figure 3).
        rec.mux_control_toggles = kMuxFanout;
      } else {
        // Single-rail: the net only toggles when the select changes —
        // i.e. when consecutive key bits differ. SPA-visible.
        rec.mux_control_toggles =
            ins.select != select_ ? static_cast<std::uint16_t>(kMuxFanout)
                                  : std::uint16_t{0};
      }
      select_ = ins.select;
      emit(rec, out, sink);
      break;
    }
  }
}

void Coprocessor::run_program(const CompiledProgram& program, ExecResult& out,
                              CycleSink* sink, std::size_t first_instruction) {
  for (std::size_t i = first_instruction; i < program.code.size(); ++i)
    run_instruction(program.code[i], out, sink);
}

ExecResult Coprocessor::execute(const std::vector<Instruction>& program,
                                CycleSink* sink) {
  reset_fault_counters();
  ExecResult out;
  for (const Instruction& ins : program) run_instruction(ins, out, sink);
  return out;
}

ExecResult Coprocessor::execute(const std::vector<Instruction>& program) {
  if (!config_.record_cycles) return execute(program, nullptr);
  std::vector<CycleRecord> records;
  records.reserve(program_cycles(program));
  RecordSink sink(records);
  ExecResult out = execute(program, &sink);
  out.records = std::move(records);
  return out;
}

ExecResult Coprocessor::zeroize(bool keep_result) {
  ExecResult out;
  run_program(sched_.zeroize[keep_result ? 1 : 0], out, nullptr);
  return out;
}

namespace microcode {

namespace {
Instruction mul(Reg rd, Reg ra, Reg rb) {
  return Instruction{Op::kMul, rd, ra, rb, {}, 0};
}
Instruction sqr(Reg rd, Reg ra) {
  return Instruction{Op::kSqr, rd, ra, ra, {}, 0};
}
Instruction add(Reg rd, Reg ra, Reg rb) {
  return Instruction{Op::kAdd, rd, ra, rb, {}, 0};
}
Instruction mov(Reg rd, Reg ra) {
  return Instruction{Op::kMov, rd, ra, ra, {}, 0};
}
Instruction ldi(Reg rd, const Gf163& v) {
  return Instruction{Op::kLdi, rd, rd, rd, v, 0};
}
Instruction selset(int s) {
  return Instruction{Op::kSelSet, Reg::kT, Reg::kT, Reg::kT, {}, s};
}
}  // namespace

std::vector<Instruction> ladder_step(int bit) {
  // Routing: A = the pair that is doubled, B = the pair that receives the
  // differential addition. For bit == 1 the roles of the physical register
  // pairs are exchanged — by the mux network, not by moving data.
  const Reg xa = bit ? Reg::kX2 : Reg::kX1;
  const Reg za = bit ? Reg::kZ2 : Reg::kZ1;
  const Reg xb = bit ? Reg::kX1 : Reg::kX2;
  const Reg zb = bit ? Reg::kZ1 : Reg::kZ2;
  const Reg t = Reg::kT, xp = Reg::kXP;
  return {
      selset(bit),
      // differential addition into B (LD x-only formulas):
      mul(t, xa, zb),    // T  = XA·ZB
      mul(xb, xb, za),   // XB = XB·ZA
      add(zb, t, xb),    // ZB = XA·ZB + XB·ZA
      sqr(zb, zb),       // ZB' = (XA·ZB + XB·ZA)^2
      mul(xb, xb, t),    // XB = (XA·ZB)(XB·ZA)
      mul(t, xp, zb),    // T  = x · ZB'
      add(xb, xb, t),    // XB' = x·ZB' + (XA·ZB)(XB·ZA)
      // doubling of A in place (b = 1 on K-163: X' = X^4 + Z^4):
      sqr(xa, xa),       // XA^2
      sqr(za, za),       // ZA^2
      mul(t, xa, za),    // T  = XA^2·ZA^2 = ZA'
      sqr(xa, xa),       // XA^4
      sqr(za, za),       // ZA^4
      add(xa, xa, za),   // XA' = XA^4 + ZA^4
      mov(za, t),        // ZA' <- T
  };
}

std::vector<Instruction> ladder_init(
    const std::optional<std::pair<Gf163, Gf163>>& randomizers) {
  std::vector<Instruction> p;
  // X2 = x^4 + 1, Z2 = x^2 (b = 1).
  p.push_back(sqr(Reg::kZ2, Reg::kXP));
  p.push_back(sqr(Reg::kX2, Reg::kZ2));
  p.push_back(ldi(Reg::kT, Gf163::one()));
  p.push_back(add(Reg::kX2, Reg::kX2, Reg::kT));
  if (randomizers) {
    // §7: "the chip randomizes the internal points representation by using
    // a random Z coordinate in each execution."
    p.push_back(ldi(Reg::kT, randomizers->first));
    p.push_back(mul(Reg::kX1, Reg::kXP, Reg::kT));  // X1 = x·l1
    p.push_back(mov(Reg::kZ1, Reg::kT));            // Z1 = l1
    p.push_back(ldi(Reg::kT, randomizers->second));
    p.push_back(mul(Reg::kX2, Reg::kX2, Reg::kT));
    p.push_back(mul(Reg::kZ2, Reg::kZ2, Reg::kT));
  } else {
    p.push_back(mov(Reg::kX1, Reg::kXP));  // X1 = x, Z1 = 1
    p.push_back(ldi(Reg::kZ1, Gf163::one()));
  }
  return p;
}

std::vector<Instruction> ladder_init_neutral(
    const std::optional<std::pair<Gf163, Gf163>>& randomizers) {
  std::vector<Instruction> p;
  p.push_back(ldi(Reg::kZ1, Gf163::zero()));  // lo = O = (l1 : 0)
  if (randomizers) {
    p.push_back(ldi(Reg::kX1, randomizers->first));
    p.push_back(ldi(Reg::kT, randomizers->second));
    p.push_back(mul(Reg::kX2, Reg::kXP, Reg::kT));  // hi = (x·l2 : l2)
    p.push_back(mov(Reg::kZ2, Reg::kT));
  } else {
    p.push_back(ldi(Reg::kX1, Gf163::one()));
    p.push_back(mov(Reg::kX2, Reg::kXP));  // hi = P = (x : 1)
    p.push_back(ldi(Reg::kZ2, Gf163::one()));
  }
  return p;
}

std::vector<Instruction> dummy_unit(int select) {
  // A decoy SELSET (jitters both the select-net spike train and the real
  // spikes' positions) plus one scratch-register ADD (jitters the gated-
  // write schedule). T is dead between iterations — ladder_step and
  // affine_conversion both write it before reading.
  return {selset(select), add(Reg::kT, Reg::kT, Reg::kXP)};
}

std::vector<Instruction> affine_conversion() {
  // Itoh–Tsujii inversion of Z1 (addition chain 1,2,4,5,10,20,40,80,81,162:
  // 9 MUL + 162 SQR), then X1 <- X1 · Z1^{-1}.
  // beta_1 lives in X2; the accumulator in Z2; T saves the pre-squaring
  // value for self-referential chain steps.
  std::vector<Instruction> p;
  const Reg b1 = Reg::kX2, acc = Reg::kZ2, t = Reg::kT;
  p.push_back(mov(b1, Reg::kZ1));
  p.push_back(mov(acc, Reg::kZ1));
  auto self_step = [&](unsigned n) {
    p.push_back(mov(t, acc));
    for (unsigned i = 0; i < n; ++i) p.push_back(sqr(acc, acc));
    p.push_back(mul(acc, acc, t));
  };
  auto b1_step = [&](unsigned n) {
    for (unsigned i = 0; i < n; ++i) p.push_back(sqr(acc, acc));
    p.push_back(mul(acc, acc, b1));
  };
  self_step(1);   // beta_2
  self_step(2);   // beta_4
  b1_step(1);     // beta_5
  self_step(5);   // beta_10
  self_step(10);  // beta_20
  self_step(20);  // beta_40
  self_step(40);  // beta_80
  b1_step(1);     // beta_81
  self_step(81);  // beta_162
  p.push_back(sqr(acc, acc));             // Z1^{-1} = beta_162^2
  p.push_back(mul(Reg::kX1, Reg::kX1, acc));
  return p;
}

std::vector<Instruction> zeroize(bool keep_result) {
  std::vector<Instruction> p;
  for (const Reg r : {Reg::kX1, Reg::kZ1, Reg::kX2, Reg::kZ2, Reg::kT,
                      Reg::kXP}) {
    if (keep_result && r == Reg::kX1) continue;
    p.push_back(ldi(r, Gf163::zero()));
  }
  return p;
}

}  // namespace microcode

std::size_t Coprocessor::point_mult_cycles(
    std::size_t num_key_bits, const PointMultOptions& options) const {
  const std::size_t iterations =
      num_key_bits - (options.neutral_init ? 0 : 1);
  const std::size_t init =
      sched_.init_cycles[options.neutral_init ? 1 : 0]
                        [options.z_randomizers ? 1 : 0];
  return init + iterations * sched_.step[0].cycles +
         options.dummy_ops.size() * sched_.dummy[0].cycles +
         sched_.affine.cycles;
}

PointMultResult Coprocessor::point_mult(const std::vector<int>& key_bits,
                                        const gf2m::Gf163& x,
                                        const PointMultOptions& options,
                                        CycleSink* sink) {
  if (!options.neutral_init && (key_bits.size() < 2 || key_bits.front() != 1))
    throw std::invalid_argument(
        "Coprocessor::point_mult: key_bits must be a padded scalar with a "
        "leading 1 (see ecc::constant_length_scalar)");
  if (options.neutral_init && key_bits.empty())
    throw std::invalid_argument("Coprocessor::point_mult: empty key");
  if (x.is_zero())
    throw std::invalid_argument("Coprocessor::point_mult: x(P) = 0");
  if (options.z_randomizers &&
      (options.z_randomizers->first.is_zero() ||
       options.z_randomizers->second.is_zero()))
    throw std::invalid_argument("Coprocessor::point_mult: zero randomizer");

  // Pre-bucket the schedule-jitter units by iteration boundary. The
  // boundary range is [0, iterations] — trailing units run between the
  // last iteration and the affine conversion.
  const std::size_t first_idx = options.neutral_init ? 0 : 1;
  const std::size_t iterations = key_bits.size() - first_idx;
  std::vector<std::vector<int>> jitter(iterations + 1);
  for (const PointMultOptions::DummyOp& d : options.dummy_ops) {
    if (d.before_iteration > iterations)
      throw std::invalid_argument(
          "Coprocessor::point_mult: dummy op beyond the schedule");
    jitter[d.before_iteration].push_back(d.select & 1);
  }
  // Safe-error select glitch: each SELSET-bearing unit — jitter dummies
  // and real ladder steps alike, in execution order — consumes one slot.
  // The glitched unit's SELSET is suppressed, so it runs under the STALE
  // routing select (skipping the compiled fragment's leading SELSET and
  // replaying the stale-select variant of the unit).
  auto glitched_unit = [&]() {
    if (fault_.kind != FaultKind::kSelectGlitch || fault_fired_) return false;
    return fault_units_seen_++ == fault_.slot;
  };
  auto run_jitter = [&](std::size_t boundary, ExecResult& total) {
    for (const int sel : jitter[boundary]) {
      if (glitched_unit()) {
        fault_fired_ = true;
        // The scratch ADD runs either way; only the select update is
        // lost, so a dummy-unit glitch is always computationally absorbed.
        run_program(sched_.dummy[sel], total, sink, 1);
      } else {
        run_program(sched_.dummy[sel], total, sink);
      }
    }
  };

  PointMultResult r;
  regs_ = {};
  bus_a_ = Gf163{};
  bus_b_ = Gf163{};
  select_ = 0;
  current_key_bit_ = -1;
  current_iteration_ = 0xffff;
  reset_fault_counters();

  set_reg(Reg::kXP, x);
  ExecResult total;

  // Load + init phase (per-call immediates; cost is shape-constant).
  for (const auto& ins :
       options.neutral_init
           ? microcode::ladder_init_neutral(options.z_randomizers)
           : microcode::ladder_init(options.z_randomizers))
    run_instruction(ins, total, sink);

  // Ladder: one compiled step fragment per remaining key bit, MSB first.
  // Jitter units (ground truth iteration = 0xffff: they are not ladder
  // iterations) interleave at their drawn boundaries.
  for (std::size_t i = first_idx; i < key_bits.size(); ++i) {
    run_jitter(i - first_idx, total);
    current_key_bit_ = static_cast<std::int8_t>(key_bits[i]);
    current_iteration_ = static_cast<std::uint16_t>(i - first_idx);
    if (glitched_unit()) {
      fault_fired_ = true;
      // SELSET suppressed: the muxes keep the stale select, so the whole
      // step computes under the PREVIOUS routing, whatever key_bits[i]
      // says. Absorbed iff key_bits[i] already equals the stale select —
      // one key-bit transition leaks per shot.
      run_program(sched_.step[select_ & 1], total, sink, 1);
    } else {
      run_program(sched_.step[key_bits[i] ? 1 : 0], total, sink);
    }
    current_key_bit_ = -1;
    current_iteration_ = 0xffff;
  }
  run_jitter(iterations, total);

  // Projective outputs, read by the controller before conversion (the
  // key-independent y-recovery runs in the insecure zone, §5).
  r.x1 = reg(Reg::kX1);
  r.z1 = reg(Reg::kZ1);
  r.x2 = reg(Reg::kX2);
  r.z2 = reg(Reg::kZ2);

  if (r.z1.is_zero()) {
    r.result_is_infinity = true;
  } else {
    run_program(sched_.affine, total, sink);
    r.x_affine = reg(Reg::kX1);
  }

  r.exec = std::move(total);
  // Dynamic energy from the weighted toggle total, static from leakage
  // over the whole run.
  r.energy_j = r.exec.ge_toggles * config_.tech.energy_per_ge_toggle_j +
               config_.tech.leakage_w_per_ge * area_ge_ *
                   static_cast<double>(r.exec.cycles) / config_.tech.clock_hz;
  r.seconds = static_cast<double>(r.exec.cycles) / config_.tech.clock_hz;
  r.avg_power_w = r.seconds > 0 ? r.energy_j / r.seconds : 0.0;
  return r;
}

PointMultResult Coprocessor::point_mult(const std::vector<int>& key_bits,
                                        const gf2m::Gf163& x,
                                        const PointMultOptions& options) {
  if (!config_.record_cycles) return point_mult(key_bits, x, options, nullptr);
  std::vector<CycleRecord> records;
  if (!key_bits.empty())
    records.reserve(point_mult_cycles(key_bits.size(), options));
  RecordSink sink(records);
  PointMultResult r = point_mult(key_bits, x, options, &sink);
  r.exec.records = std::move(records);
  return r;
}

}  // namespace medsec::hw
