// technology.h — CMOS technology calibration for the energy/power model.
//
// The paper's prototype is fabricated in UMC 0.13 µm and measured at
// 847.5 kHz / 1.0 V: 50.4 µW average power, 5.1 µJ and 1/9.8 s per point
// multiplication (§6). We do not have the ASIC; we have a cycle-accurate
// model of it. This header holds the *single* calibration point that turns
// model cycles and switching activity into joules: everything downstream
// (digit-size sweeps, protocol energy, radio trade-offs) derives from these
// constants, so the reproduction matches the paper where the paper gives a
// number and extrapolates with a defensible physical model where it does not.
#pragma once

#include <cstdint>

namespace medsec::hw {

/// One CMOS process + operating point.
struct Technology {
  const char* name;
  double vdd_volts;          ///< core supply
  double clock_hz;           ///< operating frequency
  /// Dynamic energy of one gate-equivalent (2-input NAND) switching once,
  /// in joules. For a 0.13 µm process at 1.0 V this is on the order of a
  /// few femtojoules; the exact value is calibrated below so that the
  /// modeled co-processor reproduces the paper's measured 50.4 µW.
  double energy_per_ge_toggle_j;
  /// Static (leakage) power per gate equivalent, in watts. Small at
  /// 0.13 µm but non-zero; it is what the idle device pays.
  double leakage_w_per_ge;
  /// Area of one gate equivalent in µm² (UMC 0.13 µm standard cell NAND2).
  double um2_per_ge;

  /// Energy of one clock cycle given the number of gate-equivalent toggles
  /// in that cycle and the total gate count (for leakage).
  constexpr double cycle_energy_j(double ge_toggles, double total_ge) const {
    return ge_toggles * energy_per_ge_toggle_j +
           leakage_w_per_ge * total_ge / clock_hz;
  }

  /// The paper's operating point. The toggle energy is calibrated so that
  /// the modeled ECC co-processor (digit size 4, ~12 kGE, measured average
  /// switching activity) consumes 50.4 µW at 847.5 kHz — see
  /// tests/test_hw.cpp:CalibrationReproducesPaperPower.
  static constexpr Technology umc130() {
    return Technology{
        .name = "UMC 0.13um @ 1.0V, 847.5 kHz",
        .vdd_volts = 1.0,
        .clock_hz = 847'500.0,
        .energy_per_ge_toggle_j = 11.7e-15,
        .leakage_w_per_ge = 0.45e-9,
        .um2_per_ge = 5.12,
    };
  }

  /// A faster operating point used by "energy-rich" reader-side models
  /// (the phone / mini-server of §2 does not run at sub-MHz).
  static constexpr Technology umc130_fast() {
    Technology t = umc130();
    t.name = "UMC 0.13um @ 1.2V, 20 MHz";
    t.vdd_volts = 1.2;
    t.clock_hz = 20.0e6;
    // Dynamic energy scales with Vdd^2.
    t.energy_per_ge_toggle_j = 11.7e-15 * (1.2 * 1.2);
    return t;
  }
};

}  // namespace medsec::hw
