// gates.h — gate-equivalent (GE) area inventory for the primitives the
// protocol layer can place on the device.
//
// §4 of the paper makes an implementation-size argument: "protocol designers
// tend to believe that hash functions are very cheap in hardware ... The
// smallest SHA-1 implementation uses 5527 gates, while an ECC core uses
// about 12k gates." This module carries those published numbers (with their
// sources) plus a first-order structural model for the pieces we actually
// build (register files, digit-serial multipliers), so the area side of the
// area–power–security trade-off (§5) is computable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace medsec::hw {

/// Published gate counts for standard primitives (smallest known
/// RFID-class implementations circa the paper).
struct GateInventory {
  std::string name;
  double gate_equivalents;
  std::string source;
};

/// The catalogue §4 argues from, plus the lightweight ciphers the medical /
/// RFID design space actually uses.
std::vector<GateInventory> standard_inventory();

/// Look up one entry by name; throws std::out_of_range if unknown.
const GateInventory& inventory(const std::string& name);

// --- structural model for the pieces we synthesize ourselves ---------------

/// GE cost of standard cells (typical 0.13 µm library, NAND2 == 1 GE).
struct CellCosts {
  static constexpr double kNand2 = 1.0;
  static constexpr double kAnd2 = 1.33;
  static constexpr double kXor2 = 2.67;
  static constexpr double kMux2 = 2.33;
  static constexpr double kDff = 5.67;   ///< scan flip-flop
};

/// Area of an n-bit register. Load enables are implemented with gated
/// clocks (§6 discusses the security constraints on doing so), so the cost
/// is the flip-flops themselves.
constexpr double register_ge(std::size_t bits) {
  return static_cast<double>(bits) * CellCosts::kDff;
}

/// Area of the digit-serial F_2^m multiplier datapath for digit size d:
/// d rows of m AND gates (partial products) + m XOR accumulate per row +
/// the reduction network (one XOR per nonzero reduction-polynomial tap per
/// row) + the m-bit accumulator register.
double digit_serial_multiplier_ge(std::size_t m, std::size_t digit_size,
                                  std::size_t reduction_taps = 4);

/// Area of the full ECC co-processor: 6 m-bit registers, the MALU for the
/// given digit size, control/sequencer overhead. Calibrated to the ~12 kGE
/// the paper quotes for an ECC core at d = 4 (Lee et al. [10]).
double ecc_coprocessor_ge(std::size_t m, std::size_t digit_size);

/// Area overhead factors of side-channel-resistant logic styles (§6):
/// WDDL ≈ 3× single-rail area, SABL ≈ 2× (plus full-custom effort).
struct LogicStyleOverhead {
  static constexpr double kCmos = 1.0;
  static constexpr double kWddl = 3.0;
  static constexpr double kSabl = 2.0;
};

}  // namespace medsec::hw
