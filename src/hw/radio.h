// radio.h — energy model of the wireless link.
//
// §4: "the communication should be minimized since wireless communication
// is power-hungry", and the computation-vs-communication trade-off of the
// paper's refs [4, 5] "depends on the cryptographic algorithm, the digital
// platform and the wireless distance over which the communication occurs."
// This is the standard first-order WSN radio model those studies use:
//
//   E_tx(b, d) = b * (e_elec + e_amp * d^n)     transmit b bits over d m
//   E_rx(b)    = b * e_elec                     receive b bits
//
// with a path-loss exponent n of 2 (free space) to 4 (body-worn, through
// tissue — the medical BAN case).
#pragma once

#include <cmath>
#include <cstddef>

namespace medsec::hw {

struct RadioModel {
  double e_elec_j_per_bit = 50e-9;   ///< electronics energy per bit
  double e_amp_j_per_bit_mn = 100e-12;  ///< amplifier energy per bit per m^n
  double path_loss_exponent = 2.0;
  double bit_rate_hz = 250e3;        ///< for latency accounting

  double tx_energy_j(std::size_t bits, double distance_m) const {
    return static_cast<double>(bits) *
           (e_elec_j_per_bit +
            e_amp_j_per_bit_mn * std::pow(distance_m, path_loss_exponent));
  }
  double rx_energy_j(std::size_t bits) const {
    return static_cast<double>(bits) * e_elec_j_per_bit;
  }
  double airtime_s(std::size_t bits) const {
    return static_cast<double>(bits) / bit_rate_hz;
  }

  /// Typical BAN radio (Zigbee-class front end, free-space-ish).
  static RadioModel ban() { return RadioModel{}; }
  /// Through-body / implant link: much steeper path loss.
  static RadioModel implant() {
    return RadioModel{50e-9, 0.0013e-9, 4.0, 250e3};
  }
};

}  // namespace medsec::hw
