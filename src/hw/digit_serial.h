// digit_serial.h — bit-exact model of the digit-serial F_2^163 multiplier
// (MALU) at the heart of the paper's co-processor.
//
// §5: "a digit-serial multiplier for F_2^163 is used. The choice of the
// digit-size determines the power needed for the computation, as well as
// the latency and area. By using a digit serial multiplication with a
// 163×4 modular multiplier we achieve the optimal area-energy product
// within the given latency constraints."
//
// The model processes the multiplier operand most-significant-digit first,
// d bits per clock cycle, exactly as the hardware would:
//
//   acc <- (acc << d) mod f(x)  XOR  a * digit(b, i)   (one cycle)
//
// and records, per cycle, the switching activity of the accumulator
// register (Hamming distance between consecutive states) — the quantity
// the CMOS power model and the side-channel trace simulator consume.
//
// The primary execution path is multiply_stream: the per-cycle activity is
// handed to an inlined callback as it is produced, with no per-call heap
// allocation (the partial-product rows live on the stack, as wires do in
// the hardware). multiply() wraps it and materializes the MaluResult
// activity log for callers that want the whole pass at once.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "gf2m/gf2_163.h"
#include "hw/activity.h"
#include "hw/gates.h"
#include "hw/technology.h"

namespace medsec::hw {

/// Per-cycle activity record of one multiplier pass.
struct MaluCycle {
  std::uint32_t acc_toggles;   ///< accumulator register Hamming distance
  std::uint32_t logic_toggles; ///< estimated combinational toggles
};

/// Result of one modular multiplication with full instrumentation.
struct MaluResult {
  gf2m::Gf163 product;
  std::size_t cycles = 0;
  std::vector<MaluCycle> activity;  ///< one entry per cycle
  double total_toggles() const {
    double t = 0;
    for (const auto& c : activity) t += c.acc_toggles + c.logic_toggles;
    return t;
  }
};

namespace detail {

/// Joint population count of a 3-limb value, branch- and libcall-free
/// (without -mpopcnt, std::popcount lowers to a __popcountdi2 call per
/// limb — ~40% of the MALU hot loop). Classic SWAR bytewise counts,
/// summed across the limbs before the one multiply-fold: per-byte sums
/// reach at most 3 * 8 = 24 < 255, and the folded total at most 192, so
/// nothing overflows.
inline int popcount3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  const auto byte_counts = [](std::uint64_t x) {
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    return (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
  };
  const std::uint64_t s = byte_counts(a) + byte_counts(b) + byte_counts(c);
  return static_cast<int>((s * 0x0101010101010101ULL) >> 56);
}

}  // namespace detail

/// Most-significant-digit-first digit-serial multiplier over F_2^163.
class DigitSerialMultiplier {
 public:
  /// digit_size in bits per cycle; the paper sweeps this dimension and
  /// settles on 4. Valid range [1, 32].
  explicit DigitSerialMultiplier(std::size_t digit_size);

  std::size_t digit_size() const { return digit_size_; }

  /// Latency of one multiplication in clock cycles: ceil(163 / d).
  std::size_t cycles_per_mult() const { return cycles_; }

  /// Datapath area in gate equivalents.
  double area_ge() const { return area_ge_; }

  /// Execute a full a*b mod f(x) pass, bit-exact, streaming the per-cycle
  /// activity into `per_cycle(acc_toggles, logic_toggles)` as each cycle
  /// completes. Allocation-free; the callback is inlined at the call
  /// site, and the paper's d = 4 gets a fully unrolled constant-width
  /// body. Returns the reduced product. Exactly the cycles and activity
  /// values of multiply() — that wrapper is implemented on top of this.
  template <typename PerCycle>
  gf2m::Gf163 multiply_stream(const gf2m::Gf163& a, const gf2m::Gf163& b,
                              PerCycle&& per_cycle) const;

 private:
  /// One body for every digit size: D > 0 bakes the width in as a
  /// compile-time constant (shift amounts, digit mask, row count all
  /// fold); D == 0 reads the runtime width.
  template <std::size_t D, typename PerCycle>
  gf2m::Gf163 multiply_stream_body(const gf2m::Gf163& a,
                                   const gf2m::Gf163& b,
                                   PerCycle&& per_cycle) const;

 public:

  /// Execute a full a*b mod f(x) pass, bit-exact, with activity log.
  /// The result is cross-checked against gf2m::Gf163::mul in tests.
  /// Internally word-parallel: the d-bit shift-reduce network and digit
  /// extraction are single word operations per cycle, not bit loops.
  MaluResult multiply(const gf2m::Gf163& a, const gf2m::Gf163& b) const;

  /// Product only, no per-cycle activity model: delegates to the active
  /// gf2m backend (bit-exact with multiply().product — asserted by the
  /// backend cross-check tests). Use when the caller needs functional
  /// hardware-equivalence, not the power trace.
  gf2m::Gf163 product_only(const gf2m::Gf163& a, const gf2m::Gf163& b) const;

  /// Average energy of one multiplication under the given technology,
  /// using the average switching activity of random operands (analytic,
  /// no simulation): used by the d-sweep bench.
  double avg_mult_energy_j(const Technology& tech) const;

 private:
  std::size_t digit_size_;
  std::size_t cycles_;
  double area_ge_;
  double glitch_;  ///< ActivityWeights::glitch_factor(digit_size_)
};

template <typename PerCycle>
gf2m::Gf163 DigitSerialMultiplier::multiply_stream(const gf2m::Gf163& a,
                                                   const gf2m::Gf163& b,
                                                   PerCycle&& per_cycle) const {
  // The paper's chosen width gets the constant-folded body; everything
  // else (the d-sweep bench, tests) takes the generic one.
  if (digit_size_ == 4)
    return multiply_stream_body<4>(a, b, std::forward<PerCycle>(per_cycle));
  return multiply_stream_body<0>(a, b, std::forward<PerCycle>(per_cycle));
}

template <std::size_t D, typename PerCycle>
gf2m::Gf163 DigitSerialMultiplier::multiply_stream_body(
    const gf2m::Gf163& a, const gf2m::Gf163& b, PerCycle&& per_cycle) const {
  constexpr std::uint64_t kTop35 = (std::uint64_t{1} << 35) - 1;
  // Pentanomial fold taps of f(x) = x^163 + x^7 + x^6 + x^3 + 1 packed as
  // the low-limb XOR pattern of one overflow bit: 1 + x^3 + x^6 + x^7.
  constexpr std::uint64_t kFold = (1u << 7) | (1u << 6) | (1u << 3) | 1u;
  const std::size_t d = D > 0 ? D : digit_size_;

  // Precompute a, a*x, ..., a*x^(d-1): the d partial-product rows that
  // exist as wires in the hardware. Their aggregate weight drives the
  // per-cycle row activity (all rows switch every cycle as the digit
  // pattern changes, whether or not they are selected into the sum).
  std::uint64_t r0[32], r1[32], r2[32];
  r0[0] = a.limb(0);
  r1[0] = a.limb(1);
  r2[0] = a.limb(2);
  int row_weight = detail::popcount3(r0[0], r1[0], r2[0]);
  for (std::size_t j = 1; j < d; ++j) {
    // row[j] = row[j-1] * x mod f(x): one slice of the shift network.
    const std::uint64_t carry = (r2[j - 1] >> 34) & 1;
    r0[j] = (r0[j - 1] << 1) ^ (carry ? kFold : 0);
    r1[j] = (r1[j - 1] << 1) | (r0[j - 1] >> 63);
    r2[j] = ((r2[j - 1] << 1) | (r1[j - 1] >> 63)) & kTop35;
    row_weight += detail::popcount3(r0[j], r1[j], r2[j]);
  }

  const double glitch = glitch_;
  const double depth_term = 8.0 * static_cast<double>(d);
  const std::uint64_t digit_mask = (std::uint64_t{1} << d) - 1;
  const std::uint64_t b0 = b.limb(0), b1 = b.limb(1), b2 = b.limb(2);

  std::uint64_t acc0 = 0, acc1 = 0, acc2 = 0;  // accumulator register
  for (std::size_t c = 0; c < cycles_; ++c) {
    // MSD first: cycle c consumes bits [pos, pos+d).
    const std::size_t pos = (cycles_ - 1 - c) * d;
    const std::size_t limb = pos / 64;
    const std::size_t off = pos % 64;
    std::uint64_t v = (limb == 0 ? b0 : limb == 1 ? b1 : b2) >> off;
    if (off + d > 64 && limb + 1 < 3)
      v |= (limb == 0 ? b1 : b2) << (64 - off);
    const std::uint64_t digit = v & digit_mask;

    // acc <- acc * x^d mod f  (shift-reduce network, one word-parallel
    // step; folded tap bits land at positions <= d + 6 < 163, so they can
    // never re-overflow within one step).
    const std::uint64_t t = acc2 >> (35 - d);  // bits 163..162+d
    std::uint64_t s0 = acc0 << d;
    const std::uint64_t s1 = (acc1 << d) | (acc0 >> (64 - d));
    const std::uint64_t s2 = ((acc2 << d) | (acc1 >> (64 - d))) & kTop35;
    s0 ^= t ^ (t << 3) ^ (t << 6) ^ (t << 7);

    // partial <- a * digit (selected partial-product rows XORed together,
    // branchless row selects).
    std::uint64_t p0 = 0, p1 = 0, p2 = 0;
    for (std::size_t j = 0; j < d; ++j) {
      const std::uint64_t m = std::uint64_t{0} - ((digit >> j) & 1);
      p0 ^= r0[j] & m;
      p1 ^= r1[j] & m;
      p2 ^= r2[j] & m;
    }

    const std::uint64_t n0 = s0 ^ p0, n1 = s1 ^ p1, n2 = s2 ^ p2;

    // Activity: the accumulator register flips HD(acc, next) bits; the
    // combinational cloud (d partial-product rows, the XOR reduction tree,
    // the shift/reduce fabric) sees roughly one event per set wire, and
    // glitches multiply with the tree depth (grows with d).
    const int acc_toggles = detail::popcount3(acc0 ^ n0, acc1 ^ n1, acc2 ^ n2);
    const int pp = detail::popcount3(p0, p1, p2);
    const int ps = detail::popcount3(s0, s1, s2);
    per_cycle(static_cast<std::uint32_t>(acc_toggles),
              static_cast<std::uint32_t>(
                  glitch * (row_weight + pp / 2 + ps / 2 + depth_term)));

    acc0 = n0;
    acc1 = n1;
    acc2 = n2;
  }
  return gf2m::Gf163{acc0, acc1, acc2};
}

/// One row of the paper's §5 sweep: the area / latency / power / energy /
/// area-energy-product trade-off at a given digit size.
struct DigitSweepPoint {
  std::size_t digit_size;
  std::size_t cycles_per_mult;
  double area_ge;
  double avg_power_w;           ///< during multiplication
  double energy_per_mult_j;
  double area_energy_product;   ///< GE * J (the §5 objective)
};

/// Evaluate the sweep for the given digit sizes (default: the hardware-
/// sensible powers of two the paper's design space covers).
std::vector<DigitSweepPoint> digit_size_sweep(
    const Technology& tech,
    const std::vector<std::size_t>& sizes = {1, 2, 4, 8, 16});

}  // namespace medsec::hw
