// digit_serial.h — bit-exact model of the digit-serial F_2^163 multiplier
// (MALU) at the heart of the paper's co-processor.
//
// §5: "a digit-serial multiplier for F_2^163 is used. The choice of the
// digit-size determines the power needed for the computation, as well as
// the latency and area. By using a digit serial multiplication with a
// 163×4 modular multiplier we achieve the optimal area-energy product
// within the given latency constraints."
//
// The model processes the multiplier operand most-significant-digit first,
// d bits per clock cycle, exactly as the hardware would:
//
//   acc <- (acc << d) mod f(x)  XOR  a * digit(b, i)   (one cycle)
//
// and records, per cycle, the switching activity of the accumulator
// register (Hamming distance between consecutive states) — the quantity
// the CMOS power model and the side-channel trace simulator consume.
#pragma once

#include <cstdint>
#include <vector>

#include "gf2m/gf2_163.h"
#include "hw/gates.h"
#include "hw/technology.h"

namespace medsec::hw {

/// Per-cycle activity record of one multiplier pass.
struct MaluCycle {
  std::uint32_t acc_toggles;   ///< accumulator register Hamming distance
  std::uint32_t logic_toggles; ///< estimated combinational toggles
};

/// Result of one modular multiplication with full instrumentation.
struct MaluResult {
  gf2m::Gf163 product;
  std::size_t cycles = 0;
  std::vector<MaluCycle> activity;  ///< one entry per cycle
  double total_toggles() const {
    double t = 0;
    for (const auto& c : activity) t += c.acc_toggles + c.logic_toggles;
    return t;
  }
};

/// Most-significant-digit-first digit-serial multiplier over F_2^163.
class DigitSerialMultiplier {
 public:
  /// digit_size in bits per cycle; the paper sweeps this dimension and
  /// settles on 4. Valid range [1, 32].
  explicit DigitSerialMultiplier(std::size_t digit_size);

  std::size_t digit_size() const { return digit_size_; }

  /// Latency of one multiplication in clock cycles: ceil(163 / d).
  std::size_t cycles_per_mult() const { return cycles_; }

  /// Datapath area in gate equivalents.
  double area_ge() const { return area_ge_; }

  /// Execute a full a*b mod f(x) pass, bit-exact, with activity log.
  /// The result is cross-checked against gf2m::Gf163::mul in tests.
  /// Internally word-parallel: the d-bit shift-reduce network and digit
  /// extraction are single word operations per cycle, not bit loops.
  MaluResult multiply(const gf2m::Gf163& a, const gf2m::Gf163& b) const;

  /// Product only, no per-cycle activity model: delegates to the active
  /// gf2m backend (bit-exact with multiply().product — asserted by the
  /// backend cross-check tests). Use when the caller needs functional
  /// hardware-equivalence, not the power trace.
  gf2m::Gf163 product_only(const gf2m::Gf163& a, const gf2m::Gf163& b) const;

  /// Average energy of one multiplication under the given technology,
  /// using the average switching activity of random operands (analytic,
  /// no simulation): used by the d-sweep bench.
  double avg_mult_energy_j(const Technology& tech) const;

 private:
  std::size_t digit_size_;
  std::size_t cycles_;
  double area_ge_;
};

/// One row of the paper's §5 sweep: the area / latency / power / energy /
/// area-energy-product trade-off at a given digit size.
struct DigitSweepPoint {
  std::size_t digit_size;
  std::size_t cycles_per_mult;
  double area_ge;
  double avg_power_w;           ///< during multiplication
  double energy_per_mult_j;
  double area_energy_product;   ///< GE * J (the §5 objective)
};

/// Evaluate the sweep for the given digit sizes (default: the hardware-
/// sensible powers of two the paper's design space covers).
std::vector<DigitSweepPoint> digit_size_sweep(
    const Technology& tech,
    const std::vector<std::size_t>& sizes = {1, 2, 4, 8, 16});

}  // namespace medsec::hw
