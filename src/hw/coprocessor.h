// coprocessor.h — cycle-accurate model of the paper's programmable ECC
// co-processor (the "secure zone" of §5).
//
// Microarchitecture, following §4–§6 and Lee et al. [10]:
//   * six 163-bit working registers (X1, Z1, X2, Z2, T, XP) — the paper's
//     "six 163-bit registers for the whole point multiplication";
//   * one digit-serial F_2^163 MALU (digit size d, default 4) that executes
//     both MUL and SQR (area-frugal: no dedicated squarer);
//   * a 163-bit XOR array for ADD (one-cycle datapath);
//   * a micro-coded sequencer with a constant cycle count per instruction
//     (the architecture-level timing countermeasure: "all instructions
//     should execute with a constant number of cycles").
//
// The ladder's conditional swap is implemented as *operand routing*, not as
// physical register swaps: the key bit drives the select lines of the
// register-file read/write multiplexers (the 164-fanout control signals of
// §6 / Figure 3). What leaks, and which circuit-level countermeasure
// suppresses it, is recorded per cycle in CycleRecord and interpreted by
// the side-channel layer (sidechannel/leakage.h).
//
// Execution model (PR 5): the per-iteration microcode fragments are
// compiled once per co-processor into flat CompiledProgram streams (the
// latency of every instruction is an architecture constant, so a compiled
// fragment knows its exact cycle cost before it runs), and each executed
// cycle streams into a CycleSink instead of forcing a materialized
// std::vector<CycleRecord>. The legacy record-materializing path is a
// RecordSink over the same stream — bit-identical, asserted by pinned
// digests in tests — and the energy summary (cycles + weighted toggles)
// accumulates on every path, so energy-only callers pay for no records at
// all.
//
// Every point multiplication is cross-checked in tests against the
// algorithmic ladder in ecc/ladder.h.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gf2m/gf2_163.h"
#include "hw/digit_serial.h"
#include "hw/technology.h"

namespace medsec::hw {

/// Architectural registers. XP holds the (public) base-point x coordinate;
/// X1/Z1/X2/Z2 are the ladder accumulators; T is the scratch register.
enum class Reg : std::uint8_t { kX1 = 0, kZ1, kX2, kZ2, kT, kXP };
constexpr std::size_t kNumRegs = 6;

const char* reg_name(Reg r);

/// Micro-instruction opcodes. Latencies (model cycles) are constants of
/// the architecture, independent of operand values *and* of the key:
///   MUL/SQR : ceil(163/d) + 6   (issue, two operand fetches, fill/drain,
///                                writeback)
///   ADD     : 3                 (issue, XOR array, writeback)
///   MOV     : 2
///   LDI     : 2                 (load immediate 0/1/x into a register)
///   SELSET  : 1                 (update the ladder routing select lines)
enum class Op : std::uint8_t { kMul, kSqr, kAdd, kMov, kLdi, kSelSet };

struct Instruction {
  Op op;
  Reg rd;           ///< destination (ignored for kSelSet)
  Reg ra;           ///< first source
  Reg rb;           ///< second source (kMul/kAdd)
  gf2m::Gf163 imm;  ///< kLdi payload
  int select;       ///< kSelSet: new value of the routing select (0/1)
};

/// What one clock cycle did, in raw switching events. The side-channel
/// layer converts these to power samples; the energy model to joules.
struct CycleRecord {
  /// Register-file write port: Hamming distance of the written register.
  std::uint16_t reg_write_toggles = 0;
  /// Combinational events in the active unit (MALU / XOR array).
  std::uint16_t logic_toggles = 0;
  /// Operand-bus lines that changed vs. the previous cycle.
  std::uint16_t bus_toggles = 0;
  /// Multiplexer select-line network toggles (the §6 / Fig. 3 signals).
  std::uint16_t mux_control_toggles = 0;
  /// Which clock-tree branches fired this cycle (bit i = register i).
  /// With uniform gating this is all-ones every cycle.
  std::uint8_t clocked_reg_mask = 0;
  /// Ground truth for the side-channel experiments (never used by the
  /// "attacker" code paths as an input — only to score recovered keys).
  std::int8_t key_bit = -1;       ///< ladder select during this cycle
  std::uint16_t iteration = 0xffff;  ///< ladder iteration, if any
  Op op = Op::kSelSet;
};

/// Streaming consumer of executed model cycles — the primary output path
/// of the co-processor. on_cycle runs once per cycle, in execution order,
/// with the finalized record (ground-truth key bit / iteration and the
/// clock-gating mask already applied) and the cycle's weighted GE-toggle
/// total. The record stream is identical, field for field and cycle for
/// cycle, to what the legacy ExecResult::records path materializes.
class CycleSink {
 public:
  virtual ~CycleSink() = default;
  virtual void on_cycle(const CycleRecord& rec, double ge_toggles) = 0;
};

/// The record-materializing sink: appends every cycle to a caller-owned
/// vector. Kept for consumers that genuinely need raw records (profiling,
/// the ISA audit's telemetry checks, E9's record-keyed scans); everything
/// else should fold the stream instead.
class RecordSink final : public CycleSink {
 public:
  explicit RecordSink(std::vector<CycleRecord>& out) : out_(&out) {}
  void on_cycle(const CycleRecord& rec, double) override {
    out_->push_back(rec);
  }

 private:
  std::vector<CycleRecord>* out_;
};

/// Circuit/architecture countermeasure switches (§5–§6). Defaults are the
/// protected configuration of the prototype chip; the ablation benches
/// switch them off one at a time.
struct SecureConfig {
  /// Encode the 164-fanout mux selects as a complementary (dual-rail)
  /// pair so their total Hamming difference per update is constant
  /// (Figure 3). Off: the select net toggles only when the key bit
  /// changes — an SPA target.
  bool balanced_mux_encoding = true;
  /// Clock every register branch every cycle. Off: only written registers
  /// are clocked, and the per-branch load differences show in the trace.
  bool uniform_clock_gating = true;
  /// AND-gate isolation of idle datapath inputs. Off: register updates
  /// ripple spurious, data-correlated toggles into inactive units.
  bool isolate_datapath_inputs = true;
};

struct CoprocessorConfig {
  std::size_t digit_size = 4;   ///< the paper's chosen MALU width
  SecureConfig secure;
  Technology tech = Technology::umc130();
  /// Keep per-cycle records on the sink-less point_mult/execute calls
  /// (needed by record consumers; the energy summary is available either
  /// way, and the explicit-sink overloads ignore this switch).
  bool record_cycles = true;
};

/// A microcode fragment compiled against one co-processor configuration:
/// the flat instruction stream plus its fixed cycle cost. Latencies are
/// architecture constants (the §5 timing countermeasure), so the cost is
/// known before execution — which is also what lets callers reserve
/// record/sample storage exactly.
struct CompiledProgram {
  std::vector<Instruction> code;
  std::size_t cycles = 0;  ///< sum of per-instruction latencies
};

/// Result of one micro-program execution.
struct ExecResult {
  std::size_t cycles = 0;
  double ge_toggles = 0.0;          ///< weighted total (see activity.h)
  std::vector<CycleRecord> records; ///< empty unless the record path ran
};

/// Result of a full x-only point multiplication.
struct PointMultResult {
  gf2m::Gf163 x1, z1, x2, z2;  ///< projective ladder outputs
  gf2m::Gf163 x_affine;        ///< X1/Z1, computed on-chip (Itoh–Tsujii)
  bool result_is_infinity = false;
  ExecResult exec;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double seconds = 0.0;
};

/// Options for one point multiplication.
struct PointMultOptions {
  /// Randomized projective coordinates (§7's DPA countermeasure): two
  /// nonzero field elements from the device RNG. nullopt = countermeasure
  /// disabled (initial Z values are 1 and x^2, fully predictable).
  std::optional<std::pair<gf2m::Gf163, gf2m::Gf163>> z_randomizers;

  /// Start from the neutral ladder state (O, P) = ((1 : 0), (x : 1)) and
  /// process *every* entry of key_bits, leading zeros included. Required
  /// for blinded scalars k + r·n, whose bit length varies with the blind
  /// while the iteration count must stay a configuration constant.
  bool neutral_init = false;

  /// One unit of schedule jitter (the SPA-shuffle countermeasure): a
  /// SELSET with an RNG-chosen select plus one ADD on the scratch
  /// register, inserted at the iteration boundary `before_iteration`
  /// (0..iterations; `iterations` = after the last one). The *number* of
  /// units is a constant-time budget; only their placement and selects
  /// are random per execution, so a profiled cycle schedule no longer
  /// names fixed key bits.
  struct DummyOp {
    std::uint16_t before_iteration;
    std::uint8_t select;
  };
  std::vector<DummyOp> dummy_ops;
};

// --- fault model -------------------------------------------------------------

/// What a glitch adversary does to ONE execution (a clock/voltage glitch
/// on the sequencer, a laser shot on a register cell). Exactly one fault
/// is armed at a time; fault_fired() reports whether it actually changed
/// the execution.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// The slot-th executed instruction is fetched but never issued: zero
  /// cycles, no writeback (sequencer clock glitch). The executed cycle
  /// count drops below the compiled constant — exactly the signal the
  /// coherence-check countermeasure watches.
  kSkipInstruction,
  /// The slot-th SELSET-bearing schedule unit (real ladder steps and
  /// jitter units, counted in execution order) has its SELSET suppressed:
  /// the routing muxes keep the STALE select, so the unit computes under
  /// the previous unit's register roles. The safe-error primitive — the
  /// glitch is computationally absorbed iff the routing would not have
  /// changed, and whether the released result is still correct leaks one
  /// key-bit transition per shot.
  kSelectGlitch,
  /// One bit of one register flips after the chosen executed cycle
  /// (single-event upset).
  kBitFlip,
  /// One register cell is stuck at a level for the whole run: forced on
  /// every read and every writeback. Stuck bits on XP move the base point
  /// off the curve — the invalid-point injection primitive.
  kStuckAt,
};

const char* fault_kind_name(FaultKind k);

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  /// kSkipInstruction / kSelectGlitch: 0-based target unit index.
  std::size_t slot = 0;
  /// kBitFlip: fires after this many cycles have executed (1-based count).
  std::size_t cycle = 0;
  Reg reg = Reg::kX1;       ///< kBitFlip / kStuckAt target register
  std::uint8_t bit = 0;     ///< target bit, 0..162
  bool stuck_value = true;  ///< kStuckAt: the level the cell is stuck at
};

/// The co-processor model.
class Coprocessor {
 public:
  explicit Coprocessor(const CoprocessorConfig& config = {});

  const CoprocessorConfig& config() const { return config_; }
  const DigitSerialMultiplier& malu() const { return malu_; }
  double area_ge() const { return area_ge_; }

  /// Latency constants (model cycles).
  std::size_t latency(Op op) const;

  /// Compile a microcode stream against this configuration: flat code
  /// plus the exact cycle cost it will execute in.
  CompiledProgram compile(std::vector<Instruction> program) const;

  /// Just the cycle cost of a microcode stream (the sum of latencies),
  /// without retaining the code.
  std::size_t program_cycles(const std::vector<Instruction>& program) const;

  /// Execute a raw micro-program against the current register file,
  /// streaming every cycle into `sink` (nullptr = energy summary only).
  /// The returned ExecResult carries cycles + ge_toggles; records stay
  /// empty — attach a RecordSink to materialize them.
  ExecResult execute(const std::vector<Instruction>& program,
                     CycleSink* sink);

  /// Legacy entry point: materializes records when config().record_cycles
  /// is set (reserved up front from the program's compiled cycle total),
  /// otherwise runs the energy-only path.
  ExecResult execute(const std::vector<Instruction>& program);

  /// Exact cycle count of one point multiplication over `num_key_bits`
  /// scalar bits under `options` — a closed-form configuration constant
  /// (the §5 constant-time argument, mechanized): init + iterations ×
  /// ladder step + jitter units + affine conversion. The affine cycles
  /// are included; the degenerate result-at-infinity case (impossible for
  /// validated subgroup inputs) skips them and executes fewer.
  std::size_t point_mult_cycles(std::size_t num_key_bits,
                                const PointMultOptions& options) const;

  /// Full x-only Montgomery-ladder point multiplication, streaming every
  /// cycle into `sink` (nullptr = energy summary only; the returned
  /// exec.records stay empty either way).
  ///
  /// key_bits: the *padded* scalar, MSB first, key_bits.front() == 1
  /// (see ecc::constant_length_scalar). x: affine x of the base point,
  /// nonzero. Runs key_bits.size()-1 ladder iterations — a constant for a
  /// given curve — then converts to affine on-chip. With
  /// options.neutral_init the leading-1 requirement disappears and all
  /// key_bits.size() iterations run from the neutral (O, P) start.
  PointMultResult point_mult(const std::vector<int>& key_bits,
                             const gf2m::Gf163& x,
                             const PointMultOptions& options,
                             CycleSink* sink);

  /// Legacy entry point: materializes exec.records when
  /// config().record_cycles is set (reserved up front from the compiled
  /// cycle total), otherwise runs the energy-only path.
  PointMultResult point_mult(const std::vector<int>& key_bits,
                             const gf2m::Gf163& x,
                             const PointMultOptions& options = {});

  /// Clear the working registers through the cached zeroize microcode
  /// (energy-only: the controller discards the telemetry of this step).
  /// See microcode::zeroize for the §5 rationale.
  ExecResult zeroize(bool keep_result = true);

  /// Direct register access (test/bench instrumentation; the modeled ISA
  /// itself has no key-export path — see core/isa_audit.h).
  const gf2m::Gf163& reg(Reg r) const;
  void set_reg(Reg r, const gf2m::Gf163& v);

  /// Arm one fault for subsequent execution. The armed fault persists
  /// (stuck-at keeps pressing its bit run after run) until disarm_fault()
  /// or a re-arm; the match counters reset at every point_mult()/
  /// execute() entry so `slot` and `cycle` are always relative to the run.
  void arm_fault(const FaultSpec& fault);
  void disarm_fault();
  const FaultSpec& armed_fault() const { return fault_; }
  /// Did the armed fault actually perturb an execution since arming?
  bool fault_fired() const { return fault_fired_; }

 private:
  void run_program(const CompiledProgram& program, ExecResult& out,
                   CycleSink* sink, std::size_t first_instruction = 0);
  void run_instruction(const Instruction& ins, ExecResult& out,
                       CycleSink* sink);
  void emit(CycleRecord& rec, ExecResult& out, CycleSink* sink);
  /// Register read with the stuck-at fault (if armed) pressed in.
  gf2m::Gf163 operand(Reg r);
  /// Force the stuck-at bit into a value about to be written to `r`.
  gf2m::Gf163 apply_stuck(Reg r, gf2m::Gf163 v);
  void reset_fault_counters();

  CoprocessorConfig config_;
  DigitSerialMultiplier malu_;
  double area_ge_;
  /// Per-cycle clock-tree cost (precomputed once; see activity.h).
  double clock_tree_ge_;
  /// The compiled per-iteration schedule fragments: built once in the
  /// constructor, replayed every point multiplication — no per-iteration
  /// microcode regeneration.
  struct Schedules {
    CompiledProgram step[2];     ///< ladder_step(0/1)
    CompiledProgram dummy[2];    ///< dummy_unit(0/1)
    CompiledProgram affine;      ///< affine_conversion()
    CompiledProgram zeroize[2];  ///< zeroize(keep_result = false/true)
    /// Init cycle costs by [neutral_init][randomized] (the init code
    /// itself carries per-call immediates and is rebuilt per run; its
    /// cost is shape-constant).
    std::size_t init_cycles[2][2] = {};
  };
  Schedules sched_;
  std::array<gf2m::Gf163, kNumRegs> regs_{};
  gf2m::Gf163 bus_a_, bus_b_;  ///< operand-bus state (for bus_toggles)
  int select_ = 0;             ///< ladder routing select state
  std::int8_t current_key_bit_ = -1;
  std::uint16_t current_iteration_ = 0xffff;
  // Armed fault + its match counters (reset per run).
  FaultSpec fault_{};
  bool fault_fired_ = false;
  std::size_t fault_instr_seen_ = 0;   ///< executed instructions this run
  std::size_t fault_cycles_seen_ = 0;  ///< executed cycles this run
  std::size_t fault_units_seen_ = 0;   ///< SELSET-bearing units this run
};

/// Microcode builders (exposed for tests and the ISA audit).
namespace microcode {

/// One ladder iteration for key bit `bit` on curve b = 1 (K-163):
/// 5 MUL + 5 SQR + 3 ADD + 1 MOV, preceded by a SELSET updating the
/// routing select lines. Register roles follow the select value.
std::vector<Instruction> ladder_step(int bit);

/// Ladder initialisation from XP (assumes b = 1):
///   X1 = x, Z1 = 1, Z2 = x^2, X2 = x^4 + 1
/// plus, if randomizers are given, the §7 projective randomization
/// (X1, Z1) *= l1, (X2, Z2) *= l2.
std::vector<Instruction> ladder_init(
    const std::optional<std::pair<gf2m::Gf163, gf2m::Gf163>>& randomizers);

/// Neutral-state initialisation (the blinded ladder's start):
///   X1 = 1, Z1 = 0, X2 = x, Z2 = 1
/// randomized to (l1 : 0) and (x·l2 : l2) when randomizers are given.
std::vector<Instruction> ladder_init_neutral(
    const std::optional<std::pair<gf2m::Gf163, gf2m::Gf163>>& randomizers);

/// One schedule-jitter unit (see PointMultOptions::DummyOp): SELSET with
/// the given select, then ADD T <- T + XP on the scratch register.
std::vector<Instruction> dummy_unit(int select);

/// Itoh–Tsujii inversion of Z1 (9 MUL + 162 SQR), then X1 <- X1 * Z1^-1:
/// leaves affine x in X1. Clobbers X2, Z2, T.
std::vector<Instruction> affine_conversion();

/// Clear every working register except the result register X1. Run after
/// the controller has read its outputs: no key-derived intermediate may
/// survive in the register file between operations (§5 "sensitive data
/// should appear only on the internal data-bus").
std::vector<Instruction> zeroize(bool keep_result = true);

}  // namespace microcode

}  // namespace medsec::hw
