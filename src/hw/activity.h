// activity.h — how raw switching events convert to gate-equivalent toggles.
//
// The power model is two-level: bit-exact structural simulation produces
// *events* (register-bit flips, combinational node flips), and these
// weights convert events to NAND2-equivalent toggle counts. The weights
// bundle fanout, wire load and clock tree — the things a gate-level model
// cannot see — and are the second half of the calibration (the first being
// Technology::energy_per_ge_toggle_j). They are chosen once so the d = 4
// co-processor reproduces the paper's 50.4 µW / 5.1 µJ operating point and
// are never tuned per-experiment.
#pragma once

#include <cstddef>

namespace medsec::hw {

struct ActivityWeights {
  /// GE-toggles per register bit flip (FF internals + Q fanout + wiring).
  static constexpr double kRegisterBit = 8.0;
  /// GE-toggles per combinational node event (gate + local wire).
  static constexpr double kLogicNode = 3.0;
  /// Clock tree: a fixed sequencer part plus a part proportional to the
  /// design's area (every FF clock pin and its buffers fire each cycle).
  /// Paid every cycle regardless of data — the "constant floor" of the
  /// power trace.
  static constexpr double kClockBase = 400.0;
  static constexpr double kClockPerGeArea = 0.145;

  static constexpr double clock_tree_per_cycle(double area_ge) {
    return kClockBase + kClockPerGeArea * area_ge;
  }

  /// Glitch growth with combinational depth: each extra partial-product
  /// row of the digit-serial multiplier deepens the XOR tree and lets
  /// spurious transitions multiply (§6 "avoid glitches"). First-order
  /// linear-in-d model.
  static constexpr double glitch_factor(std::size_t digit_size) {
    return 1.0 + 0.15 * (static_cast<double>(digit_size) - 1.0);
  }
};

}  // namespace medsec::hw
