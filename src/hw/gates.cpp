#include "hw/gates.h"

#include <stdexcept>

namespace medsec::hw {

std::vector<GateInventory> standard_inventory() {
  // The first two rows are the paper's §4 numbers; the rest are the
  // smallest published RFID-class implementations of each primitive,
  // carried so the protocol-level area budget can be evaluated for
  // secret-key, hash-based and public-key designs alike.
  return {
      {"SHA-1", 5527, "O'Neill, RFIDSec 2008 [12] (paper §4)"},
      {"ECC-163 core", 12000, "Lee et al., IEEE TC 2008 [10] (paper §4)"},
      {"AES-128", 2400, "Feldhofer et al., CHES 2004 (serialized)"},
      {"PRESENT-80", 1570, "Bogdanov et al., CHES 2007"},
      {"SIMON-64/96", 958, "Beaulieu et al., DAC 2015 (bit-serial)"},
      {"SPECK-64/96", 984, "Beaulieu et al., DAC 2015 (bit-serial)"},
      {"SHA-256", 10868, "Feldhofer & Rechberger, 2006"},
      {"Keccak-200", 4600, "Kavun & Yalcin, RFIDSec 2010"},
      {"TRNG + health tests", 1200, "structural estimate"},
      {"Control/ISA sequencer", 1500, "structural estimate"},
  };
}

const GateInventory& inventory(const std::string& name) {
  static const std::vector<GateInventory> inv = standard_inventory();
  for (const auto& e : inv)
    if (e.name == name) return e;
  throw std::out_of_range("hw::inventory: unknown primitive " + name);
}

double digit_serial_multiplier_ge(std::size_t m, std::size_t digit_size,
                                  std::size_t reduction_taps) {
  const double md = static_cast<double>(m);
  const double d = static_cast<double>(digit_size);
  // d parallel partial-product rows: m AND2 + m XOR2 each.
  const double rows = d * md * (CellCosts::kAnd2 + CellCosts::kXor2);
  // Reduction network: each of the d rows folds the overflow bits back
  // through the pentanomial taps (taps+1 XORs per overflowing bit).
  const double reduction =
      d * static_cast<double>(reduction_taps + 1) * CellCosts::kXor2 * 8.0;
  // Accumulator register + operand shift register.
  const double regs = 2.0 * register_ge(m);
  return rows + reduction + regs;
}

double ecc_coprocessor_ge(std::size_t m, std::size_t digit_size) {
  // Six m-bit working registers (the paper's §4 register budget), the
  // multiplier/ALU, the mux network that routes registers to the MALU
  // (the 164-fanout control signals of §6), and the sequencer.
  const double regs = 6.0 * register_ge(m);
  const double malu = digit_serial_multiplier_ge(m, digit_size);
  const double mux_network = 2.0 * static_cast<double>(m) * CellCosts::kMux2;
  const double control = inventory("Control/ISA sequencer").gate_equivalents;
  return regs + malu + mux_network + control;
}

}  // namespace medsec::hw
