#include "hw/digit_serial.h"

#include <stdexcept>

#include "rng/xoshiro.h"

namespace medsec::hw {

namespace {

using gf2m::Gf163;

constexpr std::size_t kM = Gf163::kBits;  // 163

std::size_t validated_digit_size(std::size_t d) {
  if (d < 1 || d > 32)
    throw std::invalid_argument(
        "DigitSerialMultiplier: digit size must be in [1, 32]");
  return d;
}

}  // namespace

DigitSerialMultiplier::DigitSerialMultiplier(std::size_t digit_size)
    : digit_size_(validated_digit_size(digit_size)),
      cycles_((kM + digit_size_ - 1) / digit_size_),
      area_ge_(digit_serial_multiplier_ge(kM, digit_size_)),
      glitch_(ActivityWeights::glitch_factor(digit_size_)) {}

MaluResult DigitSerialMultiplier::multiply(const Gf163& a,
                                           const Gf163& b) const {
  MaluResult r;
  r.activity.reserve(cycles_);
  r.product = multiply_stream(a, b, [&](std::uint32_t acc, std::uint32_t lg) {
    r.activity.push_back(MaluCycle{acc, lg});
  });
  r.cycles = cycles_;
  return r;
}

Gf163 DigitSerialMultiplier::product_only(const Gf163& a,
                                          const Gf163& b) const {
  return Gf163::mul(a, b);
}

double DigitSerialMultiplier::avg_mult_energy_j(const Technology& tech) const {
  // Monte-Carlo over a fixed seed: deterministic, honest about the data
  // dependence of the activity (unlike a closed-form activity factor).
  // The multiplication is costed *in its co-processor context*: the clock
  // tree and leakage of the whole core run while the MALU computes, which
  // is what the §5 area-energy trade-off is actually about.
  rng::Xoshiro256 rng(0xD161'7A11);
  constexpr int kSamples = 32;
  double energy = 0.0;
  const double total_ge = ecc_coprocessor_ge(kM, digit_size_);
  for (int s = 0; s < kSamples; ++s) {
    Gf163 a, b;
    {
      bigint::U192 va, vb;
      for (std::size_t i = 0; i < 3; ++i) {
        va.set_limb(i, rng.next_u64());
        vb.set_limb(i, rng.next_u64());
      }
      a = Gf163::from_bits(va);
      b = Gf163::from_bits(vb);
    }
    const MaluResult r = multiply(a, b);
    for (const auto& c : r.activity) {
      const double ge_toggles =
          ActivityWeights::kRegisterBit * c.acc_toggles +
          ActivityWeights::kLogicNode * c.logic_toggles +
          ActivityWeights::clock_tree_per_cycle(total_ge);
      energy += tech.cycle_energy_j(ge_toggles, total_ge);
    }
  }
  return energy / kSamples;
}

std::vector<DigitSweepPoint> digit_size_sweep(
    const Technology& tech, const std::vector<std::size_t>& sizes) {
  std::vector<DigitSweepPoint> out;
  out.reserve(sizes.size());
  for (const std::size_t d : sizes) {
    const DigitSerialMultiplier malu(d);
    DigitSweepPoint p;
    p.digit_size = d;
    p.cycles_per_mult = malu.cycles_per_mult();
    p.area_ge = ecc_coprocessor_ge(kM, d);
    p.energy_per_mult_j = malu.avg_mult_energy_j(tech);
    p.avg_power_w = p.energy_per_mult_j /
                    (static_cast<double>(p.cycles_per_mult) / tech.clock_hz);
    p.area_energy_product = p.area_ge * p.energy_per_mult_j;
    out.push_back(p);
  }
  return out;
}

}  // namespace medsec::hw
