#include "hw/digit_serial.h"

#include <bit>
#include <stdexcept>

#include "hw/activity.h"
#include "rng/xoshiro.h"

namespace medsec::hw {

namespace {

using gf2m::Gf163;

constexpr std::size_t kM = Gf163::kBits;  // 163

int popcount(const Gf163& v) {
  return std::popcount(v.limb(0)) + std::popcount(v.limb(1)) +
         std::popcount(v.limb(2));
}

int hamming_distance(const Gf163& a, const Gf163& b) {
  return popcount(a + b);  // XOR in characteristic 2
}

constexpr std::uint64_t kTop35 = (std::uint64_t{1} << 35) - 1;

/// Multiply by x (shift left one bit) and reduce modulo
/// f(x) = x^163 + x^7 + x^6 + x^3 + 1 — one slice of the shift network.
Gf163 mulx(const Gf163& v) {
  const std::uint64_t carry = (v.limb(2) >> 34) & 1;  // bit 162
  Gf163 out{(v.limb(0) << 1), (v.limb(1) << 1) | (v.limb(0) >> 63),
            ((v.limb(2) << 1) | (v.limb(1) >> 63)) & kTop35};
  if (carry) out += Gf163{(1u << 7) | (1u << 6) | (1u << 3) | 1u};
  return out;
}

/// v * x^d mod f(x) in one word-parallel step (1 <= d <= 32): shift the
/// 163-bit value left across limbs, then fold the d overflow bits back
/// with the pentanomial taps — bit-exact with d applications of mulx
/// (folded tap bits land at positions <= d + 6 < 163, so they can never
/// re-overflow within one step). This is the model's fast path; the
/// hardware it models computes the same d-bit shift-reduce in one cycle.
Gf163 shl_mod(const Gf163& v, std::size_t d) {
  const std::uint64_t t = v.limb(2) >> (35 - d);  // bits 163..162+d
  std::uint64_t l0 = v.limb(0) << d;
  const std::uint64_t l1 = (v.limb(1) << d) | (v.limb(0) >> (64 - d));
  const std::uint64_t l2 =
      ((v.limb(2) << d) | (v.limb(1) >> (64 - d))) & kTop35;
  l0 ^= t ^ (t << 3) ^ (t << 6) ^ (t << 7);
  return Gf163{l0, l1, l2};
}

/// Extract d bits of b starting at bit position pos (may run off the top),
/// word-parallel. Precondition: pos < 163, d <= 32.
std::uint32_t digit_at(const Gf163& b, std::size_t pos, std::size_t d) {
  const std::size_t limb = pos / 64;
  const std::size_t off = pos % 64;
  std::uint64_t v = b.limb(limb) >> off;
  if (off + d > 64 && limb + 1 < Gf163::kLimbs)
    v |= b.limb(limb + 1) << (64 - off);
  return static_cast<std::uint32_t>(v & ((std::uint64_t{1} << d) - 1));
}

}  // namespace

namespace {
std::size_t validated_digit_size(std::size_t d) {
  if (d < 1 || d > 32)
    throw std::invalid_argument(
        "DigitSerialMultiplier: digit size must be in [1, 32]");
  return d;
}
}  // namespace

DigitSerialMultiplier::DigitSerialMultiplier(std::size_t digit_size)
    : digit_size_(validated_digit_size(digit_size)),
      cycles_((kM + digit_size_ - 1) / digit_size_),
      area_ge_(digit_serial_multiplier_ge(kM, digit_size_)) {}

MaluResult DigitSerialMultiplier::multiply(const Gf163& a,
                                           const Gf163& b) const {
  MaluResult r;
  r.activity.reserve(cycles_);

  // Precompute a, a*x, ..., a*x^(d-1): the d partial-product rows that
  // exist as wires in the hardware. Their aggregate weight drives the
  // per-cycle row activity (all rows switch every cycle as the digit
  // pattern changes, whether or not they are selected into the sum).
  std::vector<Gf163> row(digit_size_);
  row[0] = a;
  int row_weight = popcount(a);
  for (std::size_t j = 1; j < digit_size_; ++j) {
    row[j] = mulx(row[j - 1]);
    row_weight += popcount(row[j]);
  }
  const double glitch = ActivityWeights::glitch_factor(digit_size_);

  Gf163 acc;  // accumulator register, cleared at start of the pass
  const std::size_t d = digit_size_;
  for (std::size_t c = 0; c < cycles_; ++c) {
    // MSD first: cycle c consumes bits [pos, pos+d).
    const std::size_t pos = (cycles_ - 1 - c) * d;
    const std::uint32_t digit = digit_at(b, pos, d);

    // acc <- acc * x^d mod f  (shift-reduce network, one word-parallel step)
    const Gf163 shifted = shl_mod(acc, d);

    // partial <- a * digit (selected partial-product rows XORed together)
    Gf163 partial;
    for (std::size_t j = 0; j < d; ++j)
      if (digit & (1u << j)) partial += row[j];

    const Gf163 next = shifted + partial;

    // Activity: the accumulator register flips HD(acc, next) bits; the
    // combinational cloud (d partial-product rows, the XOR reduction tree,
    // the shift/reduce fabric) sees roughly one event per set wire, and
    // glitches multiply with the tree depth (grows with d).
    MaluCycle cyc;
    cyc.acc_toggles = static_cast<std::uint32_t>(hamming_distance(acc, next));
    cyc.logic_toggles = static_cast<std::uint32_t>(
        glitch * (row_weight + popcount(partial) / 2 +
                  popcount(shifted) / 2 + 8.0 * static_cast<double>(d)));
    r.activity.push_back(cyc);

    acc = next;
  }

  r.product = acc;
  r.cycles = cycles_;
  return r;
}

Gf163 DigitSerialMultiplier::product_only(const Gf163& a,
                                          const Gf163& b) const {
  return Gf163::mul(a, b);
}

double DigitSerialMultiplier::avg_mult_energy_j(const Technology& tech) const {
  // Monte-Carlo over a fixed seed: deterministic, honest about the data
  // dependence of the activity (unlike a closed-form activity factor).
  // The multiplication is costed *in its co-processor context*: the clock
  // tree and leakage of the whole core run while the MALU computes, which
  // is what the §5 area-energy trade-off is actually about.
  rng::Xoshiro256 rng(0xD161'7A11);
  constexpr int kSamples = 32;
  double energy = 0.0;
  const double total_ge = ecc_coprocessor_ge(kM, digit_size_);
  for (int s = 0; s < kSamples; ++s) {
    Gf163 a, b;
    {
      bigint::U192 va, vb;
      for (std::size_t i = 0; i < 3; ++i) {
        va.set_limb(i, rng.next_u64());
        vb.set_limb(i, rng.next_u64());
      }
      a = Gf163::from_bits(va);
      b = Gf163::from_bits(vb);
    }
    const MaluResult r = multiply(a, b);
    for (const auto& c : r.activity) {
      const double ge_toggles =
          ActivityWeights::kRegisterBit * c.acc_toggles +
          ActivityWeights::kLogicNode * c.logic_toggles +
          ActivityWeights::clock_tree_per_cycle(total_ge);
      energy += tech.cycle_energy_j(ge_toggles, total_ge);
    }
  }
  return energy / kSamples;
}

std::vector<DigitSweepPoint> digit_size_sweep(
    const Technology& tech, const std::vector<std::size_t>& sizes) {
  std::vector<DigitSweepPoint> out;
  out.reserve(sizes.size());
  for (const std::size_t d : sizes) {
    const DigitSerialMultiplier malu(d);
    DigitSweepPoint p;
    p.digit_size = d;
    p.cycles_per_mult = malu.cycles_per_mult();
    p.area_ge = ecc_coprocessor_ge(kM, d);
    p.energy_per_mult_j = malu.avg_mult_energy_j(tech);
    p.avg_power_w = p.energy_per_mult_j /
                    (static_cast<double>(p.cycles_per_mult) / tech.clock_hz);
    p.area_energy_product = p.area_ge * p.energy_per_mult_j;
    out.push_back(p);
  }
  return out;
}

}  // namespace medsec::hw
