// fault_injector.h — the seeded fault-campaign adversary.
//
// A FaultInjector decides, for the n-th point multiplication of a
// campaign, whether a glitch lands and what it does — skip-instruction,
// select glitch, register bit-flip at a chosen cycle, stuck-at on a Reg —
// and hands the Coprocessor a FaultSpec to arm. Every decision is
// counter-derived (splitmix64 over seed × ordinal × lane, the LossyLink
// idiom in engine/transport.h): no hidden state, so a fault campaign is
// bit-reproducible for any thread count or replay order, and two engines
// given the same seed inject the *same* faults into the same operations.
//
// The injector is pure policy; the physics lives in Coprocessor
// (arm_fault / fault_fired). Attack engines (sidechannel/fault_attacks.h)
// bypass the rate draw and arm precise specs directly.
#pragma once

#include <cstdint>

#include "hw/coprocessor.h"
#include "rng/xoshiro.h"

namespace medsec::hw {

/// Shape of the run the fault will land in — the injector scales its
/// derived target coordinates to these bounds.
struct FaultShape {
  std::size_t instructions = 0;  ///< executed instruction count
  std::size_t cycles = 0;        ///< executed cycle count
  std::size_t select_slots = 0;  ///< SELSET-bearing units (steps + dummies)
};

class FaultInjector {
 public:
  /// `rate`: probability that should_fault(n) arms anything at all.
  explicit FaultInjector(std::uint64_t seed, double rate = 0.0)
      : seed_(seed), rate_(rate) {}

  std::uint64_t seed() const { return seed_; }
  double rate() const { return rate_; }

  /// The n-th derivation word on an independent lane (same contract as
  /// LossyLink::fault_word).
  std::uint64_t word(std::uint64_t n, std::uint64_t lane) const {
    std::uint64_t s = seed_ ^ (0xD1B54A32D192ED03ULL * (n + 1)) ^
                      (0x9E3779B97F4A7C15ULL * lane);
    return rng::splitmix64(s);
  }

  /// Does a fault land on the n-th operation of the campaign?
  bool should_fault(std::uint64_t n) const {
    return rate_ > 0.0 && to_unit(word(n, 0)) < rate_;
  }

  /// The fault that lands on operation n (independent of should_fault's
  /// lane, so changing the rate never reshuffles which fault each
  /// operation would receive). All four physical kinds are drawn with
  /// equal weight; coordinates are scaled to `shape`.
  FaultSpec draw(std::uint64_t n, const FaultShape& shape) const {
    FaultSpec f;
    switch (word(n, 1) % 4) {
      case 0:
        f.kind = FaultKind::kSkipInstruction;
        f.slot = shape.instructions
                     ? word(n, 2) % shape.instructions
                     : 0;
        break;
      case 1:
        f.kind = FaultKind::kSelectGlitch;
        f.slot = shape.select_slots ? word(n, 2) % shape.select_slots : 0;
        break;
      case 2:
        f.kind = FaultKind::kBitFlip;
        f.cycle = shape.cycles ? 1 + word(n, 2) % shape.cycles : 1;
        f.reg = static_cast<Reg>(word(n, 3) % kNumRegs);
        f.bit = static_cast<std::uint8_t>(word(n, 4) % gf2m::Gf163::kBits);
        break;
      default:
        f.kind = FaultKind::kStuckAt;
        f.reg = static_cast<Reg>(word(n, 3) % kNumRegs);
        f.bit = static_cast<std::uint8_t>(word(n, 4) % gf2m::Gf163::kBits);
        f.stuck_value = (word(n, 5) & 1) != 0;
        break;
    }
    return f;
  }

 private:
  static double to_unit(std::uint64_t w) {
    return static_cast<double>(w >> 11) * 0x1.0p-53;
  }

  std::uint64_t seed_;
  double rate_;
};

}  // namespace medsec::hw
