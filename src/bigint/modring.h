// modring.h — arithmetic modulo a fixed odd modulus.
//
// Used for scalar arithmetic modulo the group order l of the elliptic-curve
// subgroup (a 163-bit prime for K-163). Residues are kept fully reduced in
// [0, m). Inversion uses the binary extended GCD; exponentiation is
// left-to-right square-and-multiply.
#pragma once

#include <optional>
#include <stdexcept>

#include "bigint/biguint.h"

namespace medsec::bigint {

/// Ring of integers modulo m, where m fits in Bits bits.
template <std::size_t Bits>
class ModRing {
 public:
  using Value = BigUInt<Bits>;

  explicit ModRing(Value modulus) : m_(modulus) {
    if (m_.is_zero()) throw std::invalid_argument("ModRing: zero modulus");
    if (!m_.bit(0)) throw std::invalid_argument("ModRing: modulus must be odd");
  }

  const Value& modulus() const { return m_; }

  /// Reduce an arbitrary Bits-wide value into [0, m).
  Value reduce(const Value& a) const { return a.mod(m_); }

  /// Reduce a double-width value (e.g. a product) into [0, m).
  Value reduce_wide(const BigUInt<2 * Bits>& a) const {
    return a.mod(m_.template resize<2 * Bits>()).template resize<Bits>();
  }

  Value add(const Value& a, const Value& b) const {
    Value r = a;
    const std::uint64_t carry = r.add_in_place(b);
    // With both inputs < m < 2^Bits the sum fits unless the top limb carried
    // (possible only when Bits is a multiple of 64 and m is close to 2^Bits).
    if (carry != 0 || r >= m_) r.sub_in_place(m_);
    return r;
  }

  Value sub(const Value& a, const Value& b) const {
    Value r = a;
    if (r.sub_in_place(b) != 0) r.add_in_place(m_);
    return r;
  }

  Value neg(const Value& a) const {
    if (a.is_zero()) return a;
    Value r = m_;
    r.sub_in_place(a);
    return r;
  }

  Value mul(const Value& a, const Value& b) const {
    return reduce_wide(widening_mul(a, b));
  }

  Value sqr(const Value& a) const { return mul(a, a); }

  Value pow(const Value& base, const Value& exp) const {
    Value result{1};
    const std::size_t n = exp.bit_length();
    for (std::size_t i = n; i-- > 0;) {
      result = sqr(result);
      if (exp.bit(i)) result = mul(result, base);
    }
    return result;
  }

  /// Modular inverse via binary extended GCD. Returns nullopt when
  /// gcd(a, m) != 1 (never happens for prime m and a != 0).
  std::optional<Value> inv(const Value& a0) const {
    const Value a = reduce(a0);
    if (a.is_zero()) return std::nullopt;
    // Invariants: u*x == a (mod m), v*y == a (mod m) for hidden x, y with
    // gcd preserved; classic binary algorithm (HAC 14.61 variant for odd m).
    Value u = a, v = m_;
    Value x1{1}, x2{0};
    while (!u.is_zero() && !(u == Value{1}) && !(v == Value{1})) {
      while (!u.is_zero() && !u.bit(0)) {
        u = u.shr(1);
        if (x1.bit(0)) x1.add_in_place(m_);
        x1 = x1.shr(1);
      }
      while (!v.bit(0)) {
        v = v.shr(1);
        if (x2.bit(0)) x2.add_in_place(m_);
        x2 = x2.shr(1);
      }
      if (u >= v) {
        u.sub_in_place(v);
        x1 = sub(x1, x2);
      } else {
        v.sub_in_place(u);
        x2 = sub(x2, x1);
      }
    }
    if (u == Value{1}) return reduce(x1);
    if (v == Value{1}) return reduce(x2);
    return std::nullopt;  // gcd != 1
  }

 private:
  Value m_;
};

}  // namespace medsec::bigint
