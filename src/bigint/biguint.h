// biguint.h — fixed-width big unsigned integers.
//
// Substrate for scalar arithmetic modulo the elliptic-curve group order
// (163-bit prime for K-163) used by the protocol layer (Peeters–Hermans
// response s = d + x + e*r mod l) and by scalar-multiplication tests.
//
// BigUInt<Bits> is a value type backed by 64-bit limbs (little-endian limb
// order). All arithmetic is well-defined (no UB on overflow: add/sub report
// carry/borrow, mul widens). Operations run in time independent of the
// *values* involved except where noted (division/modulo are not
// constant-time; they are host-side helpers, never executed on the modeled
// secure zone — see DESIGN.md §4).
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>
#include <stdexcept>

namespace medsec::bigint {

/// Fixed-width unsigned integer with Bits bits of storage.
template <std::size_t Bits>
class BigUInt {
 public:
  static_assert(Bits >= 64, "BigUInt requires at least one limb worth of bits");
  static constexpr std::size_t kBits = Bits;
  static constexpr std::size_t kLimbs = (Bits + 63) / 64;

  constexpr BigUInt() = default;

  /// Construct from a single 64-bit value (zero-extended).
  constexpr explicit BigUInt(std::uint64_t v) { limb_[0] = v; }

  /// Parse a big-endian hex string (optional "0x" prefix). Throws
  /// std::invalid_argument on bad characters or overflow.
  static BigUInt from_hex(std::string_view hex) {
    if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
    if (hex.empty()) throw std::invalid_argument("BigUInt::from_hex: empty");
    BigUInt out;
    std::size_t nibble = 0;
    for (std::size_t i = hex.size(); i-- > 0;) {
      const char c = hex[i];
      std::uint64_t v = 0;
      if (c >= '0' && c <= '9') v = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v = static_cast<std::uint64_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v = static_cast<std::uint64_t>(c - 'A' + 10);
      else throw std::invalid_argument("BigUInt::from_hex: bad digit");
      if (v != 0) {
        const std::size_t bit = nibble * 4;
        if (bit + 4 > kLimbs * 64)
          throw std::invalid_argument("BigUInt::from_hex: overflow");
        out.limb_[bit / 64] |= v << (bit % 64);
      }
      ++nibble;
    }
    return out;
  }

  /// Lowercase hex, no prefix, leading zeros stripped ("0" for zero).
  std::string to_hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string s;
    s.reserve(kLimbs * 16);
    bool seen = false;
    for (std::size_t i = kLimbs; i-- > 0;) {
      for (int shift = 60; shift >= 0; shift -= 4) {
        const unsigned d = static_cast<unsigned>((limb_[i] >> shift) & 0xF);
        if (d != 0) seen = true;
        if (seen) s.push_back(kDigits[d]);
      }
    }
    if (!seen) s = "0";
    return s;
  }

  constexpr std::uint64_t limb(std::size_t i) const { return limb_[i]; }
  constexpr void set_limb(std::size_t i, std::uint64_t v) { limb_[i] = v; }

  constexpr bool is_zero() const {
    std::uint64_t acc = 0;
    for (auto l : limb_) acc |= l;
    return acc == 0;
  }

  constexpr bool bit(std::size_t i) const {
    return i < kLimbs * 64 && ((limb_[i / 64] >> (i % 64)) & 1u) != 0;
  }

  constexpr void set_bit(std::size_t i, bool v) {
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (v) limb_[i / 64] |= mask;
    else limb_[i / 64] &= ~mask;
  }

  /// Number of significant bits (0 for zero).
  constexpr std::size_t bit_length() const {
    for (std::size_t i = kLimbs; i-- > 0;) {
      if (limb_[i] != 0) {
        std::size_t b = 64;
        std::uint64_t v = limb_[i];
        while ((v >> 63) == 0) { v <<= 1; --b; }
        return i * 64 + b;
      }
    }
    return 0;
  }

  /// Three-way compare: -1, 0, +1.
  constexpr int compare(const BigUInt& o) const {
    for (std::size_t i = kLimbs; i-- > 0;) {
      if (limb_[i] != o.limb_[i]) return limb_[i] < o.limb_[i] ? -1 : 1;
    }
    return 0;
  }

  friend constexpr bool operator==(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) == 0;
  }
  friend constexpr bool operator<(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) < 0;
  }
  friend constexpr bool operator<=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) <= 0;
  }
  friend constexpr bool operator>(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) > 0;
  }
  friend constexpr bool operator>=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) >= 0;
  }

  /// a += b; returns the carry out of the top limb.
  constexpr std::uint64_t add_in_place(const BigUInt& b) {
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      const unsigned __int128 s =
          static_cast<unsigned __int128>(limb_[i]) + b.limb_[i] + carry;
      limb_[i] = static_cast<std::uint64_t>(s);
      carry = static_cast<std::uint64_t>(s >> 64);
    }
    return carry;
  }

  /// a -= b; returns the borrow out of the top limb (1 if b > a).
  constexpr std::uint64_t sub_in_place(const BigUInt& b) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      const unsigned __int128 d = static_cast<unsigned __int128>(limb_[i]) -
                                  b.limb_[i] - borrow;
      limb_[i] = static_cast<std::uint64_t>(d);
      borrow = static_cast<std::uint64_t>((d >> 64) & 1);
    }
    return borrow;
  }

  friend constexpr BigUInt operator+(BigUInt a, const BigUInt& b) {
    a.add_in_place(b);
    return a;
  }
  friend constexpr BigUInt operator-(BigUInt a, const BigUInt& b) {
    a.sub_in_place(b);
    return a;
  }

  friend constexpr BigUInt operator^(BigUInt a, const BigUInt& b) {
    for (std::size_t i = 0; i < kLimbs; ++i) a.limb_[i] ^= b.limb_[i];
    return a;
  }
  friend constexpr BigUInt operator&(BigUInt a, const BigUInt& b) {
    for (std::size_t i = 0; i < kLimbs; ++i) a.limb_[i] &= b.limb_[i];
    return a;
  }
  friend constexpr BigUInt operator|(BigUInt a, const BigUInt& b) {
    for (std::size_t i = 0; i < kLimbs; ++i) a.limb_[i] |= b.limb_[i];
    return a;
  }

  /// Logical left shift by any amount (bits shifted past the top are lost).
  constexpr BigUInt shl(std::size_t n) const {
    BigUInt out;
    if (n >= kLimbs * 64) return out;
    const std::size_t limb_shift = n / 64;
    const std::size_t bit_shift = n % 64;
    for (std::size_t i = kLimbs; i-- > limb_shift;) {
      std::uint64_t v = limb_[i - limb_shift] << bit_shift;
      if (bit_shift != 0 && i > limb_shift)
        v |= limb_[i - limb_shift - 1] >> (64 - bit_shift);
      out.limb_[i] = v;
    }
    return out;
  }

  /// Logical right shift by any amount.
  constexpr BigUInt shr(std::size_t n) const {
    BigUInt out;
    if (n >= kLimbs * 64) return out;
    const std::size_t limb_shift = n / 64;
    const std::size_t bit_shift = n % 64;
    for (std::size_t i = 0; i + limb_shift < kLimbs; ++i) {
      std::uint64_t v = limb_[i + limb_shift] >> bit_shift;
      if (bit_shift != 0 && i + limb_shift + 1 < kLimbs)
        v |= limb_[i + limb_shift + 1] << (64 - bit_shift);
      out.limb_[i] = v;
    }
    return out;
  }

  friend constexpr BigUInt operator<<(const BigUInt& a, std::size_t n) {
    return a.shl(n);
  }
  friend constexpr BigUInt operator>>(const BigUInt& a, std::size_t n) {
    return a.shr(n);
  }

  /// Widening schoolbook multiply.
  friend constexpr BigUInt<2 * Bits> widening_mul(const BigUInt& a,
                                                  const BigUInt& b) {
    BigUInt<2 * Bits> out;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      std::uint64_t carry = 0;
      for (std::size_t j = 0; j < kLimbs; ++j) {
        const unsigned __int128 cur =
            static_cast<unsigned __int128>(a.limb_[i]) * b.limb_[j] +
            out.limb(i + j) + carry;
        out.set_limb(i + j, static_cast<std::uint64_t>(cur));
        carry = static_cast<std::uint64_t>(cur >> 64);
      }
      // Propagate the final carry (cannot overflow the 2*Bits result).
      std::size_t k = i + kLimbs;
      while (carry != 0 && k < BigUInt<2 * Bits>::kLimbs) {
        const unsigned __int128 cur =
            static_cast<unsigned __int128>(out.limb(k)) + carry;
        out.set_limb(k, static_cast<std::uint64_t>(cur));
        carry = static_cast<std::uint64_t>(cur >> 64);
        ++k;
      }
    }
    return out;
  }

  /// Truncating multiply (low Bits of the product).
  friend constexpr BigUInt operator*(const BigUInt& a, const BigUInt& b) {
    const auto wide = widening_mul(a, b);
    BigUInt out;
    for (std::size_t i = 0; i < kLimbs; ++i) out.limb_[i] = wide.limb(i);
    return out;
  }

  /// a + r·b, widened by one limb so it can never overflow: the substrate
  /// of the scalar-blinding countermeasure k' = k + r·n (Coron), where the
  /// 64-bit blind r pushes the sum past the Bits-bit working width.
  friend constexpr BigUInt<Bits + 64> add_scaled(const BigUInt& a,
                                                 std::uint64_t r,
                                                 const BigUInt& b) {
    BigUInt<Bits + 64> out = a.template resize<Bits + 64>();
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(b.limb_[i]) * r + out.limb(i) + carry;
      out.set_limb(i, static_cast<std::uint64_t>(cur));
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    for (std::size_t i = kLimbs; carry != 0 && i < BigUInt<Bits + 64>::kLimbs;
         ++i) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(out.limb(i)) + carry;
      out.set_limb(i, static_cast<std::uint64_t>(cur));
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    return out;
  }

  /// Truncate/zero-extend to another width.
  template <std::size_t OtherBits>
  constexpr BigUInt<OtherBits> resize() const {
    BigUInt<OtherBits> out;
    const std::size_t n = kLimbs < BigUInt<OtherBits>::kLimbs
                              ? kLimbs
                              : BigUInt<OtherBits>::kLimbs;
    for (std::size_t i = 0; i < n; ++i) out.set_limb(i, limb_[i]);
    return out;
  }

  /// Remainder of *this divided by m (shift-subtract long division).
  /// Not constant-time; host-side use only. m must be nonzero.
  constexpr BigUInt mod(const BigUInt& m) const {
    if (m.is_zero()) throw std::invalid_argument("BigUInt::mod: zero modulus");
    BigUInt r = *this;
    const std::size_t mbits = m.bit_length();
    std::size_t rbits = r.bit_length();
    while (rbits >= mbits) {
      BigUInt shifted = m.shl(rbits - mbits);
      if (shifted <= r) {
        r.sub_in_place(shifted);
      } else if (rbits > mbits) {
        r.sub_in_place(m.shl(rbits - mbits - 1));
      } else {
        break;  // rbits == mbits and shifted > r: r < m, done.
      }
      rbits = r.bit_length();
    }
    return r;
  }

  /// Constant-time conditional select: returns a if choice==0, b if 1.
  static constexpr BigUInt select(std::uint64_t choice, const BigUInt& a,
                                  const BigUInt& b) {
    const std::uint64_t mask = 0 - (choice & 1);
    BigUInt out;
    for (std::size_t i = 0; i < kLimbs; ++i)
      out.limb_[i] = (a.limb_[i] & ~mask) | (b.limb_[i] & mask);
    return out;
  }

 private:
  std::array<std::uint64_t, kLimbs> limb_{};
};

using U192 = BigUInt<192>;
using U256 = BigUInt<256>;
using U384 = BigUInt<384>;

}  // namespace medsec::bigint
