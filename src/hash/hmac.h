// hmac.h — HMAC (RFC 2104) and HKDF (RFC 5869) over any hash with the
// update/finish interface used in this library.
//
// The protocol layer derives session keys with HKDF and authenticates
// transcripts with HMAC; the HMAC-DRBG in rng/ also builds on this.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace medsec::hash {

/// Generic HMAC over hash H (H must expose kDigestSize, kBlockSize, Digest,
/// update(), finish()).
template <typename H>
class Hmac {
 public:
  using Digest = typename H::Digest;
  static constexpr std::size_t kDigestSize = H::kDigestSize;

  explicit Hmac(std::span<const std::uint8_t> key) {
    std::array<std::uint8_t, H::kBlockSize> k{};
    if (key.size() > H::kBlockSize) {
      const auto d = H::digest(key);
      std::copy(d.begin(), d.end(), k.begin());
    } else {
      std::copy(key.begin(), key.end(), k.begin());
    }
    for (std::size_t i = 0; i < H::kBlockSize; ++i) {
      ipad_[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
      opad_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }
    reset();
  }

  void reset() {
    inner_.reset();
    inner_.update(ipad_);
  }

  void update(std::span<const std::uint8_t> data) { inner_.update(data); }

  Digest finish() {
    const auto inner_digest = inner_.finish();
    H outer;
    outer.update(opad_);
    outer.update(inner_digest);
    reset();
    return outer.finish();
  }

  static Digest mac(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> data) {
    Hmac h(key);
    h.update(data);
    return h.finish();
  }

 private:
  H inner_;
  std::array<std::uint8_t, H::kBlockSize> ipad_{};
  std::array<std::uint8_t, H::kBlockSize> opad_{};
};

/// HKDF-Extract + HKDF-Expand (RFC 5869).
template <typename H>
std::vector<std::uint8_t> hkdf(std::span<const std::uint8_t> salt,
                               std::span<const std::uint8_t> ikm,
                               std::span<const std::uint8_t> info,
                               std::size_t length) {
  const auto prk = Hmac<H>::mac(salt, ikm);
  std::vector<std::uint8_t> okm;
  okm.reserve(length);
  std::vector<std::uint8_t> t;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Hmac<H> h(prk);
    h.update(t);
    h.update(info);
    h.update({&counter, 1});
    const auto block = h.finish();
    t.assign(block.begin(), block.end());
    const std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
  }
  return okm;
}

/// Constant-time comparison of equal-length byte strings.
inline bool constant_time_equal(std::span<const std::uint8_t> a,
                                std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace medsec::hash
