// sha256.h — SHA-256 (FIPS 180-4). Backs the HMAC-DRBG in rng/ and HKDF key
// derivation in the protocol layer.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>

namespace medsec::hash {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  Digest finish();

  static Digest digest(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace medsec::hash
