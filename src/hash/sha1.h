// sha1.h — SHA-1 (FIPS 180-4).
//
// The paper cites O'Neill's 5 527-GE SHA-1 as the benchmark "small hash" to
// argue hashes are not free in lightweight protocols (§4). We implement the
// function itself so protocol-layer constructions (and the gate-count model
// in hw/) refer to real, tested code. SHA-1 is used here for protocol
// transcript binding in a 2013-era design reproduction — not as a modern
// collision-resistant hash.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace medsec::hash {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  Digest finish();

  /// One-shot convenience.
  static Digest digest(std::span<const std::uint8_t> data) {
    Sha1 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace medsec::hash
