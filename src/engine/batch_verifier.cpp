#include "engine/batch_verifier.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ecc/scalar_mult.h"
#include "protocol/wire.h"

namespace medsec::engine {

namespace {
using ecc::Curve;
using ecc::Fe;
using ecc::Point;
using ecc::Scalar;
}  // namespace

std::vector<std::optional<Point>> decode_points_batch(
    const Curve& curve, const std::vector<std::vector<std::uint8_t>>& encoded) {
  std::vector<std::optional<Point>> out(encoded.size());

  // Pass 1: parse prefix + x and collect the x^2 decompression
  // denominators of every well-formed entry.
  struct Slot {
    std::size_t index;
    Fe x;
    int y_bit;
  };
  std::vector<Slot> slots;
  std::vector<Fe> denoms;  // x^2 per slot, inverted in one shared batch
  slots.reserve(encoded.size());
  denoms.reserve(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    const auto& bytes = encoded[i];
    if (bytes.size() != 1 + protocol::kFeBytes) continue;
    if (bytes[0] != 0x02 && bytes[0] != 0x03) continue;  // incl. infinity
    Fe x;
    try {
      x = protocol::decode_fe({bytes.begin() + 1, bytes.end()});
    } catch (const std::invalid_argument&) {
      continue;
    }
    if (x.is_zero()) continue;  // the order-2 point: never a protocol point
    slots.push_back(Slot{i, x, bytes[0] & 1});
    denoms.push_back(Fe::sqr(x));
  }

  Fe::batch_inv(denoms.data(), denoms.size());

  // Pass 2: solve z^2 + z = x + a + b/x^2 per slot, pick the root with the
  // encoded parity, and gate on subgroup membership — the same pipeline as
  // protocol::decode_point, minus one inversion per point.
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const Fe& x = slots[s].x;
    const Fe rhs = x + curve.a() + Fe::mul(curve.b(), denoms[s]);
    if (Fe::trace(rhs) != 0) continue;  // x is not on the curve
    Fe z = Fe::half_trace(rhs);
    if ((z.bit(0) ? 1 : 0) != slots[s].y_bit) z += Fe::one();
    const Point p = Point::affine(x, Fe::mul(x, z));
    if (!curve.validate_subgroup_point(p)) continue;
    out[slots[s].index] = p;
  }
  return out;
}

BatchVerifyOutcome schnorr_verify_batch(
    const Curve& curve,
    std::span<const protocol::SchnorrTranscript> transcripts,
    std::span<const Point> keys, rng::RandomSource& rng) {
  if (transcripts.size() != keys.size())
    throw std::invalid_argument("schnorr_verify_batch: size mismatch");
  const std::size_t n = transcripts.size();
  BatchVerifyOutcome out;
  out.ok.assign(n, false);
  if (n == 0) return out;
  std::vector<bool>& ok = out.ok;

  const auto& ring = curve.scalar_ring();

  // Random linear combination:
  //   (sum c_i s_i)·P − sum c_i·R_i − sum (c_i e_i)·X_i == O.
  // Nonzero 64-bit coefficients keep the R_i terms short (64 add rows in
  // the interleaved MSM) at a 2^-64 per-batch forgery bound.
  std::vector<ecc::MsmTerm> terms;
  terms.reserve(2 * n + 1);
  std::vector<std::size_t> live;  // indices folded into the combination
  live.reserve(n);
  Scalar acc_s{};  // sum c_i s_i mod l
  for (std::size_t i = 0; i < n; ++i) {
    if (transcripts[i].commitment.infinity) continue;  // rejected outright
    std::uint64_t c64;
    do {
      c64 = rng.next_u64();
    } while (c64 == 0);
    const Scalar c{c64};
    acc_s = ring.add(acc_s, ring.mul(c, transcripts[i].response));
    terms.push_back({c, curve.negate(transcripts[i].commitment)});
    terms.push_back(
        {ring.mul(c, transcripts[i].challenge), curve.negate(keys[i])});
    live.push_back(i);
  }
  if (live.empty()) return out;
  terms.push_back({acc_s, curve.base_point()});

  if (ecc::multi_scalar_mult(curve, terms).infinity) {
    for (const std::size_t i : live) ok[i] = true;
    return out;
  }
  // The batch holds at least one forgery: isolate it per item so nobody
  // hides behind (or is condemned by) the batch.
  out.rlc_passed = false;
  for (const std::size_t i : live)
    ok[i] = protocol::schnorr_verify(curve, keys[i], transcripts[i]);
  return out;
}

SchnorrBatchVerifier::SchnorrBatchVerifier(const Curve& curve,
                                           std::size_t batch_size,
                                           std::uint64_t rlc_seed)
    : curve_(&curve),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      rng_(rlc_seed) {}

void SchnorrBatchVerifier::enqueue(PendingTranscript t) {
  std::vector<PendingTranscript> batch;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(t));
    ++stats_.items;
    if (queue_.size() < batch_size_) return;
    batch.swap(queue_);
    for (const auto& p : batch) in_verify_.push_back(p.session);
  }
  verify_batch(std::move(batch));
}

void SchnorrBatchVerifier::flush() {
  std::vector<PendingTranscript> batch;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return;
    batch.swap(queue_);
    for (const auto& p : batch) in_verify_.push_back(p.session);
  }
  verify_batch(std::move(batch));
}

std::size_t SchnorrBatchVerifier::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_verify_.size();
}

std::vector<std::uint64_t> SchnorrBatchVerifier::pending_sessions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> ids = in_verify_;
  ids.reserve(ids.size() + queue_.size());
  for (const auto& t : queue_) ids.push_back(t.session);
  return ids;
}

BatchVerifierStats SchnorrBatchVerifier::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SchnorrBatchVerifier::verify_batch(std::vector<PendingTranscript> batch) {
  // Shared-inversion decode of every commitment in the batch.
  std::vector<std::vector<std::uint8_t>> wires;
  wires.reserve(batch.size());
  for (const auto& t : batch) wires.push_back(t.commitment_wire);
  const auto points = decode_points_batch(*curve_, wires);

  std::vector<protocol::SchnorrTranscript> transcripts;
  std::vector<Point> keys;
  std::vector<std::size_t> origin;  // batch index per live transcript
  std::size_t decode_failures = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!points[i]) {
      ++decode_failures;
      continue;
    }
    transcripts.push_back(protocol::SchnorrTranscript{
        *points[i], batch[i].challenge, batch[i].response});
    keys.push_back(batch[i].X);
    origin.push_back(i);
  }

  BatchVerifyOutcome outcome;
  {
    const std::lock_guard<std::mutex> lock(rng_mu_);
    outcome = schnorr_verify_batch(*curve_, transcripts, keys, rng_);
  }

  std::vector<bool> accepted(batch.size(), false);
  for (std::size_t j = 0; j < origin.size(); ++j)
    accepted[origin[j]] = outcome.ok[j];

  std::size_t n_accepted = 0;
  for (const bool a : accepted) n_accepted += a ? 1 : 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.accepted += n_accepted;
    stats_.rejected += batch.size() - n_accepted;
    stats_.decode_failures += decode_failures;
    if (!outcome.rlc_passed) {
      ++stats_.rlc_failures;
      stats_.single_fallbacks += transcripts.size();
    }
  }

  // Callbacks last, with no locks held.
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (batch[i].on_result) batch[i].on_result(accepted[i]);

  // Verdicts delivered: this batch is no longer pending. One occurrence
  // per id — a callback may have re-entered enqueue and pushed the same
  // session into a fresh in-verify batch.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& t : batch) {
      const auto it =
          std::find(in_verify_.begin(), in_verify_.end(), t.session);
      if (it != in_verify_.end()) in_verify_.erase(it);
    }
  }
}

}  // namespace medsec::engine
