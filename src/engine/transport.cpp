#include "engine/transport.h"

#include <array>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>

#include "rng/xoshiro.h"

namespace medsec::engine {

// --- CRC-32 ------------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// --- label interning ---------------------------------------------------------

const char* intern_label(std::string_view label) {
  // unordered_set<string> never moves its nodes, so c_str() pointers are
  // stable for the life of the pool (process lifetime, intentionally
  // leaked like ThreadPool::shared()).
  static std::mutex mu;
  static auto* pool = new std::unordered_set<std::string>();
  const std::lock_guard<std::mutex> lock(mu);
  return pool->emplace(label).first->c_str();
}

// --- frame buffer pool -------------------------------------------------------

namespace {

// Per-thread recycling keeps the pool lock-free; the caps bound what one
// thread can pin (64 buffers x ~4.4 KB max frame ≈ 280 KB worst case).
constexpr std::size_t kPoolMaxBuffers = 64;
constexpr std::size_t kPoolMaxCapacity =
    kMaxFramePayload + kMaxFrameLabel + 64;

std::vector<std::vector<std::uint8_t>>& pool_freelist() {
  thread_local std::vector<std::vector<std::uint8_t>> freelist;
  return freelist;
}

}  // namespace

std::vector<std::uint8_t> FramePool::acquire() {
  auto& fl = pool_freelist();
  if (fl.empty()) return {};
  std::vector<std::uint8_t> buf = std::move(fl.back());
  fl.pop_back();
  buf.clear();
  return buf;
}

void FramePool::release(std::vector<std::uint8_t>&& buf) {
  auto& fl = pool_freelist();
  if (fl.size() >= kPoolMaxBuffers || buf.capacity() == 0 ||
      buf.capacity() > kPoolMaxCapacity)
    return;  // drop: the vector frees normally
  fl.push_back(std::move(buf));
}

std::size_t FramePool::pooled() { return pool_freelist().size(); }

// --- frame codec -------------------------------------------------------------

namespace {

constexpr std::uint8_t kMagic0 = 0x4D;  // 'M'
constexpr std::uint8_t kMagic1 = 0x46;  // 'F' — medsec frame
constexpr std::size_t kHeaderBytes = 2 + 1 + 1 + 8 + 4;  // up to label_len
constexpr std::size_t kCrcBytes = 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out = FramePool::acquire();
  encode_frame_into(f, out);
  return out;
}

void encode_frame_into(const Frame& f, std::vector<std::uint8_t>& out) {
  const std::string_view label = f.label ? f.label : "";
  out.clear();
  out.reserve(kHeaderBytes + 1 + label.size() + 2 + f.payload.size() +
              kCrcBytes);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(0);  // flags, reserved
  put_u64(out, f.session);
  put_u32(out, f.seq);
  out.push_back(static_cast<std::uint8_t>(
      label.size() <= kMaxFrameLabel ? label.size() : kMaxFrameLabel));
  out.insert(out.end(), label.begin(),
             label.begin() + static_cast<std::ptrdiff_t>(
                                 out.back()));
  out.push_back(static_cast<std::uint8_t>(f.payload.size() & 0xFF));
  out.push_back(static_cast<std::uint8_t>(f.payload.size() >> 8));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  put_u32(out, crc32(out));
}

std::optional<Frame> decode_frame(std::span<const std::uint8_t> bytes) {
  // Minimum: header + label_len(=0) + payload_len + crc.
  if (bytes.size() < kHeaderBytes + 1 + 2 + kCrcBytes) return std::nullopt;
  if (bytes[0] != kMagic0 || bytes[1] != kMagic1) return std::nullopt;
  if (bytes[3] != 0) return std::nullopt;  // reserved flags must be clear

  // CRC first: a bit flip anywhere (including in the length fields used
  // below) must read as channel noise, not as a different frame.
  const std::uint32_t want =
      get_u32(bytes, bytes.size() - kCrcBytes);
  if (crc32(bytes.first(bytes.size() - kCrcBytes)) != want)
    return std::nullopt;

  Frame f;
  switch (bytes[2]) {
    case static_cast<std::uint8_t>(FrameType::kData):
      f.type = FrameType::kData;
      break;
    case static_cast<std::uint8_t>(FrameType::kAck):
      f.type = FrameType::kAck;
      break;
    case static_cast<std::uint8_t>(FrameType::kReject):
      f.type = FrameType::kReject;
      break;
    default:
      return std::nullopt;
  }
  f.session = get_u64(bytes, 4);
  f.seq = get_u32(bytes, 12);

  std::size_t at = kHeaderBytes;
  const std::size_t label_len = bytes[at++];
  if (bytes.size() < at + label_len + 2 + kCrcBytes) return std::nullopt;
  f.label = intern_label(std::string_view(
      reinterpret_cast<const char*>(bytes.data() + at), label_len));
  at += label_len;
  const std::size_t payload_len =
      bytes[at] | (static_cast<std::size_t>(bytes[at + 1]) << 8);
  at += 2;
  if (payload_len > kMaxFramePayload) return std::nullopt;
  // Exact-length check: every byte before the CRC must be accounted for.
  if (at + payload_len + kCrcBytes != bytes.size()) return std::nullopt;
  f.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   bytes.begin() +
                       static_cast<std::ptrdiff_t>(at + payload_len));
  return f;
}

// --- lossy link --------------------------------------------------------------

LossyLink::LossyLink(core::EventQueue& queue, std::uint64_t seed,
                     const FaultProfile& up, const FaultProfile& down)
    : queue_(&queue), seed_(seed) {
  profile_[kUp] = up;
  profile_[kDown] = down;
}

std::uint64_t LossyLink::fault_word(Direction dir, std::uint64_t n,
                                    std::uint64_t lane) const {
  std::uint64_t s = seed_ ^ (0xD1B54A32D192ED03ULL * (n + 1)) ^
                    (0x9E3779B97F4A7C15ULL * lane) ^
                    (dir == kUp ? 0x5555555555555555ULL
                                : 0xAAAAAAAAAAAAAAAAULL);
  return rng::splitmix64(s);
}

void LossyLink::schedule_delivery(Direction dir,
                                  std::vector<std::uint8_t> bytes,
                                  core::Cycle delay, bool corrupted) {
  queue_->schedule(
      delay, [this, dir, corrupted, bytes = std::move(bytes)]() mutable {
        ++stats_[dir].delivered;
        if (corrupted) ++stats_[dir].corrupted_delivered;
        if (receivers_[dir]) receivers_[dir](std::move(bytes));
      });
}

void LossyLink::send(Direction dir, std::vector<std::uint8_t> bytes) {
  const FaultProfile& p = profile_[dir];
  const std::uint64_t n = counter_[dir]++;
  ++stats_[dir].sent;

  if (p.drop > 0 && to_unit(fault_word(dir, n, 0)) < p.drop) {
    ++stats_[dir].dropped;
    return;
  }

  bool corrupted = false;
  if (p.corrupt > 0 && to_unit(fault_word(dir, n, 1)) < p.corrupt &&
      !bytes.empty()) {
    // Flip one derived bit of one derived byte — enough for the CRC to
    // catch, deterministic enough to replay.
    const std::uint64_t w = fault_word(dir, n, 2);
    bytes[static_cast<std::size_t>(w % bytes.size())] ^=
        static_cast<std::uint8_t>(1u << ((w >> 32) % 8));
    ++stats_[dir].corrupted;
    corrupted = true;
  }

  const core::Cycle band =
      p.delay_max > p.delay_min ? p.delay_max - p.delay_min + 1 : 1;
  core::Cycle delay = p.delay_min + fault_word(dir, n, 3) % band;
  if (p.reorder > 0 && to_unit(fault_word(dir, n, 4)) < p.reorder) {
    // Hold the frame back past its successors' delay band.
    delay += p.delay_max * (2 + fault_word(dir, n, 5) % 3);
    ++stats_[dir].reordered;
  }

  if (p.duplicate > 0 && to_unit(fault_word(dir, n, 6)) < p.duplicate) {
    core::Cycle dup_delay = p.delay_min + fault_word(dir, n, 7) % band;
    ++stats_[dir].duplicated;
    // Copy into a pooled buffer: the original is sent below.
    std::vector<std::uint8_t> dup = FramePool::acquire();
    dup.assign(bytes.begin(), bytes.end());
    schedule_delivery(dir, std::move(dup), dup_delay, corrupted);
  }
  schedule_delivery(dir, std::move(bytes), delay, corrupted);
}

}  // namespace medsec::engine
