// net.h — the real-socket front end for the sharded gateway.
//
// Everything below shard.h is deterministic and in-process; this file is
// the one place real I/O happens. A UdpFrontEnd owns one UDP socket and
// one readiness-loop thread (epoll on Linux, poll(2) elsewhere) that:
//
//   1. drains every ready datagram without blocking,
//   2. peeks the session id straight out of the PR 6 frame header
//      (peek_frame_session — no full decode, no CRC walk, on the hot path),
//   3. routes the raw bytes into shard_of(session)'s mailbox lane, and
//   4. on a full lane, sheds: one kReject frame straight back to the
//      sender from the readiness thread. Backpressure is a verdict the
//      device can see, never a silently growing queue.
//
// Downlink is the Transport interface: shard threads call send_downlink,
// which is a bare sendto — UDP sends are datagram-atomic and thread-safe,
// so N shards share the socket without a lock.
//
// The frame codec, CRC discipline, ARQ and session logic are all the
// in-process stack's; the front end moves bytes and owns no protocol
// state. A corrupted datagram is detected by the same CRC path the
// deterministic chaos campaign exercises.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/shard.h"
#include "engine/transport.h"

namespace medsec::engine {

/// Header peek: session id of an encoded frame, or nullopt when the bytes
/// cannot be a frame (short / bad magic). Reads the id field only — the
/// router must not pay for a CRC walk per datagram; integrity is checked
/// once, by the owning shard's decode.
std::optional<std::uint64_t> peek_frame_session(
    std::span<const std::uint8_t> bytes);

/// RAII nonblocking UDP/IPv4 socket. Thin: bind, sendto, recvfrom, close.
/// Throws std::runtime_error when the kernel refuses (socket/bind).
class UdpSocket {
 public:
  /// Bind to 127.0.0.1:`port` (0 = kernel-assigned ephemeral port).
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  int fd() const { return fd_; }
  std::uint16_t local_port() const { return port_; }

  /// One datagram out. Returns false on a transient refusal (full socket
  /// buffer — UDP's version of shedding); throws nothing on the hot path.
  bool send_to(const Peer& peer, std::span<const std::uint8_t> bytes);

  /// One datagram in (nonblocking). Empty optional = nothing ready.
  /// The payload lands in `out` (resized), the sender in `peer`.
  bool recv_from(std::vector<std::uint8_t>& out, Peer& peer);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

struct UdpFrontEndStats {
  std::uint64_t datagrams_in = 0;
  std::uint64_t datagrams_out = 0;
  std::uint64_t not_a_frame = 0;   ///< failed the header peek; dropped
  std::uint64_t shed = 0;          ///< mailbox full -> kReject sent back
  std::uint64_t send_failures = 0; ///< sendto refused (full buffer)
};

/// The socket front end: one readiness loop feeding a ShardFleet's
/// mailboxes, and the fleet's downlink Transport. The fleet must be
/// constructed with `producers` >= 1 (the readiness thread uses lane 0).
class UdpFrontEnd final : public Transport {
 public:
  /// Binds immediately (port 0 = ephemeral; read local_port()).
  UdpFrontEnd(ShardFleet& fleet, std::uint16_t port = 0);
  ~UdpFrontEnd() override;

  std::uint16_t local_port() const { return socket_.local_port(); }

  /// Start the readiness loop thread. Idempotent.
  void start();
  /// Stop and join the loop. Idempotent; the destructor calls it.
  void stop();

  // Transport: shard threads' downlink path. Lock-free — sendto on a
  // shared UDP socket is datagram-atomic.
  void send_downlink(std::uint64_t session, const Peer& peer,
                     std::vector<std::uint8_t> bytes) override;

  UdpFrontEndStats stats() const;

 private:
  void loop();
  void drain_socket();
  void shed_reject(std::uint64_t session, const Peer& peer);

  ShardFleet* fleet_;
  UdpSocket socket_;
  std::thread thread_;
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> datagrams_in_{0};
  std::atomic<std::uint64_t> datagrams_out_{0};
  std::atomic<std::uint64_t> not_a_frame_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> send_failures_{0};
};

}  // namespace medsec::engine
