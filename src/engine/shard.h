// shard.h — the sharded async gateway engine: N independent event loops,
// each owning one core::EventQueue, one GatewayServer (its partition of
// the session registry, hashed by session id) and one SchnorrBatchVerifier
// that drains deferred transcripts into ONE Straus/Shamir multi-scalar
// multiplication per tick.
//
// Data flow (socket mode):
//
//   UDP datagrams ──> net.h front end (epoll readiness loop)
//                         │  peek session id from the frame header,
//                         │  shard = shard_of(id)
//                         ▼
//              lock-free SPSC mailbox lane        (core/mpsc_ring.h,
//                         │                        one lane per producer —
//                         ▼                        full lane => kReject)
//     shard thread: drain mailbox -> GatewayServer::on_uplink
//                   run virtual-clock timers (ARQ retransmits, deadlines)
//                   flush batch verifier (<= 1 MSM per tick)
//                         │
//                         ▼
//              Transport::send_downlink (sendto / LossyLink)
//
// Threading contract: everything inside a ShardEngine (queue, gateway,
// session records) is owned by its shard thread — the single-threaded
// discipline of core::EventQueue. The only cross-thread edges are the
// mailbox rings (wait-free), the verifier (internally locked, but only
// ever touched by its own shard here), and the relaxed stats counters.
//
// Deterministic mode: run_sharded_campaign() re-runs the PR 6 chaos
// campaign with sessions hash-partitioned across N shard worlds and
// Schnorr verdicts deferred to the per-shard batch verifiers. Because
// every per-session seed is a pure function of (campaign seed, global
// session id) — see campaign_fixtures.h — its outcome digest is
// bit-identical to engine::run_chaos_campaign at ANY shard count; the
// shard suite pins that.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/event_queue.h"
#include "core/mpsc_ring.h"
#include "engine/batch_verifier.h"
#include "engine/gateway.h"

namespace medsec::engine {

/// A datagram return address. Socket front ends fill ip/port (IPv4, host
/// byte order); in-process transports may use it as an opaque cookie.
struct Peer {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
  bool valid() const { return port != 0; }
  bool operator==(const Peer& o) const {
    return ip == o.ip && port == o.port;
  }
};

/// One ingress datagram, routed into a shard mailbox.
struct IngressItem {
  std::uint64_t session = 0;
  Peer peer;
  std::vector<std::uint8_t> bytes;
};

/// Where a shard writes a session's downlink bytes. Implementations: the
/// UDP front end (net.h, sendto is datagram-atomic and thread-safe) and
/// the deterministic in-process LossyLink adapter used by tests.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send_downlink(std::uint64_t session, const Peer& peer,
                             std::vector<std::uint8_t> bytes) = 0;
};

/// Session -> shard partition: splitmix64 finalizer over the id. Pure
/// function of the id, so the front end and every test agree without
/// coordination.
inline std::size_t shard_of(std::uint64_t session, std::size_t shards) {
  std::uint64_t z = session + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return shards <= 1 ? 0 : static_cast<std::size_t>(z % shards);
}

/// What a shard needs to serve one new session (auto-opened on its first
/// datagram in socket mode).
struct SessionSetup {
  std::unique_ptr<protocol::SessionMachine> machine;
  GatewayServer::Judge judge;  ///< inline verdict (ignored when deferred)
  /// Machine is a Mode::kDeferred SchnorrVerifier: route the verdict
  /// through the shard's batch verifier instead of the inline judge.
  bool deferred_schnorr = false;
  std::unique_ptr<rng::Xoshiro256> rng;
};

/// Builds the server half for a session id. Must be thread-safe across
/// shards (each shard calls it from its own thread) and deterministic in
/// the id for reproducible runs.
using SessionFactory = std::function<SessionSetup(std::uint64_t session)>;

struct ShardFleetConfig {
  std::size_t shards = 1;
  /// Mailbox ring capacity per producer lane per shard (rounded up to a
  /// power of two). A full lane sheds with kReject — bounded memory and
  /// explicit backpressure, never a blocked readiness loop.
  std::size_t mailbox_capacity = 4096;
  /// Per-shard batch verifier flush threshold; the shard tick also
  /// flushes whatever is queued, so this is a ceiling, not a latency.
  std::size_t verify_batch = 64;
  /// Base seed for per-session derivations (delivery jitter, RLC
  /// coefficients are mixed per shard/session from it).
  std::uint64_t seed = 0x5EC0FFEE;
  GatewayConfig gateway;
  /// Socket mode: virtual cycles per real microsecond (drives ARQ
  /// retransmit timers off the wall clock).
  double cycles_per_us = 1.0;
  /// Max mailbox items drained per tick before timers run again.
  std::size_t drain_chunk = 256;
};

/// Relaxed-atomic counters a shard thread publishes while running.
struct ShardStats {
  std::uint64_t ingress = 0;         ///< datagrams drained from the mailbox
  std::uint64_t mailbox_shed = 0;    ///< try_push failures (backpressure)
  std::uint64_t opened = 0;
  std::uint64_t completed = 0;       ///< verdict landed (deferred included)
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t verifier_flushes = 0;  ///< ticks that ran an MSM
  std::uint64_t ticks = 0;
};

/// One shard: event queue + gateway partition + batch verifier + mailbox.
/// Producer API (offer) is wait-free and callable from its designated
/// producer threads; everything else belongs to the shard thread.
class ShardEngine {
 public:
  ShardEngine(std::size_t index, const ShardFleetConfig& config,
              const ecc::Curve& curve, SessionFactory factory,
              std::size_t producers);

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  std::size_t index() const { return index_; }

  /// Producer path (front-end thread `lane`): route one datagram into
  /// this shard's mailbox. False = lane full; the caller sheds (replies
  /// kReject) — this never blocks.
  bool offer(std::size_t lane, IngressItem&& item);

  // --- shard-thread API ------------------------------------------------------

  void set_transport(Transport* t) { transport_ = t; }

  /// Drain up to `limit` mailbox items into the gateway (auto-opening
  /// unknown sessions via the factory). Returns items processed.
  std::size_t drain_mailbox(std::size_t limit);

  /// Run timers due by virtual cycle `t` (ARQ retransmits, deadlines).
  void advance_to(core::Cycle t) { queue_.run_until(t); }

  /// Verify everything queued — at most one MSM per call/tick.
  void flush_verifier();

  /// One socket-mode tick: drain -> timers -> flush. Returns the number
  /// of mailbox items drained (0 lets the loop thread sleep briefly).
  std::size_t tick(core::Cycle virtual_now);

  bool quiescent() const {
    return mailbox_.size_approx() == 0 && queue_.empty() &&
           verifier_.pending() == 0;
  }

  core::EventQueue& queue() { return queue_; }
  GatewayServer& gateway() { return *gateway_; }
  SchnorrBatchVerifier& verifier() { return verifier_; }

  /// Verdict bookkeeping for deferred sessions (shard-thread owned; read
  /// from other threads only after the shard stops).
  struct Record {
    bool completed = false;  ///< verdict landed
    bool accepted = false;
    core::Cycle settled = 0;
  };
  const std::unordered_map<std::uint64_t, Record>& records() const {
    return records_;
  }

  ShardStats stats() const;

 private:
  void open_from_ingress(const IngressItem& item);
  void record_verdict(std::uint64_t id, bool accepted);

  std::size_t index_;
  ShardFleetConfig config_;
  const ecc::Curve* curve_;
  SessionFactory factory_;
  core::EventQueue queue_;
  std::unique_ptr<GatewayServer> gateway_;
  SchnorrBatchVerifier verifier_;
  core::MpscRing<IngressItem> mailbox_;
  Transport* transport_ = nullptr;
  std::unordered_map<std::uint64_t, Peer> peers_;
  std::unordered_map<std::uint64_t, Record> records_;

  // Relaxed atomics: single writer (shard thread) except mailbox_shed_
  // (producers); readers tolerate tearing-free point-in-time values.
  std::atomic<std::uint64_t> ingress_{0};
  std::atomic<std::uint64_t> mailbox_shed_{0};
  std::atomic<std::uint64_t> opened_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> verifier_flushes_{0};
  std::atomic<std::uint64_t> ticks_{0};
};

/// The shard collective: owns N ShardEngines and (in socket mode) one
/// real-time event-loop thread per shard.
class ShardFleet {
 public:
  /// `producers` = number of distinct threads that will call offer()
  /// (each gets its own wait-free mailbox lane in every shard).
  ShardFleet(const ecc::Curve& curve, const ShardFleetConfig& config,
             SessionFactory factory, std::size_t producers);
  ~ShardFleet();

  std::size_t shards() const { return engines_.size(); }
  ShardEngine& shard(std::size_t i) { return *engines_[i]; }
  std::size_t shard_index(std::uint64_t session) const {
    return shard_of(session, engines_.size());
  }

  /// Producer path: route to the owning shard's mailbox. False = shed.
  bool offer(std::size_t lane, IngressItem&& item);

  /// Socket mode: start one real-time loop thread per shard (ticks at
  /// config.cycles_per_us against the wall clock, sleeping briefly when
  /// idle). `transport` receives every downlink; must outlive stop().
  void start(Transport& transport);
  /// Signal the loops to finish draining and join them. Loops exit once
  /// told to stop AND their shard is quiescent (or `force` is set).
  void stop(bool force = false);
  bool running() const { return !threads_.empty(); }

  /// Sum of per-shard stats.
  ShardStats totals() const;

 private:
  ShardFleetConfig config_;
  std::vector<std::unique_ptr<ShardEngine>> engines_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> force_stop_{false};
};

// --- deterministic sharded campaign ------------------------------------------

struct ShardedCampaignConfig {
  /// The PR 6 campaign knobs — seeds, fault profiles, deadlines. Its
  /// sessions_per_shard/threads fields are ignored here; partitioning is
  /// by shard_of(gid, shards) instead of contiguous ranges.
  ChaosCampaignConfig chaos;
  std::size_t shards = 4;
  /// Per-shard deferred-Schnorr batch size.
  std::size_t verify_batch = 64;
  /// Run shard worlds on one thread each (true) or serially (false) —
  /// bit-identical either way.
  bool parallel = true;
};

struct ShardedCampaignResult {
  ChaosCampaignResult chaos;     ///< same digest semantics as PR 6
  BatchVerifierStats verifier;   ///< summed across shards
  std::size_t shards = 0;
};

/// The PR 6 chaos campaign over the sharded engine: sessions hash-
/// partitioned across `shards` deterministic worlds, gid%4==0 Schnorr
/// verdicts deferred through per-shard batch verifiers. Digest is
/// bit-identical to run_chaos_campaign(config.chaos) at any shard count.
ShardedCampaignResult run_sharded_campaign(
    const ShardedCampaignConfig& config);

}  // namespace medsec::engine
