#include "engine/shard.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "core/thread_pool.h"
#include "engine/campaign_fixtures.h"
#include "protocol/schnorr.h"

namespace medsec::engine {

using campaign::mix_seed;

// --- ShardEngine -------------------------------------------------------------

ShardEngine::ShardEngine(std::size_t index, const ShardFleetConfig& config,
                         const ecc::Curve& curve, SessionFactory factory,
                         std::size_t producers)
    : index_(index),
      config_(config),
      curve_(&curve),
      factory_(std::move(factory)),
      gateway_(std::make_unique<GatewayServer>(
          queue_, mix_seed(config.seed, 0x6A7E + index), config.gateway)),
      verifier_(curve, config.verify_batch == 0 ? 1 : config.verify_batch,
                mix_seed(config.seed, 0xB47C + index)),
      mailbox_(producers, config.mailbox_capacity) {}

bool ShardEngine::offer(std::size_t lane, IngressItem&& item) {
  // try_push moves only on success, so a shed item is still intact for the
  // caller's reject reply.
  if (mailbox_.try_push(lane, std::move(item))) return true;
  mailbox_shed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::size_t ShardEngine::drain_mailbox(std::size_t limit) {
  return mailbox_.drain(
      [this](IngressItem&& item) {
        ingress_.fetch_add(1, std::memory_order_relaxed);
        // Track the latest return address before any reply can fire: the
        // open path may emit a kReject downlink synchronously.
        if (item.peer.valid()) peers_[item.session] = item.peer;
        if (!gateway_->has_session(item.session)) open_from_ingress(item);
        gateway_->on_uplink(item.session, std::move(item.bytes));
      },
      limit);
}

void ShardEngine::record_verdict(std::uint64_t id, bool accepted) {
  Record& r = records_[id];
  r.completed = true;
  r.accepted = accepted;
  r.settled = queue_.now();
  completed_.fetch_add(1, std::memory_order_relaxed);
  (accepted ? accepted_ : rejected_)
      .fetch_add(1, std::memory_order_relaxed);
}

void ShardEngine::open_from_ingress(const IngressItem& item) {
  const std::uint64_t id = item.session;
  SessionSetup setup = factory_(id);
  if (!setup.machine) return;  // factory refused the id; datagram dropped

  GatewayServer::Downlink down = [this, id](std::vector<std::uint8_t> bytes) {
    if (transport_ == nullptr) return;
    const auto p = peers_.find(id);
    if (p != peers_.end())
      transport_->send_downlink(id, p->second, std::move(bytes));
  };

  GatewayServer::Judge judge;
  if (setup.deferred_schnorr) {
    // The machine finished the exchange without verifying; hand its wire
    // transcript to this shard's batch queue. The verdict lands via the
    // callback — possibly in this very call when the batch fills.
    judge = [this, id](const protocol::SessionMachine& m) {
      const auto& sv = static_cast<const protocol::SchnorrVerifier&>(m);
      PendingTranscript t;
      t.session = id;
      t.X = sv.public_key();
      t.commitment_wire = sv.commitment_wire();
      t.challenge = sv.challenge();
      t.response = sv.response();
      t.on_result = [this, id](bool ok) { record_verdict(id, ok); };
      verifier_.enqueue(std::move(t));
      return false;  // gateway's inline verdict is a placeholder
    };
  } else {
    judge = [this, id, inner = std::move(setup.judge)](
                const protocol::SessionMachine& m) {
      const bool ok = inner ? inner(m) : true;
      record_verdict(id, ok);
      return ok;
    };
  }

  if (gateway_->open_session(id, std::move(setup.machine), std::move(down),
                             std::move(judge), std::move(setup.rng)))
    opened_.fetch_add(1, std::memory_order_relaxed);
  else
    rejected_.fetch_add(1, std::memory_order_relaxed);
}

void ShardEngine::flush_verifier() {
  if (verifier_.pending() == 0) return;
  verifier_.flush();
  verifier_flushes_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ShardEngine::tick(core::Cycle virtual_now) {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t drained = drain_mailbox(config_.drain_chunk);
  advance_to(std::max(virtual_now, queue_.now()));
  flush_verifier();
  return drained;
}

ShardStats ShardEngine::stats() const {
  ShardStats s;
  s.ingress = ingress_.load(std::memory_order_relaxed);
  s.mailbox_shed = mailbox_shed_.load(std::memory_order_relaxed);
  s.opened = opened_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.verifier_flushes = verifier_flushes_.load(std::memory_order_relaxed);
  s.ticks = ticks_.load(std::memory_order_relaxed);
  return s;
}

// --- ShardFleet --------------------------------------------------------------

ShardFleet::ShardFleet(const ecc::Curve& curve,
                       const ShardFleetConfig& config,
                       SessionFactory factory, std::size_t producers)
    : config_(config) {
  const std::size_t n = config.shards == 0 ? 1 : config.shards;
  engines_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    engines_.push_back(std::make_unique<ShardEngine>(i, config_, curve,
                                                     factory, producers));
}

ShardFleet::~ShardFleet() {
  if (running()) stop(/*force=*/true);
}

bool ShardFleet::offer(std::size_t lane, IngressItem&& item) {
  return engines_[shard_index(item.session)]->offer(lane, std::move(item));
}

void ShardFleet::start(Transport& transport) {
  if (running()) return;
  stop_.store(false, std::memory_order_release);
  force_stop_.store(false, std::memory_order_release);
  for (auto& e : engines_) e->set_transport(&transport);
  threads_.reserve(engines_.size());
  for (auto& e : engines_) {
    ShardEngine* eng = e.get();
    threads_.emplace_back([this, eng] {
      const auto t0 = std::chrono::steady_clock::now();
      while (true) {
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        const auto vnow = static_cast<core::Cycle>(
            static_cast<double>(us) * config_.cycles_per_us);
        const std::size_t drained = eng->tick(vnow);
        if (stop_.load(std::memory_order_acquire) &&
            (force_stop_.load(std::memory_order_acquire) ||
             eng->quiescent()))
          break;
        // Idle tick: nothing arrived. Sleep briefly instead of spinning —
        // retransmit timers are paced in tens of milliseconds, so a 50µs
        // nap costs nothing.
        if (drained == 0)
          std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
}

void ShardFleet::stop(bool force) {
  if (!running()) return;
  force_stop_.store(force, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  stop_.store(false, std::memory_order_release);
  force_stop_.store(false, std::memory_order_release);
}

ShardStats ShardFleet::totals() const {
  ShardStats sum;
  for (const auto& e : engines_) {
    const ShardStats s = e->stats();
    sum.ingress += s.ingress;
    sum.mailbox_shed += s.mailbox_shed;
    sum.opened += s.opened;
    sum.completed += s.completed;
    sum.accepted += s.accepted;
    sum.rejected += s.rejected;
    sum.verifier_flushes += s.verifier_flushes;
    sum.ticks += s.ticks;
  }
  return sum;
}

// --- deterministic sharded campaign ------------------------------------------

namespace {

using campaign::Fixtures;
using campaign::SessionOutcome;

struct WorldResult {
  std::vector<SessionOutcome> outcomes;
  GatewayStats gateway;
  LinkStats link;
  std::uint64_t retransmits = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t frames_sent = 0;
  BatchVerifierStats verifier;
};

/// One shard's virtual world: the PR 6 run_shard construction verbatim
/// (per-gid seeds, failover drill, outcome extraction), except that the
/// session list is an arbitrary gid set (hash partition, not a contiguous
/// range) and gid%4==0 Schnorr verdicts are deferred through a per-shard
/// SchnorrBatchVerifier instead of the inline judge. Deferred mode emits
/// identical wire traffic and consumes identical rng (the challenge draw),
/// and the batch verifier is verdict-equivalent (honest transcripts always
/// pass; a failing batch falls back per item), so every per-session
/// outcome — and therefore the campaign digest — is bit-identical to the
/// inline path.
WorldResult run_world(const ChaosCampaignConfig& cfg, const Fixtures& fx,
                      const std::vector<std::uint64_t>& gids,
                      std::size_t verify_batch) {
  const std::size_t count = gids.size();
  core::EventQueue q;
  GatewayConfig gcfg;
  gcfg.delivery = cfg.delivery;
  gcfg.session_deadline = cfg.session_deadline;
  gcfg.idle_timeout = cfg.idle_timeout;

  // Declared before the gateway: judge lambdas stored in gateway sessions
  // capture these by reference, and enqueued callbacks outlive a failover.
  SchnorrBatchVerifier bv(fx.curve, verify_batch,
                          mix_seed(cfg.seed, 0xB47C));
  std::map<std::uint64_t, bool> verdicts;

  auto gw = std::make_unique<GatewayServer>(q, mix_seed(cfg.seed, 0x6A7E),
                                            gcfg);

  const auto make_judge = [&bv, &verdicts](std::uint64_t gid)
      -> GatewayServer::Judge {
    if (gid % 4 != 0) return campaign::judge_for(gid);
    return [&bv, &verdicts, gid](const protocol::SessionMachine& m) {
      const auto& sv = static_cast<const protocol::SchnorrVerifier&>(m);
      PendingTranscript t;
      t.session = gid;
      t.X = sv.public_key();
      t.commitment_wire = sv.commitment_wire();
      t.challenge = sv.challenge();
      t.response = sv.response();
      t.on_result = [&verdicts, gid](bool ok) { verdicts[gid] = ok; };
      bv.enqueue(std::move(t));
      return false;  // placeholder; the outcome reads the batch verdict
    };
  };

  std::vector<std::unique_ptr<rng::Xoshiro256>> dev_rngs(count);
  std::vector<std::unique_ptr<protocol::SessionMachine>> dev_machines(count);
  std::vector<std::unique_ptr<LossyLink>> links(count);
  std::vector<std::unique_ptr<DeviceEndpoint>> devices(count);
  std::vector<campaign::MachineFactory> srv_factories(count);
  std::map<std::uint64_t, std::size_t> index;

  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t gid = gids[i];
    index[gid] = i;
    dev_rngs[i] =
        std::make_unique<rng::Xoshiro256>(mix_seed(cfg.seed, gid * 4));
    auto srv_rng =
        std::make_unique<rng::Xoshiro256>(mix_seed(cfg.seed, gid * 4 + 1));
    dev_machines[i] = campaign::device_factory(fx, gid)(*dev_rngs[i]);
    srv_factories[i] = campaign::server_factory(
        fx, gid, /*deferred_schnorr=*/gid % 4 == 0);
    auto srv_machine = srv_factories[i](*srv_rng);
    links[i] = std::make_unique<LossyLink>(
        q, mix_seed(cfg.seed, gid * 4 + 2), cfg.uplink, cfg.downlink);
    devices[i] = std::make_unique<DeviceEndpoint>(q, gid, cfg.seed,
                                                  *dev_machines[i],
                                                  cfg.delivery);
    LossyLink* link = links[i].get();
    DeviceEndpoint* dev = devices[i].get();
    dev->set_uplink([link](std::vector<std::uint8_t> bytes) {
      link->send(LossyLink::kUp, std::move(bytes));
    });
    link->set_receiver(LossyLink::kUp,
                       [&gw, gid](std::vector<std::uint8_t> bytes) {
                         if (gw) gw->on_uplink(gid, std::move(bytes));
                       });
    link->set_receiver(LossyLink::kDown,
                       [dev](std::vector<std::uint8_t> bytes) {
                         dev->on_downlink(std::move(bytes));
                       });
    gw->open_session(gid, std::move(srv_machine),
                     [link](std::vector<std::uint8_t> bytes) {
                       link->send(LossyLink::kDown, std::move(bytes));
                     },
                     make_judge(gid), std::move(srv_rng));
    dev->start();
  }

  GatewayStats pre_failover;
  if (cfg.failover_at != 0) {
    q.run_until(cfg.failover_at);
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> snaps;
    for (const std::uint64_t id : gw->session_ids())
      snaps.emplace_back(id, gw->snapshot_session(id));
    pre_failover = gw->stats();
    gw.reset();
    gw = std::make_unique<GatewayServer>(q, mix_seed(cfg.seed, 0x6A7E),
                                         gcfg);
    for (auto& [id, snap] : snaps) {
      const std::size_t i = index.at(id);
      auto srv_rng = std::make_unique<rng::Xoshiro256>(0);  // state loaded
      auto machine = srv_factories[i](*srv_rng);
      LossyLink* link = links[i].get();
      gw->restore_session(id, std::move(machine),
                          [link](std::vector<std::uint8_t> bytes) {
                            link->send(LossyLink::kDown, std::move(bytes));
                          },
                          snap, make_judge(id), std::move(srv_rng));
    }
  }

  while (q.pending() && q.now() < cfg.max_cycles) q.run_next();
  bv.flush();  // land every still-queued deferred verdict

  WorldResult out;
  out.gateway = gw->stats();
  out.gateway.opened += pre_failover.opened;
  out.gateway.shed += pre_failover.shed;
  out.gateway.completed += pre_failover.completed;
  out.gateway.accepted += pre_failover.accepted;
  out.gateway.failed += pre_failover.failed;
  out.gateway.quarantined += pre_failover.quarantined;
  out.gateway.deadline_evicted += pre_failover.deadline_evicted;
  out.gateway.idle_evicted += pre_failover.idle_evicted;
  // Deferred judges returned the placeholder `false` at settle, so the
  // gateway never counted their accepts; fold the batch verdicts back in
  // to keep the summed stats comparable with the inline campaign.
  for (const auto& [gid, ok] : verdicts)
    if (ok) ++out.gateway.accepted;
  out.verifier = bv.stats();

  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t gid = gids[i];
    SessionOutcome o;
    o.id = gid;
    const GatewaySessionStatus st = gw->status(gid);
    const bool dev_done = devices[i]->done();
    const bool dev_failed = devices[i]->failed();
    o.completed = dev_done && st == GatewaySessionStatus::kCompleted;
    const auto v = verdicts.find(gid);
    o.accepted = o.completed && (gid % 4 == 0
                                     ? v != verdicts.end() && v->second
                                     : gw->accepted(gid));
    o.failed = !o.completed &&
               (dev_failed || st != GatewaySessionStatus::kActive);
    if (o.completed)
      o.cycle = std::max(devices[i]->done_at(), gw->settled_at(gid));
    o.retransmits = devices[i]->stats().retransmits;
    if (const DeliveryStats* ds = gw->delivery_stats(gid)) {
      o.retransmits += ds->retransmits;
      out.decode_failures += ds->decode_failures;
      out.dup_suppressed += ds->dup_suppressed;
    }
    out.decode_failures += devices[i]->stats().decode_failures;
    out.dup_suppressed += devices[i]->stats().dup_suppressed;
    out.retransmits += o.retransmits;
    for (const auto dir : {LossyLink::kUp, LossyLink::kDown}) {
      const LinkStats& ls = links[i]->stats(dir);
      out.link.sent += ls.sent;
      out.link.delivered += ls.delivered;
      out.link.dropped += ls.dropped;
      out.link.corrupted += ls.corrupted;
      out.link.duplicated += ls.duplicated;
      out.link.reordered += ls.reordered;
      out.link.corrupted_delivered += ls.corrupted_delivered;
    }
    out.frames_sent += devices[i]->stats().data_sent +
                       devices[i]->stats().acks_sent;
    out.outcomes.push_back(o);
  }
  return out;
}

}  // namespace

ShardedCampaignResult run_sharded_campaign(
    const ShardedCampaignConfig& config) {
  ShardedCampaignConfig scfg = config;
  if (scfg.shards == 0) scfg.shards = 1;
  if (scfg.verify_batch == 0) scfg.verify_batch = 1;
  const ChaosCampaignConfig& cfg = scfg.chaos;
  const Fixtures fx = campaign::make_fixtures(cfg.seed);

  std::vector<std::vector<std::uint64_t>> parts(scfg.shards);
  for (std::size_t gid = 1; gid <= cfg.sessions; ++gid)
    parts[shard_of(gid, scfg.shards)].push_back(gid);

  std::vector<WorldResult> results(scfg.shards);
  const auto work = [&](std::size_t b, std::size_t e) {
    for (std::size_t s = b; s < e; ++s)
      results[s] = run_world(cfg, fx, parts[s], scfg.verify_batch);
  };
  std::unique_ptr<core::ThreadPool> owner;
  core::ThreadPool* pool =
      scfg.parallel ? core::ThreadPool::for_config(cfg.threads, owner)
                    : nullptr;
  if (pool != nullptr && scfg.shards > 1)
    pool->parallel_for(scfg.shards, 1, work);
  else
    work(0, scfg.shards);

  ShardedCampaignResult out;
  out.shards = scfg.shards;
  ChaosCampaignResult& c = out.chaos;
  c.sessions = cfg.sessions;
  std::vector<SessionOutcome> outcomes;
  outcomes.reserve(cfg.sessions);
  for (const WorldResult& r : results) {
    c.gateway.opened += r.gateway.opened;
    c.gateway.shed += r.gateway.shed;
    c.gateway.completed += r.gateway.completed;
    c.gateway.accepted += r.gateway.accepted;
    c.gateway.failed += r.gateway.failed;
    c.gateway.quarantined += r.gateway.quarantined;
    c.gateway.deadline_evicted += r.gateway.deadline_evicted;
    c.gateway.idle_evicted += r.gateway.idle_evicted;
    c.gateway.restored += r.gateway.restored;
    c.frames_sent += r.link.sent;
    c.frames_dropped += r.link.dropped;
    c.frames_corrupted += r.link.corrupted;
    c.frames_duplicated += r.link.duplicated;
    c.frames_reordered += r.link.reordered;
    c.retransmits += r.retransmits;
    c.decode_failures += r.decode_failures;
    c.dup_suppressed += r.dup_suppressed;
    c.corrupt_accepted += r.link.corrupted_delivered;
    out.verifier.items += r.verifier.items;
    out.verifier.batches += r.verifier.batches;
    out.verifier.accepted += r.verifier.accepted;
    out.verifier.rejected += r.verifier.rejected;
    out.verifier.decode_failures += r.verifier.decode_failures;
    out.verifier.rlc_failures += r.verifier.rlc_failures;
    out.verifier.single_fallbacks += r.verifier.single_fallbacks;
    outcomes.insert(outcomes.end(), r.outcomes.begin(), r.outcomes.end());
  }
  // The hash partition scatters gids across shards; the digest folds in
  // GLOBAL session order — the same order the contiguous-range campaign
  // produces naturally — so the two are bit-comparable.
  std::sort(outcomes.begin(), outcomes.end(),
            [](const SessionOutcome& a, const SessionOutcome& b) {
              return a.id < b.id;
            });
  std::vector<core::Cycle> latencies;
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  for (const SessionOutcome& o : outcomes) {
    if (o.completed) {
      ++c.completed;
      latencies.push_back(o.cycle);
    }
    if (o.accepted) ++c.accepted;
    if (o.failed) ++c.failed;
    if (!o.completed && !o.failed) ++c.stuck;
    digest = campaign::digest_outcome(digest, o);
  }
  c.corrupt_accepted = c.corrupt_accepted > c.decode_failures
                           ? c.corrupt_accepted - c.decode_failures
                           : 0;
  c.digest = digest;
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    c.latency_p50 = latencies[latencies.size() / 2];
    c.latency_p99 = latencies[std::min(latencies.size() - 1,
                                       latencies.size() * 99 / 100)];
    c.latency_max = latencies.back();
  }
  return out;
}

}  // namespace medsec::engine
