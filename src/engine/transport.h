// transport.h — framed datagram transport with a deterministic failure
// model.
//
// The protocols are specified over an idealized reader↔tag channel; the
// fleet gateway serves them over a real one, where loss, corruption,
// reordering and duplication are the common case. This layer defines the
// unit that crosses that channel:
//
//   frame := magic(2) | type(1) | flags(1) | session(8) | seq(4) |
//            label_len(1) | label | payload_len(2) | payload | crc32(4)
//
// Every frame is CRC-protected end to end, so a corrupted frame is
// *detected and dropped* at decode — corruption downgrades to loss, and
// loss is what the delivery layer (delivery.h) already repairs with
// retransmission. A corrupt frame must never reach a session machine; the
// chaos tests assert exactly that (zero accepted-corrupt frames at 5%
// corruption).
//
// LossyLink is the in-process chaos channel: a bidirectional pipe over a
// virtual-clock EventQueue whose fault schedule (drop / corrupt / reorder /
// duplicate / delay, per direction) is derived counter-based from a seed —
// fault decision n is a pure function of (seed, direction, n), so every
// chaos run is bit-reproducible regardless of how sessions interleave.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/event_queue.h"

namespace medsec::engine {

/// IEEE 802.3 CRC-32 (reflected, init/final 0xFFFFFFFF) — the frame
/// integrity check. Not cryptographic: the MAC layers above guard against
/// adversaries; the CRC guards against the *channel*.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// protocol::Message carries its label as a `const char*` to a string
/// literal; a label that crossed the wire needs equally stable storage.
/// Interning gives every distinct label one process-lifetime address
/// (thread-safe, append-only).
const char* intern_label(std::string_view label);

enum class FrameType : std::uint8_t {
  kData = 1,    ///< one protocol message (label + payload)
  kAck = 2,     ///< cumulative ack: seq = highest in-order seq received
  kReject = 3,  ///< load-shedding verdict: session refused, do not retry
};

struct Frame {
  FrameType type = FrameType::kData;
  std::uint64_t session = 0;
  std::uint32_t seq = 0;
  const char* label = "";  ///< interned; empty for kAck/kReject
  std::vector<std::uint8_t> payload;
};

inline constexpr std::size_t kMaxFramePayload = 4096;
inline constexpr std::size_t kMaxFrameLabel = 255;

/// Thread-local free-list of frame byte buffers. Encoded frames are made
/// and destroyed once per datagram on the hot path; recycling the vectors
/// keeps their heap capacity alive so steady-state traffic allocates
/// nothing. acquire() returns an empty vector (capacity preserved from a
/// prior release); release() hands a spent buffer back. The pool is
/// per-thread — shards and front-end threads each recycle their own
/// buffers with no locking — and capped, so a burst can't pin memory.
/// Releasing is optional everywhere: an un-released buffer just frees
/// normally.
class FramePool {
 public:
  static std::vector<std::uint8_t> acquire();
  static void release(std::vector<std::uint8_t>&& buf);
  /// Buffers currently pooled on this thread (introspection for tests).
  static std::size_t pooled();
};

std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Encode into an existing buffer (cleared first), reusing its capacity —
/// the zero-allocation path for pooled buffers.
void encode_frame_into(const Frame& f, std::vector<std::uint8_t>& out);

/// Strict decode: verifies magic, type, length consistency (the encoded
/// lengths must account for every byte) and the trailing CRC. Returns
/// nullopt for anything malformed — truncation, stray bytes, bit flips.
std::optional<Frame> decode_frame(std::span<const std::uint8_t> bytes);

/// Per-direction fault rates and delay band of a LossyLink. Rates are
/// probabilities in [0, 1]; delays are virtual cycles.
struct FaultProfile {
  double drop = 0.0;       ///< frame vanishes
  double corrupt = 0.0;    ///< one byte flipped (CRC will catch it)
  double duplicate = 0.0;  ///< frame delivered twice
  double reorder = 0.0;    ///< frame held back past its successors
  core::Cycle delay_min = 8;
  core::Cycle delay_max = 32;
  bool faultless() const {
    return drop == 0 && corrupt == 0 && duplicate == 0 && reorder == 0;
  }
};

struct LinkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  /// Deliveries whose bytes were corrupted in flight (>= corrupted: a
  /// duplicated corrupt frame is delivered twice). The receiver's decode
  /// failures must account for every one of these — the chaos campaign's
  /// zero-accepted-corrupt invariant.
  std::uint64_t corrupted_delivered = 0;
};

/// An in-process bidirectional datagram channel with scheduled delivery
/// and a seeded fault model. Directions: kUp = device -> gateway,
/// kDown = gateway -> device. Not thread-safe — a link lives inside one
/// shard's virtual world (see event_queue.h).
class LossyLink {
 public:
  enum Direction { kUp = 0, kDown = 1 };
  using Receiver = std::function<void(std::vector<std::uint8_t>)>;

  /// `queue` must outlive the link. `seed` fixes the complete fault
  /// schedule of both directions.
  LossyLink(core::EventQueue& queue, std::uint64_t seed,
            const FaultProfile& up, const FaultProfile& down);

  void set_receiver(Direction dir, Receiver r) {
    receivers_[dir] = std::move(r);
  }

  /// Queue one datagram. Fault decisions are made here (counter-based);
  /// delivery happens later via the event queue.
  void send(Direction dir, std::vector<std::uint8_t> bytes);

  const LinkStats& stats(Direction dir) const { return stats_[dir]; }

 private:
  /// The n-th fault word of a direction: splitmix64 over (seed, dir, n,
  /// lane). Independent lanes keep each decision (drop? corrupt? which
  /// byte? what delay?) from aliasing another's stream.
  std::uint64_t fault_word(Direction dir, std::uint64_t n,
                           std::uint64_t lane) const;
  static double to_unit(std::uint64_t w) {
    return static_cast<double>(w >> 11) * 0x1.0p-53;
  }

  void schedule_delivery(Direction dir, std::vector<std::uint8_t> bytes,
                         core::Cycle delay, bool corrupted);

  core::EventQueue* queue_;
  std::uint64_t seed_;
  FaultProfile profile_[2];
  Receiver receivers_[2];
  std::uint64_t counter_[2] = {0, 0};
  LinkStats stats_[2];
};

}  // namespace medsec::engine
