#include "engine/fleet_server.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <utility>

#include "rng/xoshiro.h"

namespace medsec::engine {

namespace {
using protocol::Message;
using protocol::SessionMachine;
using protocol::SessionState;
using protocol::StepResult;

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t id) {
  std::uint64_t s = base ^ (0x9E3779B97F4A7C15ULL * (id + 1));
  return rng::splitmix64(s);
}

FleetConfig resolve_config(FleetConfig config) {
  if (!config.deterministic) {
    // Challenges and RLC coefficients must be unpredictable to devices:
    // fold in process entropy (see FleetConfig::deterministic).
    // seed-audit: allow(live mode deliberately folds in process entropy)
    std::random_device rd;
    config.seed ^= (static_cast<std::uint64_t>(rd()) << 32) | rd();
  }
  return config;
}
}  // namespace

/// One in-flight session: the suspended machine, its private server-side
/// randomness, and its registry record. `mu` serializes message delivery
/// and verdict finalization for this session only.
struct FleetServer::Session {
  std::mutex mu;
  SessionRecord record;
  std::unique_ptr<SessionMachine> machine;
  std::unique_ptr<rng::Xoshiro256> rng;  ///< stable address for the machine
  std::function<bool(const SessionMachine&)> judge;
  bool deferred_schnorr = false;
};

FleetServer::FleetServer(const ecc::Curve& curve, const FleetConfig& config,
                         Downlink downlink, Completion on_complete)
    : curve_(&curve),
      config_(resolve_config(config)),
      downlink_(std::move(downlink)),
      on_complete_(std::move(on_complete)),
      verifier_(curve, config_.verify_batch, mix_seed(config_.seed, 0)),
      pool_(config_.worker_threads ? config_.worker_threads : 1) {}

FleetServer::~FleetServer() = default;  // pool_ joins; queued work abandoned

std::uint32_t FleetServer::enroll(const ecc::Point& X) {
  if (!curve_->validate_subgroup_point(X))
    throw std::invalid_argument("FleetServer::enroll: invalid device key");
  const std::lock_guard<std::mutex> lock(registry_mu_);
  // Double-enroll rejection: one identity, one registry slot. A repeated
  // key is a provisioning error (or a cloning attempt) — refusing here
  // keeps "device index" and "public key" in bijection.
  for (const ecc::Point& existing : devices_)
    if (existing == X)
      throw std::invalid_argument("FleetServer::enroll: key already enrolled");
  devices_.push_back(X);
  device_unrecovered_.push_back(0);
  device_quarantined_.push_back(false);
  {
    const std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.devices = devices_.size();
  }
  return static_cast<std::uint32_t>(devices_.size() - 1);
}

ecc::Point FleetServer::device_key(std::uint32_t device) const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  return devices_.at(device);
}

std::uint64_t FleetServer::register_session(
    std::shared_ptr<Session> s,
    const std::function<void(Session&, std::uint64_t)>& init_with_id) {
  {
    // Admission control: shed-new before degrade-existing. The check and
    // the opened-count increment are one critical section so concurrent
    // opens can't both squeeze past the limit.
    const std::lock_guard<std::mutex> slock(stats_mu_);
    if (config_.max_live_sessions != 0 &&
        stats_.sessions_opened - stats_.sessions_completed >=
            config_.max_live_sessions) {
      ++stats_.sessions_shed;
      return 0;  // never a valid id — ids start at 1
    }
    ++stats_.sessions_opened;
  }
  std::uint64_t id;
  {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    id = next_id_++;
    s->record.id = id;
    if (init_with_id) init_with_id(*s, id);
    sessions_.emplace(id, std::move(s));
  }
  return id;
}

std::uint64_t FleetServer::open_schnorr_session(std::uint32_t device) {
  {
    // Quarantined devices are refused before admission control: a device
    // that keeps failing its fault recovery gets no further sessions
    // until an operator clears it (re-enrollment in this model).
    const std::lock_guard<std::mutex> lock(registry_mu_);
    if (device < device_quarantined_.size() && device_quarantined_[device]) {
      const std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.sessions_refused_quarantine;
      return 0;
    }
  }
  auto s = std::make_shared<Session>();
  s->record.device = device;
  s->deferred_schnorr = true;
  // The machine's randomness is derived from (fleet seed, session id):
  // the same worker interleaving always sees the same challenges, and
  // with the entropy-mixed seed they stay unpredictable to devices. The
  // id must exist before the rng, hence the init_with_id hook.
  return register_session(
      std::move(s), [this, device](Session& sess, std::uint64_t id) {
        sess.rng =
            std::make_unique<rng::Xoshiro256>(mix_seed(config_.seed, id));
        sess.machine = std::make_unique<protocol::SchnorrVerifier>(
            *curve_, devices_.at(device), *sess.rng,
            protocol::SchnorrVerifier::Mode::kDeferred);
      });
}

std::uint64_t FleetServer::open_session(
    std::unique_ptr<SessionMachine> machine,
    std::function<bool(const SessionMachine&)> judge) {
  auto s = std::make_shared<Session>();
  s->machine = std::move(machine);
  s->judge = std::move(judge);
  return register_session(std::move(s));
}

void FleetServer::deliver(std::uint64_t session, Message m) {
  pool_.submit([this, session, m = std::move(m)] { process(session, m); });
}

void FleetServer::report_tag_energy(std::uint64_t session,
                                    const protocol::EnergyLedger& ledger) {
  const auto s = find(session);
  if (!s) return;
  {
    const std::lock_guard<std::mutex> lock(s->mu);
    s->record.tag_ledger = ledger;
  }
  const std::lock_guard<std::mutex> slock(stats_mu_);
  stats_.fleet_tag_energy += ledger;
}

void FleetServer::report_fault_telemetry(std::uint64_t session,
                                         std::size_t detected,
                                         std::size_t retries,
                                         bool unrecovered) {
  const auto s = find(session);
  if (!s) return;
  std::uint32_t device;
  {
    const std::lock_guard<std::mutex> lock(s->mu);
    s->record.faults_detected += detected;
    s->record.fault_retries += retries;
    s->record.fault_unrecovered = s->record.fault_unrecovered || unrecovered;
    device = s->record.device;
  }
  bool newly_quarantined = false;
  if (unrecovered) {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    if (device < device_unrecovered_.size()) {
      ++device_unrecovered_[device];
      if (config_.device_fault_threshold != 0 &&
          !device_quarantined_[device] &&
          device_unrecovered_[device] >= config_.device_fault_threshold) {
        device_quarantined_[device] = true;
        newly_quarantined = true;
      }
    }
  }
  const std::lock_guard<std::mutex> slock(stats_mu_);
  stats_.faults_detected += detected;
  stats_.fault_retries += retries;
  if (unrecovered) ++stats_.faults_unrecovered;
  if (newly_quarantined) ++stats_.devices_quarantined;
}

bool FleetServer::device_quarantined(std::uint32_t device) const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  return device < device_quarantined_.size() && device_quarantined_[device];
}

std::shared_ptr<FleetServer::Session> FleetServer::find(
    std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

SessionRecord FleetServer::record(std::uint64_t session) const {
  const auto s = find(session);
  if (!s) throw std::out_of_range("FleetServer::record: unknown session");
  const std::lock_guard<std::mutex> lock(s->mu);
  return s->record;
}

FleetStats FleetServer::stats() const {
  FleetStats out;
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.verifier = verifier_.stats();
  return out;
}

void FleetServer::finalize(Session& s, bool accepted) {
  s.record.completed = true;
  s.record.accepted = accepted;
  s.record.state =
      accepted ? SessionState::kDone : SessionState::kFailed;
  // The machine and its rng are dead weight once the verdict is in; only
  // the record outlives the session (late messages are dropped on the
  // completed flag).
  s.machine.reset();
  s.rng.reset();
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sessions_completed;
    ++(accepted ? stats_.accepted : stats_.rejected);
  }
  if (on_complete_) on_complete_(s.record);
}

std::size_t FleetServer::evict_completed() {
  std::vector<std::shared_ptr<Session>> doomed;  // destroy outside the lock
  {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      // A racing finalize holds the session mutex, not the registry's, so
      // peek under the session lock.
      bool completed;
      {
        const std::lock_guard<std::mutex> slock(it->second->mu);
        completed = it->second->record.completed;
      }
      if (completed) {
        doomed.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return doomed.size();
}

void FleetServer::process(std::uint64_t id, const Message& m) {
  const auto s = find(id);
  if (!s) return;

  // Step the machine under the session lock; hand anything that must not
  // hold it (downlink, verifier enqueue) to the post-step phase.
  StepResult result;
  bool step_ran = false;
  PendingTranscript pending;
  bool enqueue_pending = false;
  {
    const std::lock_guard<std::mutex> lock(s->mu);
    ++s->record.messages_in;
    s->record.rx_bits += m.bits();
    if (!s->machine || s->machine->state() != SessionState::kAwait)
      return;  // already finished (machine freed at finalize)
    try {
      result = s->machine->on_message(m);
    } catch (const std::exception&) {
      // Poison-session quarantine: a machine that throws instead of
      // rejecting must not take the worker (and with it the process)
      // down. The session is finalized as rejected and its machine freed
      // — it is never stepped again; every other session is unaffected.
      finalize(*s, false);
      const std::lock_guard<std::mutex> qlock(stats_mu_);
      ++stats_.sessions_quarantined;
      ++stats_.messages_processed;
      return;
    }
    step_ran = true;
    s->record.state = result.state;
    for (const auto& out : result.out) s->record.tx_bits += out.bits();

    if (result.state == SessionState::kFailed) {
      finalize(*s, false);
    } else if (result.state == SessionState::kDone) {
      if (s->deferred_schnorr) {
        auto& v = static_cast<protocol::SchnorrVerifier&>(*s->machine);
        pending.session = id;
        pending.X = v.public_key();
        pending.commitment_wire = v.commitment_wire();
        pending.challenge = v.challenge();
        pending.response = v.response();
        std::weak_ptr<Session> weak = s;
        pending.on_result = [this, weak](bool accepted) {
          if (const auto held = weak.lock()) {
            const std::lock_guard<std::mutex> lock(held->mu);
            finalize(*held, accepted);
          }
        };
        enqueue_pending = true;
      } else {
        finalize(*s, s->judge ? s->judge(*s->machine) : true);
      }
    }
  }

  if (step_ran) {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.messages_processed;
  }
  // Downlink and verifier work happen outside the session lock: the
  // downlink may deliver() the next uplink message immediately, and a
  // verifier flush takes other sessions' locks in its callbacks.
  for (const auto& out : result.out)
    if (downlink_) downlink_(id, out);
  if (enqueue_pending) verifier_.enqueue(std::move(pending));
}

void FleetServer::drain() {
  for (;;) {
    pool_.wait_idle();
    if (verifier_.pending() > 0) {
      verifier_.flush();
      continue;  // callbacks ran; re-check for follow-on work
    }
    // A task that ran between wait_idle() and the pending() check may
    // have enqueued a transcript: wait out any such stragglers and only
    // return once idle and pending()==0 are observed back to back.
    pool_.wait_idle();
    if (verifier_.pending() == 0) return;
  }
}

DrainReport FleetServer::drain_for(std::chrono::milliseconds budget) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + budget;
  const auto remaining = [&] {
    const auto left = deadline - Clock::now();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
        left.count() > 0 ? left : Clock::duration::zero());
  };

  DrainReport report;
  // Same quiescence protocol as drain(), but every wait is clipped to
  // what is left of the budget — including the flush itself: a batch
  // verification is one multi-scalar multiplication over up to
  // batch_size transcripts, and running it after the deadline would blow
  // the budget the caller asked us to respect. At expiry, un-verified
  // transcripts are reported, not silently verified.
  for (;;) {
    if (!pool_.wait_idle_for(remaining())) break;
    if (verifier_.pending() > 0) {
      if (Clock::now() >= deadline) break;
      verifier_.flush();
      continue;
    }
    if (!pool_.wait_idle_for(remaining())) break;
    if (verifier_.pending() == 0) {
      report.completed = true;
      break;
    }
  }
  if (!report.completed) {
    // Sessions whose protocol finished but whose transcript still sits in
    // a verifier batch: not drained — their verdict hasn't landed. They
    // are stragglers too (their record.completed is still false), but the
    // operator needs to tell them apart: these want a flush, not an
    // eviction.
    report.verdict_pending = verifier_.pending_sessions();
    std::sort(report.verdict_pending.begin(), report.verdict_pending.end());
    report.verdict_pending.erase(std::unique(report.verdict_pending.begin(),
                                             report.verdict_pending.end()),
                                 report.verdict_pending.end());
    // The straggler report: every session still live at expiry, in id
    // order. Lock order registry -> session matches evict_completed.
    const std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& [id, s] : sessions_) {
      const std::lock_guard<std::mutex> slock(s->mu);
      if (!s->record.completed) report.stragglers.push_back(id);
    }
    // A verdict-pending session is by definition not drained, even in
    // the narrow window where its callback is about to run: the report
    // must never claim a session whose verdict is still in flight.
    for (const std::uint64_t id : report.verdict_pending)
      report.stragglers.push_back(id);
    std::sort(report.stragglers.begin(), report.stragglers.end());
    report.stragglers.erase(
        std::unique(report.stragglers.begin(), report.stragglers.end()),
        report.stragglers.end());
  }
  return report;
}

}  // namespace medsec::engine
