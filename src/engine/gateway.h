// gateway.h — the resilient serving layer: protocol sessions over a lossy
// channel, with graceful degradation and mid-protocol failover.
//
// Composition of the three layers below it:
//
//   protocol machines      what to say        (session.h)
//   delivery.h             say it until heard (ARQ windows, backoff)
//   transport.h            framing + faults   (CRC, LossyLink)
//
// A GatewayServer owns the server half of many sessions inside ONE shard's
// virtual world (one EventQueue, single-threaded). Its resilience policies:
//
//   * admission control — at max_live_sessions, new sessions are REFUSED
//     with an explicit kReject verdict (shed-new before degrade-existing);
//   * per-session deadlines and idle eviction on the virtual clock;
//   * poison-session quarantine — a machine that throws out of on_message
//     is isolated (session rejected, machine never stepped again) instead
//     of taking the process down;
//   * snapshot/restore — any session can be serialized mid-protocol and
//     resumed on a fresh GatewayServer, surviving node death with nothing
//     but a retransmit visible to the device.
//
// run_chaos_campaign() is the proof harness: a sharded fleet of device ↔
// gateway sessions over seeded LossyLinks, bit-reproducible across reruns
// and thread counts (fixed shard geometry, results merged in shard order —
// the PR 3 determinism contract).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/event_queue.h"
#include "engine/delivery.h"
#include "engine/transport.h"
#include "protocol/session.h"
#include "rng/xoshiro.h"

namespace medsec::engine {

struct GatewayConfig {
  DeliveryConfig delivery;
  /// 0 = unlimited; otherwise open_session() refuses new sessions while
  /// this many are live (load shedding, the reject-new policy).
  std::size_t max_live_sessions = 0;
  /// 0 = none; a session still live this many cycles after opening is
  /// evicted as failed.
  core::Cycle session_deadline = 0;
  /// 0 = none; a session with no uplink activity for this many cycles is
  /// evicted as failed.
  core::Cycle idle_timeout = 0;
};

enum class GatewaySessionStatus : std::uint8_t {
  kActive = 0,
  kCompleted = 1,       ///< machine reached kDone; `accepted` holds verdict
  kFailed = 2,          ///< machine reached kFailed, or delivery gave up
  kQuarantined = 3,     ///< machine threw; isolated, never stepped again
  kDeadlineEvicted = 4,
  kIdleEvicted = 5,
};

struct GatewayStats {
  std::uint64_t opened = 0;
  std::uint64_t shed = 0;  ///< refused at admission
  std::uint64_t completed = 0;
  std::uint64_t accepted = 0;
  std::uint64_t failed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t deadline_evicted = 0;
  std::uint64_t idle_evicted = 0;
  std::uint64_t restored = 0;  ///< sessions resumed from a snapshot
  // Device-reported fault telemetry, summed over sessions (see
  // report_fault_telemetry).
  std::uint64_t faults_detected = 0;
  std::uint64_t fault_retries = 0;
  std::uint64_t faults_unrecovered = 0;
};

/// One session's device-reported fault counters (carried through
/// snapshots, so failover does not launder a faulty device's history).
struct GatewayFaultTelemetry {
  std::uint64_t detected = 0;
  std::uint64_t retries = 0;
  bool unrecovered = false;
};

class GatewayServer {
 public:
  /// Extracts the verdict from a finished machine; empty = kDone is
  /// accepted.
  using Judge = std::function<bool(const protocol::SessionMachine&)>;
  /// Raw encoded frames headed for this session's device.
  using Downlink = std::function<void(std::vector<std::uint8_t>)>;

  GatewayServer(core::EventQueue& queue, std::uint64_t seed,
                const GatewayConfig& config = {});
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  /// Admit one session (server-side responder machine). Returns false —
  /// and emits one kReject frame on `downlink` — when admission control
  /// refuses it. `rng` (optional) is the machine's private randomness,
  /// kept alive and included in snapshots.
  bool open_session(std::uint64_t id,
                    std::unique_ptr<protocol::SessionMachine> machine,
                    Downlink downlink, Judge judge = {},
                    std::unique_ptr<rng::Xoshiro256> rng = nullptr);

  /// Feed raw bytes that arrived from a device. Unknown ids are dropped.
  void on_uplink(std::uint64_t id, std::vector<std::uint8_t> raw);

  bool has_session(std::uint64_t id) const {
    return sessions_.count(id) != 0;
  }
  GatewaySessionStatus status(std::uint64_t id) const;
  bool accepted(std::uint64_t id) const;
  /// Virtual cycle at which the session left kActive (0 if still active).
  core::Cycle settled_at(std::uint64_t id) const;
  std::size_t live_sessions() const;
  const DeliveryStats* delivery_stats(std::uint64_t id) const;

  /// Record the device's fault-recovery counters for this session (the
  /// front-end relays what the device's processor reported — see
  /// core::PointMultOutcome). Unknown ids are dropped, matching uplink
  /// semantics. The counters ride the session snapshot, so a failover
  /// target inherits the device's fault history.
  void report_fault_telemetry(std::uint64_t id, std::uint64_t detected,
                              std::uint64_t retries, bool unrecovered);
  /// This session's accumulated fault telemetry (zeros for unknown ids).
  GatewayFaultTelemetry fault_telemetry(std::uint64_t id) const;
  const GatewayStats& stats() const { return stats_; }
  std::vector<std::uint64_t> session_ids() const;

  /// Serialize one session — status, verdict, machine state, delivery
  /// state, rng state — for failover. Works on settled sessions too (their
  /// delivery layer may still owe the device retransmits).
  std::vector<std::uint8_t> snapshot_session(std::uint64_t id) const;

  /// Resurrect a snapshot onto this server. `machine` must be freshly
  /// constructed with the same constructor arguments as the original;
  /// `rng` likewise (its state is overwritten from the snapshot). Throws
  /// protocol::SnapshotError on malformed input.
  void restore_session(std::uint64_t id,
                       std::unique_ptr<protocol::SessionMachine> machine,
                       Downlink downlink, std::span<const std::uint8_t> snap,
                       Judge judge = {},
                       std::unique_ptr<rng::Xoshiro256> rng = nullptr);

 private:
  struct Sess {
    std::unique_ptr<protocol::SessionMachine> machine;
    std::unique_ptr<ReliableEndpoint> endpoint;
    std::unique_ptr<rng::Xoshiro256> rng;
    Judge judge;
    GatewaySessionStatus status = GatewaySessionStatus::kActive;
    bool accepted = false;
    GatewayFaultTelemetry faults;
    core::Cycle settled_at = 0;
    core::Cycle last_activity = 0;
    core::EventId deadline_timer = core::kInvalidEvent;
    core::EventId idle_timer = core::kInvalidEvent;
  };

  void wire_endpoint(std::uint64_t id, Sess& s, Downlink downlink);
  void on_delivered(std::uint64_t id, const Frame& f);
  void settle(Sess& s, GatewaySessionStatus status,
              bool accepted);
  void arm_policy_timers(std::uint64_t id, Sess& s);
  void idle_check(std::uint64_t id);

  core::EventQueue* queue_;
  std::uint64_t seed_;
  GatewayConfig config_;
  /// std::map: session sweeps (failover, stats) iterate in id order —
  /// part of the determinism contract.
  std::map<std::uint64_t, Sess> sessions_;
  GatewayStats stats_;
};

/// Device half of one gateway session: the initiator machine plus its
/// reliable endpoint. The campaign owns the machine; the endpoint routes
/// its messages through the link.
class DeviceEndpoint {
 public:
  DeviceEndpoint(core::EventQueue& queue, std::uint64_t id,
                 std::uint64_t seed, protocol::SessionMachine& machine,
                 const DeliveryConfig& config = {});

  void set_uplink(ReliableEndpoint::FrameSink sink) {
    endpoint_.set_frame_sink(std::move(sink));
  }

  /// Pump the machine's opening move(s) into the channel.
  void start();
  void on_downlink(std::vector<std::uint8_t> raw);

  bool done() const {
    return machine_->state() == protocol::SessionState::kDone;
  }
  bool failed() const {
    return failed_ ||
           machine_->state() == protocol::SessionState::kFailed;
  }
  /// Virtual cycle the machine reached kDone (0 until then).
  core::Cycle done_at() const { return done_at_; }
  const DeliveryStats& stats() const { return endpoint_.stats(); }
  ReliableEndpoint& endpoint() { return endpoint_; }

 private:
  void on_delivered(const Frame& f);
  void pump(protocol::StepResult r);

  core::EventQueue* queue_;
  protocol::SessionMachine* machine_;
  ReliableEndpoint endpoint_;
  bool failed_ = false;
  core::Cycle done_at_ = 0;
};

// --- chaos campaign ----------------------------------------------------------

struct ChaosCampaignConfig {
  std::size_t sessions = 256;
  /// Fixed shard geometry — the determinism contract. Results are merged
  /// in shard order, so output is bit-identical for any thread count.
  std::size_t sessions_per_shard = 64;
  /// parallel_for fan-out: 0 = shared pool, 1 = serial, n = n runners.
  std::size_t threads = 0;
  std::uint64_t seed = 0xC4A05CA7;
  FaultProfile uplink;
  FaultProfile downlink;
  DeliveryConfig delivery;
  core::Cycle session_deadline = 0;
  core::Cycle idle_timeout = 0;
  /// Virtual-time safety valve per shard.
  core::Cycle max_cycles = 4'000'000;
  /// >0: at this virtual cycle each shard snapshots EVERY session, tears
  /// its GatewayServer down, and restores onto a fresh one — node death
  /// mid-protocol, the failover drill.
  core::Cycle failover_at = 0;
};

struct ChaosCampaignResult {
  std::size_t sessions = 0;
  std::size_t completed = 0;  ///< device done AND server verdict in
  std::size_t accepted = 0;
  std::size_t failed = 0;
  std::size_t stuck = 0;  ///< neither completed nor failed at shard end
  GatewayStats gateway;   ///< summed across shards
  // Channel + delivery aggregates (both directions, all sessions).
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_reordered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t dup_suppressed = 0;
  /// Frames a session machine saw whose bytes had been corrupted in
  /// flight: must be 0 — the CRC turns corruption into loss.
  std::uint64_t corrupt_accepted = 0;
  // Completion latency over completed sessions, virtual cycles.
  core::Cycle latency_p50 = 0;
  core::Cycle latency_p99 = 0;
  core::Cycle latency_max = 0;
  /// FNV-1a over every per-session outcome in session order — two runs
  /// are bit-identical iff their digests match.
  std::uint64_t digest = 0;
};

/// Run a seeded chaos campaign: `sessions` device↔gateway sessions (mixed
/// Schnorr / Peeters–Hermans / mutual-auth / ECIES), each over its own
/// seeded LossyLink, sharded into independent virtual worlds.
ChaosCampaignResult run_chaos_campaign(const ChaosCampaignConfig& config);

}  // namespace medsec::engine
