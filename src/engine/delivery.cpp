#include "engine/delivery.h"

#include <algorithm>
#include <utility>

#include "protocol/snapshot.h"
#include "rng/xoshiro.h"

namespace medsec::engine {

ReliableEndpoint::ReliableEndpoint(core::EventQueue& queue,
                                   std::uint64_t session, std::uint64_t seed,
                                   const DeliveryConfig& config)
    : queue_(&queue), session_(session), seed_(seed), config_(config) {}

ReliableEndpoint::~ReliableEndpoint() {
  for (auto& [seq, f] : in_flight_) queue_->cancel(f.timer);
}

core::Cycle ReliableEndpoint::rto_for(std::uint32_t seq,
                                      std::uint32_t retries) const {
  double rto = static_cast<double>(config_.rto_initial);
  for (std::uint32_t i = 0; i < retries; ++i) {
    rto *= config_.backoff;
    if (rto >= static_cast<double>(config_.rto_max)) break;
  }
  auto cycles = static_cast<core::Cycle>(
      std::min(rto, static_cast<double>(config_.rto_max)));
  // Seeded jitter in [0, rto/4): desynchronizes retransmit storms without
  // breaking determinism — the jitter is a pure function of
  // (seed, session, seq, retries).
  std::uint64_t s = seed_ ^ (session_ * 0x9E3779B97F4A7C15ULL) ^
                    (static_cast<std::uint64_t>(seq) << 32) ^ retries;
  const std::uint64_t w = rng::splitmix64(s);
  return cycles + (cycles >= 4 ? w % (cycles / 4) : 0);
}

void ReliableEndpoint::send_message(const char* label,
                                    std::vector<std::uint8_t> payload) {
  if (failed_) return;
  Frame f;
  f.type = FrameType::kData;
  f.session = session_;
  f.seq = next_seq_++;
  f.label = label ? label : "";
  f.payload = std::move(payload);
  std::vector<std::uint8_t> bytes = encode_frame(f);
  if (in_flight_.size() < config_.window) {
    in_flight_[f.seq] = InFlight{std::move(bytes), 0, core::kInvalidEvent};
    transmit(f.seq);
  } else {
    backlog_.push_back(std::move(bytes));
  }
}

void ReliableEndpoint::send_reject() {
  Frame f;
  f.type = FrameType::kReject;
  f.session = session_;
  f.seq = recv_next_;
  if (frame_sink_) frame_sink_(encode_frame(f));
}

void ReliableEndpoint::transmit(std::uint32_t seq) {
  auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;
  if (it->second.retries == 0)
    ++stats_.data_sent;
  else
    ++stats_.retransmits;
  if (frame_sink_) {
    // The stored frame must survive for retransmission, so the sink gets
    // a copy — made into a pooled buffer, so steady-state (re)transmits
    // allocate nothing.
    std::vector<std::uint8_t> wire = FramePool::acquire();
    wire.assign(it->second.bytes.begin(), it->second.bytes.end());
    frame_sink_(std::move(wire));
  }
  arm_timer(seq);
}

void ReliableEndpoint::arm_timer(std::uint32_t seq) {
  auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;
  queue_->cancel(it->second.timer);
  it->second.timer = queue_->schedule(rto_for(seq, it->second.retries),
                                      [this, seq] { on_timer(seq); });
}

void ReliableEndpoint::on_timer(std::uint32_t seq) {
  auto it = in_flight_.find(seq);
  if (it == in_flight_.end() || failed_) return;  // acked meanwhile
  it->second.timer = core::kInvalidEvent;
  if (++it->second.retries > config_.max_retries) {
    fail();
    return;
  }
  transmit(seq);
}

void ReliableEndpoint::fail() {
  if (failed_) return;
  failed_ = true;
  for (auto& [seq, f] : in_flight_) queue_->cancel(f.timer);
  in_flight_.clear();
  backlog_.clear();
  if (failure_sink_) failure_sink_();
}

void ReliableEndpoint::handle_ack(std::uint32_t next_expected) {
  // Cumulative: everything below `next_expected` has been received.
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->first < next_expected) {
      queue_->cancel(it->second.timer);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  // Window space freed — promote backlog frames (their seq is baked into
  // the encoded bytes; decode to recover it for the timer map).
  while (!backlog_.empty() && in_flight_.size() < config_.window) {
    std::vector<std::uint8_t> bytes = std::move(backlog_.front());
    backlog_.pop_front();
    const auto f = decode_frame(bytes);
    if (!f) continue;  // unreachable: we encoded these ourselves
    in_flight_[f->seq] = InFlight{std::move(bytes), 0, core::kInvalidEvent};
    transmit(f->seq);
  }
}

void ReliableEndpoint::send_ack() {
  Frame ack;
  ack.type = FrameType::kAck;
  ack.session = session_;
  ack.seq = recv_next_;
  ++stats_.acks_sent;
  if (frame_sink_) frame_sink_(encode_frame(ack));
}

void ReliableEndpoint::handle_data(Frame f) {
  if (f.seq < recv_next_ || reorder_.count(f.seq)) {
    // Already have it — our ack was lost, not the data. Re-ack.
    ++stats_.dup_suppressed;
    send_ack();
    return;
  }
  reorder_.emplace(f.seq, std::move(f));
  // Drain the in-order prefix.
  for (auto it = reorder_.begin();
       it != reorder_.end() && it->first == recv_next_;
       it = reorder_.erase(it), ++recv_next_) {
    ++stats_.delivered;
    if (message_sink_) message_sink_(it->second);
    if (failed_) return;  // sink declared the session dead mid-drain
  }
  send_ack();
}

void ReliableEndpoint::on_bytes(std::vector<std::uint8_t> raw) {
  if (failed_) return;
  auto f = decode_frame(raw);
  // decode_frame copies what it needs; the wire buffer is spent either
  // way and goes back to the pool.
  FramePool::release(std::move(raw));
  if (!f) {
    ++stats_.decode_failures;  // corruption already downgraded to loss
    return;
  }
  if (f->session != session_) return;  // misrouted
  switch (f->type) {
    case FrameType::kData:
      handle_data(std::move(*f));
      break;
    case FrameType::kAck:
      handle_ack(f->seq);
      break;
    case FrameType::kReject:
      fail();
      break;
  }
}

void ReliableEndpoint::snapshot(protocol::SnapshotWriter& w) const {
  w.u32(next_seq_);
  w.u32(recv_next_);
  w.boolean(failed_);
  // The counters travel too: they are session accounting, and the chaos
  // invariant (corrupted deliveries == decode failures) must keep summing
  // across a failover.
  w.u64(stats_.data_sent);
  w.u64(stats_.retransmits);
  w.u64(stats_.acks_sent);
  w.u64(stats_.delivered);
  w.u64(stats_.dup_suppressed);
  w.u64(stats_.decode_failures);
  w.u32(static_cast<std::uint32_t>(in_flight_.size()));
  for (const auto& [seq, f] : in_flight_) {
    w.u32(seq);
    w.u32(f.retries);
    w.bytes(f.bytes);
  }
  w.u32(static_cast<std::uint32_t>(backlog_.size()));
  for (const auto& b : backlog_) w.bytes(b);
  w.u32(static_cast<std::uint32_t>(reorder_.size()));
  for (const auto& [seq, f] : reorder_) w.bytes(encode_frame(f));
}

void ReliableEndpoint::restore(protocol::SnapshotReader& r) {
  for (auto& [seq, f] : in_flight_) queue_->cancel(f.timer);
  in_flight_.clear();
  backlog_.clear();
  reorder_.clear();

  next_seq_ = r.u32();
  recv_next_ = r.u32();
  failed_ = r.boolean();
  stats_.data_sent = r.u64();
  stats_.retransmits = r.u64();
  stats_.acks_sent = r.u64();
  stats_.delivered = r.u64();
  stats_.dup_suppressed = r.u64();
  stats_.decode_failures = r.u64();
  const std::uint32_t n_flight = r.u32();
  for (std::uint32_t i = 0; i < n_flight; ++i) {
    const std::uint32_t seq = r.u32();
    InFlight f;
    f.retries = r.u32();
    f.bytes = r.bytes();
    in_flight_.emplace(seq, std::move(f));
  }
  const std::uint32_t n_backlog = r.u32();
  for (std::uint32_t i = 0; i < n_backlog; ++i) backlog_.push_back(r.bytes());
  const std::uint32_t n_reorder = r.u32();
  for (std::uint32_t i = 0; i < n_reorder; ++i) {
    auto f = decode_frame(r.bytes());
    if (!f) throw protocol::SnapshotError("delivery: bad buffered frame");
    reorder_.emplace(f->seq, std::move(*f));
  }
  // Timer handles are process state, not session state: re-arm every
  // in-flight frame from its recorded retry count.
  if (!failed_)
    for (auto& [seq, f] : in_flight_) arm_timer(seq);
}

}  // namespace medsec::engine
