#include "engine/fault_drill.h"

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ciphers/aes128.h"
#include "core/thread_pool.h"
#include "ecc/scalar_mult.h"
#include "hw/fault_injector.h"
#include "protocol/ecies.h"
#include "protocol/mutual_auth.h"
#include "protocol/peeters_hermans.h"
#include "protocol/schnorr.h"
#include "rng/xoshiro.h"
#include "sidechannel/countermeasures.h"

namespace medsec::engine {

namespace {

// Derivation lanes on the injector's counter space. Lanes 0–5 belong to
// the injector itself (rate draw + fault coordinates); the drill's own
// draws start at 8 so a config change never reshuffles the faults.
constexpr std::uint64_t kLaneScalar = 8;
constexpr std::uint64_t kLaneDevRng = 9;
constexpr std::uint64_t kLaneSrvRng = 10;
constexpr std::uint64_t kLaneFixtures = 12;  // counter 0
constexpr std::uint64_t kLaneProbe = 13;     // counter 0

/// The protocol mix's shared, read-only credentials (the chaos campaign's
/// fixture set, rebuilt here from the drill seed).
struct Fixtures {
  const ecc::Curve& curve;
  protocol::SchnorrKeyPair schnorr_key;
  protocol::PhReader ph_reader;
  protocol::PhTag ph_tag;
  protocol::SharedKeys keys;
  protocol::CipherFactory make_cipher;
  protocol::EciesKeyPair ecies_key;
  std::vector<std::uint8_t> telemetry;
};

Fixtures make_fixtures(const ecc::Curve& curve, std::uint64_t seed) {
  rng::Xoshiro256 rng(seed);
  Fixtures fx{curve,
              protocol::schnorr_keygen(curve, rng),
              protocol::ph_setup_reader(curve, rng),
              {},
              {},
              [](std::span<const std::uint8_t> key) {
                return std::unique_ptr<ciphers::BlockCipher>(
                    new ciphers::Aes128(key));
              },
              {},
              {}};
  fx.ph_tag = protocol::ph_register_tag(curve, fx.ph_reader, rng);
  std::vector<std::uint8_t> master(32);
  rng.fill(master);
  fx.keys = protocol::derive_session_keys(master, 16);
  fx.ecies_key = protocol::ecies_keygen(curve, rng);
  fx.telemetry.resize(48);
  rng.fill(fx.telemetry);
  return fx;
}

std::unique_ptr<protocol::SessionMachine> device_machine(
    const Fixtures& fx, std::uint64_t gid, rng::RandomSource& r) {
  switch (gid % 4) {
    case 0:
      return std::make_unique<protocol::SchnorrProver>(fx.curve,
                                                       fx.schnorr_key, r);
    case 1:
      return std::make_unique<protocol::PhTagMachine>(fx.curve, fx.ph_tag,
                                                      r);
    case 2:
      return std::make_unique<protocol::MutualAuthTag>(fx.make_cipher,
                                                       fx.keys,
                                                       fx.telemetry, r);
    default:
      return std::make_unique<protocol::EciesUploader>(
          fx.curve, fx.ecies_key.Y, fx.telemetry, fx.make_cipher, 16, r);
  }
}

std::unique_ptr<protocol::SessionMachine> server_machine(
    const Fixtures& fx, std::uint64_t gid, rng::RandomSource& r) {
  switch (gid % 4) {
    case 0:
      return std::make_unique<protocol::SchnorrVerifier>(
          fx.curve, fx.schnorr_key.X, r);
    case 1:
      return std::make_unique<protocol::PhReaderMachine>(fx.curve,
                                                         fx.ph_reader, r);
    case 2:
      return std::make_unique<protocol::MutualAuthServer>(fx.make_cipher,
                                                          fx.keys, r);
    default:
      return std::make_unique<protocol::EciesReceiver>(
          fx.curve, fx.ecies_key.y, fx.make_cipher, 16);
  }
}

bool judge(std::uint64_t gid, const protocol::SessionMachine& m) {
  switch (gid % 4) {
    case 0:
      return static_cast<const protocol::SchnorrVerifier&>(m).accepted();
    case 1:
      return static_cast<const protocol::PhReaderMachine&>(m)
          .identity()
          .has_value();
    case 2: {
      const auto& s = static_cast<const protocol::MutualAuthServer&>(m);
      return s.accepted_tag() && s.telemetry_delivered();
    }
    default:
      return static_cast<const protocol::EciesReceiver&>(m).delivered();
  }
}

/// In-process message pump: alternate deliveries until both machines
/// settle. A healthy handshake here is a handful of messages; the step
/// bound only guards against a (nonexistent) ping-pong bug.
bool run_handshake(protocol::SessionMachine& dev,
                   protocol::SessionMachine& srv, std::uint64_t gid) {
  std::deque<protocol::Message> to_srv;
  std::deque<protocol::Message> to_dev;
  const auto queue_out = [](protocol::StepResult r,
                            std::deque<protocol::Message>& q) {
    for (auto& m : r.out) q.push_back(std::move(m));
  };
  try {
    queue_out(dev.start(), to_srv);
    for (int steps = 0;
         steps < 64 && (!to_srv.empty() || !to_dev.empty()); ++steps) {
      if (!to_srv.empty()) {
        const protocol::Message m = std::move(to_srv.front());
        to_srv.pop_front();
        if (srv.state() == protocol::SessionState::kAwait)
          queue_out(srv.on_message(m), to_dev);
      } else {
        const protocol::Message m = std::move(to_dev.front());
        to_dev.pop_front();
        if (dev.state() == protocol::SessionState::kAwait)
          queue_out(dev.on_message(m), to_srv);
      }
    }
  } catch (const std::exception&) {
    return false;
  }
  return dev.state() == protocol::SessionState::kDone &&
         srv.state() == protocol::SessionState::kDone && judge(gid, srv);
}

/// One session's record, written by exactly one shard, merged in gid
/// order.
struct Entry {
  DrillOutcome outcome = DrillOutcome::kRefused;
  std::uint32_t faults = 0;
  std::uint32_t retries = 0;
  bool armed = false;
  bool released = false;
  bool faulty = false;  ///< released but != referee k·P (must never happen)
  bool proto_ran = false;
  bool accepted = false;
  ecc::Fe x;  ///< released x-coordinate
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

core::CountermeasureConfig fault_drill_processor_config() {
  core::CountermeasureConfig c;  // the shipped chip (RPC on)
  c.ladder.validate_points = true;
  c.ladder.coherence_check = true;
  c.record_cycles = false;  // fielded profile: outcomes, not traces
  return c;
}

FaultDrillResult run_fault_drill(const ecc::Curve& curve,
                                 const FaultDrillConfig& config) {
  FaultDrillConfig cfg = config;
  if (cfg.devices == 0) cfg.devices = 1;
  const hw::FaultInjector injector(cfg.seed, cfg.fault_rate);
  const core::SecureEccProcessor proc(curve, cfg.processor, cfg.seed);
  const Fixtures fx = make_fixtures(curve, injector.word(0, kLaneFixtures));

  // Calibrate the fault shape from one clean probe run: the injector
  // scales glitch coordinates to what the hardened schedule actually
  // executes. Deterministic — the schedule length is a compile-time
  // function of the countermeasure set.
  hw::FaultShape shape;
  {
    const std::size_t iters =
        sidechannel::hardened_trace_length(curve, cfg.processor.ladder);
    shape.select_slots = iters;
    shape.instructions = iters * 15;
    core::SecureEccProcessor::Session probe = proc.open_session(0);
    rng::Xoshiro256 pr(injector.word(0, kLaneProbe));
    shape.cycles =
        probe.point_mult(pr.uniform_nonzero(curve.order()),
                         curve.base_point())
            .cycles;
  }

  std::vector<Entry> entries(cfg.sessions);
  std::vector<std::uint8_t> quarantined(cfg.devices, 0);

  // Shard by device: device d owns sessions gid ≡ d (mod devices), walked
  // in gid order, so its damage/quarantine state evolves identically for
  // any thread count. Shards touch disjoint entries_ indices — no locks.
  const auto work = [&](std::size_t dev_begin, std::size_t dev_end) {
    for (std::size_t device = dev_begin; device < dev_end; ++device) {
      std::optional<hw::FaultSpec> permanent;  // stuck-at = lasting damage
      std::size_t unrecovered = 0;
      bool quar = false;
      for (std::uint64_t gid = device; gid < cfg.sessions;
           gid += cfg.devices) {
        Entry& en = entries[static_cast<std::size_t>(gid)];
        if (quar) {
          en.outcome = DrillOutcome::kRefused;
          continue;
        }
        rng::Xoshiro256 krng(injector.word(gid, kLaneScalar));
        const ecc::Scalar k = krng.uniform_nonzero(curve.order());
        core::SecureEccProcessor::Session sess = proc.open_session(gid + 1);

        std::optional<hw::FaultSpec> armed;
        if (permanent) {
          armed = *permanent;
        } else if (injector.should_fault(gid)) {
          armed = injector.draw(gid, shape);
          // A stuck-at is physical damage, not a glitch: it stays with
          // the device and re-arms on every later operation.
          if (armed->kind == hw::FaultKind::kStuckAt) permanent = *armed;
        }
        if (armed) {
          sess.arm_fault(*armed);
          en.armed = true;
        }

        bool released = false;
        core::PointMultOutcome out;
        try {
          out = sess.point_mult(k, curve.base_point());
          released = true;
        } catch (const std::logic_error&) {
          // Budget exhausted: budget+1 attempts, all detected, nothing
          // released.
          en.outcome = DrillOutcome::kUnrecovered;
          en.faults = static_cast<std::uint32_t>(
              cfg.processor.fault_retry_budget + 1);
          en.retries =
              static_cast<std::uint32_t>(cfg.processor.fault_retry_budget);
          ++unrecovered;
          if (cfg.device_fault_threshold != 0 &&
              unrecovered >= cfg.device_fault_threshold)
            quar = true;
        }

        if (released) {
          en.faults = static_cast<std::uint32_t>(out.faults_detected);
          en.retries = static_cast<std::uint32_t>(out.retries);
          en.released = true;
          en.x = out.result.x;
          en.outcome = out.faults_detected != 0 ? DrillOutcome::kRecovered
                                                : DrillOutcome::kClean;
          // The referee: a released result must BE k·P, recovered or not.
          const ecc::Point ref =
              ecc::scalar_mult(curve, k, curve.base_point());
          if (!(out.result == ref)) en.faulty = true;

          // The protocol layer runs only on released (verified-clean)
          // results — a device that suppressed its point mult never
          // reaches the handshake.
          rng::Xoshiro256 dr(injector.word(gid, kLaneDevRng));
          rng::Xoshiro256 sr(injector.word(gid, kLaneSrvRng));
          const auto dev = device_machine(fx, gid, dr);
          const auto srv = server_machine(fx, gid, sr);
          en.proto_ran = true;
          en.accepted = run_handshake(*dev, *srv, gid);
        }
      }
      quarantined[device] = quar ? 1 : 0;
    }
  };

  std::unique_ptr<core::ThreadPool> owner;
  core::ThreadPool* pool = core::ThreadPool::for_config(cfg.threads, owner);
  if (pool != nullptr && cfg.devices > 1)
    pool->parallel_for(cfg.devices, 1, work);
  else
    work(0, cfg.devices);

  // Merge in session order — the determinism contract.
  FaultDrillResult out;
  out.sessions = cfg.sessions;
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  for (std::uint64_t gid = 0; gid < cfg.sessions; ++gid) {
    const Entry& en = entries[static_cast<std::size_t>(gid)];
    switch (en.outcome) {
      case DrillOutcome::kClean: ++out.clean; break;
      case DrillOutcome::kRecovered: ++out.recovered; break;
      case DrillOutcome::kUnrecovered: ++out.unrecovered; break;
      case DrillOutcome::kRefused: ++out.refused; break;
    }
    if (en.armed) ++out.faults_injected;
    out.faults_detected += en.faults;
    out.retries += en.retries;
    if (en.faulty) ++out.faulty_released;
    if (en.proto_ran) {
      if (en.accepted) ++out.protocol_accepted;
      else ++out.protocol_failed;
    }
    digest = fnv1a(digest, gid);
    digest = fnv1a(digest,
                   static_cast<std::uint64_t>(en.outcome) |
                       (static_cast<std::uint64_t>(en.faults) << 8) |
                       (static_cast<std::uint64_t>(en.retries) << 24) |
                       (en.accepted ? 1ULL << 40 : 0) |
                       (en.faulty ? 1ULL << 41 : 0));
    if (en.released)
      for (std::size_t i = 0; i < ecc::Fe::kLimbs; ++i)
        digest = fnv1a(digest, en.x.limb(i));
  }
  for (std::size_t d = 0; d < cfg.devices; ++d)
    if (quarantined[d] != 0) ++out.devices_quarantined;
  out.digest = digest;
  return out;
}

}  // namespace medsec::engine
