#include "engine/net.h"

#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

namespace medsec::engine {

namespace {

constexpr std::uint8_t kMagic0 = 0x4D;
constexpr std::uint8_t kMagic1 = 0x46;
/// Largest possible encoded frame: header(16) + label_len(1) + label +
/// payload_len(2) + payload + crc(4).
constexpr std::size_t kMaxDatagram =
    16 + 1 + kMaxFrameLabel + 2 + kMaxFramePayload + 4;
/// Readiness-loop wakeup period — the stop flag is polled at this rate.
constexpr int kWaitMs = 20;

sockaddr_in to_sockaddr(const Peer& peer) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_addr.s_addr = htonl(peer.ip);
  a.sin_port = htons(peer.port);
  return a;
}

}  // namespace

std::optional<std::uint64_t> peek_frame_session(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 16 || bytes[0] != kMagic0 || bytes[1] != kMagic1)
    return std::nullopt;
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i)
    id |= static_cast<std::uint64_t>(bytes[4 + static_cast<std::size_t>(i)])
          << (8 * i);
  return id;
}

// --- UdpSocket ---------------------------------------------------------------

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("UdpSocket: socket() failed");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  // A 100k-session load test bursts far past the default socket buffer;
  // ask for room (the kernel clamps to its own ceiling, best-effort).
  const int buf = 4 * 1024 * 1024;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("UdpSocket: bind() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpSocket::send_to(const Peer& peer,
                        std::span<const std::uint8_t> bytes) {
  const sockaddr_in a = to_sockaddr(peer);
  const ssize_t n =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&a), sizeof(a));
  return n == static_cast<ssize_t>(bytes.size());
}

bool UdpSocket::recv_from(std::vector<std::uint8_t>& out, Peer& peer) {
  out.resize(kMaxDatagram);
  sockaddr_in a{};
  socklen_t len = sizeof(a);
  const ssize_t n = ::recvfrom(fd_, out.data(), out.size(), 0,
                               reinterpret_cast<sockaddr*>(&a), &len);
  if (n < 0) {
    out.clear();
    return false;  // EAGAIN or a transient error: nothing ready
  }
  out.resize(static_cast<std::size_t>(n));
  peer.ip = ntohl(a.sin_addr.s_addr);
  peer.port = ntohs(a.sin_port);
  return true;
}

// --- UdpFrontEnd -------------------------------------------------------------

UdpFrontEnd::UdpFrontEnd(ShardFleet& fleet, std::uint16_t port)
    : fleet_(&fleet), socket_(port) {}

UdpFrontEnd::~UdpFrontEnd() { stop(); }

void UdpFrontEnd::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void UdpFrontEnd::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
}

void UdpFrontEnd::send_downlink(std::uint64_t /*session*/, const Peer& peer,
                                std::vector<std::uint8_t> bytes) {
  if (socket_.send_to(peer, bytes))
    datagrams_out_.fetch_add(1, std::memory_order_relaxed);
  else
    send_failures_.fetch_add(1, std::memory_order_relaxed);
  // The encode path drew from the pool; recycle on this (shard) thread.
  FramePool::release(std::move(bytes));
}

void UdpFrontEnd::shed_reject(std::uint64_t session, const Peer& peer) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  Frame reject;
  reject.type = FrameType::kReject;
  reject.session = session;
  std::vector<std::uint8_t> bytes = encode_frame(reject);
  socket_.send_to(peer, bytes);
  FramePool::release(std::move(bytes));
}

void UdpFrontEnd::drain_socket() {
  // Drain to EAGAIN: epoll is level-triggered here but one pass per
  // wakeup costs a syscall per datagram anyway — loop until dry.
  for (;;) {
    std::vector<std::uint8_t> bytes = FramePool::acquire();
    Peer peer;
    if (!socket_.recv_from(bytes, peer)) {
      FramePool::release(std::move(bytes));
      return;
    }
    datagrams_in_.fetch_add(1, std::memory_order_relaxed);
    const std::optional<std::uint64_t> session = peek_frame_session(bytes);
    if (!session) {
      // Not even a frame header: drop silently. (A frame with a valid
      // header but mangled body reaches the shard, whose CRC rejects it
      // — that path must stay identical to the deterministic stack's.)
      not_a_frame_.fetch_add(1, std::memory_order_relaxed);
      FramePool::release(std::move(bytes));
      continue;
    }
    IngressItem item;
    item.session = *session;
    item.peer = peer;
    item.bytes = std::move(bytes);
    if (!fleet_->offer(/*lane=*/0, std::move(item))) {
      // Mailbox full: explicit backpressure. offer() does not consume on
      // failure, but the reply needs only the id and return address.
      shed_reject(*session, peer);
      FramePool::release(std::move(item.bytes));
    }
  }
}

void UdpFrontEnd::loop() {
#ifdef __linux__
  const int ep = ::epoll_create1(0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = socket_.fd();
  ::epoll_ctl(ep, EPOLL_CTL_ADD, socket_.fd(), &ev);
  while (!stop_.load(std::memory_order_acquire)) {
    epoll_event out{};
    const int n = ::epoll_wait(ep, &out, 1, kWaitMs);
    if (n > 0) drain_socket();
  }
  ::close(ep);
#else
  pollfd pfd{socket_.fd(), POLLIN, 0};
  while (!stop_.load(std::memory_order_acquire)) {
    pfd.revents = 0;
    const int n = ::poll(&pfd, 1, kWaitMs);
    if (n > 0 && (pfd.revents & POLLIN)) drain_socket();
  }
#endif
  // Final sweep: datagrams that raced the stop flag still get routed.
  drain_socket();
}

UdpFrontEndStats UdpFrontEnd::stats() const {
  UdpFrontEndStats s;
  s.datagrams_in = datagrams_in_.load(std::memory_order_relaxed);
  s.datagrams_out = datagrams_out_.load(std::memory_order_relaxed);
  s.not_a_frame = not_a_frame_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.send_failures = send_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace medsec::engine
