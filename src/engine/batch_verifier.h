// batch_verifier.h — amortized verification for fleets of Schnorr sessions.
//
// A mini-server fronting thousands of implanted tags spends its cycles on
// two things per session: decoding/validating the commitment point and
// evaluating the verifier equation. Both amortize:
//
//   * decode_points_batch decompresses a whole batch of X9.62-compressed
//     points with ONE shared field inversion (Gf163::batch_inv over the
//     x^2 denominators of z^2 + z = x + a + b/x^2) instead of one
//     Itoh–Tsujii inversion per point;
//
//   * schnorr_verify_batch checks n transcripts with ONE interleaved
//     multi-scalar multiplication via a random linear combination: draw
//     random nonzero 64-bit coefficients c_i and test
//
//         (sum_i c_i s_i)·P  −  sum_i c_i·R_i  −  sum_i (c_i e_i)·X_i  =  O.
//
//     Honest transcripts always pass. A batch containing a forgery passes
//     with probability 2^-64 per draw (the c_i are chosen after the
//     transcripts are fixed); a failing batch falls back to per-item
//     verification to isolate the offenders, so a rejected session can
//     never hide behind its batch, and an honest session can never be
//     rejected because of one.
//
// SchnorrBatchVerifier is the thread-safe queue the FleetServer drains:
// sessions enqueue their (still wire-encoded) transcripts plus a
// completion callback; the queue flushes at batch_size.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "ecc/curve.h"
#include "protocol/schnorr.h"
#include "rng/random_source.h"
#include "rng/xoshiro.h"

namespace medsec::engine {

/// Batch point decoding: each entry is one X9.62-compressed wire encoding
/// (1 prefix byte + 21 bytes of x, as produced by protocol::encode_point).
/// Returns, per entry, the validated affine point or nullopt — exactly the
/// accept/reject behavior of protocol::decode_point, but with the
/// decompression inversions shared across the batch.
std::vector<std::optional<ecc::Point>> decode_points_batch(
    const ecc::Curve& curve,
    const std::vector<std::vector<std::uint8_t>>& encoded);

struct BatchVerifyOutcome {
  std::vector<bool> ok;      ///< one accept bit per input transcript
  bool rlc_passed = true;    ///< false: the combined equation failed and
                             ///< every item was re-checked individually
};

/// Random-linear-combination batch verification of decoded transcripts
/// (commitments already validated). `rng` supplies the 64-bit combination
/// coefficients.
BatchVerifyOutcome schnorr_verify_batch(
    const ecc::Curve& curve,
    std::span<const protocol::SchnorrTranscript> transcripts,
    std::span<const ecc::Point> keys, rng::RandomSource& rng);

/// One Schnorr transcript awaiting verification, still in wire form.
struct PendingTranscript {
  /// Owning session id — lets drain accounting name the sessions whose
  /// verdicts are still in flight (0 = anonymous).
  std::uint64_t session = 0;
  ecc::Point X;                               ///< registered device key
  std::vector<std::uint8_t> commitment_wire;  ///< compressed R_c
  ecc::Scalar challenge;
  ecc::Scalar response;
  std::function<void(bool accepted)> on_result;
};

struct BatchVerifierStats {
  std::size_t items = 0;
  std::size_t batches = 0;           ///< flushes that reached the verifier
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t decode_failures = 0;   ///< commitments that failed decoding
  std::size_t rlc_failures = 0;      ///< batches that fell back to singles
  std::size_t single_fallbacks = 0;  ///< per-item checks run by fallbacks
};

/// Thread-safe batched verifier queue. batch_size == 1 degenerates to
/// independent per-session verification (the baseline the fleet bench
/// compares against).
class SchnorrBatchVerifier {
 public:
  SchnorrBatchVerifier(const ecc::Curve& curve, std::size_t batch_size,
                       std::uint64_t rlc_seed = 0xBA7C5EED);

  /// Enqueue one transcript; flushes synchronously on the calling thread
  /// when the queue reaches batch_size. Callbacks run on whichever thread
  /// flushes — never with internal locks held, so they may re-enter the
  /// verifier or take session locks.
  void enqueue(PendingTranscript t);

  /// Verify everything still pending (e.g. at drain time).
  void flush();

  /// Transcripts without a verdict yet: queued PLUS mid-verification on
  /// some thread. A session is only "drained" once this excludes it.
  std::size_t pending() const;
  /// Session ids of every verdict-pending transcript (queued or mid-
  /// verification), unsorted; the drain straggler report's verifier half.
  std::vector<std::uint64_t> pending_sessions() const;
  BatchVerifierStats stats() const;

 private:
  void verify_batch(std::vector<PendingTranscript> batch);

  const ecc::Curve* curve_;
  std::size_t batch_size_;
  mutable std::mutex mu_;          ///< guards queue_, in_verify_, stats_
  std::vector<PendingTranscript> queue_;
  /// Session ids of batches moved out of queue_ and currently inside
  /// verify_batch — still verdict-pending, no longer "queued".
  std::vector<std::uint64_t> in_verify_;
  BatchVerifierStats stats_;
  std::mutex rng_mu_;              ///< guards rng_
  rng::Xoshiro256 rng_;
};

}  // namespace medsec::engine
