// fault_drill.h — the end-to-end fault campaign: a fleet of hardened
// devices under a seeded glitch adversary, proving graceful degradation.
//
// The eval matrix (sidechannel/eval.h) scores fault attacks against a
// single victim; this drill asks the systems question instead: when a
// fleet of devices is being glitched at a fixed rate mid-deployment, does
// anything FAULTY ever leave a device? The contract under test:
//
//   * every released point multiplication equals the referee's k·P
//     (faulty_released == 0 — the drill's headline claim);
//   * transient glitches recover transparently (detect → zeroize →
//     re-randomize blinds → retry under the bounded budget);
//   * persistent damage (a stuck-at that re-arms on every subsequent
//     operation) exhausts the budget, releases NOTHING, and the operator
//     quarantines the device after `device_fault_threshold` such
//     failures — later sessions for it are refused at open;
//   * the protocol layer only ever runs on released (hence verified-
//     clean) results, so the handshake mix (Schnorr / Peeters–Hermans /
//     mutual-auth / ECIES, session gid runs protocol gid % 4) stays
//     sound under fire.
//
// Determinism is the LossyLink/chaos-campaign contract: every decision —
// whether a session is glitched, which fault lands, every scalar and
// protocol nonce — is counter-derived from the seed via the
// hw::FaultInjector's derivation lanes. Work is sharded by DEVICE (each
// device's state evolves in session order inside one shard), and
// per-session outcomes are merged in session order, so the digest is
// bit-identical for any thread count and any field-arithmetic backend.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/secure_processor.h"
#include "ecc/curve.h"

namespace medsec::engine {

/// The drill's device profile: the paper's shipped chip with every fault
/// detector armed — entry point validation, cycle coherence, and the
/// always-on recovery canary — and per-cycle telemetry off (the fielded
/// configuration; the drill reads outcomes, not traces).
core::CountermeasureConfig fault_drill_processor_config();

struct FaultDrillConfig {
  std::size_t sessions = 1024;
  std::size_t devices = 32;  ///< session gid belongs to device gid % devices
  /// Probability that a session's point multiplication is glitched.
  double fault_rate = 0.05;
  std::uint64_t seed = 0xFA017D21;
  /// parallel_for fan-out over devices: 0 = shared pool, 1 = serial.
  std::size_t threads = 0;
  /// Unrecovered faults a device may accumulate before the operator
  /// quarantines it (0 disables quarantine).
  std::size_t device_fault_threshold = 2;
  core::CountermeasureConfig processor = fault_drill_processor_config();
};

enum class DrillOutcome : std::uint8_t {
  kClean = 0,        ///< released, no detector tripped
  kRecovered = 1,    ///< released after >=1 detected fault and retry
  kUnrecovered = 2,  ///< retry budget exhausted; nothing released
  kRefused = 3,      ///< device already quarantined; session never opened
};

struct FaultDrillResult {
  std::size_t sessions = 0;
  std::size_t clean = 0;
  std::size_t recovered = 0;
  std::size_t unrecovered = 0;
  std::size_t refused = 0;
  std::uint64_t faults_injected = 0;  ///< armed specs, permanent re-arms included
  std::uint64_t faults_detected = 0;  ///< detector trips, all attempts
  std::uint64_t retries = 0;          ///< recovery re-executions
  /// Released results that differ from the referee's k·P. The drill's
  /// whole claim is that this is 0 — a detected fault suppresses release,
  /// and an undetected fault never survives the recovery canary.
  std::size_t faulty_released = 0;
  std::size_t devices_quarantined = 0;
  std::size_t protocol_accepted = 0;  ///< handshakes run on released results
  std::size_t protocol_failed = 0;
  /// FNV-1a over every per-session outcome (code, fault counters,
  /// released x, protocol verdict) in session order.
  std::uint64_t digest = 0;
};

/// Run the seeded fault campaign. Deterministic: same curve + config ⇒
/// identical result (digest included) for any thread count.
FaultDrillResult run_fault_drill(const ecc::Curve& curve,
                                 const FaultDrillConfig& config);

}  // namespace medsec::engine
