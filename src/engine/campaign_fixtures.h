// campaign_fixtures.h — the chaos campaign's deterministic world-building
// kit, shared between the PR 6 single-queue campaign (gateway.cpp) and the
// sharded engine's hash-partitioned campaign (shard.cpp).
//
// The determinism contract both campaigns rely on: every per-session
// object (device machine, server machine, link fault schedule, delivery
// jitter) is seeded by a pure function of (campaign seed, global session
// id). That makes a session's outcome independent of which shard hosts it
// and which sessions it shares an EventQueue with — the property the
// shard-count-invariance suite pins. Anything here that changes seed
// derivation, the protocol mix, or the outcome digest breaks bit-identity
// with recorded PR 6 digests; change with intent.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ecc/curve.h"
#include "engine/gateway.h"
#include "protocol/ecies.h"
#include "protocol/mutual_auth.h"
#include "protocol/peeters_hermans.h"
#include "protocol/schnorr.h"
#include "rng/xoshiro.h"

namespace medsec::engine::campaign {

/// The shared per-entity seed derivation (splitmix64 over a golden-ratio
/// mix). Used with fixed role offsets: gid*4 = device rng, gid*4+1 =
/// server rng, gid*4+2 = link schedule; 0x6A7E = gateway, 0xF177 =
/// fixtures.
inline std::uint64_t mix_seed(std::uint64_t base, std::uint64_t n) {
  std::uint64_t s = base ^ (0x9E3779B97F4A7C15ULL * (n + 1));
  return rng::splitmix64(s);
}

/// FNV-1a over little-endian u64s — the campaign outcome digest.
inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Everything shared, read-only, across shards: curve, fleet credentials,
/// cipher factory. Built once per campaign from the seed.
struct Fixtures {
  const ecc::Curve& curve;
  protocol::SchnorrKeyPair schnorr_key;
  protocol::PhReader ph_reader;
  protocol::PhTag ph_tag;
  protocol::SharedKeys keys;
  protocol::CipherFactory make_cipher;
  protocol::EciesKeyPair ecies_key;
  std::vector<std::uint8_t> telemetry;
};

Fixtures make_fixtures(std::uint64_t seed);

using MachineFactory =
    std::function<std::unique_ptr<protocol::SessionMachine>(
        rng::RandomSource&)>;

/// The protocol mix: session gid runs protocol gid % 4
/// (Schnorr / Peeters–Hermans / mutual auth / ECIES).
MachineFactory device_factory(const Fixtures& fx, std::uint64_t gid);

/// Server-side responder for gid's protocol. `deferred_schnorr` builds
/// the gid%4==0 SchnorrVerifier in Mode::kDeferred — same wire traffic
/// and rng consumption, but the verdict comes from a batch verifier
/// instead of an inline check (the sharded engine's path).
MachineFactory server_factory(const Fixtures& fx, std::uint64_t gid,
                              bool deferred_schnorr = false);

/// Verdict extraction for gid's protocol (inline machines only; deferred
/// Schnorr verdicts come from the batch queue).
GatewayServer::Judge judge_for(std::uint64_t gid);

/// One session's campaign outcome — the digest unit.
struct SessionOutcome {
  std::uint64_t id = 0;
  bool completed = false;
  bool accepted = false;
  bool failed = false;
  core::Cycle cycle = 0;
  std::uint64_t retransmits = 0;
};

/// Fold one outcome into the running campaign digest (FNV-1a, session
/// order). Both campaigns must fold identically or bit-identity dies.
inline std::uint64_t digest_outcome(std::uint64_t digest,
                                    const SessionOutcome& o) {
  digest = fnv1a(digest, o.id);
  digest = fnv1a(digest, (o.completed ? 1u : 0u) | (o.accepted ? 2u : 0u) |
                             (o.failed ? 4u : 0u));
  digest = fnv1a(digest, o.cycle);
  digest = fnv1a(digest, o.retransmits);
  return digest;
}

}  // namespace medsec::engine::campaign
