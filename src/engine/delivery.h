// delivery.h — reliable, in-order message delivery over a lossy framed
// transport.
//
// transport.h turns corruption into loss; this layer repairs loss. One
// ReliableEndpoint sits on each side of a LossyLink and gives the protocol
// machines the channel they were specified over: every message arrives
// exactly once, in order, or the endpoint declares the session failed.
//
// Mechanics (classic ARQ, sized for a 3–5 message protocol exchange):
//   - sender: bounded in-flight window; each unacked frame carries a
//     retransmit timer on the shard's virtual-clock EventQueue with
//     exponential backoff and seeded jitter; frames beyond the window wait
//     in a backlog.
//   - receiver: cumulative acks (`ack.seq` = next expected sequence);
//     out-of-order frames are buffered, stale ones suppressed and re-acked
//     (the ack, not the data, was lost).
//
// The invariant the chaos tests lean on: retransmission happens HERE, on
// stored encoded frames — a protocol machine is stepped exactly once per
// unique message no matter how many times the channel mangled it. That is
// why ledgers and transcripts at 20% loss are bit-identical to the
// faultless run.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "core/event_queue.h"
#include "engine/transport.h"

namespace medsec::protocol {
class SnapshotWriter;
class SnapshotReader;
}  // namespace medsec::protocol

namespace medsec::engine {

struct DeliveryConfig {
  std::size_t window = 4;          ///< max unacked data frames in flight
  core::Cycle rto_initial = 64;    ///< first retransmit timeout
  core::Cycle rto_max = 4096;      ///< backoff ceiling
  double backoff = 2.0;            ///< RTO multiplier per retry
  std::uint32_t max_retries = 24;  ///< then the endpoint gives up
};

struct DeliveryStats {
  std::uint64_t data_sent = 0;        ///< first transmissions
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t delivered = 0;        ///< unique in-order messages surfaced
  std::uint64_t dup_suppressed = 0;   ///< stale/duplicate data frames
  std::uint64_t decode_failures = 0;  ///< frames the CRC/codec rejected
};

/// One side of a reliable session channel. Not thread-safe: lives inside
/// one shard's virtual world, driven by its EventQueue.
class ReliableEndpoint {
 public:
  /// Raw encoded frames headed for the channel.
  using FrameSink = std::function<void(std::vector<std::uint8_t>)>;
  /// Unique in-order kData frames, surfaced exactly once each.
  using MessageSink = std::function<void(const Frame&)>;
  /// Terminal failure: retry budget exhausted, or the peer sent kReject.
  using FailureSink = std::function<void()>;

  ReliableEndpoint(core::EventQueue& queue, std::uint64_t session,
                   std::uint64_t seed, const DeliveryConfig& config = {});
  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  void set_frame_sink(FrameSink s) { frame_sink_ = std::move(s); }
  void set_message_sink(MessageSink s) { message_sink_ = std::move(s); }
  void set_failure_sink(FailureSink s) { failure_sink_ = std::move(s); }

  /// Queue one protocol message for reliable delivery (assigns the next
  /// sequence number; transmits now if the window has room).
  void send_message(const char* label, std::vector<std::uint8_t> payload);

  /// Declare the session refused — emits one (unreliable) kReject frame.
  void send_reject();

  /// Feed raw bytes that came off the channel.
  void on_bytes(std::vector<std::uint8_t> raw);

  /// No frames in flight, none backlogged.
  bool idle() const { return in_flight_.empty() && backlog_.empty(); }
  bool failed() const { return failed_; }
  std::uint64_t session() const { return session_; }
  const DeliveryStats& stats() const { return stats_; }

  /// Failover support: serialize sender/receiver sequence state and every
  /// pending frame. restore() re-arms fresh retransmit timers (timer
  /// handles are process state, not session state).
  void snapshot(protocol::SnapshotWriter& w) const;
  void restore(protocol::SnapshotReader& r);

 private:
  struct InFlight {
    std::vector<std::uint8_t> bytes;  ///< encoded frame, retransmitted as-is
    std::uint32_t retries = 0;
    core::EventId timer = core::kInvalidEvent;
  };

  void transmit(std::uint32_t seq);
  void arm_timer(std::uint32_t seq);
  void on_timer(std::uint32_t seq);
  void handle_ack(std::uint32_t next_expected);
  void handle_data(Frame f);
  void send_ack();
  void fail();
  core::Cycle rto_for(std::uint32_t seq, std::uint32_t retries) const;

  core::EventQueue* queue_;
  std::uint64_t session_;
  std::uint64_t seed_;
  DeliveryConfig config_;

  FrameSink frame_sink_;
  MessageSink message_sink_;
  FailureSink failure_sink_;

  // Sender half.
  std::uint32_t next_seq_ = 0;               ///< next sequence to assign
  std::map<std::uint32_t, InFlight> in_flight_;
  std::deque<std::vector<std::uint8_t>> backlog_;  ///< encoded, pre-window

  // Receiver half.
  std::uint32_t recv_next_ = 0;              ///< all seq < this delivered
  std::map<std::uint32_t, Frame> reorder_;   ///< buffered out-of-order

  bool failed_ = false;
  DeliveryStats stats_;
};

}  // namespace medsec::engine
