// fleet_server.h — a multi-device session engine over the protocol state
// machines.
//
// The deployment story of the paper is one mini-server talking to many
// implanted tags. This engine is that server: a registry of enrolled
// device keys, a registry of in-flight sessions (each one a suspended
// protocol::SessionMachine plus telemetry), a worker thread pool that
// resumes whichever session a radio message arrives for, and a shared
// SchnorrBatchVerifier that amortizes the expensive part — transcript
// verification — across sessions with one multi-scalar multiplication per
// batch.
//
// Data flow:
//
//   radio front-end           FleetServer                       engine
//   ───────────────  deliver() ──> work queue ──> worker pool
//                                                  │ resume machine
//   downlink(msg) <────────────────────────────────┤ on_message()
//                                                  │ session done?
//                                                  └──> batch verifier ──┐
//   session record (registry) <── on_result(accept) ── RLC + 1 MSM  <───┘
//
// Threading contract: deliver() may be called from any thread, including
// from inside the downlink callback (a worker's context). Messages for
// the same session are serialized by a per-session mutex; the batch
// verifier runs callbacks without holding engine locks.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/thread_pool.h"
#include "ecc/curve.h"
#include "engine/batch_verifier.h"
#include "protocol/energy_ledger.h"
#include "protocol/schnorr.h"
#include "protocol/session.h"

namespace medsec::engine {

struct FleetConfig {
  std::size_t worker_threads = 2;
  /// Batch size for deferred Schnorr verification; 1 = independent
  /// per-session verification (the baseline).
  std::size_t verify_batch = 64;
  /// Base seed: per-session server randomness (challenges, RLC
  /// coefficients) is derived from it and the session id, so a fleet run
  /// is reproducible regardless of how the scheduler interleaves workers.
  std::uint64_t seed = 0x5EC0'FFEE;
  /// By default the seed is additionally mixed with process entropy at
  /// construction: predictable challenges let a keyless device forge
  /// R = s·P − e·X, and predictable RLC coefficients void the batch
  /// verifier's 2^-64 forgery bound. Set true ONLY for reproducible
  /// replay (benches, deterministic tests).
  bool deterministic = false;
  /// 0 = unlimited. Otherwise open_* refuses new sessions (returns id 0)
  /// while this many are live — the reject-new-before-degrade-existing
  /// load-shedding policy. An overloaded server that silently slows every
  /// session fails all of them; one that sheds keeps its promises to the
  /// sessions it admitted.
  std::size_t max_live_sessions = 0;
  /// Device fault quarantine: once a device has reported this many
  /// UNRECOVERED faults (its processor exhausted the retry budget and
  /// released nothing), open_schnorr_session refuses it (returns 0). A
  /// device under physical fault attack — or simply dying — must not
  /// keep consuming server sessions, and must never ship a result the
  /// server would act on. 0 disables device quarantine.
  std::size_t device_fault_threshold = 3;
};

/// Registry entry: one session's telemetry, readable after completion.
struct SessionRecord {
  std::uint64_t id = 0;
  std::uint32_t device = 0;                 ///< enrolled device index
  protocol::SessionState state = protocol::SessionState::kAwait;
  bool completed = false;                   ///< protocol + verdict finished
  bool accepted = false;                    ///< verifier verdict
  std::size_t messages_in = 0;
  std::size_t rx_bits = 0;                  ///< device -> server
  std::size_t tx_bits = 0;                  ///< server -> device
  protocol::EnergyLedger tag_ledger;        ///< attached by the front-end
  // Device-side fault telemetry (attached by the front-end, like the
  // energy ledger): what the tag's processor detected and survived while
  // serving this session.
  std::size_t faults_detected = 0;   ///< detector trips on the device
  std::size_t fault_retries = 0;     ///< successful recovery re-executions
  bool fault_unrecovered = false;    ///< retry budget exhausted, no release
};

struct FleetStats {
  std::size_t devices = 0;
  std::size_t sessions_opened = 0;
  std::size_t sessions_completed = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t messages_processed = 0;
  std::size_t sessions_shed = 0;         ///< refused at admission
  std::size_t sessions_quarantined = 0;  ///< machine threw; isolated
  // Fleet-wide fault ledger (sums of the per-session telemetry).
  std::size_t faults_detected = 0;
  std::size_t fault_retries = 0;
  std::size_t faults_unrecovered = 0;
  std::size_t devices_quarantined = 0;   ///< crossed the fault threshold
  std::size_t sessions_refused_quarantine = 0;  ///< opens against them
  BatchVerifierStats verifier;
  protocol::EnergyLedger fleet_tag_energy;  ///< sum of attached tag ledgers
};

/// Outcome of a bounded drain: whether the engine reached quiescence
/// within the deadline, and which sessions were still live when it
/// expired (the straggler report — the operator's eviction shortlist).
struct DrainReport {
  bool completed = false;
  std::vector<std::uint64_t> stragglers;
  /// Subset of stragglers whose protocol exchange finished but whose
  /// transcript was still queued (or mid-verify) in the batch verifier at
  /// expiry — they need a flush, not an eviction. Before this existed a
  /// batch-pending session could look "drained" to an operator who only
  /// compared stragglers against the sessions still exchanging messages.
  std::vector<std::uint64_t> verdict_pending;
};

class FleetServer {
 public:
  /// Server -> device messages come out through this hook, on a worker
  /// thread. It must be thread-safe; it may call deliver() re-entrantly.
  using Downlink =
      std::function<void(std::uint64_t session, const protocol::Message&)>;
  /// Hook run when a session's verdict lands (worker thread, no engine
  /// locks held beyond the session's own record lock).
  using Completion = std::function<void(const SessionRecord&)>;

  FleetServer(const ecc::Curve& curve, const FleetConfig& config,
              Downlink downlink, Completion on_complete = {});
  ~FleetServer();  // stops the workers; pending work is abandoned

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Register a device public key (validated once, here — per-session
  /// traffic never re-validates it). Returns the device index. Throws
  /// std::invalid_argument for an invalid point *and* for a key that is
  /// already enrolled (double-enroll rejection).
  std::uint32_t enroll(const ecc::Point& X);
  ecc::Point device_key(std::uint32_t device) const;

  /// Open a Schnorr identification session for an enrolled device. The
  /// verifier runs in deferred mode and the verdict comes from the batch
  /// queue (or per-session when verify_batch == 1). Returns 0 — never a
  /// valid id — when admission control sheds the session.
  std::uint64_t open_schnorr_session(std::uint32_t device);

  /// Open a session over any server-side machine (mutual auth, ECIES
  /// receive, ...). `judge` extracts the verdict from the finished
  /// machine; when empty, reaching kDone counts as accepted. Returns 0
  /// when shed.
  std::uint64_t open_session(
      std::unique_ptr<protocol::SessionMachine> machine,
      std::function<bool(const protocol::SessionMachine&)> judge = {});

  /// Queue one device -> server message; a worker resumes the session.
  void deliver(std::uint64_t session, protocol::Message m);

  /// Attach the device-side energy ledger to the session's record (the
  /// radio front-end reports it; §4's per-session accounting at fleet
  /// scale).
  void report_tag_energy(std::uint64_t session,
                         const protocol::EnergyLedger& ledger);

  /// Attach the device's fault-recovery telemetry for this session (the
  /// front-end reports what core::PointMultOutcome / the device's abort
  /// said). An unrecovered fault counts against the device's quarantine
  /// threshold; crossing it quarantines the device — subsequent
  /// open_schnorr_session calls for it return 0.
  void report_fault_telemetry(std::uint64_t session, std::size_t detected,
                              std::size_t retries, bool unrecovered);

  /// Has this device crossed config.device_fault_threshold?
  bool device_quarantined(std::uint32_t device) const;

  /// Block until every queued message is processed and every pending
  /// verification has flushed.
  void drain();

  /// drain() with a deadline: stop waiting once `budget` wall time is
  /// spent, and report the sessions still live at expiry rather than
  /// hanging the caller on one stuck session. completed == true means
  /// full quiescence (stragglers empty).
  DrainReport drain_for(std::chrono::milliseconds budget);

  /// Drop completed sessions from the registry (harvest their records
  /// first). Keeps a long-running server's memory bounded; returns how
  /// many were evicted. The finished machine and rng are already freed at
  /// completion — this reclaims the records themselves.
  std::size_t evict_completed();

  SessionRecord record(std::uint64_t session) const;
  FleetStats stats() const;

 private:
  struct Session;

  std::shared_ptr<Session> find(std::uint64_t id) const;
  /// Allocate an id, run `init_with_id` (machine construction that needs
  /// the id, e.g. id-derived rng seeding) and insert — the single
  /// registration path for every open_* flavor.
  std::uint64_t register_session(
      std::shared_ptr<Session> s,
      const std::function<void(Session&, std::uint64_t)>& init_with_id = {});
  void process(std::uint64_t id, const protocol::Message& m);
  void finalize(Session& s, bool accepted);  // session mutex held

  const ecc::Curve* curve_;
  FleetConfig config_;
  Downlink downlink_;
  Completion on_complete_;
  SchnorrBatchVerifier verifier_;

  mutable std::mutex registry_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::vector<ecc::Point> devices_;
  /// Per-device unrecovered-fault count and quarantine flag (indexed like
  /// devices_, guarded by registry_mu_).
  std::vector<std::size_t> device_unrecovered_;
  std::vector<bool> device_quarantined_;
  std::uint64_t next_id_ = 1;

  mutable std::mutex stats_mu_;
  FleetStats stats_;

  /// The worker pool (extracted to core::ThreadPool so the campaign
  /// engine shares the same substrate). Declared last: destroyed first,
  /// so no worker can touch the members above during teardown.
  core::ThreadPool pool_;
};

}  // namespace medsec::engine
