#include "engine/gateway.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ciphers/aes128.h"
#include "core/thread_pool.h"
#include "engine/campaign_fixtures.h"
#include "protocol/ecies.h"
#include "protocol/mutual_auth.h"
#include "protocol/peeters_hermans.h"
#include "protocol/schnorr.h"
#include "protocol/snapshot.h"
#include "protocol/wire.h"

namespace medsec::engine {

namespace {

using protocol::Message;
using protocol::SessionState;
using protocol::SnapshotError;
using protocol::SnapshotReader;
using protocol::SnapshotWriter;
using protocol::StepResult;

constexpr std::uint32_t kSessionSnapshotMagic = 0x47534E31;  // "GSN1"

using campaign::mix_seed;

}  // namespace

// --- GatewayServer -----------------------------------------------------------

GatewayServer::GatewayServer(core::EventQueue& queue, std::uint64_t seed,
                             const GatewayConfig& config)
    : queue_(&queue), seed_(seed), config_(config) {}

GatewayServer::~GatewayServer() {
  // Endpoint destructors cancel their own retransmit timers; the policy
  // timers capture `this` and must die with it.
  for (auto& [id, s] : sessions_) {
    queue_->cancel(s.deadline_timer);
    queue_->cancel(s.idle_timer);
  }
}

std::size_t GatewayServer::live_sessions() const {
  std::size_t n = 0;
  for (const auto& [id, s] : sessions_)
    if (s.status == GatewaySessionStatus::kActive) ++n;
  return n;
}

bool GatewayServer::open_session(
    std::uint64_t id, std::unique_ptr<protocol::SessionMachine> machine,
    Downlink downlink, Judge judge, std::unique_ptr<rng::Xoshiro256> rng) {
  if (sessions_.count(id))
    throw std::invalid_argument("GatewayServer: duplicate session id");
  if (config_.max_live_sessions != 0 &&
      live_sessions() >= config_.max_live_sessions) {
    // Shed-new before degrade-existing: the refusal is an explicit
    // verdict frame, not silence — the device fails fast instead of
    // retransmitting into a black hole.
    ++stats_.shed;
    Frame reject;
    reject.type = FrameType::kReject;
    reject.session = id;
    if (downlink) downlink(encode_frame(reject));
    return false;
  }
  Sess s;
  s.machine = std::move(machine);
  s.rng = std::move(rng);
  s.judge = std::move(judge);
  s.last_activity = queue_->now();
  wire_endpoint(id, s, std::move(downlink));
  auto [it, ok] = sessions_.emplace(id, std::move(s));
  arm_policy_timers(id, it->second);
  ++stats_.opened;
  return true;
}

void GatewayServer::wire_endpoint(std::uint64_t id, Sess& s,
                                  Downlink downlink) {
  s.endpoint = std::make_unique<ReliableEndpoint>(
      *queue_, id, mix_seed(seed_, id), config_.delivery);
  s.endpoint->set_frame_sink(std::move(downlink));
  s.endpoint->set_message_sink(
      [this, id](const Frame& f) { on_delivered(id, f); });
  s.endpoint->set_failure_sink([this, id] {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    if (it->second.status == GatewaySessionStatus::kActive)
      settle(it->second, GatewaySessionStatus::kFailed, false);
  });
}

void GatewayServer::arm_policy_timers(std::uint64_t id, Sess& s) {
  if (config_.session_deadline != 0) {
    s.deadline_timer =
        queue_->schedule(config_.session_deadline, [this, id] {
          const auto it = sessions_.find(id);
          if (it == sessions_.end()) return;
          Sess& sess = it->second;
          sess.deadline_timer = core::kInvalidEvent;
          if (sess.status != GatewaySessionStatus::kActive) return;
          settle(sess, GatewaySessionStatus::kDeadlineEvicted, false);
          sess.endpoint->send_reject();
        });
  }
  if (config_.idle_timeout != 0) {
    s.idle_timer = queue_->schedule(config_.idle_timeout,
                                    [this, id] { idle_check(id); });
  }
}

void GatewayServer::idle_check(std::uint64_t id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Sess& s = it->second;
  s.idle_timer = core::kInvalidEvent;
  if (s.status != GatewaySessionStatus::kActive) return;
  const core::Cycle idle_for = queue_->now() - s.last_activity;
  if (idle_for >= config_.idle_timeout) {
    settle(s, GatewaySessionStatus::kIdleEvicted, false);
    s.endpoint->send_reject();
    return;
  }
  // Activity happened since the timer was armed — sleep out the rest.
  s.idle_timer = queue_->schedule(config_.idle_timeout - idle_for,
                                  [this, id] { idle_check(id); });
}

void GatewayServer::on_uplink(std::uint64_t id,
                              std::vector<std::uint8_t> raw) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;  // unknown/forgotten session
  it->second.last_activity = queue_->now();
  it->second.endpoint->on_bytes(std::move(raw));
}

void GatewayServer::on_delivered(std::uint64_t id, const Frame& f) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Sess& s = it->second;
  // A settled session's endpoint keeps acking duplicates (the peer may
  // still be retransmitting a frame whose ack was lost), but the machine
  // is never stepped again.
  if (s.status != GatewaySessionStatus::kActive) return;
  if (!s.machine || s.machine->state() != SessionState::kAwait) return;

  StepResult r;
  try {
    r = s.machine->on_message(Message{f.label, f.payload});
  } catch (const std::exception&) {
    // Poison session: the machine threw instead of rejecting. Isolate it
    // — verdict refused, machine never stepped again, everyone else
    // unaffected.
    settle(s, GatewaySessionStatus::kQuarantined, false);
    s.endpoint->send_reject();
    return;
  }
  for (auto& out : r.out)
    s.endpoint->send_message(out.label, std::move(out.payload));
  if (r.state == SessionState::kDone) {
    settle(s, GatewaySessionStatus::kCompleted,
           s.judge ? s.judge(*s.machine) : true);
  } else if (r.state == SessionState::kFailed) {
    settle(s, GatewaySessionStatus::kFailed, false);
    s.endpoint->send_reject();
  }
}

void GatewayServer::settle(Sess& s,
                           GatewaySessionStatus status, bool accepted) {
  s.status = status;
  s.accepted = accepted;
  s.settled_at = queue_->now();
  queue_->cancel(s.deadline_timer);
  queue_->cancel(s.idle_timer);
  s.deadline_timer = core::kInvalidEvent;
  s.idle_timer = core::kInvalidEvent;
  switch (status) {
    case GatewaySessionStatus::kCompleted:
      ++stats_.completed;
      if (accepted) ++stats_.accepted;
      break;
    case GatewaySessionStatus::kFailed:
      ++stats_.failed;
      break;
    case GatewaySessionStatus::kQuarantined:
      ++stats_.quarantined;
      break;
    case GatewaySessionStatus::kDeadlineEvicted:
      ++stats_.deadline_evicted;
      break;
    case GatewaySessionStatus::kIdleEvicted:
      ++stats_.idle_evicted;
      break;
    case GatewaySessionStatus::kActive:
      break;  // unreachable
  }
}

GatewaySessionStatus GatewayServer::status(std::uint64_t id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end())
    throw std::out_of_range("GatewayServer::status: unknown session");
  return it->second.status;
}

bool GatewayServer::accepted(std::uint64_t id) const {
  const auto it = sessions_.find(id);
  return it != sessions_.end() && it->second.accepted;
}

core::Cycle GatewayServer::settled_at(std::uint64_t id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second.settled_at;
}

const DeliveryStats* GatewayServer::delivery_stats(std::uint64_t id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second.endpoint->stats();
}

void GatewayServer::report_fault_telemetry(std::uint64_t id,
                                           std::uint64_t detected,
                                           std::uint64_t retries,
                                           bool unrecovered) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  GatewayFaultTelemetry& f = it->second.faults;
  f.detected += detected;
  f.retries += retries;
  f.unrecovered = f.unrecovered || unrecovered;
  stats_.faults_detected += detected;
  stats_.fault_retries += retries;
  if (unrecovered) ++stats_.faults_unrecovered;
}

GatewayFaultTelemetry GatewayServer::fault_telemetry(std::uint64_t id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? GatewayFaultTelemetry{} : it->second.faults;
}

std::vector<std::uint64_t> GatewayServer::session_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) ids.push_back(id);
  return ids;
}

std::vector<std::uint8_t> GatewayServer::snapshot_session(
    std::uint64_t id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end())
    throw std::out_of_range("GatewayServer::snapshot_session: unknown id");
  const Sess& s = it->second;
  SnapshotWriter w;
  w.u32(kSessionSnapshotMagic);
  w.u8(static_cast<std::uint8_t>(s.status));
  w.boolean(s.accepted);
  w.u64(s.faults.detected);
  w.u64(s.faults.retries);
  w.boolean(s.faults.unrecovered);
  w.u64(s.settled_at);
  w.boolean(s.rng != nullptr);
  if (s.rng) {
    const rng::Xoshiro256::State st = s.rng->save_state();
    for (const std::uint64_t limb : st.s) w.u64(limb);
    w.boolean(st.have_spare);
    w.f64(st.spare);
  }
  s.machine->snapshot(w);
  s.endpoint->snapshot(w);
  return w.take();
}

void GatewayServer::restore_session(
    std::uint64_t id, std::unique_ptr<protocol::SessionMachine> machine,
    Downlink downlink, std::span<const std::uint8_t> snap, Judge judge,
    std::unique_ptr<rng::Xoshiro256> rng) {
  if (sessions_.count(id))
    throw std::invalid_argument(
        "GatewayServer::restore_session: id already live");
  SnapshotReader r(snap);
  if (r.u32() != kSessionSnapshotMagic)
    throw SnapshotError("gateway: bad session magic");
  const std::uint8_t status_byte = r.u8();
  if (status_byte > static_cast<std::uint8_t>(
                        GatewaySessionStatus::kIdleEvicted))
    throw SnapshotError("gateway: bad session status");

  Sess s;
  s.status = static_cast<GatewaySessionStatus>(status_byte);
  s.accepted = r.boolean();
  s.faults.detected = r.u64();
  s.faults.retries = r.u64();
  s.faults.unrecovered = r.boolean();
  s.settled_at = r.u64();
  const bool has_rng = r.boolean();
  if (has_rng != (rng != nullptr))
    throw SnapshotError("gateway: rng presence mismatch");
  if (has_rng) {
    rng::Xoshiro256::State st;
    for (std::uint64_t& limb : st.s) limb = r.u64();
    st.have_spare = r.boolean();
    st.spare = r.f64();
    rng->load_state(st);
  }
  machine->restore(r);
  s.machine = std::move(machine);
  s.rng = std::move(rng);
  s.judge = std::move(judge);
  s.last_activity = queue_->now();
  wire_endpoint(id, s, std::move(downlink));
  s.endpoint->restore(r);
  if (!r.exhausted()) throw SnapshotError("gateway: trailing bytes");
  auto [it, ok] = sessions_.emplace(id, std::move(s));
  // Policy clocks restart from the restore point: the replacement node
  // grants a fresh deadline rather than inheriting a dead node's.
  if (it->second.status == GatewaySessionStatus::kActive)
    arm_policy_timers(id, it->second);
  ++stats_.restored;
  // The replacement node's ledger inherits the device's fault history —
  // failover must not launder a faulty device back to a clean slate.
  stats_.faults_detected += it->second.faults.detected;
  stats_.fault_retries += it->second.faults.retries;
  if (it->second.faults.unrecovered) ++stats_.faults_unrecovered;
}

// --- DeviceEndpoint ----------------------------------------------------------

DeviceEndpoint::DeviceEndpoint(core::EventQueue& queue, std::uint64_t id,
                               std::uint64_t seed,
                               protocol::SessionMachine& machine,
                               const DeliveryConfig& config)
    : queue_(&queue),
      machine_(&machine),
      endpoint_(queue, id, mix_seed(seed, id ^ 0xDE71CEULL), config) {
  endpoint_.set_message_sink([this](const Frame& f) { on_delivered(f); });
  endpoint_.set_failure_sink([this] { failed_ = true; });
}

void DeviceEndpoint::start() { pump(machine_->start()); }

void DeviceEndpoint::on_downlink(std::vector<std::uint8_t> raw) {
  endpoint_.on_bytes(std::move(raw));
}

void DeviceEndpoint::on_delivered(const Frame& f) {
  if (machine_->state() != SessionState::kAwait) return;
  try {
    pump(machine_->on_message(Message{f.label, f.payload}));
  } catch (const std::exception&) {
    failed_ = true;
  }
}

void DeviceEndpoint::pump(StepResult r) {
  for (auto& out : r.out)
    endpoint_.send_message(out.label, std::move(out.payload));
  if (r.state == SessionState::kDone && done_at_ == 0)
    done_at_ = queue_->now();
}

// --- chaos campaign ----------------------------------------------------------

// World-building kit shared with the sharded campaign (shard.cpp); see
// campaign_fixtures.h for the determinism contract.
namespace campaign {

Fixtures make_fixtures(std::uint64_t seed) {
  const ecc::Curve& curve = ecc::Curve::k163();
  rng::Xoshiro256 rng(mix_seed(seed, 0xF177));
  Fixtures fx{curve,
              protocol::schnorr_keygen(curve, rng),
              protocol::ph_setup_reader(curve, rng),
              {},
              {},
              [](std::span<const std::uint8_t> key) {
                return std::unique_ptr<ciphers::BlockCipher>(
                    new ciphers::Aes128(key));
              },
              {},
              {}};
  fx.ph_tag = protocol::ph_register_tag(curve, fx.ph_reader, rng);
  std::vector<std::uint8_t> master(32);
  rng.fill(master);
  fx.keys = protocol::derive_session_keys(master, 16);
  fx.ecies_key = protocol::ecies_keygen(curve, rng);
  fx.telemetry.resize(48);
  rng.fill(fx.telemetry);
  return fx;
}

/// The protocol mix: session gid runs protocol gid % 4.
MachineFactory device_factory(const Fixtures& fx, std::uint64_t gid) {
  switch (gid % 4) {
    case 0:
      return [&fx](rng::RandomSource& r) {
        return std::unique_ptr<protocol::SessionMachine>(
            new protocol::SchnorrProver(fx.curve, fx.schnorr_key, r));
      };
    case 1:
      return [&fx](rng::RandomSource& r) {
        return std::unique_ptr<protocol::SessionMachine>(
            new protocol::PhTagMachine(fx.curve, fx.ph_tag, r));
      };
    case 2:
      return [&fx](rng::RandomSource& r) {
        return std::unique_ptr<protocol::SessionMachine>(
            new protocol::MutualAuthTag(fx.make_cipher, fx.keys,
                                        fx.telemetry, r));
      };
    default:
      return [&fx](rng::RandomSource& r) {
        return std::unique_ptr<protocol::SessionMachine>(
            new protocol::EciesUploader(fx.curve, fx.ecies_key.Y,
                                        fx.telemetry, fx.make_cipher, 16,
                                        r));
      };
  }
}

MachineFactory server_factory(const Fixtures& fx, std::uint64_t gid,
                              bool deferred_schnorr) {
  switch (gid % 4) {
    case 0:
      return [&fx, deferred_schnorr](rng::RandomSource& r) {
        return std::unique_ptr<protocol::SessionMachine>(
            new protocol::SchnorrVerifier(
                fx.curve, fx.schnorr_key.X, r,
                deferred_schnorr
                    ? protocol::SchnorrVerifier::Mode::kDeferred
                    : protocol::SchnorrVerifier::Mode::kInline));
      };
    case 1:
      return [&fx](rng::RandomSource& r) {
        return std::unique_ptr<protocol::SessionMachine>(
            new protocol::PhReaderMachine(fx.curve, fx.ph_reader, r));
      };
    case 2:
      return [&fx](rng::RandomSource& r) {
        return std::unique_ptr<protocol::SessionMachine>(
            new protocol::MutualAuthServer(fx.make_cipher, fx.keys, r));
      };
    default:
      return [&fx](rng::RandomSource&) {
        return std::unique_ptr<protocol::SessionMachine>(
            new protocol::EciesReceiver(fx.curve, fx.ecies_key.y,
                                        fx.make_cipher, 16));
      };
  }
}

GatewayServer::Judge judge_for(std::uint64_t gid) {
  switch (gid % 4) {
    case 0:
      return [](const protocol::SessionMachine& m) {
        return static_cast<const protocol::SchnorrVerifier&>(m).accepted();
      };
    case 1:
      return [](const protocol::SessionMachine& m) {
        return static_cast<const protocol::PhReaderMachine&>(m)
            .identity()
            .has_value();
      };
    case 2:
      return [](const protocol::SessionMachine& m) {
        const auto& s = static_cast<const protocol::MutualAuthServer&>(m);
        return s.accepted_tag() && s.telemetry_delivered();
      };
    default:
      return [](const protocol::SessionMachine& m) {
        return static_cast<const protocol::EciesReceiver&>(m).delivered();
      };
  }
}

}  // namespace campaign

namespace {

using campaign::Fixtures;
using campaign::MachineFactory;
using campaign::SessionOutcome;
using campaign::device_factory;
using campaign::judge_for;
using campaign::server_factory;

struct ShardResult {
  std::vector<SessionOutcome> outcomes;
  GatewayStats gateway;
  LinkStats link;  ///< both directions summed
  std::uint64_t retransmits = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t frames_sent = 0;
};

ShardResult run_shard(const ChaosCampaignConfig& cfg, const Fixtures& fx,
                      std::size_t begin, std::size_t end) {
  const std::size_t count = end - begin;
  core::EventQueue q;
  GatewayConfig gcfg;
  gcfg.delivery = cfg.delivery;
  gcfg.session_deadline = cfg.session_deadline;
  gcfg.idle_timeout = cfg.idle_timeout;
  auto gw = std::make_unique<GatewayServer>(q, mix_seed(cfg.seed, 0x6A7E),
                                            gcfg);

  std::vector<std::unique_ptr<rng::Xoshiro256>> dev_rngs(count);
  std::vector<std::unique_ptr<protocol::SessionMachine>> dev_machines(count);
  std::vector<std::unique_ptr<LossyLink>> links(count);
  std::vector<std::unique_ptr<DeviceEndpoint>> devices(count);
  std::vector<MachineFactory> srv_factories(count);

  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t gid = begin + i + 1;
    dev_rngs[i] =
        std::make_unique<rng::Xoshiro256>(mix_seed(cfg.seed, gid * 4));
    auto srv_rng =
        std::make_unique<rng::Xoshiro256>(mix_seed(cfg.seed, gid * 4 + 1));
    dev_machines[i] = device_factory(fx, gid)(*dev_rngs[i]);
    srv_factories[i] = server_factory(fx, gid);
    auto srv_machine = srv_factories[i](*srv_rng);
    links[i] = std::make_unique<LossyLink>(
        q, mix_seed(cfg.seed, gid * 4 + 2), cfg.uplink, cfg.downlink);
    devices[i] = std::make_unique<DeviceEndpoint>(q, gid, cfg.seed,
                                                  *dev_machines[i],
                                                  cfg.delivery);
    LossyLink* link = links[i].get();
    DeviceEndpoint* dev = devices[i].get();
    dev->set_uplink([link](std::vector<std::uint8_t> bytes) {
      link->send(LossyLink::kUp, std::move(bytes));
    });
    link->set_receiver(LossyLink::kUp,
                       [&gw, gid](std::vector<std::uint8_t> bytes) {
                         if (gw) gw->on_uplink(gid, std::move(bytes));
                       });
    link->set_receiver(LossyLink::kDown,
                       [dev](std::vector<std::uint8_t> bytes) {
                         dev->on_downlink(std::move(bytes));
                       });
    gw->open_session(gid, std::move(srv_machine),
                     [link](std::vector<std::uint8_t> bytes) {
                       link->send(LossyLink::kDown, std::move(bytes));
                     },
                     judge_for(gid), std::move(srv_rng));
    dev->start();
  }

  // Verdicts issued before a failover belong to the campaign totals: the
  // dead node's counters are carried here and summed into the final
  // accounting (its `restored`/`opened` double-count nothing — the new
  // node opens no sessions, only restores).
  GatewayStats pre_failover;
  if (cfg.failover_at != 0) {
    q.run_until(cfg.failover_at);
    // Node death: serialize every session (settled ones still owe the
    // device retransmits), kill the server, resurrect on a fresh one.
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> snaps;
    for (const std::uint64_t id : gw->session_ids())
      snaps.emplace_back(id, gw->snapshot_session(id));
    pre_failover = gw->stats();
    gw.reset();  // cancels the dead node's timers
    gw = std::make_unique<GatewayServer>(q, mix_seed(cfg.seed, 0x6A7E),
                                         gcfg);
    for (auto& [id, snap] : snaps) {
      const std::size_t i = static_cast<std::size_t>(id - 1) - begin;
      auto srv_rng = std::make_unique<rng::Xoshiro256>(0);  // state loaded
      auto machine = srv_factories[i](*srv_rng);
      LossyLink* link = links[i].get();
      gw->restore_session(id, std::move(machine),
                          [link](std::vector<std::uint8_t> bytes) {
                            link->send(LossyLink::kDown, std::move(bytes));
                          },
                          snap, judge_for(id), std::move(srv_rng));
    }
  }

  while (q.pending() && q.now() < cfg.max_cycles) q.run_next();

  ShardResult out;
  out.gateway = gw->stats();
  out.gateway.opened += pre_failover.opened;
  out.gateway.shed += pre_failover.shed;
  out.gateway.completed += pre_failover.completed;
  out.gateway.accepted += pre_failover.accepted;
  out.gateway.failed += pre_failover.failed;
  out.gateway.quarantined += pre_failover.quarantined;
  out.gateway.deadline_evicted += pre_failover.deadline_evicted;
  out.gateway.idle_evicted += pre_failover.idle_evicted;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t gid = begin + i + 1;
    SessionOutcome o;
    o.id = gid;
    const GatewaySessionStatus st = gw->status(gid);
    const bool dev_done = devices[i]->done();
    const bool dev_failed = devices[i]->failed();
    o.completed = dev_done && st == GatewaySessionStatus::kCompleted;
    o.accepted = o.completed && gw->accepted(gid);
    o.failed = !o.completed &&
               (dev_failed || st != GatewaySessionStatus::kActive);
    if (o.completed)
      o.cycle = std::max(devices[i]->done_at(), gw->settled_at(gid));
    o.retransmits = devices[i]->stats().retransmits;
    if (const DeliveryStats* ds = gw->delivery_stats(gid)) {
      o.retransmits += ds->retransmits;
      out.decode_failures += ds->decode_failures;
      out.dup_suppressed += ds->dup_suppressed;
    }
    out.decode_failures += devices[i]->stats().decode_failures;
    out.dup_suppressed += devices[i]->stats().dup_suppressed;
    out.retransmits += o.retransmits;
    for (const auto dir : {LossyLink::kUp, LossyLink::kDown}) {
      const LinkStats& ls = links[i]->stats(dir);
      out.link.sent += ls.sent;
      out.link.delivered += ls.delivered;
      out.link.dropped += ls.dropped;
      out.link.corrupted += ls.corrupted;
      out.link.duplicated += ls.duplicated;
      out.link.reordered += ls.reordered;
      out.link.corrupted_delivered += ls.corrupted_delivered;
    }
    out.frames_sent += devices[i]->stats().data_sent +
                       devices[i]->stats().acks_sent;
    out.outcomes.push_back(o);
  }
  return out;
}

}  // namespace

ChaosCampaignResult run_chaos_campaign(const ChaosCampaignConfig& config) {
  ChaosCampaignConfig cfg = config;
  if (cfg.sessions_per_shard == 0) cfg.sessions_per_shard = 64;
  const Fixtures fx = campaign::make_fixtures(cfg.seed);
  const std::size_t shards =
      (cfg.sessions + cfg.sessions_per_shard - 1) / cfg.sessions_per_shard;

  std::vector<ShardResult> results(shards);
  const auto work = [&](std::size_t b, std::size_t e) {
    for (std::size_t s = b; s < e; ++s) {
      const std::size_t lo = s * cfg.sessions_per_shard;
      const std::size_t hi =
          std::min(cfg.sessions, lo + cfg.sessions_per_shard);
      results[s] = run_shard(cfg, fx, lo, hi);
    }
  };
  std::unique_ptr<core::ThreadPool> owner;
  core::ThreadPool* pool = core::ThreadPool::for_config(cfg.threads, owner);
  if (pool != nullptr && shards > 1)
    pool->parallel_for(shards, 1, work);
  else
    work(0, shards);

  // Merge in shard order — the determinism contract.
  ChaosCampaignResult out;
  out.sessions = cfg.sessions;
  std::vector<core::Cycle> latencies;
  std::uint64_t digest = 0xCBF29CE484222325ULL;
  for (const ShardResult& r : results) {
    out.gateway.opened += r.gateway.opened;
    out.gateway.shed += r.gateway.shed;
    out.gateway.completed += r.gateway.completed;
    out.gateway.accepted += r.gateway.accepted;
    out.gateway.failed += r.gateway.failed;
    out.gateway.quarantined += r.gateway.quarantined;
    out.gateway.deadline_evicted += r.gateway.deadline_evicted;
    out.gateway.idle_evicted += r.gateway.idle_evicted;
    out.gateway.restored += r.gateway.restored;
    out.frames_sent += r.link.sent;
    out.frames_dropped += r.link.dropped;
    out.frames_corrupted += r.link.corrupted;
    out.frames_duplicated += r.link.duplicated;
    out.frames_reordered += r.link.reordered;
    out.retransmits += r.retransmits;
    out.decode_failures += r.decode_failures;
    out.dup_suppressed += r.dup_suppressed;
    // Every corrupted delivery must surface as a decode failure; any gap
    // means a mangled frame got past the CRC into a machine.
    out.corrupt_accepted += r.link.corrupted_delivered;
    for (const SessionOutcome& o : r.outcomes) {
      if (o.completed) {
        ++out.completed;
        latencies.push_back(o.cycle);
      }
      if (o.accepted) ++out.accepted;
      if (o.failed) ++out.failed;
      if (!o.completed && !o.failed) ++out.stuck;
      digest = campaign::digest_outcome(digest, o);
    }
  }
  out.corrupt_accepted = out.corrupt_accepted > out.decode_failures
                             ? out.corrupt_accepted - out.decode_failures
                             : 0;
  out.digest = digest;
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    out.latency_p50 = latencies[latencies.size() / 2];
    out.latency_p99 = latencies[std::min(latencies.size() - 1,
                                         latencies.size() * 99 / 100)];
    out.latency_max = latencies.back();
  }
  return out;
}

}  // namespace medsec::engine
