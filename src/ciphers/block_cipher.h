// block_cipher.h — common interface for the secret-key primitives.
//
// The paper's §4 weighs "protocols based on secret key algorithms, like
// AES" against public-key protocols. We provide AES-128 plus the
// lightweight ciphers that dominate the medical/RFID design space
// (PRESENT-80, SIMON 64/96, SPECK 64/96) behind one interface so the
// protocol layer and the energy benches can swap them freely.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>

namespace medsec::ciphers {

class BlockCipher {
 public:
  virtual ~BlockCipher() = default;

  virtual std::size_t block_bytes() const = 0;
  virtual std::size_t key_bytes() const = 0;
  virtual std::string name() const = 0;

  /// in and out are block_bytes() long; may alias.
  virtual void encrypt_block(std::span<const std::uint8_t> in,
                             std::span<std::uint8_t> out) const = 0;
  virtual void decrypt_block(std::span<const std::uint8_t> in,
                             std::span<std::uint8_t> out) const = 0;
};

}  // namespace medsec::ciphers
