#include "ciphers/present.h"

#include <stdexcept>

namespace medsec::ciphers {

namespace {

constexpr std::uint8_t kSbox[16] = {0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
                                    0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2};
constexpr std::uint8_t kInvSbox[16] = {0x5, 0xE, 0xF, 0x8, 0xC, 0x1, 0x2, 0xD,
                                       0xB, 0x4, 0x6, 0x3, 0x0, 0x7, 0x9, 0xA};

std::uint64_t load_be64(std::span<const std::uint8_t> in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[static_cast<std::size_t>(i)];
  return v;
}

void store_be64(std::uint64_t v, std::span<std::uint8_t> out) {
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

std::uint64_t sbox_layer(std::uint64_t s) {
  std::uint64_t out = 0;
  for (int i = 0; i < 16; ++i)
    out |= static_cast<std::uint64_t>(kSbox[(s >> (4 * i)) & 0xF]) << (4 * i);
  return out;
}

std::uint64_t inv_sbox_layer(std::uint64_t s) {
  std::uint64_t out = 0;
  for (int i = 0; i < 16; ++i)
    out |= static_cast<std::uint64_t>(kInvSbox[(s >> (4 * i)) & 0xF])
           << (4 * i);
  return out;
}

// P(i) = 16*i mod 63 for i < 63, P(63) = 63: bit i of the state moves to
// position P(i).
std::uint64_t perm_layer(std::uint64_t s) {
  std::uint64_t out = 0;
  for (int i = 0; i < 64; ++i) {
    const int p = (i == 63) ? 63 : (16 * i) % 63;
    out |= ((s >> i) & 1u) << p;
  }
  return out;
}

std::uint64_t inv_perm_layer(std::uint64_t s) {
  std::uint64_t out = 0;
  for (int i = 0; i < 64; ++i) {
    const int p = (i == 63) ? 63 : (16 * i) % 63;
    out |= ((s >> p) & 1u) << i;
  }
  return out;
}

}  // namespace

Present::Present(std::span<const std::uint8_t> key) {
  key_bytes_ = key.size();
  if (key_bytes_ == 10) {
    // 80-bit key register, big-endian: k79..k0. Keep in two words:
    // hi = k79..k16 (64 bits), lo = k15..k0 (16 bits).
    std::uint64_t hi = 0;
    for (int i = 0; i < 8; ++i) hi = (hi << 8) | key[static_cast<std::size_t>(i)];
    std::uint64_t lo = (std::uint64_t{key[8]} << 8) | key[9];
    for (int round = 1; round <= kRounds + 1; ++round) {
      round_key_[static_cast<std::size_t>(round - 1)] = hi;
      // Treat the register as the 80-bit integer K = hi * 2^16 + lo and
      // rotate left by 61: K' = ((K << 61) | (K >> 19)) mod 2^80.
      const unsigned __int128 K =
          (static_cast<unsigned __int128>(hi) << 16) | lo;
      const unsigned __int128 mask80 = ((static_cast<unsigned __int128>(1) << 80) - 1);
      unsigned __int128 Kp = ((K << 61) | (K >> 19)) & mask80;
      // S-box on the top nibble (bits 79..76).
      const unsigned top = static_cast<unsigned>((Kp >> 76) & 0xF);
      Kp = (Kp & ~(static_cast<unsigned __int128>(0xF) << 76)) |
           (static_cast<unsigned __int128>(kSbox[top]) << 76);
      // XOR round counter into bits 19..15.
      Kp ^= static_cast<unsigned __int128>(round) << 15;
      hi = static_cast<std::uint64_t>(Kp >> 16);
      lo = static_cast<std::uint64_t>(Kp) & 0xFFFF;
    }
  } else if (key_bytes_ == 16) {
    std::uint64_t hi = load_be64(key.first(8));
    std::uint64_t lo = load_be64(key.subspan(8, 8));
    for (int round = 1; round <= kRounds + 1; ++round) {
      round_key_[static_cast<std::size_t>(round - 1)] = hi;
      // 128-bit register rotated left by 61.
      const unsigned __int128 K =
          (static_cast<unsigned __int128>(hi) << 64) | lo;
      unsigned __int128 Kp = (K << 61) | (K >> 67);
      // S-boxes on the top two nibbles (bits 127..120).
      const unsigned n1 = static_cast<unsigned>((Kp >> 124) & 0xF);
      const unsigned n2 = static_cast<unsigned>((Kp >> 120) & 0xF);
      Kp = (Kp & ~(static_cast<unsigned __int128>(0xFF) << 120)) |
           (static_cast<unsigned __int128>(kSbox[n1]) << 124) |
           (static_cast<unsigned __int128>(kSbox[n2]) << 120);
      // XOR round counter into bits 66..62.
      Kp ^= static_cast<unsigned __int128>(round) << 62;
      hi = static_cast<std::uint64_t>(Kp >> 64);
      lo = static_cast<std::uint64_t>(Kp);
    }
  } else {
    throw std::invalid_argument("Present: key must be 10 or 16 bytes");
  }
}

void Present::encrypt_block(std::span<const std::uint8_t> in,
                            std::span<std::uint8_t> out) const {
  std::uint64_t s = load_be64(in);
  for (int round = 0; round < kRounds; ++round) {
    s ^= round_key_[static_cast<std::size_t>(round)];
    s = sbox_layer(s);
    s = perm_layer(s);
  }
  s ^= round_key_[kRounds];
  store_be64(s, out);
}

void Present::decrypt_block(std::span<const std::uint8_t> in,
                            std::span<std::uint8_t> out) const {
  std::uint64_t s = load_be64(in);
  s ^= round_key_[kRounds];
  for (int round = kRounds - 1; round >= 0; --round) {
    s = inv_perm_layer(s);
    s = inv_sbox_layer(s);
    s ^= round_key_[static_cast<std::size_t>(round)];
  }
  store_be64(s, out);
}

}  // namespace medsec::ciphers
