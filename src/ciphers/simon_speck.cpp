#include "ciphers/simon_speck.h"

#include <bit>
#include <stdexcept>

namespace medsec::ciphers {

namespace {

// Constant sequence z2 from the SIMON specification (62-bit period).
constexpr char kZ2[] =
    "10101111011100000011010010011000101000010001111110010110110011";

std::uint32_t load_be32(std::span<const std::uint8_t> in) {
  return (std::uint32_t{in[0]} << 24) | (std::uint32_t{in[1]} << 16) |
         (std::uint32_t{in[2]} << 8) | std::uint32_t{in[3]};
}

void store_be32(std::uint32_t v, std::span<std::uint8_t> out) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

Simon6496::Simon6496(std::span<const std::uint8_t> key) {
  if (key.size() != kKeyBytes)
    throw std::invalid_argument("Simon6496: key must be 12 bytes");
  // Key passed big-endian as k[2] || k[1] || k[0].
  std::array<std::uint32_t, 3> k{load_be32(key.subspan(8, 4)),
                                 load_be32(key.subspan(4, 4)),
                                 load_be32(key.first(4))};
  round_key_[0] = k[0];
  round_key_[1] = k[1];
  round_key_[2] = k[2];
  constexpr std::uint32_t c = 0xFFFFFFFCu;
  for (int i = 3; i < kRounds; ++i) {
    std::uint32_t tmp = std::rotr(round_key_[static_cast<std::size_t>(i - 1)], 3);
    tmp ^= std::rotr(tmp, 1);
    const std::uint32_t zbit =
        kZ2[(i - 3) % 62] == '1' ? 1u : 0u;
    round_key_[static_cast<std::size_t>(i)] =
        c ^ zbit ^ round_key_[static_cast<std::size_t>(i - 3)] ^ tmp;
  }
}

void Simon6496::encrypt_block(std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out) const {
  std::uint32_t x = load_be32(in.first(4));
  std::uint32_t y = load_be32(in.subspan(4, 4));
  for (int i = 0; i < kRounds; ++i) {
    const std::uint32_t tmp = x;
    x = y ^ (std::rotl(x, 1) & std::rotl(x, 8)) ^ std::rotl(x, 2) ^
        round_key_[static_cast<std::size_t>(i)];
    y = tmp;
  }
  store_be32(x, out.first(4));
  store_be32(y, out.subspan(4, 4));
}

void Simon6496::decrypt_block(std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out) const {
  std::uint32_t x = load_be32(in.first(4));
  std::uint32_t y = load_be32(in.subspan(4, 4));
  for (int i = kRounds - 1; i >= 0; --i) {
    const std::uint32_t tmp = y;
    y = x ^ (std::rotl(y, 1) & std::rotl(y, 8)) ^ std::rotl(y, 2) ^
        round_key_[static_cast<std::size_t>(i)];
    x = tmp;
  }
  store_be32(x, out.first(4));
  store_be32(y, out.subspan(4, 4));
}

Speck6496::Speck6496(std::span<const std::uint8_t> key) {
  if (key.size() != kKeyBytes)
    throw std::invalid_argument("Speck6496: key must be 12 bytes");
  std::uint32_t rk = load_be32(key.subspan(8, 4));  // k[0]
  std::array<std::uint32_t, kRounds + 1> l{};
  l[0] = load_be32(key.subspan(4, 4));  // k[1]
  l[1] = load_be32(key.first(4));       // k[2]
  for (int i = 0; i < kRounds; ++i) {
    round_key_[static_cast<std::size_t>(i)] = rk;
    if (i < kRounds - 1) {
      l[static_cast<std::size_t>(i + 2)] =
          (rk + std::rotr(l[static_cast<std::size_t>(i)], 8)) ^
          static_cast<std::uint32_t>(i);
      rk = std::rotl(rk, 3) ^ l[static_cast<std::size_t>(i + 2)];
    }
  }
}

void Speck6496::encrypt_block(std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out) const {
  std::uint32_t x = load_be32(in.first(4));
  std::uint32_t y = load_be32(in.subspan(4, 4));
  for (int i = 0; i < kRounds; ++i) {
    x = (std::rotr(x, 8) + y) ^ round_key_[static_cast<std::size_t>(i)];
    y = std::rotl(y, 3) ^ x;
  }
  store_be32(x, out.first(4));
  store_be32(y, out.subspan(4, 4));
}

void Speck6496::decrypt_block(std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out) const {
  std::uint32_t x = load_be32(in.first(4));
  std::uint32_t y = load_be32(in.subspan(4, 4));
  for (int i = kRounds - 1; i >= 0; --i) {
    y = std::rotr(y ^ x, 3);
    x = std::rotl((x ^ round_key_[static_cast<std::size_t>(i)]) - y, 8);
  }
  store_be32(x, out.first(4));
  store_be32(y, out.subspan(4, 4));
}

}  // namespace medsec::ciphers
