// simon_speck.h — SIMON 64/96 and SPECK 64/96 (Beaulieu et al., NSA 2013).
//
// The two lightweight-cipher families that frame the post-2013 design space
// the paper's §4 discusses: SIMON optimized for hardware area, SPECK for
// software. 64-bit block, 96-bit key variants (the natural fit for the
// 80-bit-security design point of the paper's K-163 ECC core).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "ciphers/block_cipher.h"

namespace medsec::ciphers {

/// SIMON 64/96: 42 rounds, constant sequence z2.
class Simon6496 final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockBytes = 8;
  static constexpr std::size_t kKeyBytes = 12;
  static constexpr int kRounds = 42;

  /// key is three 32-bit words k[2] k[1] k[0], passed little-endian per
  /// word with k[0] last (the reference implementation convention).
  explicit Simon6496(std::span<const std::uint8_t> key);

  std::size_t block_bytes() const override { return kBlockBytes; }
  std::size_t key_bytes() const override { return kKeyBytes; }
  std::string name() const override { return "SIMON-64/96"; }

  void encrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;

 private:
  std::array<std::uint32_t, kRounds> round_key_{};
};

/// SPECK 64/96: 26 rounds.
class Speck6496 final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockBytes = 8;
  static constexpr std::size_t kKeyBytes = 12;
  static constexpr int kRounds = 26;

  explicit Speck6496(std::span<const std::uint8_t> key);

  std::size_t block_bytes() const override { return kBlockBytes; }
  std::size_t key_bytes() const override { return kKeyBytes; }
  std::string name() const override { return "SPECK-64/96"; }

  void encrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;

 private:
  std::array<std::uint32_t, kRounds> round_key_{};
};

}  // namespace medsec::ciphers
