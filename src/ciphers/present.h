// present.h — PRESENT-80/128 (Bogdanov et al., CHES 2007).
//
// The canonical ultra-lightweight block cipher for exactly the device class
// the paper targets (~1.5 kGE). 64-bit block, 80- or 128-bit key, 31
// rounds of S-box + bit permutation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "ciphers/block_cipher.h"

namespace medsec::ciphers {

class Present final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockBytes = 8;
  static constexpr int kRounds = 31;

  enum class KeySize { k80, k128 };

  /// key is 10 bytes (PRESENT-80) or 16 bytes (PRESENT-128), big-endian as
  /// in the specification's test vectors.
  explicit Present(std::span<const std::uint8_t> key);

  std::size_t block_bytes() const override { return kBlockBytes; }
  std::size_t key_bytes() const override { return key_bytes_; }
  std::string name() const override {
    return key_bytes_ == 10 ? "PRESENT-80" : "PRESENT-128";
  }

  void encrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;

 private:
  std::array<std::uint64_t, kRounds + 1> round_key_{};
  std::size_t key_bytes_ = 10;
};

}  // namespace medsec::ciphers
