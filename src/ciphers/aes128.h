// aes128.h — AES-128 (FIPS 197).
//
// Table-based S-box implementation; round keys are expanded once at
// construction. This is the host-side reference cipher for the protocol
// layer — the *hardware cost* of an AES core on the modeled device comes
// from hw/gates.h, not from profiling this code.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "ciphers/block_cipher.h"

namespace medsec::ciphers {

class Aes128 final : public BlockCipher {
 public:
  static constexpr std::size_t kBlockBytes = 16;
  static constexpr std::size_t kKeyBytes = 16;
  static constexpr int kRounds = 10;

  explicit Aes128(std::span<const std::uint8_t> key);

  std::size_t block_bytes() const override { return kBlockBytes; }
  std::size_t key_bytes() const override { return kKeyBytes; }
  std::string name() const override { return "AES-128"; }

  void encrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;
  void decrypt_block(std::span<const std::uint8_t> in,
                     std::span<std::uint8_t> out) const override;

 private:
  // Round keys as 4x4 byte matrices, 11 of them.
  std::array<std::array<std::uint8_t, 16>, kRounds + 1> round_key_{};
};

}  // namespace medsec::ciphers
