#include "ciphers/modes.h"

#include <stdexcept>

#include "hash/hmac.h"  // constant_time_equal

namespace medsec::ciphers {

namespace {

/// Doubling in GF(2^64) / GF(2^128) for the CMAC subkeys.
void gf_double(std::vector<std::uint8_t>& block) {
  const std::uint8_t rb = block.size() == 8 ? 0x1B : 0x87;
  const bool carry = (block[0] & 0x80) != 0;
  for (std::size_t i = 0; i + 1 < block.size(); ++i)
    block[i] = static_cast<std::uint8_t>((block[i] << 1) |
                                         (block[i + 1] >> 7));
  block.back() = static_cast<std::uint8_t>(block.back() << 1);
  if (carry) block.back() ^= rb;
}

}  // namespace

std::vector<std::uint8_t> ctr_crypt(const BlockCipher& cipher,
                                    std::span<const std::uint8_t> nonce,
                                    std::span<const std::uint8_t> data) {
  const std::size_t bs = cipher.block_bytes();
  if (nonce.size() != bs - 4)
    throw std::invalid_argument("ctr_crypt: nonce must be block-4 bytes");
  std::vector<std::uint8_t> counter_block(bs, 0);
  std::copy(nonce.begin(), nonce.end(), counter_block.begin());
  std::vector<std::uint8_t> keystream(bs, 0);
  std::vector<std::uint8_t> out(data.begin(), data.end());
  std::uint32_t ctr = 0;
  for (std::size_t off = 0; off < out.size(); off += bs) {
    for (int i = 0; i < 4; ++i)
      counter_block[bs - 4 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(ctr >> (24 - 8 * i));
    cipher.encrypt_block(counter_block, keystream);
    const std::size_t n = std::min(bs, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    ++ctr;
  }
  return out;
}

std::vector<std::uint8_t> cmac(const BlockCipher& cipher,
                               std::span<const std::uint8_t> data) {
  const std::size_t bs = cipher.block_bytes();
  if (bs != 8 && bs != 16)
    throw std::invalid_argument("cmac: unsupported block size");

  // Subkeys K1, K2 from E_K(0).
  std::vector<std::uint8_t> l(bs, 0);
  cipher.encrypt_block(l, l);
  std::vector<std::uint8_t> k1 = l;
  gf_double(k1);
  std::vector<std::uint8_t> k2 = k1;
  gf_double(k2);

  const std::size_t nblocks =
      data.empty() ? 1 : (data.size() + bs - 1) / bs;
  const bool complete = !data.empty() && data.size() % bs == 0;

  std::vector<std::uint8_t> x(bs, 0);
  std::vector<std::uint8_t> block(bs, 0);
  for (std::size_t b = 0; b + 1 < nblocks; ++b) {
    for (std::size_t i = 0; i < bs; ++i) x[i] ^= data[b * bs + i];
    cipher.encrypt_block(x, x);
  }
  // Last block: pad and mix the appropriate subkey.
  std::fill(block.begin(), block.end(), 0);
  const std::size_t last_off = (nblocks - 1) * bs;
  const std::size_t last_len = data.size() - last_off;
  std::copy(data.begin() + static_cast<long>(last_off), data.end(),
            block.begin());
  if (!complete) block[last_len] = 0x80;
  const auto& subkey = complete ? k1 : k2;
  for (std::size_t i = 0; i < bs; ++i) x[i] ^= block[i] ^ subkey[i];
  cipher.encrypt_block(x, x);
  return x;
}

std::vector<std::uint8_t> cbc_mac(const BlockCipher& cipher,
                                  std::span<const std::uint8_t> data) {
  const std::size_t bs = cipher.block_bytes();
  std::vector<std::uint8_t> x(bs, 0);
  std::vector<std::uint8_t> block(bs, 0);
  for (std::size_t off = 0; off < data.size(); off += bs) {
    std::fill(block.begin(), block.end(), 0);
    const std::size_t n = std::min(bs, data.size() - off);
    std::copy(data.begin() + static_cast<long>(off),
              data.begin() + static_cast<long>(off + n), block.begin());
    for (std::size_t i = 0; i < bs; ++i) x[i] ^= block[i];
    cipher.encrypt_block(x, x);
  }
  return x;
}

AeadResult encrypt_then_mac(const BlockCipher& enc_cipher,
                            const BlockCipher& mac_cipher,
                            std::span<const std::uint8_t> nonce,
                            std::span<const std::uint8_t> plaintext) {
  AeadResult r;
  r.ciphertext = ctr_crypt(enc_cipher, nonce, plaintext);
  std::vector<std::uint8_t> mac_input(nonce.begin(), nonce.end());
  mac_input.insert(mac_input.end(), r.ciphertext.begin(), r.ciphertext.end());
  r.tag = cmac(mac_cipher, mac_input);
  return r;
}

bool decrypt_then_verify(const BlockCipher& enc_cipher,
                         const BlockCipher& mac_cipher,
                         std::span<const std::uint8_t> nonce,
                         std::span<const std::uint8_t> ciphertext,
                         std::span<const std::uint8_t> tag,
                         std::vector<std::uint8_t>& plaintext_out) {
  std::vector<std::uint8_t> mac_input(nonce.begin(), nonce.end());
  mac_input.insert(mac_input.end(), ciphertext.begin(), ciphertext.end());
  const auto expected = cmac(mac_cipher, mac_input);
  if (!hash::constant_time_equal(expected, tag)) return false;
  plaintext_out = ctr_crypt(enc_cipher, nonce, ciphertext);
  return true;
}

}  // namespace medsec::ciphers
