// modes.h — block-cipher modes of operation used by the protocol layer:
// CTR encryption, CMAC (OMAC1, RFC 4493 generalized to 64-bit blocks) and
// authenticated encrypt-then-MAC composition.
//
// The paper's §4 requires both encryption and data authentication on the
// pacemaker link ("a modification on the ciphertext may also lead to a
// corrupted therapy"); these modes are the machinery that provides them on
// the secret-key side.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ciphers/block_cipher.h"

namespace medsec::ciphers {

/// CTR-mode keystream encryption/decryption (symmetric). The nonce must be
/// block_bytes()-4 long; a 32-bit big-endian counter occupies the tail.
std::vector<std::uint8_t> ctr_crypt(const BlockCipher& cipher,
                                    std::span<const std::uint8_t> nonce,
                                    std::span<const std::uint8_t> data);

/// CMAC (OMAC1). Works for 8- and 16-byte block ciphers (Rb = 0x1B / 0x87).
std::vector<std::uint8_t> cmac(const BlockCipher& cipher,
                               std::span<const std::uint8_t> data);

/// Fixed-length-message CBC-MAC (secure only when all messages authenticated
/// under one key share a single length — the classic footgun; kept for the
/// protocol-energy comparison and as a teaching baseline, prefer cmac()).
std::vector<std::uint8_t> cbc_mac(const BlockCipher& cipher,
                                  std::span<const std::uint8_t> data);

struct AeadResult {
  std::vector<std::uint8_t> ciphertext;
  std::vector<std::uint8_t> tag;
};

/// Encrypt-then-MAC with a single cipher instance per direction: CTR for
/// confidentiality, CMAC over nonce || ciphertext for integrity.
AeadResult encrypt_then_mac(const BlockCipher& enc_cipher,
                            const BlockCipher& mac_cipher,
                            std::span<const std::uint8_t> nonce,
                            std::span<const std::uint8_t> plaintext);

/// Returns the plaintext, or an empty optional-like flag via bool: on tag
/// mismatch the plaintext is not released.
bool decrypt_then_verify(const BlockCipher& enc_cipher,
                         const BlockCipher& mac_cipher,
                         std::span<const std::uint8_t> nonce,
                         std::span<const std::uint8_t> ciphertext,
                         std::span<const std::uint8_t> tag,
                         std::vector<std::uint8_t>& plaintext_out);

}  // namespace medsec::ciphers
