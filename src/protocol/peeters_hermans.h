// peeters_hermans.h — the Peeters–Hermans wide-forward-insider private
// identification protocol (the paper's Figure 2).
//
//   Tag state:    x (secret), Y = y·P (reader's public key)
//   Reader state: y (secret), DB = { X_i = x_i·P }
//
//   T -> R : R_c = r·P                      r in Z*_l
//   R -> T : e                              e in Z*_l
//   T -> R : s = d + x + e·r mod l,         d = xcoord(r·Y) as a scalar
//   R:       d' = xcoord(y·R_c);  X^ = s·P - d'·P - e·R_c;  X^ in DB?
//
// Correctness: s·P - d·P - e·r·P = x·P = X. Privacy: without y the
// blinding term d = xcoord(r·Y) is indistinguishable from random, so s
// reveals nothing that links the session to X — unlike Schnorr, where
// s·P - e·X = R_c is publicly checkable.
//
// The tag's workload is the paper's §4 accounting: **two point
// multiplications and one modular multiplication**.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ecc/curve.h"
#include "protocol/energy_ledger.h"
#include "protocol/session.h"
#include "protocol/wire.h"
#include "rng/random_source.h"
#include "sidechannel/countermeasures.h"

namespace medsec::protocol {

struct PhReader {
  ecc::Scalar y;               ///< reader secret
  ecc::Point Y;                ///< reader public key (provisioned to tags)
  std::vector<ecc::Point> db;  ///< registered tag public keys X_i
};

struct PhTag {
  ecc::Scalar x;  ///< tag secret
  ecc::Point Y;   ///< reader public key copy
  std::size_t registered_index = 0;  ///< its DB slot (ground truth)
};

/// Provision a reader (fresh y, empty DB).
PhReader ph_setup_reader(const ecc::Curve& curve, rng::RandomSource& rng);

/// Register a fresh tag with the reader; appends X to the DB.
PhTag ph_register_tag(const ecc::Curve& curve, PhReader& reader,
                      rng::RandomSource& rng);

/// A passively observable session.
struct PhTranscript {
  ecc::Point commitment;  ///< R_c
  ecc::Scalar challenge;  ///< e
  ecc::Scalar response;   ///< s
};

struct PhSessionResult {
  bool identified = false;
  std::optional<std::size_t> identity;  ///< DB index the reader resolved
  PhTranscript view;
  Transcript transcript;
  EnergyLedger tag_ledger;
};

/// Tag half of the protocol: produce R_c, then s for a given challenge.
/// Exposed separately so the privacy game can play adversarial reader.
struct PhTagSession {
  ecc::Scalar r;
  ecc::Point commitment;
};
/// `hardened` (optional, both functions): route the tag's two point
/// multiplications through the countermeasure engine instead of the
/// comb / RPC ladder (defense-evaluation wiring).
PhTagSession ph_tag_commit(const ecc::Curve& curve, const PhTag& tag,
                           rng::RandomSource& rng, EnergyLedger& ledger,
                           sidechannel::HardenedLadder* hardened = nullptr);
ecc::Scalar ph_tag_respond(const ecc::Curve& curve, const PhTag& tag,
                           const PhTagSession& session,
                           const ecc::Scalar& challenge,
                           rng::RandomSource& rng, EnergyLedger& ledger,
                           sidechannel::HardenedLadder* hardened = nullptr);

/// Reader half: resolve a transcript against the DB. The candidate
/// X^ = (s − d')·P − e·R_c comes out of one interleaved double-scalar
/// multiplication (Shamir's trick) instead of two comb multiplications,
/// one double-and-add and two additions.
std::optional<std::size_t> ph_reader_identify(const ecc::Curve& curve,
                                              const PhReader& reader,
                                              const PhTranscript& t);

/// Tag-side state machine: start() -> R_c, on_message(e) -> s, kDone.
/// Thin resumable shell over ph_tag_commit / ph_tag_respond (which stay
/// public: the privacy game drives them directly as adversarial reader).
/// Copies the tag's credentials: a suspended machine may outlive the
/// statement that created it.
class PhTagMachine final : public SessionMachine {
 public:
  PhTagMachine(const ecc::Curve& curve, PhTag tag, rng::RandomSource& rng,
               sidechannel::HardenedLadder* hardened = nullptr);
  StepResult start() override;
  StepResult on_message(const Message& m) override;
  void snapshot(SnapshotWriter& w) const override;
  void restore(SnapshotReader& r) override;
  const EnergyLedger& ledger() const { return ledger_; }

 private:
  const ecc::Curve* curve_;
  PhTag tag_;
  rng::RandomSource* rng_;
  sidechannel::HardenedLadder* hardened_;
  PhTagSession session_;
  bool committed_ = false;
  EnergyLedger ledger_;
};

/// Reader-side state machine: on_message(R_c) -> e, on_message(s) ->
/// identify against the DB, kDone (identity() may still be nullopt — an
/// unidentified tag completes the protocol but resolves to nothing).
/// The reader (with its whole key DB) is held by reference and must
/// outlive the machine — it is the long-lived server-side state.
class PhReaderMachine final : public SessionMachine {
 public:
  PhReaderMachine(const ecc::Curve& curve, const PhReader& reader,
                  rng::RandomSource& rng);
  StepResult on_message(const Message& m) override;
  void snapshot(SnapshotWriter& w) const override;
  void restore(SnapshotReader& r) override;
  const std::optional<std::size_t>& identity() const { return identity_; }
  const PhTranscript& view() const { return view_; }

 private:
  const ecc::Curve* curve_;
  const PhReader* reader_;
  rng::RandomSource* rng_;
  bool have_commitment_ = false;
  std::optional<std::size_t> identity_;
  PhTranscript view_;
};

/// Full honest session — a thin driver over the two machines above.
PhSessionResult run_ph_session(const ecc::Curve& curve, const PhTag& tag,
                               const PhReader& reader,
                               rng::RandomSource& rng);

}  // namespace medsec::protocol
