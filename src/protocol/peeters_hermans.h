// peeters_hermans.h — the Peeters–Hermans wide-forward-insider private
// identification protocol (the paper's Figure 2).
//
//   Tag state:    x (secret), Y = y·P (reader's public key)
//   Reader state: y (secret), DB = { X_i = x_i·P }
//
//   T -> R : R_c = r·P                      r in Z*_l
//   R -> T : e                              e in Z*_l
//   T -> R : s = d + x + e·r mod l,         d = xcoord(r·Y) as a scalar
//   R:       d' = xcoord(y·R_c);  X^ = s·P - d'·P - e·R_c;  X^ in DB?
//
// Correctness: s·P - d·P - e·r·P = x·P = X. Privacy: without y the
// blinding term d = xcoord(r·Y) is indistinguishable from random, so s
// reveals nothing that links the session to X — unlike Schnorr, where
// s·P - e·X = R_c is publicly checkable.
//
// The tag's workload is the paper's §4 accounting: **two point
// multiplications and one modular multiplication**.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ecc/curve.h"
#include "protocol/energy_ledger.h"
#include "protocol/wire.h"
#include "rng/random_source.h"

namespace medsec::protocol {

struct PhReader {
  ecc::Scalar y;               ///< reader secret
  ecc::Point Y;                ///< reader public key (provisioned to tags)
  std::vector<ecc::Point> db;  ///< registered tag public keys X_i
};

struct PhTag {
  ecc::Scalar x;  ///< tag secret
  ecc::Point Y;   ///< reader public key copy
  std::size_t registered_index = 0;  ///< its DB slot (ground truth)
};

/// Provision a reader (fresh y, empty DB).
PhReader ph_setup_reader(const ecc::Curve& curve, rng::RandomSource& rng);

/// Register a fresh tag with the reader; appends X to the DB.
PhTag ph_register_tag(const ecc::Curve& curve, PhReader& reader,
                      rng::RandomSource& rng);

/// A passively observable session.
struct PhTranscript {
  ecc::Point commitment;  ///< R_c
  ecc::Scalar challenge;  ///< e
  ecc::Scalar response;   ///< s
};

struct PhSessionResult {
  bool identified = false;
  std::optional<std::size_t> identity;  ///< DB index the reader resolved
  PhTranscript view;
  Transcript transcript;
  EnergyLedger tag_ledger;
};

/// Tag half of the protocol: produce R_c, then s for a given challenge.
/// Exposed separately so the privacy game can play adversarial reader.
struct PhTagSession {
  ecc::Scalar r;
  ecc::Point commitment;
};
PhTagSession ph_tag_commit(const ecc::Curve& curve, const PhTag& tag,
                           rng::RandomSource& rng, EnergyLedger& ledger);
ecc::Scalar ph_tag_respond(const ecc::Curve& curve, const PhTag& tag,
                           const PhTagSession& session,
                           const ecc::Scalar& challenge,
                           rng::RandomSource& rng, EnergyLedger& ledger);

/// Reader half: resolve a transcript against the DB.
std::optional<std::size_t> ph_reader_identify(const ecc::Curve& curve,
                                              const PhReader& reader,
                                              const PhTranscript& t);

/// Full honest session.
PhSessionResult run_ph_session(const ecc::Curve& curve, const PhTag& tag,
                               const PhReader& reader,
                               rng::RandomSource& rng);

}  // namespace medsec::protocol
