#include "protocol/session.h"

#include <deque>

#include "protocol/snapshot.h"

namespace medsec::protocol {

namespace {
/// Snapshot framing for the base machine state: magic + version, so a
/// stream of the wrong kind (or from a future incompatible layout) fails
/// loudly in restore() instead of misparsing.
constexpr std::uint32_t kSnapshotMagic = 0x4d534d31;  // "MSM1"
}  // namespace

void SessionMachine::snapshot(SnapshotWriter& w) const {
  w.u32(kSnapshotMagic);
  w.u8(static_cast<std::uint8_t>(state_));
}

void SessionMachine::restore(SnapshotReader& r) {
  if (r.u32() != kSnapshotMagic) throw SnapshotError("bad magic");
  const std::uint8_t s = r.u8();
  if (s > static_cast<std::uint8_t>(SessionState::kFailed))
    throw SnapshotError("bad session state");
  state_ = static_cast<SessionState>(s);
}

bool drive_session(SessionMachine& tag, SessionMachine& reader,
                   Transcript& transcript, const SessionTap& tap) {
  struct InFlight {
    bool from_tag;
    Message msg;
  };
  std::deque<InFlight> air;

  const auto enqueue = [&air](bool from_tag, std::vector<Message> msgs) {
    for (auto& m : msgs) air.push_back(InFlight{from_tag, std::move(m)});
  };

  enqueue(true, tag.start().out);
  enqueue(false, reader.start().out);

  while (!air.empty()) {
    InFlight f = std::move(air.front());
    air.pop_front();
    if (f.from_tag && tap.tag_to_reader) tap.tag_to_reader(f.msg);
    if (!f.from_tag && tap.reader_to_tag) tap.reader_to_tag(f.msg);
    const auto& fate_hook =
        f.from_tag ? tap.tag_to_reader_fate : tap.reader_to_tag_fate;
    const TapFate fate = fate_hook ? fate_hook(f.msg) : TapFate::kDeliver;
    if (fate == TapFate::kDrop) continue;  // lost on the air

    SessionMachine& dst = f.from_tag ? reader : tag;
    auto& lane = f.from_tag ? transcript.tag_to_reader
                            : transcript.reader_to_tag;
    const int copies = fate == TapFate::kDuplicate ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      lane.push_back(f.msg);
      if (dst.state() != SessionState::kAwait) continue;  // dead endpoint
      enqueue(!f.from_tag, dst.on_message(f.msg).out);
    }
  }
  return tag.state() == SessionState::kDone &&
         reader.state() == SessionState::kDone;
}

}  // namespace medsec::protocol
