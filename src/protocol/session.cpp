#include "protocol/session.h"

#include <deque>

namespace medsec::protocol {

bool drive_session(SessionMachine& tag, SessionMachine& reader,
                   Transcript& transcript, const SessionTap& tap) {
  struct InFlight {
    bool from_tag;
    Message msg;
  };
  std::deque<InFlight> air;

  const auto enqueue = [&air](bool from_tag, std::vector<Message> msgs) {
    for (auto& m : msgs) air.push_back(InFlight{from_tag, std::move(m)});
  };

  enqueue(true, tag.start().out);
  enqueue(false, reader.start().out);

  while (!air.empty()) {
    InFlight f = std::move(air.front());
    air.pop_front();
    if (f.from_tag && tap.tag_to_reader) tap.tag_to_reader(f.msg);
    if (!f.from_tag && tap.reader_to_tag) tap.reader_to_tag(f.msg);

    SessionMachine& dst = f.from_tag ? reader : tag;
    auto& lane = f.from_tag ? transcript.tag_to_reader
                            : transcript.reader_to_tag;
    lane.push_back(f.msg);
    if (dst.state() != SessionState::kAwait) continue;  // dead endpoint
    enqueue(!f.from_tag, dst.on_message(f.msg).out);
  }
  return tag.state() == SessionState::kDone &&
         reader.state() == SessionState::kDone;
}

}  // namespace medsec::protocol
