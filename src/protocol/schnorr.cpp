#include "protocol/schnorr.h"

#include "ecc/ladder.h"
#include "ecc/scalar_mult.h"

namespace medsec::protocol {

namespace {
using ecc::Curve;
using ecc::Point;
using ecc::Scalar;

/// Tag-side point multiplication: the constant-time ladder with RPC, as
/// the modeled device would run it.
Point tag_pm(const Curve& c, const Scalar& k, const Point& p,
             rng::RandomSource& rng, EnergyLedger& ledger) {
  ecc::MultOptions opt;
  opt.algorithm = ecc::MultAlgorithm::kLadderRpc;
  opt.rng = &rng;
  ++ledger.ecpm;
  ledger.rng_bits += 2 * 163;  // Z-randomizers
  return ecc::scalar_mult(c, k, p, opt);
}
}  // namespace

SchnorrKeyPair schnorr_keygen(const Curve& curve, rng::RandomSource& rng) {
  SchnorrKeyPair kp;
  kp.x = rng.uniform_nonzero(curve.order());
  kp.X = curve.scalar_mult_reference(kp.x, curve.base_point());
  return kp;
}

SchnorrSessionResult run_schnorr_session(const Curve& curve,
                                         const SchnorrKeyPair& key,
                                         rng::RandomSource& rng) {
  SchnorrSessionResult out;
  const auto& ring = curve.scalar_ring();

  // T: commitment.
  const Scalar r = rng.uniform_nonzero(curve.order());
  out.tag_ledger.rng_bits += 163;
  const Point rc = tag_pm(curve, r, curve.base_point(), rng, out.tag_ledger);
  out.transcript.tag_to_reader.push_back(
      Message{"commitment R", encode_point(curve, rc)});

  // R: challenge.
  const Scalar e = rng.uniform_nonzero(curve.order());
  out.transcript.reader_to_tag.push_back(
      Message{"challenge e", encode_scalar(e)});

  // T: response s = r + e*x mod l.
  const Scalar s = ring.add(r, ring.mul(e, key.x));
  ++out.tag_ledger.modmul;
  ++out.tag_ledger.modadd;
  out.transcript.tag_to_reader.push_back(
      Message{"response s", encode_scalar(s)});

  out.tag_ledger.tx_bits = out.transcript.tag_tx_bits();
  out.tag_ledger.rx_bits = out.transcript.tag_rx_bits();
  out.view = SchnorrTranscript{rc, e, s};
  out.accepted = schnorr_verify(curve, key.X, out.view);
  return out;
}

bool schnorr_verify(const Curve& curve, const Point& X,
                    const SchnorrTranscript& t) {
  if (t.commitment.infinity) return false;
  if (!curve.validate_subgroup_point(t.commitment)) return false;
  // s*P == R + e*X  (reader side: energy-rich, plain arithmetic).
  const Point lhs =
      curve.scalar_mult_reference(t.response, curve.base_point());
  const Point rhs =
      curve.add(t.commitment, curve.scalar_mult_reference(t.challenge, X));
  return lhs == rhs;
}

}  // namespace medsec::protocol
