#include "protocol/schnorr.h"

#include <utility>

#include "ecc/fixed_base.h"
#include "ecc/scalar_mult.h"
#include "protocol/snapshot.h"

namespace medsec::protocol {

namespace {
using ecc::Curve;
using ecc::Point;
using ecc::Scalar;

/// s·P − e·X == R_c, assuming R_c was already validated. One interleaved
/// double-scalar multiplication.
bool verify_equation(const Curve& curve, const Point& X,
                     const SchnorrTranscript& t) {
  const Point lhs = ecc::double_scalar_mult(
      curve, t.response, curve.base_point(),
      curve.scalar_ring().neg(t.challenge), X);
  return lhs == t.commitment;
}
}  // namespace

SchnorrKeyPair schnorr_keygen(const Curve& curve, rng::RandomSource& rng) {
  SchnorrKeyPair kp;
  kp.x = rng.uniform_nonzero(curve.order());
  kp.X = ecc::generator_comb(curve).mult_ct(kp.x);
  return kp;
}

// --- prover machine ----------------------------------------------------------

SchnorrProver::SchnorrProver(const Curve& curve, SchnorrKeyPair key,
                             rng::RandomSource& rng,
                             sidechannel::HardenedLadder* hardened)
    : curve_(&curve), key_(std::move(key)), rng_(&rng), hardened_(hardened) {}

StepResult SchnorrProver::start() {
  // T: commitment — a generator multiplication, so the tag runs the
  // fixed-base comb with its key-independent double+add schedule and
  // masked table scan instead of the general-point ladder — unless a
  // countermeasure engine is installed, in which case the hardened
  // ladder carries the multiplication (defense-evaluation wiring).
  r_ = rng_->uniform_nonzero(curve_->order());
  ledger_.rng_bits += 163;
  if (hardened_) ledger_.rng_bits += hardened_->rng_bits_per_mult();
  ++ledger_.ecpm;
  const Point rc = hardened_
                       ? hardened_->mult(r_, curve_->base_point(), *rng_)
                       : ecc::generator_comb(*curve_).mult_ct(r_);
  if (hardened_ && hardened_->last_mult_provisioned_pair()) {
    // Base-blinding pair provisioning: two hidden ladders + a scalar draw.
    ledger_.ecpm += 2;
    ledger_.rng_bits += 163;
  }
  committed_ = true;
  Message m{"commitment R", encode_point(*curve_, rc)};
  ledger_.tx_bits += m.bits();
  return step(StepResult::wait(std::move(m)));
}

StepResult SchnorrProver::on_message(const Message& m) {
  if (!committed_ || m.payload.size() != kFeBytes)
    return step(StepResult::failed());
  ledger_.rx_bits += m.bits();
  const Scalar e = decode_scalar(m.payload);
  // T: response s = r + e*x mod l.
  const auto& ring = curve_->scalar_ring();
  const Scalar s = ring.add(r_, ring.mul(e, key_.x));
  ++ledger_.modmul;
  ++ledger_.modadd;
  Message out{"response s", encode_scalar(s)};
  ledger_.tx_bits += out.bits();
  return step(StepResult::done(std::move(out)));
}

void SchnorrProver::snapshot(SnapshotWriter& w) const {
  SessionMachine::snapshot(w);
  w.scalar(r_);
  w.boolean(committed_);
  w.ledger(ledger_);
}

void SchnorrProver::restore(SnapshotReader& r) {
  SessionMachine::restore(r);
  r_ = r.scalar();
  committed_ = r.boolean();
  r.ledger(ledger_);
}

// --- verifier machine --------------------------------------------------------

SchnorrVerifier::SchnorrVerifier(const Curve& curve, Point X,
                                 rng::RandomSource& rng, Mode mode)
    : curve_(&curve), X_(std::move(X)), rng_(&rng), mode_(mode) {}

StepResult SchnorrVerifier::on_message(const Message& m) {
  if (!have_commitment_) {
    have_commitment_ = true;
    commitment_wire_ = m.payload;
    if (mode_ == Mode::kInline) {
      // Trust boundary: decode + validate the commitment now. Deferred
      // mode leaves both to the batch verifier, which amortizes the
      // decompression inversions across the whole batch.
      const auto p = decode_point(*curve_, m.payload);
      if (!p) return step(StepResult::failed());
      view_.commitment = *p;
    }
    view_.challenge = rng_->uniform_nonzero(curve_->order());
    return step(StepResult::wait(
        Message{"challenge e", encode_scalar(view_.challenge)}));
  }
  if (m.payload.size() != kFeBytes) return step(StepResult::failed());
  view_.response = decode_scalar(m.payload);
  if (mode_ == Mode::kInline) {
    accepted_ = verify_equation(*curve_, X_, view_);
    return step(accepted_ ? StepResult::done() : StepResult::failed());
  }
  return step(StepResult::done());  // acceptance decided by the batch queue
}

void SchnorrVerifier::snapshot(SnapshotWriter& w) const {
  SessionMachine::snapshot(w);
  w.boolean(have_commitment_);
  w.boolean(accepted_);
  w.bytes(commitment_wire_);
  w.point(view_.commitment);
  w.scalar(view_.challenge);
  w.scalar(view_.response);
}

void SchnorrVerifier::restore(SnapshotReader& r) {
  SessionMachine::restore(r);
  have_commitment_ = r.boolean();
  accepted_ = r.boolean();
  commitment_wire_ = r.bytes();
  view_.commitment = r.point();
  view_.challenge = r.scalar();
  view_.response = r.scalar();
}

// --- drivers -----------------------------------------------------------------

SchnorrSessionResult run_schnorr_session(const Curve& curve,
                                         const SchnorrKeyPair& key,
                                         rng::RandomSource& rng) {
  SchnorrSessionResult out;
  SchnorrProver prover(curve, key, rng);
  SchnorrVerifier verifier(curve, key.X, rng);
  drive_session(prover, verifier, out.transcript);
  out.tag_ledger = prover.ledger();
  out.view = verifier.view();
  out.accepted = verifier.accepted();
  return out;
}

bool schnorr_verify(const Curve& curve, const Point& X,
                    const SchnorrTranscript& t) {
  if (t.commitment.infinity) return false;
  if (!curve.validate_subgroup_point(t.commitment)) return false;
  return verify_equation(curve, X, t);
}

}  // namespace medsec::protocol
