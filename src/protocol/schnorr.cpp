#include "protocol/schnorr.h"

#include "ecc/fixed_base.h"

namespace medsec::protocol {

namespace {
using ecc::Curve;
using ecc::Point;
using ecc::Scalar;
}  // namespace

SchnorrKeyPair schnorr_keygen(const Curve& curve, rng::RandomSource& rng) {
  SchnorrKeyPair kp;
  kp.x = rng.uniform_nonzero(curve.order());
  kp.X = ecc::generator_comb(curve).mult_ct(kp.x);
  return kp;
}

SchnorrSessionResult run_schnorr_session(const Curve& curve,
                                         const SchnorrKeyPair& key,
                                         rng::RandomSource& rng) {
  SchnorrSessionResult out;
  const auto& ring = curve.scalar_ring();

  // T: commitment — a generator multiplication, so the tag runs the
  // fixed-base comb with its key-independent double+add schedule and
  // masked table scan instead of the general-point ladder.
  const Scalar r = rng.uniform_nonzero(curve.order());
  out.tag_ledger.rng_bits += 163;
  ++out.tag_ledger.ecpm;
  const Point rc = ecc::generator_comb(curve).mult_ct(r);
  out.transcript.tag_to_reader.push_back(
      Message{"commitment R", encode_point(curve, rc)});

  // R: challenge.
  const Scalar e = rng.uniform_nonzero(curve.order());
  out.transcript.reader_to_tag.push_back(
      Message{"challenge e", encode_scalar(e)});

  // T: response s = r + e*x mod l.
  const Scalar s = ring.add(r, ring.mul(e, key.x));
  ++out.tag_ledger.modmul;
  ++out.tag_ledger.modadd;
  out.transcript.tag_to_reader.push_back(
      Message{"response s", encode_scalar(s)});

  out.tag_ledger.tx_bits = out.transcript.tag_tx_bits();
  out.tag_ledger.rx_bits = out.transcript.tag_rx_bits();
  out.view = SchnorrTranscript{rc, e, s};
  out.accepted = schnorr_verify(curve, key.X, out.view);
  return out;
}

bool schnorr_verify(const Curve& curve, const Point& X,
                    const SchnorrTranscript& t) {
  if (t.commitment.infinity) return false;
  if (!curve.validate_subgroup_point(t.commitment)) return false;
  // s*P == R + e*X  (reader side: energy-rich, plain arithmetic — the
  // generator term goes through the comb, the arbitrary-point term through
  // projective double-and-add).
  const Point lhs = ecc::generator_comb(curve).mult(t.response);
  const Point rhs =
      curve.add(t.commitment, ecc::scalar_mult_ld(curve, t.challenge, X));
  return lhs == rhs;
}

}  // namespace medsec::protocol
