// signature.h — EC-Schnorr signatures for data authentication.
//
// §4's requirements list includes data authentication ("a modification on
// the ciphertext may also lead to a corrupted therapy"). For telemetry
// that must be verifiable by third parties (the clinic, an auditor), a
// MAC is not enough — the device needs a signature. EC-Schnorr reuses
// exactly the machinery the identification protocol already paid for
// (one point multiplication, one hash, one scalar ring), which is why a
// 2013-era device would pick it over ECDSA (no inversion on the tag).
//
//   sign(m):   r random, R = r*P, e = H(xcoord(R) || m) mod l,
//              s = r + e*x mod l; signature = (e, s)
//   verify:    R' = s*P - e*X, accept iff H(xcoord(R') || m) == e
#pragma once

#include <span>

#include "ecc/curve.h"
#include "protocol/energy_ledger.h"
#include "rng/random_source.h"

namespace medsec::protocol {

struct SignatureKeyPair {
  ecc::Scalar x;  ///< secret
  ecc::Point X;   ///< public: x*P
};

struct Signature {
  ecc::Scalar e;
  ecc::Scalar s;
};

SignatureKeyPair signature_keygen(const ecc::Curve& curve,
                                  rng::RandomSource& rng);

/// Device-side signing (constant-time ladder + RPC for r*P). The ledger,
/// if given, is charged 1 ECPM + 1 modmul + hash blocks.
Signature ec_schnorr_sign(const ecc::Curve& curve,
                          const SignatureKeyPair& key,
                          std::span<const std::uint8_t> message,
                          rng::RandomSource& rng,
                          EnergyLedger* ledger = nullptr);

/// Verifier side (energy-rich, plain arithmetic).
bool ec_schnorr_verify(const ecc::Curve& curve, const ecc::Point& X,
                       std::span<const std::uint8_t> message,
                       const Signature& sig);

}  // namespace medsec::protocol
