#include "protocol/privacy_game.h"

#include "ecc/scalar_mult.h"
#include "protocol/peeters_hermans.h"
#include "protocol/schnorr.h"
#include "rng/xoshiro.h"

namespace medsec::protocol {

namespace {
using ecc::Curve;
using ecc::Point;
using ecc::Scalar;
}  // namespace

const char* game_protocol_name(GameProtocol p) {
  return p == GameProtocol::kSchnorr ? "Schnorr" : "Peeters-Hermans";
}

PrivacyGameResult run_privacy_game(const Curve& curve, GameProtocol protocol,
                                   std::size_t trials, std::uint64_t seed) {
  rng::Xoshiro256 rng(seed);
  PrivacyGameResult res;
  res.trials = trials;

  if (protocol == GameProtocol::kSchnorr) {
    const SchnorrKeyPair t0 = schnorr_keygen(curve, rng);
    const SchnorrKeyPair t1 = schnorr_keygen(curve, rng);
    for (std::size_t i = 0; i < trials; ++i) {
      const int b = static_cast<int>(rng.next_u64() & 1);
      const auto session =
          run_schnorr_session(curve, b ? t1 : t0, rng);
      // Adversary: run the tracing test against both known public keys.
      const bool links0 = schnorr_links(curve, t0.X, session.view);
      const bool links1 = schnorr_links(curve, t1.X, session.view);
      int guess;
      if (links0 != links1) {
        ++res.tracing_test_fired;
        guess = links1 ? 1 : 0;
      } else {
        guess = static_cast<int>(rng.next_u64() & 1);
      }
      if (guess == b) ++res.correct_guesses;
    }
  } else {
    PhReader reader = ph_setup_reader(curve, rng);
    const PhTag t0 = ph_register_tag(curve, reader, rng);
    const PhTag t1 = ph_register_tag(curve, reader, rng);
    for (std::size_t i = 0; i < trials; ++i) {
      const int b = static_cast<int>(rng.next_u64() & 1);
      const PhTag& tag = b ? t1 : t0;

      // The adversary plays reader (it does NOT know y).
      EnergyLedger ledger;
      const PhTagSession ts = ph_tag_commit(curve, tag, rng, ledger);
      const Scalar e = rng.uniform_nonzero(curve.order());
      const Scalar s = ph_tag_respond(curve, tag, ts, e, rng, ledger);

      // Same tracing test as against Schnorr: X^? = s·P - e·R_c (one
      // interleaved double-scalar multiplication), compared with the known
      // public keys. The blinding term d·P makes the comparison fail for
      // both candidates.
      const Point candidate = ecc::double_scalar_mult(
          curve, s, curve.base_point(), curve.scalar_ring().neg(e),
          ts.commitment);
      const bool links0 = candidate == reader.db[0];
      const bool links1 = candidate == reader.db[1];
      int guess;
      if (links0 != links1) {
        ++res.tracing_test_fired;
        guess = links1 ? 1 : 0;
      } else {
        guess = static_cast<int>(rng.next_u64() & 1);
      }
      if (guess == b) ++res.correct_guesses;
    }
  }

  const double acc = trials ? static_cast<double>(res.correct_guesses) /
                                  static_cast<double>(trials)
                            : 0.0;
  res.advantage = acc > 0.5 ? 2.0 * acc - 1.0 : 0.0;
  return res;
}

}  // namespace medsec::protocol
