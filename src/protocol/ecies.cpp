#include "protocol/ecies.h"

#include <utility>

#include "ciphers/modes.h"
#include "ecc/fixed_base.h"
#include "ecc/ladder.h"
#include "hash/hmac.h"
#include "hash/sha256.h"
#include "protocol/snapshot.h"
#include "protocol/wire.h"

namespace medsec::protocol {

namespace {

using ecc::Curve;
using ecc::Point;
using ecc::Scalar;

struct DerivedKeys {
  std::vector<std::uint8_t> enc;
  std::vector<std::uint8_t> mac;
  std::vector<std::uint8_t> nonce;
};

/// (k_enc || k_mac || nonce) = HKDF(Z_x || R_x), domain-separated.
DerivedKeys kdf(const ecc::Fe& shared_x, const ecc::Fe& ephemeral_x,
                std::size_t key_bytes, std::size_t nonce_bytes) {
  std::vector<std::uint8_t> ikm = encode_fe(shared_x);
  const auto rx = encode_fe(ephemeral_x);
  ikm.insert(ikm.end(), rx.begin(), rx.end());
  static constexpr std::uint8_t kSalt[] = {'e', 'c', 'i', 'e', 's'};
  static constexpr std::uint8_t kInfo[] = {'v', '1'};
  const auto okm = hash::hkdf<hash::Sha256>(kSalt, ikm, kInfo,
                                            2 * key_bytes + nonce_bytes);
  DerivedKeys k;
  k.enc.assign(okm.begin(), okm.begin() + static_cast<long>(key_bytes));
  k.mac.assign(okm.begin() + static_cast<long>(key_bytes),
               okm.begin() + static_cast<long>(2 * key_bytes));
  k.nonce.assign(okm.begin() + static_cast<long>(2 * key_bytes), okm.end());
  return k;
}

}  // namespace

std::size_t EciesCiphertext::wire_bits(const Curve& curve) const {
  return 8 * (encode_point(curve, ephemeral).size() + nonce.size() +
              body.size() + tag.size());
}

EciesKeyPair ecies_keygen(const Curve& curve, rng::RandomSource& rng) {
  EciesKeyPair kp;
  kp.y = rng.uniform_nonzero(curve.order());
  kp.Y = ecc::generator_comb(curve).mult_ct(kp.y);
  return kp;
}

EciesCiphertext ecies_encrypt(const Curve& curve, const Point& Y,
                              std::span<const std::uint8_t> plaintext,
                              const CipherFactory& make_cipher,
                              std::size_t key_bytes, rng::RandomSource& rng,
                              EnergyLedger* ledger,
                              sidechannel::HardenedLadder* hardened) {
  if (!curve.validate_subgroup_point(Y))
    throw std::invalid_argument("ecies_encrypt: invalid recipient key");

  // Ephemeral point R = r·P on the fixed-base comb (constant schedule,
  // masked table scan); shared secret Z = r·Y on the RPC ladder, whose
  // output conversion shares one joint inversion across its two
  // denominators (Montgomery's trick inside recover_from_ladder). With a
  // countermeasure engine installed, both multiplications ride the
  // hardened ladder instead.
  ecc::LadderOptions lo;
  lo.randomize_z = true;
  lo.rng = &rng;
  const ecc::FixedBaseComb& comb = ecc::generator_comb(curve);
  Point R, Z;
  Scalar r;
  do {
    r = rng.uniform_nonzero(curve.order());
    // Scalar draw + the per-mult countermeasure draws: the comb consumes
    // none, the plain RPC ladder two randomizers, the hardened engine
    // whatever its config says (2 mults here).
    if (ledger)
      ledger->rng_bits +=
          163 + (hardened ? 2 * hardened->rng_bits_per_mult() : 2 * 163);
    const auto charge_provisioning = [&] {
      // Base-blinding pair provisioning: two hidden ladders + a draw.
      if (ledger && hardened && hardened->last_mult_provisioned_pair()) {
        ledger->ecpm += 2;
        ledger->rng_bits += 163;
      }
    };
    R = hardened ? hardened->mult(r, curve.base_point(), rng)
                 : comb.mult_ct(r);
    charge_provisioning();
    if (ledger) ++ledger->ecpm;
    Z = hardened ? hardened->mult(r, Y, rng)
                 : ecc::montgomery_ladder(curve, r, Y, lo);
    charge_provisioning();
    if (ledger) ++ledger->ecpm;
  } while (R.infinity || Z.infinity);

  const auto probe = make_cipher(std::vector<std::uint8_t>(key_bytes, 0));
  const std::size_t bb = probe->block_bytes();
  const std::size_t nonce_bytes = cipher_nonce_bytes(bb);
  const DerivedKeys keys = kdf(Z.x, R.x, key_bytes, nonce_bytes);

  const auto enc = make_cipher(keys.enc);
  const auto mac = make_cipher(keys.mac);
  const auto sealed = ciphers::encrypt_then_mac(*enc, *mac, keys.nonce,
                                                plaintext);
  if (ledger)
    ledger->cipher_blocks += (plaintext.size() + bb - 1) / bb + 1 +
                             (keys.nonce.size() + plaintext.size() + bb - 1) /
                                 bb + 1;

  EciesCiphertext out;
  out.ephemeral = R;
  out.nonce = keys.nonce;
  out.body = sealed.ciphertext;
  out.tag = sealed.tag;
  if (ledger) ledger->tx_bits += out.wire_bits(curve);
  return out;
}

std::vector<std::uint8_t> encode_ecies(const Curve& curve,
                                       const EciesCiphertext& ct) {
  std::vector<std::uint8_t> out = encode_point(curve, ct.ephemeral);
  out.insert(out.end(), ct.nonce.begin(), ct.nonce.end());
  out.insert(out.end(), ct.body.begin(), ct.body.end());
  out.insert(out.end(), ct.tag.begin(), ct.tag.end());
  return out;
}

std::optional<EciesCiphertext> decode_ecies(
    const Curve& curve, const std::vector<std::uint8_t>& bytes,
    std::size_t nonce_bytes, std::size_t tag_bytes) {
  constexpr std::size_t kPointBytes = 1 + kFeBytes;
  if (bytes.size() < kPointBytes + nonce_bytes + tag_bytes)
    return std::nullopt;
  const auto p = decode_point(
      curve, {bytes.begin(), bytes.begin() + kPointBytes});
  if (!p) return std::nullopt;
  EciesCiphertext ct;
  ct.ephemeral = *p;
  auto it = bytes.begin() + kPointBytes;
  ct.nonce.assign(it, it + static_cast<std::ptrdiff_t>(nonce_bytes));
  it += static_cast<std::ptrdiff_t>(nonce_bytes);
  ct.body.assign(it, bytes.end() - static_cast<std::ptrdiff_t>(tag_bytes));
  ct.tag.assign(bytes.end() - static_cast<std::ptrdiff_t>(tag_bytes),
                bytes.end());
  return ct;
}

// --- state machines ----------------------------------------------------------

EciesUploader::EciesUploader(const Curve& curve, Point recipient,
                             std::span<const std::uint8_t> telemetry,
                             const CipherFactory& make_cipher,
                             std::size_t key_bytes, rng::RandomSource& rng,
                             sidechannel::HardenedLadder* hardened)
    : curve_(&curve),
      recipient_(std::move(recipient)),
      telemetry_(telemetry.begin(), telemetry.end()),
      make_cipher_(&make_cipher),
      key_bytes_(key_bytes),
      rng_(&rng),
      hardened_(hardened) {}

StepResult EciesUploader::start() {
  const EciesCiphertext ct = ecies_encrypt(*curve_, recipient_, telemetry_,
                                           *make_cipher_, key_bytes_, *rng_,
                                           &ledger_, hardened_);
  return step(
      StepResult::done(Message{"ECIES blob", encode_ecies(*curve_, ct)}));
}

StepResult EciesUploader::on_message(const Message&) {
  return step(StepResult::failed());  // nothing ever flows device-ward
}

void EciesUploader::snapshot(SnapshotWriter& w) const {
  SessionMachine::snapshot(w);
  w.ledger(ledger_);
}

void EciesUploader::restore(SnapshotReader& r) {
  SessionMachine::restore(r);
  r.ledger(ledger_);
}

EciesReceiver::EciesReceiver(const Curve& curve, const Scalar& y,
                             const CipherFactory& make_cipher,
                             std::size_t key_bytes)
    : curve_(&curve),
      y_(y),
      make_cipher_(&make_cipher),
      key_bytes_(key_bytes) {}

StepResult EciesReceiver::on_message(const Message& m) {
  const auto probe =
      (*make_cipher_)(std::vector<std::uint8_t>(key_bytes_, 0));
  const std::size_t bb = probe->block_bytes();
  const std::size_t nonce_bytes = cipher_nonce_bytes(bb);
  const auto ct = decode_ecies(*curve_, m.payload, nonce_bytes, bb);
  if (!ct) return step(StepResult::failed());
  plaintext_ = ecies_decrypt(*curve_, y_, *ct, *make_cipher_, key_bytes_);
  return step(plaintext_ ? StepResult::done() : StepResult::failed());
}

void EciesReceiver::snapshot(SnapshotWriter& w) const {
  SessionMachine::snapshot(w);
  w.boolean(plaintext_.has_value());
  if (plaintext_) w.bytes(*plaintext_);
}

void EciesReceiver::restore(SnapshotReader& r) {
  SessionMachine::restore(r);
  if (r.boolean())
    plaintext_ = r.bytes();
  else
    plaintext_.reset();
}

EciesUploadResult run_ecies_upload(const Curve& curve,
                                   const EciesKeyPair& recipient,
                                   std::span<const std::uint8_t> telemetry,
                                   const CipherFactory& make_cipher,
                                   std::size_t key_bytes,
                                   rng::RandomSource& rng) {
  EciesUploadResult out;
  EciesUploader device(curve, recipient.Y, telemetry, make_cipher, key_bytes,
                       rng);
  EciesReceiver clinic(curve, recipient.y, make_cipher, key_bytes);
  out.delivered = drive_session(device, clinic, out.transcript);
  if (out.delivered) out.plaintext = clinic.plaintext();
  out.tag_ledger = device.ledger();
  return out;
}

std::optional<std::vector<std::uint8_t>> ecies_decrypt(
    const Curve& curve, const Scalar& y, const EciesCiphertext& ct,
    const CipherFactory& make_cipher, std::size_t key_bytes) {
  // Invalid-curve gate: the ephemeral point is attacker-controlled.
  if (!curve.validate_subgroup_point(ct.ephemeral)) return std::nullopt;
  const Point Z = ecc::scalar_mult_ld(curve, y, ct.ephemeral);
  if (Z.infinity) return std::nullopt;

  const auto probe = make_cipher(std::vector<std::uint8_t>(key_bytes, 0));
  const std::size_t bb = probe->block_bytes();
  const std::size_t nonce_bytes = cipher_nonce_bytes(bb);
  const DerivedKeys keys = kdf(Z.x, ct.ephemeral.x, key_bytes, nonce_bytes);
  if (keys.nonce != ct.nonce) return std::nullopt;  // transcript binding

  const auto enc = make_cipher(keys.enc);
  const auto mac = make_cipher(keys.mac);
  std::vector<std::uint8_t> plain;
  if (!ciphers::decrypt_then_verify(*enc, *mac, ct.nonce, ct.body, ct.tag,
                                    plain))
    return std::nullopt;
  return plain;
}

}  // namespace medsec::protocol
