// session.h — resumable, message-driven protocol session state machines.
//
// Every protocol in this directory used to execute both endpoints inline
// inside a blocking run_* function — fine for reproducing §4's energy
// tables, useless for serving many devices at once. Each endpoint is now a
// SessionMachine: it is kicked off with start(), fed the peer's wire
// messages one at a time through on_message(), and hands back the messages
// it wants transmitted plus its new state. Machines own their per-session
// state (nonces, ledgers, half-built transcripts), so thousands of them can
// be suspended mid-protocol and resumed on any thread — the substrate the
// engine/ layer multiplexes over a worker pool.
//
// The historical run_* entry points survive unchanged as thin drivers
// (drive_session) pumping a tag machine against a reader machine in one
// call, so the §4 energy-accounting benches and tests keep their exact
// behavior.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "protocol/wire.h"

namespace medsec::protocol {

enum class SessionState {
  kAwait,   ///< healthy, waiting for the peer's next message
  kDone,    ///< this endpoint finished its role successfully
  kFailed,  ///< aborted: malformed message, failed check, or protocol error
};

/// Outcome of one state-machine step: the endpoint's new state plus any
/// messages it wants on the air.
struct StepResult {
  SessionState state = SessionState::kAwait;
  std::vector<Message> out;

  static StepResult wait() { return {}; }
  static StepResult wait(Message m) {
    StepResult r;
    r.out.push_back(std::move(m));
    return r;
  }
  static StepResult done() { return {SessionState::kDone, {}}; }
  static StepResult done(Message m) {
    StepResult r;
    r.state = SessionState::kDone;
    r.out.push_back(std::move(m));
    return r;
  }
  static StepResult failed() { return {SessionState::kFailed, {}}; }
};

class SnapshotWriter;
class SnapshotReader;

/// One protocol endpoint as a resumable state machine.
class SessionMachine {
 public:
  virtual ~SessionMachine() = default;

  /// Messages this endpoint sends before hearing anything. Responder-role
  /// machines return wait() (the default).
  virtual StepResult start() { return StepResult::wait(); }

  /// Deliver one peer message. Must only be called while state() is
  /// kAwait; a finished or failed machine has nothing more to say.
  virtual StepResult on_message(const Message& m) = 0;

  SessionState state() const { return state_; }

  /// Serialize the machine's owned per-session state (failover support;
  /// see snapshot.h). Contract: construct a replacement machine with the
  /// SAME constructor arguments (curve, keys, rng, factories — the
  /// referenced, process-lifetime environment), call restore() on it, and
  /// the replacement is indistinguishable from the original — every
  /// subsequent on_message() yields bit-identical output. Subclasses
  /// override both, calling the base first (it carries the state flag).
  /// restore() throws SnapshotError on malformed input.
  virtual void snapshot(SnapshotWriter& w) const;
  virtual void restore(SnapshotReader& r);

 protected:
  /// Record the step's resulting state before returning it.
  StepResult step(StepResult r) {
    state_ = r.state;
    return r;
  }

 private:
  SessionState state_ = SessionState::kAwait;
};

/// What a fault-injection tap decided to do with one in-flight message.
/// kDeliver is the default; kDrop models message loss (the endpoint never
/// hears it); kDuplicate delivers the message twice back to back (radio
/// retransmission with a lost ack). Truncation and tampering are expressed
/// through the mutator hooks — resize or rewrite the payload in place.
enum class TapFate {
  kDeliver,
  kDrop,
  kDuplicate,
};

/// In-flight fault hooks (tests, benches, the privacy game's adversarial
/// reader). For each direction two hooks run — when set — on every message
/// before delivery: the mutator may rewrite the payload (tamper, truncate,
/// extend), then the fate hook decides whether the (possibly mutated)
/// message is delivered, dropped, or duplicated. The transcript records
/// the adversary's view: mutated payloads, duplicates twice, drops not at
/// all.
struct SessionTap {
  std::function<void(Message&)> tag_to_reader;
  std::function<void(Message&)> reader_to_tag;
  std::function<TapFate(const Message&)> tag_to_reader_fate;
  std::function<TapFate(const Message&)> reader_to_tag_fate;
};

/// Pump messages between a tag-side and a reader-side machine until both
/// settle or neither has anything left to say. Every delivered message is
/// appended to `transcript` (post-tamper — the adversary's view of the air
/// interface). Messages addressed to a machine that already finished or
/// failed are dropped, modeling a dead endpoint. Returns true iff both
/// sides reached kDone.
bool drive_session(SessionMachine& tag, SessionMachine& reader,
                   Transcript& transcript, const SessionTap& tap = {});

}  // namespace medsec::protocol
