// ecies.h — hybrid public-key encryption (ECIES-style) for telemetry at
// rest or store-and-forward delivery.
//
// The symmetric mutual-auth channel (mutual_auth.h) needs a live
// round-trip; §2's scenario also has the opposite flow — a sensor that
// uploads encrypted readings for a recipient that is *offline* (the
// clinic's key), with no shared symmetric key provisioned. That is the
// textbook job of hybrid encryption:
//
//   encrypt(Y, m):  r random, R = r*P, Z = xcoord(r*Y),
//                   (k_enc || k_mac) = HKDF(Z || xcoord(R)),
//                   c = CTR_{k_enc}(m), t = CMAC_{k_mac}(nonce || c)
//                   output (R, c, t)
//   decrypt(y, ..): Z = xcoord(y*R), same KDF, verify-then-decrypt.
//
// On the device this costs one point multiplication more than a MAC —
// the same 5.1 uJ currency the rest of the paper trades in.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "ciphers/block_cipher.h"
#include "ecc/curve.h"
#include "protocol/energy_ledger.h"
#include "protocol/mutual_auth.h"  // CipherFactory
#include "protocol/session.h"
#include "rng/random_source.h"
#include "sidechannel/countermeasures.h"

namespace medsec::protocol {

struct EciesCiphertext {
  ecc::Point ephemeral;               ///< R = r*P
  std::vector<std::uint8_t> nonce;    ///< CTR/CMAC nonce
  std::vector<std::uint8_t> body;     ///< CTR ciphertext
  std::vector<std::uint8_t> tag;      ///< CMAC over nonce || body
  /// Encoded size on the air (compressed point + nonce + body + tag).
  std::size_t wire_bits(const ecc::Curve& curve) const;
};

struct EciesKeyPair {
  ecc::Scalar y;  ///< recipient secret
  ecc::Point Y;   ///< recipient public key
};

EciesKeyPair ecies_keygen(const ecc::Curve& curve, rng::RandomSource& rng);

/// Device-side encryption to public key Y. `key_bytes` sizes the derived
/// cipher keys (16 for AES-128 / PRESENT-128, 10 for PRESENT-80).
/// `hardened`: optional countermeasure engine carrying both encapsulation
/// point multiplications (defense-evaluation wiring).
EciesCiphertext ecies_encrypt(const ecc::Curve& curve, const ecc::Point& Y,
                              std::span<const std::uint8_t> plaintext,
                              const CipherFactory& make_cipher,
                              std::size_t key_bytes, rng::RandomSource& rng,
                              EnergyLedger* ledger = nullptr,
                              sidechannel::HardenedLadder* hardened = nullptr);

/// Recipient-side decryption. Returns nullopt on any authentication or
/// validation failure (including an invalid ephemeral point — the
/// invalid-curve gate).
std::optional<std::vector<std::uint8_t>> ecies_decrypt(
    const ecc::Curve& curve, const ecc::Scalar& y, const EciesCiphertext& ct,
    const CipherFactory& make_cipher, std::size_t key_bytes);

/// Wire encoding of a ciphertext: compressed ephemeral point || nonce ||
/// body || tag. Self-delimiting given the cipher geometry (nonce and tag
/// widths are functions of the block size), so no length fields travel.
std::vector<std::uint8_t> encode_ecies(const ecc::Curve& curve,
                                       const EciesCiphertext& ct);
std::optional<EciesCiphertext> decode_ecies(
    const ecc::Curve& curve, const std::vector<std::uint8_t>& bytes,
    std::size_t nonce_bytes, std::size_t tag_bytes);

/// Device-side store-and-forward upload as a (one-shot) session machine:
/// start() emits the whole ECIES blob as a single message and finishes.
/// Copies its per-session inputs (recipient key, telemetry); the cipher
/// factory and RNG are caller-owned and must outlive the machine.
class EciesUploader final : public SessionMachine {
 public:
  EciesUploader(const ecc::Curve& curve, ecc::Point recipient,
                std::span<const std::uint8_t> telemetry,
                const CipherFactory& make_cipher, std::size_t key_bytes,
                rng::RandomSource& rng,
                sidechannel::HardenedLadder* hardened = nullptr);
  StepResult start() override;
  StepResult on_message(const Message& m) override;
  void snapshot(SnapshotWriter& w) const override;
  void restore(SnapshotReader& r) override;
  const EnergyLedger& ledger() const { return ledger_; }

 private:
  const ecc::Curve* curve_;
  ecc::Point recipient_;
  std::vector<std::uint8_t> telemetry_;
  const CipherFactory* make_cipher_;
  std::size_t key_bytes_;
  rng::RandomSource* rng_;
  sidechannel::HardenedLadder* hardened_;
  EnergyLedger ledger_;
};

/// Recipient side: decodes and verify-then-decrypts the blob.
class EciesReceiver final : public SessionMachine {
 public:
  EciesReceiver(const ecc::Curve& curve, const ecc::Scalar& y,
                const CipherFactory& make_cipher, std::size_t key_bytes);
  StepResult on_message(const Message& m) override;
  void snapshot(SnapshotWriter& w) const override;
  void restore(SnapshotReader& r) override;
  bool delivered() const { return plaintext_.has_value(); }
  const std::vector<std::uint8_t>& plaintext() const { return *plaintext_; }

 private:
  const ecc::Curve* curve_;
  ecc::Scalar y_;
  const CipherFactory* make_cipher_;
  std::size_t key_bytes_;
  std::optional<std::vector<std::uint8_t>> plaintext_;
};

struct EciesUploadResult {
  bool delivered = false;
  std::vector<std::uint8_t> plaintext;  ///< what the recipient recovered
  Transcript transcript;
  EnergyLedger tag_ledger;
};

/// Full store-and-forward round: device encrypts to recipient.Y, the blob
/// crosses the air once, the recipient decrypts — a driver over the two
/// machines above (the ECIES analogue of the other protocols' run_*).
EciesUploadResult run_ecies_upload(const ecc::Curve& curve,
                                   const EciesKeyPair& recipient,
                                   std::span<const std::uint8_t> telemetry,
                                   const CipherFactory& make_cipher,
                                   std::size_t key_bytes,
                                   rng::RandomSource& rng);

}  // namespace medsec::protocol
