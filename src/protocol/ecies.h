// ecies.h — hybrid public-key encryption (ECIES-style) for telemetry at
// rest or store-and-forward delivery.
//
// The symmetric mutual-auth channel (mutual_auth.h) needs a live
// round-trip; §2's scenario also has the opposite flow — a sensor that
// uploads encrypted readings for a recipient that is *offline* (the
// clinic's key), with no shared symmetric key provisioned. That is the
// textbook job of hybrid encryption:
//
//   encrypt(Y, m):  r random, R = r*P, Z = xcoord(r*Y),
//                   (k_enc || k_mac) = HKDF(Z || xcoord(R)),
//                   c = CTR_{k_enc}(m), t = CMAC_{k_mac}(nonce || c)
//                   output (R, c, t)
//   decrypt(y, ..): Z = xcoord(y*R), same KDF, verify-then-decrypt.
//
// On the device this costs one point multiplication more than a MAC —
// the same 5.1 uJ currency the rest of the paper trades in.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "ciphers/block_cipher.h"
#include "ecc/curve.h"
#include "protocol/energy_ledger.h"
#include "protocol/mutual_auth.h"  // CipherFactory
#include "rng/random_source.h"

namespace medsec::protocol {

struct EciesCiphertext {
  ecc::Point ephemeral;               ///< R = r*P
  std::vector<std::uint8_t> nonce;    ///< CTR/CMAC nonce
  std::vector<std::uint8_t> body;     ///< CTR ciphertext
  std::vector<std::uint8_t> tag;      ///< CMAC over nonce || body
  /// Encoded size on the air (compressed point + nonce + body + tag).
  std::size_t wire_bits(const ecc::Curve& curve) const;
};

struct EciesKeyPair {
  ecc::Scalar y;  ///< recipient secret
  ecc::Point Y;   ///< recipient public key
};

EciesKeyPair ecies_keygen(const ecc::Curve& curve, rng::RandomSource& rng);

/// Device-side encryption to public key Y. `key_bytes` sizes the derived
/// cipher keys (16 for AES-128 / PRESENT-128, 10 for PRESENT-80).
EciesCiphertext ecies_encrypt(const ecc::Curve& curve, const ecc::Point& Y,
                              std::span<const std::uint8_t> plaintext,
                              const CipherFactory& make_cipher,
                              std::size_t key_bytes, rng::RandomSource& rng,
                              EnergyLedger* ledger = nullptr);

/// Recipient-side decryption. Returns nullopt on any authentication or
/// validation failure (including an invalid ephemeral point — the
/// invalid-curve gate).
std::optional<std::vector<std::uint8_t>> ecies_decrypt(
    const ecc::Curve& curve, const ecc::Scalar& y, const EciesCiphertext& ct,
    const CipherFactory& make_cipher, std::size_t key_bytes);

}  // namespace medsec::protocol
