// schnorr.h — Schnorr identification (the paper's traceability baseline).
//
// §4: "not all PKC-based protocols achieve strong privacy. For example,
// tags using the Schnorr identification protocol can be easily traced."
// The protocol proves knowledge of x with X = x·P:
//
//   T -> R : R_c = r·P              (commitment)
//   R -> T : e  in Z*_l             (challenge)
//   T -> R : s  = r + e·x mod l     (response)
//   R checks s·P == R_c + e·X.
//
// The traceability defect: anyone who knows a candidate public key X_i
// can test s·P - e·X_i == R_c against a passively observed transcript —
// the privacy game in privacy_game.h exploits exactly this.
#pragma once

#include "ecc/curve.h"
#include "protocol/energy_ledger.h"
#include "protocol/wire.h"
#include "rng/random_source.h"

namespace medsec::protocol {

struct SchnorrKeyPair {
  ecc::Scalar x;  ///< secret
  ecc::Point X;   ///< public: x·P
};

SchnorrKeyPair schnorr_keygen(const ecc::Curve& curve,
                              rng::RandomSource& rng);

/// A passively observable session transcript.
struct SchnorrTranscript {
  ecc::Point commitment;  ///< R_c
  ecc::Scalar challenge;  ///< e
  ecc::Scalar response;   ///< s
};

struct SchnorrSessionResult {
  bool accepted = false;
  SchnorrTranscript view;     ///< what the air interface carried
  Transcript transcript;      ///< encoded messages (for bit accounting)
  EnergyLedger tag_ledger;
};

/// Run one honest session between a tag holding `key` and a verifier that
/// knows X. The tag's point multiplications go through the constant-time
/// ladder; its scalar arithmetic through the curve's order ring.
SchnorrSessionResult run_schnorr_session(const ecc::Curve& curve,
                                         const SchnorrKeyPair& key,
                                         rng::RandomSource& rng);

/// Verifier equation (also the adversary's tracing test).
bool schnorr_verify(const ecc::Curve& curve, const ecc::Point& X,
                    const SchnorrTranscript& t);

/// The tracing test: does this transcript belong to public key X?
/// For Schnorr this is *the same equation* as verification — which is
/// precisely why the protocol is traceable.
inline bool schnorr_links(const ecc::Curve& curve, const ecc::Point& X,
                          const SchnorrTranscript& t) {
  return schnorr_verify(curve, X, t);
}

}  // namespace medsec::protocol
