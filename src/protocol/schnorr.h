// schnorr.h — Schnorr identification (the paper's traceability baseline).
//
// §4: "not all PKC-based protocols achieve strong privacy. For example,
// tags using the Schnorr identification protocol can be easily traced."
// The protocol proves knowledge of x with X = x·P:
//
//   T -> R : R_c = r·P              (commitment)
//   R -> T : e  in Z*_l             (challenge)
//   T -> R : s  = r + e·x mod l     (response)
//   R checks s·P == R_c + e·X.
//
// The traceability defect: anyone who knows a candidate public key X_i
// can test s·P - e·X_i == R_c against a passively observed transcript —
// the privacy game in privacy_game.h exploits exactly this.
#pragma once

#include <cstdint>
#include <vector>

#include "ecc/curve.h"
#include "protocol/energy_ledger.h"
#include "protocol/session.h"
#include "protocol/wire.h"
#include "rng/random_source.h"
#include "sidechannel/countermeasures.h"

namespace medsec::protocol {

struct SchnorrKeyPair {
  ecc::Scalar x;  ///< secret
  ecc::Point X;   ///< public: x·P
};

SchnorrKeyPair schnorr_keygen(const ecc::Curve& curve,
                              rng::RandomSource& rng);

/// A passively observable session transcript.
struct SchnorrTranscript {
  ecc::Point commitment;  ///< R_c
  ecc::Scalar challenge;  ///< e
  ecc::Scalar response;   ///< s
};

struct SchnorrSessionResult {
  bool accepted = false;
  SchnorrTranscript view;     ///< what the air interface carried
  Transcript transcript;      ///< encoded messages (for bit accounting)
  EnergyLedger tag_ledger;
};

/// Tag-side prover state machine:
///   start()          -> commitment R_c = r·P (fixed-base comb, ct)
///   on_message(e)    -> response s = r + e·x, kDone
///
/// Machines are resumable and may long outlive the statement that created
/// them (the engine suspends thousands across a thread pool), so they COPY
/// their small per-session inputs (keys); only the process-lifetime curve
/// and the caller-owned RNG are held by reference.
class SchnorrProver final : public SessionMachine {
 public:
  /// `hardened`: optional countermeasure engine for the commitment's
  /// point multiplication (a device under defense evaluation runs its
  /// protocol flows through the hardened ladder instead of the comb).
  /// Caller-owned, must outlive the machine; one engine per session —
  /// HardenedLadder is not thread-safe.
  SchnorrProver(const ecc::Curve& curve, SchnorrKeyPair key,
                rng::RandomSource& rng,
                sidechannel::HardenedLadder* hardened = nullptr);
  StepResult start() override;
  StepResult on_message(const Message& m) override;
  void snapshot(SnapshotWriter& w) const override;
  void restore(SnapshotReader& r) override;
  const EnergyLedger& ledger() const { return ledger_; }

 private:
  const ecc::Curve* curve_;
  SchnorrKeyPair key_;
  rng::RandomSource* rng_;
  sidechannel::HardenedLadder* hardened_;
  ecc::Scalar r_;
  bool committed_ = false;
  EnergyLedger ledger_;
};

/// Reader-side verifier state machine:
///   on_message(R_c) -> challenge e
///   on_message(s)   -> kInline: decide accepted() on the spot (one
///                      interleaved double-scalar multiplication);
///                      kDeferred: keep the transcript — with the
///                      commitment still wire-encoded — and finish without
///                      verifying, so the engine's batched verifier queue
///                      can decide acceptance for a whole batch with one
///                      multi-scalar multiplication and one shared batch
///                      inversion for the point decodings.
class SchnorrVerifier final : public SessionMachine {
 public:
  enum class Mode { kInline, kDeferred };

  SchnorrVerifier(const ecc::Curve& curve, ecc::Point X,
                  rng::RandomSource& rng, Mode mode = Mode::kInline);
  StepResult on_message(const Message& m) override;
  void snapshot(SnapshotWriter& w) const override;
  void restore(SnapshotReader& r) override;

  /// kInline only; meaningless in deferred mode.
  bool accepted() const { return accepted_; }
  /// Decoded view (kInline; the commitment point is only decoded inline).
  const SchnorrTranscript& view() const { return view_; }
  /// Raw material for deferred batch verification.
  const std::vector<std::uint8_t>& commitment_wire() const {
    return commitment_wire_;
  }
  const ecc::Scalar& challenge() const { return view_.challenge; }
  const ecc::Scalar& response() const { return view_.response; }
  const ecc::Point& public_key() const { return X_; }

 private:
  const ecc::Curve* curve_;
  ecc::Point X_;
  rng::RandomSource* rng_;
  Mode mode_;
  bool have_commitment_ = false;
  bool accepted_ = false;
  std::vector<std::uint8_t> commitment_wire_;
  SchnorrTranscript view_;
};

/// Run one honest session between a tag holding `key` and a verifier that
/// knows X — a thin driver over the two state machines above. The tag's
/// point multiplications go through the constant-time comb; its scalar
/// arithmetic through the curve's order ring.
SchnorrSessionResult run_schnorr_session(const ecc::Curve& curve,
                                         const SchnorrKeyPair& key,
                                         rng::RandomSource& rng);

/// Verifier equation (also the adversary's tracing test): checks
/// s·P − e·X == R_c with one interleaved double-scalar multiplication
/// (Shamir's trick) instead of two independent scalar multiplications
/// plus an addition.
bool schnorr_verify(const ecc::Curve& curve, const ecc::Point& X,
                    const SchnorrTranscript& t);

/// The tracing test: does this transcript belong to public key X?
/// For Schnorr this is *the same equation* as verification — which is
/// precisely why the protocol is traceable.
inline bool schnorr_links(const ecc::Curve& curve, const ecc::Point& X,
                          const SchnorrTranscript& t) {
  return schnorr_verify(curve, X, t);
}

}  // namespace medsec::protocol
