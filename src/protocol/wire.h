// wire.h — message encoding and over-the-air accounting.
//
// §4: protocol energy has a computation part and a *communication* part
// ("the communication should be minimized since wireless communication is
// power-hungry"), so every protocol message here knows its exact encoded
// bit count. Field elements and scalars travel as 21-byte big-endian
// strings (163 bits round up); points travel X9.62-compressed (x plus one
// y-parity bit in a prefix byte).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/curve.h"

namespace medsec::protocol {

inline constexpr std::size_t kFeBytes = 21;  // ceil(163 / 8)

/// Big-endian field-element encoding.
std::vector<std::uint8_t> encode_fe(const ecc::Fe& v);
ecc::Fe decode_fe(const std::vector<std::uint8_t>& bytes);

/// Big-endian scalar encoding (values < 2^168 expected, i.e. reduced).
std::vector<std::uint8_t> encode_scalar(const ecc::Scalar& v);
ecc::Scalar decode_scalar(const std::vector<std::uint8_t>& bytes);

/// Compressed point: 1 prefix byte (0x02 | y-bit, 0x00 for infinity) +
/// 21 bytes of x.
std::vector<std::uint8_t> encode_point(const ecc::Curve& curve,
                                       const ecc::Point& p);
/// Decompresses and *validates* the point (on-curve + subgroup): protocol
/// boundaries are exactly where invalid-point injection happens.
std::optional<ecc::Point> decode_point(const ecc::Curve& curve,
                                       const std::vector<std::uint8_t>& bytes);

/// One protocol message on the air.
struct Message {
  const char* label;
  std::vector<std::uint8_t> payload;
  std::size_t bits() const { return 8 * payload.size(); }
};

/// A transcript: the adversary's view of a session, and the unit the
/// radio-energy model charges for.
struct Transcript {
  std::vector<Message> tag_to_reader;
  std::vector<Message> reader_to_tag;
  std::size_t tag_tx_bits() const {
    std::size_t b = 0;
    for (const auto& m : tag_to_reader) b += m.bits();
    return b;
  }
  std::size_t tag_rx_bits() const {
    std::size_t b = 0;
    for (const auto& m : reader_to_tag) b += m.bits();
    return b;
  }
};

/// Map a field element (an x-coordinate) to a scalar modulo the group
/// order — the "d = xcoord(r·Y)" step of the Peeters–Hermans protocol.
ecc::Scalar fe_to_scalar_mod_order(const ecc::Curve& curve, const ecc::Fe& v);

/// CTR/CMAC nonce width for a given cipher block size — the single source
/// of the wire-framing geometry every encryptor, parser and tap must agree
/// on (mutual auth move 3, the ECIES blob).
inline constexpr std::size_t cipher_nonce_bytes(std::size_t block_bytes) {
  return block_bytes > 4 ? block_bytes - 4 : 4;
}

}  // namespace medsec::protocol
