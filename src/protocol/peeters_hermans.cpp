#include "protocol/peeters_hermans.h"

#include <utility>

#include "ecc/fixed_base.h"
#include "ecc/scalar_mult.h"
#include "protocol/snapshot.h"

namespace medsec::protocol {

namespace {
using ecc::Curve;
using ecc::Point;
using ecc::Scalar;

Point tag_pm(const Curve& c, const Scalar& k, const Point& p,
             rng::RandomSource& rng, EnergyLedger& ledger) {
  ecc::MultOptions opt;
  opt.algorithm = ecc::MultAlgorithm::kLadderRpc;
  opt.rng = &rng;
  ++ledger.ecpm;
  ledger.rng_bits += 2 * 163;
  return ecc::scalar_mult(c, k, p, opt);
}
}  // namespace

PhReader ph_setup_reader(const Curve& curve, rng::RandomSource& rng) {
  PhReader r;
  r.y = rng.uniform_nonzero(curve.order());
  r.Y = ecc::generator_comb(curve).mult_ct(r.y);
  return r;
}

PhTag ph_register_tag(const Curve& curve, PhReader& reader,
                      rng::RandomSource& rng) {
  PhTag t;
  t.x = rng.uniform_nonzero(curve.order());
  t.Y = reader.Y;
  t.registered_index = reader.db.size();
  reader.db.push_back(ecc::generator_comb(curve).mult_ct(t.x));
  return t;
}

PhTagSession ph_tag_commit(const Curve& curve,
                           [[maybe_unused]] const PhTag& tag,
                           rng::RandomSource& rng, EnergyLedger& ledger,
                           sidechannel::HardenedLadder* hardened) {
  PhTagSession s;
  s.r = rng.uniform_nonzero(curve.order());
  ledger.rng_bits += 163;
  if (hardened) ledger.rng_bits += hardened->rng_bits_per_mult();
  // Generator multiplication: fixed-base comb, constant schedule — or
  // the countermeasure engine when one is installed.
  ++ledger.ecpm;
  s.commitment = hardened ? hardened->mult(s.r, curve.base_point(), rng)
                          : ecc::generator_comb(curve).mult_ct(s.r);
  if (hardened && hardened->last_mult_provisioned_pair()) {
    // Base-blinding pair provisioning: two hidden ladders + a scalar draw.
    ledger.ecpm += 2;
    ledger.rng_bits += 163;
  }
  return s;
}

Scalar ph_tag_respond(const Curve& curve, const PhTag& tag,
                      const PhTagSession& session, const Scalar& challenge,
                      rng::RandomSource& rng, EnergyLedger& ledger,
                      sidechannel::HardenedLadder* hardened) {
  const auto& ring = curve.scalar_ring();
  // d = xcoord(r·Y): the second (and last) heavy operation on the tag.
  const Point ry = [&] {
    if (hardened == nullptr)
      return tag_pm(curve, session.r, tag.Y, rng, ledger);
    ++ledger.ecpm;
    ledger.rng_bits += hardened->rng_bits_per_mult();
    const Point out = hardened->mult(session.r, tag.Y, rng);
    if (hardened->last_mult_provisioned_pair()) {
      ledger.ecpm += 2;
      ledger.rng_bits += 163;
    }
    return out;
  }();
  const Scalar d = fe_to_scalar_mod_order(curve, ry.x);
  // s = d + x + e·r — one modular multiplication, two additions (§4's
  // "two point multiplications and one modular multiplication").
  const Scalar er = ring.mul(challenge, session.r);
  ++ledger.modmul;
  const Scalar s = ring.add(ring.add(d, tag.x), er);
  ledger.modadd += 2;
  return s;
}

std::optional<std::size_t> ph_reader_identify(const Curve& curve,
                                              const PhReader& reader,
                                              const PhTranscript& t) {
  if (t.commitment.infinity) return std::nullopt;
  if (!curve.validate_subgroup_point(t.commitment)) return std::nullopt;
  // d' = xcoord(y·R_c); X^ = (s − d')·P − e·R_c via Shamir's trick.
  const Point yr = ecc::scalar_mult_ld(curve, reader.y, t.commitment);
  const Scalar d = fe_to_scalar_mod_order(curve, yr.x);
  const auto& ring = curve.scalar_ring();
  const Point x_hat =
      ecc::double_scalar_mult(curve, ring.sub(t.response, d),
                              curve.base_point(), ring.neg(t.challenge),
                              t.commitment);
  for (std::size_t i = 0; i < reader.db.size(); ++i)
    if (reader.db[i] == x_hat) return i;
  return std::nullopt;
}

// --- state machines ----------------------------------------------------------

PhTagMachine::PhTagMachine(const Curve& curve, PhTag tag,
                           rng::RandomSource& rng,
                           sidechannel::HardenedLadder* hardened)
    : curve_(&curve), tag_(std::move(tag)), rng_(&rng),
      hardened_(hardened) {}

StepResult PhTagMachine::start() {
  session_ = ph_tag_commit(*curve_, tag_, *rng_, ledger_, hardened_);
  committed_ = true;
  Message m{"commitment R", encode_point(*curve_, session_.commitment)};
  ledger_.tx_bits += m.bits();
  return step(StepResult::wait(std::move(m)));
}

StepResult PhTagMachine::on_message(const Message& m) {
  if (!committed_ || m.payload.size() != kFeBytes)
    return step(StepResult::failed());
  ledger_.rx_bits += m.bits();
  const Scalar e = decode_scalar(m.payload);
  const Scalar s =
      ph_tag_respond(*curve_, tag_, session_, e, *rng_, ledger_, hardened_);
  Message out{"response s", encode_scalar(s)};
  ledger_.tx_bits += out.bits();
  return step(StepResult::done(std::move(out)));
}

void PhTagMachine::snapshot(SnapshotWriter& w) const {
  SessionMachine::snapshot(w);
  w.scalar(session_.r);
  w.point(session_.commitment);
  w.boolean(committed_);
  w.ledger(ledger_);
}

void PhTagMachine::restore(SnapshotReader& r) {
  SessionMachine::restore(r);
  session_.r = r.scalar();
  session_.commitment = r.point();
  committed_ = r.boolean();
  r.ledger(ledger_);
}

PhReaderMachine::PhReaderMachine(const Curve& curve, const PhReader& reader,
                                 rng::RandomSource& rng)
    : curve_(&curve), reader_(&reader), rng_(&rng) {}

StepResult PhReaderMachine::on_message(const Message& m) {
  if (!have_commitment_) {
    have_commitment_ = true;
    const auto p = decode_point(*curve_, m.payload);
    if (!p) return step(StepResult::failed());
    view_.commitment = *p;
    view_.challenge = rng_->uniform_nonzero(curve_->order());
    return step(StepResult::wait(
        Message{"challenge e", encode_scalar(view_.challenge)}));
  }
  if (m.payload.size() != kFeBytes) return step(StepResult::failed());
  view_.response = decode_scalar(m.payload);
  identity_ = ph_reader_identify(*curve_, *reader_, view_);
  return step(StepResult::done());
}

void PhReaderMachine::snapshot(SnapshotWriter& w) const {
  SessionMachine::snapshot(w);
  w.boolean(have_commitment_);
  w.boolean(identity_.has_value());
  w.u64(identity_.value_or(0));
  w.point(view_.commitment);
  w.scalar(view_.challenge);
  w.scalar(view_.response);
}

void PhReaderMachine::restore(SnapshotReader& r) {
  SessionMachine::restore(r);
  have_commitment_ = r.boolean();
  const bool has_identity = r.boolean();
  const std::uint64_t idx = r.u64();
  identity_ = has_identity
                  ? std::optional<std::size_t>(static_cast<std::size_t>(idx))
                  : std::nullopt;
  view_.commitment = r.point();
  view_.challenge = r.scalar();
  view_.response = r.scalar();
}

PhSessionResult run_ph_session(const Curve& curve, const PhTag& tag,
                               const PhReader& reader,
                               rng::RandomSource& rng) {
  PhSessionResult out;
  PhTagMachine tag_sm(curve, tag, rng);
  PhReaderMachine reader_sm(curve, reader, rng);
  drive_session(tag_sm, reader_sm, out.transcript);
  out.tag_ledger = tag_sm.ledger();
  out.view = reader_sm.view();
  out.identity = reader_sm.identity();
  out.identified = out.identity.has_value();
  return out;
}

}  // namespace medsec::protocol
