#include "protocol/peeters_hermans.h"

#include "ecc/fixed_base.h"
#include "ecc/scalar_mult.h"

namespace medsec::protocol {

namespace {
using ecc::Curve;
using ecc::Point;
using ecc::Scalar;

Point tag_pm(const Curve& c, const Scalar& k, const Point& p,
             rng::RandomSource& rng, EnergyLedger& ledger) {
  ecc::MultOptions opt;
  opt.algorithm = ecc::MultAlgorithm::kLadderRpc;
  opt.rng = &rng;
  ++ledger.ecpm;
  ledger.rng_bits += 2 * 163;
  return ecc::scalar_mult(c, k, p, opt);
}
}  // namespace

PhReader ph_setup_reader(const Curve& curve, rng::RandomSource& rng) {
  PhReader r;
  r.y = rng.uniform_nonzero(curve.order());
  r.Y = ecc::generator_comb(curve).mult_ct(r.y);
  return r;
}

PhTag ph_register_tag(const Curve& curve, PhReader& reader,
                      rng::RandomSource& rng) {
  PhTag t;
  t.x = rng.uniform_nonzero(curve.order());
  t.Y = reader.Y;
  t.registered_index = reader.db.size();
  reader.db.push_back(ecc::generator_comb(curve).mult_ct(t.x));
  return t;
}

PhTagSession ph_tag_commit(const Curve& curve,
                           [[maybe_unused]] const PhTag& tag,
                           rng::RandomSource& rng, EnergyLedger& ledger) {
  PhTagSession s;
  s.r = rng.uniform_nonzero(curve.order());
  ledger.rng_bits += 163;
  // Generator multiplication: fixed-base comb, constant schedule.
  ++ledger.ecpm;
  s.commitment = ecc::generator_comb(curve).mult_ct(s.r);
  return s;
}

Scalar ph_tag_respond(const Curve& curve, const PhTag& tag,
                      const PhTagSession& session, const Scalar& challenge,
                      rng::RandomSource& rng, EnergyLedger& ledger) {
  const auto& ring = curve.scalar_ring();
  // d = xcoord(r·Y): the second (and last) heavy operation on the tag.
  const Point ry = tag_pm(curve, session.r, tag.Y, rng, ledger);
  const Scalar d = fe_to_scalar_mod_order(curve, ry.x);
  // s = d + x + e·r — one modular multiplication, two additions (§4's
  // "two point multiplications and one modular multiplication").
  const Scalar er = ring.mul(challenge, session.r);
  ++ledger.modmul;
  const Scalar s = ring.add(ring.add(d, tag.x), er);
  ledger.modadd += 2;
  return s;
}

std::optional<std::size_t> ph_reader_identify(const Curve& curve,
                                              const PhReader& reader,
                                              const PhTranscript& t) {
  if (t.commitment.infinity) return std::nullopt;
  if (!curve.validate_subgroup_point(t.commitment)) return std::nullopt;
  // d' = xcoord(y·R_c); X^ = s·P - d'·P - e·R_c.
  const Point yr = ecc::scalar_mult_ld(curve, reader.y, t.commitment);
  const Scalar d = fe_to_scalar_mod_order(curve, yr.x);
  const auto& comb = ecc::generator_comb(curve);
  const Point sp = comb.mult(t.response);
  const Point dp = comb.mult(d);
  const Point er = ecc::scalar_mult_ld(curve, t.challenge, t.commitment);
  const Point x_hat =
      curve.add(sp, curve.add(curve.negate(dp), curve.negate(er)));
  for (std::size_t i = 0; i < reader.db.size(); ++i)
    if (reader.db[i] == x_hat) return i;
  return std::nullopt;
}

PhSessionResult run_ph_session(const Curve& curve, const PhTag& tag,
                               const PhReader& reader,
                               rng::RandomSource& rng) {
  PhSessionResult out;

  const PhTagSession ts = ph_tag_commit(curve, tag, rng, out.tag_ledger);
  out.transcript.tag_to_reader.push_back(
      Message{"commitment R", encode_point(curve, ts.commitment)});

  const Scalar e = rng.uniform_nonzero(curve.order());
  out.transcript.reader_to_tag.push_back(
      Message{"challenge e", encode_scalar(e)});

  const Scalar s =
      ph_tag_respond(curve, tag, ts, e, rng, out.tag_ledger);
  out.transcript.tag_to_reader.push_back(
      Message{"response s", encode_scalar(s)});

  out.tag_ledger.tx_bits = out.transcript.tag_tx_bits();
  out.tag_ledger.rx_bits = out.transcript.tag_rx_bits();
  out.view = PhTranscript{ts.commitment, e, s};
  out.identity = ph_reader_identify(curve, reader, out.view);
  out.identified = out.identity.has_value();
  return out;
}

}  // namespace medsec::protocol
