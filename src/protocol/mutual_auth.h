// mutual_auth.h — symmetric mutual authentication + encrypted telemetry
// between an implanted device ("tag") and the mini-server (§2's typical
// use case; §4's requirements list).
//
// The paper's requirements, as implemented here:
//   * mutual authentication (prevent impersonation of either side),
//   * data encryption (patient privacy),
//   * data authentication ("a modification on the ciphertext may also
//     lead to a corrupted therapy that endangers the patient's life"),
//   * *server-authentication-first* ordering: "the protocol session stops
//     immediately on the device when the server authentication fails" —
//     the third energy lever of §4, measurable via EnergyLedger.
//
// Flow (server-first):
//   T -> S : N_t                                    (8-byte nonce)
//   S -> T : N_s || CMAC_Km("SRV" || N_t || N_s)    tag verifies FIRST
//   T -> S : CMAC_Km("TAG" || N_s || N_t) ||
//            CTR_Ke(telemetry) || CMAC_Km(nonce || ct)
//
// The `server_first` switch reorders the tag's work so the energy bench
// can show what a failed session costs in each design.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ciphers/block_cipher.h"
#include "protocol/energy_ledger.h"
#include "protocol/session.h"
#include "protocol/wire.h"
#include "rng/random_source.h"

namespace medsec::protocol {

struct SharedKeys {
  std::vector<std::uint8_t> enc_key;  ///< cipher-sized
  std::vector<std::uint8_t> mac_key;
};

/// HKDF the provisioned master secret into independent encryption and MAC
/// keys of `key_bytes` each (never reuse one key for both roles).
SharedKeys derive_session_keys(std::span<const std::uint8_t> master_secret,
                               std::size_t key_bytes);

struct MutualAuthConfig {
  /// Enforce §4's ordering; false models the naive design that spends the
  /// tag's heavy work before checking who is asking.
  bool server_first = true;
};

/// Failure-injection switches for the tests/benches.
struct MutualAuthFaults {
  bool wrong_server_key = false;   ///< impersonated server
  bool tamper_ciphertext = false;  ///< modify telemetry in flight
  bool tamper_tag_mac = false;     ///< impersonated tag
};

struct MutualAuthResult {
  bool tag_accepted_server = false;
  bool server_accepted_tag = false;
  bool telemetry_delivered = false;  ///< decrypted AND authenticated
  std::vector<std::uint8_t> delivered_telemetry;
  Transcript transcript;
  EnergyLedger tag_ledger;
};

/// `make_cipher` must construct the cipher for a given key (the tag
/// instantiates one for encryption and one for MAC).
using CipherFactory =
    std::function<std::unique_ptr<ciphers::BlockCipher>(
        std::span<const std::uint8_t> key)>;

/// Tag-side state machine:
///   start()             -> N_t
///   on_message(N_s|MAC) -> verify server (ordering per config), then the
///                          heavy work and move 3; kFailed + aborted_early
///                          when server authentication fails.
class MutualAuthTag final : public SessionMachine {
 public:
  MutualAuthTag(const CipherFactory& make_cipher, const SharedKeys& keys,
                std::span<const std::uint8_t> telemetry,
                rng::RandomSource& rng, const MutualAuthConfig& config = {});
  StepResult start() override;
  StepResult on_message(const Message& m) override;
  void snapshot(SnapshotWriter& w) const override;
  void restore(SnapshotReader& r) override;
  bool accepted_server() const { return accepted_server_; }
  const EnergyLedger& ledger() const { return ledger_; }
  /// Wire geometry of move 3 (for taps / parsers): MAC(TAG) || nonce ||
  /// ct || MAC(ct), with both MACs one cipher block wide.
  std::size_t block_bytes() const;
  std::size_t nonce_bytes() const;

 private:
  std::unique_ptr<ciphers::BlockCipher> enc_;
  std::unique_ptr<ciphers::BlockCipher> mac_;
  std::vector<std::uint8_t> telemetry_;
  rng::RandomSource* rng_;
  MutualAuthConfig config_;
  std::vector<std::uint8_t> nt_;
  bool started_ = false;
  bool accepted_server_ = false;
  EnergyLedger ledger_;
};

/// Server-side state machine:
///   on_message(N_t)    -> N_s || CMAC_Km("SRV" || N_t || N_s)
///   on_message(move 3) -> authenticate the tag, then verify-and-decrypt
///                         the telemetry; kDone either way (the server
///                         records what it accepted).
class MutualAuthServer final : public SessionMachine {
 public:
  MutualAuthServer(const CipherFactory& make_cipher, const SharedKeys& keys,
                   rng::RandomSource& rng);
  StepResult on_message(const Message& m) override;
  void snapshot(SnapshotWriter& w) const override;
  void restore(SnapshotReader& r) override;
  bool accepted_tag() const { return accepted_tag_; }
  bool telemetry_delivered() const { return delivered_; }
  const std::vector<std::uint8_t>& telemetry() const { return plain_; }

 private:
  std::unique_ptr<ciphers::BlockCipher> enc_;
  std::unique_ptr<ciphers::BlockCipher> mac_;
  rng::RandomSource* rng_;
  std::vector<std::uint8_t> nt_, ns_;
  bool have_nt_ = false;
  bool accepted_tag_ = false;
  bool delivered_ = false;
  std::vector<std::uint8_t> plain_;
};

/// Run one session — a driver over the two machines. Faults are injected
/// the way a real adversary would: wrong_server_key swaps in an
/// impersonator server machine; the tamper flags mutate move-3 payload
/// bytes in flight through a SessionTap.
MutualAuthResult run_mutual_auth(const CipherFactory& make_cipher,
                                 const SharedKeys& keys,
                                 std::span<const std::uint8_t> telemetry,
                                 rng::RandomSource& rng,
                                 const MutualAuthConfig& config = {},
                                 const MutualAuthFaults& faults = {});

}  // namespace medsec::protocol
