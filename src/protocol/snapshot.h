// snapshot.h — session state serialization for failover.
//
// The gateway's failure model includes node death: a shard that owns a
// thousand suspended sessions can disappear, and the sessions must complete
// on a replacement server without the devices noticing anything beyond a
// retransmit. That requires every SessionMachine to externalize its private
// state — nonces, half-built transcripts, ledgers, flags — into a byte
// string a fresh machine can be rebuilt from.
//
// Format: a flat, versioned, length-checked byte stream. Primitives are
// little-endian fixed-width; vectors are u32-length-prefixed. No type tags
// per field — the reader and writer are the same code walking the same
// struct, and the leading magic/version plus the exhausted() check at the
// end catch any drift. Machines serialize only what they OWN: references
// to process-lifetime objects (curve, reader DB, cipher factory, RNG) are
// re-bound by constructing the replacement machine with the same arguments
// before calling restore().
//
// Snapshot bytes are part of the compatibility surface — the golden tests
// pin their digests the same way wire transcripts are pinned.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bigint/biguint.h"
#include "ecc/curve.h"

namespace medsec::protocol {

struct EnergyLedger;

/// Thrown by SnapshotReader on truncated, oversized, or malformed input —
/// a corrupt snapshot must fail restore(), never half-apply.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v);  // bit-exact via the IEEE-754 image

  void bytes(std::span<const std::uint8_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    out_.insert(out_.end(), v.begin(), v.end());
  }

  void scalar(const ecc::Scalar& v) {
    for (std::size_t i = 0; i < ecc::Scalar::kLimbs; ++i) u64(v.limb(i));
  }
  void fe(const ecc::Fe& v);
  void point(const ecc::Point& p);
  void ledger(const EnergyLedger& l);

  const std::vector<std::uint8_t>& data() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::span<const std::uint8_t> data) : in_(data) {}

  std::uint8_t u8() {
    need(1);
    return in_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    return v;
  }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw SnapshotError("bad boolean");
    return v != 0;
  }
  double f64();

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> v(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                in_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
  }

  ecc::Scalar scalar() {
    ecc::Scalar v;
    for (std::size_t i = 0; i < ecc::Scalar::kLimbs; ++i)
      v.set_limb(i, u64());
    return v;
  }
  ecc::Fe fe();
  ecc::Point point();
  void ledger(EnergyLedger& l);

  /// True when every byte has been consumed — restore() paths assert this
  /// so trailing garbage is rejected, not ignored.
  bool exhausted() const { return pos_ == in_.size(); }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (in_.size() - pos_ < n) throw SnapshotError("truncated");
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

}  // namespace medsec::protocol
