// privacy_game.h — the location-privacy experiment (§2/§4).
//
// "Wireless tags ... can also be used to track patients and therefore
// location privacy is an important concern." The operational definition
// is an indistinguishability game (after Vaudenay [20] / Peeters–Hermans
// [14], simplified to the passive wide-insider case):
//
//   1. Two tags T_0, T_1 are registered; the adversary knows both public
//      keys (insider corruption of the back end).
//   2. The challenger flips a secret bit b and lets the adversary run a
//      full identification session with T_b (the adversary plays an
//      honest-but-curious reader: it sees R_c, chooses e, sees s).
//   3. The adversary guesses b. Advantage = 2·Pr[correct] - 1.
//
// Against Schnorr the tracing test s·P - e·X_i == R_c resolves b exactly
// (advantage -> 1). Against Peeters–Hermans the response is blinded by
// xcoord(r·Y), the test never fires, and the adversary is reduced to
// guessing (advantage -> 0). That is the paper's case for PKC-based
// *private* identification.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ecc/curve.h"

namespace medsec::protocol {

enum class GameProtocol { kSchnorr, kPeetersHermans };

const char* game_protocol_name(GameProtocol p);

struct PrivacyGameResult {
  std::size_t trials = 0;
  std::size_t correct_guesses = 0;
  std::size_t tracing_test_fired = 0;  ///< trials where the test resolved
  double advantage = 0.0;              ///< 2·acc - 1, clamped at 0
};

/// Play `trials` rounds of the game against the given protocol.
PrivacyGameResult run_privacy_game(const ecc::Curve& curve,
                                   GameProtocol protocol, std::size_t trials,
                                   std::uint64_t seed = 2013);

}  // namespace medsec::protocol
