#include "protocol/mutual_auth.h"

#include <array>

#include "ciphers/modes.h"
#include "hash/hmac.h"
#include "hash/sha256.h"

namespace medsec::protocol {

namespace {

constexpr std::size_t kNonceBytes = 8;

std::size_t blocks(std::size_t bytes, std::size_t block_bytes) {
  return (bytes + block_bytes - 1) / block_bytes + 1;  // +1 CMAC finalize
}

std::vector<std::uint8_t> concat(
    std::initializer_list<std::span<const std::uint8_t>> parts) {
  std::vector<std::uint8_t> out;
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

std::span<const std::uint8_t> bytes_of(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), 3};
}

}  // namespace

SharedKeys derive_session_keys(std::span<const std::uint8_t> master_secret,
                               std::size_t key_bytes) {
  static constexpr std::uint8_t kSalt[] = {'m', 'e', 'd', 's', 'e', 'c'};
  static constexpr std::uint8_t kInfoEnc[] = {'e', 'n', 'c'};
  static constexpr std::uint8_t kInfoMac[] = {'m', 'a', 'c'};
  SharedKeys k;
  k.enc_key = hash::hkdf<hash::Sha256>(kSalt, master_secret, kInfoEnc,
                                       key_bytes);
  k.mac_key = hash::hkdf<hash::Sha256>(kSalt, master_secret, kInfoMac,
                                       key_bytes);
  return k;
}

MutualAuthResult run_mutual_auth(const CipherFactory& make_cipher,
                                 const SharedKeys& keys,
                                 std::span<const std::uint8_t> telemetry,
                                 rng::RandomSource& rng,
                                 const MutualAuthConfig& config,
                                 const MutualAuthFaults& faults) {
  MutualAuthResult out;

  // Tag-side cipher instances (the device's hardware cores).
  const auto tag_enc = make_cipher(keys.enc_key);
  const auto tag_mac = make_cipher(keys.mac_key);
  const std::size_t bb = tag_mac->block_bytes();

  // Server side: honest server shares the keys; an impersonator does not.
  SharedKeys server_keys = keys;
  if (faults.wrong_server_key)
    for (auto& b : server_keys.mac_key) b ^= 0xA5;
  const auto srv_mac = make_cipher(server_keys.mac_key);

  // --- move 1: T -> S, tag nonce -------------------------------------------
  std::vector<std::uint8_t> nt(kNonceBytes);
  rng.fill(nt);
  out.tag_ledger.rng_bits += 8 * kNonceBytes;
  out.transcript.tag_to_reader.push_back(Message{"N_t", nt});

  // --- move 2: S -> T, server nonce + server MAC ----------------------------
  std::vector<std::uint8_t> ns(kNonceBytes);
  rng.fill(ns);
  const auto srv_tag_msg = concat({bytes_of("SRV"), nt, ns});
  const auto srv_mac_val = ciphers::cmac(*srv_mac, srv_tag_msg);
  out.transcript.reader_to_tag.push_back(
      Message{"N_s || MAC(SRV)", concat({ns, srv_mac_val})});

  // Tag-side work items, ordered per config.
  auto verify_server = [&] {
    const auto expect = ciphers::cmac(*tag_mac, srv_tag_msg);
    out.tag_ledger.cipher_blocks += blocks(srv_tag_msg.size(), bb);
    out.tag_accepted_server =
        hash::constant_time_equal(expect, srv_mac_val);
  };

  std::vector<std::uint8_t> tag_auth_mac;
  ciphers::AeadResult sealed;
  std::vector<std::uint8_t> nonce(bb > 4 ? bb - 4 : 4);
  auto heavy_work = [&] {
    // Tag authenticator.
    const auto tag_msg = concat({bytes_of("TAG"), ns, nt});
    tag_auth_mac = ciphers::cmac(*tag_mac, tag_msg);
    out.tag_ledger.cipher_blocks += blocks(tag_msg.size(), bb);
    // Telemetry: encrypt-then-MAC.
    rng.fill(nonce);
    out.tag_ledger.rng_bits += 8 * nonce.size();
    sealed = ciphers::encrypt_then_mac(*tag_enc, *tag_mac, nonce, telemetry);
    out.tag_ledger.cipher_blocks +=
        blocks(telemetry.size(), bb) +                  // CTR keystream
        blocks(nonce.size() + telemetry.size(), bb);    // CMAC
  };

  if (config.server_first) {
    verify_server();
    if (!out.tag_accepted_server) {
      // §4: "the protocol session stops immediately on the device when
      // the server authentication fails" — none of the heavy work ran.
      out.tag_ledger.aborted_early = true;
      out.tag_ledger.tx_bits = out.transcript.tag_tx_bits();
      out.tag_ledger.rx_bits = out.transcript.tag_rx_bits();
      return out;
    }
    heavy_work();
  } else {
    // Naive ordering: spend first, check later.
    heavy_work();
    verify_server();
    if (!out.tag_accepted_server) {
      out.tag_ledger.aborted_early = true;
      out.tag_ledger.tx_bits = out.transcript.tag_tx_bits();
      out.tag_ledger.rx_bits = out.transcript.tag_rx_bits();
      return out;
    }
  }

  // --- move 3: T -> S -------------------------------------------------------
  auto ct = sealed.ciphertext;
  auto mac = sealed.tag;
  if (faults.tamper_ciphertext && !ct.empty()) ct[0] ^= 0x80;
  if (faults.tamper_tag_mac && !tag_auth_mac.empty())
    tag_auth_mac[0] ^= 0x80;
  out.transcript.tag_to_reader.push_back(
      Message{"MAC(TAG) || nonce || ct || MAC(ct)",
              concat({tag_auth_mac, nonce, ct, mac})});

  // Server verifies the tag, then the telemetry.
  const auto tag_msg = concat({bytes_of("TAG"), ns, nt});
  const auto expect_tag = ciphers::cmac(*srv_mac, tag_msg);
  out.server_accepted_tag =
      !faults.wrong_server_key &&
      hash::constant_time_equal(expect_tag, tag_auth_mac);
  if (out.server_accepted_tag) {
    const auto srv_enc = make_cipher(server_keys.enc_key);
    const auto srv_mac2 = make_cipher(server_keys.mac_key);
    std::vector<std::uint8_t> plain;
    if (ciphers::decrypt_then_verify(*srv_enc, *srv_mac2, nonce, ct, mac,
                                     plain)) {
      out.telemetry_delivered = true;
      out.delivered_telemetry = std::move(plain);
    }
  }

  out.tag_ledger.tx_bits = out.transcript.tag_tx_bits();
  out.tag_ledger.rx_bits = out.transcript.tag_rx_bits();
  return out;
}

}  // namespace medsec::protocol
