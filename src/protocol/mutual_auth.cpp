#include "protocol/mutual_auth.h"

#include <array>

#include "ciphers/modes.h"
#include "hash/hmac.h"
#include "hash/sha256.h"
#include "protocol/snapshot.h"

namespace medsec::protocol {

namespace {

constexpr std::size_t kNonceBytes = 8;

std::size_t blocks(std::size_t bytes, std::size_t block_bytes) {
  return (bytes + block_bytes - 1) / block_bytes + 1;  // +1 CMAC finalize
}

std::vector<std::uint8_t> concat(
    std::initializer_list<std::span<const std::uint8_t>> parts) {
  std::vector<std::uint8_t> out;
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

std::span<const std::uint8_t> bytes_of(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), 3};
}

}  // namespace

SharedKeys derive_session_keys(std::span<const std::uint8_t> master_secret,
                               std::size_t key_bytes) {
  static constexpr std::uint8_t kSalt[] = {'m', 'e', 'd', 's', 'e', 'c'};
  static constexpr std::uint8_t kInfoEnc[] = {'e', 'n', 'c'};
  static constexpr std::uint8_t kInfoMac[] = {'m', 'a', 'c'};
  SharedKeys k;
  k.enc_key = hash::hkdf<hash::Sha256>(kSalt, master_secret, kInfoEnc,
                                       key_bytes);
  k.mac_key = hash::hkdf<hash::Sha256>(kSalt, master_secret, kInfoMac,
                                       key_bytes);
  return k;
}

// --- tag machine -------------------------------------------------------------

MutualAuthTag::MutualAuthTag(const CipherFactory& make_cipher,
                             const SharedKeys& keys,
                             std::span<const std::uint8_t> telemetry,
                             rng::RandomSource& rng,
                             const MutualAuthConfig& config)
    : enc_(make_cipher(keys.enc_key)),
      mac_(make_cipher(keys.mac_key)),
      telemetry_(telemetry.begin(), telemetry.end()),
      rng_(&rng),
      config_(config) {}

std::size_t MutualAuthTag::block_bytes() const { return mac_->block_bytes(); }

std::size_t MutualAuthTag::nonce_bytes() const {
  const std::size_t bb = mac_->block_bytes();
  return cipher_nonce_bytes(bb);
}

StepResult MutualAuthTag::start() {
  // --- move 1: T -> S, tag nonce -------------------------------------------
  nt_.assign(kNonceBytes, 0);
  rng_->fill(nt_);
  ledger_.rng_bits += 8 * kNonceBytes;
  started_ = true;
  Message m{"N_t", nt_};
  ledger_.tx_bits += m.bits();
  return step(StepResult::wait(std::move(m)));
}

StepResult MutualAuthTag::on_message(const Message& m) {
  const std::size_t bb = mac_->block_bytes();
  if (!started_ || m.payload.size() != kNonceBytes + bb)
    return step(StepResult::failed());
  ledger_.rx_bits += m.bits();
  const std::vector<std::uint8_t> ns{m.payload.begin(),
                                     m.payload.begin() + kNonceBytes};
  const std::vector<std::uint8_t> srv_mac_val{
      m.payload.begin() + kNonceBytes, m.payload.end()};
  const auto srv_tag_msg = concat({bytes_of("SRV"), nt_, ns});

  auto verify_server = [&] {
    const auto expect = ciphers::cmac(*mac_, srv_tag_msg);
    ledger_.cipher_blocks += blocks(srv_tag_msg.size(), bb);
    accepted_server_ = hash::constant_time_equal(expect, srv_mac_val);
  };

  std::vector<std::uint8_t> tag_auth_mac;
  ciphers::AeadResult sealed;
  std::vector<std::uint8_t> nonce(nonce_bytes());
  auto heavy_work = [&] {
    // Tag authenticator.
    const auto tag_msg = concat({bytes_of("TAG"), ns, nt_});
    tag_auth_mac = ciphers::cmac(*mac_, tag_msg);
    ledger_.cipher_blocks += blocks(tag_msg.size(), bb);
    // Telemetry: encrypt-then-MAC.
    rng_->fill(nonce);
    ledger_.rng_bits += 8 * nonce.size();
    sealed = ciphers::encrypt_then_mac(*enc_, *mac_, nonce, telemetry_);
    ledger_.cipher_blocks +=
        blocks(telemetry_.size(), bb) +                  // CTR keystream
        blocks(nonce.size() + telemetry_.size(), bb);    // CMAC
  };

  if (config_.server_first) {
    verify_server();
    if (!accepted_server_) {
      // §4: "the protocol session stops immediately on the device when
      // the server authentication fails" — none of the heavy work ran.
      ledger_.aborted_early = true;
      return step(StepResult::failed());
    }
    heavy_work();
  } else {
    // Naive ordering: spend first, check later.
    heavy_work();
    verify_server();
    if (!accepted_server_) {
      ledger_.aborted_early = true;
      return step(StepResult::failed());
    }
  }

  // --- move 3: T -> S ------------------------------------------------------
  Message out{"MAC(TAG) || nonce || ct || MAC(ct)",
              concat({tag_auth_mac, nonce, sealed.ciphertext, sealed.tag})};
  ledger_.tx_bits += out.bits();
  return step(StepResult::done(std::move(out)));
}

void MutualAuthTag::snapshot(SnapshotWriter& w) const {
  SessionMachine::snapshot(w);
  w.bytes(nt_);
  w.boolean(started_);
  w.boolean(accepted_server_);
  w.ledger(ledger_);
}

void MutualAuthTag::restore(SnapshotReader& r) {
  SessionMachine::restore(r);
  nt_ = r.bytes();
  started_ = r.boolean();
  accepted_server_ = r.boolean();
  r.ledger(ledger_);
}

// --- server machine ----------------------------------------------------------

MutualAuthServer::MutualAuthServer(const CipherFactory& make_cipher,
                                   const SharedKeys& keys,
                                   rng::RandomSource& rng)
    : enc_(make_cipher(keys.enc_key)),
      mac_(make_cipher(keys.mac_key)),
      rng_(&rng) {}

StepResult MutualAuthServer::on_message(const Message& m) {
  const std::size_t bb = mac_->block_bytes();
  if (!have_nt_) {
    if (m.payload.size() != kNonceBytes) return step(StepResult::failed());
    nt_ = m.payload;
    have_nt_ = true;
    // --- move 2: S -> T, server nonce + server MAC -------------------------
    ns_.assign(kNonceBytes, 0);
    rng_->fill(ns_);
    const auto srv_tag_msg = concat({bytes_of("SRV"), nt_, ns_});
    const auto srv_mac_val = ciphers::cmac(*mac_, srv_tag_msg);
    return step(StepResult::wait(
        Message{"N_s || MAC(SRV)", concat({ns_, srv_mac_val})}));
  }

  // --- move 3: MAC(TAG) || nonce || ct || MAC(ct) --------------------------
  const std::size_t nonce_len = cipher_nonce_bytes(bb);
  if (m.payload.size() < 2 * bb + nonce_len) return step(StepResult::failed());
  auto it = m.payload.begin();
  const std::vector<std::uint8_t> tag_auth_mac{it, it + bb};
  it += static_cast<std::ptrdiff_t>(bb);
  const std::vector<std::uint8_t> nonce{it, it + nonce_len};
  it += static_cast<std::ptrdiff_t>(nonce_len);
  const std::vector<std::uint8_t> ct{it, m.payload.end() - bb};
  const std::vector<std::uint8_t> mac{m.payload.end() - bb, m.payload.end()};

  // Authenticate the tag, then the telemetry.
  const auto tag_msg = concat({bytes_of("TAG"), ns_, nt_});
  const auto expect_tag = ciphers::cmac(*mac_, tag_msg);
  accepted_tag_ = hash::constant_time_equal(expect_tag, tag_auth_mac);
  if (accepted_tag_ &&
      ciphers::decrypt_then_verify(*enc_, *mac_, nonce, ct, mac, plain_)) {
    delivered_ = true;
  }
  return step(StepResult::done());
}

void MutualAuthServer::snapshot(SnapshotWriter& w) const {
  SessionMachine::snapshot(w);
  w.bytes(nt_);
  w.bytes(ns_);
  w.boolean(have_nt_);
  w.boolean(accepted_tag_);
  w.boolean(delivered_);
  w.bytes(plain_);
}

void MutualAuthServer::restore(SnapshotReader& r) {
  SessionMachine::restore(r);
  nt_ = r.bytes();
  ns_ = r.bytes();
  have_nt_ = r.boolean();
  accepted_tag_ = r.boolean();
  delivered_ = r.boolean();
  plain_ = r.bytes();
}

// --- driver ------------------------------------------------------------------

MutualAuthResult run_mutual_auth(const CipherFactory& make_cipher,
                                 const SharedKeys& keys,
                                 std::span<const std::uint8_t> telemetry,
                                 rng::RandomSource& rng,
                                 const MutualAuthConfig& config,
                                 const MutualAuthFaults& faults) {
  MutualAuthResult out;

  MutualAuthTag tag(make_cipher, keys, telemetry, rng, config);

  // An impersonated server holds the wrong MAC key.
  SharedKeys server_keys = keys;
  if (faults.wrong_server_key)
    for (auto& b : server_keys.mac_key) b ^= 0xA5;
  MutualAuthServer server(make_cipher, server_keys, rng);

  // In-flight tampering: move 3 is the second tag->server message; its
  // layout is MAC(TAG) [bb] || nonce || ct || MAC(ct) (see MutualAuthTag).
  const std::size_t bb = tag.block_bytes();
  const std::size_t ct_offset = bb + tag.nonce_bytes();
  std::size_t tag_msgs = 0;
  SessionTap tap;
  tap.tag_to_reader = [&](Message& msg) {
    if (++tag_msgs != 2) return;
    if (faults.tamper_tag_mac && !msg.payload.empty()) msg.payload[0] ^= 0x80;
    if (faults.tamper_ciphertext && msg.payload.size() > ct_offset + bb)
      msg.payload[ct_offset] ^= 0x80;
  };

  drive_session(tag, server, out.transcript, tap);

  out.tag_accepted_server = tag.accepted_server();
  out.server_accepted_tag = !faults.wrong_server_key && server.accepted_tag();
  out.telemetry_delivered = server.telemetry_delivered();
  out.delivered_telemetry = server.telemetry();
  out.tag_ledger = tag.ledger();
  out.tag_ledger.tx_bits = out.transcript.tag_tx_bits();
  out.tag_ledger.rx_bits = out.transcript.tag_rx_bits();
  return out;
}

}  // namespace medsec::protocol
